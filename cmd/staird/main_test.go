package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stair/internal/cluster"
	"stair/internal/core"
	"stair/internal/store"
)

// testVolume builds an in-process cluster volume over local devices.
func testVolume(t *testing.T) *cluster.Volume {
	t.Helper()
	code, err := core.New(core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var servers []cluster.Server
	for i := 0; i < 6; i++ {
		servers = append(servers, cluster.Server{Name: fmt.Sprintf("s%d", i), URL: "local://"})
	}
	v, err := cluster.Open(context.Background(), cluster.Config{
		Fleet:      &cluster.Fleet{Servers: servers},
		Code:       code,
		SectorSize: 64,
		Stripes:    4,
		Dial: func(ctx context.Context, server cluster.Server) (store.Device, error) {
			return store.NewMemDevice(4*code.R(), 64), nil
		},
		Monitor: cluster.MonitorConfig{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

func TestAPIBlockRoundTrip(t *testing.T) {
	v := testVolume(t)
	srv := httptest.NewServer(newAPI(v))
	t.Cleanup(srv.Close)

	block := bytes.Repeat([]byte{0xAB}, v.BlockSize())
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/blocks/3", bytes.NewReader(block))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT block: status %d", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/blocks/3")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block) {
		t.Fatal("GET returned different bytes than PUT stored")
	}

	// Out-of-range and wrong-size requests are client errors.
	resp, err = srv.Client().Get(srv.URL + "/v1/blocks/999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range GET: status %d, want 400", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/blocks/0", bytes.NewReader([]byte("short")))
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short PUT: status %d, want 400", resp.StatusCode)
	}
}

func TestAPIMaintenanceAndMetrics(t *testing.T) {
	v := testVolume(t)
	srv := httptest.NewServer(newAPI(v))
	t.Cleanup(srv.Close)

	block := bytes.Repeat([]byte{7}, v.BlockSize())
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/blocks/0", bytes.NewReader(block))
	if resp, err := srv.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	for _, ep := range []string{"/v1/flush", "/v1/sync", "/v1/scrub"} {
		resp, err := srv.Client().Post(srv.URL+ep, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", ep, resp.StatusCode)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status statusReport
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if status.Blocks != v.Blocks() || len(status.Health) != 6 || len(status.Placement) != 6 {
		t.Fatalf("status %+v", status)
	}
	for _, h := range status.Health {
		if !h.Alive {
			t.Fatalf("healthy column reported dead: %+v", h)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics metricsReport
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Store.Writes == 0 {
		t.Fatalf("metrics report zero writes after a PUT: %+v", metrics.Store)
	}
	// The latency map carries a row per op class exercised above: one
	// PUT (write), plus flush and scrub; /v1/sync is not timed. A GET
	// below must surface in a fresh snapshot — the rows accumulate.
	for _, class := range []string{"write", "flush", "scrub"} {
		row, ok := metrics.Latency[class]
		if !ok || row.Count == 0 {
			t.Fatalf("metrics latency row %q missing or empty: %+v", class, metrics.Latency)
		}
		if row.P50us <= 0 || row.P99us < row.P50us || row.P999us < row.P99us {
			t.Fatalf("latency row %q not ordered: %+v", class, row)
		}
	}
	if _, ok := metrics.Latency["read"]; ok {
		t.Fatal("read latency row present before any GET")
	}
	if resp, err := srv.Client().Get(srv.URL + "/v1/blocks/0"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err = srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if row := metrics.Latency["read"]; row.Count != 1 {
		t.Fatalf("read latency row after one GET: %+v", row)
	}
}

func TestParseE(t *testing.T) {
	e, err := parseE("1, 2,3")
	if err != nil || len(e) != 3 || e[0] != 1 || e[1] != 2 || e[2] != 3 {
		t.Fatalf("parseE = %v, %v", e, err)
	}
	if _, err := parseE("1,x"); err == nil {
		t.Fatal("parseE accepted garbage")
	}
}
