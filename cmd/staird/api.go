package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"stair/internal/cluster"
	"stair/internal/core"
	"stair/internal/scenario"
	"stair/internal/store"
)

// api is the volume daemon's HTTP surface over one shared Volume. The
// store is safe for concurrent use, so requests run on the server's
// native per-connection concurrency with no extra locking here.
//
// Every successful data-plane call is timed into a per-class HDR-style
// histogram (the scenario harness's), and /v1/metrics reports the
// p50/p99/p999 rows since process start — so a soak driver can snapshot
// the endpoint before and after a phase and difference the counts.
type api struct {
	v   *cluster.Volume
	mux *http.ServeMux
	lat map[string]*scenario.Histogram
}

func newAPI(v *cluster.Volume) *api {
	a := &api{v: v, mux: http.NewServeMux(), lat: map[string]*scenario.Histogram{
		"read": {}, "write": {}, "flush": {}, "scrub": {},
	}}
	a.mux.HandleFunc("GET /v1/blocks/{idx}", a.handleGetBlock)
	a.mux.HandleFunc("PUT /v1/blocks/{idx}", a.handlePutBlock)
	a.mux.HandleFunc("POST /v1/flush", a.handleFlush)
	a.mux.HandleFunc("POST /v1/sync", a.handleSync)
	a.mux.HandleFunc("POST /v1/scrub", a.handleScrub)
	a.mux.HandleFunc("GET /v1/status", a.handleStatus)
	a.mux.HandleFunc("GET /v1/metrics", a.handleMetrics)
	return a
}

func (a *api) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func (a *api) block(w http.ResponseWriter, r *http.Request) (int, bool) {
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil || idx < 0 || idx >= a.v.Blocks() {
		http.Error(w, fmt.Sprintf("block index %q out of range [0, %d)", r.PathValue("idx"), a.v.Blocks()), http.StatusBadRequest)
		return 0, false
	}
	return idx, true
}

func (a *api) handleGetBlock(w http.ResponseWriter, r *http.Request) {
	idx, ok := a.block(w, r)
	if !ok {
		return
	}
	begin := time.Now()
	data, err := a.v.ReadBlock(r.Context(), idx)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	a.lat["read"].Record(time.Since(begin))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (a *api) handlePutBlock(w http.ResponseWriter, r *http.Request) {
	idx, ok := a.block(w, r)
	if !ok {
		return
	}
	size := a.v.BlockSize()
	data, err := io.ReadAll(io.LimitReader(r.Body, int64(size)+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) != size {
		http.Error(w, fmt.Sprintf("body is %d bytes; a block is exactly %d", len(data), size), http.StatusBadRequest)
		return
	}
	begin := time.Now()
	if err := a.v.WriteBlock(r.Context(), idx, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	a.lat["write"].Record(time.Since(begin))
	w.WriteHeader(http.StatusOK)
}

func (a *api) handleFlush(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	if err := a.v.Flush(r.Context()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	a.lat["flush"].Record(time.Since(begin))
	w.WriteHeader(http.StatusOK)
}

func (a *api) handleSync(w http.ResponseWriter, r *http.Request) {
	if err := a.v.Sync(r.Context()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (a *api) handleScrub(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	rep, err := a.v.Scrub(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	a.lat["scrub"].Record(time.Since(begin))
	writeJSON(w, rep)
}

// statusReport is the /v1/status shape.
type statusReport struct {
	Blocks    int                    `json:"blocks"`
	BlockSize int                    `json:"block_size"`
	Placement []cluster.Server       `json:"placement"`
	Health    []cluster.ColumnHealth `json:"health"`
}

func (a *api) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, statusReport{
		Blocks:    a.v.Blocks(),
		BlockSize: a.v.BlockSize(),
		Placement: a.v.Placement(),
		Health:    a.v.Health(),
	})
}

// metricsReport is the /v1/metrics shape: the store's counters, the
// cluster layer's, per-op-class API latency rows since process start
// (p50/p99/p999 µs; classes with no samples are omitted), and the
// active encode data path (plan shape + GF kernel) the numbers were
// produced under.
type metricsReport struct {
	Store   store.Stats                     `json:"store"`
	Cluster cluster.Stats                   `json:"cluster"`
	Latency map[string]scenario.Percentiles `json:"latency_us"`
	Plan    core.PlanInfo                   `json:"plan"`
}

func (a *api) handleMetrics(w http.ResponseWriter, r *http.Request) {
	lat := map[string]scenario.Percentiles{}
	for class, h := range a.lat {
		if h.Count() > 0 {
			lat[class] = h.Percentiles()
		}
	}
	writeJSON(w, metricsReport{
		Store:   a.v.StoreStats(),
		Cluster: a.v.Stats(),
		Latency: lat,
		Plan:    a.v.Store().Code().PlanInfo(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
