// Command staird runs the distributed STAIR volume service.
//
// Two roles share the binary. A device server exports one local
// (memory- or file-backed) device over the NetDevice wire protocol,
// optionally latency-shaped to emulate remote media:
//
//	staird device -listen :9000 -sectors 4096 -sector 4096 \
//	    [-file dev.img] [-latency 2ms -jitter 1ms -spike 40ms -spike-prob 0.02 -serial] \
//	    [-latency-seed 42]
//
// A volume daemon places a STAIR volume's columns across a fleet of
// such device servers, watches their health, fails over to spares with
// background rebuild, and serves a concurrent block API to clients:
//
//	staird serve -listen :8080 -fleet fleet.json -volume myvol \
//	    -n 6 -r 4 -m 2 -e 1,2 -stripes 64 -sector 4096 \
//	    [-flush-workers 4] [-coalesce] [-hedge] \
//	    [-integrity -epoch 1] [-heartbeat 1s] [-fail-after 3]
//
// With -integrity, every device carries a per-sector checksum sidecar
// region past its data sectors; device servers must then be started
// with -sectors ≥ stripes×r + store.IntegrityMetaSectors(stripes, r,
// sector) — serve prints the required figure at startup. Hedged
// reconstructions are additionally parity-verified before their bytes
// can win a read race.
//
// The fleet file lists servers and spares:
//
//	{"servers": [
//	  {"name": "dev0", "url": "http://127.0.0.1:9000"},
//	  {"name": "dev6", "url": "http://127.0.0.1:9006", "spare": true}
//	]}
//
// Volume API: GET/PUT /v1/blocks/{idx} move one block; POST
// /v1/flush, /v1/sync, /v1/scrub drive maintenance; GET /v1/status
// reports geometry, placement and per-column health; GET /v1/metrics
// returns the store and cluster counters plus per-op-class API latency
// percentiles (p50/p99/p999 µs) as JSON.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"stair/internal/cluster"
	"stair/internal/core"
	"stair/internal/gf"
	"stair/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Resolve GF kernel dispatch up front: a typo'd STAIR_GF_KERNEL must
	// fail startup, not surface mid-flush deep in the cluster layer.
	if err := gf.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "staird:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch os.Args[1] {
	case "device":
		err = cmdDevice(ctx, os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "staird:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  staird device -listen :9000 -sectors N -sector S [-file dev.img] [-latency d -jitter d -spike d -spike-prob p -serial]
  staird serve  -listen :8080 -fleet fleet.json -n 6 -r 4 -m 2 -e 1,2 -stripes N -sector S [flags]`)
	os.Exit(2)
}

// parseE parses the comma-separated e vector (e.g. "1,2").
func parseE(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad e vector %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// serveHTTP runs one HTTP server until ctx is cancelled, then shuts it
// down gracefully.
func serveHTTP(ctx context.Context, listen string, handler http.Handler) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Printf("listening on %s\n", ln.Addr())
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func cmdDevice(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("device", flag.ExitOnError)
	listen := fs.String("listen", ":9000", "address to serve the device on")
	sectors := fs.Int("sectors", 4096, "device capacity in sectors")
	sector := fs.Int("sector", 4096, "sector size in bytes")
	file := fs.String("file", "", "back the device with this image file (default: in-memory)")
	latency := fs.Duration("latency", 0, "fixed per-call latency")
	jitter := fs.Duration("jitter", 0, "uniform extra latency in [0, jitter]")
	spike := fs.Duration("spike", 0, "heavy-tail extra latency on a spike-prob fraction of calls")
	spikeProb := fs.Float64("spike-prob", 0, "fraction of calls hit by the spike")
	serial := fs.Bool("serial", false, "queue concurrent calls like a single spindle")
	latencySeed := fs.Int64("latency-seed", 0, "seed for the jitter/spike RNG (0 = time-derived); fix it for reproducible soak timing")
	fs.Parse(args)

	var dev store.Device
	if *file != "" {
		fd, err := store.OpenFileDevice(*file, *sectors, *sector)
		if err != nil {
			return err
		}
		dev = fd
	} else {
		dev = store.NewMemDevice(*sectors, *sector)
	}
	defer dev.Close()
	profile := store.LatencyProfile{
		Latency: *latency, Jitter: *jitter,
		Spike: *spike, SpikeProb: *spikeProb,
		Serial: *serial, Seed: *latencySeed,
	}
	if profile != (store.LatencyProfile{}) {
		dev = store.NewLatencyDeviceProfile(dev, profile)
	}
	return serveHTTP(ctx, *listen, store.NewDeviceServer(dev))
}

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":8080", "address to serve the volume API on")
	fleetPath := fs.String("fleet", "", "fleet file (required)")
	volume := fs.String("volume", "volume", "volume name (keys placement)")
	n := fs.Int("n", 6, "stripe columns")
	r := fs.Int("r", 4, "rows per stripe column")
	m := fs.Int("m", 2, "device failures tolerated")
	eStr := fs.String("e", "1,2", "sector-failure vector, comma separated")
	stripes := fs.Int("stripes", 64, "stripes in the volume")
	sector := fs.Int("sector", 4096, "sector (= block) size in bytes")
	workers := fs.Int("workers", 0, "encode/repair parallelism (0 = GOMAXPROCS)")
	flushWorkers := fs.Int("flush-workers", 4, "asynchronous flush pipeline width (0 = synchronous)")
	coalesce := fs.Bool("coalesce", true, "merge adjacent stripe extents per backend")
	coalesceWindow := fs.Duration("coalesce-window", 200*time.Microsecond, "coalescer batch window")
	hedge := fs.Bool("hedge", true, "hedge slow column reads via sibling reconstruction")
	hedgePercentile := fs.Float64("hedge-percentile", 0.9, "latency percentile that launches a hedge")
	integ := fs.Bool("integrity", false, "per-sector checksum layer (device servers need -sectors sized for the sidecar region)")
	epoch := fs.Uint("epoch", 1, "volume epoch salted into integrity checksums")
	heartbeat := fs.Duration("heartbeat", time.Second, "health sweep interval")
	failAfter := fs.Int("fail-after", 3, "consecutive missed probes that declare a server dead")
	fs.Parse(args)

	if *fleetPath == "" {
		return errors.New("serve: -fleet is required")
	}
	fleet, err := cluster.LoadFleet(*fleetPath)
	if err != nil {
		return err
	}
	e, err := parseE(*eStr)
	if err != nil {
		return err
	}
	code, err := core.New(core.Config{N: *n, R: *r, M: *m, E: e})
	if err != nil {
		return err
	}

	cfg := cluster.Config{
		Fleet:        fleet,
		VolumeName:   *volume,
		Code:         code,
		SectorSize:   *sector,
		Stripes:      *stripes,
		Workers:      *workers,
		FlushWorkers: *flushWorkers,
		Monitor:      cluster.MonitorConfig{Interval: *heartbeat, FailAfter: *failAfter},
	}
	if *coalesce {
		cfg.Coalesce = &store.CoalesceOptions{Window: *coalesceWindow}
	}
	if *hedge {
		cfg.Hedge = &cluster.HedgeConfig{Percentile: *hedgePercentile}
	}
	if *integ {
		cfg.Integrity = &store.IntegrityOptions{Epoch: uint32(*epoch)}
	}

	v, err := cluster.Open(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("volume %q: %d columns × %d stripes, block %d B\n", *volume, *n, *stripes, v.BlockSize())
	if *integ {
		devSectors := *stripes**r + store.IntegrityMetaSectors(*stripes, *r, *sector)
		fmt.Printf("integrity: on (epoch %d; device servers need ≥ %d sectors)\n", *epoch, devSectors)
	}
	for _, p := range v.Placement() {
		fmt.Printf("  column on %s (%s)\n", p.Name, p.URL)
	}
	serveErr := serveHTTP(ctx, *listen, newAPI(v))
	// Drain buffered writes to the fleet before closing.
	syncCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	syncErr := v.Sync(syncCtx)
	cancel()
	closeErr := v.Close()
	if serveErr != nil {
		return serveErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
