// Command stairstore manages a STAIR-protected block volume on disk: a
// directory of file-per-device images driven by internal/store, with
// fault injection, degraded reads, scrub/repair and persistent
// operation counters.
//
//	stairstore create      -dir vol -n 8 -r 4 -m 2 -e 1,1,2 -stripes 64 -sector 4096 [-integrity=false -epoch 1 -repair-workers 4 -shards 32 -cache 8 -flush-workers 4]
//	stairstore put         -dir vol -in data.bin [-block 0]
//	stairstore get         -dir vol -out copy.bin [-block 0] [-count 8] [-bytes 30000]
//	stairstore fail-device -dir vol -device 3
//	stairstore corrupt     -dir vol -device 2 -sector 17
//	stairstore corrupt     -dir vol -device 2 -burst 40:3
//	stairstore corrupt     -dir vol -device 2 -sector 17 -silent
//	stairstore replace     -dir vol -device 3 [-rebuild=false]
//	stairstore scrub       -dir vol
//	stairstore recover     -dir vol
//	stairstore stats       -dir vol
//	stairstore stats       -url http://127.0.0.1:8080
//
// Layout: dir/volume.json records geometry plus cumulative stats;
// dir/dev_<i>.img holds device i's sectors — with integrity on (the
// default) a sidecar region of per-sector checksum records follows the
// data sectors inside the same image — plus a dev_<i>.img.faults
// sidecar persisting injected faults; dir/journal.wal is the
// write-ahead intent log making stripe write-back crash-consistent.
// `corrupt -silent` flips a bit without registering any fault: with
// integrity on the lie is caught and repaired on the next read or
// scrub; with STAIR_INTEGRITY=off it sails through (the A/B control).
// Reads through damage are served degraded (reconstructed on the fly)
// and heal in the background; damage beyond the code's coverage
// surfaces as an unrecoverable error and a counter, never as corrupt
// data. Every mount replays pending journal intents automatically;
// `recover` mounts, reports what the replay did, and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"stair/internal/core"
	"stair/internal/gf"
	"stair/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Surface a typo'd STAIR_GF_KERNEL as a clean startup error rather
	// than a panic inside the first encode.
	if err := gf.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "stairstore:", err)
		os.Exit(1)
	}
	// Every store operation runs under a signal-cancelled context: an
	// interrupt aborts in-flight device I/O (including a blocked remote
	// backend) instead of wedging the command.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch os.Args[1] {
	case "create":
		err = cmdCreate(ctx, os.Args[2:])
	case "put":
		err = cmdPut(ctx, os.Args[2:])
	case "get":
		err = cmdGet(ctx, os.Args[2:])
	case "fail-device":
		err = cmdFailDevice(ctx, os.Args[2:])
	case "corrupt":
		err = cmdCorrupt(ctx, os.Args[2:])
	case "replace":
		err = cmdReplace(ctx, os.Args[2:])
	case "scrub":
		err = cmdScrub(ctx, os.Args[2:])
	case "recover":
		err = cmdRecover(ctx, os.Args[2:])
	case "stats":
		err = cmdStats(ctx, os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stairstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: stairstore {create|put|get|fail-device|corrupt|replace|scrub|recover|stats} [flags]")
	os.Exit(2)
}

func parseE(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad coverage element %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdCreate(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "volume directory (created)")
		n       = fs.Int("n", 8, "devices per stripe")
		r       = fs.Int("r", 4, "sectors per chunk")
		m       = fs.Int("m", 2, "whole-device failures tolerated")
		e       = fs.String("e", "1,1,2", "sector-failure coverage vector")
		stripes = fs.Int("stripes", 64, "stripes in the volume")
		sector  = fs.Int("sector", 4096, "sector (logical block) size in bytes")
		repair  = fs.Int("repair-workers", 0, "background repair worker pool size (0 = store default)")
		shards  = fs.Int("shards", 0, "lock shards for parallel stripe operations (0 = store default)")
		cache   = fs.Int("cache", 0, "degraded-stripe cache size in stripes (0 = store default, <0 disables)")
		flush   = fs.Int("flush-workers", 0, "async flush pipeline workers (0 = synchronous flushes)")
		integ   = fs.Bool("integrity", true, "end-to-end per-sector checksums (sidecar region per device)")
		epoch   = fs.Uint("epoch", 1, "volume epoch salted into integrity digests")
	)
	fs.Parse(args)
	if *dir == "" {
		return errors.New("create: -dir required")
	}
	ev, err := parseE(*e)
	if err != nil {
		return err
	}
	meta := volumeMeta{
		N: *n, R: *r, M: *m, E: ev, SectorSize: *sector, Stripes: *stripes,
		RepairWorkers: *repair, LockShards: *shards, DegradedCache: *cache,
		FlushWorkers: *flush,
		Integrity:    *integ, IntegrityEpoch: uint32(*epoch),
	}
	if _, err := core.New(core.Config{N: *n, R: *r, M: *m, E: ev}); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(metaPath(*dir)); err == nil {
		return fmt.Errorf("create: %s already holds a volume", *dir)
	}
	if err := meta.save(*dir); err != nil {
		return err
	}
	s, meta2, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta2); cerr != nil && err == nil {
			err = cerr
		}
	}()
	fmt.Printf("created %s: %s, %d stripes × %d B sectors, %d blocks (%d KiB user capacity)\n",
		*dir, s.Code().Config(), *stripes, *sector, s.Blocks(), s.Blocks()**sector>>10)
	if *integ {
		fmt.Printf("integrity: on (epoch %d, %d sidecar sectors per device)\n",
			*epoch, store.IntegrityMetaSectors(*stripes, *r, *sector))
	}
	return nil
}

func cmdPut(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	var (
		dir   = fs.String("dir", "", "volume directory")
		in    = fs.String("in", "", "input file ('-' for stdin)")
		block = fs.Int("block", 0, "first logical block to write")
	)
	fs.Parse(args)
	if *dir == "" || *in == "" {
		return errors.New("put: -dir and -in required")
	}
	var data []byte
	if *in == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		return err
	}
	s, meta, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta); cerr != nil && err == nil {
			err = cerr
		}
	}()
	bs := s.BlockSize()
	nblocks := (len(data) + bs - 1) / bs
	if *block < 0 || *block+nblocks > s.Blocks() {
		return fmt.Errorf("put: %d blocks at %d exceed volume capacity %d", nblocks, *block, s.Blocks())
	}
	buf := make([]byte, bs)
	for i := 0; i < nblocks; i++ {
		for j := range buf {
			buf[j] = 0
		}
		copy(buf, data[i*bs:])
		if err := s.WriteBlock(ctx, *block+i, buf); err != nil {
			return err
		}
	}
	if err := s.Flush(ctx); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes to blocks [%d,%d)\n", len(data), *block, *block+nblocks)
	return nil
}

func cmdGet(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	var (
		dir    = fs.String("dir", "", "volume directory")
		out    = fs.String("out", "", "output file ('-' for stdout)")
		block  = fs.Int("block", 0, "first logical block to read")
		count  = fs.Int("count", 0, "blocks to read (0 = to end of volume)")
		nbytes = fs.Int("bytes", 0, "trim output to this many bytes (0 = full blocks)")
	)
	fs.Parse(args)
	if *dir == "" || *out == "" {
		return errors.New("get: -dir and -out required")
	}
	s, meta, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta); cerr != nil && err == nil {
			err = cerr
		}
	}()
	c := *count
	if *nbytes > 0 {
		bs := s.BlockSize()
		need := (*nbytes + bs - 1) / bs
		if c == 0 || c > need {
			c = need
		}
	}
	if c == 0 {
		c = s.Blocks() - *block
	}
	if *block < 0 || *block+c > s.Blocks() {
		return fmt.Errorf("get: %d blocks at %d exceed volume capacity %d", c, *block, s.Blocks())
	}
	var data []byte
	for i := 0; i < c; i++ {
		blk, err := s.ReadBlock(ctx, *block+i)
		if err != nil {
			return fmt.Errorf("get: %w", err)
		}
		data = append(data, blk...)
	}
	if *nbytes > 0 && *nbytes < len(data) {
		data = data[:*nbytes]
	}
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		return err
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "read %d bytes (%d blocks, %d degraded)\n", len(data), c, st.DegradedReads)
	if st.ChecksumMismatches > 0 {
		fmt.Fprintf(os.Stderr, "detected %d checksum mismatches (silent corruption repaired as located erasures)\n",
			st.ChecksumMismatches)
	}
	return nil
}

func cmdFailDevice(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("fail-device", flag.ExitOnError)
	var (
		dir = fs.String("dir", "", "volume directory")
		dev = fs.Int("device", -1, "device to fail")
	)
	fs.Parse(args)
	if *dir == "" || *dev < 0 {
		return errors.New("fail-device: -dir and -device required")
	}
	s, meta, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := s.FailDevice(*dev); err != nil {
		return err
	}
	fmt.Printf("device %d failed; reads are served degraded\n", *dev)
	return nil
}

func cmdCorrupt(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("corrupt", flag.ExitOnError)
	var (
		dir    = fs.String("dir", "", "volume directory")
		dev    = fs.Int("device", -1, "device to corrupt")
		sector = fs.Int("sector", -1, "single sector to mark as a latent error")
		burst  = fs.String("burst", "", "start:len burst of latent errors")
		silent = fs.Bool("silent", false, "flip a payload bit WITHOUT registering a fault (silent corruption; requires -sector)")
	)
	fs.Parse(args)
	if *dir == "" || *dev < 0 {
		return errors.New("corrupt: -dir and -device required")
	}
	s, meta, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta); cerr != nil && err == nil {
			err = cerr
		}
	}()
	switch {
	case *silent:
		if *sector < 0 {
			return errors.New("corrupt: -silent requires -sector")
		}
		if err := s.CorruptSectorSilently(*dev, *sector); err != nil {
			return err
		}
		fmt.Printf("silently flipped a bit at device %d sector %d (no fault registered; reads will serve it)\n",
			*dev, *sector)
	case *burst != "":
		parts := strings.SplitN(*burst, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("corrupt: bad -burst %q, want start:len", *burst)
		}
		start, err1 := strconv.Atoi(parts[0])
		length, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || length < 1 {
			return fmt.Errorf("corrupt: bad -burst %q, want start:len", *burst)
		}
		if err := s.InjectBurst(*dev, start, length); err != nil {
			return err
		}
		fmt.Printf("injected %d-sector burst at device %d sector %d\n", length, *dev, start)
	case *sector >= 0:
		if err := s.InjectSectorError(*dev, *sector); err != nil {
			return err
		}
		fmt.Printf("injected latent error at device %d sector %d\n", *dev, *sector)
	default:
		return errors.New("corrupt: one of -sector or -burst required")
	}
	return nil
}

func cmdReplace(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("replace", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "volume directory")
		dev     = fs.Int("device", -1, "device to replace")
		rebuild = fs.Bool("rebuild", true, "rebuild the replacement synchronously")
	)
	fs.Parse(args)
	if *dir == "" || *dev < 0 {
		return errors.New("replace: -dir and -device required")
	}
	s, meta, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := s.ReplaceDevice(*dev); err != nil {
		return err
	}
	if *rebuild {
		if err := s.RebuildDevice(ctx, *dev); err != nil {
			return err
		}
		st := s.Stats()
		fmt.Printf("device %d replaced and rebuilt (%d sectors reconstructed)\n", *dev, st.RepairedSectors)
		if n := len(s.UnrecoverableStripes()); n > 0 {
			fmt.Printf("warning: %d stripes remain unrecoverable\n", n)
		}
		return nil
	}
	fmt.Printf("device %d replaced; run 'stairstore scrub' (or reads) to rebuild it\n", *dev)
	return nil
}

func cmdScrub(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	var (
		dir    = fs.String("dir", "", "volume directory")
		passes = fs.Int("passes", 8, "maximum scrub passes")
	)
	fs.Parse(args)
	if *dir == "" {
		return errors.New("scrub: -dir required")
	}
	s, meta, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta); cerr != nil && err == nil {
			err = cerr
		}
	}()
	var mismatches, inconsistent int
	for pass := 1; pass <= *passes; pass++ {
		before := s.TotalBadSectors()
		rep, err := s.Scrub(ctx)
		if err != nil {
			return err
		}
		s.Quiesce()
		after := s.TotalBadSectors()
		mismatches += rep.ChecksumMismatches
		inconsistent += rep.StripesInconsistent
		fmt.Printf("pass %d: %d stripes checked, %d damaged, %d sectors lost, %d checksum mismatches; %d bad sectors remain\n",
			pass, rep.StripesChecked, rep.StripesDamaged, rep.SectorsLost, rep.ChecksumMismatches, after)
		if rep.StripesInconsistent > 0 {
			fmt.Printf("  %d stripes INCONSISTENT with nothing located (unlocatable lie) — marked unrecoverable\n",
				rep.StripesInconsistent)
		}
		if rep.RecordsRefreshed > 0 {
			fmt.Printf("  refreshed %d absent integrity records\n", rep.RecordsRefreshed)
		}
		// Keep sweeping while anything heals between passes: bad sectors
		// shrinking, or checksum-located damage found this pass (the
		// repair it queued lands before the next pass re-checks).
		if after == 0 && rep.ChecksumMismatches == 0 {
			break
		}
		if after == before && rep.ChecksumMismatches == 0 {
			break
		}
	}
	if mismatches > 0 {
		fmt.Printf("checksum-located silent corruption: %d sectors (repaired as located erasures)\n", mismatches)
	}
	if inconsistent > 0 {
		fmt.Printf("unlocatable inconsistencies: %d stripes (beyond what checksums cover)\n", inconsistent)
	}
	st := s.Stats()
	fmt.Printf("repaired %d sectors in %d stripes", st.RepairedSectors, st.RepairedStripes)
	if n := len(s.UnrecoverableStripes()); n > 0 {
		fmt.Printf("; %d stripes UNRECOVERABLE", n)
	}
	if devs := s.FailedDevices(); len(devs) > 0 {
		fmt.Printf("; failed devices %v still need replacement", devs)
	}
	fmt.Println()
	return nil
}

func cmdRecover(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	dir := fs.String("dir", "", "volume directory")
	fs.Parse(args)
	if *dir == "" {
		return errors.New("recover: -dir required")
	}
	// Mounting runs the journal replay; this command exists to report
	// what it did.
	s, meta, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta); cerr != nil && err == nil {
			err = cerr
		}
	}()
	rep := s.Recovery()
	if !rep.Replayed() {
		fmt.Println("journal clean: nothing to replay")
		return nil
	}
	fmt.Printf("replayed %d pending intents covering %d stripes:\n", rep.Intents, rep.Stripes)
	fmt.Printf("  %d already parity-consistent (%d with the intended data fully landed)\n",
		rep.Consistent, rep.DataComplete)
	fmt.Printf("  %d rolled forward (parity re-encoded from on-device data)\n", rep.RolledForward)
	if rep.Unrecoverable > 0 {
		fmt.Printf("  %d UNRECOVERABLE (outside coverage; journal retained — replace devices and re-run)\n",
			rep.Unrecoverable)
	}
	return nil
}

func cmdStats(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dir := fs.String("dir", "", "volume directory")
	url := fs.String("url", "", "fetch /v1/metrics from a remote staird or device server instead")
	fs.Parse(args)
	if *url != "" {
		return remoteStats(ctx, *url)
	}
	if *dir == "" {
		return errors.New("stats: -dir or -url required")
	}
	s, meta, err := openVolume(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeVolume(*dir, s, meta); cerr != nil && err == nil {
			err = cerr
		}
	}()
	n, stripes, r, sector := s.Geometry()
	pi := s.Code().PlanInfo()
	fmt.Printf("volume:   %s\n", s.Code().Config())
	fmt.Printf("gf:       w=%d, region kernel %s\n", s.Code().Field().W(), s.Code().KernelName())
	fmt.Printf("plan:     %s data path, tile %d B", pi.Mode, pi.TileBytes)
	if pi.Mode == "fused" {
		fmt.Printf(" (%d stages, %d fused calls, max fan-out %d per encode)", pi.Stages, pi.FusedCalls, pi.MaxFanout)
	}
	fmt.Println()
	fmt.Printf("geometry: %d devices × %d stripes × %d sectors × %d B (%d blocks)\n",
		n, stripes, r, sector, s.Blocks())
	fmt.Printf("health:   failed devices %v, %d bad sectors, %d unrecoverable stripes\n",
		s.FailedDevices(), s.TotalBadSectors(), len(s.UnrecoverableStripes()))
	t := meta.Stats.Add(s.Stats())
	fmt.Printf("lifetime: reads=%d (degraded=%d, cache hits=%d) writes=%d flushes=%d/%d (full/sub)\n",
		t.Reads, t.DegradedReads, t.DegradedCacheHits, t.Writes, t.FullStripeFlushes, t.SubStripeFlushes)
	fmt.Printf("          scrubbed=%d hits=%d repaired=%d sectors (%d stripes) drops=%d unrecoverable=%d\n",
		t.ScrubbedStripes, t.ScrubHits, t.RepairedSectors, t.RepairedStripes, t.RepairDrops, t.UnrecoverableStripes)
	fmt.Printf("          journaled flushes=%d crash-recovered stripes=%d\n",
		t.JournaledFlushes, t.RecoveredStripes)
	on, verifying := s.IntegrityEnabled()
	mode := "off"
	switch {
	case on && verifying:
		mode = "on"
	case on:
		mode = "records only (verification disabled)"
	}
	fmt.Printf("integrity: %s; verified sectors=%d checksum mismatches=%d\n",
		mode, t.VerifiedSectors, t.ChecksumMismatches)
	return nil
}

// remoteStats fetches and pretty-prints a /v1/metrics endpoint — a
// staird volume daemon's (store + cluster counters) or a single device
// server's (request counters).
func remoteStats(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(base, "/")+"/v1/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: %s answered %s", base, resp.Status)
	}
	var metrics any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		return fmt.Errorf("stats: bad metrics from %s: %w", base, err)
	}
	out, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	return nil
}

func metaPath(dir string) string { return filepath.Join(dir, "volume.json") }

func devicePath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("dev_%02d.img", i))
}
