package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestSilentCorruptionEndToEnd drives the tentpole property through the
// CLI: create (integrity on by default) → put → corrupt -silent → get
// detects and repairs → scrub comes back clean — and the same flip with
// STAIR_INTEGRITY=off demonstrably returns rotten bytes.
func TestSilentCorruptionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "vol")
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")

	data := make([]byte, 20000)
	rand.New(rand.NewSource(9)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := cmdCreate(bg, []string{"-dir", vol, "-n", "6", "-r", "4", "-m", "2", "-e", "1,2",
		"-stripes", "8", "-sector", "512"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	meta, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Integrity {
		t.Fatal("create did not default the integrity layer on")
	}
	if err := cmdPut(bg, []string{"-dir", vol, "-in", in}); err != nil {
		t.Fatalf("put: %v", err)
	}

	// Flip a bit of device 2 sector 0 without registering any fault.
	if err := cmdCorrupt(bg, []string{"-dir", vol, "-device", "2", "-sector", "0", "-silent"}); err != nil {
		t.Fatalf("corrupt -silent: %v", err)
	}

	// A full get must detect the lie and return the ORIGINAL bytes.
	if err := cmdGet(bg, []string{"-dir", vol, "-out", out, "-bytes", "20000"}); err != nil {
		t.Fatalf("get: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("get returned rotten bytes despite the integrity layer")
	}
	meta, err = loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stats.ChecksumMismatches == 0 {
		t.Error("persisted stats show no checksum mismatch for the detected flip")
	}

	// Corrupt again and let the scrubber find it instead of a read.
	if err := cmdCorrupt(bg, []string{"-dir", vol, "-device", "3", "-sector", "5", "-silent"}); err != nil {
		t.Fatalf("corrupt -silent: %v", err)
	}
	if err := cmdScrub(bg, []string{"-dir", vol}); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	// After the scrub's repairs, another scrub and a full read are clean.
	before, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdScrub(bg, []string{"-dir", vol}); err != nil {
		t.Fatalf("second scrub: %v", err)
	}
	after, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if diff := after.Stats.ChecksumMismatches - before.Stats.ChecksumMismatches; diff != 0 {
		t.Errorf("second scrub found %d new mismatches, want 0 (repair did not stick)", diff)
	}
	if err := cmdGet(bg, []string{"-dir", vol, "-out", out, "-bytes", "20000"}); err != nil {
		t.Fatalf("get after scrub: %v", err)
	}
	if got, _ := os.ReadFile(out); !bytes.Equal(got, data) {
		t.Fatal("data corrupt after scrub repair")
	}
	if after.Stats.UnrecoverableStripes != 0 {
		t.Errorf("%d unrecoverable stripes from in-coverage silent flips", after.Stats.UnrecoverableStripes)
	}
}

// TestSilentCorruptionControlOff is the negative control: the identical
// flip with STAIR_INTEGRITY=off sails through a get — proof the layer,
// not luck, protects the data.
func TestSilentCorruptionControlOff(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "vol")
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")

	data := make([]byte, 20000)
	rand.New(rand.NewSource(9)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCreate(bg, []string{"-dir", vol, "-n", "6", "-r", "4", "-m", "2", "-e", "1,2",
		"-stripes", "8", "-sector", "512"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := cmdPut(bg, []string{"-dir", vol, "-in", in}); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := cmdCorrupt(bg, []string{"-dir", vol, "-device", "2", "-sector", "0", "-silent"}); err != nil {
		t.Fatalf("corrupt -silent: %v", err)
	}

	t.Setenv("STAIR_INTEGRITY", "off")
	if err := cmdGet(bg, []string{"-dir", vol, "-out", out, "-bytes", "20000"}); err != nil {
		t.Fatalf("get: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("STAIR_INTEGRITY=off still returned correct data — the corruption did not land, so the positive test proves nothing")
	}
}
