package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"stair/internal/core"
	"stair/internal/store"
	"stair/internal/store/journal"
)

// volumeMeta is the on-disk volume descriptor (dir/volume.json):
// geometry, concurrency tuning, plus stats accumulated across process
// lifetimes. The tuning fields are optional (0 picks the store's
// defaults), so descriptors written before they existed keep working.
type volumeMeta struct {
	N          int   `json:"n"`
	R          int   `json:"r"`
	M          int   `json:"m"`
	E          []int `json:"e"`
	SectorSize int   `json:"sector_size"`
	Stripes    int   `json:"stripes"`
	// RepairWorkers, LockShards, DegradedCache and FlushWorkers mirror
	// the store.Config fields of the same names.
	RepairWorkers int `json:"repair_workers,omitempty"`
	LockShards    int `json:"lock_shards,omitempty"`
	DegradedCache int `json:"degraded_cache,omitempty"`
	FlushWorkers  int `json:"flush_workers,omitempty"`
	// Integrity turns on the end-to-end per-sector checksum layer; each
	// device image then carries a sidecar region of records past its
	// data sectors, and IntegrityEpoch is salted into every digest.
	// Absent on descriptors predating the layer — those volumes keep
	// opening without it.
	Integrity      bool        `json:"integrity,omitempty"`
	IntegrityEpoch uint32      `json:"integrity_epoch,omitempty"`
	Stats          store.Stats `json:"stats"`

	// journal is the open write-ahead intent log backing the mounted
	// store; closeVolume closes it after the store drains (runtime
	// state, not part of the descriptor).
	journal *journal.Journal
}

func loadMeta(dir string) (*volumeMeta, error) {
	raw, err := os.ReadFile(metaPath(dir))
	if err != nil {
		return nil, fmt.Errorf("no volume at %s (run 'stairstore create'): %w", dir, err)
	}
	var meta volumeMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("corrupt volume descriptor %s: %w", metaPath(dir), err)
	}
	return &meta, nil
}

func (m *volumeMeta) save(dir string) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := metaPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, metaPath(dir))
}

// journalPath locates the volume's write-ahead intent log.
func journalPath(dir string) string { return filepath.Join(dir, "journal.wal") }

// openVolume opens the store over the volume's file devices, with the
// write-ahead journal mounted — store.Open replays any intents a crash
// left pending, so every mount recovers automatically (the `recover`
// command reports what a mount replayed).
func openVolume(dir string) (*store.Store, *volumeMeta, error) {
	meta, err := loadMeta(dir)
	if err != nil {
		return nil, nil, err
	}
	code, err := core.New(core.Config{N: meta.N, R: meta.R, M: meta.M, E: meta.E})
	if err != nil {
		return nil, nil, err
	}
	j, err := journal.Open(journalPath(dir))
	if err != nil {
		return nil, nil, err
	}
	devSectors := meta.Stripes * meta.R
	var iopts *store.IntegrityOptions
	if meta.Integrity {
		devSectors += store.IntegrityMetaSectors(meta.Stripes, meta.R, meta.SectorSize)
		iopts = &store.IntegrityOptions{Epoch: meta.IntegrityEpoch}
	}
	devs := make([]store.Device, meta.N)
	for i := range devs {
		d, err := store.OpenFileDevice(devicePath(dir, i), devSectors, meta.SectorSize)
		if err != nil {
			for _, prev := range devs[:i] {
				prev.Close()
			}
			j.Close()
			return nil, nil, err
		}
		devs[i] = d
	}
	s, err := store.Open(store.Config{
		Code:          code,
		SectorSize:    meta.SectorSize,
		Stripes:       meta.Stripes,
		Devices:       devs,
		RepairWorkers: meta.RepairWorkers,
		LockShards:    meta.LockShards,
		DegradedCache: meta.DegradedCache,
		FlushWorkers:  meta.FlushWorkers,
		Journal:       j,
		Integrity:     iopts,
	})
	if err != nil {
		for _, d := range devs {
			d.Close()
		}
		j.Close()
		return nil, nil, err
	}
	meta.journal = j
	return s, meta, nil
}

// closeVolume closes the store (draining its flush pipeline and
// committing outstanding intents), then the journal, and folds this
// invocation's counters into the persistent totals.
func closeVolume(dir string, s *store.Store, meta *volumeMeta) error {
	closeErr := s.Close()
	if meta.journal != nil {
		if err := meta.journal.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	meta.Stats = meta.Stats.Add(s.Stats())
	if err := meta.save(dir); err != nil {
		return err
	}
	return closeErr
}
