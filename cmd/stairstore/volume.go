package main

import (
	"encoding/json"
	"fmt"
	"os"

	"stair/internal/core"
	"stair/internal/store"
)

// volumeMeta is the on-disk volume descriptor (dir/volume.json):
// geometry, concurrency tuning, plus stats accumulated across process
// lifetimes. The tuning fields are optional (0 picks the store's
// defaults), so descriptors written before they existed keep working.
type volumeMeta struct {
	N          int   `json:"n"`
	R          int   `json:"r"`
	M          int   `json:"m"`
	E          []int `json:"e"`
	SectorSize int   `json:"sector_size"`
	Stripes    int   `json:"stripes"`
	// RepairWorkers, LockShards and DegradedCache mirror the
	// store.Config fields of the same names.
	RepairWorkers int         `json:"repair_workers,omitempty"`
	LockShards    int         `json:"lock_shards,omitempty"`
	DegradedCache int         `json:"degraded_cache,omitempty"`
	Stats         store.Stats `json:"stats"`
}

func loadMeta(dir string) (*volumeMeta, error) {
	raw, err := os.ReadFile(metaPath(dir))
	if err != nil {
		return nil, fmt.Errorf("no volume at %s (run 'stairstore create'): %w", dir, err)
	}
	var meta volumeMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("corrupt volume descriptor %s: %w", metaPath(dir), err)
	}
	return &meta, nil
}

func (m *volumeMeta) save(dir string) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := metaPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, metaPath(dir))
}

// openVolume opens the store over the volume's file devices.
func openVolume(dir string) (*store.Store, *volumeMeta, error) {
	meta, err := loadMeta(dir)
	if err != nil {
		return nil, nil, err
	}
	code, err := core.New(core.Config{N: meta.N, R: meta.R, M: meta.M, E: meta.E})
	if err != nil {
		return nil, nil, err
	}
	devs := make([]store.Device, meta.N)
	for i := range devs {
		d, err := store.OpenFileDevice(devicePath(dir, i), meta.Stripes*meta.R, meta.SectorSize)
		if err != nil {
			for _, prev := range devs[:i] {
				prev.Close()
			}
			return nil, nil, err
		}
		devs[i] = d
	}
	s, err := store.Open(store.Config{
		Code:          code,
		SectorSize:    meta.SectorSize,
		Stripes:       meta.Stripes,
		Devices:       devs,
		RepairWorkers: meta.RepairWorkers,
		LockShards:    meta.LockShards,
		DegradedCache: meta.DegradedCache,
	})
	if err != nil {
		for _, d := range devs {
			d.Close()
		}
		return nil, nil, err
	}
	return s, meta, nil
}

// closeVolume closes the store and folds this invocation's counters into
// the persistent totals.
func closeVolume(dir string, s *store.Store, meta *volumeMeta) error {
	closeErr := s.Close()
	meta.Stats = meta.Stats.Add(s.Stats())
	if err := meta.save(dir); err != nil {
		return err
	}
	return closeErr
}
