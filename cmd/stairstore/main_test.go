package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var bg = context.Background()

// TestEndToEnd drives the CLI commands through a full lifecycle:
// create → put → get → fail-device → degraded get → corrupt → scrub →
// replace/rebuild → get.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "vol")
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")

	data := make([]byte, 30000)
	rand.New(rand.NewSource(5)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := cmdCreate(bg, []string{"-dir", vol, "-n", "6", "-r", "4", "-m", "2", "-e", "1,2", "-stripes", "8", "-sector", "512",
		"-repair-workers", "2", "-shards", "8", "-cache", "4"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := cmdCreate(bg, []string{"-dir", vol}); err == nil {
		t.Fatal("create over an existing volume accepted")
	}
	if err := cmdPut(bg, []string{"-dir", vol, "-in", in}); err != nil {
		t.Fatalf("put: %v", err)
	}
	get := func(stage string) {
		t.Helper()
		if err := cmdGet(bg, []string{"-dir", vol, "-out", out, "-bytes", "30000"}); err != nil {
			t.Fatalf("get %s: %v", stage, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("get %s: data corrupt", stage)
		}
	}
	get("fresh")

	// Two device failures plus in-coverage latent errors: reads must
	// stay correct (served degraded), scrub must heal the survivors.
	if err := cmdFailDevice(bg, []string{"-dir", vol, "-device", "1"}); err != nil {
		t.Fatalf("fail-device: %v", err)
	}
	if err := cmdFailDevice(bg, []string{"-dir", vol, "-device", "4"}); err != nil {
		t.Fatalf("fail-device: %v", err)
	}
	if err := cmdCorrupt(bg, []string{"-dir", vol, "-device", "0", "-burst", "5:2"}); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if err := cmdCorrupt(bg, []string{"-dir", vol, "-device", "3", "-sector", "9"}); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	get("degraded")
	if err := cmdScrub(bg, []string{"-dir", vol}); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	get("after scrub")

	// Replace and rebuild the dead devices, then verify full health.
	for _, dev := range []string{"1", "4"} {
		if err := cmdReplace(bg, []string{"-dir", vol, "-device", dev}); err != nil {
			t.Fatalf("replace %s: %v", dev, err)
		}
	}
	if err := cmdStats(bg, []string{"-dir", vol}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	get("after rebuild")

	// Persistent stats recorded the degraded reads and repairs.
	meta, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stats.DegradedReads == 0 {
		t.Error("persisted stats show no degraded reads")
	}
	if meta.Stats.RepairedSectors == 0 {
		t.Error("persisted stats show no repairs")
	}
	if meta.Stats.UnrecoverableStripes != 0 {
		t.Errorf("persisted stats show %d unrecoverable stripes within coverage", meta.Stats.UnrecoverableStripes)
	}
}

// TestBeyondCoverage: with m+1 devices down, get must fail loudly and
// the stats must record unrecoverable stripes — never corrupt output.
func TestBeyondCoverage(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "vol")
	in := filepath.Join(dir, "in.bin")

	data := make([]byte, 8000)
	rand.New(rand.NewSource(6)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCreate(bg, []string{"-dir", vol, "-n", "6", "-r", "4", "-m", "1", "-e", "1", "-stripes", "4", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPut(bg, []string{"-dir", vol, "-in", in}); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"0", "1"} {
		if err := cmdFailDevice(bg, []string{"-dir", vol, "-device", dev}); err != nil {
			t.Fatal(err)
		}
	}
	err := cmdGet(bg, []string{"-dir", vol, "-out", filepath.Join(dir, "out.bin"), "-bytes", "8000"})
	if err == nil {
		t.Fatal("get beyond coverage succeeded")
	}
	if !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("get error %q does not name the unrecoverable pattern", err)
	}
	meta, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stats.UnrecoverableStripes == 0 {
		t.Error("persisted stats show no unrecoverable stripes")
	}
}

func TestParseE(t *testing.T) {
	e, err := parseE("1, 2,3")
	if err != nil || len(e) != 3 || e[2] != 3 {
		t.Errorf("parseE: %v %v", e, err)
	}
	if _, err := parseE("1,x"); err == nil {
		t.Error("bad element accepted")
	}
	if e, err := parseE(""); err != nil || e != nil {
		t.Error("empty e should be nil")
	}
}
