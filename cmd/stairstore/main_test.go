package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stair/internal/core"
	"stair/internal/store"
	"stair/internal/store/journal"
)

var bg = context.Background()

// TestEndToEnd drives the CLI commands through a full lifecycle:
// create → put → get → fail-device → degraded get → corrupt → scrub →
// replace/rebuild → get.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "vol")
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")

	data := make([]byte, 30000)
	rand.New(rand.NewSource(5)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := cmdCreate(bg, []string{"-dir", vol, "-n", "6", "-r", "4", "-m", "2", "-e", "1,2", "-stripes", "8", "-sector", "512",
		"-repair-workers", "2", "-shards", "8", "-cache", "4"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := cmdCreate(bg, []string{"-dir", vol}); err == nil {
		t.Fatal("create over an existing volume accepted")
	}
	if err := cmdPut(bg, []string{"-dir", vol, "-in", in}); err != nil {
		t.Fatalf("put: %v", err)
	}
	get := func(stage string) {
		t.Helper()
		if err := cmdGet(bg, []string{"-dir", vol, "-out", out, "-bytes", "30000"}); err != nil {
			t.Fatalf("get %s: %v", stage, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("get %s: data corrupt", stage)
		}
	}
	get("fresh")

	// Two device failures plus in-coverage latent errors: reads must
	// stay correct (served degraded), scrub must heal the survivors.
	if err := cmdFailDevice(bg, []string{"-dir", vol, "-device", "1"}); err != nil {
		t.Fatalf("fail-device: %v", err)
	}
	if err := cmdFailDevice(bg, []string{"-dir", vol, "-device", "4"}); err != nil {
		t.Fatalf("fail-device: %v", err)
	}
	if err := cmdCorrupt(bg, []string{"-dir", vol, "-device", "0", "-burst", "5:2"}); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if err := cmdCorrupt(bg, []string{"-dir", vol, "-device", "3", "-sector", "9"}); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	get("degraded")
	if err := cmdScrub(bg, []string{"-dir", vol}); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	get("after scrub")

	// Replace and rebuild the dead devices, then verify full health.
	for _, dev := range []string{"1", "4"} {
		if err := cmdReplace(bg, []string{"-dir", vol, "-device", dev}); err != nil {
			t.Fatalf("replace %s: %v", dev, err)
		}
	}
	if err := cmdStats(bg, []string{"-dir", vol}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	get("after rebuild")

	// Persistent stats recorded the degraded reads and repairs.
	meta, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stats.DegradedReads == 0 {
		t.Error("persisted stats show no degraded reads")
	}
	if meta.Stats.RepairedSectors == 0 {
		t.Error("persisted stats show no repairs")
	}
	if meta.Stats.UnrecoverableStripes != 0 {
		t.Errorf("persisted stats show %d unrecoverable stripes within coverage", meta.Stats.UnrecoverableStripes)
	}
}

// TestBeyondCoverage: with m+1 devices down, get must fail loudly and
// the stats must record unrecoverable stripes — never corrupt output.
func TestBeyondCoverage(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "vol")
	in := filepath.Join(dir, "in.bin")

	data := make([]byte, 8000)
	rand.New(rand.NewSource(6)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCreate(bg, []string{"-dir", vol, "-n", "6", "-r", "4", "-m", "1", "-e", "1", "-stripes", "4", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPut(bg, []string{"-dir", vol, "-in", in}); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"0", "1"} {
		if err := cmdFailDevice(bg, []string{"-dir", vol, "-device", dev}); err != nil {
			t.Fatal(err)
		}
	}
	err := cmdGet(bg, []string{"-dir", vol, "-out", filepath.Join(dir, "out.bin"), "-bytes", "8000"})
	if err == nil {
		t.Fatal("get beyond coverage succeeded")
	}
	if !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("get error %q does not name the unrecoverable pattern", err)
	}
	meta, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stats.UnrecoverableStripes == 0 {
		t.Error("persisted stats show no unrecoverable stripes")
	}
}

// TestRecoverCommand fabricates the on-disk state a crash
// mid-write-back leaves behind — a pending journal intent plus a parity
// sector that disagrees with the stripe's data — and checks that
// `stairstore recover` rolls the stripe forward and reports it.
func TestRecoverCommand(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "vol")
	in := filepath.Join(dir, "in.bin")
	data := make([]byte, 6000)
	rand.New(rand.NewSource(7)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCreate(bg, []string{"-dir", vol, "-n", "6", "-r", "4", "-m", "1", "-e", "1", "-stripes", "4", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPut(bg, []string{"-dir", vol, "-in", in}); err != nil {
		t.Fatal(err)
	}

	// Crash forensics by hand: an uncommitted intent for stripe 0 in
	// the journal, and one of stripe 0's parity sectors torn (the
	// write-back died between its data and parity phases).
	code, err := core.New(core.Config{N: 6, R: 4, M: 1, E: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(journalPath(vol))
	if err != nil {
		t.Fatal(err)
	}
	// The intent's checksums describe the data already on the devices
	// (the data phase completed).
	var ords []int
	var sums []uint64
	buf := make([]byte, meta.SectorSize)
	for ord, cell := range code.DataCells() {
		d, err := store.OpenFileDevice(devicePath(vol, cell.Col), meta.Stripes*meta.R, meta.SectorSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.ReadSector(bg, d, cell.Row, buf); err != nil {
			t.Fatal(err)
		}
		d.Close()
		ords = append(ords, ord)
		sums = append(sums, journal.Checksum(buf))
	}
	if _, err := j.Append(0, ords, sums, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	parity := code.ParityCells()[0]
	pd, err := store.OpenFileDevice(devicePath(vol, parity.Col), meta.Stripes*meta.R, meta.SectorSize)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, meta.SectorSize)
	for i := range torn {
		torn[i] = 0xA5
	}
	if err := store.WriteSector(bg, pd, parity.Row, torn); err != nil {
		t.Fatal(err)
	}
	pd.Close()

	if err := cmdRecover(bg, []string{"-dir", vol}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	meta, err = loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stats.RecoveredStripes != 1 {
		t.Errorf("persisted RecoveredStripes=%d, want 1", meta.Stats.RecoveredStripes)
	}
	// The data survived and the volume is clean: a second recover has
	// nothing to replay, and a degraded-free get round-trips.
	if err := cmdRecover(bg, []string{"-dir", vol}); err != nil {
		t.Fatalf("second recover: %v", err)
	}
	out := filepath.Join(dir, "out.bin")
	if err := cmdGet(bg, []string{"-dir", vol, "-out", out, "-bytes", "6000"}); err != nil {
		t.Fatalf("get after recover: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupt after crash recovery")
	}
}

// TestCreateWithFlushWorkers: the pipeline width persists in
// volume.json and the volume stays usable.
func TestCreateWithFlushWorkers(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "vol")
	in := filepath.Join(dir, "in.bin")
	data := make([]byte, 4000)
	rand.New(rand.NewSource(8)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCreate(bg, []string{"-dir", vol, "-n", "6", "-r", "4", "-m", "1", "-e", "1", "-stripes", "4", "-sector", "512",
		"-flush-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	meta, err := loadMeta(vol)
	if err != nil {
		t.Fatal(err)
	}
	if meta.FlushWorkers != 2 {
		t.Fatalf("FlushWorkers=%d persisted, want 2", meta.FlushWorkers)
	}
	if err := cmdPut(bg, []string{"-dir", vol, "-in", in}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.bin")
	if err := cmdGet(bg, []string{"-dir", vol, "-out", out, "-bytes", "4000"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pipelined volume round trip corrupt")
	}
}

func TestParseE(t *testing.T) {
	e, err := parseE("1, 2,3")
	if err != nil || len(e) != 3 || e[2] != 3 {
		t.Errorf("parseE: %v %v", e, err)
	}
	if _, err := parseE("1,x"); err == nil {
		t.Error("bad element accepted")
	}
	if e, err := parseE(""); err != nil || e != nil {
		t.Error("empty e should be nil")
	}
}
