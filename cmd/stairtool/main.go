// Command stairtool shards a file across simulated devices with STAIR
// protection, injects corruption, and repairs it — a miniature end-to-end
// deployment of the library.
//
//	stairtool encode  -in data.bin -dir shards -n 8 -r 4 -m 2 -e 1,1,2
//	stairtool corrupt -dir shards -device 3
//	stairtool corrupt -dir shards -device 5 -sector 17
//	stairtool corrupt -dir shards -device 2 -burst 40:4
//	stairtool status  -dir shards
//	stairtool repair  -dir shards
//	stairtool decode  -dir shards -out restored.bin
//	stairtool verify  -dir shards
//	stairtool fleet   -n 6 -spares 1 -base-port 9000 -out fleet.json
//
// Layout: dir/chunk_<d>.bin holds device d's sectors back to back;
// dir/manifest.json records geometry, file length, a SHA-256 of the
// original file, and a CRC-32 per sector. Corruption is detected by CRC
// mismatch, so repair needs no out-of-band loss report.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"stair"
	"stair/internal/gf"
)

type manifest struct {
	N          int      `json:"n"`
	R          int      `json:"r"`
	M          int      `json:"m"`
	E          []int    `json:"e"`
	SectorSize int      `json:"sector_size"`
	Stripes    int      `json:"stripes"`
	FileLength int      `json:"file_length"`
	FileSHA256 string   `json:"file_sha256"`
	CRCs       []uint32 `json:"sector_crcs"` // device-major: dev*stripes*r + sector
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// A typo'd STAIR_GF_KERNEL should fail before any shard is touched.
	if err := gf.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "stairtool:", err)
		os.Exit(1)
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "corrupt":
		err = cmdCorrupt(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stairtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: stairtool {encode|corrupt|repair|decode|verify|status|fleet} [flags]")
	os.Exit(2)
}

// cmdFleet generates a cluster fleet file for staird: n active device
// servers plus the requested spares, on consecutive ports of one host.
//
//	stairtool fleet -n 6 -spares 1 -host 127.0.0.1 -base-port 9000 -out fleet.json
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	n := fs.Int("n", 6, "active device servers")
	spares := fs.Int("spares", 1, "spare device servers")
	host := fs.String("host", "127.0.0.1", "device server host")
	basePort := fs.Int("base-port", 9000, "first device server port")
	out := fs.String("out", "", "output path (default: stdout)")
	fs.Parse(args)
	if *n < 1 || *spares < 0 {
		return fmt.Errorf("fleet: need n ≥ 1 actives and spares ≥ 0 (got %d, %d)", *n, *spares)
	}
	type server struct {
		Name  string `json:"name"`
		URL   string `json:"url"`
		Spare bool   `json:"spare,omitempty"`
	}
	var fleet struct {
		Servers []server `json:"servers"`
	}
	for i := 0; i < *n+*spares; i++ {
		fleet.Servers = append(fleet.Servers, server{
			Name:  fmt.Sprintf("dev%d", i),
			URL:   fmt.Sprintf("http://%s:%d", *host, *basePort+i),
			Spare: i >= *n,
		})
	}
	enc, err := json.MarshalIndent(fleet, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

func parseE(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad e element %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func codeOf(m *manifest) (*stair.Code, error) {
	return stair.New(stair.Config{N: m.N, R: m.R, M: m.M, E: m.E})
}

func loadManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("parsing manifest: %w", err)
	}
	return &m, nil
}

func saveManifest(dir string, m *manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), raw, 0o644)
}

func chunkPath(dir string, dev int) string {
	return filepath.Join(dir, fmt.Sprintf("chunk_%d.bin", dev))
}

// loadChunks reads every device file; missing files come back as zeroed
// buffers (a failed device).
func loadChunks(dir string, m *manifest) ([][]byte, []bool, error) {
	chunkBytes := m.Stripes * m.R * m.SectorSize
	chunks := make([][]byte, m.N)
	missing := make([]bool, m.N)
	for dev := 0; dev < m.N; dev++ {
		raw, err := os.ReadFile(chunkPath(dir, dev))
		switch {
		case errors.Is(err, os.ErrNotExist):
			raw = make([]byte, chunkBytes)
			missing[dev] = true
		case err != nil:
			return nil, nil, err
		case len(raw) != chunkBytes:
			return nil, nil, fmt.Errorf("chunk %d has %d bytes, want %d", dev, len(raw), chunkBytes)
		}
		chunks[dev] = raw
	}
	return chunks, missing, nil
}

func sectorAt(m *manifest, chunks [][]byte, dev, sector int) []byte {
	off := sector * m.SectorSize
	return chunks[dev][off : off+m.SectorSize]
}

func crcIndex(m *manifest, dev, sector int) int { return dev*m.Stripes*m.R + sector }

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	dir := fs.String("dir", "", "output shard directory")
	n := fs.Int("n", 8, "devices per stripe")
	r := fs.Int("r", 4, "sectors per chunk")
	m := fs.Int("m", 2, "device-failure tolerance")
	eStr := fs.String("e", "1,1,2", "sector-failure coverage vector, e.g. 1,1,2")
	sectorSize := fs.Int("sector", 4096, "sector size in bytes")
	fs.Parse(args)
	if *in == "" || *dir == "" {
		return errors.New("encode: -in and -dir are required")
	}
	e, err := parseE(*eStr)
	if err != nil {
		return err
	}
	code, err := stair.New(stair.Config{N: *n, R: *r, M: *m, E: e})
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	dataPerStripe := code.NumDataCells() * *sectorSize
	stripes := (len(data) + dataPerStripe - 1) / dataPerStripe
	if stripes == 0 {
		stripes = 1
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	man := &manifest{
		N: *n, R: *r, M: *m, E: code.E(), SectorSize: *sectorSize,
		Stripes: stripes, FileLength: len(data),
	}
	sum := sha256.Sum256(data)
	man.FileSHA256 = hex.EncodeToString(sum[:])
	chunks := make([][]byte, *n)
	for dev := range chunks {
		chunks[dev] = make([]byte, stripes**r**sectorSize)
	}
	offset := 0
	for stripe := 0; stripe < stripes; stripe++ {
		st, err := code.NewStripe(*sectorSize)
		if err != nil {
			return err
		}
		for _, cell := range code.DataCells() {
			if offset < len(data) {
				offset += copy(st.Sector(cell.Col, cell.Row), data[offset:])
			}
		}
		if err := code.Encode(st); err != nil {
			return err
		}
		for col := 0; col < *n; col++ {
			for row := 0; row < *r; row++ {
				copy(sectorAt(man, chunks, col, stripe**r+row), st.Sector(col, row))
			}
		}
	}
	man.CRCs = make([]uint32, *n*stripes**r)
	for dev := 0; dev < *n; dev++ {
		for sec := 0; sec < stripes**r; sec++ {
			man.CRCs[crcIndex(man, dev, sec)] = crc32.ChecksumIEEE(sectorAt(man, chunks, dev, sec))
		}
	}
	for dev := 0; dev < *n; dev++ {
		if err := os.WriteFile(chunkPath(*dir, dev), chunks[dev], 0o644); err != nil {
			return err
		}
	}
	if err := saveManifest(*dir, man); err != nil {
		return err
	}
	fmt.Printf("encoded %d bytes into %d stripes across %d devices (%s)\n",
		len(data), stripes, *n, *dir)
	fmt.Printf("config: %v, storage efficiency %.1f%%\n",
		code.Config(), 100*code.StorageEfficiency())
	return nil
}

func cmdCorrupt(args []string) error {
	fs := flag.NewFlagSet("corrupt", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	device := fs.Int("device", -1, "device to corrupt")
	sector := fs.Int("sector", -1, "single sector index on the device (default: whole device)")
	burst := fs.String("burst", "", "start:length run of sectors")
	fs.Parse(args)
	if *dir == "" || *device < 0 {
		return errors.New("corrupt: -dir and -device are required")
	}
	m, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	if *device >= m.N {
		return fmt.Errorf("device %d out of range [0,%d)", *device, m.N)
	}
	switch {
	case *burst != "":
		parts := strings.SplitN(*burst, ":", 2)
		if len(parts) != 2 {
			return errors.New("corrupt: -burst wants start:length")
		}
		start, err1 := strconv.Atoi(parts[0])
		length, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return errors.New("corrupt: bad -burst")
		}
		return corruptSectors(*dir, m, *device, start, length)
	case *sector >= 0:
		return corruptSectors(*dir, m, *device, *sector, 1)
	default:
		// Whole device: remove the chunk file.
		if err := os.Remove(chunkPath(*dir, *device)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		fmt.Printf("device %d destroyed\n", *device)
		return nil
	}
}

func corruptSectors(dir string, m *manifest, dev, start, length int) error {
	path := chunkPath(dir, dev)
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("device %d is already destroyed", dev)
	}
	total := m.Stripes * m.R
	for i := 0; i < length; i++ {
		s := start + i
		if s >= total {
			break
		}
		off := s * m.SectorSize
		for j := 0; j < m.SectorSize; j++ {
			raw[off+j] ^= 0xFF // flip everything: CRC will catch it
		}
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("corrupted %d sector(s) starting at %d on device %d\n", length, start, dev)
	return nil
}

// detectLost returns per-stripe lost cells from CRC mismatches and
// missing devices.
func detectLost(m *manifest, chunks [][]byte, missing []bool) [][]stair.Cell {
	lost := make([][]stair.Cell, m.Stripes)
	for dev := 0; dev < m.N; dev++ {
		for sec := 0; sec < m.Stripes*m.R; sec++ {
			bad := missing[dev] ||
				crc32.ChecksumIEEE(sectorAt(m, chunks, dev, sec)) != m.CRCs[crcIndex(m, dev, sec)]
			if bad {
				stripe := sec / m.R
				lost[stripe] = append(lost[stripe], stair.Cell{Col: dev, Row: sec % m.R})
			}
		}
	}
	return lost
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	fs.Parse(args)
	m, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	chunks, missing, err := loadChunks(*dir, m)
	if err != nil {
		return err
	}
	lost := detectLost(m, chunks, missing)
	totalBad := 0
	for stripe, cells := range lost {
		if len(cells) > 0 {
			fmt.Printf("stripe %d: %d lost sectors %v\n", stripe, len(cells), cells)
			totalBad += len(cells)
		}
	}
	for dev, gone := range missing {
		if gone {
			fmt.Printf("device %d: destroyed\n", dev)
		}
	}
	if totalBad == 0 {
		fmt.Println("all sectors healthy")
	}
	return nil
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	fs.Parse(args)
	m, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	code, err := codeOf(m)
	if err != nil {
		return err
	}
	chunks, missing, err := loadChunks(*dir, m)
	if err != nil {
		return err
	}
	lost := detectLost(m, chunks, missing)
	repaired := 0
	for stripe := 0; stripe < m.Stripes; stripe++ {
		if len(lost[stripe]) == 0 {
			continue
		}
		st, err := code.NewStripe(m.SectorSize)
		if err != nil {
			return err
		}
		for col := 0; col < m.N; col++ {
			for row := 0; row < m.R; row++ {
				copy(st.Sector(col, row), sectorAt(m, chunks, col, stripe*m.R+row))
			}
		}
		if err := code.Repair(st, lost[stripe]); err != nil {
			return fmt.Errorf("stripe %d: %w", stripe, err)
		}
		for _, cell := range lost[stripe] {
			copy(sectorAt(m, chunks, cell.Col, stripe*m.R+cell.Row), st.Sector(cell.Col, cell.Row))
			repaired++
		}
	}
	for dev := 0; dev < m.N; dev++ {
		if err := os.WriteFile(chunkPath(*dir, dev), chunks[dev], 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("repaired %d sectors\n", repaired)
	return nil
}

func assemble(m *manifest, chunks [][]byte) ([]byte, error) {
	code, err := codeOf(m)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, m.FileLength)
	for stripe := 0; stripe < m.Stripes && len(out) < m.FileLength; stripe++ {
		for _, cell := range code.DataCells() {
			sec := sectorAt(m, chunks, cell.Col, stripe*m.R+cell.Row)
			remain := m.FileLength - len(out)
			if remain <= 0 {
				break
			}
			if remain < len(sec) {
				out = append(out, sec[:remain]...)
			} else {
				out = append(out, sec...)
			}
		}
	}
	return out, nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	out := fs.String("out", "", "output file")
	fs.Parse(args)
	if *dir == "" || *out == "" {
		return errors.New("decode: -dir and -out are required")
	}
	m, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	chunks, _, err := loadChunks(*dir, m)
	if err != nil {
		return err
	}
	data, err := assemble(m, chunks)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != m.FileSHA256 {
		return errors.New("decode: reassembled data fails SHA-256 check; run repair first")
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes to %s (SHA-256 verified)\n", len(data), *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	fs.Parse(args)
	m, err := loadManifest(*dir)
	if err != nil {
		return err
	}
	chunks, missing, err := loadChunks(*dir, m)
	if err != nil {
		return err
	}
	lost := detectLost(m, chunks, missing)
	bad := 0
	for _, cells := range lost {
		bad += len(cells)
	}
	if bad > 0 {
		return fmt.Errorf("verify: %d bad sectors (run repair)", bad)
	}
	data, err := assemble(m, chunks)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != m.FileSHA256 {
		return errors.New("verify: SHA-256 mismatch")
	}
	fmt.Println("verify: all sectors healthy, SHA-256 matches")
	return nil
}
