package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestEndToEnd drives the tool's command functions through a full
// encode → corrupt (device + burst + sector) → repair → verify → decode
// cycle in a temp directory.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")

	data := make([]byte, 50000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := cmdEncode([]string{"-in", in, "-dir", shards, "-n", "8", "-r", "4", "-m", "2", "-e", "1,1,2", "-sector", "512"}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := cmdVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify fresh: %v", err)
	}
	// Kill two devices, flip a burst and a single sector.
	if err := cmdCorrupt([]string{"-dir", shards, "-device", "3"}); err != nil {
		t.Fatalf("corrupt device: %v", err)
	}
	if err := cmdCorrupt([]string{"-dir", shards, "-device", "6"}); err != nil {
		t.Fatalf("corrupt device: %v", err)
	}
	if err := cmdCorrupt([]string{"-dir", shards, "-device", "0", "-burst", "9:2"}); err != nil {
		t.Fatalf("corrupt burst: %v", err)
	}
	if err := cmdCorrupt([]string{"-dir", shards, "-device", "1", "-sector", "5"}); err != nil {
		t.Fatalf("corrupt sector: %v", err)
	}
	if err := cmdVerify([]string{"-dir", shards}); err == nil {
		t.Fatal("verify passed on corrupted shards")
	}
	if err := cmdStatus([]string{"-dir", shards}); err != nil {
		t.Fatalf("status: %v", err)
	}
	if err := cmdRepair([]string{"-dir", shards}); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if err := cmdVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
	if err := cmdDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored file differs from original")
	}
}

// TestRepairBeyondCoverageFails: destroying m+1 devices must make
// repair fail loudly, not silently corrupt.
func TestRepairBeyondCoverageFails(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	shards := filepath.Join(dir, "shards")
	data := make([]byte, 10000)
	rand.New(rand.NewSource(2)).Read(data)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEncode([]string{"-in", in, "-dir", shards, "-n", "6", "-r", "4", "-m", "1", "-e", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"0", "1"} {
		if err := cmdCorrupt([]string{"-dir", shards, "-device", dev}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmdRepair([]string{"-dir", shards}); err == nil {
		t.Fatal("repair of m+1 failed devices succeeded")
	}
}

func TestParseE(t *testing.T) {
	e, err := parseE("1, 2,3")
	if err != nil || len(e) != 3 || e[2] != 3 {
		t.Errorf("parseE: %v %v", e, err)
	}
	if _, err := parseE("1,x"); err == nil {
		t.Error("bad element accepted")
	}
	if e, err := parseE(""); err != nil || e != nil {
		t.Error("empty e should be nil")
	}
}
