package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"stair/internal/core"
	"stair/internal/store"
)

func init() {
	register("store", "block-store throughput, healthy vs degraded (writes BENCH_store.json)", runStore)
}

// storeBenchConfig pins the measured volume so the JSON is reproducible
// run to run (throughput varies with the machine; the shape does not).
// The concurrency fields record how the sharded store was tuned — the
// *-concurrent scenarios compare LockShards=1 (the old global-mutex
// regime) against this configuration.
type storeBenchConfig struct {
	N             int   `json:"n"`
	R             int   `json:"r"`
	M             int   `json:"m"`
	E             []int `json:"e"`
	SectorSize    int   `json:"sector_size"`
	Stripes       int   `json:"stripes"`
	UserBytes     int   `json:"user_bytes"`
	RepairWorkers int   `json:"repair_workers"`
	LockShards    int   `json:"lock_shards"`
	DegradedCache int   `json:"degraded_cache"`
	LoadWorkers   int   `json:"load_workers"`
	// GoMaxProcs records the host parallelism the run had: the
	// *-concurrent entries can only scale past the 1-shard baseline
	// when this exceeds 1 (on a single core, sharding buys concurrency
	// but the CPU bounds wall-clock throughput).
	GoMaxProcs int `json:"gomaxprocs"`
	// LatencyMS and LatencyStripes describe the *-latency-* scenarios:
	// a store over LatencyDevice-wrapped memory devices charging
	// LatencyMS per device *call*, measured vectored (one call per
	// device per stripe) and through the PerSectorDevice adapter (one
	// call per sector — what the pre-redesign API paid). The spread
	// between the two is the vectored-I/O win on remote-like media.
	LatencyMS      float64 `json:"latency_ms"`
	LatencyStripes int     `json:"latency_stripes"`
	// GFKernel records which GF region kernel (internal/gf dispatch:
	// avx2/ssse3/neon/portable, or a STAIR_GF_KERNEL override) computed
	// every encode/decode in this run — throughput entries are only
	// comparable across runs with the same kernel.
	GFKernel string `json:"gf_kernel"`
	// FlushWorkers is the pipeline width of the *-async-* scenarios:
	// the same fill on the same LatencyMS media, flushed synchronously
	// (async-off) versus through the background pipeline (async-<N>w),
	// which overlaps one stripe's device round trips with another's
	// encode. On per-call-latency media the win tracks the pipeline
	// width up to the stripe count.
	FlushWorkers int `json:"flush_workers"`
}

type storeBenchResult struct {
	// Op names the scenario, e.g. "read-degraded-2dev".
	Op string `json:"op"`
	// MiBps is user-data throughput in MiB/s (raw stripe bytes for the
	// scrub scenario).
	MiBps float64 `json:"mib_per_s"`
	// AllocsPerOp and BytesPerOp are heap allocations (count and bytes)
	// amortised per block-sized unit of the scenario's work — the
	// steady-state figure the slab arena and buffer pool are meant to
	// hold at ~0 for the healthy read and full-stripe write paths.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Note documents what the scenario exercises.
	Note string `json:"note,omitempty"`
}

// measureAllocs runs op once and reports heap allocations amortised
// over ops block-sized units of work. Counter deltas, not GC-dependent
// heap sizes, so no explicit GC is needed; the store is quiescent
// between scenarios, so the deltas belong to the measured op.
func measureAllocs(ops int, op func() error) (allocsPerOp, bytesPerOp float64) {
	if ops <= 0 {
		ops = 1
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := op(); err != nil {
		return 0, 0
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(ops),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
}

type storeBenchReport struct {
	Config  storeBenchConfig   `json:"config"`
	Results []storeBenchResult `json:"results"`
	// Cluster, EncodePath and Scenario hold the cluster, encpath and
	// scenario experiments' sections; each experiment rewrites only its
	// own part of BENCH_store.json.
	Cluster    *clusterBenchReport  `json:"cluster,omitempty"`
	EncodePath []encodePathEntry    `json:"encode_path,omitempty"`
	Scenario   *scenarioBenchReport `json:"scenario,omitempty"`
}

// runStore measures the internal/store data paths end to end — batched
// full-stripe writes, sub-stripe incremental updates, healthy reads,
// degraded reads under 1 and m device failures, and a scrub sweep — and
// emits the table plus a machine-readable BENCH_store.json.
func runStore(o options) error {
	ctx := context.Background()
	const (
		n, r, m       = 8, 16, 2
		stripes       = 8
		repairWorkers = 2
		lockShards    = 32
		degradedCache = 8
	)
	e := []int{1, 1, 2}
	code, err := core.New(core.Config{N: n, R: r, M: m, E: e})
	if err != nil {
		return err
	}
	sector := sectorSizeFor(o.stripeMiB<<20, n, r, code.Field().SymbolBytes())
	// At least 4 workers even on small hosts, so the concurrent
	// scenarios always exercise the sharded locks; wall-clock scaling
	// over the 1-shard baseline shows up with spare cores.
	loadWorkers := runtime.GOMAXPROCS(0)
	if loadWorkers < 4 {
		loadWorkers = 4
	}
	if loadWorkers > stripes {
		loadWorkers = stripes
	}

	openShards := func(shards int) (*store.Store, error) {
		return store.Open(store.Config{
			Code: code, SectorSize: sector, Stripes: stripes,
			RepairWorkers: repairWorkers, LockShards: shards,
			DegradedCache: degradedCache, MaxDirtyStripes: stripes,
		})
	}
	open := func() (*store.Store, error) { return openShards(lockShards) }
	fill := func(s *store.Store) error {
		buf := make([]byte, sector)
		rng := rand.New(rand.NewSource(1))
		for b := 0; b < s.Blocks(); b++ {
			rng.Read(buf)
			if err := s.WriteBlock(ctx, b, buf); err != nil {
				return err
			}
		}
		return s.Flush(ctx)
	}
	readAll := func(s *store.Store) error {
		for b := 0; b < s.Blocks(); b++ {
			buf, err := s.ReadBlock(ctx, b)
			if err != nil {
				return err
			}
			s.ReleaseBlock(buf)
		}
		return nil
	}

	s, err := open()
	if err != nil {
		return err
	}
	defer s.Close()
	userBytes := s.Blocks() * sector
	rawBytes := n * r * stripes * sector
	cfg := storeBenchConfig{
		N: n, R: r, M: m, E: e, SectorSize: sector, Stripes: stripes, UserBytes: userBytes,
		RepairWorkers: repairWorkers, LockShards: lockShards,
		DegradedCache: degradedCache, LoadWorkers: loadWorkers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GFKernel:   code.Field().KernelName(),
	}
	var results []storeBenchResult
	add := func(op, note string, bytes int, fn func() error) error {
		mibps, err := timeOp(bytes, fn)
		if err != nil {
			return fmt.Errorf("%s: %w", op, err)
		}
		allocs, allocBytes := measureAllocs(bytes/sector, fn)
		results = append(results, storeBenchResult{
			Op: op, MiBps: mibps, AllocsPerOp: allocs, BytesPerOp: allocBytes, Note: note,
		})
		return nil
	}

	if err := add("write-seq", "sequential fill: batched parallel full-stripe encodes", userBytes,
		func() error { return fill(s) }); err != nil {
		return err
	}
	if err := add("read-healthy", "sequential read, no failures", userBytes,
		func() error { return readAll(s) }); err != nil {
		return err
	}
	// Sub-stripe updates: one block per stripe, flushed individually
	// through the §5.2 incremental parity path.
	perStripe := s.Blocks() / stripes
	if err := add("write-substripe", "single-block read–modify–write with incremental parity", stripes*sector,
		func() error {
			buf := make([]byte, sector)
			rng := rand.New(rand.NewSource(2))
			for stripe := 0; stripe < stripes; stripe++ {
				rng.Read(buf)
				if err := s.WriteBlock(ctx, stripe*perStripe+stripe%perStripe, buf); err != nil {
					return err
				}
				if err := s.Flush(ctx); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return err
	}
	if err := add("scrub", "full read sweep of every stripe (raw bytes)", rawBytes,
		func() error { _, err := s.Scrub(ctx); return err }); err != nil {
		return err
	}
	s.Quiesce()

	// Degraded scenarios on fresh stores so damage does not accumulate.
	for _, fails := range []int{1, m} {
		ds, err := open()
		if err != nil {
			return err
		}
		if err := fill(ds); err != nil {
			ds.Close()
			return err
		}
		for dev := 0; dev < fails; dev++ {
			if err := ds.FailDevice(dev); err != nil {
				ds.Close()
				return err
			}
		}
		op := fmt.Sprintf("read-degraded-%ddev", fails)
		note := fmt.Sprintf("sequential read with %d failed device(s): upstairs repair + degraded-stripe cache", fails)
		if err := add(op, note, userBytes, func() error { return readAll(ds) }); err != nil {
			ds.Close()
			return err
		}
		ds.Close()
	}

	// End-to-end integrity overhead: the same sequential read against
	// three identically-filled stores — no integrity layer, checksums
	// verified on every read (the full tax), and records maintained but
	// verification disabled (isolating the read-side CRC check from the
	// write-side record upkeep). The three are measured interleaved,
	// best-of-3 each, so machine-state drift between scenarios cancels
	// out of the overhead figure instead of polluting it.
	openInteg := func(opts *store.IntegrityOptions) (*store.Store, error) {
		return store.Open(store.Config{
			Code: code, SectorSize: sector, Stripes: stripes,
			RepairWorkers: repairWorkers, LockShards: lockShards,
			DegradedCache: degradedCache, MaxDirtyStripes: stripes,
			Integrity: opts,
		})
	}
	integStores := make([]*store.Store, 3)
	for i, opts := range []*store.IntegrityOptions{
		nil,
		{Epoch: 1},
		{Epoch: 1, DisableVerify: true},
	} {
		is, err := openInteg(opts)
		if err != nil {
			return err
		}
		defer is.Close()
		integStores[i] = is
	}
	integOps := []struct {
		op, note string
	}{
		{"read-integrity-baseline", "no integrity layer (paired baseline for the rows below)"},
		{"read-integrity-verified", "per-sector checksums verified on every read"},
		{"read-integrity-noverify", "checksum records maintained on writes, reads unverified"},
	}
	writeMiBps := make([]float64, 3)
	for i, is := range integStores {
		mibps, err := timeOp(userBytes, func() error { return fill(is) })
		if err != nil {
			return fmt.Errorf("write-%s: %w", integOps[i].op, err)
		}
		writeMiBps[i] = mibps
	}
	best := make([]float64, 3)
	for round := 0; round < 3; round++ {
		for i, is := range integStores {
			mibps, err := timeOp(userBytes, func() error { return readAll(is) })
			if err != nil {
				return fmt.Errorf("%s: %w", integOps[i].op, err)
			}
			if mibps > best[i] {
				best[i] = mibps
			}
		}
	}
	wAllocs, wBytes := measureAllocs(userBytes/sector, func() error { return fill(integStores[1]) })
	results = append(results, storeBenchResult{
		Op: "write-seq-integrity-verified", MiBps: writeMiBps[1],
		AllocsPerOp: wAllocs, BytesPerOp: wBytes,
		Note: fmt.Sprintf("sequential fill with record upkeep (baseline %.1f MiB/s)", writeMiBps[0]),
	})
	for i, op := range integOps {
		note := op.note
		if i > 0 && best[0] > 0 {
			note += fmt.Sprintf(" (%.1f%% vs paired baseline)", (best[0]-best[i])/best[0]*100)
		}
		is := integStores[i]
		rAllocs, rBytes := measureAllocs(userBytes/sector, func() error { return readAll(is) })
		results = append(results, storeBenchResult{
			Op: op.op, MiBps: best[i], AllocsPerOp: rAllocs, BytesPerOp: rBytes, Note: note,
		})
	}

	// Concurrent load over disjoint stripe ranges: the same operation on
	// a 1-shard store (every stripe behind one lock — the old
	// global-mutex regime) and on the sharded store, so the JSON records
	// the scaling the striped lock table buys.
	split := func(workers int, fn func(stripe int) error) error {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		per := stripes / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*per, (w+1)*per
			if w == workers-1 {
				hi = stripes
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for stripe := lo; stripe < hi; stripe++ {
					if err := fn(stripe); err != nil {
						errs <- err
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}
	for _, bench := range []struct {
		suffix string
		shards int
	}{
		{"-1shard", 1},
		{"", lockShards},
	} {
		cs, err := openShards(bench.shards)
		if err != nil {
			return err
		}
		if err := fill(cs); err != nil {
			cs.Close()
			return err
		}
		perStripe := cs.Blocks() / stripes
		regime := fmt.Sprintf("%d workers, disjoint stripes, %d lock shard(s), GOMAXPROCS=%d",
			loadWorkers, bench.shards, runtime.GOMAXPROCS(0))
		if err := add("write-concurrent"+bench.suffix, regime+": parallel full-stripe encodes", userBytes,
			func() error {
				buf := make([]byte, sector)
				rand.New(rand.NewSource(3)).Read(buf)
				return split(loadWorkers, func(stripe int) error {
					for ord := 0; ord < perStripe; ord++ {
						if err := cs.WriteBlock(ctx, stripe*perStripe+ord, buf); err != nil {
							return err
						}
					}
					return nil
				})
			}); err != nil {
			cs.Close()
			return err
		}
		if err := cs.Flush(ctx); err != nil {
			cs.Close()
			return err
		}
		if err := add("read-concurrent"+bench.suffix, regime+": healthy reads", userBytes,
			func() error {
				return split(loadWorkers, func(stripe int) error {
					for ord := 0; ord < perStripe; ord++ {
						buf, err := cs.ReadBlock(ctx, stripe*perStripe+ord)
						if err != nil {
							return err
						}
						cs.ReleaseBlock(buf)
					}
					return nil
				})
			}); err != nil {
			cs.Close()
			return err
		}
		cs.Close()
	}

	// Per-backend comparison on simulated remote media: every device
	// call costs latencyMS, so the scenarios measure calls, not bytes.
	// The vectored store issues one call per device per stripe on the
	// flush/load/scrub paths; the per-sector baseline (the old API's
	// regime, reproduced by PerSectorDevice) issues one per sector and
	// pays R× the round trips.
	const (
		latencyMS      = 1
		latencyStripes = 4
	)
	cfg.LatencyMS, cfg.LatencyStripes = latencyMS, latencyStripes
	openWrapped := func(wrap func(store.Device) store.Device) (*store.Store, error) {
		devs := make([]store.Device, n)
		for i := range devs {
			devs[i] = wrap(store.NewMemDevice(latencyStripes*r, sector))
		}
		return store.Open(store.Config{
			Code: code, SectorSize: sector, Stripes: latencyStripes, Devices: devs,
			RepairWorkers: repairWorkers, LockShards: lockShards,
			DegradedCache: degradedCache, MaxDirtyStripes: latencyStripes,
		})
	}
	for _, backend := range []struct {
		suffix string
		wrap   func(store.Device) store.Device
	}{
		{"latency-vectored", func(d store.Device) store.Device {
			return store.NewLatencyDevice(d, latencyMS*time.Millisecond, 0)
		}},
		{"latency-persector", func(d store.Device) store.Device {
			return store.NewPerSectorDevice(store.NewLatencyDevice(d, latencyMS*time.Millisecond, 0))
		}},
	} {
		ls, err := openWrapped(backend.wrap)
		if err != nil {
			return err
		}
		lsBytes := ls.Blocks() * sector
		lsRaw := n * r * latencyStripes * sector
		regime := fmt.Sprintf("%dms/call devices, %s", latencyMS, backend.suffix)
		if err := add("write-seq-"+backend.suffix, regime+": full-stripe flushes", lsBytes,
			func() error { return fill(ls) }); err != nil {
			ls.Close()
			return err
		}
		if err := add("scrub-"+backend.suffix, regime+": read sweep (raw bytes)", lsRaw,
			func() error { _, err := ls.Scrub(ctx); return err }); err != nil {
			ls.Close()
			return err
		}
		// Degraded reads: one lost block per stripe, so the measured cost
		// is the full-stripe load feeding the reconstruction — the path
		// whose round-trip count the vectored API collapses from n×r to
		// n. Re-failing the device inside the measured op purges the
		// degraded cache, so every iteration (including timeOp's
		// warm-up) re-pays those stripe loads.
		perStripeBlocks := len(code.DataCells())
		var deadBlocks []int
		for stripe := 0; stripe < latencyStripes; stripe++ {
			for ord := 0; ord < perStripeBlocks; ord++ {
				if code.DataCells()[ord].Col == 0 {
					deadBlocks = append(deadBlocks, stripe*perStripeBlocks+ord)
					break
				}
			}
		}
		if err := add("read-degraded-"+backend.suffix, regime+": stripe loads for reconstruction", len(deadBlocks)*sector,
			func() error {
				if err := ls.FailDevice(0); err != nil {
					return err
				}
				for _, b := range deadBlocks {
					buf, err := ls.ReadBlock(ctx, b)
					if err != nil {
						return err
					}
					ls.ReleaseBlock(buf)
				}
				return nil
			}); err != nil {
			ls.Close()
			return err
		}
		ls.Close()
	}

	// Synchronous vs pipelined flush on the same 1 ms/call media: the
	// sequential fill is identical, but with FlushWorkers the filled
	// stripe buffers land through the background pipeline, so separate
	// stripes' write-backs (n calls × 1 ms each) overlap instead of
	// serialising behind each WriteBlock.
	const asyncFlushWorkers = 4
	cfg.FlushWorkers = asyncFlushWorkers
	for _, mode := range []struct {
		suffix  string
		workers int
	}{
		{"async-off", 0},
		{fmt.Sprintf("async-%dw", asyncFlushWorkers), asyncFlushWorkers},
	} {
		devs := make([]store.Device, n)
		for i := range devs {
			devs[i] = store.NewLatencyDevice(store.NewMemDevice(latencyStripes*r, sector), latencyMS*time.Millisecond, 0)
		}
		as, err := store.Open(store.Config{
			Code: code, SectorSize: sector, Stripes: latencyStripes, Devices: devs,
			RepairWorkers: repairWorkers, LockShards: lockShards,
			DegradedCache: degradedCache, MaxDirtyStripes: latencyStripes,
			FlushWorkers: mode.workers,
		})
		if err != nil {
			return err
		}
		asBytes := as.Blocks() * sector
		regime := fmt.Sprintf("%dms/call devices, %s", latencyMS, mode.suffix)
		note := regime + ": synchronous full-stripe flushes"
		if mode.workers > 0 {
			note = fmt.Sprintf("%s: %d-worker flush pipeline (encode/write-back overlap)", regime, mode.workers)
		}
		if err := add("write-seq-"+mode.suffix, note, asBytes,
			func() error { return fill(as) }); err != nil {
			as.Close()
			return err
		}
		as.Close()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "op\tMiB/s\tallocs/op\tB/op\tnote\n")
	for _, res := range results {
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.0f\t%s\n", res.Op, res.MiBps, res.AllocsPerOp, res.BytesPerOp, res.Note)
	}
	w.Flush()

	prev := loadStoreReport()
	report := storeBenchReport{Config: cfg, Results: results,
		Cluster: prev.Cluster, EncodePath: prev.EncodePath, Scenario: prev.Scenario}
	if err := writeStoreReport(report); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_store.json")
	return nil
}
