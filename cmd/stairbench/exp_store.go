package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"stair/internal/core"
	"stair/internal/store"
)

func init() {
	register("store", "block-store throughput, healthy vs degraded (writes BENCH_store.json)", runStore)
}

// storeBenchConfig pins the measured volume so the JSON is reproducible
// run to run (throughput varies with the machine; the shape does not).
type storeBenchConfig struct {
	N          int   `json:"n"`
	R          int   `json:"r"`
	M          int   `json:"m"`
	E          []int `json:"e"`
	SectorSize int   `json:"sector_size"`
	Stripes    int   `json:"stripes"`
	UserBytes  int   `json:"user_bytes"`
}

type storeBenchResult struct {
	// Op names the scenario, e.g. "read-degraded-2dev".
	Op string `json:"op"`
	// MiBps is user-data throughput in MiB/s (raw stripe bytes for the
	// scrub scenario).
	MiBps float64 `json:"mib_per_s"`
	// Note documents what the scenario exercises.
	Note string `json:"note,omitempty"`
}

type storeBenchReport struct {
	Config  storeBenchConfig   `json:"config"`
	Results []storeBenchResult `json:"results"`
}

// runStore measures the internal/store data paths end to end — batched
// full-stripe writes, sub-stripe incremental updates, healthy reads,
// degraded reads under 1 and m device failures, and a scrub sweep — and
// emits the table plus a machine-readable BENCH_store.json.
func runStore(o options) error {
	const (
		n, r, m = 8, 16, 2
		stripes = 8
	)
	e := []int{1, 1, 2}
	code, err := core.New(core.Config{N: n, R: r, M: m, E: e})
	if err != nil {
		return err
	}
	sector := sectorSizeFor(o.stripeMiB<<20, n, r, code.Field().SymbolBytes())

	open := func() (*store.Store, error) {
		return store.Open(store.Config{Code: code, SectorSize: sector, Stripes: stripes})
	}
	fill := func(s *store.Store) error {
		buf := make([]byte, sector)
		rng := rand.New(rand.NewSource(1))
		for b := 0; b < s.Blocks(); b++ {
			rng.Read(buf)
			if err := s.WriteBlock(b, buf); err != nil {
				return err
			}
		}
		return s.Flush()
	}
	readAll := func(s *store.Store) error {
		for b := 0; b < s.Blocks(); b++ {
			if _, err := s.ReadBlock(b); err != nil {
				return err
			}
		}
		return nil
	}

	s, err := open()
	if err != nil {
		return err
	}
	defer s.Close()
	userBytes := s.Blocks() * sector
	rawBytes := n * r * stripes * sector
	cfg := storeBenchConfig{N: n, R: r, M: m, E: e, SectorSize: sector, Stripes: stripes, UserBytes: userBytes}
	var results []storeBenchResult
	add := func(op, note string, bytes int, fn func() error) error {
		mibps, err := timeOp(bytes, fn)
		if err != nil {
			return fmt.Errorf("%s: %w", op, err)
		}
		results = append(results, storeBenchResult{Op: op, MiBps: mibps, Note: note})
		return nil
	}

	if err := add("write-seq", "sequential fill: batched parallel full-stripe encodes", userBytes,
		func() error { return fill(s) }); err != nil {
		return err
	}
	if err := add("read-healthy", "sequential read, no failures", userBytes,
		func() error { return readAll(s) }); err != nil {
		return err
	}
	// Sub-stripe updates: one block per stripe, flushed individually
	// through the §5.2 incremental parity path.
	perStripe := s.Blocks() / stripes
	if err := add("write-substripe", "single-block read–modify–write with incremental parity", stripes*sector,
		func() error {
			buf := make([]byte, sector)
			rng := rand.New(rand.NewSource(2))
			for stripe := 0; stripe < stripes; stripe++ {
				rng.Read(buf)
				if err := s.WriteBlock(stripe*perStripe+stripe%perStripe, buf); err != nil {
					return err
				}
				if err := s.Flush(); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return err
	}
	if err := add("scrub", "full read sweep of every stripe (raw bytes)", rawBytes,
		func() error { _, err := s.Scrub(); return err }); err != nil {
		return err
	}
	s.Quiesce()

	// Degraded scenarios on fresh stores so damage does not accumulate.
	for _, fails := range []int{1, m} {
		ds, err := open()
		if err != nil {
			return err
		}
		if err := fill(ds); err != nil {
			ds.Close()
			return err
		}
		for dev := 0; dev < fails; dev++ {
			if err := ds.FailDevice(dev); err != nil {
				ds.Close()
				return err
			}
		}
		op := fmt.Sprintf("read-degraded-%ddev", fails)
		note := fmt.Sprintf("sequential read with %d failed device(s): on-the-fly upstairs repair", fails)
		if err := add(op, note, userBytes, func() error { return readAll(ds) }); err != nil {
			ds.Close()
			return err
		}
		ds.Close()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "op\tMiB/s\tnote\n")
	for _, res := range results {
		fmt.Fprintf(w, "%s\t%.1f\t%s\n", res.Op, res.MiBps, res.Note)
	}
	w.Flush()

	report := storeBenchReport{Config: cfg, Results: results}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile("BENCH_store.json", raw, 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_store.json")
	return nil
}
