package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"stair/internal/core"
)

func init() {
	register("fig9", "Mult_XORs of standard/upstairs/downstairs encoding vs e (paper Fig. 9)", runFig9)
	register("fig10", "space saving in devices vs r for s ≤ 4 (paper Fig. 10)", runFig10)
	register("idr", "§2 worked example: STAIR vs IDR redundant sectors (n=8, m=2, β=4)", runIDRExample)
}

func runFig9(options) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "r\te\tstandard\tupstairs\tdownstairs\tchosen\t(actual exec)")
	for _, r := range []int{8, 16, 24, 32} {
		for _, e := range partitions(4, 4, 6) {
			c, err := core.New(core.Config{N: 8, R: r, M: 2, E: e})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%d\t%v\t%d\n", r, e,
				c.Cost(core.MethodStandard), c.Cost(core.MethodUpstairs),
				c.Cost(core.MethodDownstairs), c.Method(), c.CostActual(core.MethodAuto))
		}
	}
	return w.Flush()
}

func runFig10(options) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "s\tm'\tr\tsaving(devices)")
	for s := 1; s <= 4; s++ {
		for mPrime := 1; mPrime <= s; mPrime++ {
			for _, r := range []int{4, 8, 16, 32} {
				// The most even split of s over m' chunks (the shape of
				// Figure 10: the saving depends only on s, m', r).
				e := make([]int, mPrime)
				for i := range e {
					e[i] = s / mPrime
				}
				for i := 0; i < s%mPrime; i++ {
					e[mPrime-1-i]++
				}
				fmt.Fprintf(w, "%d\t%d\t%d\t%.3f\n", s, mPrime, r, core.SpaceSavingDevices(e, r))
			}
		}
	}
	return w.Flush()
}

func runIDRExample(options) error {
	const n, m, beta = 8, 2, 4
	idrSectors := beta * (n - m)
	stairE := []int{1, beta}
	stairSectors := 1 + beta
	fmt.Printf("burst length β=%d, n=%d, m=%d\n", beta, n, m)
	fmt.Printf("IDR scheme:   %d redundant sectors per stripe (β per data chunk)\n", idrSectors)
	fmt.Printf("STAIR e=%v: %d redundant sectors per stripe\n", stairE, stairSectors)
	fmt.Printf("ratio: %.1fx\n", float64(idrSectors)/float64(stairSectors))
	return nil
}
