package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"text/tabwriter"

	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/reliability"
)

func init() {
	register("ablation", "implementation ablations: zero-term elision and parallel workers", runAblation)
	register("monte", "Monte-Carlo validation of the Pstr model via the failure simulator", runMonteCarlo)
}

// runAblation quantifies two implementation choices beyond the paper:
// (a) eliding Mult_XORs whose coefficient or source region is known to be
// zero (actual vs model cost), and (b) data-parallel schedule execution.
func runAblation(o options) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "config\tmethod\tmodel Mult_XOR\tactual\tsaved")
	for _, cfg := range []core.Config{
		{N: 8, R: 16, M: 2, E: []int{1, 1, 2}},
		{N: 8, R: 16, M: 2, E: []int{4}},
		{N: 16, R: 16, M: 2, E: []int{1, 1, 1, 1}},
		{N: 16, R: 16, M: 3, E: []int{1, 3}},
	} {
		c, err := core.New(cfg)
		if err != nil {
			return err
		}
		for _, m := range []core.Method{core.MethodUpstairs, core.MethodDownstairs} {
			model, actual := c.Cost(m), c.CostActual(m)
			fmt.Fprintf(w, "%v\t%v\t%d\t%d\t%.1f%%\n", cfg.E, m, model, actual,
				100*float64(model-actual)/float64(model))
		}
	}
	w.Flush()

	fmt.Println("\nparallel encode (n=16, r=16, m=2, e=(1,1,2)):")
	c, err := core.New(core.Config{N: 16, R: 16, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		return err
	}
	stripe := o.stripeMiB << 20
	st, err := c.NewStripe(sectorSizeFor(stripe, 16, 16, c.Field().SymbolBytes()))
	if err != nil {
		return err
	}
	fillStripe(c, st, 9)
	actualBytes := st.SectorSize * 16 * 16
	w2 := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w2, "workers\tMB/s")
	for _, workers := range []int{1, 2, 4} {
		wk := workers
		speed, err := timeOp(actualBytes, func() error {
			return c.EncodeParallel(st, core.MethodAuto, wk)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w2, "%d\t%.0f\n", workers, speed)
	}
	return w2.Flush()
}

// runMonteCarlo simulates the correlated sector-failure model over many
// stripes and compares the observed unrecoverable fraction with the
// analytic Pstr — the same cross-check the reliability tests run, shown
// here at experiment scale with an exaggerated Psec so events are
// observable.
func runMonteCarlo(options) error {
	// Psec is exaggerated relative to real drives (~1e-10) so failures
	// are observable, but kept small enough that the paper's
	// first-order correlated model (one burst per chunk, no clipping)
	// stays accurate to a few percent: the bias scales with r·Psec/B.
	const (
		n, m, r = 8, 1, 16
		psec    = 0.002
		trials  = 600000
	)
	dist, err := failures.NewBurstDist(0.9, 1.0, r)
	if err != nil {
		return err
	}
	model := reliability.Correlated{Psec: psec, Dist: dist}
	specs := []reliability.CodeSpec{
		{Kind: "rs"},
		{Kind: "stair", E: []int{2}},
		{Kind: "stair", E: []int{1, 2}},
		{Kind: "sd", S: 2},
	}
	rng := rand.New(rand.NewSource(2024))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "code\tanalytic Pstr\tsimulated\trel.err")

	// Draw per-chunk failure counts once per trial and evaluate every
	// coverage on the same sample.
	type covFn struct {
		spec   reliability.CodeSpec
		covers reliability.CoverageFunc
		bad    int
	}
	var fns []covFn
	for _, spec := range specs {
		var cf reliability.CoverageFunc
		switch spec.Kind {
		case "rs":
			cf = reliability.RSCoverage()
		case "stair":
			cf = reliability.StairCoverage(spec.E)
		case "sd":
			cf = reliability.SDCoverage(spec.S)
		}
		fns = append(fns, covFn{spec: spec, covers: cf})
	}
	pStart := psec / dist.Mean()
	for trial := 0; trial < trials; trial++ {
		var counts []int
		for chunk := 0; chunk < n-m; chunk++ {
			lost := failures.LostSectors(failures.ChunkFailures(rng, r, pStart, dist))
			if len(lost) > 0 {
				counts = append(counts, len(lost))
			}
		}
		sort.Ints(counts)
		for i := range fns {
			if !fns[i].covers(counts) {
				fns[i].bad++
			}
		}
	}
	for _, f := range fns {
		analytic := reliability.Pstr(n-m, model, f.covers)
		sim := float64(f.bad) / trials
		rel := 0.0
		if analytic > 0 {
			rel = (sim - analytic) / analytic
		}
		fmt.Fprintf(w, "%s\t%.4g\t%.4g\t%+.1f%%\n", f.spec, analytic, sim, 100*rel)
	}
	fmt.Fprintln(w, "(sampler draws bursts per sector; the analytic model is the paper's")
	fmt.Fprintln(w, " first-order approximation, so a few percent of bias is expected)")
	return w.Flush()
}
