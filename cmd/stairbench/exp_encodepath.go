package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"stair/internal/core"
	"stair/internal/gf"
)

func init() {
	register("encpath", "full-stripe encode: fused source-major planner vs per-op legacy walk (updates BENCH_store.json)", runEncodePath)
}

// encodePathEntry is one kernel's fused-vs-per-op full-stripe encode
// baseline: the same canonical code (n=8, r=16, m=2, e=[1,1,2]) encoded
// through the source-major plan and through the PR 5 op-by-op schedule
// walk (STAIR_PLAN_MODE=legacy). Throughput is raw stripe bytes.
// BENCH_store.json keeps one entry per kernel — run the experiment under
// each STAIR_GF_KERNEL of interest and only that kernel's row is
// replaced, so the per-kernel ladder accumulates without clobbering.
type encodePathEntry struct {
	Kernel     string  `json:"kernel"`
	StripeMiB  int     `json:"stripe_mib"`
	TileBytes  int     `json:"tile_bytes"`
	Stages     int     `json:"stages"`
	FusedCalls int     `json:"fused_calls"`
	MaxFanout  int     `json:"max_fanout"`
	FusedMiBps float64 `json:"fused_mib_per_s"`
	PerOpMiBps float64 `json:"per_op_mib_per_s"`
	Speedup    float64 `json:"speedup"`
}

// runEncodePath measures the data-path A/B the planner exists for: one
// stripe, one kernel, encoded fused and per-op.
func runEncodePath(o options) error {
	const (
		n, r, m = 8, 16, 2
	)
	e := []int{1, 1, 2}

	// STAIR_PLAN_MODE is read at construction time, so the A/B is two
	// constructors; the caller's own setting is restored afterwards.
	prevMode, hadMode := os.LookupEnv("STAIR_PLAN_MODE")
	defer func() {
		if hadMode {
			os.Setenv("STAIR_PLAN_MODE", prevMode)
		} else {
			os.Unsetenv("STAIR_PLAN_MODE")
		}
	}()
	build := func(mode string) (*core.Code, error) {
		os.Setenv("STAIR_PLAN_MODE", mode)
		return core.New(core.Config{N: n, R: r, M: m, E: e})
	}
	fused, err := build("fused")
	if err != nil {
		return err
	}
	legacy, err := build("legacy")
	if err != nil {
		return err
	}
	pi := fused.PlanInfo()
	if pi.Mode != "fused" {
		return fmt.Errorf("encpath: expected a fused plan, got %q", pi.Mode)
	}

	sector := sectorSizeFor(o.stripeMiB<<20, n, r, fused.Field().SymbolBytes())
	rawBytes := sector * n * r
	measure := func(c *core.Code) (float64, error) {
		st, err := c.NewStripe(sector)
		if err != nil {
			return 0, err
		}
		rng := rand.New(rand.NewSource(1))
		for _, cell := range c.DataCells() {
			rng.Read(st.Sector(cell.Col, cell.Row))
		}
		return timeOp(rawBytes, func() error { return c.Encode(st) })
	}
	fusedMiBps, err := measure(fused)
	if err != nil {
		return fmt.Errorf("fused encode: %w", err)
	}
	perOpMiBps, err := measure(legacy)
	if err != nil {
		return fmt.Errorf("per-op encode: %w", err)
	}

	entry := encodePathEntry{
		Kernel:     gf.ActiveKernelName(),
		StripeMiB:  o.stripeMiB,
		TileBytes:  pi.TileBytes,
		Stages:     pi.Stages,
		FusedCalls: pi.FusedCalls,
		MaxFanout:  pi.MaxFanout,
		FusedMiBps: fusedMiBps,
		PerOpMiBps: perOpMiBps,
		Speedup:    fusedMiBps / perOpMiBps,
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "kernel\tstripe\tfused MiB/s\tper-op MiB/s\tspeedup\tplan\n")
	fmt.Fprintf(w, "%s\t%d MiB\t%.1f\t%.1f\t%.2fx\t%d stages, %d fused calls, fan-out ≤%d, %d B tiles\n",
		entry.Kernel, entry.StripeMiB, entry.FusedMiBps, entry.PerOpMiBps, entry.Speedup,
		entry.Stages, entry.FusedCalls, entry.MaxFanout, entry.TileBytes)
	w.Flush()

	// Merge into BENCH_store.json, replacing only this kernel's row.
	report := loadStoreReport()
	replaced := false
	for i := range report.EncodePath {
		if report.EncodePath[i].Kernel == entry.Kernel {
			report.EncodePath[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		report.EncodePath = append(report.EncodePath, entry)
	}
	if err := writeStoreReport(report); err != nil {
		return err
	}
	fmt.Printf("\nupdated BENCH_store.json (encode_path entry for %q)\n", entry.Kernel)
	return nil
}
