package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"stair/internal/cluster"
	"stair/internal/core"
	"stair/internal/store"
)

func init() {
	register("cluster", "cluster volume: hedged vs unhedged tail latency, coalesced vs naive flush (updates BENCH_store.json)", runCluster)
}

// clusterBenchConfig pins the simulated fleet so the JSON entries are
// comparable run to run.
type clusterBenchConfig struct {
	N          int   `json:"n"`
	R          int   `json:"r"`
	M          int   `json:"m"`
	E          []int `json:"e"`
	SectorSize int   `json:"sector_size"`
	Stripes    int   `json:"stripes"`
	// The read fleet's latency profile: every call costs LatencyMS plus
	// uniform jitter, and a SpikeProb fraction stalls an extra SpikeMS —
	// the heavy tail hedging is for. Reads is the measured sample count
	// per scenario (after warm-up).
	LatencyMS float64 `json:"latency_ms"`
	JitterMS  float64 `json:"jitter_ms"`
	SpikeMS   float64 `json:"spike_ms"`
	SpikeProb float64 `json:"spike_prob"`
	Reads     int     `json:"reads"`
	// HedgePercentile is where the hedged scenario launches its
	// sibling reconstruction.
	HedgePercentile float64 `json:"hedge_percentile"`
	// The write fleet's profile: SerialLatencyMS per call with calls
	// queued (single-spindle semantics), flushed by FlushWorkers
	// concurrent stripe write-backs, coalesced within CoalesceWindowMS
	// per backend in the coalesced scenario.
	SerialLatencyMS  float64 `json:"serial_latency_ms"`
	FlushWorkers     int     `json:"flush_workers"`
	CoalesceWindowMS float64 `json:"coalesce_window_ms"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	GFKernel         string  `json:"gf_kernel"`
}

// clusterBenchResult is one scenario's outcome: tail-latency scenarios
// fill P50MS/P99MS, throughput scenarios fill MiBps.
type clusterBenchResult struct {
	Op    string  `json:"op"`
	P50MS float64 `json:"p50_ms,omitempty"`
	P99MS float64 `json:"p99_ms,omitempty"`
	MiBps float64 `json:"mib_per_s,omitempty"`
	Note  string  `json:"note,omitempty"`
}

type clusterBenchReport struct {
	Config  clusterBenchConfig   `json:"config"`
	Results []clusterBenchResult `json:"results"`
}

// runCluster measures the cluster layer's two tail defences over an
// in-process fleet: hedged vs unhedged read latency on spiky backends,
// and coalesced vs naive flush throughput on serial (queued-service)
// backends. Results merge into BENCH_store.json under "cluster",
// preserving the store experiment's entries.
func runCluster(o options) error {
	code, err := core.New(core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	if err != nil {
		return err
	}
	const (
		sector  = 4096
		stripes = 16
		reads   = 2000
	)
	cfg := clusterBenchConfig{
		N: 6, R: 4, M: 2, E: []int{1, 2},
		SectorSize: sector, Stripes: stripes,
		LatencyMS: 0.5, JitterMS: 0.2, SpikeMS: 20, SpikeProb: 0.02,
		Reads:           reads,
		HedgePercentile: 0.9,
		SerialLatencyMS: 2, FlushWorkers: 16, CoalesceWindowMS: 0.5,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GFKernel:   code.KernelName(),
	}
	var results []clusterBenchResult

	spikyProfile := store.LatencyProfile{
		Latency:   time.Duration(cfg.LatencyMS * float64(time.Millisecond)),
		Jitter:    time.Duration(cfg.JitterMS * float64(time.Millisecond)),
		Spike:     time.Duration(cfg.SpikeMS * float64(time.Millisecond)),
		SpikeProb: cfg.SpikeProb,
	}
	serialProfile := store.LatencyProfile{
		Latency: time.Duration(cfg.SerialLatencyMS * float64(time.Millisecond)),
		Serial:  true,
	}

	fleet := &cluster.Fleet{}
	for i := 0; i < code.N(); i++ {
		fleet.Servers = append(fleet.Servers, cluster.Server{
			Name: fmt.Sprintf("s%d", i), URL: "local://",
		})
	}
	openVol := func(profile store.LatencyProfile, hedge *cluster.HedgeConfig, coalesce *store.CoalesceOptions, flushWorkers int) (*cluster.Volume, error) {
		return cluster.Open(context.Background(), cluster.Config{
			Fleet:      fleet,
			VolumeName: "bench",
			Code:       code,
			SectorSize: sector,
			Stripes:    stripes,
			Dial: func(ctx context.Context, server cluster.Server) (store.Device, error) {
				mem := store.NewMemDevice(stripes*code.R(), sector)
				return store.NewLatencyDeviceProfile(mem, profile), nil
			},
			Hedge:           hedge,
			Coalesce:        coalesce,
			FlushWorkers:    flushWorkers,
			MaxDirtyStripes: stripes,
			Monitor:         cluster.MonitorConfig{Interval: time.Hour},
		})
	}

	ctx := context.Background()
	fill := func(v *cluster.Volume) error {
		buf := make([]byte, sector)
		for b := 0; b < v.Blocks(); b++ {
			for i := range buf {
				buf[i] = byte(b + i)
			}
			if err := v.WriteBlock(ctx, b, buf); err != nil {
				return err
			}
		}
		return v.Sync(ctx)
	}

	// --- Tail latency: unhedged vs hedged reads on a spiky fleet ----
	measureReads := func(v *cluster.Volume) ([]time.Duration, error) {
		blocks := v.Blocks()
		// Warm-up pass: touches every column enough to arm the hedge
		// trackers past MinSamples before measurement starts.
		for b := 0; b < blocks; b++ {
			if _, err := v.ReadBlock(ctx, b); err != nil {
				return nil, err
			}
		}
		lat := make([]time.Duration, reads)
		for i := range lat {
			begin := time.Now()
			if _, err := v.ReadBlock(ctx, (i*13)%blocks); err != nil {
				return nil, err
			}
			lat[i] = time.Since(begin)
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat, nil
	}
	quantile := func(lat []time.Duration, q float64) float64 {
		idx := int(q * float64(len(lat)))
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx]) / float64(time.Millisecond)
	}

	for _, mode := range []struct {
		suffix string
		hedge  *cluster.HedgeConfig
		note   string
	}{
		{"unhedged", nil, "spiky fleet, no tail defence: p99 eats the full spike"},
		{"hedged", &cluster.HedgeConfig{Percentile: cfg.HedgePercentile},
			"same fleet, sibling-reconstruction hedge past p90: tail clipped"},
	} {
		v, err := openVol(spikyProfile, mode.hedge, nil, 0)
		if err != nil {
			return err
		}
		if err := fill(v); err != nil {
			v.Close()
			return err
		}
		lat, err := measureReads(v)
		if err != nil {
			v.Close()
			return err
		}
		note := mode.note
		if mode.hedge != nil {
			st := v.Stats()
			note = fmt.Sprintf("%s (launched %d, won %d, lost %d)",
				mode.note, st.HedgesLaunched, st.HedgeWins, st.HedgeLosses)
		}
		results = append(results, clusterBenchResult{
			Op:    "read-" + mode.suffix,
			P50MS: quantile(lat, 0.50),
			P99MS: quantile(lat, 0.99),
			Note:  note,
		})
		v.Close()
	}

	// --- Throughput: naive vs coalesced flush on serial backends ----
	userBytes := float64(0)
	for _, mode := range []struct {
		suffix   string
		coalesce *store.CoalesceOptions
		note     string
	}{
		{"naive", nil, "serial (queued-service) backends: concurrent stripe flushes queue per call"},
		{"coalesced", &store.CoalesceOptions{Window: time.Duration(cfg.CoalesceWindowMS * float64(time.Millisecond))},
			"same backends, adjacent stripe extents merged into one call per backend"},
	} {
		v, err := openVol(serialProfile, nil, mode.coalesce, cfg.FlushWorkers)
		if err != nil {
			return err
		}
		userBytes = float64(v.Blocks()) * float64(sector)
		begin := time.Now()
		if err := fill(v); err != nil {
			v.Close()
			return err
		}
		took := time.Since(begin)
		note := mode.note
		if mode.coalesce != nil {
			cs := v.Stats().Coalesce
			note = fmt.Sprintf("%s (%d caller writes → %d device calls)",
				mode.note, cs.Writes, cs.InnerWrites)
		}
		results = append(results, clusterBenchResult{
			Op:    "write-" + mode.suffix,
			MiBps: userBytes / took.Seconds() / (1 << 20),
			Note:  note,
		})
		v.Close()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "op\tp50 ms\tp99 ms\tMiB/s\tnote\n")
	for _, res := range results {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.1f\t%s\n", res.Op, res.P50MS, res.P99MS, res.MiBps, res.Note)
	}
	w.Flush()

	// Merge into BENCH_store.json without clobbering the store
	// experiment's entries.
	report := loadStoreReport()
	report.Cluster = &clusterBenchReport{Config: cfg, Results: results}
	if err := writeStoreReport(report); err != nil {
		return err
	}
	fmt.Println("\nupdated BENCH_store.json (cluster section)")
	return nil
}

// loadStoreReport reads the existing BENCH_store.json, or returns an
// empty report when there is none.
func loadStoreReport() storeBenchReport {
	var report storeBenchReport
	raw, err := os.ReadFile("BENCH_store.json")
	if err == nil {
		json.Unmarshal(raw, &report)
	}
	return report
}

// writeStoreReport writes the merged report back.
func writeStoreReport(report storeBenchReport) error {
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	return os.WriteFile("BENCH_store.json", raw, 0o644)
}
