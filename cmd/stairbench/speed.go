package main

import (
	"fmt"
	"math/rand"
	"time"

	"stair/internal/core"
	"stair/internal/sd"
)

// partitions enumerates the ascending coverage vectors with sum s whose
// parts do not exceed maxPart and whose length does not exceed maxLen —
// the configuration space "all possible e for a given s" of §6.2.1.
func partitions(s, maxPart, maxLen int) [][]int {
	var out [][]int
	var cur []int
	var rec func(remaining, min int)
	rec = func(remaining, min int) {
		if remaining == 0 {
			out = append(out, append([]int{}, cur...))
			return
		}
		if len(cur) >= maxLen {
			return
		}
		for v := min; v <= remaining && v <= maxPart; v++ {
			cur = append(cur, v)
			rec(remaining-v, v)
			cur = cur[:len(cur)-1]
		}
	}
	rec(s, 1)
	// Ascending partitions generated with min-first recursion are
	// already sorted ascending within each vector.
	return out
}

// worstE returns the coverage vector for the given s with the highest
// chosen-method encoding cost — the paper's conservative "worst case
// over all e" choice (§6.2.1), selected analytically by the Mult_XOR
// model rather than by timing every variant.
func worstE(n, r, m, s int) ([]int, error) {
	var worst []int
	worstCost := -1
	for _, e := range partitions(s, r, n-m) {
		c, err := core.New(core.Config{N: n, R: r, M: m, E: e})
		if err != nil {
			continue
		}
		if cost := c.Cost(core.MethodAuto); cost > worstCost {
			worstCost, worst = cost, e
		}
	}
	if worst == nil {
		return nil, fmt.Errorf("no valid e for n=%d r=%d m=%d s=%d", n, r, m, s)
	}
	return worst, nil
}

// sectorSizeFor splits a stripe budget of bytes across n·r sectors,
// aligned down to align and floored at align.
func sectorSizeFor(stripeBytes, n, r, align int) int {
	s := stripeBytes / (n * r)
	s -= s % align
	if s < align {
		s = align
	}
	return s
}

const (
	minMeasure = 300 * time.Millisecond
	maxIters   = 64
)

// timeOp measures op repeatedly until minMeasure has elapsed and returns
// MB/s relative to the stripe size (MiB per second, like the paper).
func timeOp(stripeBytes int, op func() error) (float64, error) {
	if err := op(); err != nil { // warm-up and validity check
		return 0, err
	}
	var elapsed time.Duration
	iters := 0
	for elapsed < minMeasure && iters < maxIters {
		start := time.Now()
		if err := op(); err != nil {
			return 0, err
		}
		elapsed += time.Since(start)
		iters++
	}
	mib := float64(stripeBytes) * float64(iters) / (1 << 20)
	return mib / elapsed.Seconds(), nil
}

// stairEncodeSpeed builds the worst-e STAIR code and measures Encode.
func stairEncodeSpeed(n, r, m, s, stripeBytes int) (float64, error) {
	e, err := worstE(n, r, m, s)
	if err != nil {
		return 0, err
	}
	c, err := core.New(core.Config{N: n, R: r, M: m, E: e})
	if err != nil {
		return 0, err
	}
	st, err := c.NewStripe(sectorSizeFor(stripeBytes, n, r, c.Field().SymbolBytes()))
	if err != nil {
		return 0, err
	}
	fillStripe(c, st, 1)
	actual := st.SectorSize * n * r
	return timeOp(actual, func() error { return c.Encode(st) })
}

// stairDecodeSpeed measures Repair of the §6.2.2 worst case (or of pure
// device failures when devicesOnly is set).
func stairDecodeSpeed(n, r, m, s, stripeBytes int, devicesOnly bool) (float64, error) {
	e, err := worstE(n, r, m, s)
	if err != nil {
		return 0, err
	}
	c, err := core.New(core.Config{N: n, R: r, M: m, E: e})
	if err != nil {
		return 0, err
	}
	st, err := c.NewStripe(sectorSizeFor(stripeBytes, n, r, c.Field().SymbolBytes()))
	if err != nil {
		return 0, err
	}
	fillStripe(c, st, 2)
	if err := c.Encode(st); err != nil {
		return 0, err
	}
	var lost []core.Cell
	for col := 0; col < m; col++ {
		for row := 0; row < r; row++ {
			lost = append(lost, core.Cell{Col: col, Row: row})
		}
	}
	if !devicesOnly {
		for l, el := range e {
			for h := 0; h < el; h++ {
				lost = append(lost, core.Cell{Col: m + l, Row: r - 1 - h})
			}
		}
	}
	actual := st.SectorSize * n * r
	return timeOp(actual, func() error { return c.Repair(st, lost) })
}

func fillStripe(c *core.Code, st *core.Stripe, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, cell := range c.DataCells() {
		rng.Read(st.Sector(cell.Col, cell.Row))
	}
}

// sdEncodeSpeed measures SD standard encoding.
func sdEncodeSpeed(n, r, m, s, stripeBytes int) (float64, error) {
	c, err := sd.New(sd.Config{N: n, R: r, M: m, S: s})
	if err != nil {
		return 0, err
	}
	size := sectorSizeFor(stripeBytes, n, r, 2)
	cells := sdStripe(c, size, 3)
	actual := size * n * r
	return timeOp(actual, func() error { return c.Encode(cells) })
}

// sdDecodeSpeed measures SD repair of the worst case: m chunks + s
// sectors.
func sdDecodeSpeed(n, r, m, s, stripeBytes int) (float64, error) {
	c, err := sd.New(sd.Config{N: n, R: r, M: m, S: s})
	if err != nil {
		return 0, err
	}
	size := sectorSizeFor(stripeBytes, n, r, 2)
	cells := sdStripe(c, size, 4)
	if err := c.Encode(cells); err != nil {
		return 0, err
	}
	var lost []sd.Cell
	for col := 0; col < m; col++ {
		for row := 0; row < r; row++ {
			lost = append(lost, sd.Cell{Col: col, Row: row})
		}
	}
	for k := 0; k < s; k++ {
		lost = append(lost, sd.Cell{Col: m + k%(n-m), Row: k / (n - m)})
	}
	actual := size * n * r
	return timeOp(actual, func() error { return c.Repair(cells, lost) })
}

func sdStripe(c *sd.Code, sectorSize int, seed int64) [][]byte {
	cells := make([][]byte, c.N()*c.R())
	for i := range cells {
		cells[i] = make([]byte, sectorSize)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, cell := range c.DataCells() {
		rng.Read(cells[cell.Col*c.R()+cell.Row])
	}
	return cells
}
