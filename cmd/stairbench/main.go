// Command stairbench regenerates every table and figure of the STAIR
// paper's evaluation (FAST '14, §5-§7 and Appendix B) as text tables.
//
// Usage:
//
//	stairbench -experiment fig11a          # one experiment
//	stairbench -experiment all             # everything
//	stairbench -experiment fig12 -full     # full paper-scale sweep
//	stairbench -list                       # enumerate experiments
//
// Speed experiments default to a 4 MiB stripe so that a complete run
// finishes in minutes on a laptop; -full switches to the paper's 32 MiB
// stripes and denser parameter grids (and -stripe overrides directly).
// Like the paper's implementation, the hot GF region loops run as SIMD
// split-table kernels where the CPU allows (see internal/gf); every run
// banners which kernel produced its numbers, and BENCH_store.json
// records it, so speed figures are never compared across kernels
// unawares. STAIR_GF_KERNEL=portable forces the scalar baseline for A/B
// runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"stair/internal/core"
	"stair/internal/gf"
)

type options struct {
	full      bool
	stripeMiB int
}

type experiment struct {
	name string
	desc string
	run  func(o options) error
}

var experiments []experiment

func register(name, desc string, run func(o options) error) {
	experiments = append(experiments, experiment{name, desc, run})
}

func main() {
	var (
		name   = flag.String("experiment", "", "experiment id (see -list), or 'all'")
		list   = flag.Bool("list", false, "list experiments and exit")
		full   = flag.Bool("full", false, "paper-scale sweeps (32 MiB stripes, dense grids)")
		stripe = flag.Int("stripe", 0, "stripe size in MiB for speed experiments (overrides -full default)")
	)
	flag.Parse()

	// Resolve GF kernel dispatch before any measurement: a typo'd
	// STAIR_GF_KERNEL must die here, not mid-benchmark.
	if err := gf.Init(); err != nil {
		fmt.Fprintln(os.Stderr, "stairbench:", err)
		os.Exit(1)
	}

	sort.Slice(experiments, func(i, j int) bool { return experiments[i].name < experiments[j].name })

	if *list || *name == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.name, e.desc)
		}
		if *name == "" {
			os.Exit(0)
		}
		return
	}

	o := options{full: *full, stripeMiB: *stripe}
	if o.stripeMiB == 0 {
		if o.full {
			o.stripeMiB = 32
		} else {
			o.stripeMiB = 4
		}
	}

	// Every speed number below depends on which GF region kernel
	// dispatch picked and which stripe data path executes the schedules;
	// say so once, up front.
	fmt.Printf("gf kernel: %s (%s/%s, available: %v)\n",
		gf.ActiveKernelName(), runtime.GOOS, runtime.GOARCH, gf.KernelNames())
	if dp, err := core.PlanDefaults(); err != nil {
		fmt.Fprintln(os.Stderr, "stairbench:", err)
		os.Exit(1)
	} else {
		fmt.Printf("data path: %s planner, tile %d B (STAIR_PLAN_MODE/STAIR_PLAN_TILE)\n\n", dp.Mode, dp.TileBytes)
	}

	run := func(e experiment) {
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		if err := e.run(o); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *name == "all" {
		for _, e := range experiments {
			run(e)
		}
		return
	}
	for _, e := range experiments {
		if e.name == *name {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *name)
	os.Exit(2)
}
