package main

import (
	"fmt"
	"strings"

	"stair/internal/core"
)

func init() {
	register("table2", "upstairs decoding steps for the exemplary config (paper Table 2)", runTable2)
	register("table3", "downstairs encoding steps for the exemplary config (paper Table 3)", runTable3)
}

func exemplaryCode(p core.Placement) (*core.Code, error) {
	return core.New(core.Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: p})
}

func printSteps(steps []core.TraceStep) {
	for i, s := range steps {
		fmt.Printf("%4d  %-55s ⇒ %-28s %s\n", i+1,
			strings.Join(s.Inputs, ","), strings.Join(s.Outputs, ","), s.Coding)
	}
}

func runTable2(options) error {
	c, err := exemplaryCode(core.Outside)
	if err != nil {
		return err
	}
	lost := []core.Cell{
		{Col: 6, Row: 0}, {Col: 6, Row: 1}, {Col: 6, Row: 2}, {Col: 6, Row: 3},
		{Col: 7, Row: 0}, {Col: 7, Row: 1}, {Col: 7, Row: 2}, {Col: 7, Row: 3},
		{Col: 3, Row: 3}, {Col: 4, Row: 3}, {Col: 5, Row: 2}, {Col: 5, Row: 3},
	}
	steps, err := c.UpstairsDecodeTrace(lost)
	if err != nil {
		return err
	}
	fmt.Println("worst-case erasure of Figure 4: chunks 6,7 failed; d3,3 d3,4 d2,5 d3,5 lost")
	printSteps(steps)
	return nil
}

func runTable3(options) error {
	c, err := exemplaryCode(core.Inside)
	if err != nil {
		return err
	}
	steps, err := c.EncodeTrace(core.MethodDownstairs)
	if err != nil {
		return err
	}
	fmt.Println("downstairs encoding (zeroed outside globals elided from inputs)")
	printSteps(steps)
	return nil
}
