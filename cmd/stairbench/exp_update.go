package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"stair/internal/core"
	"stair/internal/sd"
)

func init() {
	register("fig14", "update penalty of STAIR vs e at n=16, s=4 (paper Fig. 14)", runFig14)
	register("fig15", "update penalty: RS vs SD vs STAIR at n=r=16 (paper Fig. 15)", runFig15)
}

func runFig14(options) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "r\te\tm=1\tm=2\tm=3")
	for _, r := range []int{8, 16, 24, 32} {
		for _, e := range partitions(4, 4, 6) {
			fmt.Fprintf(w, "%d\t%v", r, e)
			for m := 1; m <= 3; m++ {
				c, err := core.New(core.Config{N: 16, R: r, M: m, E: e})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "\t%.2f", c.MeanUpdatePenalty())
			}
			fmt.Fprintln(w)
		}
	}
	return w.Flush()
}

func runFig15(options) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "m\tcode\tavg\tmin\tmax")
	for m := 1; m <= 3; m++ {
		fmt.Fprintf(w, "%d\tRS\t%d\t\t\n", m, m)
		for s := 1; s <= 3; s++ {
			c, err := sd.New(sd.Config{N: 16, R: 16, M: m, S: s})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\tSD s=%d\t%.2f\t\t\n", m, s, c.MeanUpdatePenalty())
		}
		for s := 1; s <= 4; s++ {
			var sum, minP, maxP float64
			count := 0
			for _, e := range partitions(s, 16, 16-m) {
				c, err := core.New(core.Config{N: 16, R: 16, M: m, E: e})
				if err != nil {
					continue
				}
				p := c.MeanUpdatePenalty()
				if count == 0 || p < minP {
					minP = p
				}
				if count == 0 || p > maxP {
					maxP = p
				}
				sum += p
				count++
			}
			fmt.Fprintf(w, "%d\tSTAIR s=%d\t%.2f\t%.2f\t%.2f\n", m, s, sum/float64(count), minP, maxP)
		}
	}
	return w.Flush()
}
