package main

import (
	"reflect"
	"testing"
)

func TestPartitions(t *testing.T) {
	got := partitions(4, 4, 6)
	want := [][]int{{1, 1, 1, 1}, {1, 1, 2}, {1, 3}, {2, 2}, {4}}
	if len(got) != len(want) {
		t.Fatalf("partitions(4) = %v", got)
	}
	seen := map[string]bool{}
	for _, p := range got {
		seen[keyOf(p)] = true
	}
	for _, p := range want {
		if !seen[keyOf(p)] {
			t.Errorf("missing partition %v", p)
		}
	}
	// Part cap respected.
	for _, p := range partitions(6, 2, 10) {
		for _, v := range p {
			if v > 2 {
				t.Errorf("part %d exceeds cap in %v", v, p)
			}
		}
	}
	// Length cap respected.
	for _, p := range partitions(6, 6, 2) {
		if len(p) > 2 {
			t.Errorf("partition %v exceeds length cap", p)
		}
	}
}

func keyOf(p []int) string {
	s := ""
	for _, v := range p {
		s += string(rune('0' + v))
	}
	return s
}

func TestWorstE(t *testing.T) {
	// For s=4 at n=8, r=16, m=2 the costliest configuration by chosen
	// method should be a valid partition of 4.
	e, err := worstE(8, 16, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range e {
		sum += v
	}
	if sum != 4 {
		t.Errorf("worstE sums to %d: %v", sum, e)
	}
	if _, err := worstE(3, 2, 2, 9); err == nil {
		t.Error("impossible shape accepted")
	}
}

func TestSectorSizeFor(t *testing.T) {
	if got := sectorSizeFor(1<<20, 16, 16, 2); got != 4096 {
		t.Errorf("sectorSizeFor = %d", got)
	}
	if got := sectorSizeFor(100, 16, 16, 2); got != 2 {
		t.Errorf("tiny budget should floor at align: %d", got)
	}
	if got := sectorSizeFor(1000, 8, 4, 16); got%16 != 0 {
		t.Errorf("alignment violated: %d", got)
	}
}

func TestSpeedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke test")
	}
	sp, err := stairEncodeSpeed(6, 4, 1, 1, 64<<10)
	if err != nil || sp <= 0 {
		t.Fatalf("stairEncodeSpeed: %v %v", sp, err)
	}
	sp, err = stairDecodeSpeed(6, 4, 1, 1, 64<<10, false)
	if err != nil || sp <= 0 {
		t.Fatalf("stairDecodeSpeed: %v %v", sp, err)
	}
	sp, err = sdEncodeSpeed(6, 4, 1, 1, 64<<10)
	if err != nil || sp <= 0 {
		t.Fatalf("sdEncodeSpeed: %v %v", sp, err)
	}
	sp, err = sdDecodeSpeed(6, 4, 1, 1, 64<<10)
	if err != nil || sp <= 0 {
		t.Fatalf("sdDecodeSpeed: %v %v", sp, err)
	}
	e, err := worstE(6, 4, 1, 2)
	if err != nil || len(e) == 0 {
		t.Fatalf("worstE: %v %v", e, err)
	}
}

func TestPartitionsAscending(t *testing.T) {
	for _, p := range partitions(7, 7, 7) {
		if !ascending(p) {
			t.Errorf("partition %v not ascending", p)
		}
	}
}

func ascending(p []int) bool {
	ok := true
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			ok = false
		}
	}
	return ok
}

func TestPartitionsMatchReflect(t *testing.T) {
	// Small closed-form check: partitions of 3.
	got := partitions(3, 3, 3)
	want := [][]int{{1, 1, 1}, {1, 2}, {3}}
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Errorf("partitions(3) = %v, want %v", got, want)
	}
}

func normalize(ps [][]int) map[string]bool {
	m := map[string]bool{}
	for _, p := range ps {
		m[keyOf(p)] = true
	}
	return m
}
