package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"stair/internal/failures"
	"stair/internal/reliability"
)

func init() {
	register("narr", "Narr per s for the §7.2 system (paper §7.2 table)", runNarr)
	register("fig17", "MTTDL vs Pbit, independent sector failures (paper Fig. 17)", runFig17)
	register("fig18", "MTTDL vs Pbit, correlated bursts b1=0.98 α=1.79 (paper Fig. 18)", runFig18)
	register("fig19a", "burst length CDFs for (b1,α) pairs (paper Fig. 19a)", runFig19a)
	register("fig19b", "MTTDL of e=(s) vs e=(1,s−1) under burst models (paper Fig. 19b)", runFig19b)
}

var pbitGrid = []float64{1e-14, 1e-13, 1e-12, 1e-11, 1e-10}

func runNarr(options) error {
	p := reliability.DefaultParams()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "s\tefficiency\tNarr")
	for s := 0; s <= 12; s++ {
		eff := reliability.Efficiency(p.N, p.R, p.M, s)
		fmt.Fprintf(w, "%d\t%.4f\t%d\n", s, eff, reliability.Narr(p, eff))
	}
	return w.Flush()
}

func fig17Codes() []reliability.CodeSpec {
	return []reliability.CodeSpec{
		{Kind: "rs"},
		{Kind: "stair", E: []int{1}}, // identical to SD s=1
		{Kind: "stair", E: []int{2}},
		{Kind: "stair", E: []int{1, 1}},
		{Kind: "sd", S: 2},
		{Kind: "stair", E: []int{3}},
		{Kind: "stair", E: []int{1, 2}},
		{Kind: "stair", E: []int{1, 1, 1}},
		{Kind: "sd", S: 3},
	}
}

func printMTTDLTable(model func(pbit float64) reliability.ChunkModel) error {
	p := reliability.DefaultParams()
	specs := fig17Codes()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "Pbit")
	for _, s := range specs {
		fmt.Fprintf(w, "\t%s", s)
	}
	fmt.Fprintln(w, "\t(hours)")
	for _, pbit := range pbitGrid {
		fmt.Fprintf(w, "%.0e", pbit)
		for _, spec := range specs {
			fmt.Fprintf(w, "\t%.3g", reliability.SystemMTTDL(p, spec, model(pbit)))
		}
		fmt.Fprintln(w, "\t")
	}
	return w.Flush()
}

func runFig17(options) error {
	p := reliability.DefaultParams()
	return printMTTDLTable(func(pbit float64) reliability.ChunkModel {
		return reliability.Independent{Psec: reliability.PsecFromPbit(pbit, p.SectorSize), Rval: p.R}
	})
}

func runFig18(options) error {
	p := reliability.DefaultParams()
	dist, err := failures.NewBurstDist(0.98, 1.79, p.R)
	if err != nil {
		return err
	}
	return printMTTDLTable(func(pbit float64) reliability.ChunkModel {
		return reliability.Correlated{Psec: reliability.PsecFromPbit(pbit, p.SectorSize), Dist: dist}
	})
}

var burstPairs = []struct{ b1, alpha float64 }{
	{0.9, 1}, {0.98, 1.79}, {0.99, 2}, {0.999, 3}, {0.9999, 4},
}

func runFig19a(options) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "len")
	for _, p := range burstPairs {
		fmt.Fprintf(w, "\tb1=%g α=%g", p.b1, p.alpha)
	}
	fmt.Fprintln(w)
	dists := make([]*failures.BurstDist, len(burstPairs))
	for i, p := range burstPairs {
		d, err := failures.NewBurstDist(p.b1, p.alpha, 16)
		if err != nil {
			return err
		}
		dists[i] = d
	}
	for l := 1; l <= 16; l++ {
		fmt.Fprintf(w, "%d", l)
		for _, d := range dists {
			fmt.Fprintf(w, "\t%.4f", d.CDF(l))
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func runFig19b(options) error {
	p := reliability.DefaultParams()
	pairs := []struct{ b1, alpha float64 }{
		{0.9, 1}, {0.99, 2}, {0.999, 3}, {0.9999, 4},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, pbit := range []float64{1e-14, 1e-12, 1e-10} {
		fmt.Fprintf(w, "Pbit=%.0e\n", pbit)
		fmt.Fprint(w, "s")
		for _, bp := range pairs {
			fmt.Fprintf(w, "\te=(s) b1=%g\te=(1,s-1) b1=%g", bp.b1, bp.b1)
		}
		fmt.Fprintln(w)
		for s := 1; s <= 12; s++ {
			fmt.Fprintf(w, "%d", s)
			for _, bp := range pairs {
				dist, err := failures.NewBurstDist(bp.b1, bp.alpha, p.R)
				if err != nil {
					return err
				}
				model := reliability.Correlated{Psec: reliability.PsecFromPbit(pbit, p.SectorSize), Dist: dist}
				es := reliability.SystemMTTDL(p, reliability.CodeSpec{Kind: "stair", E: []int{s}}, model)
				fmt.Fprintf(w, "\t%.3g", es)
				if s >= 2 {
					e1s := reliability.SystemMTTDL(p, reliability.CodeSpec{Kind: "stair", E: []int{1, s - 1}}, model)
					fmt.Fprintf(w, "\t%.3g", e1s)
				} else {
					fmt.Fprint(w, "\t-")
				}
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	return nil
}
