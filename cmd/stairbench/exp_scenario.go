package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"stair/internal/cluster"
	"stair/internal/gf"
	"stair/internal/scenario"
	"stair/internal/store"
)

func init() {
	register("scenario", "trace-driven load + correlated-failure scenarios: p50/p99/p999 per op class, clean-end audit (updates BENCH_store.json)", runScenario)
}

// scenarioBenchConfig pins the harness shape so rows are comparable
// run to run.
type scenarioBenchConfig struct {
	N          int   `json:"n"`
	R          int   `json:"r"`
	M          int   `json:"m"`
	E          []int `json:"e"`
	SectorSize int   `json:"sector_size"`
	Stripes    int   `json:"stripes"`
	// Seed is the fixed scenario seed; SoakScale the STAIR_SOAK
	// duration multiplier the run used (1 = quick CI shape).
	Seed      int64   `json:"seed"`
	SoakScale float64 `json:"soak_scale"`
	// The simulated device profile behind every scenario.
	LatencyUS   float64  `json:"latency_us"`
	JitterUS    float64  `json:"jitter_us"`
	SpikeUS     float64  `json:"spike_us"`
	SpikeProb   float64  `json:"spike_prob"`
	GFKernel    string   `json:"gf_kernel"`
	ScenarioSet []string `json:"scenarios"`
}

// scenarioBenchRow is one (scenario, op class) latency row. The
// percentile fields are embedded from the harness histogram: count,
// p50_us, p99_us, p999_us, mean_us, max_us.
type scenarioBenchRow struct {
	Scenario string `json:"scenario"`
	Class    string `json:"class"`
	scenario.Percentiles
	Errors uint64 `json:"errors"`
	Note   string `json:"note,omitempty"`
}

// scenarioBenchMetrics snapshots one scenario's end-state counters —
// the same shape /v1/metrics serves, so soak artifacts and bench rows
// cross-check.
type scenarioBenchMetrics struct {
	Fingerprint     string         `json:"fingerprint"`
	InjectedSectors int            `json:"injected_sectors"`
	SettleScrubs    int            `json:"settle_scrubs"`
	Store           store.Stats    `json:"store"`
	Cluster         *cluster.Stats `json:"cluster,omitempty"`
}

type scenarioBenchReport struct {
	Config  scenarioBenchConfig             `json:"config"`
	Results []scenarioBenchRow              `json:"results"`
	Metrics map[string]scenarioBenchMetrics `json:"metrics"`
}

// runScenario drives the scenario harness end to end: the three
// standard workload mixes against a healthy store (the baseline
// percentile rows), then every correlated-failure scenario — erroring
// out unless each completes with zero unrecoverable stripes and zero
// integrity false alarms. Results merge into BENCH_store.json under
// "scenario", preserving the other experiments' sections.
func runScenario(o options) error {
	const seed = 1
	ctx := context.Background()
	opts := scenario.EnvOptions{Seed: seed}

	cfg := scenarioBenchConfig{
		N: 6, R: 4, M: 2, E: []int{1, 2},
		SectorSize: 1024, Stripes: 24,
		Seed:      seed,
		SoakScale: scenario.SoakScale(),
		LatencyUS: 120, JitterUS: 80, SpikeUS: 3000, SpikeProb: 0.003,
		GFKernel: gf.ActiveKernelName(),
	}
	var rows []scenarioBenchRow
	metrics := map[string]scenarioBenchMetrics{}

	record := func(spec scenario.Spec, res *scenario.Result, note string) {
		classes := make([]string, 0, len(res.Load.PerClass))
		for class := range res.Load.PerClass {
			classes = append(classes, string(class))
		}
		sort.Strings(classes)
		for _, class := range classes {
			rows = append(rows, scenarioBenchRow{
				Scenario:    spec.Name,
				Class:       class,
				Percentiles: res.Load.PerClass[scenario.OpClass(class)],
				Errors:      res.Load.Errors,
				Note:        note,
			})
		}
		metrics[spec.Name] = scenarioBenchMetrics{
			Fingerprint:     res.Fingerprint,
			InjectedSectors: res.InjectedSectors,
			SettleScrubs:    res.SettleScrubs,
			Store:           res.StoreStats,
			Cluster:         res.ClusterStats,
		}
		cfg.ScenarioSet = append(cfg.ScenarioSet, spec.Name)
	}

	runOne := func(spec scenario.Spec, env *scenario.Env, note string) error {
		defer env.Close()
		scenario.PrepareSpec(env, &spec)
		res, err := scenario.Run(ctx, env, spec)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		if len(res.Violations) > 0 {
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "scenario %s: VIOLATION: %s\n", spec.Name, v)
			}
			return fmt.Errorf("scenario %s ended dirty (%d violations)", spec.Name, len(res.Violations))
		}
		record(spec, res, note)
		return nil
	}

	// --- Healthy baselines: the three standard mixes, no failures ----
	// The baselines open the write buffer to the full stripe count so
	// the rows measure the data path, not the deliberately tight
	// backpressure cap the failure scenarios stress.
	healthyOpts := opts
	healthyOpts.MaxDirtyStripes = cfg.Stripes
	healthyDur := 800 * time.Millisecond
	for _, mix := range []scenario.Mix{
		scenario.ReadHeavyMix(), scenario.MixedMix(), scenario.WriteHeavyMix(),
	} {
		env, err := scenario.NewStoreEnv(healthyOpts)
		if err != nil {
			return err
		}
		spec := scenario.Spec{
			Name:    "healthy-" + mix.Name,
			Seed:    seed,
			Trace:   scenario.BaseTrace(seed, mix, 1000, healthyDur),
			Clients: 192,
		}
		if err := runOne(spec, env, "healthy store, open-loop latency incl. queueing"); err != nil {
			return err
		}
	}

	// --- Correlated-failure scenarios --------------------------------
	storeSpecs := []struct {
		spec scenario.Spec
		note string
	}{
		{scenario.ShelfOutageSpec(seed), "m simultaneous device deaths + LSE drizzle on survivors"},
		{scenario.LSEStormRebuildSpec(seed), "LSE storms striking survivors mid-rebuild (§7.1.2 window)"},
		{scenario.ScrubVsFailingSpec(seed), "paced scrub racing a progressively failing device"},
	}
	for _, s := range storeSpecs {
		env, err := scenario.NewStoreEnv(opts)
		if err != nil {
			return err
		}
		if err := runOne(s.spec, env, s.note); err != nil {
			return err
		}
	}
	{
		env, err := scenario.NewClusterEnv(opts)
		if err != nil {
			return err
		}
		if err := runOne(scenario.HeartbeatFlapSpec(seed), env,
			"grey failure: detector rides out flaps, declares the long stall, hedges absorb"); err != nil {
			return err
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario\tclass\tcount\tp50 µs\tp99 µs\tp999 µs\terrs\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.0f\t%.0f\t%.0f\t%d\n",
			r.Scenario, r.Class, r.Count, r.P50us, r.P99us, r.P999us, r.Errors)
	}
	w.Flush()
	fmt.Println("\nall scenarios settled clean: 0 unrecoverable stripes, 0 integrity false alarms")

	report := loadStoreReport()
	report.Scenario = &scenarioBenchReport{Config: cfg, Results: rows, Metrics: metrics}
	if err := writeStoreReport(report); err != nil {
		return err
	}
	fmt.Println("updated BENCH_store.json (scenario section)")
	return nil
}
