package main

import (
	"fmt"
	"os"
	"text/tabwriter"
)

func init() {
	register("fig11a", "encoding speed vs n at r=16 (paper Fig. 11a)", runFig11a)
	register("fig11b", "encoding speed vs r at n=16 (paper Fig. 11b)", runFig11b)
	register("fig12", "encoding speed vs stripe size at n=r=16 (paper Fig. 12)", runFig12)
	register("fig13a", "decoding speed vs n at r=16, worst case (paper Fig. 13a)", runFig13a)
	register("fig13b", "decoding speed vs r at n=16, worst case (paper Fig. 13b)", runFig13b)
	register("fig13x", "device-only decode speedup vs s=1 worst case (§6.2.2 text)", runFig13x)
}

func speedGrid(o options) []int {
	if o.full {
		return []int{4, 8, 12, 16, 20, 24, 28, 32}
	}
	return []int{8, 16, 24, 32}
}

// runSpeedSweep prints a STAIR (s=1..4) and SD (s=1..3) speed table over
// the swept variable.
func runSpeedSweep(o options, varName string, values []int, geom func(v int) (n, r int),
	stair func(n, r, m, s int) (float64, error), sdFn func(n, r, m, s int) (float64, error)) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "m\t%s\tSTAIR s=1\ts=2\ts=3\ts=4\tSD s=1\ts=2\ts=3\t(MB/s)\n", varName)
	for _, m := range []int{1, 2, 3} {
		for _, v := range values {
			n, r := geom(v)
			if n-m < 2 {
				continue
			}
			fmt.Fprintf(w, "%d\t%d", m, v)
			for s := 1; s <= 4; s++ {
				if sp, err := stair(n, r, m, s); err == nil {
					fmt.Fprintf(w, "\t%.0f", sp)
				} else {
					fmt.Fprintf(w, "\t-")
				}
			}
			for s := 1; s <= 3; s++ {
				if sp, err := sdFn(n, r, m, s); err == nil {
					fmt.Fprintf(w, "\t%.0f", sp)
				} else {
					fmt.Fprintf(w, "\t-")
				}
			}
			fmt.Fprintln(w, "\t")
		}
		w.Flush()
	}
	return nil
}

func runFig11a(o options) error {
	stripe := o.stripeMiB << 20
	return runSpeedSweep(o, "n", speedGrid(o),
		func(v int) (int, int) { return v, 16 },
		func(n, r, m, s int) (float64, error) { return stairEncodeSpeed(n, r, m, s, stripe) },
		func(n, r, m, s int) (float64, error) { return sdEncodeSpeed(n, r, m, s, stripe) })
}

func runFig11b(o options) error {
	stripe := o.stripeMiB << 20
	return runSpeedSweep(o, "r", speedGrid(o),
		func(v int) (int, int) { return 16, v },
		func(n, r, m, s int) (float64, error) { return stairEncodeSpeed(n, r, m, s, stripe) },
		func(n, r, m, s int) (float64, error) { return sdEncodeSpeed(n, r, m, s, stripe) })
}

func runFig13a(o options) error {
	stripe := o.stripeMiB << 20
	return runSpeedSweep(o, "n", speedGrid(o),
		func(v int) (int, int) { return v, 16 },
		func(n, r, m, s int) (float64, error) { return stairDecodeSpeed(n, r, m, s, stripe, false) },
		func(n, r, m, s int) (float64, error) { return sdDecodeSpeed(n, r, m, s, stripe) })
}

func runFig13b(o options) error {
	stripe := o.stripeMiB << 20
	return runSpeedSweep(o, "r", speedGrid(o),
		func(v int) (int, int) { return 16, v },
		func(n, r, m, s int) (float64, error) { return stairDecodeSpeed(n, r, m, s, stripe, false) },
		func(n, r, m, s int) (float64, error) { return sdDecodeSpeed(n, r, m, s, stripe) })
}

func runFig12(o options) error {
	sizes := []int{128 << 10, 512 << 10, 2 << 20, 8 << 20, 32 << 20}
	if o.full {
		sizes = append(sizes, 128<<20, 512<<20)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "m\tstripe\tSTAIR s=1\ts=2\ts=3\ts=4\tSD s=1\ts=2\ts=3\t(MB/s)")
	for _, m := range []int{1, 2, 3} {
		for _, size := range sizes {
			label := fmt.Sprintf("%dKB", size>>10)
			if size >= 1<<20 {
				label = fmt.Sprintf("%dMB", size>>20)
			}
			fmt.Fprintf(w, "%d\t%s", m, label)
			for s := 1; s <= 4; s++ {
				if sp, err := stairEncodeSpeed(16, 16, m, s, size); err == nil {
					fmt.Fprintf(w, "\t%.0f", sp)
				} else {
					fmt.Fprintf(w, "\t-")
				}
			}
			for s := 1; s <= 3; s++ {
				if sp, err := sdEncodeSpeed(16, 16, m, s, size); err == nil {
					fmt.Fprintf(w, "\t%.0f", sp)
				} else {
					fmt.Fprintf(w, "\t-")
				}
			}
			fmt.Fprintln(w, "\t")
		}
		w.Flush()
	}
	return nil
}

func runFig13x(o options) error {
	stripe := o.stripeMiB << 20
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "m\tworst s=1 (MB/s)\tdevice-only (MB/s)\tspeedup")
	for _, m := range []int{1, 2, 3} {
		worst, err := stairDecodeSpeed(16, 16, m, 1, stripe, false)
		if err != nil {
			return err
		}
		devOnly, err := stairDecodeSpeed(16, 16, m, 1, stripe, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t+%.2f%%\n", m, worst, devOnly, (devOnly/worst-1)*100)
	}
	fmt.Fprintln(w, "paper (§6.2.2): +79.39%, +29.39%, +11.98% for m=1,2,3")
	return w.Flush()
}
