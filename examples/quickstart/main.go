// Quickstart: encode a stripe with the paper's exemplary configuration
// (n=8, r=4, m=2, e=(1,1,2)), lose two whole devices plus a stair of
// sector failures, and repair everything.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"stair"
)

func main() {
	code, err := stair.New(stair.Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("code: %v\n", code.Config())
	fmt.Printf("data sectors per stripe: %d of %d (efficiency %.1f%%)\n",
		code.NumDataCells(), code.N()*code.R(), 100*code.StorageEfficiency())
	fmt.Printf("encoding method chosen by cost: %v (upstairs %d, downstairs %d, standard %d Mult_XORs)\n\n",
		code.Method(), code.Cost(stair.MethodUpstairs),
		code.Cost(stair.MethodDownstairs), code.Cost(stair.MethodStandard))

	// Fill a stripe with data and encode.
	st, err := code.NewStripe(4096)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, c := range code.DataCells() {
		rng.Read(st.Sector(c.Col, c.Row))
	}
	if err := code.Encode(st); err != nil {
		log.Fatal(err)
	}
	pristine := st.Clone()

	// Disaster: devices 6 and 7 die; chunks 3, 4 and 5 each lose
	// sectors in the worst pattern the code is built for.
	lost := []stair.Cell{
		{Col: 6, Row: 0}, {Col: 6, Row: 1}, {Col: 6, Row: 2}, {Col: 6, Row: 3},
		{Col: 7, Row: 0}, {Col: 7, Row: 1}, {Col: 7, Row: 2}, {Col: 7, Row: 3},
		{Col: 3, Row: 3}, {Col: 4, Row: 3}, {Col: 5, Row: 2}, {Col: 5, Row: 3},
	}
	for _, c := range lost {
		for i := range st.Sector(c.Col, c.Row) {
			st.Sector(c.Col, c.Row)[i] = 0
		}
	}
	fmt.Printf("injected %d lost sectors (2 whole devices + e=(1,1,2) sector failures)\n", len(lost))

	cost, err := code.RepairCost(lost)
	if err != nil {
		log.Fatal(err)
	}
	if err := code.Repair(st, lost); err != nil {
		log.Fatal(err)
	}
	for i := range st.Cells {
		if !bytes.Equal(st.Cells[i], pristine.Cells[i]) {
			log.Fatalf("cell %d differs after repair", i)
		}
	}
	fmt.Printf("repaired with %d Mult_XORs; stripe verified byte-identical\n", cost)

	// Incremental update: rewrite one data sector; only the dependent
	// parity sectors change.
	penalty, _ := code.UpdatePenalty(stair.Cell{Col: 0, Row: 0})
	buf := make([]byte, 4096)
	rng.Read(buf)
	if err := code.Update(st, stair.Cell{Col: 0, Row: 0}, buf); err != nil {
		log.Fatal(err)
	}
	ok, err := code.Verify(st)
	if err != nil || !ok {
		log.Fatalf("verify after update: ok=%v err=%v", ok, err)
	}
	fmt.Printf("incremental update touched %d parity sectors; stripe still verifies\n", penalty)
}
