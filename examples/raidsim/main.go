// Raidsim: run a simulated 8-device array under a latent-sector-error
// campaign with correlated bursts (the §7.2.2 failure model), scrubbing
// periodically, and finally surviving a double device failure — the
// deployment story that motivates STAIR codes.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/raid"
)

func main() {
	// A RAID-6-like array (m=2) that additionally rides out a burst of
	// up to 2 sector errors in one more chunk plus singles in two
	// others, for 4 extra parity sectors instead of whole devices.
	code, err := core.New(core.Config{N: 8, R: 16, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		log.Fatal(err)
	}
	array, err := raid.NewArray(raid.StairCode{C: code}, 64, 512)
	if err != nil {
		log.Fatal(err)
	}
	n, stripes, r, sector := array.Geometry()
	fmt.Printf("array: %d devices × %d stripes × %d sectors × %dB (user capacity %d KiB)\n",
		n, stripes, r, sector, array.DataCapacity()>>10)

	payload := make([]byte, array.DataCapacity())
	rng := rand.New(rand.NewSource(7))
	rng.Read(payload)
	if _, err := array.Write(payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d KiB of user data\n\n", len(payload)>>10)

	// Latent sector error campaign: correlated bursts per the field
	// studies (b1=0.98, α=1.79), scrubbed every round.
	dist, err := failures.NewBurstDist(0.98, 1.79, 2)
	if err != nil {
		log.Fatal(err)
	}
	for round := 1; round <= 5; round++ {
		lost, err := array.InjectRandomBursts(rng, 0.002, dist)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := array.Scrub()
		if err != nil {
			log.Fatalf("round %d: data loss: %v", round, err)
		}
		fmt.Printf("round %d: injected %d bad sectors, scrub repaired %d sectors in %d stripes\n",
			round, lost, rep.SectorsRepaired, rep.StripesRepaired)
	}

	// Now the big one: two devices die at once, with fresh sector
	// errors on the survivors.
	fmt.Println("\ndouble device failure + fresh latent errors:")
	array.FailDevice(2)
	array.FailDevice(5)
	array.InjectBurst(0, 37, 2) // a 2-sector burst within one stripe's chunk
	rep, err := array.Scrub()
	if err != nil {
		log.Fatalf("rebuild failed: %v", err)
	}
	fmt.Printf("rebuild: %d sectors repaired, %d devices reactivated\n",
		rep.SectorsRepaired, rep.DevicesReactivated)

	got, err := array.Read(len(payload))
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("payload corrupted!")
	}
	fmt.Println("payload verified byte-identical after all failures")
}
