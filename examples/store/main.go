// Store walkthrough: the internal/store block layer end to end — batched
// writes over STAIR stripes, transparent degraded reads under mixed
// device + sector failures, a background scrubber converging a repair
// queue, and the unrecoverable-pattern guardrail. This is the
// storage-system deployment story of the paper's §1–2 running on the
// codec of §4–5.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/raid"
	"stair/internal/store"
	"stair/internal/store/journal"
)

func main() {
	ctx := context.Background()
	// A RAID-6-like code (m=2) that additionally rides out a 2-sector
	// burst in one more chunk plus singles in two others, for 4 extra
	// parity sectors instead of two whole devices.
	code, err := core.New(core.Config{N: 8, R: 8, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		log.Fatal(err)
	}
	// A write-ahead intent journal makes stripe write-back
	// crash-consistent: every flush records its intent durably before
	// touching the devices, and a reopen replays whatever a crash left
	// pending.
	jdir, err := os.MkdirTemp("", "stair-store-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(jdir)
	j, err := journal.Open(filepath.Join(jdir, "journal.wal"))
	if err != nil {
		log.Fatal(err)
	}
	defer j.Close()
	// Stripes are independent recovery units, so the store runs them in
	// parallel: a sharded lock table, a pool of repair workers, a cache
	// of reconstructed still-degraded stripes — and an asynchronous
	// flush pipeline that encodes and writes back filled stripes in the
	// background.
	s, err := store.Open(store.Config{
		Code: code, SectorSize: 1024, Stripes: 32,
		RepairWorkers: 4, LockShards: 16, DegradedCache: 8,
		FlushWorkers: 2, Journal: j,
		// Per-sector end-to-end checksums: every data sector carries a
		// self-describing record (sector address and volume epoch salted
		// into the digest) in a sidecar region after the data, and every
		// read verifies before returning.
		Integrity: &store.IntegrityOptions{Epoch: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	n, stripes, r, sector := s.Geometry()
	fmt.Printf("volume: %d devices × %d stripes × %d sectors × %d B = %d blocks (%d KiB user data)\n",
		n, stripes, r, sector, s.Blocks(), s.Blocks()*sector>>10)

	// Fill the volume. Sequential writes batch into whole stripes; each
	// filled stripe is handed to the flush pipeline, which journals an
	// intent and encodes+writes it back while the fill continues. Sync
	// is the durability barrier: pipeline drained, devices fsynced
	// (where the backend can), journal settled.
	rng := rand.New(rand.NewSource(7))
	blocks := make([][]byte, s.Blocks())
	for b := range blocks {
		blocks[b] = make([]byte, s.BlockSize())
		rng.Read(blocks[b])
		if err := s.WriteBlock(ctx, b, blocks[b]); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	fmt.Printf("filled: %d block writes → %d full-stripe encodes (%d journaled), %d sub-stripe updates\n\n",
		st.Writes, st.FullStripeFlushes, st.JournaledFlushes, st.SubStripeFlushes)

	// A small overwrite takes the §5.2 incremental path instead: only
	// the parity sectors depending on the changed blocks are rewritten.
	rng.Read(blocks[3])
	if err := s.WriteBlock(ctx, 3, blocks[3]); err != nil {
		log.Fatal(err)
	}
	if err := s.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-block overwrite: sub-stripe flushes now %d\n\n", s.Stats().SubStripeFlushes)

	// Silent corruption: flip a bit in a sector WITHOUT telling any
	// layer — the device keeps serving the rotten bytes as if they were
	// fine, the failure mode drive ECC misses. Erasure coding alone
	// cannot catch this (nothing reports an erasure); the per-sector
	// checksum does: the read verifies the payload against its record,
	// the mismatch becomes a located erasure, and the block is
	// reconstructed from the survivors and rewritten with a fresh
	// record.
	const rottenBlock = 5
	cell := code.DataCells()[rottenBlock] // block 5 sits in stripe 0
	if err := s.CorruptSectorSilently(cell.Col, cell.Row); err != nil {
		log.Fatal(err)
	}
	got, err := s.ReadBlock(ctx, rottenBlock)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, blocks[rottenBlock]) {
		log.Fatal("silent corruption served to the reader — integrity layer failed")
	}
	st = s.Stats()
	fmt.Printf("silent bit flip on device %d sector %d: caught by checksum, read returned correct data\n", cell.Col, cell.Row)
	fmt.Printf("checksum mismatches located: %d (each repaired as a located erasure)\n\n", st.ChecksumMismatches)

	// Background scrubber on, then a latent-sector-error campaign with
	// the paper's correlated burst model (§7.2.2), driven through the
	// same fault driver the raid simulator uses.
	if err := s.StartScrubber(store.ScrubberOptions{Interval: 2 * time.Millisecond}); err != nil {
		log.Fatal(err)
	}
	dist, err := failures.NewBurstDist(0.98, 1.79, 2)
	if err != nil {
		log.Fatal(err)
	}
	lost, err := raid.InjectRandomBurstsOn(s, rng, 0.003, dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d latent sector errors; reading through the damage...\n", lost)
	verify(s, blocks)
	for s.TotalBadSectors() > 0 {
		time.Sleep(time.Millisecond)
	}
	s.Quiesce()
	st = s.Stats()
	fmt.Printf("scrubber healed everything: %d scrub hits, %d sectors repaired, %d degraded reads served\n\n",
		st.ScrubHits, st.RepairedSectors, st.DegradedReads)

	// The headline mixed-failure scenario: two devices die outright and
	// a fresh burst lands on a survivor. Reads keep flowing, degraded.
	fmt.Println("double device failure + a 2-sector burst on a survivor:")
	s.FailDevice(2)
	s.FailDevice(5)
	s.InjectBurst(0, 11, 2)
	verify(s, blocks)
	st = s.Stats()
	fmt.Printf("every block correct; %d degraded reads total (%d served from the stripe cache), %d unrecoverable stripes\n\n",
		st.DegradedReads, st.DegradedCacheHits, st.UnrecoverableStripes)

	// Replace one dead device and rebuild it sector by sector.
	if err := s.ReplaceDevice(2); err != nil {
		log.Fatal(err)
	}
	if err := s.RebuildDevice(ctx, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device 2 replaced and rebuilt (%d sectors reconstructed so far)\n\n", s.Stats().RepairedSectors)

	// Two more concurrent failures (device 5 is still down) exceed m=2:
	// the store reports the pattern — loudly, in errors and counters —
	// instead of serving corrupt data.
	s.FailDevice(1)
	s.FailDevice(3)
	deadBlock := -1
	for b, cell := range code.DataCells() {
		if cell.Col == 1 {
			deadBlock = b
			break
		}
	}
	if _, err := s.ReadBlock(ctx, deadBlock); err != nil {
		fmt.Printf("three devices down at once: %v\n", err)
	}
	fmt.Printf("unrecoverable stripes on record: %d\n", len(s.UnrecoverableStripes()))
}

func verify(s *store.Store, blocks [][]byte) {
	for b, want := range blocks {
		got, err := s.ReadBlock(context.Background(), b)
		if err != nil {
			log.Fatalf("block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("block %d corrupt", b)
		}
	}
}
