// Tuning: given a target burst length β observed in the field, compare
// candidate coverage vectors e by space cost, encoding cost, update
// penalty and reliability — the configuration exercise of §2 and §7.
package main

import (
	"fmt"
	"log"

	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/reliability"
)

func main() {
	const (
		n    = 8
		r    = 16
		m    = 2
		beta = 4 // longest sector-failure burst to survive (an extreme drive model, §2)
	)
	fmt.Printf("array: n=%d, r=%d, m=%d; target burst length β=%d\n\n", n, r, m, beta)

	// Candidates: every e whose largest element is β (so a β-burst in
	// one chunk is covered), plus the IDR-equivalent for reference.
	candidates := [][]int{
		{beta},
		{1, beta},
		{1, 1, beta},
		{2, beta},
		{beta, beta},
	}

	p := reliability.DefaultParams()
	p.N, p.R, p.M = n, r, m
	dist, err := failures.NewBurstDist(0.9, 1.0, r) // very bursty drives
	if err != nil {
		log.Fatal(err)
	}
	model := reliability.Correlated{Psec: reliability.PsecFromPbit(1e-12, p.SectorSize), Dist: dist}

	fmt.Printf("%-12s %8s %10s %12s %12s %14s\n",
		"e", "sectors", "saving(dev)", "enc Mult_XOR", "upd penalty", "MTTDL bursty(h)")
	for _, e := range candidates {
		code, err := core.New(core.Config{N: n, R: r, M: m, E: e})
		if err != nil {
			log.Fatal(err)
		}
		spec := reliability.CodeSpec{Kind: "stair", E: e}
		// The Markov MTTDL model assumes m=1; rescale inputs only for
		// comparison purposes: evaluate Pstr over n−m survivors.
		mttdl := reliability.SystemMTTDL(p, spec, model)
		fmt.Printf("%-12s %8d %10.2f %12d %12.2f %14.3g\n",
			fmt.Sprintf("%v", e), code.S(), core.SpaceSavingDevices(e, r),
			code.Cost(core.MethodAuto), code.MeanUpdatePenalty(), mttdl)
	}

	idrSectors := beta * (n - m)
	fmt.Printf("\nIDR alternative: ϵ=β=%d in every data chunk → %d redundant sectors/stripe "+
		"(STAIR e=(1,%d) spends %d)\n", beta, idrSectors, beta, beta+1)

	fmt.Println("\nguidance (§7.2.2): pick e_max = β; add smaller slots (1, β) if multiple")
	fmt.Println("chunks may fail simultaneously; spread coverage only when failures are")
	fmt.Println("close to independent.")
}
