#!/usr/bin/env bash
# End-to-end cluster walkthrough: bring up a fleet of 6 device servers
# plus one spare, place a STAIR volume across them with staird, write
# and read blocks over the HTTP API, then kill one device server and
# watch the volume serve degraded reads, fail over to the spare, and
# rebuild the lost column — finishing with a scrub that proves no
# sector was lost.
#
# Usage: examples/cluster/run.sh   (from the repository root)
# Ports and the scratch directory can be overridden via BASE_PORT,
# STAIRD_PORT and WORKDIR. CI runs this script as its cluster smoke.
set -euo pipefail

BASE_PORT="${BASE_PORT:-19300}"
STAIRD_PORT="${STAIRD_PORT:-19400}"
WORKDIR="${WORKDIR:-$(mktemp -d)}"
STAIRD="http://127.0.0.1:${STAIRD_PORT}"
BLOCKS=32
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT

wait_for() { # wait_for <url> [tries]
    local url="$1" tries="${2:-50}"
    for _ in $(seq "$tries"); do
        curl -fsS "$url" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "timed out waiting for $url" >&2
    return 1
}

echo "== building =="
go build -o "$WORKDIR/bin/" ./cmd/staird ./cmd/stairtool

echo "== generating fleet (6 actives + 1 spare) =="
"$WORKDIR/bin/stairtool" fleet -n 6 -spares 1 -base-port "$BASE_PORT" \
    -out "$WORKDIR/fleet.json"
cat "$WORKDIR/fleet.json"

echo "== starting device servers =="
for i in $(seq 0 6); do
    # 64 sectors = the volume's stripes (16) × rows per column (4): the
    # store checks device geometry exactly.
    "$WORKDIR/bin/staird" device -listen "127.0.0.1:$((BASE_PORT + i))" \
        -sectors 64 -sector 4096 -latency 200us -jitter 300us \
        >"$WORKDIR/dev$i.log" 2>&1 &
    PIDS+=($!)
done
for i in $(seq 0 6); do
    wait_for "http://127.0.0.1:$((BASE_PORT + i))/v1/geometry"
done

echo "== starting staird =="
"$WORKDIR/bin/staird" serve -listen "127.0.0.1:${STAIRD_PORT}" \
    -fleet "$WORKDIR/fleet.json" -volume demo \
    -n 6 -r 4 -m 2 -e 1,2 -stripes 16 -sector 4096 \
    -heartbeat 200ms -fail-after 2 \
    >"$WORKDIR/staird.log" 2>&1 &
PIDS+=($!)
wait_for "$STAIRD/v1/status"
cat "$WORKDIR/staird.log"

echo "== writing $BLOCKS blocks =="
for b in $(seq 0 $((BLOCKS - 1))); do
    {
        printf 'block-%04d-' "$b"
        head -c 4096 /dev/zero | tr '\0' "\\$(printf '%03o' $((65 + b % 26)))"
    } | head -c 4096 >"$WORKDIR/in$b"
    curl -fsS -X PUT --data-binary "@$WORKDIR/in$b" \
        "$STAIRD/v1/blocks/$b" >/dev/null
done
curl -fsS -X POST "$STAIRD/v1/sync" >/dev/null

verify_blocks() { # verify_blocks <label>
    for b in $(seq 0 $((BLOCKS - 1))); do
        curl -fsS "$STAIRD/v1/blocks/$b" -o "$WORKDIR/out$b"
        cmp -s "$WORKDIR/in$b" "$WORKDIR/out$b" || {
            echo "$1: block $b corrupt" >&2
            return 1
        }
    done
    echo "$1: all $BLOCKS blocks verified"
}
verify_blocks "healthy read-back"

echo "== killing one device server mid-flight =="
victim_url=$(curl -fsS "$STAIRD/v1/status" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["placement"][0]["url"])')
victim_port="${victim_url##*:}"
victim_idx=$((victim_port - BASE_PORT))
echo "victim: $victim_url (dev$victim_idx)"
kill "${PIDS[$victim_idx]}"

verify_blocks "degraded read-back"

echo "== waiting for failover + rebuild onto the spare =="
rebuilds=0
for _ in $(seq 100); do
    rebuilds=$(curl -fsS "$STAIRD/v1/metrics" |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["cluster"]["rebuilds"])' ||
        echo 0)
    [ "$rebuilds" -ge 1 ] && break
    sleep 0.3
done
[ "$rebuilds" -ge 1 ] || { echo "rebuild never ran" >&2; exit 1; }
curl -fsS "$STAIRD/v1/status" |
    python3 -c '
import json, sys
health = json.load(sys.stdin)["health"]
dead = [h for h in health if not h["alive"]]
assert not dead, f"columns still dead after failover: {dead}"
print("all columns alive; column 0 now on", health[0]["server"])
'

echo "== scrubbing =="
curl -fsS -X POST "$STAIRD/v1/scrub" | python3 -c '
import json, sys
rep = json.load(sys.stdin)
assert rep["SectorsLost"] == 0 and rep["StripesDamaged"] == 0, rep
print("scrub clean:", rep["StripesChecked"], "stripes checked, 0 lost")
'
verify_blocks "post-rebuild read-back"

echo "== cluster demo passed =="
