#!/usr/bin/env bash
# Process-level soak: the nightly long-run counterpart to run.sh. Brings
# up a latency-shaped fleet (fixed -latency-seed per device, so the
# jitter/spike timing is reproducible run to run) with the integrity
# sidecar on, pushes sustained mixed traffic at the volume API, kills a
# device server mid-traffic, waits out failover + rebuild, scrubs, and
# then audits the final /v1/metrics snapshot: zero unrecoverable
# stripes, zero checksum mismatches (false alarms), and per-op-class
# latency percentile rows present. Metrics snapshots before and after
# the kill land in OUTDIR so CI can upload them as artifacts.
#
# Usage: examples/cluster/soak.sh   (from the repository root)
# Ports, scratch and artifact directories can be overridden via
# BASE_PORT, STAIRD_PORT, WORKDIR and OUTDIR; ROUNDS scales the traffic
# phase (the nightly soak workflow raises it).
set -euo pipefail

BASE_PORT="${BASE_PORT:-19500}"
STAIRD_PORT="${STAIRD_PORT:-19600}"
WORKDIR="${WORKDIR:-$(mktemp -d)}"
OUTDIR="${OUTDIR:-$WORKDIR/soak-out}"
STAIRD="http://127.0.0.1:${STAIRD_PORT}"
BLOCKS=32
ROUNDS="${ROUNDS:-4}"
PIDS=()
mkdir -p "$OUTDIR"

cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT

wait_for() { # wait_for <url> [tries]
    local url="$1" tries="${2:-50}"
    for _ in $(seq "$tries"); do
        curl -fsS "$url" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "timed out waiting for $url" >&2
    return 1
}

echo "== building =="
go build -o "$WORKDIR/bin/" ./cmd/staird ./cmd/stairtool

echo "== generating fleet (6 actives + 1 spare) =="
"$WORKDIR/bin/stairtool" fleet -n 6 -spares 1 -base-port "$BASE_PORT" \
    -out "$WORKDIR/fleet.json"

echo "== starting device servers (seeded latency profiles) =="
for i in $(seq 0 6); do
    # 65 sectors = stripes (16) × rows per column (4) data sectors plus
    # the 1-sector integrity sidecar region (serve prints the figure).
    "$WORKDIR/bin/staird" device -listen "127.0.0.1:$((BASE_PORT + i))" \
        -sectors 65 -sector 4096 \
        -latency 200us -jitter 300us -spike 5ms -spike-prob 0.01 \
        -latency-seed $((1000 + i)) \
        >"$WORKDIR/dev$i.log" 2>&1 &
    PIDS+=($!)
done
for i in $(seq 0 6); do
    wait_for "http://127.0.0.1:$((BASE_PORT + i))/v1/geometry"
done

echo "== starting staird (integrity + hedged reads) =="
"$WORKDIR/bin/staird" serve -listen "127.0.0.1:${STAIRD_PORT}" \
    -fleet "$WORKDIR/fleet.json" -volume soak \
    -n 6 -r 4 -m 2 -e 1,2 -stripes 16 -sector 4096 \
    -integrity -epoch 7 -hedge \
    -heartbeat 200ms -fail-after 2 \
    >"$WORKDIR/staird.log" 2>&1 &
PIDS+=($!)
wait_for "$STAIRD/v1/status"
cat "$WORKDIR/staird.log"

write_block() { # write_block <idx> <round>
    {
        printf 'soak-%04d-%02d-' "$1" "$2"
        head -c 4096 /dev/zero | tr '\0' "\\$(printf '%03o' $((65 + ($1 + $2) % 26)))"
    } | head -c 4096 >"$WORKDIR/in$1"
    curl -fsS -X PUT --data-binary "@$WORKDIR/in$1" \
        "$STAIRD/v1/blocks/$1" >/dev/null
}

verify_blocks() { # verify_blocks <label>
    for b in $(seq 0 $((BLOCKS - 1))); do
        curl -fsS "$STAIRD/v1/blocks/$b" -o "$WORKDIR/out$b"
        cmp -s "$WORKDIR/in$b" "$WORKDIR/out$b" || {
            echo "$1: block $b corrupt" >&2
            return 1
        }
    done
    echo "$1: all $BLOCKS blocks verified"
}

traffic_round() { # traffic_round <round>: overwrite all blocks, read a stride back
    local round="$1" b
    for b in $(seq 0 $((BLOCKS - 1))); do
        write_block "$b" "$round"
    done
    for b in $(seq 0 4 $((BLOCKS - 1))); do
        curl -fsS "$STAIRD/v1/blocks/$b" -o /dev/null
    done
    curl -fsS -X POST "$STAIRD/v1/flush" >/dev/null
}

echo "== sustained traffic: $ROUNDS rounds over $BLOCKS blocks =="
for round in $(seq 1 "$ROUNDS"); do
    traffic_round "$round"
done
curl -fsS -X POST "$STAIRD/v1/sync" >/dev/null
verify_blocks "healthy read-back"
curl -fsS "$STAIRD/v1/metrics" >"$OUTDIR/metrics-healthy.json"

echo "== killing one device server mid-traffic =="
victim_url=$(curl -fsS "$STAIRD/v1/status" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["placement"][0]["url"])')
victim_port="${victim_url##*:}"
victim_idx=$((victim_port - BASE_PORT))
echo "victim: $victim_url (dev$victim_idx)"
kill "${PIDS[$victim_idx]}"

# Keep reading straight through the outage window: every block read
# with a column down exercises the degraded-decode path (writes resume
# once the spare is rebuilt — a flush racing the failover is allowed to
# surface an error, which would abort the soak spuriously).
verify_blocks "degraded read-back"

echo "== waiting for failover + rebuild onto the spare =="
rebuilds=0
for _ in $(seq 100); do
    rebuilds=$(curl -fsS "$STAIRD/v1/metrics" |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["cluster"]["rebuilds"])' ||
        echo 0)
    [ "$rebuilds" -ge 1 ] && break
    sleep 0.3
done
[ "$rebuilds" -ge 1 ] || { echo "rebuild never ran" >&2; exit 1; }

echo "== post-rebuild traffic + scrub =="
traffic_round 100
curl -fsS -X POST "$STAIRD/v1/sync" >/dev/null
curl -fsS -X POST "$STAIRD/v1/scrub" | python3 -c '
import json, sys
rep = json.load(sys.stdin)
assert rep["SectorsLost"] == 0 and rep["StripesDamaged"] == 0, rep
print("scrub clean:", rep["StripesChecked"], "stripes checked, 0 lost")
'
verify_blocks "post-rebuild read-back"
curl -fsS "$STAIRD/v1/metrics" >"$OUTDIR/metrics-final.json"

echo "== auditing final metrics =="
python3 - "$OUTDIR/metrics-final.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
store = m["store"]
# store.Stats marshals with Go field names (no json tags).
assert store["UnrecoverableStripes"] == 0, store
assert store["ChecksumMismatches"] == 0, store
assert m["cluster"]["rebuilds"] >= 1, m["cluster"]
assert m["cluster"]["dead_columns"] == 0, m["cluster"]
lat = m.get("latency_us") or {}
for cls in ("read", "write", "flush", "scrub"):
    row = lat.get(cls)
    assert row and row["count"] > 0, (cls, lat)
    assert 0 < row["p50_us"] <= row["p99_us"] <= row["p999_us"], (cls, row)
print("audit clean: 0 unrecoverable stripes, 0 checksum false alarms;",
      "latency rows:", ", ".join(f"{c} p99={lat[c]['p99_us']:.0f}us" for c in sorted(lat)))
EOF

echo "== cluster soak passed (artifacts in $OUTDIR) =="
