// Reliability: compare the system MTTDL of Reed-Solomon, SD and STAIR
// configurations for a 10PB system under both sector-failure models of
// §7, reproducing the headline observations of Figures 17 and 18.
package main

import (
	"fmt"
	"log"

	"stair/internal/failures"
	"stair/internal/reliability"
)

func main() {
	p := reliability.DefaultParams()
	fmt.Printf("system: 10PB user data, %d-device arrays, r=%d, m=%d, 1/λ=%.0fh, 1/µ=%.1fh\n\n",
		p.N, p.R, p.M, p.MTTFHours, p.RebuildHours)

	specs := []reliability.CodeSpec{
		{Kind: "rs"},
		{Kind: "stair", E: []int{1}},
		{Kind: "stair", E: []int{3}},
		{Kind: "stair", E: []int{1, 2}},
		{Kind: "stair", E: []int{1, 1, 1}},
		{Kind: "sd", S: 3},
		{Kind: "idr", S: 1},
	}

	const pbit = 1e-11
	ind := reliability.Independent{Psec: reliability.PsecFromPbit(pbit, p.SectorSize), Rval: p.R}
	dist, err := failures.NewBurstDist(0.98, 1.79, p.R)
	if err != nil {
		log.Fatal(err)
	}
	cor := reliability.Correlated{Psec: reliability.PsecFromPbit(pbit, p.SectorSize), Dist: dist}

	fmt.Printf("%-18s %18s %18s\n", "code (Pbit=1e-11)", "MTTDL indep (h)", "MTTDL bursty (h)")
	for _, spec := range specs {
		fmt.Printf("%-18s %18.3g %18.3g\n", spec.String(),
			reliability.SystemMTTDL(p, spec, ind),
			reliability.SystemMTTDL(p, spec, cor))
	}

	fmt.Println("\ntakeaways (cf. Figs. 17-18):")
	fmt.Println(" * one parity sector per stripe (s=1) buys orders of magnitude over RS;")
	fmt.Println(" * under independent failures, spreading coverage (e=(1,2)) wins;")
	fmt.Println(" * under bursts, concentrating coverage (e=(3), like SD s=3) wins;")
	fmt.Println(" * IDR needs ϵ(n−m) redundant sectors for similar burst protection.")
}
