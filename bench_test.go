// Benchmarks regenerating the measured quantities of the paper's
// evaluation (one family per figure; see DESIGN.md §3 for the index and
// cmd/stairbench for the printable sweeps). Stripes default to 1 MiB so
// `go test -bench=.` completes quickly; cmd/stairbench -full runs the
// paper-scale 32 MiB sweeps.
package stair_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/reliability"
	"stair/internal/sd"
	"stair/internal/store"
)

const benchStripeBytes = 1 << 20

// benchCtx is the context threaded through the store benchmarks.
var benchCtx = context.Background()

func benchCode(b *testing.B, cfg core.Config) *core.Code {
	b.Helper()
	c, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchStripe(b *testing.B, c *core.Code, stripeBytes int) *core.Stripe {
	b.Helper()
	sector := stripeBytes / (c.N() * c.R())
	sector -= sector % c.Field().SymbolBytes()
	if sector < c.Field().SymbolBytes() {
		sector = c.Field().SymbolBytes()
	}
	st, err := c.NewStripe(sector)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, cell := range c.DataCells() {
		rng.Read(st.Sector(cell.Col, cell.Row))
	}
	return st
}

// BenchmarkFig9EncodeMethods: encoding time of the three methods across
// the e-configurations of Figure 9 (n=8, r=16, m=2, s=4). The time
// ordering follows the Mult_XOR counts.
func BenchmarkFig9EncodeMethods(b *testing.B) {
	for _, e := range [][]int{{4}, {1, 3}, {2, 2}, {1, 1, 2}, {1, 1, 1, 1}} {
		c := benchCode(b, core.Config{N: 8, R: 16, M: 2, E: e})
		st := benchStripe(b, c, benchStripeBytes)
		for _, m := range []core.Method{core.MethodUpstairs, core.MethodDownstairs, core.MethodStandard} {
			b.Run(fmt.Sprintf("e=%v/%v", e, m), func(b *testing.B) {
				b.SetBytes(int64(st.SectorSize * c.N() * c.R()))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := c.EncodeWith(st, m); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEncodeByKernel re-runs the canonical encode labelled by the
// dispatched GF region kernel, so committed benchmark logs record which
// kernel produced this file's numbers (sub-benchmark names carry it,
// e.g. BenchmarkEncodeByKernel/kernel=avx2). Force the baseline with
// STAIR_GF_KERNEL=portable for an A/B pair; the spread is the SIMD win
// on every other benchmark in this file.
func BenchmarkEncodeByKernel(b *testing.B) {
	c := benchCode(b, core.Config{N: 8, R: 16, M: 2, E: []int{1, 1, 2}})
	st := benchStripe(b, c, benchStripeBytes)
	b.Run("kernel="+c.KernelName(), func(b *testing.B) {
		b.SetBytes(int64(st.SectorSize * c.N() * c.R()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.Encode(st); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig11Encode: STAIR vs SD encoding speed at representative
// (n, m, s) points of Figure 11 (r=16).
func BenchmarkFig11Encode(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		for _, s := range []int{1, 3} {
			const m = 2
			b.Run(fmt.Sprintf("STAIR/n=%d/s=%d", n, s), func(b *testing.B) {
				e := []int{s} // worst single-chunk coverage
				c := benchCode(b, core.Config{N: n, R: 16, M: m, E: e})
				st := benchStripe(b, c, benchStripeBytes)
				b.SetBytes(int64(st.SectorSize * c.N() * c.R()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.Encode(st); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("SD/n=%d/s=%d", n, s), func(b *testing.B) {
				c, err := sd.New(sd.Config{N: n, R: 16, M: m, S: s})
				if err != nil {
					b.Fatal(err)
				}
				sector := benchStripeBytes / (n * 16)
				sector -= sector % 2
				cells := make([][]byte, n*16)
				rng := rand.New(rand.NewSource(2))
				for i := range cells {
					cells[i] = make([]byte, sector)
					rng.Read(cells[i])
				}
				b.SetBytes(int64(sector * n * 16))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.Encode(cells); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig12StripeSize: encoding speed vs stripe size (n=r=16, m=2,
// s=2), the cache-sensitivity sweep of Figure 12.
func BenchmarkFig12StripeSize(b *testing.B) {
	c := benchCode(b, core.Config{N: 16, R: 16, M: 2, E: []int{2}})
	for _, size := range []int{128 << 10, 1 << 20, 8 << 20} {
		st := benchStripe(b, c, size)
		b.Run(fmt.Sprintf("stripe=%dKB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(st.SectorSize * c.N() * c.R()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.Encode(st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Decode: worst-case repair speed (m chunks + s stair
// sectors) for Figure 13's representative points.
func BenchmarkFig13Decode(b *testing.B) {
	for _, n := range []int{8, 16} {
		for _, m := range []int{1, 2} {
			e := []int{1, 2}
			c := benchCode(b, core.Config{N: n, R: 16, M: m, E: e})
			st := benchStripe(b, c, benchStripeBytes)
			if err := c.Encode(st); err != nil {
				b.Fatal(err)
			}
			var lost []core.Cell
			for col := 0; col < m; col++ {
				for row := 0; row < 16; row++ {
					lost = append(lost, core.Cell{Col: col, Row: row})
				}
			}
			for l, el := range e {
				for h := 0; h < el; h++ {
					lost = append(lost, core.Cell{Col: m + l, Row: 15 - h})
				}
			}
			b.Run(fmt.Sprintf("n=%d/m=%d", n, m), func(b *testing.B) {
				b.SetBytes(int64(st.SectorSize * c.N() * c.R()))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := c.Repair(st, lost); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig13DeviceOnlyDecode: the §6.2.2 fast path — device failures
// only decode like Reed-Solomon.
func BenchmarkFig13DeviceOnlyDecode(b *testing.B) {
	c := benchCode(b, core.Config{N: 16, R: 16, M: 2, E: []int{1}})
	st := benchStripe(b, c, benchStripeBytes)
	if err := c.Encode(st); err != nil {
		b.Fatal(err)
	}
	var lost []core.Cell
	for col := 0; col < 2; col++ {
		for row := 0; row < 16; row++ {
			lost = append(lost, core.Cell{Col: col, Row: row})
		}
	}
	b.SetBytes(int64(st.SectorSize * c.N() * c.R()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Repair(st, lost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14Update: incremental single-sector updates across the
// e-configurations of Figure 14 (n=16, r=16, s=4).
func BenchmarkFig14Update(b *testing.B) {
	for _, e := range [][]int{{4}, {1, 1, 2}, {1, 1, 1, 1}} {
		c := benchCode(b, core.Config{N: 16, R: 16, M: 2, E: e})
		st := benchStripe(b, c, benchStripeBytes)
		if err := c.Encode(st); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, st.SectorSize)
		rand.New(rand.NewSource(3)).Read(buf)
		cell := c.DataCells()[0]
		b.Run(fmt.Sprintf("e=%v", e), func(b *testing.B) {
			b.SetBytes(int64(st.SectorSize))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.Update(st, cell, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig17MTTDL: the analytic reliability pipeline of Figures
// 17-19 (Pstr enumeration dominating).
func BenchmarkFig17MTTDL(b *testing.B) {
	p := reliability.DefaultParams()
	model := reliability.Independent{Psec: reliability.PsecFromPbit(1e-12, p.SectorSize), Rval: p.R}
	spec := reliability.CodeSpec{Kind: "stair", E: []int{1, 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reliability.SystemMTTDL(p, spec, model)
	}
}

// BenchmarkFig19Correlated: the correlated-model pipeline with a wide
// coverage vector (the most expensive Pstr enumeration of Figure 19b).
func BenchmarkFig19Correlated(b *testing.B) {
	p := reliability.DefaultParams()
	dist, err := failures.NewBurstDist(0.9, 1.0, p.R)
	if err != nil {
		b.Fatal(err)
	}
	model := reliability.Correlated{Psec: reliability.PsecFromPbit(1e-12, p.SectorSize), Dist: dist}
	spec := reliability.CodeSpec{Kind: "stair", E: []int{12}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reliability.SystemMTTDL(p, spec, model)
	}
}

// BenchmarkScheduleBuild: one-time construction cost (New compiles the
// upstairs/downstairs/standard schedules).
func BenchmarkScheduleBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(core.Config{N: 16, R: 16, M: 2, E: []int{1, 1, 2}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeScheduleBuild: per-pattern repair schedule compilation
// (amortised by the decode cache in steady state).
func BenchmarkDecodeScheduleBuild(b *testing.B) {
	c := benchCode(b, core.Config{N: 16, R: 16, M: 2, E: []int{1, 1, 2}})
	var lost []core.Cell
	for col := 0; col < 2; col++ {
		for row := 0; row < 16; row++ {
			lost = append(lost, core.Cell{Col: col, Row: row})
		}
	}
	lost = append(lost, core.Cell{Col: 2, Row: 15}, core.Cell{Col: 3, Row: 15}, core.Cell{Col: 4, Row: 14}, core.Cell{Col: 4, Row: 15})
	st := benchStripe(b, c, 64<<10)
	if err := c.Encode(st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh code each round would re-measure construction; instead
		// vary the pattern slightly to defeat the cache.
		l := append([]core.Cell{}, lost...)
		l[len(l)-1].Row = 8 + i%8
		if _, err := c.RepairCost(l); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Store-level benchmarks (internal/store): the paths a deployment
// actually drives, healthy vs degraded. cmd/stairbench -experiment store
// emits the same scenarios as BENCH_store.json.

func benchStore(b *testing.B, stripes int) *store.Store {
	b.Helper()
	c := benchCode(b, core.Config{N: 8, R: 16, M: 2, E: []int{1, 1, 2}})
	sector := benchStripeBytes / (c.N() * c.R())
	sector -= sector % c.Field().SymbolBytes()
	s, err := store.Open(store.Config{Code: c, SectorSize: sector, Stripes: stripes})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	buf := make([]byte, sector)
	rng := rand.New(rand.NewSource(9))
	for blk := 0; blk < s.Blocks(); blk++ {
		rng.Read(buf)
		if err := s.WriteBlock(benchCtx, blk, buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(benchCtx); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStoreWriteSeq: sequential volume fill — batched parallel
// full-stripe encodes plus device writes.
func BenchmarkStoreWriteSeq(b *testing.B) {
	s := benchStore(b, 4)
	buf := make([]byte, s.BlockSize())
	rand.New(rand.NewSource(10)).Read(buf)
	b.SetBytes(int64(s.Blocks() * s.BlockSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for blk := 0; blk < s.Blocks(); blk++ {
			if err := s.WriteBlock(benchCtx, blk, buf); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(benchCtx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreSubStripeWrite: a single-block overwrite flushed through
// the §5.2 incremental-parity read–modify–write path.
func BenchmarkStoreSubStripeWrite(b *testing.B) {
	s := benchStore(b, 4)
	buf := make([]byte, s.BlockSize())
	rand.New(rand.NewSource(11)).Read(buf)
	b.SetBytes(int64(s.BlockSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteBlock(benchCtx, i%s.Blocks(), buf); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(benchCtx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRead: healthy vs degraded block reads (1 and m failed
// devices) — the degraded cases pay an on-the-fly stripe repair.
func BenchmarkStoreRead(b *testing.B) {
	for _, fails := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("failed=%d", fails), func(b *testing.B) {
			s := benchStore(b, 4)
			for dev := 0; dev < fails; dev++ {
				if err := s.FailDevice(dev); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(s.BlockSize()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err := s.ReadBlock(benchCtx, i%s.Blocks())
				if err != nil {
					b.Fatal(err)
				}
				s.ReleaseBlock(buf)
			}
		})
	}
}

// BenchmarkStoreReadConcurrent: parallel reads over the whole volume —
// healthy reads on different stripes ride the sharded lock table
// instead of serialising on one mutex, so this scales with cores.
func BenchmarkStoreReadConcurrent(b *testing.B) {
	s := benchStore(b, 8)
	b.SetBytes(int64(s.BlockSize()))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := rand.Int()
		for pb.Next() {
			i++
			buf, err := s.ReadBlock(benchCtx, i%s.Blocks())
			if err != nil {
				b.Error(err)
				return
			}
			s.ReleaseBlock(buf)
		}
	})
}

// BenchmarkStoreDegradedReadCached: repeated reads of blocks on a failed
// device — after the first decode per stripe, the degraded-stripe cache
// serves the reconstruction from memory.
func BenchmarkStoreDegradedReadCached(b *testing.B) {
	s := benchStore(b, 4)
	if err := s.FailDevice(0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.BlockSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := s.ReadBlock(benchCtx, i%s.Blocks())
		if err != nil {
			b.Fatal(err)
		}
		s.ReleaseBlock(buf)
	}
}

// BenchmarkStoreReadBlockSteady: the healthy per-block read fast path in
// steady state — one vectored device read into a caller-owned buffer.
// With the zero-copy stripe memory this path performs no heap
// allocations at all (the allocs/op column is the regression guard; see
// TestAllocRegressionGuard).
func BenchmarkStoreReadBlockSteady(b *testing.B) {
	s := benchStore(b, 4)
	dst := make([]byte, s.BlockSize())
	b.SetBytes(int64(s.BlockSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReadBlockInto(benchCtx, i%s.Blocks(), dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWriteBlockSteady: sequential full-stripe writes in
// steady state — blocks land in pooled slab-backed stripe buffers, full
// buffers flush with an in-place encode and contiguous per-device
// writes. Per-block allocations amortise to zero: the remaining
// per-flush bookkeeping (journal intent, cell partitions) is shared by
// a whole stripe's worth of blocks.
func BenchmarkStoreWriteBlockSteady(b *testing.B) {
	s := benchStore(b, 4)
	buf := make([]byte, s.BlockSize())
	rand.New(rand.NewSource(12)).Read(buf)
	b.SetBytes(int64(s.BlockSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteBlock(benchCtx, i%s.Blocks(), buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Flush(benchCtx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreScrubRepair: one scrub pass plus repair convergence over
// a volume with one latent error per stripe.
func BenchmarkStoreScrubRepair(b *testing.B) {
	s := benchStore(b, 4)
	_, stripes, r, _ := s.Geometry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for stripe := 0; stripe < stripes; stripe++ {
			if err := s.InjectSectorError(stripe%3, stripe*r); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := s.Scrub(benchCtx); err != nil {
			b.Fatal(err)
		}
		s.Quiesce()
	}
}
