package stair_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"stair"
)

// TestPublicAPIRoundtrip exercises the package through its public face
// only, the way a downstream user would.
func TestPublicAPIRoundtrip(t *testing.T) {
	code, err := stair.New(stair.Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := code.NewStripe(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, c := range code.DataCells() {
		rng.Read(st.Sector(c.Col, c.Row))
	}
	if err := code.Encode(st); err != nil {
		t.Fatal(err)
	}
	want := st.Clone()

	lost := []stair.Cell{
		{Col: 6, Row: 0}, {Col: 6, Row: 1}, {Col: 6, Row: 2}, {Col: 6, Row: 3},
		{Col: 7, Row: 0}, {Col: 7, Row: 1}, {Col: 7, Row: 2}, {Col: 7, Row: 3},
		{Col: 0, Row: 3}, {Col: 1, Row: 0}, {Col: 2, Row: 1}, {Col: 2, Row: 2},
	}
	for _, c := range lost {
		for i := range st.Sector(c.Col, c.Row) {
			st.Sector(c.Col, c.Row)[i] = 0
		}
	}
	if err := code.Repair(st, lost); err != nil {
		t.Fatal(err)
	}
	for i := range st.Cells {
		if !bytes.Equal(st.Cells[i], want.Cells[i]) {
			t.Fatalf("cell %d differs after repair", i)
		}
	}
}

func TestPublicErrUnrecoverable(t *testing.T) {
	code, err := stair.New(stair.Config{N: 6, R: 4, M: 1, E: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := code.NewStripe(64)
	var lost []stair.Cell
	for col := 0; col < 2; col++ {
		for row := 0; row < 4; row++ {
			lost = append(lost, stair.Cell{Col: col, Row: row})
		}
	}
	err = code.Repair(st, lost)
	if !errors.Is(err, stair.ErrUnrecoverable) {
		t.Errorf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestPublicHelpers(t *testing.T) {
	if got := stair.StorageEfficiency(8, 16, 1, 0); got != 0.875 {
		t.Errorf("StorageEfficiency = %v", got)
	}
	if got := stair.SpaceSavingDevices([]int{1, 4}, 8); got != 2-5.0/8 {
		t.Errorf("SpaceSavingDevices = %v", got)
	}
}

func TestPublicMethodsAndCosts(t *testing.T) {
	code, err := stair.New(stair.Config{N: 8, R: 16, M: 2, E: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if code.Method() != stair.MethodDownstairs {
		t.Errorf("m'=1 should choose downstairs, got %v", code.Method())
	}
	if code.Cost(stair.MethodUpstairs) <= code.Cost(stair.MethodDownstairs) {
		t.Error("cost ordering unexpected for m'=1")
	}
	if code.Cost(stair.MethodStandard) <= code.Cost(stair.MethodDownstairs) {
		t.Error("standard should be the most expensive here")
	}
}

func TestPublicUpdate(t *testing.T) {
	code, err := stair.New(stair.Config{N: 6, R: 4, M: 1, E: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := code.NewStripe(128)
	rng := rand.New(rand.NewSource(2))
	for _, c := range code.DataCells() {
		rng.Read(st.Sector(c.Col, c.Row))
	}
	if err := code.Encode(st); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	rng.Read(buf)
	if err := code.Update(st, stair.Cell{Col: 0, Row: 0}, buf); err != nil {
		t.Fatal(err)
	}
	ok, err := code.Verify(st)
	if err != nil || !ok {
		t.Fatalf("Verify after Update: ok=%v err=%v", ok, err)
	}
}
