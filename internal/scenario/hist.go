// Package scenario is the proving ground for the rest of the tree: a
// trace-driven load harness (mixed op sizes, Zipfian hot spots,
// open-loop arrival with bursts, hundreds of concurrent clients) that
// drives a store.Store or a cluster Volume while a correlated-failure
// scheduler replays the paper's §7.1.2/§7.2.2 failure processes —
// whole-shelf outages, latent-sector-error storms during rebuild, a
// scrub racing a progressively failing device, heartbeat flaps during
// hedged reads — as composable, seed-deterministic scenarios.
//
// Latency is reported as p50/p99/p999 per op class from HDR-style
// log-linear histograms, measured open-loop (from each op's scheduled
// arrival, so queueing delay counts — a closed-loop harness would hide
// exactly the coordinated omission the tail defences exist to fight).
// Every scenario ends with a settle phase (flush, rebuilds, repair
// quiesce, scrub-until-clean) and a ledger-backed audit: zero
// unrecoverable stripes, zero integrity false alarms, zero residual
// bad sectors, and a byte-identical fingerprint for a given seed.
package scenario

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucket layout: values 0..linearMax-1 µs are exact; above
// that each power of two is split into subCount/2 equal sub-buckets, so
// the relative quantization error is bounded by 2/subCount ≈ 3%. This
// is the HDR-histogram scheme with a fixed µs unit and enough octaves
// for any duration Go can represent.
const (
	subBits   = 6
	subCount  = 1 << subBits // 64 linear buckets, 32 sub-buckets/octave
	octaves   = 64 - subBits // enough for values up to 1<<63 µs
	bucketLen = subCount + octaves*(subCount/2)
)

// Histogram is a fixed-size, lock-free latency histogram in
// microseconds. Record is safe for concurrent use (atomic adds on
// independent buckets); the read side (Percentiles, Quantile) takes a
// point-in-time snapshot bucket by bucket, which is exact once the
// recorders have stopped — the only state the harness reports.
type Histogram struct {
	buckets [bucketLen]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total µs, for the mean
	max     atomic.Uint64
}

// bucketOf maps a µs value to its bucket index.
func bucketOf(us uint64) int {
	if us < subCount {
		return int(us)
	}
	// bits.Len64(us) ≥ subBits+1 here; shifting by e drops us into
	// [subCount/2, subCount), the top half of the linear range.
	e := bits.Len64(us) - subBits
	return subCount + (e-1)*(subCount/2) + int(us>>uint(e)) - subCount/2
}

// bucketHigh returns the exclusive upper value bound of a bucket — the
// conservative (pessimistic) value quantiles report.
func bucketHigh(idx int) float64 {
	if idx < subCount {
		return float64(idx + 1)
	}
	e := (idx-subCount)/(subCount/2) + 1
	s := (idx - subCount) % (subCount / 2)
	return float64((uint64(subCount/2+s) + 1) << uint(e))
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	us := uint64(0)
	if d > 0 {
		us = uint64(d / time.Microsecond)
	}
	h.buckets[bucketOf(us)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile returns the q-quantile (q in [0,1]) in microseconds, using
// each bucket's upper bound so the answer never understates. Zero
// samples report 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < bucketLen; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			high := bucketHigh(i)
			if m := float64(h.max.Load()); high > m && m > 0 {
				// The top occupied bucket's upper bound can overshoot the
				// true max; clamp so p999 of a tight distribution never
				// exceeds the largest sample actually seen.
				return m
			}
			return high
		}
	}
	return float64(h.max.Load())
}

// Percentiles is the reported latency row for one op class. All values
// are microseconds; the JSON field names are the BENCH_store.json
// schema (see README: Scenario harness & soak testing).
type Percentiles struct {
	Count  uint64  `json:"count"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	MeanUS float64 `json:"mean_us"`
	MaxUS  float64 `json:"max_us"`
}

// Percentiles snapshots the histogram into the reported row.
func (h *Histogram) Percentiles() Percentiles {
	p := Percentiles{
		Count:  h.count.Load(),
		P50us:  h.Quantile(0.50),
		P99us:  h.Quantile(0.99),
		P999us: h.Quantile(0.999),
		MaxUS:  float64(h.max.Load()),
	}
	if p.Count > 0 {
		p.MeanUS = float64(h.sum.Load()) / float64(p.Count)
	}
	return p
}
