package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/store"
)

// Event is one scheduled correlated-failure action: fired At into the
// scenario, executing Do against the env while recording what happened
// in the ledger.
type Event struct {
	At   time.Duration
	Name string
	Do   func(ctx context.Context, env *Env, led *Ledger) error
}

// Ledger is a scenario run's deterministic injection record. It owns
// the event RNG (seeded from the spec, independent of the trace RNG)
// and the *planned-lost* model: which devices and sectors the schedule
// has deliberately damaged and not yet explicitly healed. Storm gating
// consults only this planned state — never the live store, whose
// repair progress depends on scheduling — so the accepted/skipped
// burst sequence is a pure function of (seed, event schedule). The
// planned model is conservative: a sector stays "lost" until a
// rebuild event clears its device, even if a background repair already
// healed it, so gating can only under-inject, never exceed coverage.
type Ledger struct {
	mu sync.Mutex

	rng *rand.Rand
	log []string

	n, stripes, r int
	code          *core.Code

	downDevs map[int]bool
	injected map[int]map[int]bool // dev → data-sector set
	rebuilds map[int]chan error   // dev → async rebuild completion
}

func newLedger(env *Env, seed int64) *Ledger {
	n, stripes, r, _ := env.Store.Geometry()
	return &Ledger{
		// The event RNG is decorrelated from the trace RNG (which uses
		// the seed directly) by a fixed xor, so the two streams never
		// alias even though the spec carries one seed.
		rng:      rand.New(rand.NewSource(seed ^ 0x5ce4a210_0e7e4751)),
		n:        n,
		stripes:  stripes,
		r:        r,
		code:     env.Code,
		downDevs: map[int]bool{},
		injected: map[int]map[int]bool{},
		rebuilds: map[int]chan error{},
	}
}

func (l *Ledger) logf(format string, args ...any) {
	l.log = append(l.log, fmt.Sprintf(format, args...))
}

// lines returns a copy of the event log.
func (l *Ledger) lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.log...)
}

// injectedCount counts distinct injected data sectors.
func (l *Ledger) injectedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0
	for _, secs := range l.injected {
		total += len(secs)
	}
	return total
}

// plannedCellsLocked returns the planned-lost cells of one stripe:
// whole columns for planned-down devices plus individually injected
// sectors, deduplicated.
func (l *Ledger) plannedCellsLocked(stripe int) []core.Cell {
	seen := map[core.Cell]bool{}
	var cells []core.Cell
	add := func(c core.Cell) {
		if !seen[c] {
			seen[c] = true
			cells = append(cells, c)
		}
	}
	for dev := 0; dev < l.n; dev++ {
		if l.downDevs[dev] {
			for row := 0; row < l.r; row++ {
				add(core.Cell{Col: dev, Row: row})
			}
		}
		for sec := range l.injected[dev] {
			if sec/l.r == stripe {
				add(core.Cell{Col: dev, Row: sec % l.r})
			}
		}
	}
	return cells
}

// recordInjectedLocked adds a burst to the planned model.
func (l *Ledger) recordInjectedLocked(dev, start, length int) {
	if l.injected[dev] == nil {
		l.injected[dev] = map[int]bool{}
	}
	for i := 0; i < length; i++ {
		l.injected[dev][start+i] = true
	}
}

// clearDeviceLocked forgets a device's planned damage (after an
// explicit replace/rebuild heals it).
func (l *Ledger) clearDeviceLocked(dev int) {
	delete(l.downDevs, dev)
	delete(l.injected, dev)
}

// FailDevice wholly fails one device at the given offset.
func FailDevice(at time.Duration, dev int) Event {
	return Event{At: at, Name: fmt.Sprintf("fail dev=%d", dev), Do: func(ctx context.Context, env *Env, led *Ledger) error {
		led.mu.Lock()
		led.downDevs[dev] = true
		led.logf("t=%v fail dev=%d", at, dev)
		led.mu.Unlock()
		return env.Store.FailDevice(dev)
	}}
}

// ReplaceDevice swaps a failed device for a fresh, all-unwritten one.
// The planned model keeps the device down — a replacement holds no
// data — until a rebuild event declares it healed; its individually
// injected sectors are gone with the old medium.
func ReplaceDevice(at time.Duration, dev int) Event {
	return Event{At: at, Name: fmt.Sprintf("replace dev=%d", dev), Do: func(ctx context.Context, env *Env, led *Ledger) error {
		led.mu.Lock()
		led.downDevs[dev] = true
		delete(led.injected, dev)
		led.logf("t=%v replace dev=%d", at, dev)
		led.mu.Unlock()
		return env.Store.ReplaceDevice(dev)
	}}
}

// RebuildDevice synchronously rebuilds a replaced device, then clears
// it from the planned-lost model.
func RebuildDevice(at time.Duration, dev int) Event {
	return Event{At: at, Name: fmt.Sprintf("rebuild dev=%d", dev), Do: func(ctx context.Context, env *Env, led *Ledger) error {
		if err := env.Store.RebuildDevice(ctx, dev); err != nil {
			return err
		}
		led.mu.Lock()
		led.clearDeviceLocked(dev)
		led.logf("t=%v rebuild dev=%d", at, dev)
		led.mu.Unlock()
		return nil
	}}
}

// RebuildDeviceAsync starts a background rebuild of a replaced device
// — the window an LSE storm then strikes into. Pair with AwaitRebuild;
// the planned model keeps the device down until then.
func RebuildDeviceAsync(at time.Duration, dev int) Event {
	return Event{At: at, Name: fmt.Sprintf("rebuild-async dev=%d", dev), Do: func(ctx context.Context, env *Env, led *Ledger) error {
		done := make(chan error, 1)
		led.mu.Lock()
		if led.rebuilds[dev] != nil {
			led.mu.Unlock()
			return fmt.Errorf("rebuild already running for dev %d", dev)
		}
		led.rebuilds[dev] = done
		led.logf("t=%v rebuild-async dev=%d", at, dev)
		led.mu.Unlock()
		go func() { done <- env.Store.RebuildDevice(ctx, dev) }()
		return nil
	}}
}

// AwaitRebuild blocks until the device's async rebuild completes, then
// clears it from the planned-lost model.
func AwaitRebuild(at time.Duration, dev int) Event {
	return Event{At: at, Name: fmt.Sprintf("await-rebuild dev=%d", dev), Do: func(ctx context.Context, env *Env, led *Ledger) error {
		led.mu.Lock()
		done := led.rebuilds[dev]
		delete(led.rebuilds, dev)
		led.mu.Unlock()
		if done == nil {
			return fmt.Errorf("no async rebuild running for dev %d", dev)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case err := <-done:
			if err != nil {
				return err
			}
		}
		led.mu.Lock()
		led.clearDeviceLocked(dev)
		led.logf("t=%v await-rebuild dev=%d", at, dev)
		led.mu.Unlock()
		return nil
	}}
}

// StormConfig parameterises one latent-sector-error storm: the
// §7.2.2 burst process ((b1, α) length distribution, per-sector start
// probability) drawn across the target devices' data regions.
type StormConfig struct {
	// PStart is the per-sector burst-start probability.
	PStart float64
	// B1/Alpha/MaxLen shape the burst-length distribution; zero values
	// select the field-typical (0.9, 1.5) with bursts capped at r.
	B1     float64
	Alpha  float64
	MaxLen int
	// Devs restricts the storm to these devices; empty means every
	// device not planned-down.
	Devs []int
}

// LSEStorm draws a §7.2.2 burst storm and injects every burst the
// code's coverage still absorbs on top of the planned-lost state.
// Bursts that would push any touched stripe beyond coverage are
// skipped — and logged, so the fingerprint still witnesses the draw.
// The real-world reading: a storm harsher than the deployment's
// (m, e) budget *would* lose data; the harness proves the system
// survives everything inside the budget with zero loss, which is the
// paper's reliability claim.
func LSEStorm(at time.Duration, cfg StormConfig) Event {
	return Event{At: at, Name: fmt.Sprintf("lse-storm p=%v", cfg.PStart), Do: func(ctx context.Context, env *Env, led *Ledger) error {
		b1, alpha, maxLen := cfg.B1, cfg.Alpha, cfg.MaxLen
		if b1 == 0 {
			b1 = 0.9
		}
		if alpha == 0 {
			alpha = 1.5
		}
		led.mu.Lock()
		defer led.mu.Unlock()
		if maxLen == 0 {
			maxLen = led.r
		}
		dist, err := failures.NewBurstDist(b1, alpha, maxLen)
		if err != nil {
			return err
		}
		devs := cfg.Devs
		if len(devs) == 0 {
			for dev := 0; dev < led.n; dev++ {
				devs = append(devs, dev)
			}
		} else {
			devs = append([]int(nil), devs...)
			sort.Ints(devs)
		}
		dataSectors := led.stripes * led.r
		for _, dev := range devs {
			if led.downDevs[dev] {
				continue
			}
			// The draw happens whether or not the bursts land: gating must
			// not perturb the RNG stream, or one skipped burst would
			// reshuffle every later storm.
			for _, b := range failures.ChunkFailures(led.rng, dataSectors, cfg.PStart, dist) {
				if led.burstCoveredLocked(dev, b.Start, b.Len) {
					if err := env.Store.InjectBurst(dev, b.Start, b.Len); err != nil {
						return err
					}
					led.recordInjectedLocked(dev, b.Start, b.Len)
					led.logf("t=%v storm dev=%d start=%d len=%d", at, dev, b.Start, b.Len)
				} else {
					led.logf("t=%v storm-skip dev=%d start=%d len=%d (coverage)", at, dev, b.Start, b.Len)
				}
			}
		}
		return nil
	}}
}

// burstCoveredLocked reports whether injecting the burst keeps every
// stripe it touches recoverable given the planned-lost state.
func (l *Ledger) burstCoveredLocked(dev, start, length int) bool {
	for stripe := start / l.r; stripe*l.r < start+length && stripe < l.stripes; stripe++ {
		cells := l.plannedCellsLocked(stripe)
		seen := map[core.Cell]bool{}
		for _, c := range cells {
			seen[c] = true
		}
		for row := 0; row < l.r; row++ {
			sec := stripe*l.r + row
			if sec >= start && sec < start+length {
				c := core.Cell{Col: dev, Row: row}
				if !seen[c] {
					cells = append(cells, c)
				}
			}
		}
		ok, err := l.code.CanRecover(cells)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// StartScrubber starts the store's paced background scrubber.
func StartScrubber(at time.Duration, interval time.Duration, stripesPerSec float64) Event {
	return Event{At: at, Name: "scrubber-start", Do: func(ctx context.Context, env *Env, led *Ledger) error {
		led.mu.Lock()
		led.logf("t=%v scrubber-start interval=%v rate=%v", at, interval, stripesPerSec)
		led.mu.Unlock()
		return env.Store.StartScrubber(store.ScrubberOptions{Interval: interval, StripesPerSec: stripesPerSec})
	}}
}

// StopScrubber stops the background scrubber.
func StopScrubber(at time.Duration) Event {
	return Event{At: at, Name: "scrubber-stop", Do: func(ctx context.Context, env *Env, led *Ledger) error {
		led.mu.Lock()
		led.logf("t=%v scrubber-stop", at)
		led.mu.Unlock()
		env.Store.StopScrubber()
		return nil
	}}
}

// StallColumn makes the flaky device behind a cluster column stall for
// dur: probes fail (heartbeat misses) and every data call pays perCall
// extra — the grey-failure regime hedged reads exist for. A stall
// shorter than FailAfter sweeps is a flap the detector must ride out;
// a longer one is a real death it must declare.
func StallColumn(at time.Duration, col int, dur, perCall time.Duration) Event {
	return Event{At: at, Name: fmt.Sprintf("stall col=%d", col), Do: func(ctx context.Context, env *Env, led *Ledger) error {
		f := env.flakyCol(col)
		if f == nil {
			return fmt.Errorf("column %d has no flaky device (store env, or dead column)", col)
		}
		f.StallFor(dur, perCall)
		led.mu.Lock()
		led.logf("t=%v stall col=%d dur=%v percall=%v", at, col, dur, perCall)
		led.mu.Unlock()
		return nil
	}}
}

// AwaitFailover polls until the column is alive again on a spare (the
// monitor has declared it dead and completed the swap), bounded by
// within.
func AwaitFailover(at time.Duration, col int, within time.Duration) Event {
	return Event{At: at, Name: fmt.Sprintf("await-failover col=%d", col), Do: func(ctx context.Context, env *Env, led *Ledger) error {
		if env.Volume == nil {
			return fmt.Errorf("await-failover needs a cluster env")
		}
		deadline := time.Now().Add(within)
		for {
			if env.Volume.Stats().Failovers > 0 {
				if h := env.Volume.Health(); col < len(h) && h[col].Alive {
					led.mu.Lock()
					led.logf("t=%v await-failover col=%d", at, col)
					led.mu.Unlock()
					return nil
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("column %d not failed over within %v", col, within)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
	}}
}
