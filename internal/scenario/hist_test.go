package scenario

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketOfMonotone checks the bucket mapping is monotone and every
// bucket index stays in range across the value spectrum.
func TestBucketOfMonotone(t *testing.T) {
	prev := -1
	for _, us := range []uint64{0, 1, 5, 63, 64, 65, 127, 128, 1000, 4096, 65535, 1 << 20, 1 << 32, 1 << 50, math.MaxUint64 / 2} {
		idx := bucketOf(us)
		if idx < 0 || idx >= bucketLen {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", us, idx, bucketLen)
		}
		if idx < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d: not monotone", us, idx, prev)
		}
		prev = idx
	}
}

// TestBucketBoundsContainValue checks every value falls strictly below
// its bucket's upper bound, and within ~3% of it above the linear range
// (the log-linear error bound).
func TestBucketBoundsContainValue(t *testing.T) {
	for us := uint64(0); us < 10000; us++ {
		idx := bucketOf(us)
		high := bucketHigh(idx)
		if float64(us) >= high {
			t.Fatalf("value %d ≥ its bucket's upper bound %v (bucket %d)", us, high, idx)
		}
		if us >= subCount && high > float64(us)*(1+2.0/subCount)+1 {
			t.Fatalf("value %d quantized to %v: error beyond 2/subCount bound", us, high)
		}
	}
}

// TestLinearBucketsExact checks values below subCount are recorded
// exactly: one bucket per integer microsecond.
func TestLinearBucketsExact(t *testing.T) {
	for us := uint64(0); us < subCount; us++ {
		if got := bucketOf(us); got != int(us) {
			t.Fatalf("bucketOf(%d) = %d, want exact linear bucket", us, got)
		}
	}
}

// TestQuantileKnownDistribution records a known population and checks
// the quantiles land within the quantization bound.
func TestQuantileKnownDistribution(t *testing.T) {
	var h Histogram
	// 1000 samples: 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	checks := []struct {
		q    float64
		want float64
	}{{0.5, 500}, {0.99, 990}, {0.999, 999}, {1.0, 1000}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want || got > c.want*(1+2.0/subCount)+1 {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", c.q, got, c.want, c.want*(1+2.0/subCount)+1)
		}
	}
	// The quantile never exceeds the observed max.
	if got, max := h.Quantile(0.999), float64(1000); got > max {
		t.Errorf("Quantile(0.999) = %v exceeds max sample %v", got, max)
	}
}

// TestQuantileEmpty checks zero samples report zero.
func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	p := h.Percentiles()
	if p.Count != 0 || p.P50us != 0 || p.MeanUS != 0 {
		t.Fatalf("empty Percentiles = %+v, want zeros", p)
	}
}

// TestPercentilesMeanMax checks the mean and max fields.
func TestPercentilesMeanMax(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Microsecond)
	h.Record(300 * time.Microsecond)
	p := h.Percentiles()
	if p.Count != 2 {
		t.Fatalf("Count = %d, want 2", p.Count)
	}
	if p.MeanUS != 200 {
		t.Errorf("MeanUS = %v, want 200", p.MeanUS)
	}
	if p.MaxUS != 300 {
		t.Errorf("MaxUS = %v, want 300", p.MaxUS)
	}
}

// TestHistogramConcurrentRecord hammers Record from many goroutines and
// checks no samples are lost (the lock-free contract).
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if got := h.Percentiles().MaxUS; got != goroutines*per-1 {
		t.Fatalf("MaxUS = %v, want %d", got, goroutines*per-1)
	}
}

// TestRecordNegativeClamps checks a negative duration lands in bucket 0
// rather than panicking on unsigned conversion.
func TestRecordNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if got := h.Quantile(0.5); got > 1 {
		t.Fatalf("Quantile after negative record = %v, want ≤ 1", got)
	}
}
