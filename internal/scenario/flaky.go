package scenario

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"stair/internal/store"
)

// FlakyDevice wraps a device with a stall switch: while stalled, every
// liveness probe fails and every data call pays a fixed extra delay.
// That is the grey-failure shape the cluster's failure detector and
// hedged reads are designed around — the device is not dead (I/O still
// completes, slowly), but probes time out. It implements the cluster
// Pinger contract and forwards the fault plane, so it can stand in for
// a fleet device under store- and cluster-level scenarios alike.
type FlakyDevice struct {
	inner store.Device

	mu         sync.Mutex
	stallUntil time.Time
	perCall    time.Duration
}

// NewFlakyDevice wraps inner.
func NewFlakyDevice(inner store.Device) *FlakyDevice {
	return &FlakyDevice{inner: inner}
}

// StallFor makes the device stall for dur starting now: probes fail
// and each data call is delayed by perCall.
func (f *FlakyDevice) StallFor(dur, perCall time.Duration) {
	f.mu.Lock()
	f.stallUntil = time.Now().Add(dur)
	f.perCall = perCall
	f.mu.Unlock()
}

// stalled reports the current stall state and the per-call delay.
func (f *FlakyDevice) stalled() (bool, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if time.Now().Before(f.stallUntil) {
		return true, f.perCall
	}
	return false, 0
}

// Ping implements the cluster liveness probe: authoritative failure
// while stalled, healthy otherwise.
func (f *FlakyDevice) Ping(ctx context.Context) error {
	if s, _ := f.stalled(); s {
		return errors.New("scenario: device stalled")
	}
	return ctx.Err()
}

// pause charges the stall delay, honoring cancellation.
func (f *FlakyDevice) pause(ctx context.Context) error {
	s, d := f.stalled()
	if !s || d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Sectors returns the wrapped device's capacity.
func (f *FlakyDevice) Sectors() int { return f.inner.Sectors() }

// SectorSize returns the wrapped device's sector size.
func (f *FlakyDevice) SectorSize() int { return f.inner.SectorSize() }

// ReadSectors pays the stall delay, then forwards.
func (f *FlakyDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if err := f.pause(ctx); err != nil {
		return err
	}
	return f.inner.ReadSectors(ctx, start, bufs)
}

// WriteSectors pays the stall delay, then forwards.
func (f *FlakyDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if err := f.pause(ctx); err != nil {
		return err
	}
	return f.inner.WriteSectors(ctx, start, data)
}

// Sync pays the stall delay, then forwards the durability barrier.
func (f *FlakyDevice) Sync(ctx context.Context) error {
	if err := f.pause(ctx); err != nil {
		return err
	}
	return store.SyncDevice(ctx, f.inner)
}

// Close closes the wrapped device.
func (f *FlakyDevice) Close() error { return f.inner.Close() }

func (f *FlakyDevice) faultInner() (store.FaultDevice, error) {
	if fd, ok := f.inner.(store.FaultDevice); ok {
		return fd, nil
	}
	return nil, fmt.Errorf("scenario: wrapped device %T does not support fault injection", f.inner)
}

// Fail forwards to the wrapped device's fault plane.
func (f *FlakyDevice) Fail() error {
	fd, err := f.faultInner()
	if err != nil {
		return err
	}
	return fd.Fail()
}

// Failed reports the wrapped device's failure state.
func (f *FlakyDevice) Failed() bool {
	fd, err := f.faultInner()
	if err != nil {
		return false
	}
	return fd.Failed()
}

// Replace forwards to the wrapped device's fault plane.
func (f *FlakyDevice) Replace() error {
	fd, err := f.faultInner()
	if err != nil {
		return err
	}
	return fd.Replace()
}

// InjectSectorError forwards to the wrapped device's fault plane.
func (f *FlakyDevice) InjectSectorError(idx int) error {
	fd, err := f.faultInner()
	if err != nil {
		return err
	}
	return fd.InjectSectorError(idx)
}

// BadSectors reports the wrapped device's latent-error count.
func (f *FlakyDevice) BadSectors() int {
	fd, err := f.faultInner()
	if err != nil {
		return 0
	}
	return fd.BadSectors()
}
