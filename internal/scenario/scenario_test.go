package scenario

import (
	"context"
	"strings"
	"testing"
	"time"

	"stair/internal/store"
)

// runStoreScenario builds a fresh store env, runs the spec, and fails
// the test on harness errors or invariant violations.
func runStoreScenario(t *testing.T, spec Spec) *Result {
	t.Helper()
	env, err := NewStoreEnv(EnvOptions{Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	PrepareSpec(env, &spec)
	res, err := Run(context.Background(), env, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	return res
}

// TestShelfOutageScenario runs the whole-shelf outage (m simultaneous
// device deaths plus an LSE drizzle on the survivors) and demands a
// clean end state.
func TestShelfOutageScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	res := runStoreScenario(t, ShelfOutageSpec(1))
	if res.Load.Ops == 0 {
		t.Fatal("no load ran")
	}
	if res.StoreStats.DegradedReads == 0 {
		t.Error("no degraded reads during a two-device outage — load was not concurrent with the failure")
	}
}

// TestLSEStormRebuildScenario runs the paper's headline correlated
// mode: storms striking survivors while a replacement rebuilds.
func TestLSEStormRebuildScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	res := runStoreScenario(t, LSEStormRebuildSpec(2))
	stormLines := 0
	for _, line := range res.EventLog {
		if strings.Contains(line, "storm") {
			stormLines++
		}
	}
	if stormLines == 0 {
		t.Error("no storm bursts were even drawn")
	}
	if res.InjectedSectors == 0 {
		t.Error("storms injected nothing — the coverage gate is rejecting everything")
	}
}

// TestScrubVsFailingScenario races the paced scrubber against a
// progressively failing device that finally dies.
func TestScrubVsFailingScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	res := runStoreScenario(t, ScrubVsFailingSpec(3))
	if res.StoreStats.ScrubbedStripes == 0 {
		t.Error("the background scrubber never swept a stripe")
	}
}

// TestHeartbeatFlapScenario runs the grey-failure scenario against a
// cluster env: the detector must ride out two flaps, declare the third
// (long) stall dead, and fail over to the spare — with hedged reads
// absorbing the stall latency throughout.
func TestHeartbeatFlapScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	spec := HeartbeatFlapSpec(4)
	env, err := NewClusterEnv(EnvOptions{Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	PrepareSpec(env, &spec)
	res, err := Run(context.Background(), env, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	cs := res.ClusterStats
	if cs == nil {
		t.Fatal("cluster scenario reported no cluster stats")
	}
	if cs.Deaths == 0 {
		t.Error("the long stall was never declared dead")
	}
	if cs.Failovers == 0 {
		t.Error("no failover to the spare happened")
	}
	if cs.Rebuilds == 0 {
		t.Error("the swapped-in spare was never rebuilt")
	}
	if cs.HedgesLaunched == 0 {
		t.Error("no hedged reads launched during the stalls")
	}
	if cs.DeadColumns != 0 {
		t.Errorf("%d columns still dead at end", cs.DeadColumns)
	}
	if cs.SparesLeft != 0 {
		t.Errorf("%d spares left, want 0 (one death, one spare)", cs.SparesLeft)
	}
	if cs.MissedHeartbeats == 0 {
		t.Error("the stalls never cost a heartbeat")
	}
}

// TestScenarioDeterministicFingerprint runs the same seeded scenario
// twice on fresh envs and demands byte-identical reproduction of the
// failure process — same fingerprint, same event log, same injected
// count — while a different seed diverges.
func TestScenarioDeterministicFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	a := runStoreScenario(t, LSEStormRebuildSpec(99))
	b := runStoreScenario(t, LSEStormRebuildSpec(99))
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same seed, different fingerprints:\n  %s\n  %s", a.Fingerprint, b.Fingerprint)
	}
	if len(a.EventLog) != len(b.EventLog) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a.EventLog), len(b.EventLog))
	}
	for i := range a.EventLog {
		if a.EventLog[i] != b.EventLog[i] {
			t.Fatalf("event log line %d differs:\n  %s\n  %s", i, a.EventLog[i], b.EventLog[i])
		}
	}
	if a.InjectedSectors != b.InjectedSectors {
		t.Errorf("injected %d vs %d sectors across identical runs", a.InjectedSectors, b.InjectedSectors)
	}
	c := runStoreScenario(t, LSEStormRebuildSpec(100))
	if c.Fingerprint == a.Fingerprint {
		t.Error("different seeds produced the same fingerprint")
	}
}

// TestScenarioAccountingBalance checks the repair ledger books balance
// on a quiescent store: every gated injected sector is found by the
// scrub (SectorsLost), repaired exactly once (RepairedSectors), and
// gone afterwards (TotalBadSectors, clean second pass).
func TestScenarioAccountingBalance(t *testing.T) {
	ctx := context.Background()
	env, err := NewStoreEnv(EnvOptions{
		Seed: 5,
		// A near-zero deterministic profile: this test wants bookkeeping,
		// not timing.
		Profile: fastProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	buf := make([]byte, env.Target.BlockSize())
	for b := 0; b < env.Target.Blocks(); b++ {
		stampPayload(buf, b, 0)
		if err := env.Target.WriteBlock(ctx, b, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Target.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	led := newLedger(env, 5)
	storm := LSEStorm(0, StormConfig{PStart: 0.05})
	if err := storm.Do(ctx, env, led); err != nil {
		t.Fatal(err)
	}
	injected := led.injectedCount()
	if injected == 0 {
		t.Fatal("the storm injected nothing; raise PStart")
	}
	if got := env.Store.TotalBadSectors(); got != injected {
		t.Fatalf("TotalBadSectors = %d after injection, want %d", got, injected)
	}

	rep, err := env.Target.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SectorsLost != injected {
		t.Errorf("scrub found %d lost sectors, want the %d injected", rep.SectorsLost, injected)
	}
	env.Store.Quiesce()

	stats := env.Store.Stats()
	if stats.RepairedSectors != uint64(injected) {
		t.Errorf("RepairedSectors = %d, want %d (each injected sector repaired exactly once)", stats.RepairedSectors, injected)
	}
	if got := env.Store.TotalBadSectors(); got != 0 {
		t.Errorf("TotalBadSectors = %d after repair, want 0", got)
	}
	rep2, err := env.Target.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.StripesDamaged != 0 || rep2.SectorsLost != 0 {
		t.Errorf("second scrub not clean: %+v", rep2)
	}
	if stats.ChecksumMismatches != 0 {
		t.Errorf("%d checksum false alarms", stats.ChecksumMismatches)
	}
}

// TestStormCoverageGateHoldsBack checks the ledger refuses bursts that
// would exceed coverage: with both parity budgets already spent on
// planned-down devices, a dense storm must skip everything that lands
// on an already-damaged stripe's remaining columns beyond the e-vector.
func TestStormCoverageGateHoldsBack(t *testing.T) {
	ctx := context.Background()
	env, err := NewStoreEnv(EnvOptions{Seed: 6, Profile: fastProfile()})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	led := newLedger(env, 6)
	// Two planned-down devices exhaust m; e=(1,2) still absorbs a little.
	if err := FailDevice(0, 0).Do(ctx, env, led); err != nil {
		t.Fatal(err)
	}
	if err := FailDevice(0, 1).Do(ctx, env, led); err != nil {
		t.Fatal(err)
	}
	if err := LSEStorm(0, StormConfig{PStart: 0.5}).Do(ctx, env, led); err != nil {
		t.Fatal(err)
	}
	skips := 0
	for _, line := range led.lines() {
		if strings.Contains(line, "storm-skip") {
			skips++
		}
	}
	if skips == 0 {
		t.Fatal("a dense storm on a doubly-degraded array skipped nothing — the coverage gate is not gating")
	}
	// And what *was* injected must still be recoverable: scrub + quiesce
	// must clear every bad sector without marking anything unrecoverable.
	if err := env.Store.ReplaceDevice(0); err != nil {
		t.Fatal(err)
	}
	if err := env.Store.ReplaceDevice(1); err != nil {
		t.Fatal(err)
	}
	if err := env.Store.RebuildDevice(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := env.Store.RebuildDevice(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Target.Scrub(ctx); err != nil {
		t.Fatal(err)
	}
	env.Store.Quiesce()
	if un := env.Store.UnrecoverableStripes(); len(un) > 0 {
		t.Fatalf("gated storm still produced unrecoverable stripes: %v", un)
	}
	if bad := env.Store.TotalBadSectors(); bad != 0 {
		t.Fatalf("%d bad sectors remain", bad)
	}
}

// fastProfile is the near-zero profile bookkeeping tests use:
// deterministic, effectively instant, but non-zero so withDefaults
// keeps it.
func fastProfile() store.LatencyProfile {
	return store.LatencyProfile{Latency: time.Microsecond}
}
