package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"stair/internal/cluster"
	"stair/internal/core"
	"stair/internal/store"
)

// Target is the block surface a scenario drives. Both *store.Store and
// *cluster.Volume satisfy it directly.
type Target interface {
	Blocks() int
	BlockSize() int
	ReadBlock(ctx context.Context, b int) ([]byte, error)
	WriteBlock(ctx context.Context, b int, data []byte) error
	Flush(ctx context.Context) error
	Scrub(ctx context.Context) (store.ScrubReport, error)
}

// Env is a scenario's system under test: the block target, the
// underlying store (always present — for a cluster env it is the
// volume's wrapped store, whose fault plane reaches the dialled
// devices through the columns), the volume when the env is a cluster,
// and the flaky device handles the heartbeat-flap events stall.
type Env struct {
	Target Target
	Store  *store.Store
	Volume *cluster.Volume
	Code   *core.Code

	flaky   map[string]*FlakyDevice
	closers []func() error
}

// Close tears the env down (volume/store first, then anything else the
// builder registered).
func (e *Env) Close() error {
	var first error
	for i := len(e.closers) - 1; i >= 0; i-- {
		if err := e.closers[i](); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flakyCol resolves the FlakyDevice currently serving a column (by the
// column's placed server), or nil when the env has no flaky fleet.
func (e *Env) flakyCol(col int) *FlakyDevice {
	if e.Volume == nil || e.flaky == nil {
		return nil
	}
	placed := e.Volume.Placement()
	if col < 0 || col >= len(placed) {
		return nil
	}
	return e.flaky[placed[col].Name]
}

// Spec is one composable scenario: a trace, the client concurrency
// that replays it, and the correlated-failure events scheduled against
// the load.
type Spec struct {
	Name    string
	Seed    int64
	Trace   TraceSpec
	Clients int
	Events  []Event
}

// Result is one scenario run's full outcome.
type Result struct {
	Name string
	// Load holds the per-op-class latency rows and error counts.
	Load LoadResult
	// EventLog is the deterministic injection record: one line per
	// event action, including every accepted and every coverage-skipped
	// burst. It feeds the fingerprint.
	EventLog []string
	// InjectedSectors counts latent sector errors the events injected.
	InjectedSectors int
	// Fingerprint is a SHA-256 over the generated trace and the event
	// log — the byte-identical-reproduction check for a given seed.
	Fingerprint string
	// StoreStats/ClusterStats snapshot the counters after settle.
	StoreStats   store.Stats
	ClusterStats *cluster.Stats
	// FinalScrub is the last settle scrub pass (clean on success).
	FinalScrub store.ScrubReport
	// SettleScrubs counts scrub passes settle needed to reach (or give
	// up reaching) a clean sweep.
	SettleScrubs int
	// Violations lists every end-state invariant the run broke; empty
	// means the scenario completed clean.
	Violations []string
}

// maxSettleScrubs bounds the settle phase's scrub-repair convergence
// loop. Each pass feeds damage to the repair queue and Quiesce drains
// it, so two passes normally suffice (find+repair, verify); the slack
// covers repair retries on transiently unwritable devices.
const maxSettleScrubs = 6

// Run executes one scenario: generate the trace, replay it under the
// scheduled failure events, then settle (flush, await rebuilds,
// drain repairs, scrub until clean) and audit the end state. The
// returned Result carries any invariant violations rather than an
// error; the error covers harness-level failures (bad spec, cancelled
// ctx, an event that could not execute).
func Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	trace, err := GenTrace(spec.Trace)
	if err != nil {
		return nil, err
	}
	led := newLedger(env, spec.Seed)

	evErrCh := make(chan error, 1)
	evCtx, evCancel := context.WithCancel(ctx)
	defer evCancel()
	go func() { evErrCh <- runEvents(evCtx, env, led, spec.Events) }()

	res := &Result{Name: spec.Name}
	res.Load, err = RunLoad(ctx, env.Target, trace, spec.Clients)
	if err != nil {
		evCancel()
		<-evErrCh
		return nil, err
	}
	if evErr := <-evErrCh; evErr != nil {
		return nil, evErr
	}

	if err := settle(ctx, env, res); err != nil {
		return nil, err
	}

	res.EventLog = led.lines()
	res.InjectedSectors = led.injectedCount()
	res.Fingerprint = fingerprint(spec, trace, res.EventLog)
	res.StoreStats = env.Store.Stats()
	if env.Volume != nil {
		cs := env.Volume.Stats()
		res.ClusterStats = &cs
	}
	res.Violations = checkClean(env, res)
	return res, nil
}

// runEvents fires the spec's events at their offsets, in order. An
// event error aborts the schedule (and the run).
func runEvents(ctx context.Context, env *Env, led *Ledger, events []Event) error {
	if len(events) == 0 {
		return nil
	}
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	begin := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	for _, ev := range sorted {
		if wait := time.Until(begin.Add(ev.At)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		}
		if err := ev.Do(ctx, env, led); err != nil {
			return fmt.Errorf("scenario: event %q at %v: %w", ev.Name, ev.At, err)
		}
	}
	return nil
}

// settle drives the run to a quiescent end state: drain buffered
// writes, wait out background rebuilds, then alternate scrub passes
// with repair-queue quiesce until a pass finds nothing (or the bounded
// attempts run out — the residue then shows up in the audit).
func settle(ctx context.Context, env *Env, res *Result) error {
	if err := env.Target.Flush(ctx); err != nil {
		return fmt.Errorf("scenario: settle flush: %w", err)
	}
	if env.Volume != nil {
		env.Volume.WaitRebuilds()
	}
	env.Store.StopScrubber()
	env.Store.Quiesce()
	for pass := 0; pass < maxSettleScrubs; pass++ {
		rep, err := env.Target.Scrub(ctx)
		if err != nil {
			return fmt.Errorf("scenario: settle scrub: %w", err)
		}
		env.Store.Quiesce()
		res.FinalScrub = rep
		res.SettleScrubs = pass + 1
		if rep.StripesDamaged == 0 && rep.StripesInconsistent == 0 && rep.RecordsRefreshed == 0 {
			return nil
		}
	}
	return nil
}

// checkClean audits the end state. The scenarios inject only fail-stop
// damage (device failures, latent sector errors), all of it gated to
// stay inside the code's coverage — so a correct system ends with
// nothing unrecoverable, nothing still lost, and not one checksum
// mismatch (the integrity layer's false-alarm gate: with no silent
// corruption injected, every mismatch is a checksum-layer lie).
func checkClean(env *Env, res *Result) []string {
	var v []string
	if un := env.Store.UnrecoverableStripes(); len(un) > 0 {
		v = append(v, fmt.Sprintf("%d unrecoverable stripes at end: %v", len(un), un))
	}
	if n := res.StoreStats.ChecksumMismatches; n != 0 {
		v = append(v, fmt.Sprintf("%d checksum mismatches (integrity false alarms: no silent corruption was injected)", n))
	}
	if bad := env.Store.TotalBadSectors(); bad != 0 {
		v = append(v, fmt.Sprintf("%d bad sectors remain after settle", bad))
	}
	if failed := env.Store.FailedDevices(); len(failed) > 0 {
		v = append(v, fmt.Sprintf("devices still failed at end: %v", failed))
	}
	if rep := res.FinalScrub; rep.StripesDamaged != 0 || rep.StripesInconsistent != 0 || rep.StripesUnrecoverable != 0 {
		v = append(v, fmt.Sprintf("final scrub not clean: %+v", rep))
	}
	return v
}

// fingerprint hashes everything deterministic about a run — the spec
// identity, the full generated trace, and the injection event log —
// into the byte-identical-reproduction check. Latency, stats and scrub
// outcomes are deliberately excluded: they vary with scheduling; the
// *failure process* must not.
func fingerprint(spec Spec, trace []TraceOp, eventLog []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%s\n", spec.Name, spec.Seed, spec.Trace.Mix.Name)
	var buf [8 * 4]byte
	for _, op := range trace {
		binary.LittleEndian.PutUint64(buf[0:], uint64(op.At))
		binary.LittleEndian.PutUint64(buf[8:], uint64(len(op.Op)))
		binary.LittleEndian.PutUint64(buf[16:], uint64(op.Block))
		binary.LittleEndian.PutUint64(buf[24:], uint64(op.Blocks))
		h.Write(buf[:])
		h.Write([]byte(op.Op))
	}
	for _, line := range eventLog {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SoakScale reads the STAIR_SOAK environment variable as a duration
// multiplier for the prebuilt scenarios: unset, empty or invalid means
// 1 (the quick CI shape); the nightly soak sets a larger figure to
// stretch the same scenarios over more wall clock and more trace ops.
func SoakScale() float64 {
	raw := os.Getenv("STAIR_SOAK")
	if raw == "" {
		return 1
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil || f < 1 {
		return 1
	}
	return f
}
