package scenario

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"stair/internal/store/mem"
)

// OpClass labels one latency population. Reads and writes are reported
// separately: they take different paths (direct/degraded read vs
// buffered write + flush backpressure) with different tails.
type OpClass string

const (
	// OpRead is a block read (possibly degraded).
	OpRead OpClass = "read"
	// OpWrite is a block write into the stripe buffer.
	OpWrite OpClass = "write"
)

// MixEntry is one op shape in a workload mix: an op class, how many
// consecutive blocks it touches, and its selection weight.
type MixEntry struct {
	Op     OpClass `json:"op"`
	Blocks int     `json:"blocks"`
	Weight int     `json:"weight"`
}

// Mix is a named weighted mixture of op shapes.
type Mix struct {
	Name    string     `json:"name"`
	Entries []MixEntry `json:"entries"`
}

// ReadHeavyMix models a serving tier: 90% single-block reads, 5%
// 4-block scans, 5% single-block writes.
func ReadHeavyMix() Mix {
	return Mix{Name: "read-heavy", Entries: []MixEntry{
		{Op: OpRead, Blocks: 1, Weight: 90},
		{Op: OpRead, Blocks: 4, Weight: 5},
		{Op: OpWrite, Blocks: 1, Weight: 5},
	}}
}

// MixedMix models a balanced OLTP-ish mix: 50% reads, 30% writes, with
// a multi-block share on each side.
func MixedMix() Mix {
	return Mix{Name: "mixed", Entries: []MixEntry{
		{Op: OpRead, Blocks: 1, Weight: 50},
		{Op: OpRead, Blocks: 4, Weight: 10},
		{Op: OpWrite, Blocks: 1, Weight: 30},
		{Op: OpWrite, Blocks: 4, Weight: 10},
	}}
}

// WriteHeavyMix models an ingest tier: 80% writes (a quarter of them
// 8-block sequential runs), 20% reads.
func WriteHeavyMix() Mix {
	return Mix{Name: "write-heavy", Entries: []MixEntry{
		{Op: OpWrite, Blocks: 1, Weight: 60},
		{Op: OpWrite, Blocks: 8, Weight: 20},
		{Op: OpRead, Blocks: 1, Weight: 20},
	}}
}

// TraceOp is one generated operation: its open-loop arrival offset from
// trace start, op class, first block and block count.
type TraceOp struct {
	At     time.Duration
	Op     OpClass
	Block  int
	Blocks int
}

// TraceSpec parameterises a generated trace. The same spec (same seed)
// always generates the identical op sequence — the determinism the
// scenario fingerprints build on.
type TraceSpec struct {
	// Seed drives every random choice (arrivals, mix selection, keys).
	Seed int64
	// Duration is the trace length; Rate the mean arrival rate, ops/s.
	Duration time.Duration
	Rate     float64
	// Mix is the op mixture.
	Mix Mix
	// Blocks is the addressable key space (the target's block count).
	Blocks int
	// ZipfS/ZipfV shape the hot-spot key distribution (rand.NewZipf);
	// ZipfS ≤ 1 selects the defaults (s=1.2, v=1). Zipf ranks are
	// scattered over the block space through a seeded permutation so
	// hot keys do not cluster on the first stripes.
	ZipfS, ZipfV float64
	// BurstEvery/BurstLen/BurstFactor overlay open-loop arrival bursts:
	// within every BurstEvery window, arrivals during the first
	// BurstLen come BurstFactor× faster. Zero BurstEvery disables.
	BurstEvery  time.Duration
	BurstLen    time.Duration
	BurstFactor float64
}

// GenTrace expands a spec into the concrete op sequence, sorted by
// arrival time. Arrivals are exponential (open-loop Poisson) with the
// burst overlay; keys are Zipfian over a seeded permutation of the
// block space.
func GenTrace(spec TraceSpec) ([]TraceOp, error) {
	if spec.Blocks <= 0 {
		return nil, fmt.Errorf("scenario: trace needs a positive block space, got %d", spec.Blocks)
	}
	if spec.Rate <= 0 || spec.Duration <= 0 {
		return nil, fmt.Errorf("scenario: trace needs positive rate and duration (rate=%v dur=%v)", spec.Rate, spec.Duration)
	}
	if len(spec.Mix.Entries) == 0 {
		return nil, fmt.Errorf("scenario: trace mix %q has no entries", spec.Mix.Name)
	}
	s, v := spec.ZipfS, spec.ZipfV
	if s <= 1 {
		s, v = 1.2, 1
	}
	if v < 1 {
		v = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := rand.NewZipf(rng, s, v, uint64(spec.Blocks-1))
	perm := rng.Perm(spec.Blocks)
	totalWeight := 0
	for _, e := range spec.Mix.Entries {
		if e.Blocks <= 0 || e.Blocks > spec.Blocks || e.Weight <= 0 {
			return nil, fmt.Errorf("scenario: bad mix entry %+v for %d blocks", e, spec.Blocks)
		}
		totalWeight += e.Weight
	}

	var ops []TraceOp
	var t time.Duration
	for {
		rate := spec.Rate
		if spec.BurstEvery > 0 && spec.BurstFactor > 1 && t%spec.BurstEvery < spec.BurstLen {
			rate *= spec.BurstFactor
		}
		t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if t >= spec.Duration {
			return ops, nil
		}
		pick := rng.Intn(totalWeight)
		var entry MixEntry
		for _, e := range spec.Mix.Entries {
			if pick < e.Weight {
				entry = e
				break
			}
			pick -= e.Weight
		}
		block := perm[zipf.Uint64()]
		if block+entry.Blocks > spec.Blocks {
			block = spec.Blocks - entry.Blocks
		}
		ops = append(ops, TraceOp{At: t, Op: entry.Op, Block: block, Blocks: entry.Blocks})
	}
}

// LoadResult is one load phase's outcome.
type LoadResult struct {
	// PerClass holds the latency rows, keyed by op class. Latency is
	// measured from each op's *scheduled* arrival (open-loop), so ops
	// queued behind a stalled store pay their queueing delay — the
	// coordinated-omission-free figure.
	PerClass map[OpClass]Percentiles
	// Ops counts operations completed; Errors those that returned an
	// error (errored ops are excluded from the latency rows).
	Ops    uint64
	Errors uint64
	// Wall is the load phase's wall-clock span.
	Wall time.Duration
}

// RunLoad replays a trace against the target with the given client
// concurrency: a dispatcher releases ops at their scheduled times into
// a queue the clients drain. It returns when every op has completed or
// ctx is cancelled (the remaining ops are abandoned).
func RunLoad(ctx context.Context, target Target, trace []TraceOp, clients int) (LoadResult, error) {
	if clients <= 0 {
		clients = 64
	}
	res := LoadResult{PerClass: map[OpClass]Percentiles{}}
	if len(trace) == 0 {
		return res, nil
	}
	hists := map[OpClass]*Histogram{OpRead: {}, OpWrite: {}}
	var ops, errs atomic.Uint64

	type queued struct {
		op    TraceOp
		sched time.Time
	}
	queue := make(chan queued, len(trace))
	begin := time.Now()

	var wg sync.WaitGroup
	blockSize := target.BlockSize()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			buf := make([]byte, blockSize)
			for q := range queue {
				if ctx.Err() != nil {
					continue // drain without executing
				}
				var err error
				for i := 0; i < q.op.Blocks && err == nil; i++ {
					b := q.op.Block + i
					switch q.op.Op {
					case OpRead:
						var out []byte
						out, err = target.ReadBlock(ctx, b)
						if err == nil {
							mem.Release(out)
						}
					case OpWrite:
						stampPayload(buf, b, client)
						err = target.WriteBlock(ctx, b, buf)
					}
				}
				ops.Add(1)
				if err != nil {
					errs.Add(1)
					continue
				}
				hists[q.op.Op].Record(time.Since(q.sched))
			}
		}(c)
	}

	// Open-loop dispatcher: release each op at begin+At regardless of
	// how the previous ones are faring.
	var dispatchErr error
	timer := time.NewTimer(0)
	defer timer.Stop()
dispatch:
	for _, op := range trace {
		sched := begin.Add(op.At)
		if wait := time.Until(sched); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				dispatchErr = ctx.Err()
				break dispatch
			case <-timer.C:
			}
		}
		queue <- queued{op: op, sched: sched}
	}
	close(queue)
	wg.Wait()

	res.Ops = ops.Load()
	res.Errors = errs.Load()
	res.Wall = time.Since(begin)
	for class, h := range hists {
		if h.Count() > 0 {
			res.PerClass[class] = h.Percentiles()
		}
	}
	return res, dispatchErr
}

// stampPayload gives a write buffer deterministic, distinguishable
// content without paying a full-buffer fill per op: an in-place header
// keyed by (block, client). Parity and checksums protect whatever
// bytes are written, so the load path needs distinguishable — not
// verifiable — payloads.
func stampPayload(buf []byte, block, client int) {
	if len(buf) >= 16 {
		binary.LittleEndian.PutUint64(buf[0:], uint64(block)*0x9e3779b97f4a7c15+1)
		binary.LittleEndian.PutUint64(buf[8:], uint64(client)*0xbf58476d1ce4e5b9+1)
	}
}
