package scenario

import (
	"context"
	"os"
	"testing"
	"time"

	"stair/internal/store"
)

// TestLatencyRegressionGuard is the opt-in latency gate, mirroring the
// STAIR_ALLOC_GUARD pattern: skipped by default (latency bounds are
// hostile to loaded laptops and shared runners), enabled in CI with
// STAIR_LAT_GUARD=1. It drives the three standard mixes against a
// healthy store on a *deterministic, spike-free* simulated device
// profile, so the measured tail reflects the store's own queueing and
// encode work — and fails if any class's p99 blows generous bounds
// that a tail regression (lost vectorisation, a lock caught in the
// flush path, accidental serialisation) would break.
func TestLatencyRegressionGuard(t *testing.T) {
	if os.Getenv("STAIR_LAT_GUARD") != "1" {
		t.Skip("set STAIR_LAT_GUARD=1 to enforce latency bounds")
	}
	// Fixed 200µs per call, no jitter, no spikes: the only tail is the
	// system's own. The rate sits well below the store's saturation
	// point for the heaviest mix — an open-loop guard at saturation
	// measures queue growth, not the system, and never converges.
	profile := store.LatencyProfile{Latency: 200 * time.Microsecond}
	bounds := map[OpClass]float64{
		// µs. A healthy run sits well under half of these; the bounds
		// catch order-of-magnitude tail regressions, not noise.
		OpRead:  50_000,
		OpWrite: 150_000,
	}
	for _, mix := range []Mix{ReadHeavyMix(), MixedMix(), WriteHeavyMix()} {
		t.Run(mix.Name, func(t *testing.T) {
			env, err := NewStoreEnv(EnvOptions{Seed: 21, Profile: profile, MaxDirtyStripes: 24})
			if err != nil {
				t.Fatal(err)
			}
			defer env.Close()
			spec := Spec{
				Name:    "latency-guard-" + mix.Name,
				Seed:    21,
				Trace:   BaseTrace(21, mix, 150, 800*time.Millisecond),
				Clients: 64,
			}
			PrepareSpec(env, &spec)
			res, err := Run(context.Background(), env, spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if res.Load.Errors != 0 {
				t.Errorf("%d errored ops on a healthy store", res.Load.Errors)
			}
			for class, bound := range bounds {
				p, ok := res.Load.PerClass[class]
				if !ok {
					continue // write-heavy read row etc. always exists, but be safe
				}
				t.Logf("%s/%s: count=%d p50=%.0fµs p99=%.0fµs p999=%.0fµs",
					mix.Name, class, p.Count, p.P50us, p.P99us, p.P999us)
				if p.P99us > bound {
					t.Errorf("%s p99 = %.0fµs exceeds the %0.fµs bound", class, p.P99us, bound)
				}
			}
		})
	}
}
