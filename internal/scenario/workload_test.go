package scenario

import (
	"context"
	"reflect"
	"testing"
	"time"

	"stair/internal/store"
)

func testTraceSpec(seed int64) TraceSpec {
	return TraceSpec{
		Seed:        seed,
		Duration:    500 * time.Millisecond,
		Rate:        2000,
		Mix:         MixedMix(),
		Blocks:      144,
		BurstEvery:  100 * time.Millisecond,
		BurstLen:    30 * time.Millisecond,
		BurstFactor: 3,
	}
}

// TestGenTraceDeterministic checks the same spec always expands to the
// byte-identical op sequence — the property the scenario fingerprints
// build on.
func TestGenTraceDeterministic(t *testing.T) {
	a, err := GenTrace(testTraceSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenTrace(testTraceSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, err := GenTrace(testTraceSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestGenTraceProperties checks structural invariants: sorted arrivals
// within the duration, ops inside the block space, only mix shapes.
func TestGenTraceProperties(t *testing.T) {
	spec := testTraceSpec(7)
	trace, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	shapes := map[MixEntry]bool{}
	for _, e := range spec.Mix.Entries {
		shapes[MixEntry{Op: e.Op, Blocks: e.Blocks}] = true
	}
	var prev time.Duration
	for i, op := range trace {
		if op.At < prev {
			t.Fatalf("op %d at %v before previous %v: not sorted", i, op.At, prev)
		}
		prev = op.At
		if op.At >= spec.Duration {
			t.Fatalf("op %d at %v beyond duration %v", i, op.At, spec.Duration)
		}
		if op.Block < 0 || op.Block+op.Blocks > spec.Blocks {
			t.Fatalf("op %d spans [%d,%d) outside %d blocks", i, op.Block, op.Block+op.Blocks, spec.Blocks)
		}
		if !shapes[MixEntry{Op: op.Op, Blocks: op.Blocks}] {
			t.Fatalf("op %d shape (%s,%d) not in mix", i, op.Op, op.Blocks)
		}
	}
	// Rate sanity: 2000 ops/s over 0.5 s with burst overlay ≥ 1000
	// expected arrivals; allow a wide band.
	if len(trace) < 400 || len(trace) > 4000 {
		t.Fatalf("trace has %d ops, want around 1000–1500", len(trace))
	}
}

// TestGenTraceZipfSkew checks the keyed hot-spot: the most popular
// block should soak up far more than a uniform share.
func TestGenTraceZipfSkew(t *testing.T) {
	spec := testTraceSpec(11)
	spec.Duration = 2 * time.Second
	trace, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, op := range trace {
		counts[op.Block]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	uniform := len(trace) / spec.Blocks
	if top < 4*uniform {
		t.Fatalf("hottest block has %d ops vs uniform share %d: no Zipf skew", top, uniform)
	}
}

// TestGenTraceBurstOverlay checks arrivals inside burst windows come
// denser than outside.
func TestGenTraceBurstOverlay(t *testing.T) {
	spec := testTraceSpec(13)
	spec.Duration = 2 * time.Second
	trace, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	var inBurst, outBurst int
	for _, op := range trace {
		if op.At%spec.BurstEvery < spec.BurstLen {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Burst windows are 30% of time at 3× rate: expect the in-window
	// arrival *density* to be ≳2× the out-window density.
	inDensity := float64(inBurst) / float64(spec.BurstLen)
	outDensity := float64(outBurst) / float64(spec.BurstEvery-spec.BurstLen)
	if inDensity < 2*outDensity {
		t.Fatalf("burst density %v not elevated over base %v", inDensity, outDensity)
	}
}

// TestGenTraceRejectsBadSpecs checks the validation paths.
func TestGenTraceRejectsBadSpecs(t *testing.T) {
	bad := []func(*TraceSpec){
		func(s *TraceSpec) { s.Blocks = 0 },
		func(s *TraceSpec) { s.Rate = 0 },
		func(s *TraceSpec) { s.Duration = 0 },
		func(s *TraceSpec) { s.Mix.Entries = nil },
		func(s *TraceSpec) { s.Mix.Entries[0].Blocks = 0 },
		func(s *TraceSpec) { s.Mix.Entries[0].Weight = 0 },
		func(s *TraceSpec) { s.Mix.Entries[0].Blocks = s.Blocks + 1 },
	}
	for i, mutate := range bad {
		spec := testTraceSpec(1)
		mutate(&spec)
		if _, err := GenTrace(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestRunLoadCompletesTrace checks every generated op executes and is
// accounted, with latency rows for both classes.
func TestRunLoadCompletesTrace(t *testing.T) {
	spec := testTraceSpec(17)
	spec.Duration = 200 * time.Millisecond
	trace, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &memTarget{blocks: spec.Blocks, blockSize: 64}
	res, err := RunLoad(context.Background(), tgt, trace, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != uint64(len(trace)) {
		t.Fatalf("Ops = %d, want %d", res.Ops, len(trace))
	}
	if res.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", res.Errors)
	}
	var recorded uint64
	for class, p := range res.PerClass {
		if p.Count == 0 {
			t.Errorf("class %s has an empty latency row", class)
		}
		if p.P50us <= 0 || p.P99us < p.P50us || p.P999us < p.P99us {
			t.Errorf("class %s percentiles not ordered: %+v", class, p)
		}
		recorded += p.Count
	}
	if recorded != res.Ops {
		t.Fatalf("recorded %d samples across classes, want %d", recorded, res.Ops)
	}
}

// TestRunLoadCancel checks cancellation abandons the remaining trace
// without deadlocking.
func TestRunLoadCancel(t *testing.T) {
	spec := testTraceSpec(19)
	spec.Duration = 5 * time.Second
	trace, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := RunLoad(ctx, &memTarget{blocks: spec.Blocks, blockSize: 64}, trace, 16)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if res.Ops >= uint64(len(trace)) {
		t.Fatalf("all %d ops completed despite cancellation", len(trace))
	}
}

// memTarget is the minimal healthy Target used by load unit tests.
type memTarget struct {
	blocks, blockSize int
}

func (m *memTarget) Blocks() int    { return m.blocks }
func (m *memTarget) BlockSize() int { return m.blockSize }
func (m *memTarget) ReadBlock(ctx context.Context, b int) ([]byte, error) {
	return make([]byte, m.blockSize), nil
}
func (m *memTarget) WriteBlock(ctx context.Context, b int, data []byte) error { return nil }
func (m *memTarget) Flush(ctx context.Context) error                          { return nil }
func (m *memTarget) Scrub(ctx context.Context) (store.ScrubReport, error) {
	return store.ScrubReport{}, nil
}
