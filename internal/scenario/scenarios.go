package scenario

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stair/internal/cluster"
	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/store"
)

// EnvOptions parameterises the prebuilt environments. The zero value
// (plus a seed) selects the standard scenario geometry: a 6×4 STAIR
// code with m=2, e=(1,2), integrity on, spiky latency-shaped memory
// devices.
type EnvOptions struct {
	// Seed derives every device's private latency RNG, so a run's
	// simulated timing is reproducible under -race.
	Seed int64
	// Stripes/SectorSize size the volume; zero selects 24 stripes of
	// 1 KiB sectors (small enough that a full scenario settles in
	// seconds, large enough that stripes outnumber lock shards).
	Stripes    int
	SectorSize int
	// Profile shapes the simulated devices; the zero value selects the
	// default spiky profile (120µs ± 80µs with 3ms spikes on 0.3% of
	// calls). The per-device Seed field is always overridden.
	Profile store.LatencyProfile
	// MaxDirtyStripes bounds the write buffer (flush backpressure);
	// zero selects 8 — tight enough that the failure scenarios exercise
	// writers blocking on the flush pipeline. The latency guard raises
	// it to the stripe count so it measures the write path, not an
	// artificially small buffer.
	MaxDirtyStripes int
}

func (o EnvOptions) withDefaults() EnvOptions {
	if o.Stripes == 0 {
		o.Stripes = 24
	}
	if o.SectorSize == 0 {
		o.SectorSize = 1024
	}
	if o.MaxDirtyStripes == 0 {
		o.MaxDirtyStripes = 8
	}
	if o.Profile == (store.LatencyProfile{}) {
		o.Profile = store.LatencyProfile{
			Latency:   120 * time.Microsecond,
			Jitter:    80 * time.Microsecond,
			Spike:     3 * time.Millisecond,
			SpikeProb: 0.003,
		}
	}
	return o
}

// scenarioCode builds the standard scenario code: n=6, r=4, m=2,
// e=(1,2) — two whole-device failures plus a two-step staircase of
// sector bursts, the smallest geometry exercising every coverage
// regime the scenarios push into.
func scenarioCode() (*core.Code, error) {
	return core.New(core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
}

// NewStoreEnv builds a store-backed env: latency-shaped in-memory
// devices (per-device seeded RNGs), end-to-end integrity on, bounded
// repair queue with two workers, asynchronous flush pipeline.
func NewStoreEnv(opts EnvOptions) (*Env, error) {
	opts = opts.withDefaults()
	code, err := scenarioCode()
	if err != nil {
		return nil, err
	}
	meta := store.IntegrityMetaSectors(opts.Stripes, code.R(), opts.SectorSize)
	devs := make([]store.Device, code.N())
	for col := range devs {
		p := opts.Profile
		p.Seed = opts.Seed*1000003 + int64(col) + 1
		devs[col] = store.NewLatencyDeviceProfile(
			store.NewMemDevice(opts.Stripes*code.R()+meta, opts.SectorSize), p)
	}
	st, err := store.Open(store.Config{
		Code:            code,
		SectorSize:      opts.SectorSize,
		Stripes:         opts.Stripes,
		Devices:         devs,
		MaxDirtyStripes: opts.MaxDirtyStripes,
		RepairWorkers:   2,
		FlushWorkers:    2,
		DegradedCache:   8,
		Integrity:       &store.IntegrityOptions{Epoch: 1},
	})
	if err != nil {
		return nil, err
	}
	return &Env{
		Target:  st,
		Store:   st,
		Code:    code,
		closers: []func() error{st.Close},
	}, nil
}

// NewClusterEnv builds a cluster-backed env: six active columns plus
// one spare, every fleet device a FlakyDevice (stallable, pingable)
// over a latency-shaped memory device, hedged reads on, a fast failure
// detector (40ms sweeps, dead after 5 misses), integrity on.
func NewClusterEnv(opts EnvOptions) (*Env, error) {
	opts = opts.withDefaults()
	code, err := scenarioCode()
	if err != nil {
		return nil, err
	}
	fleet := &cluster.Fleet{}
	for i := 0; i < code.N()+1; i++ {
		fleet.Servers = append(fleet.Servers, cluster.Server{
			Name:  fmt.Sprintf("s%d", i),
			URL:   "local://",
			Spare: i == code.N(),
		})
	}
	meta := store.IntegrityMetaSectors(opts.Stripes, code.R(), opts.SectorSize)
	env := &Env{Code: code, flaky: map[string]*FlakyDevice{}}
	var (
		flakyMu   sync.Mutex
		dialCount atomic.Int64
	)
	v, err := cluster.Open(context.Background(), cluster.Config{
		Fleet:      fleet,
		VolumeName: "scenario",
		Code:       code,
		SectorSize: opts.SectorSize,
		Stripes:    opts.Stripes,
		Dial: func(ctx context.Context, server cluster.Server) (store.Device, error) {
			p := opts.Profile
			p.Seed = opts.Seed*7919 + dialCount.Add(1)
			f := NewFlakyDevice(store.NewLatencyDeviceProfile(
				store.NewMemDevice(opts.Stripes*code.R()+meta, opts.SectorSize), p))
			flakyMu.Lock()
			env.flaky[server.Name] = f
			flakyMu.Unlock()
			return f, nil
		},
		Hedge:           &cluster.HedgeConfig{Percentile: 0.9},
		Monitor:         cluster.MonitorConfig{Interval: 40 * time.Millisecond, Timeout: 20 * time.Millisecond, FailAfter: 5},
		Integrity:       &store.IntegrityOptions{Epoch: 1},
		MaxDirtyStripes: opts.MaxDirtyStripes,
		FlushWorkers:    2,
		RepairWorkers:   2,
	})
	if err != nil {
		return nil, err
	}
	env.Target = v
	env.Store = v.Store()
	env.Volume = v
	env.closers = append(env.closers, v.Close)
	return env, nil
}

// scaled stretches a duration by the STAIR_SOAK multiplier.
func scaled(d time.Duration) time.Duration {
	return time.Duration(float64(d) * SoakScale())
}

// BaseTrace is the common trace shape: open-loop Poisson arrivals with
// 3× bursts in the first 80ms of every 300ms window (dur scaled by
// STAIR_SOAK), Zipfian keys. Blocks is left zero for PrepareSpec to
// bind to the env's block space.
func BaseTrace(seed int64, mix Mix, rate float64, dur time.Duration) TraceSpec {
	return TraceSpec{
		Seed:        seed,
		Duration:    scaled(dur),
		Rate:        rate,
		Mix:         mix,
		BurstEvery:  300 * time.Millisecond,
		BurstLen:    80 * time.Millisecond,
		BurstFactor: 3,
	}
}

// PrepareSpec binds a spec's trace to the env's block space. Call once
// after building the env, before Run.
func PrepareSpec(env *Env, spec *Spec) {
	if spec.Trace.Blocks == 0 {
		spec.Trace.Blocks = env.Target.Blocks()
	}
}

// ShelfOutageSpec is the whole-shelf outage: the two columns sharing a
// backend shelf (devices 0 and 1 — exactly the code's m) die at once
// under load, a gated LSE drizzle lands on the survivors, then both
// shelves are replaced and rebuilt. Every stripe spends the outage at
// the edge of device coverage; the audit demands it all comes back.
func ShelfOutageSpec(seed int64) Spec {
	return Spec{
		Name:    "shelf-outage",
		Seed:    seed,
		Trace:   BaseTrace(seed, MixedMix(), 1500, 1200*time.Millisecond),
		Clients: 256,
		Events: []Event{
			FailDevice(scaled(150*time.Millisecond), 0),
			FailDevice(scaled(150*time.Millisecond), 1),
			LSEStorm(scaled(300*time.Millisecond), StormConfig{PStart: 0.008}),
			ReplaceDevice(scaled(500*time.Millisecond), 0),
			ReplaceDevice(scaled(520*time.Millisecond), 1),
			RebuildDevice(scaled(560*time.Millisecond), 0),
			RebuildDevice(scaled(600*time.Millisecond), 1),
		},
	}
}

// LSEStormRebuildSpec is the paper's headline correlated mode
// (§7.1.2): a device dies, and while its replacement rebuilds, latent-
// sector-error storms strike the surviving devices — the exposure
// window the e-vector of global parities exists for.
func LSEStormRebuildSpec(seed int64) Spec {
	return Spec{
		Name:    "lse-storm-during-rebuild",
		Seed:    seed,
		Trace:   BaseTrace(seed, ReadHeavyMix(), 1800, 1200*time.Millisecond),
		Clients: 256,
		Events: []Event{
			FailDevice(scaled(100*time.Millisecond), 0),
			ReplaceDevice(scaled(250*time.Millisecond), 0),
			RebuildDeviceAsync(scaled(260*time.Millisecond), 0),
			LSEStorm(scaled(300*time.Millisecond), StormConfig{PStart: 0.02}),
			LSEStorm(scaled(420*time.Millisecond), StormConfig{PStart: 0.02}),
			LSEStorm(scaled(540*time.Millisecond), StormConfig{PStart: 0.02}),
			AwaitRebuild(scaled(800*time.Millisecond), 0),
		},
	}
}

// ScrubVsFailingSpec races the paced background scrubber against a
// progressively failing device: the §7.2.2 burst process on device 4
// doubles its intensity step by step (failures.Degrading) until the
// device finally dies outright and is replaced and rebuilt — while the
// scrubber keeps sweeping and feeding the repair queue mid-decay.
func ScrubVsFailingSpec(seed int64) Spec {
	ramp := failures.Degrading{P0: 0.01, Growth: 2}
	return Spec{
		Name:    "scrub-vs-failing-device",
		Seed:    seed,
		Trace:   BaseTrace(seed, WriteHeavyMix(), 1200, 1300*time.Millisecond),
		Clients: 192,
		Events: []Event{
			StartScrubber(scaled(60*time.Millisecond), 120*time.Millisecond, 400),
			LSEStorm(scaled(200*time.Millisecond), StormConfig{PStart: ramp.PAt(0), Devs: []int{4}}),
			LSEStorm(scaled(350*time.Millisecond), StormConfig{PStart: ramp.PAt(1), Devs: []int{4}}),
			LSEStorm(scaled(500*time.Millisecond), StormConfig{PStart: ramp.PAt(2), Devs: []int{4}}),
			FailDevice(scaled(650*time.Millisecond), 4),
			ReplaceDevice(scaled(800*time.Millisecond), 4),
			RebuildDevice(scaled(820*time.Millisecond), 4),
		},
	}
}

// HeartbeatFlapSpec exercises the failure detector against grey
// failure during hedged reads (cluster env only): two short stalls the
// detector must ride out as flaps — hedges absorbing the latency — and
// one long stall it must declare dead, failing over to the spare and
// rebuilding, all under open-loop read load.
func HeartbeatFlapSpec(seed int64) Spec {
	return Spec{
		Name:    "heartbeat-flap",
		Seed:    seed,
		Trace:   BaseTrace(seed, ReadHeavyMix(), 1200, 2400*time.Millisecond),
		Clients: 256,
		Events: []Event{
			StallColumn(scaled(250*time.Millisecond), 2, 120*time.Millisecond, 15*time.Millisecond),
			StallColumn(scaled(600*time.Millisecond), 2, 120*time.Millisecond, 15*time.Millisecond),
			StallColumn(scaled(1000*time.Millisecond), 2, 1500*time.Millisecond, 15*time.Millisecond),
			AwaitFailover(scaled(2300*time.Millisecond), 2, 10*time.Second),
		},
	}
}
