package workload

import (
	"bytes"
	"testing"

	"stair/internal/core"
)

func TestFillStripeDeterministic(t *testing.T) {
	c, err := core.New(core.Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.NewStripe(32)
	b, _ := c.NewStripe(32)
	FillStripe(c, a, 5)
	FillStripe(c, b, 5)
	for i := range a.Cells {
		if !bytes.Equal(a.Cells[i], b.Cells[i]) {
			t.Fatal("same seed produced different stripes")
		}
	}
	d, _ := c.NewStripe(32)
	FillStripe(c, d, 6)
	same := true
	for i := range a.Cells {
		if !bytes.Equal(a.Cells[i], d.Cells[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical stripes")
	}
}

func TestFillStripeLeavesParityZero(t *testing.T) {
	c, err := core.New(core.Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := c.NewStripe(16)
	FillStripe(c, st, 1)
	for _, pc := range c.ParityCells() {
		s := st.Sector(pc.Col, pc.Row)
		for _, b := range s {
			if b != 0 {
				t.Fatalf("parity cell %v touched by FillStripe", pc)
			}
		}
	}
}

func TestFillStripeW4Masked(t *testing.T) {
	c, err := core.New(core.Config{N: 6, R: 4, M: 1, E: []int{1}, W: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := c.NewStripe(64)
	FillStripe(c, st, 2)
	for _, cell := range c.DataCells() {
		for _, b := range st.Sector(cell.Col, cell.Row) {
			if b > 0x0f {
				t.Fatal("w=4 data not masked to nibble range")
			}
		}
	}
}

func TestUpdateStream(t *testing.T) {
	c, err := core.New(core.Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ups := UpdateStream(c, 32, 50, 7)
	if len(ups) != 50 {
		t.Fatalf("got %d updates", len(ups))
	}
	st, _ := c.NewStripe(32)
	FillStripe(c, st, 1)
	if err := c.Encode(st); err != nil {
		t.Fatal(err)
	}
	for i, u := range ups {
		if len(u.Data) != 32 {
			t.Fatalf("update %d has %d bytes", i, len(u.Data))
		}
		if cls, err := c.Class(u.Cell); err != nil || cls != core.ClassData {
			t.Fatalf("update %d targets non-data cell %v", i, u.Cell)
		}
		if err := c.Update(st, u.Cell, u.Data); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	ok, err := c.Verify(st)
	if err != nil || !ok {
		t.Fatalf("stripe fails verification after update stream: ok=%v err=%v", ok, err)
	}
}
