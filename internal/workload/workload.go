// Package workload generates deterministic test and benchmark workloads:
// random stripe payloads and update streams. Centralising the seeding
// keeps experiments reproducible across the harness, benchmarks and
// examples.
package workload

import (
	"math/rand"

	"stair/internal/core"
)

// FillStripe writes seeded random bytes into every data cell of a STAIR
// stripe. Symbols are masked to the field width for w=4 fields.
func FillStripe(c *core.Code, st *core.Stripe, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mask4 := c.Field().W() == 4
	for _, cell := range c.DataCells() {
		s := st.Sector(cell.Col, cell.Row)
		rng.Read(s)
		if mask4 {
			for i := range s {
				s[i] &= 0x0f
			}
		}
	}
}

// FillCells writes seeded random bytes into the given cells of a raw
// [][]byte stripe (col*r+row indexed), for the SD/IDR comparators.
func FillCells(cells [][]byte, r int, dataCells []struct{ Col, Row int }, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, cell := range dataCells {
		rng.Read(cells[cell.Col*r+cell.Row])
	}
}

// Update is one element of an update stream.
type Update struct {
	Cell core.Cell
	Data []byte
}

// UpdateStream returns count single-sector updates over uniformly random
// data cells of the code — the small-write workload of §6.3.
func UpdateStream(c *core.Code, sectorSize, count int, seed int64) []Update {
	rng := rand.New(rand.NewSource(seed))
	cells := c.DataCells()
	out := make([]Update, count)
	for i := range out {
		data := make([]byte, sectorSize)
		rng.Read(data)
		if c.Field().W() == 4 {
			for j := range data {
				data[j] &= 0x0f
			}
		}
		out[i] = Update{Cell: cells[rng.Intn(len(cells))], Data: data}
	}
	return out
}
