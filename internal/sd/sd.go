// Package sd implements a sector-disk (SD) code comparator in the style
// of Plank & Blaum (FAST '13 / ACM TOS '14), the baseline the STAIR paper
// evaluates against (§6).
//
// An SD code for (n, r, m, s) devotes m entire chunks plus s individual
// sectors of a stripe to parity and tolerates the failure of any m chunks
// plus any s additional sectors. Known constructions exist only for
// s ≤ 3 and rely on published searches.
//
// Substitution note (see DESIGN.md): the paper benchmarks Plank's C
// implementation whose coefficients come from those searches. This
// package reproduces the same code shape — per-row parity constraints
// plus s dense global constraints over the whole stripe, encoded by the
// standard method with no parity reuse and decoded by a full linear
// solve — and verifies each constructed instance against its claimed
// coverage on the canonical worst case plus a sample of random failure
// patterns, regenerating the global constraint rows (deterministically
// seeded) if verification fails. This preserves both the computational
// shape and the fault coverage that the paper's comparisons rely on.
package sd

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"stair/internal/gf"
	"stair/internal/matrix"
)

// ErrUnrecoverable reports a failure pattern the code cannot repair.
var ErrUnrecoverable = errors.New("sd: failure pattern is unrecoverable")

// Cell addresses a sector: chunk column Col in [0, N), sector row Row in
// [0, R). The layout matches internal/core's stripes.
type Cell struct {
	Col int
	Row int
}

func (c Cell) String() string { return fmt.Sprintf("(%d,%d)", c.Col, c.Row) }

// Config describes an SD code instance.
type Config struct {
	N int // chunks per stripe
	R int // sectors per chunk
	M int // chunk (device) failures tolerated
	S int // additional sector failures tolerated (construction verified for S ≤ 3)
	W int // Galois field word size; 0 selects 8 or 16 automatically
	// VerifySamples is the number of random failure patterns checked at
	// construction beyond the canonical worst case (default 64), used
	// when the pattern space is too large to enumerate.
	VerifySamples int
	// ExhaustiveLimit caps the pattern count for exhaustive coverage
	// verification (default 200000). Geometries whose full pattern
	// space (m-chunk subsets × s-sector subsets) fits under the limit
	// are verified exhaustively; construction then guarantees the SD
	// property. Larger geometries are sample-verified, matching the
	// search-based nature of published SD constructions.
	ExhaustiveLimit int
}

// Code is a compiled SD code. Immutable and safe for concurrent use.
type Code struct {
	cfg       Config
	n, r      int
	m, s      int
	f         *gf.Field
	exhausted bool // coverage verified exhaustively

	// H is the (m·r+s) × (n·r) parity-check matrix; cell (col,row) maps
	// to variable row*n+col (row-major, matching the SD papers).
	h *matrix.Matrix

	dataCells   []Cell
	parityCells []Cell
	isParity    []bool // indexed row*n+col

	// gen[p] holds the dense coefficients of parity p over data cells:
	// parity[p] = Σ gen[p][d] · data[d] (standard encoding, no reuse).
	gen *matrix.Matrix // (m·r+s) × len(dataCells)

	// dataDeps[d] counts/lists parity cells affected by data cell d.
	dataDeps [][]int
}

// New constructs and verifies an SD code.
func New(cfg Config) (*Code, error) {
	if cfg.N < 1 || cfg.R < 1 {
		return nil, fmt.Errorf("sd: N=%d and R=%d must be ≥ 1", cfg.N, cfg.R)
	}
	if cfg.M < 0 || cfg.M >= cfg.N {
		return nil, fmt.Errorf("sd: M=%d must be in [0, N)", cfg.M)
	}
	if cfg.S < 0 || cfg.S > cfg.R {
		return nil, fmt.Errorf("sd: S=%d must be in [0, R] (globals live in one chunk)", cfg.S)
	}
	if cfg.M+1 > cfg.N && cfg.S > 0 {
		return nil, fmt.Errorf("sd: need a data chunk to host global parities")
	}
	var widths []int
	switch cfg.W {
	case 0:
		// Like the paper (§6.2.1), pick the smallest word size for
		// which a verified construction is found; SD codes frequently
		// need a wider field than STAIR's w=8.
		widths = []int{8, 16}
	case 8, 16:
		widths = []int{cfg.W}
	default:
		return nil, fmt.Errorf("sd: unsupported W=%d", cfg.W)
	}
	if cfg.VerifySamples == 0 {
		cfg.VerifySamples = 64
	}
	if cfg.ExhaustiveLimit == 0 {
		cfg.ExhaustiveLimit = 200000
	}
	for _, w := range widths {
		if cfg.N*cfg.R > 1<<w {
			continue
		}
		c := &Code{cfg: cfg, n: cfg.N, r: cfg.R, m: cfg.M, s: cfg.S, f: gf.Get(w)}
		c.indexCells()
		// Try the Vandermonde-style global rows first (the published
		// construction shape), then salted random rows until the
		// instance verifies. Salt 0 is the unsalted construction.
		attempts := 8
		if w == widths[len(widths)-1] {
			attempts = 50
		}
		for salt := 0; salt < attempts; salt++ {
			if err := c.buildH(salt); err != nil {
				continue
			}
			if err := c.buildGenerator(); err != nil {
				continue
			}
			if c.verify() {
				c.buildDeps()
				return c, nil
			}
		}
	}
	return nil, fmt.Errorf("sd: could not construct a verified instance for %+v", cfg)
}

// Exhaustive reports whether construction verified the full coverage
// (every m-chunk + s-sector pattern) rather than a sample.
func (c *Code) Exhaustive() bool { return c.exhausted }

// W returns the Galois field word size the construction settled on.
func (c *Code) W() int { return c.f.W() }

func (c *Code) indexCells() {
	c.isParity = make([]bool, c.n*c.r)
	// Row parity chunks: the last m columns.
	for col := c.n - c.m; col < c.n; col++ {
		for row := 0; row < c.r; row++ {
			c.isParity[row*c.n+col] = true
			c.parityCells = append(c.parityCells, Cell{Col: col, Row: row})
		}
	}
	// Global parities: the bottom s sectors of the last data chunk.
	gcol := c.n - c.m - 1
	for k := 0; k < c.s; k++ {
		row := c.r - 1 - k
		c.isParity[row*c.n+gcol] = true
		c.parityCells = append(c.parityCells, Cell{Col: gcol, Row: row})
	}
	for row := 0; row < c.r; row++ {
		for col := 0; col < c.n; col++ {
			if !c.isParity[row*c.n+col] {
				c.dataCells = append(c.dataCells, Cell{Col: col, Row: row})
			}
		}
	}
}

// buildH assembles the parity-check matrix: m Reed-Solomon constraints
// per row plus s global constraints. Salt 0 uses Vandermonde-power
// globals (coefficient α^{(m+t)·ℓ} for stripe position ℓ); other salts
// draw seeded random coefficients.
func (c *Code) buildH(salt int) error {
	q := c.m*c.r + c.s
	c.h = matrix.New(c.f, q, c.n*c.r)
	row := 0
	for i := 0; i < c.r; i++ {
		for z := 0; z < c.m; z++ {
			for j := 0; j < c.n; j++ {
				c.h.Set(row, i*c.n+j, c.f.Exp(2, z*j))
			}
			row++
		}
	}
	if salt == 0 {
		for t := 0; t < c.s; t++ {
			for l := 0; l < c.n*c.r; l++ {
				c.h.Set(row, l, c.f.Exp(2, (c.m+t)*l%(c.f.Size()-1)))
			}
			row++
		}
		return nil
	}
	rng := rand.New(rand.NewSource(int64(salt)*7919 + int64(c.n*1000+c.r*100+c.m*10+c.s)))
	for t := 0; t < c.s; t++ {
		for l := 0; l < c.n*c.r; l++ {
			c.h.Set(row, l, uint32(1+rng.Intn(c.f.Size()-1)))
		}
		row++
	}
	return nil
}

func (c *Code) varOf(cell Cell) int { return cell.Row*c.n + cell.Col }

// buildGenerator solves H for the parity positions: with H = [H_D|H_P]
// (columns split by data/parity), parity = (H_P)^{-1}·H_D·data.
func (c *Code) buildGenerator() error {
	q := c.m*c.r + c.s
	pcols := make([]int, q)
	for i, cell := range c.parityCells {
		pcols[i] = c.varOf(cell)
	}
	dcols := make([]int, len(c.dataCells))
	for i, cell := range c.dataCells {
		dcols[i] = c.varOf(cell)
	}
	hp := c.h.SelectCols(pcols)
	hpInv, err := hp.Invert()
	if err != nil {
		return fmt.Errorf("sd: parity submatrix singular: %w", err)
	}
	c.gen = hpInv.Mul(c.h.SelectCols(dcols))
	return nil
}

func (c *Code) buildDeps() {
	c.dataDeps = make([][]int, len(c.dataCells))
	for p := 0; p < c.gen.Rows(); p++ {
		for d := 0; d < c.gen.Cols(); d++ {
			if c.gen.At(p, d) != 0 {
				c.dataDeps[d] = append(c.dataDeps[d], p)
			}
		}
	}
}

// verify checks the claimed coverage: exhaustively when the pattern
// space fits under ExhaustiveLimit, otherwise on the canonical worst
// case plus a seeded sample of random patterns.
func (c *Code) verify() bool {
	if count, ok := c.patternSpaceSize(); ok && count <= c.cfg.ExhaustiveLimit {
		if c.verifyExhaustive() {
			c.exhausted = true
			return true
		}
		return false
	}
	var worst []Cell
	for col := 0; col < c.m; col++ {
		for row := 0; row < c.r; row++ {
			worst = append(worst, Cell{Col: col, Row: row})
		}
	}
	for k := 0; k < c.s; k++ {
		worst = append(worst, Cell{Col: c.m % c.n, Row: k})
	}
	if c.m+c.s > 0 && !c.patternSolvable(worst) {
		return false
	}
	rng := rand.New(rand.NewSource(int64(c.n*7 + c.r*11 + c.m*13 + c.s*17)))
	for trial := 0; trial < c.cfg.VerifySamples; trial++ {
		lost := c.randomCoveredPattern(rng)
		if !c.patternSolvable(lost) {
			return false
		}
	}
	return true
}

// patternSpaceSize returns C(n, m) × C(n·r − m·r, s), guarding overflow.
func (c *Code) patternSpaceSize() (int, bool) {
	chunkSets := binomial(c.n, c.m)
	sectorSets := binomial((c.n-c.m)*c.r, c.s)
	if chunkSets < 0 || sectorSets < 0 {
		return 0, false
	}
	total := chunkSets * sectorSets
	if chunkSets != 0 && total/chunkSets != sectorSets {
		return 0, false
	}
	return total, true
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i)
		if res < 0 {
			return -1
		}
		res /= i + 1
	}
	return res
}

// verifyExhaustive checks every m-chunk subset combined with every
// s-sector subset of the surviving cells.
func (c *Code) verifyExhaustive() bool {
	chunkSets := combinations(c.n, c.m)
	for _, chunks := range chunkSets {
		inFailed := make([]bool, c.n)
		var base []Cell
		for _, col := range chunks {
			inFailed[col] = true
			for row := 0; row < c.r; row++ {
				base = append(base, Cell{Col: col, Row: row})
			}
		}
		var survivors []Cell
		for col := 0; col < c.n; col++ {
			if inFailed[col] {
				continue
			}
			for row := 0; row < c.r; row++ {
				survivors = append(survivors, Cell{Col: col, Row: row})
			}
		}
		ok := true
		forEachCombination(len(survivors), c.s, func(idx []int) bool {
			lost := append(append([]Cell{}, base...), pick(survivors, idx)...)
			if !c.patternSolvable(lost) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

func pick(cells []Cell, idx []int) []Cell {
	out := make([]Cell, len(idx))
	for i, j := range idx {
		out[i] = cells[j]
	}
	return out
}

// combinations returns all k-subsets of 0..n-1.
func combinations(n, k int) [][]int {
	var out [][]int
	forEachCombination(n, k, func(idx []int) bool {
		out = append(out, append([]int{}, idx...))
		return true
	})
	return out
}

// forEachCombination visits every k-subset of 0..n-1; the visitor returns
// false to stop early.
func forEachCombination(n, k int, visit func([]int) bool) {
	if k == 0 {
		visit(nil)
		return
	}
	if k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !visit(idx) {
			return
		}
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func (c *Code) randomCoveredPattern(rng *rand.Rand) []Cell {
	cols := rng.Perm(c.n)
	var lost []Cell
	for i := 0; i < c.m; i++ {
		for row := 0; row < c.r; row++ {
			lost = append(lost, Cell{Col: cols[i], Row: row})
		}
	}
	seen := map[Cell]bool{}
	for len(seen) < c.s {
		cell := Cell{Col: cols[c.m+rng.Intn(c.n-c.m)], Row: rng.Intn(c.r)}
		if !seen[cell] {
			seen[cell] = true
			lost = append(lost, cell)
		}
	}
	return lost
}

// patternSolvable reports whether the lost positions' parity-check
// submatrix has full column rank.
func (c *Code) patternSolvable(lost []Cell) bool {
	if len(lost) == 0 {
		return true
	}
	if len(lost) > c.h.Rows() {
		return false
	}
	cols := make([]int, len(lost))
	for i, cell := range lost {
		cols[i] = c.varOf(cell)
	}
	sub := c.h.SelectCols(cols)
	return sub.Rank() == len(lost)
}

// N returns the number of chunks per stripe.
func (c *Code) N() int { return c.n }

// KernelName reports which GF region kernel this code's Mult_XOR region
// ops dispatch to (internal/gf runtime CPU dispatch, overridable with
// STAIR_GF_KERNEL). SD codes picked over GF(2^8)/GF(2^4) ride the SIMD
// kernels; instances forced to GF(2^16) take the portable widened path.
func (c *Code) KernelName() string { return c.f.KernelName() }

// R returns the number of sectors per chunk.
func (c *Code) R() int { return c.r }

// M returns the number of tolerated chunk failures.
func (c *Code) M() int { return c.m }

// S returns the number of tolerated additional sector failures.
func (c *Code) S() int { return c.s }

// DataCells returns the cells the caller fills before Encode.
func (c *Code) DataCells() []Cell { return append([]Cell{}, c.dataCells...) }

// ParityCells returns the cells Encode fills.
func (c *Code) ParityCells() []Cell { return append([]Cell{}, c.parityCells...) }

// EncodeCost returns the Mult_XOR count of the standard encoding (no
// parity reuse): the number of nonzero generator coefficients.
func (c *Code) EncodeCost() int {
	nnz := 0
	for p := 0; p < c.gen.Rows(); p++ {
		for d := 0; d < c.gen.Cols(); d++ {
			if c.gen.At(p, d) != 0 {
				nnz++
			}
		}
	}
	return nnz
}

// MeanUpdatePenalty returns the average number of parity sectors touched
// by a single data-sector update (Figure 15's quantity).
func (c *Code) MeanUpdatePenalty() float64 {
	if len(c.dataDeps) == 0 {
		return 0
	}
	total := 0
	for _, deps := range c.dataDeps {
		total += len(deps)
	}
	return float64(total) / float64(len(c.dataDeps))
}

// sector returns cells[col*r+row]; stripes use internal/core's layout.
func (c *Code) sector(cells [][]byte, cell Cell) []byte { return cells[cell.Col*c.r+cell.Row] }

func (c *Code) checkStripe(cells [][]byte) (int, error) {
	if len(cells) != c.n*c.r {
		return 0, fmt.Errorf("sd: stripe has %d cells, want %d", len(cells), c.n*c.r)
	}
	size := len(cells[0])
	if size == 0 || size%c.f.SymbolBytes() != 0 {
		return 0, fmt.Errorf("sd: sector size %d must be a positive multiple of %d", size, c.f.SymbolBytes())
	}
	for i, s := range cells {
		if len(s) != size {
			return 0, fmt.Errorf("sd: cell %d has %d bytes, want %d", i, len(s), size)
		}
	}
	return size, nil
}

// Encode fills the parity cells from the data cells using the standard
// method: every parity sector is a dense linear combination of all data
// sectors, with no intermediate reuse (the SD implementation the paper
// compares against, §6.2).
func (c *Code) Encode(cells [][]byte) error {
	if _, err := c.checkStripe(cells); err != nil {
		return err
	}
	// Source-major: one fused pass per data sector updating every parity
	// sector, so each data sector is read once rather than once per
	// parity row.
	outs := make([][]byte, len(c.parityCells))
	for p, pc := range c.parityCells {
		outs[p] = c.sector(cells, pc)
		gf.Zero(outs[p])
	}
	coeffs := make([]uint32, len(c.parityCells))
	for d, dc := range c.dataCells {
		for p := range c.parityCells {
			coeffs[p] = c.gen.At(p, d)
		}
		c.f.MultXORFused(outs, c.sector(cells, dc), coeffs)
	}
	return nil
}

// Repair reconstructs the lost cells in place via a linear solve over the
// parity-check constraints, reading every surviving sector (the
// "decoding manner" of the SD implementation).
func (c *Code) Repair(cells [][]byte, lost []Cell) error {
	size, err := c.checkStripe(cells)
	if err != nil {
		return err
	}
	lost = dedupe(lost)
	for _, cell := range lost {
		if cell.Col < 0 || cell.Col >= c.n || cell.Row < 0 || cell.Row >= c.r {
			return fmt.Errorf("sd: lost cell %v out of range", cell)
		}
	}
	if len(lost) == 0 {
		return nil
	}
	lostSet := make(map[int]bool, len(lost))
	lcols := make([]int, len(lost))
	for i, cell := range lost {
		v := c.varOf(cell)
		lostSet[v] = true
		lcols[i] = v
	}
	sub := c.h.SelectCols(lcols)
	// Select |lost| independent constraint rows.
	rows := independentRows(sub)
	if len(rows) < len(lost) {
		return fmt.Errorf("%w: %d lost cells", ErrUnrecoverable, len(lost))
	}
	a := sub.SelectRows(rows)
	aInv, err := a.Invert()
	if err != nil {
		return fmt.Errorf("%w: %d lost cells", ErrUnrecoverable, len(lost))
	}
	// rhs[k] = Σ_{known j} H[rows[k]][j]·x_j (over regions), source-major:
	// each surviving sector is read once and fans out into every
	// constraint's accumulator in one fused pass.
	rhs := make([][]byte, len(rows))
	for k := range rhs {
		rhs[k] = make([]byte, size)
	}
	coeffs := make([]uint32, len(rows))
	for col := 0; col < c.n; col++ {
		for row := 0; row < c.r; row++ {
			v := row*c.n + col
			if lostSet[v] {
				continue
			}
			any := false
			for k, hr := range rows {
				coeffs[k] = c.h.At(hr, v)
				any = any || coeffs[k] != 0
			}
			if any {
				c.f.MultXORFused(rhs, cells[col*c.r+row], coeffs)
			}
		}
	}
	// x_lost = A^{-1}·rhs, again source-major over the rhs regions.
	outs := make([][]byte, len(lost))
	for i, cell := range lost {
		outs[i] = c.sector(cells, cell)
		gf.Zero(outs[i])
	}
	solve := make([]uint32, len(lost))
	for k := range rhs {
		for i := range lost {
			solve[i] = aInv.At(i, k)
		}
		c.f.MultXORFused(outs, rhs[k], solve)
	}
	return nil
}

// CanRecover reports whether the pattern is repairable.
func (c *Code) CanRecover(lost []Cell) bool { return c.patternSolvable(dedupe(lost)) }

// CoverageContains reports whether a pattern lies within the SD coverage:
// after absorbing the m most-affected chunks, at most s sectors remain.
func (c *Code) CoverageContains(lost []Cell) bool {
	lost = dedupe(lost)
	perChunk := make([]int, c.n)
	for _, cell := range lost {
		perChunk[cell.Col]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(perChunk)))
	rest := 0
	for i := c.m; i < len(perChunk); i++ {
		rest += perChunk[i]
	}
	return rest <= c.s
}

func dedupe(cells []Cell) []Cell {
	seen := make(map[Cell]bool, len(cells))
	out := cells[:0:0]
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// independentRows greedily selects a maximal independent row set of m.
func independentRows(m *matrix.Matrix) []int {
	work := m.Clone()
	var rows []int
	rank := 0
	// Gaussian elimination tracking original row indices.
	idx := make([]int, work.Rows())
	for i := range idx {
		idx[i] = i
	}
	for col := 0; col < work.Cols() && rank < work.Rows(); col++ {
		pivot := -1
		for r := rank; r < work.Rows(); r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != rank {
			for j := 0; j < work.Cols(); j++ {
				vp, vr := work.At(pivot, j), work.At(rank, j)
				work.Set(pivot, j, vr)
				work.Set(rank, j, vp)
			}
			idx[pivot], idx[rank] = idx[rank], idx[pivot]
		}
		pinv := work.Field().Inv(work.At(rank, col))
		for j := 0; j < work.Cols(); j++ {
			work.Set(rank, j, work.Field().Mul(work.At(rank, j), pinv))
		}
		for r := 0; r < work.Rows(); r++ {
			if r == rank {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < work.Cols(); j++ {
				v := work.At(rank, j)
				if v != 0 {
					work.Set(r, j, work.At(r, j)^work.Field().Mul(f, v))
				}
			}
		}
		rows = append(rows, idx[rank])
		rank++
	}
	sort.Ints(rows)
	return rows
}
