package sd

import (
	"bytes"
	"math/rand"
	"testing"
)

func newCode(t *testing.T, n, r, m, s int) *Code {
	t.Helper()
	c, err := New(Config{N: n, R: r, M: m, S: s})
	if err != nil {
		t.Fatalf("New(n=%d r=%d m=%d s=%d): %v", n, r, m, s, err)
	}
	return c
}

func newStripe(c *Code, sectorSize int, seed int64) [][]byte {
	cells := make([][]byte, c.N()*c.R())
	for i := range cells {
		cells[i] = make([]byte, sectorSize)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, cell := range c.DataCells() {
		rng.Read(cells[cell.Col*c.R()+cell.Row])
	}
	return cells
}

func cloneStripe(cells [][]byte) [][]byte {
	out := make([][]byte, len(cells))
	for i, s := range cells {
		out[i] = append([]byte{}, s...)
	}
	return out
}

func stripesEqual(a, b [][]byte) bool {
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{N: 8, R: 4, M: 2, S: 2}, true},
		{Config{N: 8, R: 4, M: 2, S: 0}, true},
		{Config{N: 8, R: 4, M: 0, S: 1}, true},
		{Config{N: 0, R: 4, M: 0, S: 1}, false},
		{Config{N: 8, R: 0, M: 2, S: 1}, false},
		{Config{N: 8, R: 4, M: 8, S: 1}, false},
		{Config{N: 8, R: 4, M: -1, S: 1}, false},
		{Config{N: 8, R: 4, M: 2, S: 5}, false}, // s > r
		{Config{N: 8, R: 4, M: 2, S: 1, W: 7}, false},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("New(%+v): err=%v, want ok=%v", tc.cfg, err, tc.ok)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := newCode(t, 8, 4, 2, 2)
	if len(c.DataCells()) != 8*4-2*4-2 {
		t.Errorf("data cells = %d, want %d", len(c.DataCells()), 8*4-2*4-2)
	}
	if len(c.ParityCells()) != 2*4+2 {
		t.Errorf("parity cells = %d, want %d", len(c.ParityCells()), 2*4+2)
	}
}

// TestEncodeRepairWorstCase: the defining SD property on the canonical
// worst case — any m chunks plus any s sectors.
func TestEncodeRepairWorstCase(t *testing.T) {
	for _, shape := range []struct{ n, r, m, s int }{
		{8, 4, 1, 1}, {8, 4, 2, 2}, {8, 4, 2, 3}, {6, 8, 1, 2}, {16, 16, 2, 3}, {8, 4, 3, 1},
	} {
		c := newCode(t, shape.n, shape.r, shape.m, shape.s)
		cells := newStripe(c, 16, 1)
		if err := c.Encode(cells); err != nil {
			t.Fatal(err)
		}
		want := cloneStripe(cells)
		var lost []Cell
		for col := 0; col < shape.m; col++ {
			for row := 0; row < shape.r; row++ {
				lost = append(lost, Cell{Col: col, Row: row})
			}
		}
		for k := 0; k < shape.s; k++ {
			lost = append(lost, Cell{Col: shape.m + k%(shape.n-shape.m), Row: k / (shape.n - shape.m)})
		}
		for _, cell := range lost {
			for i := range cells[cell.Col*c.R()+cell.Row] {
				cells[cell.Col*c.R()+cell.Row][i] = 0xEE
			}
		}
		if err := c.Repair(cells, lost); err != nil {
			t.Fatalf("shape %+v: %v", shape, err)
		}
		if !stripesEqual(cells, want) {
			t.Fatalf("shape %+v: wrong bytes after repair", shape)
		}
	}
}

// TestRepairRandomCoveredPatterns fuzzes coverage repair.
func TestRepairRandomCoveredPatterns(t *testing.T) {
	c := newCode(t, 8, 4, 2, 2)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		cells := newStripe(c, 8, int64(trial))
		if err := c.Encode(cells); err != nil {
			t.Fatal(err)
		}
		want := cloneStripe(cells)
		lost := c.randomCoveredPattern(rng)
		for _, cell := range lost {
			for i := range cells[cell.Col*c.R()+cell.Row] {
				cells[cell.Col*c.R()+cell.Row][i] = 0xEE
			}
		}
		if err := c.Repair(cells, lost); err != nil {
			t.Fatalf("trial %d: %v (lost %v)", trial, err, lost)
		}
		if !stripesEqual(cells, want) {
			t.Fatalf("trial %d: wrong bytes (lost %v)", trial, lost)
		}
	}
}

func TestBeyondCoverageRejected(t *testing.T) {
	c := newCode(t, 8, 4, 2, 2)
	// m+1 full chunks.
	var lost []Cell
	for col := 0; col < 3; col++ {
		for row := 0; row < 4; row++ {
			lost = append(lost, Cell{Col: col, Row: row})
		}
	}
	if c.CanRecover(lost) {
		t.Error("m+1 chunks claimed recoverable")
	}
	if c.CoverageContains(lost) {
		t.Error("m+1 chunks claimed covered")
	}
	cells := newStripe(c, 8, 9)
	if err := c.Encode(cells); err != nil {
		t.Fatal(err)
	}
	if err := c.Repair(cells, lost); err == nil {
		t.Error("Repair of m+1 chunks succeeded")
	}
}

func TestCoverageContains(t *testing.T) {
	c := newCode(t, 8, 4, 2, 2)
	if !c.CoverageContains([]Cell{{0, 0}, {1, 0}}) {
		t.Error("two sectors should be covered")
	}
	// Three single sectors in three chunks: the m=2 chunk slots absorb
	// two of them, leaving 1 ≤ s — covered.
	if !c.CoverageContains([]Cell{{0, 0}, {1, 0}, {2, 0}}) {
		t.Error("three spread sectors should be covered (chunk slots absorb)")
	}
	// Five single sectors in five chunks: 2 absorbed, 3 > s=2.
	if c.CoverageContains([]Cell{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}) {
		t.Error("five spread sectors must exceed coverage")
	}
}

func TestCoverageAbsorbsChunks(t *testing.T) {
	c := newCode(t, 8, 4, 2, 2)
	// Sectors in 4 chunks: the two most-affected absorb into m.
	lost := []Cell{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {3, 0}}
	if !c.CoverageContains(lost) {
		t.Error("pattern should be covered (m absorbs chunks 0,1; 2 sectors remain)")
	}
}

func TestUpdatePenalty(t *testing.T) {
	// Every data sector affects its m row parities plus (generically)
	// all s globals; because the globals sit inside the stripe, the row
	// parities of the global-hosting rows cascade too (the same uneven
	// parity-relation effect §5.2 describes for STAIR), giving a mean
	// near m + s + m·s.
	c := newCode(t, 16, 16, 2, 2)
	got := c.MeanUpdatePenalty()
	lo, hi := float64(c.M()+c.S()), float64(c.M()+c.S()+c.M()*c.S())+1.0
	if got < lo || got > hi {
		t.Errorf("mean update penalty %v outside [%v, %v]", got, lo, hi)
	}
}

func TestEncodeCostIsDense(t *testing.T) {
	// Standard encoding touches nearly every (data, parity) pair; with
	// no reuse the cost must be much larger than STAIR-style reuse
	// costs (cf. Figure 9): at least data×s for the globals alone.
	c := newCode(t, 8, 8, 2, 3)
	if got := c.EncodeCost(); got < len(c.DataCells())*c.S() {
		t.Errorf("encode cost %d suspiciously small", got)
	}
}

func TestRepairValidation(t *testing.T) {
	c := newCode(t, 8, 4, 2, 2)
	cells := newStripe(c, 8, 3)
	if err := c.Repair(cells, []Cell{{Col: 42, Row: 0}}); err == nil {
		t.Error("out-of-range cell accepted")
	}
	if err := c.Repair(cells, nil); err != nil {
		t.Errorf("empty lost set: %v", err)
	}
	if err := c.Encode(cells[:3]); err == nil {
		t.Error("short stripe accepted")
	}
	ragged := newStripe(c, 8, 3)
	ragged[2] = ragged[2][:4]
	if err := c.Encode(ragged); err == nil {
		t.Error("ragged stripe accepted")
	}
}

func TestZeroDataZeroParity(t *testing.T) {
	c := newCode(t, 8, 4, 2, 2)
	cells := make([][]byte, c.N()*c.R())
	for i := range cells {
		cells[i] = make([]byte, 8)
	}
	if err := c.Encode(cells); err != nil {
		t.Fatal(err)
	}
	for i, s := range cells {
		for j, b := range s {
			if b != 0 {
				t.Fatalf("cell %d byte %d = %d", i, j, b)
			}
		}
	}
}
