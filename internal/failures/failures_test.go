package failures

import (
	"math"
	"math/rand"
	"testing"
)

func TestBurstDistFig19aCDFOrdering(t *testing.T) {
	// Figure 19(a): burstier parameter pairs have lower CDFs at every
	// length below the maximum.
	pairs := []struct{ b1, alpha float64 }{
		{0.9, 1}, {0.98, 1.79}, {0.99, 2}, {0.999, 3}, {0.9999, 4},
	}
	dists := make([]*BurstDist, len(pairs))
	for i, p := range pairs {
		d, err := NewBurstDist(p.b1, p.alpha, 16)
		if err != nil {
			t.Fatal(err)
		}
		dists[i] = d
	}
	for l := 1; l < 16; l++ {
		for i := 0; i+1 < len(dists); i++ {
			if dists[i].CDF(l) > dists[i+1].CDF(l)+1e-12 {
				t.Errorf("CDF ordering violated at length %d between pair %d and %d", l, i, i+1)
			}
		}
	}
}

func TestBurstDistSampleMatchesPMF(t *testing.T) {
	d, err := NewBurstDist(0.9, 1.0, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	counts := make([]int, 17)
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	for l := 1; l <= 16; l++ {
		got := float64(counts[l]) / n
		want := d.P(l)
		se := math.Sqrt(want*(1-want)/n) + 1e-9
		if math.Abs(got-want) > 6*se {
			t.Errorf("P(%d): sampled %v, want %v", l, got, want)
		}
	}
}

func TestBurstDistBoundaries(t *testing.T) {
	d, _ := NewBurstDist(0.95, 2, 8)
	if d.P(0) != 0 || d.P(9) != 0 {
		t.Error("out-of-range P should be 0")
	}
	if d.CDF(0) != 0 || d.CDF(100) != 1 {
		t.Error("CDF boundaries wrong")
	}
	if len(d.Fractions()) != 8 {
		t.Error("Fractions length wrong")
	}
	one, err := NewBurstDist(0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.P(1) != 1 || one.Mean() != 1 {
		t.Error("maxLen=1 should be a point mass")
	}
}

func TestChunkFailuresClipping(t *testing.T) {
	d, _ := NewBurstDist(0.0, 1.0, 16) // always multi-sector bursts
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		bursts := ChunkFailures(rng, 16, 0.3, d)
		for _, b := range bursts {
			if b.Start < 0 || b.Start+b.Len > 16 || b.Len < 1 {
				t.Fatalf("burst %+v escapes the chunk", b)
			}
		}
	}
}

func TestLostSectors(t *testing.T) {
	got := LostSectors([]SectorBurst{{Start: 3, Len: 2}, {Start: 4, Len: 3}, {Start: 0, Len: 1}})
	want := []int{0, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDeviceProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	never := DeviceProcess{P: 0}
	if len(never.Failed(rng, 100)) != 0 {
		t.Error("P=0 produced failures")
	}
	always := DeviceProcess{P: 1}
	if len(always.Failed(rng, 100)) != 100 {
		t.Error("P=1 missed failures")
	}
	some := DeviceProcess{P: 0.5}
	n := 0
	for trial := 0; trial < 1000; trial++ {
		n += len(some.Failed(rng, 10))
	}
	if n < 4500 || n > 5500 {
		t.Errorf("P=0.5 over 10000 draws gave %d failures", n)
	}
}

func TestDegradingRamp(t *testing.T) {
	d := Degrading{P0: 0.01, Growth: 2}
	want := []float64{0.01, 0.02, 0.04, 0.08}
	for step, w := range want {
		if got := d.PAt(step); got < w*0.999 || got > w*1.001 {
			t.Errorf("PAt(%d) = %v, want %v", step, got, w)
		}
	}
	// The ramp clamps at 1 instead of running away.
	if got := d.PAt(100); got != 1 {
		t.Errorf("PAt(100) = %v, want clamp at 1", got)
	}
	// Growth 1 holds steady; a negative product clamps at 0.
	steady := Degrading{P0: 0.05, Growth: 1}
	if got := steady.PAt(10); got != 0.05 {
		t.Errorf("steady PAt(10) = %v, want 0.05", got)
	}
	neg := Degrading{P0: -0.1, Growth: 2}
	if got := neg.PAt(3); got != 0 {
		t.Errorf("negative PAt(3) = %v, want clamp at 0", got)
	}
}
