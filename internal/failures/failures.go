// Package failures models sector and device failure processes following
// the STAIR paper's reliability analysis (§7.1.2, §7.2.2) and the field
// studies it builds on (Bairavasundaram et al., Schroeder et al.).
//
// Sector failures come in bursts whose length distribution is described
// by a pair (b1, α): b1 is the fraction of length-1 bursts, and α is the
// tail index of a Pareto distribution fitted to lengths ≥ 2. Typical
// field values are b1 ∈ [0.9, 0.99] and α ∈ [1, 2].
package failures

import (
	"fmt"
	"math"
	"math/rand"
)

// BurstDist is a discrete burst-length distribution over 1..MaxLen,
// parameterised by (b1, α) per §7.2.2: P(L=1) = b1 and, for i ≥ 2,
// P(L=i) ∝ i^{-α} − (i+1)^{-α} (a discrete Pareto tail), truncated and
// renormalised at MaxLen (the paper assumes bursts never exceed a chunk).
type BurstDist struct {
	B1     float64
	Alpha  float64
	MaxLen int
	probs  []float64 // probs[i-1] = P(L = i)
	cdf    []float64
	mean   float64
}

// NewBurstDist validates the parameters and precomputes the distribution.
func NewBurstDist(b1, alpha float64, maxLen int) (*BurstDist, error) {
	if b1 < 0 || b1 > 1 {
		return nil, fmt.Errorf("failures: b1=%v must be in [0,1]", b1)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("failures: alpha=%v must be positive", alpha)
	}
	if maxLen < 1 {
		return nil, fmt.Errorf("failures: maxLen=%d must be ≥ 1", maxLen)
	}
	d := &BurstDist{B1: b1, Alpha: alpha, MaxLen: maxLen}
	d.probs = make([]float64, maxLen)
	d.probs[0] = b1
	if maxLen > 1 {
		// Tail weights w_i = i^{-α} − (i+1)^{-α} for i = 2..maxLen,
		// normalised to total 1−b1.
		norm := math.Pow(2, -alpha) - math.Pow(float64(maxLen+1), -alpha)
		if norm <= 0 {
			// maxLen == 1 handled above; degenerate tail.
			norm = 1
		}
		for i := 2; i <= maxLen; i++ {
			w := math.Pow(float64(i), -alpha) - math.Pow(float64(i+1), -alpha)
			d.probs[i-1] = (1 - b1) * w / norm
		}
	} else {
		d.probs[0] = 1
	}
	d.cdf = make([]float64, maxLen)
	acc := 0.0
	for i, p := range d.probs {
		acc += p
		d.cdf[i] = acc
		d.mean += float64(i+1) * p
	}
	return d, nil
}

// P returns P(L = i) for burst length i (1-based).
func (d *BurstDist) P(i int) float64 {
	if i < 1 || i > d.MaxLen {
		return 0
	}
	return d.probs[i-1]
}

// CDF returns P(L ≤ i) — the curves of the paper's Figure 19(a).
func (d *BurstDist) CDF(i int) float64 {
	if i < 1 {
		return 0
	}
	if i > d.MaxLen {
		return 1
	}
	return d.cdf[i-1]
}

// Mean returns E[L], the paper's B (Eq. 14).
func (d *BurstDist) Mean() float64 { return d.mean }

// Sample draws a burst length.
func (d *BurstDist) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range d.cdf {
		if u <= c {
			return i + 1
		}
	}
	return d.MaxLen
}

// Fractions returns the probability vector b_1..b_maxLen (Eq. 14's b_i).
func (d *BurstDist) Fractions() []float64 { return append([]float64{}, d.probs...) }

// SectorBurst is one injected failure event: Start sectors into a chunk,
// Len consecutive sectors lost.
type SectorBurst struct {
	Start int
	Len   int
}

// ChunkFailures draws the set of failure bursts striking one chunk of r
// sectors during an exposure window where each sector independently
// begins a burst with probability pStart = Psec/B (§7.1.2: the
// probability that a sector is the beginning of a burst). Bursts are
// clipped at the chunk boundary, matching the paper's assumption that a
// burst spans one chunk only.
func ChunkFailures(rng *rand.Rand, r int, pStart float64, d *BurstDist) []SectorBurst {
	var bursts []SectorBurst
	for s := 0; s < r; s++ {
		if rng.Float64() >= pStart {
			continue
		}
		l := d.Sample(rng)
		if s+l > r {
			l = r - s
		}
		bursts = append(bursts, SectorBurst{Start: s, Len: l})
	}
	return bursts
}

// LostSectors flattens bursts into a deduplicated, sorted sector list.
func LostSectors(bursts []SectorBurst) []int {
	seen := map[int]bool{}
	var out []int
	for _, b := range bursts {
		for i := 0; i < b.Len; i++ {
			if !seen[b.Start+i] {
				seen[b.Start+i] = true
				out = append(out, b.Start+i)
			}
		}
	}
	// Insertion sort; lists are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Degrading models a progressively failing device: a per-sector
// burst-start probability that grows geometrically step by step, the
// shape of the field studies' "errors beget errors" finding (a device
// that has started throwing latent sector errors keeps throwing them,
// faster). Step 0 is P0; each subsequent step multiplies by Growth.
type Degrading struct {
	// P0 is the step-0 burst-start probability.
	P0 float64
	// Growth is the per-step multiplier (> 1 degrades, 1 holds steady).
	Growth float64
}

// PAt returns the burst-start probability at the given step, clamped
// to 1.
func (d Degrading) PAt(step int) float64 {
	p := d.P0
	for i := 0; i < step; i++ {
		p *= d.Growth
	}
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// DeviceProcess draws device failures as a Bernoulli event per device per
// exposure window with probability p (a discretisation of the paper's
// exponential lifetime model with rate λ over a window t: p ≈ 1−e^{-λt}).
type DeviceProcess struct {
	P float64
}

// Failed draws which of n devices fail during one window.
func (dp DeviceProcess) Failed(rng *rand.Rand, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if rng.Float64() < dp.P {
			out = append(out, i)
		}
	}
	return out
}
