// Package rs implements systematic maximum-distance-separable (MDS)
// erasure codes over GF(2^w): Cauchy Reed-Solomon codes (the paper's
// default building block, §3) and Vandermonde-derived Reed-Solomon codes.
//
// An (eta, kappa) code transforms kappa data symbols into an eta-symbol
// codeword whose first kappa symbols are the data itself (systematic) and
// whose any kappa symbols suffice to recover the codeword (MDS). STAIR
// codes instantiate two of these: Crow = (n+m', n−m) applied to rows and
// Ccol = (r+e_max, r) applied to columns.
package rs

import (
	"fmt"

	"stair/internal/gf"
	"stair/internal/matrix"
)

// Kind selects the generator-matrix construction.
type Kind int

const (
	// Cauchy builds the parity block from a Cauchy matrix (the paper's
	// choice: Cauchy Reed-Solomon codes have no restriction on code
	// length or fault tolerance beyond eta ≤ 2^w).
	Cauchy Kind = iota
	// Vandermonde builds the generator by column-reducing a Vandermonde
	// matrix (classic Plank systematic Reed-Solomon construction).
	Vandermonde
)

func (k Kind) String() string {
	switch k {
	case Cauchy:
		return "cauchy"
	case Vandermonde:
		return "vandermonde"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Code is a systematic (eta, kappa) MDS code. Codewords are indexed
// 0..eta-1; positions 0..kappa-1 are data, kappa..eta-1 are parity.
// A Code is immutable and safe for concurrent use.
type Code struct {
	f     *gf.Field
	eta   int
	kappa int
	kind  Kind
	// gen is the eta×kappa generator: codeword = gen · data (column
	// vector), with the top kappa×kappa block the identity.
	gen *matrix.Matrix
}

// New constructs an (eta, kappa) systematic MDS code of the given kind.
func New(f *gf.Field, eta, kappa int, kind Kind) (*Code, error) {
	if kappa < 1 {
		return nil, fmt.Errorf("rs: kappa=%d must be ≥ 1", kappa)
	}
	if eta < kappa {
		return nil, fmt.Errorf("rs: eta=%d must be ≥ kappa=%d", eta, kappa)
	}
	if eta > f.Size() {
		return nil, fmt.Errorf("rs: eta=%d exceeds field size 2^%d=%d; use a wider field", eta, f.W(), f.Size())
	}
	c := &Code{f: f, eta: eta, kappa: kappa, kind: kind}
	switch kind {
	case Cauchy:
		if eta == kappa {
			c.gen = matrix.Identity(f, kappa)
			break
		}
		xs := make([]uint32, eta-kappa)
		ys := make([]uint32, kappa)
		for i := range xs {
			xs[i] = uint32(kappa + i)
		}
		for j := range ys {
			ys[j] = uint32(j)
		}
		// parity block A[i][j] = 1/(xs[i] + ys[j]); rows are parity
		// positions, columns are data positions.
		a, err := matrix.Cauchy(f, ys, xs) // |xs|×|ys| = rows over parity positions
		if err != nil {
			return nil, fmt.Errorf("rs: building Cauchy parity block: %w", err)
		}
		c.gen = stack(matrix.Identity(f, kappa), a)
	case Vandermonde:
		g, err := matrix.SystematicFromVandermonde(f, eta, kappa)
		if err != nil {
			return nil, fmt.Errorf("rs: building Vandermonde generator: %w", err)
		}
		c.gen = g
	default:
		return nil, fmt.Errorf("rs: unknown kind %v", kind)
	}
	return c, nil
}

// NewCauchy is shorthand for New(f, eta, kappa, Cauchy).
func NewCauchy(f *gf.Field, eta, kappa int) (*Code, error) {
	return New(f, eta, kappa, Cauchy)
}

// NewVandermonde is shorthand for New(f, eta, kappa, Vandermonde).
func NewVandermonde(f *gf.Field, eta, kappa int) (*Code, error) {
	return New(f, eta, kappa, Vandermonde)
}

// stack returns the vertical concatenation [top; bottom].
func stack(top, bottom *matrix.Matrix) *matrix.Matrix {
	if top.Cols() != bottom.Cols() {
		panic("rs: stack column mismatch")
	}
	m := matrix.New(top.Field(), top.Rows()+bottom.Rows(), top.Cols())
	for i := 0; i < top.Rows(); i++ {
		for j := 0; j < top.Cols(); j++ {
			m.Set(i, j, top.At(i, j))
		}
	}
	for i := 0; i < bottom.Rows(); i++ {
		for j := 0; j < bottom.Cols(); j++ {
			m.Set(top.Rows()+i, j, bottom.At(i, j))
		}
	}
	return m
}

// Field returns the underlying Galois field.
func (c *Code) Field() *gf.Field { return c.f }

// Eta returns the codeword length.
func (c *Code) Eta() int { return c.eta }

// Kappa returns the number of data symbols.
func (c *Code) Kappa() int { return c.kappa }

// Kind returns the generator construction used.
func (c *Code) Kind() Kind { return c.kind }

// Generator returns a copy of the eta×kappa generator matrix.
func (c *Code) Generator() *matrix.Matrix { return c.gen.Clone() }

// Coeff returns the generator coefficient of codeword position pos with
// respect to data symbol j.
func (c *Code) Coeff(pos, j int) uint32 { return c.gen.At(pos, j) }

// EncodeSymbols returns the eta−kappa parity symbols for the given kappa
// data symbols.
func (c *Code) EncodeSymbols(data []uint32) ([]uint32, error) {
	if len(data) != c.kappa {
		return nil, fmt.Errorf("rs: got %d data symbols, want %d", len(data), c.kappa)
	}
	parity := make([]uint32, c.eta-c.kappa)
	for p := range parity {
		var acc uint32
		for j, d := range data {
			if a := c.gen.At(c.kappa+p, j); a != 0 && d != 0 {
				acc ^= c.f.Mul(a, d)
			}
		}
		parity[p] = acc
	}
	return parity, nil
}

// EncodeRegions computes parity regions from data regions. data must hold
// kappa equal-length regions; parity must hold eta−kappa regions of the
// same length, which are overwritten.
func (c *Code) EncodeRegions(data, parity [][]byte) error {
	if len(data) != c.kappa {
		return fmt.Errorf("rs: got %d data regions, want %d", len(data), c.kappa)
	}
	if len(parity) != c.eta-c.kappa {
		return fmt.Errorf("rs: got %d parity regions, want %d", len(parity), c.eta-c.kappa)
	}
	// Source-major: one fused pass per data region updating every parity
	// region, so each data region is read once rather than once per
	// parity row (the ec_encode_data shape).
	for _, out := range parity {
		gf.Zero(out)
	}
	coeffs := make([]uint32, len(parity))
	for j, in := range data {
		for p := range parity {
			coeffs[p] = c.gen.At(c.kappa+p, j)
		}
		c.f.MultXORFused(parity, in, coeffs)
	}
	return nil
}

// SolveCoeffs computes the linear map that reconstructs the codeword
// positions in want from the positions in have. Exactly the first kappa
// entries of have are used (an error is returned if fewer are supplied).
// The result K is a len(want)×kappa matrix:
//
//	value[want[i]] = Σ_j K[i][j] · value[have[j]]   for j < kappa.
//
// This is the primitive both STAIR decoding and STAIR's upstairs /
// downstairs encoding are built from: "a row with ≥ n−m available symbols
// determines all its symbols" (paper §4.2).
func (c *Code) SolveCoeffs(have, want []int) (*matrix.Matrix, error) {
	if len(have) < c.kappa {
		return nil, fmt.Errorf("rs: need %d known positions, have %d", c.kappa, len(have))
	}
	use := have[:c.kappa]
	for _, p := range append(append([]int{}, use...), want...) {
		if p < 0 || p >= c.eta {
			return nil, fmt.Errorf("rs: position %d out of range [0,%d)", p, c.eta)
		}
	}
	gh := c.gen.SelectRows(use)
	ghInv, err := gh.Invert()
	if err != nil {
		// Cannot happen for an MDS code with kappa distinct positions,
		// but the caller may have passed duplicates.
		return nil, fmt.Errorf("rs: positions %v do not determine the codeword: %w", use, err)
	}
	gw := c.gen.SelectRows(want)
	return gw.Mul(ghInv), nil
}

// Reconstruct fills in the missing symbols of a codeword in place.
// codeword has length eta; present[i] reports whether codeword[i] is
// valid. At least kappa positions must be present.
func (c *Code) Reconstruct(codeword []uint32, present []bool) error {
	if len(codeword) != c.eta || len(present) != c.eta {
		return fmt.Errorf("rs: codeword/present length must be %d", c.eta)
	}
	var have, want []int
	for i, ok := range present {
		if ok {
			have = append(have, i)
		} else {
			want = append(want, i)
		}
	}
	if len(want) == 0 {
		return nil
	}
	k, err := c.SolveCoeffs(have, want)
	if err != nil {
		return err
	}
	for i, w := range want {
		var acc uint32
		for j := 0; j < c.kappa; j++ {
			if a := k.At(i, j); a != 0 {
				acc ^= c.f.Mul(a, codeword[have[j]])
			}
		}
		codeword[w] = acc
	}
	return nil
}

// ReconstructRegions fills in missing regions of a codeword of regions.
// regions[i] must all share one length; present[i] marks validity. Missing
// regions are overwritten in place.
func (c *Code) ReconstructRegions(regions [][]byte, present []bool) error {
	if len(regions) != c.eta || len(present) != c.eta {
		return fmt.Errorf("rs: regions/present length must be %d", c.eta)
	}
	var have, want []int
	for i, ok := range present {
		if ok {
			have = append(have, i)
		} else {
			want = append(want, i)
		}
	}
	if len(want) == 0 {
		return nil
	}
	k, err := c.SolveCoeffs(have, want)
	if err != nil {
		return err
	}
	// Source-major, like EncodeRegions: one fused pass per surviving
	// region updating every missing region.
	outs := make([][]byte, len(want))
	for i, w := range want {
		outs[i] = regions[w]
		gf.Zero(regions[w])
	}
	coeffs := make([]uint32, len(want))
	for j := 0; j < c.kappa; j++ {
		for i := range want {
			coeffs[i] = k.At(i, j)
		}
		c.f.MultXORFused(outs, regions[have[j]], coeffs)
	}
	return nil
}
