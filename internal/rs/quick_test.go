package rs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stair/internal/gf"
)

// TestQuickRoundtrip drives the MDS property with testing/quick: for a
// random shape, random data and a random erasure set of size ≤ η−κ,
// reconstruction recovers the original codeword.
func TestQuickRoundtrip(t *testing.T) {
	f := gf.Get(8)
	property := func(etaRaw, kappaRaw uint8, seed int64) bool {
		kappa := 1 + int(kappaRaw)%12
		eta := kappa + 1 + int(etaRaw)%8
		rng := rand.New(rand.NewSource(seed))
		kind := Cauchy
		if seed%2 == 0 {
			kind = Vandermonde
		}
		c, err := New(f, eta, kappa, kind)
		if err != nil {
			return false
		}
		data := make([]uint32, kappa)
		for i := range data {
			data[i] = uint32(rng.Intn(256))
		}
		parity, err := c.EncodeSymbols(data)
		if err != nil {
			return false
		}
		full := append(append([]uint32{}, data...), parity...)
		cw := append([]uint32{}, full...)
		present := make([]bool, eta)
		for i := range present {
			present[i] = true
		}
		nLost := 1 + rng.Intn(eta-kappa)
		for _, p := range rng.Perm(eta)[:nLost] {
			present[p] = false
			cw[p] = 0
		}
		if err := c.Reconstruct(cw, present); err != nil {
			return false
		}
		for i := range cw {
			if cw[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSolveCoeffsConsistency: reconstructing any position from any
// κ-subset gives the stored value.
func TestQuickSolveCoeffsConsistency(t *testing.T) {
	f := gf.Get(8)
	c, err := NewCauchy(f, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]uint32, 6)
		for i := range data {
			data[i] = uint32(rng.Intn(256))
		}
		parity, err := c.EncodeSymbols(data)
		if err != nil {
			return false
		}
		full := append(append([]uint32{}, data...), parity...)
		have := rng.Perm(10)[:6]
		want := []int{rng.Intn(10)}
		k, err := c.SolveCoeffs(have, want)
		if err != nil {
			return false
		}
		var acc uint32
		for j := 0; j < 6; j++ {
			acc ^= f.Mul(k.At(0, j), full[have[j]])
		}
		return acc == full[want[0]]
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
