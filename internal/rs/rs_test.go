package rs

import (
	"bytes"
	"math/rand"
	"testing"

	"stair/internal/gf"
)

var kinds = []Kind{Cauchy, Vandermonde}

func TestNewValidation(t *testing.T) {
	f := gf.Get(8)
	cases := []struct {
		eta, kappa int
		ok         bool
	}{
		{6, 4, true},
		{4, 4, true},
		{1, 1, true},
		{256, 200, true},
		{257, 200, false}, // eta > field size
		{3, 4, false},     // eta < kappa
		{5, 0, false},
	}
	for _, kind := range kinds {
		for _, tc := range cases {
			_, err := New(f, tc.eta, tc.kappa, kind)
			if (err == nil) != tc.ok {
				t.Errorf("New(%d,%d,%v): err=%v, want ok=%v", tc.eta, tc.kappa, kind, err, tc.ok)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Cauchy.String() != "cauchy" || Vandermonde.String() != "vandermonde" {
		t.Error("Kind.String wrong")
	}
	if Kind(42).String() == "" {
		t.Error("unknown Kind should still render")
	}
}

func TestSystematicProperty(t *testing.T) {
	f := gf.Get(8)
	for _, kind := range kinds {
		c, err := New(f, 9, 5, kind)
		if err != nil {
			t.Fatal(err)
		}
		g := c.Generator()
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				want := uint32(0)
				if i == j {
					want = 1
				}
				if g.At(i, j) != want {
					t.Fatalf("kind=%v: generator top block not identity at (%d,%d)", kind, i, j)
				}
			}
		}
	}
}

// TestMDSProperty verifies the defining property: any kappa codeword
// symbols recover the data, across both constructions and several shapes.
func TestMDSProperty(t *testing.T) {
	for _, w := range []int{8, 16} {
		f := gf.Get(w)
		for _, kind := range kinds {
			for _, shape := range []struct{ eta, kappa int }{
				{6, 4}, {11, 6}, {6, 1}, {8, 7}, {18, 12},
			} {
				c, err := New(f, shape.eta, shape.kappa, kind)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(w*100 + shape.eta)))
				data := make([]uint32, shape.kappa)
				for i := range data {
					data[i] = uint32(rng.Intn(f.Size()))
				}
				parity, err := c.EncodeSymbols(data)
				if err != nil {
					t.Fatal(err)
				}
				full := append(append([]uint32{}, data...), parity...)
				for trial := 0; trial < 40; trial++ {
					// Erase a random set of up to eta-kappa symbols.
					nLost := 1 + rng.Intn(shape.eta-shape.kappa)
					if shape.eta == shape.kappa {
						break
					}
					lost := rng.Perm(shape.eta)[:nLost]
					cw := append([]uint32{}, full...)
					present := make([]bool, shape.eta)
					for i := range present {
						present[i] = true
					}
					for _, l := range lost {
						cw[l] = 0xdead & uint32(f.Size()-1)
						present[l] = false
					}
					if err := c.Reconstruct(cw, present); err != nil {
						t.Fatalf("w=%d kind=%v shape=%v lost=%v: %v", w, kind, shape, lost, err)
					}
					for i := range cw {
						if cw[i] != full[i] {
							t.Fatalf("w=%d kind=%v shape=%v lost=%v: symbol %d = %d, want %d",
								w, kind, shape, lost, i, cw[i], full[i])
						}
					}
				}
			}
		}
	}
}

func TestEncodeSymbolsLengthCheck(t *testing.T) {
	f := gf.Get(8)
	c, _ := NewCauchy(f, 6, 4)
	if _, err := c.EncodeSymbols(make([]uint32, 3)); err == nil {
		t.Error("expected length error")
	}
}

func TestEncodeRegionsMatchesSymbols(t *testing.T) {
	f := gf.Get(8)
	for _, kind := range kinds {
		c, err := New(f, 7, 4, kind)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		const regionLen = 64
		data := make([][]byte, 4)
		for i := range data {
			data[i] = make([]byte, regionLen)
			rng.Read(data[i])
		}
		parity := make([][]byte, 3)
		for i := range parity {
			parity[i] = make([]byte, regionLen)
		}
		if err := c.EncodeRegions(data, parity); err != nil {
			t.Fatal(err)
		}
		// Check each byte position independently as a symbol codeword.
		for pos := 0; pos < regionLen; pos++ {
			syms := make([]uint32, 4)
			for i := range syms {
				syms[i] = uint32(data[i][pos])
			}
			want, err := c.EncodeSymbols(syms)
			if err != nil {
				t.Fatal(err)
			}
			for p := range parity {
				if uint32(parity[p][pos]) != want[p] {
					t.Fatalf("kind=%v: region encode mismatch at parity %d pos %d", kind, p, pos)
				}
			}
		}
	}
}

func TestReconstructRegions(t *testing.T) {
	f := gf.Get(8)
	c, err := NewCauchy(f, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const regionLen = 128
	regions := make([][]byte, 6)
	for i := 0; i < 4; i++ {
		regions[i] = make([]byte, regionLen)
		rng.Read(regions[i])
	}
	regions[4] = make([]byte, regionLen)
	regions[5] = make([]byte, regionLen)
	if err := c.EncodeRegions(regions[:4], regions[4:]); err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, 6)
	for i := range orig {
		orig[i] = append([]byte{}, regions[i]...)
	}
	// Lose data region 1 and parity region 5.
	present := []bool{true, false, true, true, true, false}
	gf.Zero(regions[1])
	gf.Zero(regions[5])
	if err := c.ReconstructRegions(regions, present); err != nil {
		t.Fatal(err)
	}
	for i := range regions {
		if !bytes.Equal(regions[i], orig[i]) {
			t.Fatalf("region %d not reconstructed", i)
		}
	}
}

func TestSolveCoeffsIdentityOnKnownPosition(t *testing.T) {
	f := gf.Get(8)
	c, _ := NewCauchy(f, 6, 4)
	// Reconstructing a position we already have must give the unit map.
	k, err := c.SolveCoeffs([]int{0, 1, 2, 3}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		want := uint32(0)
		if j == 2 {
			want = 1
		}
		if k.At(0, j) != want {
			t.Fatalf("coeff[0][%d] = %d, want %d", j, k.At(0, j), want)
		}
	}
}

func TestSolveCoeffsErrors(t *testing.T) {
	f := gf.Get(8)
	c, _ := NewCauchy(f, 6, 4)
	if _, err := c.SolveCoeffs([]int{0, 1, 2}, []int{4}); err == nil {
		t.Error("expected error with too few known positions")
	}
	if _, err := c.SolveCoeffs([]int{0, 1, 2, 9}, []int{4}); err == nil {
		t.Error("expected error with out-of-range position")
	}
	if _, err := c.SolveCoeffs([]int{0, 1, 2, 2}, []int{4}); err == nil {
		t.Error("expected error with duplicate positions")
	}
}

func TestReconstructTooManyErasures(t *testing.T) {
	f := gf.Get(8)
	c, _ := NewCauchy(f, 6, 4)
	cw := make([]uint32, 6)
	present := []bool{true, true, true, false, false, false}
	if err := c.Reconstruct(cw, present); err == nil {
		t.Error("expected error with eta-kappa+1 erasures")
	}
}

func TestDegenerateFullRateCode(t *testing.T) {
	f := gf.Get(8)
	c, err := NewCauchy(f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.EncodeSymbols([]uint32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 0 {
		t.Errorf("full-rate code produced %d parities", len(p))
	}
}

// TestCrowCcolShapes exercises the exact code shapes STAIR uses in the
// paper's exemplary configuration (§3): Crow=(11,6), Ccol=(6,4).
func TestCrowCcolShapes(t *testing.T) {
	f := gf.Get(8)
	crow, err := NewCauchy(f, 11, 6)
	if err != nil {
		t.Fatal(err)
	}
	ccol, err := NewCauchy(f, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if crow.Eta() != 11 || crow.Kappa() != 6 || ccol.Eta() != 6 || ccol.Kappa() != 4 {
		t.Error("unexpected shapes")
	}
}
