package matrix

import (
	"errors"
	"math/rand"
	"testing"

	"stair/internal/gf"
)

func randMatrix(f *gf.Field, rng *rand.Rand, rows, cols int) *Matrix {
	m := New(f, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, uint32(rng.Intn(f.Size())))
		}
	}
	return m
}

func TestIdentityMulIsNoop(t *testing.T) {
	f := gf.Get(8)
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(f, rng, 5, 7)
	i5 := Identity(f, 5)
	i7 := Identity(f, 7)
	if !i5.Mul(m).Equal(m) {
		t.Error("I·M != M")
	}
	if !m.Mul(i7).Equal(m) {
		t.Error("M·I != M")
	}
}

func TestInvertRoundtrip(t *testing.T) {
	for _, w := range []int{4, 8, 16} {
		f := gf.Get(w)
		rng := rand.New(rand.NewSource(int64(w)))
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(8)
			var m *Matrix
			// Retry until we draw an invertible matrix.
			for {
				m = randMatrix(f, rng, n, n)
				if m.Rank() == n {
					break
				}
			}
			inv, err := m.Invert()
			if err != nil {
				t.Fatalf("w=%d n=%d: unexpected Invert error: %v", w, n, err)
			}
			if !m.Mul(inv).Equal(Identity(f, n)) {
				t.Fatalf("w=%d n=%d: M·M^-1 != I", w, n)
			}
			if !inv.Mul(m).Equal(Identity(f, n)) {
				t.Fatalf("w=%d n=%d: M^-1·M != I", w, n)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	f := gf.Get(8)
	m := New(f, 3, 3)
	m.Set(0, 0, 1)
	m.Set(1, 0, 1) // rows 0 and 1 identical in column 0, zero elsewhere
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	f := gf.Get(8)
	if _, err := New(f, 2, 3).Invert(); err == nil {
		t.Error("expected error inverting non-square matrix")
	}
}

func TestMulAssociativity(t *testing.T) {
	f := gf.Get(8)
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(f, rng, 3, 4)
	b := randMatrix(f, rng, 4, 5)
	c := randMatrix(f, rng, 5, 2)
	if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
		t.Error("(AB)C != A(BC)")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := gf.Get(8)
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(f, rng, 4, 6)
	v := make([]uint32, 6)
	for i := range v {
		v[i] = uint32(rng.Intn(256))
	}
	// Represent v as a 6x1 matrix and compare.
	vm := New(f, 6, 1)
	for i, x := range v {
		vm.Set(i, 0, x)
	}
	want := m.Mul(vm)
	got := m.MulVec(v)
	for i := range got {
		if got[i] != want.At(i, 0) {
			t.Fatalf("MulVec[%d] = %d, want %d", i, got[i], want.At(i, 0))
		}
	}
}

func TestVecMulMatchesMul(t *testing.T) {
	f := gf.Get(8)
	rng := rand.New(rand.NewSource(8))
	m := randMatrix(f, rng, 4, 6)
	v := make([]uint32, 4)
	for i := range v {
		v[i] = uint32(rng.Intn(256))
	}
	vm := New(f, 1, 4)
	for i, x := range v {
		vm.Set(0, i, x)
	}
	want := vm.Mul(m)
	got := m.VecMul(v)
	for j := range got {
		if got[j] != want.At(0, j) {
			t.Fatalf("VecMul[%d] = %d, want %d", j, got[j], want.At(0, j))
		}
	}
}

// TestCauchySubmatricesInvertible is the MDS-enabling property: every
// square submatrix of a Cauchy matrix is invertible.
func TestCauchySubmatricesInvertible(t *testing.T) {
	f := gf.Get(8)
	xs := []uint32{10, 11, 12, 13}
	ys := []uint32{0, 1, 2, 3, 4}
	c, err := Cauchy(f, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(4)
		rows := rng.Perm(len(ys))[:k]
		cols := rng.Perm(len(xs))[:k]
		sub := c.SelectRows(rows).SelectCols(cols)
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("Cauchy %dx%d submatrix rows=%v cols=%v singular", k, k, rows, cols)
		}
	}
}

func TestCauchyRejectsDuplicatePoints(t *testing.T) {
	f := gf.Get(8)
	if _, err := Cauchy(f, []uint32{1, 2}, []uint32{2, 3}); err == nil {
		t.Error("expected error for overlapping xs/ys")
	}
	if _, err := Cauchy(f, []uint32{1, 1}, []uint32{2, 3}); err == nil {
		t.Error("expected error for duplicate xs")
	}
}

func TestVandermondeShape(t *testing.T) {
	f := gf.Get(8)
	v, err := Vandermonde(f, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if v.At(i, 0) != 1 {
			t.Errorf("V[%d][0] = %d, want 1", i, v.At(i, 0))
		}
		if v.At(i, 1) != uint32(i) {
			t.Errorf("V[%d][1] = %d, want %d", i, v.At(i, 1), i)
		}
	}
}

func TestVandermondeTooManyPoints(t *testing.T) {
	f := gf.Get(4)
	if _, err := Vandermonde(f, 17, 3); err == nil {
		t.Error("expected error for rows > field size")
	}
}

func TestSystematicFromVandermonde(t *testing.T) {
	for _, w := range []int{8, 16} {
		f := gf.Get(w)
		for _, shape := range []struct{ eta, kappa int }{
			{6, 4}, {11, 6}, {10, 1}, {5, 5}, {20, 13},
		} {
			g, err := SystematicFromVandermonde(f, shape.eta, shape.kappa)
			if err != nil {
				t.Fatalf("w=%d shape=%v: %v", w, shape, err)
			}
			// Top block must be identity.
			for i := 0; i < shape.kappa; i++ {
				for j := 0; j < shape.kappa; j++ {
					want := uint32(0)
					if i == j {
						want = 1
					}
					if g.At(i, j) != want {
						t.Fatalf("w=%d shape=%v: top block not identity at (%d,%d)", w, shape, i, j)
					}
				}
			}
			// Every kappa-row subset must be invertible (spot check).
			rng := rand.New(rand.NewSource(int64(w + shape.eta)))
			for trial := 0; trial < 30; trial++ {
				rows := rng.Perm(shape.eta)[:shape.kappa]
				if _, err := g.SelectRows(rows).Invert(); err != nil {
					t.Fatalf("w=%d shape=%v rows=%v: submatrix singular (not MDS)", w, shape, rows)
				}
			}
		}
	}
}

func TestRank(t *testing.T) {
	f := gf.Get(8)
	if got := Identity(f, 4).Rank(); got != 4 {
		t.Errorf("rank(I4) = %d", got)
	}
	z := New(f, 3, 3)
	if got := z.Rank(); got != 0 {
		t.Errorf("rank(0) = %d", got)
	}
	m := New(f, 3, 3)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2) // duplicate row
	m.Set(2, 2, 5)
	if got := m.Rank(); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
}

func TestSelectRowsCols(t *testing.T) {
	f := gf.Get(8)
	m := New(f, 3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, uint32(10*i+j))
		}
	}
	r := m.SelectRows([]int{2, 0})
	if r.At(0, 1) != 21 || r.At(1, 2) != 2 {
		t.Error("SelectRows wrong content")
	}
	c := m.SelectCols([]int{1})
	if c.Rows() != 3 || c.Cols() != 1 || c.At(2, 0) != 21 {
		t.Error("SelectCols wrong content")
	}
}

func TestConcatCols(t *testing.T) {
	f := gf.Get(8)
	a := Identity(f, 2)
	b := New(f, 2, 1)
	b.Set(0, 0, 7)
	b.Set(1, 0, 9)
	m := a.ConcatCols(b)
	if m.Cols() != 3 || m.At(0, 2) != 7 || m.At(1, 2) != 9 || m.At(1, 1) != 1 {
		t.Errorf("ConcatCols wrong content:\n%v", m)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := gf.Get(8)
	m := Identity(f, 2)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestStringSmoke(t *testing.T) {
	f := gf.Get(8)
	if s := Identity(f, 2).String(); s == "" {
		t.Error("empty String()")
	}
}
