// Package matrix implements dense matrix algebra over GF(2^w), the
// linear-algebra substrate for the Reed-Solomon codes that STAIR codes
// are built from (paper §2-§3).
//
// Matrices are small (dimensions bounded by stripe geometry, at most a
// few hundred), so the implementation favours clarity over blocking or
// cache tricks: Gauss-Jordan inversion, naive multiplication.
package matrix

import (
	"errors"
	"fmt"

	"stair/internal/gf"
)

// ErrSingular is returned when a matrix that must be inverted has no
// inverse.
var ErrSingular = errors.New("matrix: singular matrix")

// Matrix is a dense rows×cols matrix over a Galois field. The zero value
// is not usable; construct with New or one of the builders.
type Matrix struct {
	f    *gf.Field
	rows int
	cols int
	data []uint32 // row-major
}

// New returns a zero rows×cols matrix over field f.
func New(f *gf.Field, rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{f: f, rows: rows, cols: cols, data: make([]uint32, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(f *gf.Field, n int) *Matrix {
	m := New(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Cauchy builds the |ys|×|xs| Cauchy matrix A with A[i][j] = 1/(xs[j]+ys[i]).
// All xs and ys values must be distinct field elements (xs[j] != ys[i] for
// every pair), which guarantees every square submatrix is invertible — the
// property that makes Cauchy Reed-Solomon codes MDS.
func Cauchy(f *gf.Field, xs, ys []uint32) (*Matrix, error) {
	seen := make(map[uint32]bool, len(xs)+len(ys))
	for _, v := range append(append([]uint32{}, xs...), ys...) {
		if seen[v] {
			return nil, fmt.Errorf("matrix: Cauchy points not distinct (duplicate %d)", v)
		}
		seen[v] = true
	}
	m := New(f, len(ys), len(xs))
	for i, y := range ys {
		for j, x := range xs {
			m.Set(i, j, f.Inv(f.Add(x, y)))
		}
	}
	return m, nil
}

// Vandermonde builds the rows×cols matrix V with V[i][j] = i^j (the i-th
// evaluation point raised to the column power), using points 0..rows-1.
// Requires rows ≤ field size.
func Vandermonde(f *gf.Field, rows, cols int) (*Matrix, error) {
	if rows > f.Size() {
		return nil, fmt.Errorf("matrix: Vandermonde needs %d distinct points but field has %d elements", rows, f.Size())
	}
	m := New(f, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, f.Exp(uint32(i), j))
		}
	}
	return m, nil
}

// Field returns the field the matrix is defined over.
func (m *Matrix) Field() *gf.Field { return m.f }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) uint32 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v uint32) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.f, m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical dimensions and data.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// Mul returns m·o. Panics on dimension mismatch (programming error).
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	r := New(m.f, m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.cols; j++ {
				if b := o.At(k, j); b != 0 {
					r.data[i*o.cols+j] ^= m.f.Mul(a, b)
				}
			}
		}
	}
	return r
}

// MulVec returns m·v for a column vector v (len = cols).
func (m *Matrix) MulVec(v []uint32) []uint32 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: vector length %d != cols %d", len(v), m.cols))
	}
	out := make([]uint32, m.rows)
	for i := 0; i < m.rows; i++ {
		var acc uint32
		for j, x := range v {
			if a := m.At(i, j); a != 0 && x != 0 {
				acc ^= m.f.Mul(a, x)
			}
		}
		out[i] = acc
	}
	return out
}

// VecMul returns v·m for a row vector v (len = rows).
func (m *Matrix) VecMul(v []uint32) []uint32 {
	if len(v) != m.rows {
		panic(fmt.Sprintf("matrix: vector length %d != rows %d", len(v), m.rows))
	}
	out := make([]uint32, m.cols)
	for i, x := range v {
		if x == 0 {
			continue
		}
		for j := 0; j < m.cols; j++ {
			if a := m.At(i, j); a != 0 {
				out[j] ^= m.f.Mul(x, a)
			}
		}
	}
	return out
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(m.f, n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		// Scale pivot row to make the pivot 1.
		p := a.At(col, col)
		if p != 1 {
			pinv := m.f.Inv(p)
			a.scaleRow(col, pinv)
			inv.scaleRow(col, pinv)
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := a.At(r, col)
			if factor == 0 {
				continue
			}
			a.addScaledRow(r, col, factor)
			inv.addScaledRow(r, col, factor)
		}
	}
	return inv, nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func (m *Matrix) scaleRow(i int, c uint32) {
	row := m.data[i*m.cols : (i+1)*m.cols]
	for k, v := range row {
		row[k] = m.f.Mul(v, c)
	}
}

// addScaledRow does row[dst] ^= c·row[src].
func (m *Matrix) addScaledRow(dst, src int, c uint32) {
	rd := m.data[dst*m.cols : (dst+1)*m.cols]
	rs := m.data[src*m.cols : (src+1)*m.cols]
	for k, v := range rs {
		if v != 0 {
			rd[k] ^= m.f.Mul(c, v)
		}
	}
}

// Rank returns the rank of the matrix (row echelon reduction on a copy).
func (m *Matrix) Rank() int {
	a := m.Clone()
	rank := 0
	for col := 0; col < a.cols && rank < a.rows; col++ {
		pivot := -1
		for r := rank; r < a.rows; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a.swapRows(pivot, rank)
		pinv := a.f.Inv(a.At(rank, col))
		a.scaleRow(rank, pinv)
		for r := 0; r < a.rows; r++ {
			if r != rank && a.At(r, col) != 0 {
				a.addScaledRow(r, rank, a.At(r, col))
			}
		}
		rank++
	}
	return rank
}

// SelectRows returns a new matrix made of the given rows of m, in order.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	r := New(m.f, len(rows), m.cols)
	for i, src := range rows {
		copy(r.data[i*m.cols:(i+1)*m.cols], m.data[src*m.cols:(src+1)*m.cols])
	}
	return r
}

// SelectCols returns a new matrix made of the given columns of m, in order.
func (m *Matrix) SelectCols(cols []int) *Matrix {
	r := New(m.f, m.rows, len(cols))
	for i := 0; i < m.rows; i++ {
		for j, src := range cols {
			r.Set(i, j, m.At(i, src))
		}
	}
	return r
}

// ConcatCols returns [m | o] (horizontal concatenation).
func (m *Matrix) ConcatCols(o *Matrix) *Matrix {
	if m.rows != o.rows {
		panic("matrix: ConcatCols row mismatch")
	}
	r := New(m.f, m.rows, m.cols+o.cols)
	for i := 0; i < m.rows; i++ {
		copy(r.data[i*r.cols:], m.data[i*m.cols:(i+1)*m.cols])
		copy(r.data[i*r.cols+m.cols:], o.data[i*o.cols:(i+1)*o.cols])
	}
	return r
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%3d", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// SystematicFromVandermonde builds an eta×kappa matrix whose top kappa×kappa
// block is the identity and whose every kappa-row subset is invertible.
// This is the classic Plank construction for systematic Reed-Solomon
// generator matrices: start from an eta×kappa Vandermonde matrix (distinct
// evaluation points, so every kappa×kappa submatrix is invertible) and
// apply elementary column operations — which preserve that property — to
// reduce the top block to the identity.
func SystematicFromVandermonde(f *gf.Field, eta, kappa int) (*Matrix, error) {
	if kappa <= 0 || eta < kappa {
		return nil, fmt.Errorf("matrix: invalid code shape eta=%d kappa=%d", eta, kappa)
	}
	v, err := Vandermonde(f, eta, kappa)
	if err != nil {
		return nil, err
	}
	// Column-reduce the top kappa×kappa block to the identity.
	for col := 0; col < kappa; col++ {
		// Ensure v[col][col] != 0 by swapping columns if needed.
		if v.At(col, col) == 0 {
			swapped := false
			for c2 := col + 1; c2 < kappa; c2++ {
				if v.At(col, c2) != 0 {
					v.swapCols(col, c2)
					swapped = true
					break
				}
			}
			if !swapped {
				return nil, ErrSingular
			}
		}
		// Scale the column so the diagonal is 1.
		pinv := f.Inv(v.At(col, col))
		v.scaleCol(col, pinv)
		// Eliminate row `col` from all other columns.
		for c2 := 0; c2 < kappa; c2++ {
			if c2 == col {
				continue
			}
			factor := v.At(col, c2)
			if factor != 0 {
				v.addScaledCol(c2, col, factor)
			}
		}
	}
	return v, nil
}

func (m *Matrix) swapCols(i, j int) {
	for r := 0; r < m.rows; r++ {
		vi, vj := m.At(r, i), m.At(r, j)
		m.Set(r, i, vj)
		m.Set(r, j, vi)
	}
}

func (m *Matrix) scaleCol(j int, c uint32) {
	for r := 0; r < m.rows; r++ {
		m.Set(r, j, m.f.Mul(m.At(r, j), c))
	}
}

// addScaledCol does col[dst] ^= c·col[src].
func (m *Matrix) addScaledCol(dst, src int, c uint32) {
	for r := 0; r < m.rows; r++ {
		v := m.At(r, src)
		if v != 0 {
			m.Set(r, dst, m.At(r, dst)^m.f.Mul(c, v))
		}
	}
}
