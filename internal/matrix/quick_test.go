package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stair/internal/gf"
)

// TestQuickInverseProperty: every full-rank random matrix inverts, and
// the inverse multiplies back to the identity.
func TestQuickInverseProperty(t *testing.T) {
	f := gf.Get(8)
	property := func(sizeRaw uint8, seed int64) bool {
		n := 1 + int(sizeRaw)%7
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(f, rng, n, n)
		inv, err := m.Invert()
		if err != nil {
			// Singular draws are legitimate; verify via rank.
			return m.Rank() < n
		}
		return m.Mul(inv).Equal(Identity(f, n)) && m.Rank() == n
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickMulDistributesOverXOR: matrix multiplication is linear over
// entrywise XOR of the right operand.
func TestQuickMulDistributesOverXOR(t *testing.T) {
	f := gf.Get(8)
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(f, rng, 3, 4)
		b := randMatrix(f, rng, 4, 2)
		c := randMatrix(f, rng, 4, 2)
		bc := New(f, 4, 2)
		for i := 0; i < 4; i++ {
			for j := 0; j < 2; j++ {
				bc.Set(i, j, b.At(i, j)^c.At(i, j))
			}
		}
		left := a.Mul(bc)
		ab, ac := a.Mul(b), a.Mul(c)
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				if left.At(i, j) != ab.At(i, j)^ac.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRankBounds: rank never exceeds min(rows, cols) and is
// invariant under transpose-free row selection reorderings.
func TestQuickRankBounds(t *testing.T) {
	f := gf.Get(8)
	property := func(rRaw, cRaw uint8, seed int64) bool {
		rows := 1 + int(rRaw)%6
		cols := 1 + int(cRaw)%6
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(f, rng, rows, cols)
		rank := m.Rank()
		if rank < 0 || rank > rows || rank > cols {
			return false
		}
		// Permuting rows preserves rank.
		perm := rng.Perm(rows)
		if m.SelectRows(perm).Rank() != rank {
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
