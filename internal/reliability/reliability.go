// Package reliability implements the STAIR paper's analytical reliability
// models (§7): the MTTDL system model built on a Markov chain for a
// storage array in critical mode (Eqs. 7-11), sector failure models —
// independent (Eq. 13) and correlated bursts (Eqs. 14-17) — and the
// stripe-level unrecoverability probability Pstr, both as the paper's
// closed forms for specific coverage vectors (Appendix B, Eqs. 18-26)
// and as a general enumerator valid for any e.
package reliability

import (
	"fmt"
	"math"

	"stair/internal/failures"
)

// SystemParams mirrors §7.2's storage-system configuration. All byte
// quantities use binary units upstream (the paper's 10PB = 10·2^50 B).
type SystemParams struct {
	UserData     float64 // U: total user data (bytes)
	Capacity     float64 // C: device capacity (bytes)
	SectorSize   float64 // S: sector size (bytes), typically 512
	MTTFHours    float64 // 1/λ: mean time to device failure
	RebuildHours float64 // 1/µ: mean rebuild time in critical mode
	N            int     // devices per array
	R            int     // sectors per chunk
	M            int     // chunk-failure tolerance (the model assumes M = 1)
}

// DefaultParams returns the §7.2 configuration: U=10PB, C=300GB SATA,
// S=512B, 1/λ=500000h, 1/µ=17.8h, n=8, r=16, m=1.
func DefaultParams() SystemParams {
	return SystemParams{
		UserData:     10 * math.Pow(2, 50),
		Capacity:     300 * math.Pow(2, 30),
		SectorSize:   512,
		MTTFHours:    500000,
		RebuildHours: 17.8,
		N:            8,
		R:            16,
		M:            1,
	}
}

// Efficiency is the storage efficiency of Eq. 8: (r(n−m)−s)/(r·n).
// s = 0 gives Reed-Solomon; SD codes with equal s match exactly.
func Efficiency(n, r, m, s int) float64 {
	return float64(r*(n-m)-s) / float64(r*n)
}

// Narr is Eq. 7: the number of arrays needed to hold U bytes of user
// data at the given storage efficiency.
func Narr(p SystemParams, efficiency float64) int {
	return int(math.Ceil(p.UserData / efficiency / (p.Capacity * float64(p.N))))
}

// StripesPerArray is ⌊C/(S·r)⌋ (Eq. 11's stripe count).
func StripesPerArray(p SystemParams) float64 {
	return math.Floor(p.Capacity / (p.SectorSize * float64(p.R)))
}

// Parr is Eq. 11: the probability that an array in critical mode has an
// unrecoverable stripe, computed stably as 1−(1−Pstr)^stripes.
func Parr(stripes, pstr float64) float64 {
	if pstr <= 0 {
		return 0
	}
	if pstr >= 1 {
		return 1
	}
	return -math.Expm1(stripes * math.Log1p(-pstr))
}

// MTTDLArr is Eq. 10: the Markov-model MTTDL of one array with m = 1.
func MTTDLArr(n int, lambda, mu, parr float64) float64 {
	num := float64(2*n-1)*lambda + mu
	den := float64(n) * lambda * (float64(n-1)*lambda + mu*parr)
	return num / den
}

// MTTDLSys is Eq. 9: system MTTDL across Narr independent arrays.
func MTTDLSys(mttdlArr float64, narr int) float64 {
	return mttdlArr / float64(narr)
}

// PsecFromPbit is Eq. 12: sector failure probability from the
// unrecoverable bit error rate, computed exactly.
func PsecFromPbit(pbit, sectorBytes float64) float64 {
	return -math.Expm1(sectorBytes * 8 * math.Log1p(-pbit))
}

// ChunkModel yields Pchk(i): the probability a chunk suffers exactly i
// sector failures (§7.1.1).
type ChunkModel interface {
	Pchk(i int) float64
	R() int
}

// Independent is the independent sector-failure model (Eq. 13):
// Pchk(i) = C(r,i)·Psec^i·(1−Psec)^{r−i}.
type Independent struct {
	Psec float64
	Rval int
}

// R returns the chunk size in sectors.
func (m Independent) R() int { return m.Rval }

// Pchk returns the binomial probability of exactly i sector failures.
func (m Independent) Pchk(i int) float64 {
	if i < 0 || i > m.Rval {
		return 0
	}
	return binomCoeff(m.Rval, i) * math.Pow(m.Psec, float64(i)) * math.Pow(1-m.Psec, float64(m.Rval-i))
}

// Correlated is the correlated (bursty) model of Eqs. 14-17: bursts
// start at a sector with probability Psec/B and have length distribution
// Dist; Pchk(0) = (1−Psec/B)^r and Pchk(i) = b_i·r·Psec/B for i ≥ 1.
type Correlated struct {
	Psec float64
	Dist *failures.BurstDist
}

// R returns the chunk size in sectors.
func (m Correlated) R() int { return m.Dist.MaxLen }

// Pchk returns the bursty-model probability of exactly i sector failures.
func (m Correlated) Pchk(i int) float64 {
	b := m.Dist.Mean()
	r := float64(m.Dist.MaxLen)
	switch {
	case i == 0:
		return math.Pow(1-m.Psec/b, r)
	case i >= 1 && i <= m.Dist.MaxLen:
		return m.Dist.P(i) * r * m.Psec / b
	default:
		return 0
	}
}

func binomCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// CoverageFunc reports whether a stripe in critical mode survives when
// the surviving chunks' nonzero sector-failure counts are the given
// ascending multiset. It must be monotone: adding failures or enlarging
// any count never turns an uncovered pattern covered.
type CoverageFunc func(ascCounts []int) bool

// StairCoverage returns the coverage predicate of a STAIR code with
// vector e: at most len(e) chunks fail, and the ascending counts fit
// under e's largest slots.
func StairCoverage(e []int) CoverageFunc {
	ecopy := append([]int{}, e...)
	return func(counts []int) bool {
		k := len(counts)
		if k > len(ecopy) {
			return false
		}
		off := len(ecopy) - k
		for i, c := range counts {
			if c > ecopy[off+i] {
				return false
			}
		}
		return true
	}
}

// SDCoverage returns the SD-code predicate: at most s total failures.
func SDCoverage(s int) CoverageFunc {
	return func(counts []int) bool {
		total := 0
		for _, c := range counts {
			total += c
		}
		return total <= s
	}
}

// RSCoverage tolerates no sector failures beyond the m failed devices.
func RSCoverage() CoverageFunc {
	return func(counts []int) bool { return len(counts) == 0 }
}

// IDRCoverage tolerates up to eps failures in every chunk independently.
func IDRCoverage(eps int) CoverageFunc {
	return func(counts []int) bool {
		for _, c := range counts {
			if c > eps {
				return false
			}
		}
		return true
	}
}

// Pstr computes the probability that a stripe in critical mode (its m
// failed chunks already set aside) is unrecoverable: one minus the total
// probability of all covered failure patterns across the nChunks
// surviving chunks. The enumeration walks ascending count multisets,
// pruning on the monotone coverage predicate, and weights each multiset
// by the number of chunk assignments realising it.
func Pstr(nChunks int, model ChunkModel, covers CoverageFunc) float64 {
	p0 := model.Pchk(0)
	r := model.R()
	recoverable := 0.0
	counts := make([]int, 0, nChunks)
	var dfs func(minVal int, prod float64)
	dfs = func(minVal int, prod float64) {
		k := len(counts)
		recoverable += multiplicity(nChunks, counts) * prod * math.Pow(p0, float64(nChunks-k))
		if k == nChunks {
			return
		}
		for v := minVal; v <= r; v++ {
			counts = append(counts, v)
			ok := covers(counts)
			if ok {
				dfs(v, prod*model.Pchk(v))
			}
			counts = counts[:k]
			if !ok {
				break // monotone: larger v cannot become covered
			}
		}
	}
	dfs(1, 1)
	u := 1 - recoverable
	if u < 0 {
		return 0
	}
	return u
}

// multiplicity counts the assignments of the ascending count multiset to
// nChunks distinct chunks: n!/((n−k)!·∏ mult_v!).
func multiplicity(nChunks int, counts []int) float64 {
	k := len(counts)
	res := 1.0
	for i := 0; i < k; i++ {
		res *= float64(nChunks - i)
	}
	run := 1
	for i := 1; i <= k; i++ {
		if i < k && counts[i] == counts[i-1] {
			run++
			continue
		}
		for f := 2; f <= run; f++ {
			res /= float64(f)
		}
		run = 1
	}
	return res
}

// CodeSpec identifies an erasure code for system-level evaluation.
type CodeSpec struct {
	// Kind is "rs", "stair", "sd" or "idr".
	Kind string
	// E is the STAIR coverage vector (Kind == "stair").
	E []int
	// S is the sector-failure tolerance for SD, or ϵ per chunk for IDR.
	S int
}

func (cs CodeSpec) String() string {
	switch cs.Kind {
	case "stair":
		return fmt.Sprintf("STAIR e=%v", cs.E)
	case "sd":
		return fmt.Sprintf("SD s=%d", cs.S)
	case "idr":
		return fmt.Sprintf("IDR ϵ=%d", cs.S)
	default:
		return "RS"
	}
}

// sectors returns the per-stripe parity sectors beyond the m chunks,
// used for storage efficiency.
func (cs CodeSpec) sectors(p SystemParams) int {
	switch cs.Kind {
	case "stair":
		s := 0
		for _, v := range cs.E {
			s += v
		}
		return s
	case "sd":
		return cs.S
	case "idr":
		return cs.S * (p.N - p.M)
	default:
		return 0
	}
}

func (cs CodeSpec) coverage() CoverageFunc {
	switch cs.Kind {
	case "stair":
		return StairCoverage(cs.E)
	case "sd":
		return SDCoverage(cs.S)
	case "idr":
		return IDRCoverage(cs.S)
	default:
		return RSCoverage()
	}
}

// SystemMTTDL evaluates the full pipeline of §7.1 for one code and one
// sector-failure model: Pstr → Parr → MTTDL_arr → MTTDL_sys.
func SystemMTTDL(p SystemParams, spec CodeSpec, model ChunkModel) float64 {
	pstr := Pstr(p.N-p.M, model, spec.coverage())
	parr := Parr(StripesPerArray(p), pstr)
	lambda := 1 / p.MTTFHours
	mu := 1 / p.RebuildHours
	arr := MTTDLArr(p.N, lambda, mu, parr)
	narr := Narr(p, Efficiency(p.N, p.R, p.M, spec.sectors(p)))
	return MTTDLSys(arr, narr)
}
