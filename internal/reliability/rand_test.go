package reliability

import "math/rand"

// newTestRand returns a seeded PRNG for Monte-Carlo cross-checks.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
