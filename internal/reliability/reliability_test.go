package reliability

import (
	"math"
	"testing"

	"stair/internal/failures"
)

// almostEqual compares with a relative tolerance plus an absolute floor
// of 1e-13: Pstr values are computed as 1−Σ(recoverable) and both the
// closed forms and the enumerator bottom out at double-precision noise
// (~1e-16 per term) when the true probability is smaller than that.
func almostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) < rel*denom+1e-13
}

// TestNarrTableSection72 pins the paper's §7.2 table of Narr values for
// s = 0..12 with U=10PB, C=300GB, n=8, r=16, m=1 (binary units).
func TestNarrTableSection72(t *testing.T) {
	p := DefaultParams()
	want := []int{4994, 5039, 5085, 5131, 5179, 5227, 5276, 5327, 5378, 5430, 5483, 5538, 5593}
	for s, w := range want {
		got := Narr(p, Efficiency(p.N, p.R, p.M, s))
		if got != w {
			t.Errorf("Narr(s=%d) = %d, want %d", s, got, w)
		}
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(8, 16, 1, 0); got != 112.0/128 {
		t.Errorf("RS efficiency = %v", got)
	}
	if got := Efficiency(8, 16, 1, 4); got != 108.0/128 {
		t.Errorf("s=4 efficiency = %v", got)
	}
}

func TestPsecFromPbit(t *testing.T) {
	// Eq. 12 approximation: Psec ≈ S·8·Pbit for small Pbit.
	got := PsecFromPbit(1e-14, 512)
	want := 512 * 8 * 1e-14
	if !almostEqual(got, want, 1e-6) {
		t.Errorf("Psec = %v, want ≈ %v", got, want)
	}
}

func TestParrStability(t *testing.T) {
	// Tiny Pstr with many stripes must not underflow to 0.
	got := Parr(3.93e7, 1e-9)
	if got <= 0 || got >= 1 {
		t.Errorf("Parr = %v", got)
	}
	// The direct power loses ~2e-9 of relative accuracy to the rounding
	// of 1−Pstr before the exponentiation; the expm1/log1p form is the
	// more accurate of the two.
	if !almostEqual(got, 1-math.Pow(1-1e-9, 3.93e7), 1e-7) {
		t.Error("Parr disagrees with direct power")
	}
	if Parr(1e7, 0) != 0 || Parr(1e7, 1) != 1 {
		t.Error("Parr boundary cases wrong")
	}
}

func TestMTTDLArrSanity(t *testing.T) {
	// With Parr → 0 the array MTTDL approaches the classic RAID-5 form
	// ((2n−1)λ+µ)/(n(n−1)λ²); with Parr = 1 it is much smaller.
	lambda, mu := 1/500000.0, 1/17.8
	hi := MTTDLArr(8, lambda, mu, 0)
	lo := MTTDLArr(8, lambda, mu, 1)
	if hi <= lo {
		t.Errorf("MTTDL should decrease with Parr: %v vs %v", hi, lo)
	}
	classic := (15*lambda + mu) / (8 * 7 * lambda * lambda)
	if !almostEqual(hi, classic, 1e-12) {
		t.Errorf("Parr=0 MTTDL %v, want %v", hi, classic)
	}
}

func independentModel(pbit float64, p SystemParams) Independent {
	return Independent{Psec: PsecFromPbit(pbit, p.SectorSize), Rval: p.R}
}

func correlatedModel(t *testing.T, pbit, b1, alpha float64, p SystemParams) Correlated {
	t.Helper()
	d, err := failures.NewBurstDist(b1, alpha, p.R)
	if err != nil {
		t.Fatal(err)
	}
	return Correlated{Psec: PsecFromPbit(pbit, p.SectorSize), Dist: d}
}

// TestClosedFormsMatchEnumerator cross-validates every Appendix-B closed
// form against the general Pstr enumerator, under both failure models.
func TestClosedFormsMatchEnumerator(t *testing.T) {
	p := DefaultParams()
	nm := p.N - p.M
	models := map[string]ChunkModel{
		"independent": independentModel(1e-12, p),
		"correlated":  correlatedModel(t, 1e-12, 0.98, 1.79, p),
	}
	for name, model := range models {
		t.Run(name, func(t *testing.T) {
			if got, want := Pstr(nm, model, RSCoverage()), PstrRSClosed(nm, model); !almostEqual(got, want, 1e-6) {
				t.Errorf("RS: enumerator %v, closed %v", got, want)
			}
			for s := 1; s <= 6; s++ {
				got := Pstr(nm, model, StairCoverage([]int{s}))
				want := PstrStairSClosed(nm, s, model)
				if !almostEqual(got, want, 1e-6) {
					t.Errorf("e=(%d): enumerator %v, closed %v", s, got, want)
				}
			}
			for s := 2; s <= 6; s++ {
				got := Pstr(nm, model, StairCoverage([]int{1, s - 1}))
				want := PstrStair1Sm1Closed(nm, s, model)
				if !almostEqual(got, want, 1e-6) {
					t.Errorf("e=(1,%d): enumerator %v, closed %v", s-1, got, want)
				}
			}
			for s := 4; s <= 8; s++ {
				got := Pstr(nm, model, StairCoverage([]int{2, s - 2}))
				want := PstrStair2Sm2Closed(nm, s, model)
				if !almostEqual(got, want, 1e-6) {
					t.Errorf("e=(2,%d): enumerator %v, closed %v", s-2, got, want)
				}
			}
			for s := 3; s <= 6; s++ {
				got := Pstr(nm, model, StairCoverage([]int{1, 1, s - 2}))
				want := PstrStair11Sm2Closed(nm, s, model)
				if !almostEqual(got, want, 1e-6) {
					t.Errorf("e=(1,1,%d): enumerator %v, closed %v", s-2, got, want)
				}
			}
			for s := 1; s <= 5; s++ {
				e := make([]int, s)
				for i := range e {
					e[i] = 1
				}
				got := Pstr(nm, model, StairCoverage(e))
				want := PstrStairAllOnesClosed(nm, s, model)
				if !almostEqual(got, want, 1e-6) {
					t.Errorf("e=ones(%d): enumerator %v, closed %v", s, got, want)
				}
			}
			if got, want := Pstr(nm, model, SDCoverage(1)), PstrSD1Closed(nm, model); !almostEqual(got, want, 1e-6) {
				t.Errorf("SD1: enumerator %v, closed %v", got, want)
			}
			if got, want := Pstr(nm, model, SDCoverage(2)), PstrSD2Closed(nm, model); !almostEqual(got, want, 1e-6) {
				t.Errorf("SD2: enumerator %v, closed %v", got, want)
			}
			if got, want := Pstr(nm, model, SDCoverage(3)), PstrSD3Closed(nm, model); !almostEqual(got, want, 1e-6) {
				t.Errorf("SD3: enumerator %v, closed %v", got, want)
			}
		})
	}
}

// TestFig17Shapes checks the qualitative claims of Figure 17
// (independent sector failures).
func TestFig17Shapes(t *testing.T) {
	p := DefaultParams()

	// At Pbit = 1e-14, STAIR/SD s=1 beat RS by more than two orders of
	// magnitude.
	model := independentModel(1e-14, p)
	rs := SystemMTTDL(p, CodeSpec{Kind: "rs"}, model)
	stair1 := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{1}}, model)
	if stair1 < 100*rs {
		t.Errorf("s=1 improvement only %.1fx (want >100x): rs=%v stair=%v", stair1/rs, rs, stair1)
	}

	// STAIR e=(1) and SD s=1 are the same code (§2).
	sd1 := SystemMTTDL(p, CodeSpec{Kind: "sd", S: 1}, model)
	if !almostEqual(stair1, sd1, 1e-9) {
		t.Errorf("STAIR e=(1) %v != SD s=1 %v", stair1, sd1)
	}

	// Fig 17(b): among s=3 configurations, e=(1,2) is the most reliable
	// under independent failures at high Pbit.
	hi := independentModel(1e-11, p)
	e12 := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{1, 2}}, hi)
	e3 := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{3}}, hi)
	e111 := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{1, 1, 1}}, hi)
	if !(e12 > e3 && e12 > e111) {
		t.Errorf("e=(1,2)=%v should beat e=(3)=%v and e=(1,1,1)=%v", e12, e3, e111)
	}

	// Reliability is non-increasing in Pbit and strictly falls before
	// the Markov model saturates at Parr = 1 (where MTTDL_arr bottoms
	// out near 1/(nλ) — the flat right end of Figure 17's curves).
	prev := math.Inf(1)
	for _, pbit := range []float64{1e-14, 1e-13, 1e-12, 1e-11, 1e-10} {
		v := SystemMTTDL(p, CodeSpec{Kind: "rs"}, independentModel(pbit, p))
		if v > prev*(1+1e-12) {
			t.Errorf("RS MTTDL increased with Pbit: %v -> %v", prev, v)
		}
		prev = v
	}
	atLow := SystemMTTDL(p, CodeSpec{Kind: "rs"}, independentModel(1e-14, p))
	atMid := SystemMTTDL(p, CodeSpec{Kind: "rs"}, independentModel(1e-12, p))
	if atMid >= atLow {
		t.Errorf("RS MTTDL should fall between 1e-14 (%v) and 1e-12 (%v)", atLow, atMid)
	}
}

// TestFig18Shapes checks the correlated-burst claims (b1=0.98, α=1.79).
func TestFig18Shapes(t *testing.T) {
	p := DefaultParams()
	model := correlatedModel(t, 1e-14, 0.98, 1.79, p)

	// STAIR/SD s=1 beat RS by more than one order of magnitude.
	rs := SystemMTTDL(p, CodeSpec{Kind: "rs"}, model)
	stair1 := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{1}}, model)
	if stair1 < 10*rs {
		t.Errorf("s=1 improvement only %.1fx (want >10x)", stair1/rs)
	}

	// STAIR e=(e0..em'-1) has almost the same reliability as SD with
	// s=e_max: compare e=(1,2) vs SD s=2 and e=(3) vs SD s=3.
	e12 := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{1, 2}}, model)
	sd2 := SystemMTTDL(p, CodeSpec{Kind: "sd", S: 2}, model)
	if !almostEqual(e12, sd2, 0.15) {
		t.Errorf("e=(1,2)=%v should be close to SD s=2=%v", e12, sd2)
	}
	e3 := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{3}}, model)
	sd3 := SystemMTTDL(p, CodeSpec{Kind: "sd", S: 3}, model)
	if !almostEqual(e3, sd3, 0.15) {
		t.Errorf("e=(3)=%v should be close to SD s=3=%v", e3, sd3)
	}

	// Among equal-s configurations, e=(s) is the most reliable under
	// bursts.
	e111 := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{1, 1, 1}}, model)
	if !(e3 >= e12 && e12 >= e111) {
		t.Errorf("burst ordering violated: e=(3)=%v e=(1,2)=%v e=(1,1,1)=%v", e3, e12, e111)
	}
}

// TestFig19Shapes checks the burst-length sensitivity claims.
func TestFig19Shapes(t *testing.T) {
	p := DefaultParams()

	// Very bursty failures (b1=0.9, α=1): e=(s) hugely outperforms
	// e=(1,s−1) for larger s.
	bursty := correlatedModel(t, 1e-12, 0.9, 1.0, p)
	for _, s := range []int{4, 8, 12} {
		es := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{s}}, bursty)
		e1s := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{1, s - 1}}, bursty)
		if es <= e1s {
			t.Errorf("bursty s=%d: e=(s)=%v should beat e=(1,s-1)=%v", s, es, e1s)
		}
	}

	// Nearly-independent failures (b1=0.9999, α=4): e=(1,s−1) can win
	// at high Pbit (the paper's observation for Pbit = 1e-10).
	benign := correlatedModel(t, 1e-10, 0.9999, 4.0, p)
	s := 8
	es := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{s}}, benign)
	e1s := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{1, s - 1}}, benign)
	if e1s <= es {
		t.Errorf("benign: e=(1,%d)=%v should beat e=(%d)=%v at Pbit=1e-10", s-1, e1s, s, es)
	}

	// Reliability of e=(s) grows with s under bursts.
	prev := 0.0
	for s := 1; s <= 12; s++ {
		v := SystemMTTDL(p, CodeSpec{Kind: "stair", E: []int{s}}, bursty)
		if v <= prev {
			t.Errorf("bursty: MTTDL(e=(%d))=%v did not grow (prev %v)", s, v, prev)
		}
		prev = v
	}
}

// TestBurstDistProperties validates the (b1, α) distribution machinery.
func TestBurstDistProperties(t *testing.T) {
	d, err := failures.NewBurstDist(0.98, 1.79, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.P(1); got != 0.98 {
		t.Errorf("P(1) = %v, want 0.98", got)
	}
	total := 0.0
	for i := 1; i <= 16; i++ {
		total += d.P(i)
	}
	if !almostEqual(total, 1, 1e-12) {
		t.Errorf("probabilities sum to %v", total)
	}
	if got := d.CDF(16); !almostEqual(got, 1, 1e-12) {
		t.Errorf("CDF(16) = %v", got)
	}
	// Mean burst length close to 1 sector, as the paper cites (B ≈ 1.03).
	if d.Mean() < 1.0 || d.Mean() > 1.1 {
		t.Errorf("mean burst length %v outside [1, 1.1]", d.Mean())
	}
	// Smaller α ⇒ heavier tail ⇒ larger mean.
	heavy, _ := failures.NewBurstDist(0.9, 1.0, 16)
	if heavy.Mean() <= d.Mean() {
		t.Errorf("heavier tail should have larger mean: %v vs %v", heavy.Mean(), d.Mean())
	}
	// Invalid parameters rejected.
	if _, err := failures.NewBurstDist(-0.1, 1, 16); err == nil {
		t.Error("negative b1 accepted")
	}
	if _, err := failures.NewBurstDist(0.9, 0, 16); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := failures.NewBurstDist(0.9, 1, 0); err == nil {
		t.Error("zero maxLen accepted")
	}
}

// TestPchkNormalization: chunk models should be (approximately)
// normalised; the correlated model is the paper's first-order
// approximation so it only sums near 1.
func TestPchkNormalization(t *testing.T) {
	p := DefaultParams()
	ind := independentModel(1e-10, p)
	total := 0.0
	for i := 0; i <= ind.R(); i++ {
		total += ind.Pchk(i)
	}
	if !almostEqual(total, 1, 1e-9) {
		t.Errorf("independent model sums to %v", total)
	}
	cor := correlatedModel(t, 1e-10, 0.98, 1.79, p)
	total = 0.0
	for i := 0; i <= cor.R(); i++ {
		total += cor.Pchk(i)
	}
	if math.Abs(total-1) > 1e-3 {
		t.Errorf("correlated model sums to %v (should be ≈1)", total)
	}
}

// TestMonteCarloPstrIndependent cross-checks the enumerator against a
// simulation of the independent model with an exaggerated Psec.
func TestMonteCarloPstrIndependent(t *testing.T) {
	p := DefaultParams()
	model := Independent{Psec: 0.01, Rval: p.R}
	covers := StairCoverage([]int{1, 2})
	want := Pstr(p.N-p.M, model, covers)

	rng := newTestRand(99)
	const trials = 200000
	bad := 0
	for trial := 0; trial < trials; trial++ {
		var counts []int
		for chunk := 0; chunk < p.N-p.M; chunk++ {
			c := 0
			for s := 0; s < p.R; s++ {
				if rng.Float64() < model.Psec {
					c++
				}
			}
			if c > 0 {
				counts = append(counts, c)
			}
		}
		sortInts(counts)
		if !covers(counts) {
			bad++
		}
	}
	got := float64(bad) / trials
	if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/trials)+1e-6 {
		t.Errorf("Monte Carlo Pstr %v vs analytic %v", got, want)
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestCodeSpecStrings(t *testing.T) {
	if (CodeSpec{Kind: "rs"}).String() != "RS" {
		t.Error("rs string")
	}
	if (CodeSpec{Kind: "stair", E: []int{1, 2}}).String() == "" {
		t.Error("stair string")
	}
	if (CodeSpec{Kind: "sd", S: 2}).String() == "" {
		t.Error("sd string")
	}
	if (CodeSpec{Kind: "idr", S: 2}).String() == "" {
		t.Error("idr string")
	}
}
