package reliability

import "math"

// Closed-form Pstr expressions from Appendix B (Eqs. 18-26), kept as
// independent implementations to cross-validate the general enumerator
// in Pstr. nm is the number of surviving chunks, n−m.

// PstrRSClosed is Eq. 18.
func PstrRSClosed(nm int, m ChunkModel) float64 {
	return 1 - math.Pow(m.Pchk(0), float64(nm))
}

// PstrStairSClosed is Eq. 19: STAIR with e = (s), s ≥ 1.
func PstrStairSClosed(nm, s int, m ChunkModel) float64 {
	p0 := m.Pchk(0)
	sum := 0.0
	for i := 1; i <= s; i++ {
		sum += m.Pchk(i)
	}
	return 1 - math.Pow(p0, float64(nm)) - float64(nm)*sum*math.Pow(p0, float64(nm-1))
}

// PstrStair1Sm1Closed is Eq. 20: STAIR with e = (1, s−1), s ≥ 2.
func PstrStair1Sm1Closed(nm, s int, m ChunkModel) float64 {
	p0 := m.Pchk(0)
	n1 := float64(nm)
	res := 1 - math.Pow(p0, n1)
	sum1 := 0.0
	for i := 1; i <= s-1; i++ {
		sum1 += m.Pchk(i)
	}
	res -= n1 * sum1 * math.Pow(p0, n1-1)
	res -= binomCoeff(nm, 2) * m.Pchk(1) * m.Pchk(1) * math.Pow(p0, n1-2)
	sum2 := 0.0
	for i := 2; i <= s-1; i++ {
		sum2 += m.Pchk(i)
	}
	res -= n1 * float64(nm-1) * sum2 * m.Pchk(1) * math.Pow(p0, n1-2)
	return res
}

// PstrStair2Sm2Closed is Eq. 21: STAIR with e = (2, s−2), s ≥ 4.
func PstrStair2Sm2Closed(nm, s int, m ChunkModel) float64 {
	p0 := m.Pchk(0)
	n1 := float64(nm)
	res := 1 - math.Pow(p0, n1)
	sum1 := 0.0
	for i := 1; i <= s-2; i++ {
		sum1 += m.Pchk(i)
	}
	res -= n1 * sum1 * math.Pow(p0, n1-1)
	res -= binomCoeff(nm, 2) * m.Pchk(1) * m.Pchk(1) * math.Pow(p0, n1-2)
	sum2 := 0.0
	for i := 2; i <= s-2; i++ {
		sum2 += m.Pchk(i)
	}
	res -= n1 * float64(nm-1) * sum2 * m.Pchk(1) * math.Pow(p0, n1-2)
	res -= binomCoeff(nm, 2) * m.Pchk(2) * m.Pchk(2) * math.Pow(p0, n1-2)
	sum3 := 0.0
	for i := 3; i <= s-2; i++ {
		sum3 += m.Pchk(i)
	}
	res -= n1 * float64(nm-1) * sum3 * m.Pchk(2) * math.Pow(p0, n1-2)
	return res
}

// PstrStair11Sm2Closed is Eq. 22: STAIR with e = (1, 1, s−2), s ≥ 3.
func PstrStair11Sm2Closed(nm, s int, m ChunkModel) float64 {
	p0 := m.Pchk(0)
	n1 := float64(nm)
	res := 1 - math.Pow(p0, n1)
	sum1 := 0.0
	for i := 1; i <= s-2; i++ {
		sum1 += m.Pchk(i)
	}
	res -= n1 * sum1 * math.Pow(p0, n1-1)
	res -= binomCoeff(nm, 2) * m.Pchk(1) * m.Pchk(1) * math.Pow(p0, n1-2)
	sum2 := 0.0
	for i := 2; i <= s-2; i++ {
		sum2 += m.Pchk(i)
	}
	res -= n1 * float64(nm-1) * sum2 * m.Pchk(1) * math.Pow(p0, n1-2)
	res -= binomCoeff(nm, 3) * math.Pow(m.Pchk(1), 3) * math.Pow(p0, n1-3)
	res -= binomCoeff(nm, 2) * float64(nm-2) * sum2 * m.Pchk(1) * m.Pchk(1) * math.Pow(p0, n1-3)
	return res
}

// PstrStairAllOnesClosed is Eq. 23: STAIR with e = (1, 1, …, 1), s ≥ 1.
func PstrStairAllOnesClosed(nm, s int, m ChunkModel) float64 {
	p0 := m.Pchk(0)
	res := 1.0
	for i := 0; i <= s; i++ {
		res -= binomCoeff(nm, i) * math.Pow(m.Pchk(1), float64(i)) * math.Pow(p0, float64(nm-i))
	}
	return res
}

// PstrSD1Closed is Eq. 24.
func PstrSD1Closed(nm int, m ChunkModel) float64 {
	p0 := m.Pchk(0)
	return 1 - math.Pow(p0, float64(nm)) - float64(nm)*m.Pchk(1)*math.Pow(p0, float64(nm-1))
}

// PstrSD2Closed is Eq. 25.
func PstrSD2Closed(nm int, m ChunkModel) float64 {
	p0 := m.Pchk(0)
	n1 := float64(nm)
	res := 1 - math.Pow(p0, n1)
	res -= n1 * (m.Pchk(1) + m.Pchk(2)) * math.Pow(p0, n1-1)
	res -= binomCoeff(nm, 2) * m.Pchk(1) * m.Pchk(1) * math.Pow(p0, n1-2)
	return res
}

// PstrSD3Closed is Eq. 26.
func PstrSD3Closed(nm int, m ChunkModel) float64 {
	p0 := m.Pchk(0)
	n1 := float64(nm)
	res := 1 - math.Pow(p0, n1)
	res -= n1 * (m.Pchk(1) + m.Pchk(2) + m.Pchk(3)) * math.Pow(p0, n1-1)
	res -= binomCoeff(nm, 2) * m.Pchk(1) * m.Pchk(1) * math.Pow(p0, n1-2)
	res -= n1 * float64(nm-1) * m.Pchk(2) * m.Pchk(1) * math.Pow(p0, n1-2)
	res -= binomCoeff(nm, 3) * math.Pow(m.Pchk(1), 3) * math.Pow(p0, n1-3)
	return res
}
