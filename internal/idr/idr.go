// Package idr implements the intra-device redundancy (IDR) baseline the
// STAIR paper compares against (§2, §8; Dholakia et al.): each data chunk
// independently reserves its bottom ϵ sectors for a systematic (r, r−ϵ)
// column code, protecting that chunk against up to ϵ sector failures,
// while m row-parity chunks protect against device failures.
//
// IDR is space-hungry: protecting against a burst of β sector failures
// requires β redundant sectors in each of the n−m data chunks — β·(n−m)
// sectors per stripe — where STAIR with e = (1, β) spends β+1 (§2's
// worked example).
package idr

import (
	"errors"
	"fmt"

	"stair/internal/gf"
	"stair/internal/rs"
)

// ErrUnrecoverable reports a failure pattern outside the scheme's
// coverage.
var ErrUnrecoverable = errors.New("idr: failure pattern is unrecoverable")

// Cell addresses a sector (chunk column, sector row), matching
// internal/core's stripe layout.
type Cell struct {
	Col int
	Row int
}

func (c Cell) String() string { return fmt.Sprintf("(%d,%d)", c.Col, c.Row) }

// Config describes an IDR-protected stripe.
type Config struct {
	N       int // chunks per stripe
	R       int // sectors per chunk
	M       int // row-parity chunks (device-failure tolerance)
	Epsilon int // intra-chunk redundant sectors per data chunk
	W       int // Galois field word size (0 → 8)
}

// Code is a compiled IDR scheme instance.
type Code struct {
	n, r, m, eps int
	f            *gf.Field
	crow         *rs.Code // (n, n−m) across devices, per row
	ccol         *rs.Code // (r, r−ϵ) within each data chunk
}

// New validates and compiles an IDR instance.
func New(cfg Config) (*Code, error) {
	if cfg.N < 1 || cfg.R < 1 {
		return nil, fmt.Errorf("idr: N=%d, R=%d must be ≥ 1", cfg.N, cfg.R)
	}
	if cfg.M < 0 || cfg.M >= cfg.N {
		return nil, fmt.Errorf("idr: M=%d must be in [0, N)", cfg.M)
	}
	if cfg.Epsilon < 0 || cfg.Epsilon >= cfg.R {
		return nil, fmt.Errorf("idr: Epsilon=%d must be in [0, R)", cfg.Epsilon)
	}
	if cfg.W == 0 {
		cfg.W = 8
	}
	if cfg.N > 1<<cfg.W || cfg.R > 1<<cfg.W {
		return nil, fmt.Errorf("idr: geometry does not fit GF(2^%d)", cfg.W)
	}
	f := gf.Get(cfg.W)
	crow, err := rs.NewCauchy(f, cfg.N, cfg.N-cfg.M)
	if err != nil {
		return nil, fmt.Errorf("idr: row code: %w", err)
	}
	ccol, err := rs.NewCauchy(f, cfg.R, cfg.R-cfg.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("idr: column code: %w", err)
	}
	return &Code{n: cfg.N, r: cfg.R, m: cfg.M, eps: cfg.Epsilon, f: f, crow: crow, ccol: ccol}, nil
}

// N returns the number of chunks per stripe.
func (c *Code) N() int { return c.n }

// R returns the number of sectors per chunk.
func (c *Code) R() int { return c.r }

// M returns the number of row-parity chunks.
func (c *Code) M() int { return c.m }

// Epsilon returns the per-chunk intra-redundancy depth.
func (c *Code) Epsilon() int { return c.eps }

// RedundantSectors returns the redundancy spent per stripe beyond the m
// parity chunks: ϵ·(n−m) intra-chunk sectors.
func (c *Code) RedundantSectors() int { return c.eps * (c.n - c.m) }

// DataCells returns the cells a caller fills before Encode: the top
// r−ϵ sectors of each of the n−m data chunks.
func (c *Code) DataCells() []Cell {
	var out []Cell
	for col := 0; col < c.n-c.m; col++ {
		for row := 0; row < c.r-c.eps; row++ {
			out = append(out, Cell{Col: col, Row: row})
		}
	}
	return out
}

// ParityCells returns the cells Encode fills: intra-chunk parity sectors
// and the m row-parity chunks.
func (c *Code) ParityCells() []Cell {
	var out []Cell
	for col := 0; col < c.n-c.m; col++ {
		for row := c.r - c.eps; row < c.r; row++ {
			out = append(out, Cell{Col: col, Row: row})
		}
	}
	for col := c.n - c.m; col < c.n; col++ {
		for row := 0; row < c.r; row++ {
			out = append(out, Cell{Col: col, Row: row})
		}
	}
	return out
}

func (c *Code) checkStripe(cells [][]byte) (int, error) {
	if len(cells) != c.n*c.r {
		return 0, fmt.Errorf("idr: stripe has %d cells, want %d", len(cells), c.n*c.r)
	}
	size := len(cells[0])
	for i, s := range cells {
		if len(s) != size {
			return 0, fmt.Errorf("idr: cell %d has %d bytes, want %d", i, len(s), size)
		}
	}
	if size == 0 || size%c.f.SymbolBytes() != 0 {
		return 0, fmt.Errorf("idr: bad sector size %d", size)
	}
	return size, nil
}

func (c *Code) sector(cells [][]byte, col, row int) []byte { return cells[col*c.r+row] }

// Encode fills intra-chunk parity in every data chunk, then the m
// row-parity chunks.
func (c *Code) Encode(cells [][]byte) error {
	if _, err := c.checkStripe(cells); err != nil {
		return err
	}
	// Intra-chunk parity for data chunks.
	for col := 0; col < c.n-c.m; col++ {
		data := make([][]byte, c.r-c.eps)
		for row := range data {
			data[row] = c.sector(cells, col, row)
		}
		parity := make([][]byte, c.eps)
		for k := range parity {
			parity[k] = c.sector(cells, col, c.r-c.eps+k)
		}
		if err := c.ccol.EncodeRegions(data, parity); err != nil {
			return err
		}
	}
	// Row parity across devices (covers intra-parity sectors too).
	for row := 0; row < c.r; row++ {
		data := make([][]byte, c.n-c.m)
		for j := range data {
			data[j] = c.sector(cells, j, row)
		}
		parity := make([][]byte, c.m)
		for k := range parity {
			parity[k] = c.sector(cells, c.n-c.m+k, row)
		}
		if err := c.crow.EncodeRegions(data, parity); err != nil {
			return err
		}
	}
	return nil
}

// CoverageContains reports whether a pattern lies within the IDR
// coverage: at most m fully-failed chunks; every other chunk loses at
// most ϵ sectors.
func (c *Code) CoverageContains(lost []Cell) bool {
	perChunk := make(map[int]int)
	for _, cell := range lost {
		perChunk[cell.Col]++
	}
	full := 0
	for _, cnt := range perChunk {
		if cnt > c.eps {
			full++
		}
	}
	return full <= c.m
}

// Repair reconstructs lost cells in place: chunks with ≤ ϵ losses repair
// locally via the column code; up to m worse chunks repair via row
// parity.
func (c *Code) Repair(cells [][]byte, lost []Cell) error {
	if _, err := c.checkStripe(cells); err != nil {
		return err
	}
	perChunk := make(map[int][]int)
	for _, cell := range lost {
		if cell.Col < 0 || cell.Col >= c.n || cell.Row < 0 || cell.Row >= c.r {
			return fmt.Errorf("idr: lost cell %v out of range", cell)
		}
		perChunk[cell.Col] = append(perChunk[cell.Col], cell.Row)
	}
	var deferred []int
	for col, rows := range perChunk {
		if len(rows) > c.eps {
			deferred = append(deferred, col)
			continue
		}
		// Local intra-chunk repair.
		regions := make([][]byte, c.r)
		present := make([]bool, c.r)
		for row := 0; row < c.r; row++ {
			regions[row] = c.sector(cells, col, row)
			present[row] = true
		}
		for _, row := range rows {
			present[row] = false
		}
		if err := c.ccol.ReconstructRegions(regions, present); err != nil {
			return fmt.Errorf("idr: chunk %d local repair: %w", col, err)
		}
	}
	if len(deferred) == 0 {
		return nil
	}
	if len(deferred) > c.m {
		return fmt.Errorf("%w: %d chunks exceed ϵ=%d losses", ErrUnrecoverable, len(deferred), c.eps)
	}
	isDeferred := make(map[int]bool, len(deferred))
	for _, col := range deferred {
		isDeferred[col] = true
	}
	// Row-by-row repair of deferred chunks (treat them as erased).
	for row := 0; row < c.r; row++ {
		regions := make([][]byte, c.n)
		present := make([]bool, c.n)
		for col := 0; col < c.n; col++ {
			regions[col] = c.sector(cells, col, row)
			present[col] = !isDeferred[col]
		}
		if err := c.crow.ReconstructRegions(regions, present); err != nil {
			return fmt.Errorf("idr: row %d repair: %w", row, err)
		}
	}
	return nil
}
