package idr

import (
	"bytes"
	"math/rand"
	"testing"
)

func newStripe(c *Code, sectorSize int, seed int64) [][]byte {
	cells := make([][]byte, c.N()*c.R())
	for i := range cells {
		cells[i] = make([]byte, sectorSize)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, cell := range c.DataCells() {
		rng.Read(cells[cell.Col*c.R()+cell.Row])
	}
	return cells
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{N: 8, R: 4, M: 2, Epsilon: 1}, true},
		{Config{N: 8, R: 8, M: 2, Epsilon: 4}, true},
		{Config{N: 8, R: 4, M: 0, Epsilon: 1}, true},
		{Config{N: 8, R: 4, M: 2, Epsilon: 0}, true},
		{Config{N: 0, R: 4, M: 0, Epsilon: 1}, false},
		{Config{N: 8, R: 4, M: 8, Epsilon: 1}, false},
		{Config{N: 8, R: 4, M: 2, Epsilon: 4}, false}, // eps >= r
		{Config{N: 8, R: 4, M: 2, Epsilon: -1}, false},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); (err == nil) != tc.ok {
			t.Errorf("New(%+v): err=%v, want ok=%v", tc.cfg, err, tc.ok)
		}
	}
}

func TestSection2SpaceExample(t *testing.T) {
	// §2: n=8, m=2, β=4 → IDR spends 4×6 = 24 redundant sectors.
	c, err := New(Config{N: 8, R: 8, M: 2, Epsilon: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RedundantSectors(); got != 24 {
		t.Errorf("redundant sectors = %d, want 24", got)
	}
}

func TestEncodeRepairRoundtrip(t *testing.T) {
	c, err := New(Config{N: 6, R: 6, M: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		cells := newStripe(c, 16, int64(trial))
		if err := c.Encode(cells); err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, len(cells))
		for i := range cells {
			want[i] = append([]byte{}, cells[i]...)
		}
		// Fail up to m chunks fully plus ≤ ϵ sectors in the others.
		cols := rng.Perm(c.N())
		var lost []Cell
		nFull := rng.Intn(c.M() + 1)
		for i := 0; i < nFull; i++ {
			for row := 0; row < c.R(); row++ {
				lost = append(lost, Cell{Col: cols[i], Row: row})
			}
		}
		for _, col := range cols[nFull:] {
			k := rng.Intn(c.Epsilon() + 1)
			for _, row := range rng.Perm(c.R())[:k] {
				lost = append(lost, Cell{Col: col, Row: row})
			}
		}
		if !c.CoverageContains(lost) {
			t.Fatal("generated pattern should be covered")
		}
		for _, cell := range lost {
			for i := range cells[cell.Col*c.R()+cell.Row] {
				cells[cell.Col*c.R()+cell.Row][i] = 0xDD
			}
		}
		if err := c.Repair(cells, lost); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range cells {
			if !bytes.Equal(cells[i], want[i]) {
				t.Fatalf("trial %d: cell %d wrong after repair", trial, i)
			}
		}
	}
}

func TestBeyondCoverage(t *testing.T) {
	c, err := New(Config{N: 6, R: 6, M: 1, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two chunks exceed ϵ.
	lost := []Cell{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if c.CoverageContains(lost) {
		t.Error("two over-ϵ chunks claimed covered with m=1")
	}
	cells := newStripe(c, 8, 1)
	if err := c.Encode(cells); err != nil {
		t.Fatal(err)
	}
	if err := c.Repair(cells, lost); err == nil {
		t.Error("repair beyond coverage succeeded")
	}
}

func TestCellCounts(t *testing.T) {
	c, err := New(Config{N: 8, R: 8, M: 2, Epsilon: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(c.DataCells()), (8-2)*(8-4); got != want {
		t.Errorf("data cells = %d, want %d", got, want)
	}
	if got, want := len(c.ParityCells()), 6*4+2*8; got != want {
		t.Errorf("parity cells = %d, want %d", got, want)
	}
}
