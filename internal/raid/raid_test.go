package raid

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/idr"
	"stair/internal/sd"
)

func stairArray(t *testing.T, stripes int) (*Array, StairCode) {
	t.Helper()
	c, err := core.New(core.Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	code := StairCode{C: c}
	a, err := NewArray(code, stripes, 64)
	if err != nil {
		t.Fatal(err)
	}
	return a, code
}

func TestWriteReadRoundtrip(t *testing.T) {
	a, _ := stairArray(t, 4)
	data := make([]byte, a.DataCapacity()-100)
	rand.New(rand.NewSource(1)).Read(data)
	n, err := a.Write(data)
	if err != nil || n != len(data) {
		t.Fatalf("Write: n=%d err=%v", n, err)
	}
	got, err := a.Read(len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back differs from written data")
	}
}

func TestWriteOverCapacity(t *testing.T) {
	a, _ := stairArray(t, 1)
	if _, err := a.Write(make([]byte, a.DataCapacity()+1)); err == nil {
		t.Error("overfull write accepted")
	}
	if _, err := a.Read(a.DataCapacity() + 1); err == nil {
		t.Error("overfull read accepted")
	}
}

func TestDeviceFailureRecovery(t *testing.T) {
	a, _ := stairArray(t, 4)
	data := make([]byte, a.DataCapacity())
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	// Kill two devices (m=2).
	if err := a.FailDevice(1); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDevice(5); err != nil {
		t.Fatal(err)
	}
	if len(a.FailedDevices()) != 2 {
		t.Fatal("failed device bookkeeping wrong")
	}
	rep, err := a.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v (report %+v)", err, rep)
	}
	if rep.DevicesReactivated != 2 {
		t.Errorf("reactivated %d devices, want 2", rep.DevicesReactivated)
	}
	got, err := a.Read(len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after rebuild")
	}
}

func TestDeviceAndSectorFailures(t *testing.T) {
	a, _ := stairArray(t, 3)
	data := make([]byte, a.DataCapacity())
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	// m=2 device failures plus an e=(1,1,2)-shaped sector pattern in
	// each stripe.
	a.FailDevice(0)
	a.FailDevice(1)
	r := 4
	for stripe := 0; stripe < 3; stripe++ {
		a.CorruptSector(2, stripe*r+3)
		a.CorruptSector(3, stripe*r+1)
		a.CorruptSector(4, stripe*r+0)
		a.CorruptSector(4, stripe*r+2)
	}
	if _, err := a.Scrub(); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	got, _ := a.Read(len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after combined failure recovery")
	}
	if a.TotalBadSectors() != 0 {
		t.Error("bad sector metadata not cleared")
	}
}

func TestUnrecoverableLossReported(t *testing.T) {
	a, _ := stairArray(t, 2)
	data := make([]byte, a.DataCapacity())
	rand.New(rand.NewSource(4)).Read(data)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	// Three full device failures exceed m=2.
	a.FailDevice(0)
	a.FailDevice(1)
	a.FailDevice(2)
	rep, err := a.Scrub()
	if !errors.Is(err, ErrDataLoss) {
		t.Fatalf("Scrub err=%v, want ErrDataLoss", err)
	}
	if rep.UnrecoverableLoss != 2 {
		t.Errorf("unrecoverable stripes = %d, want 2", rep.UnrecoverableLoss)
	}
}

func TestBurstInjectionAndScrub(t *testing.T) {
	c, err := core.New(core.Config{N: 6, R: 16, M: 1, E: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray(StairCode{C: c}, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, a.DataCapacity())
	rand.New(rand.NewSource(5)).Read(data)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	// A β=4 burst in one chunk of a stripe plus a single sector in
	// another chunk — exactly the e=(1,4) coverage story of §2.
	a.InjectBurst(2, 16, 4) // stripe 1, rows 0-3 of device 2
	a.CorruptSector(4, 17)  // stripe 1, row 1 of device 4
	if _, err := a.Scrub(); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	got, _ := a.Read(len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after burst recovery")
	}
}

func TestRandomBurstCampaign(t *testing.T) {
	c, err := core.New(core.Config{N: 6, R: 8, M: 1, E: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray(StairCode{C: c}, 6, 16)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, a.DataCapacity())
	rng := rand.New(rand.NewSource(6))
	rng.Read(data)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	dist, err := failures.NewBurstDist(0.98, 1.79, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Low rate: occasional single-sector or 2-burst failures, then
	// scrub. Repeat several rounds; every round must stay recoverable
	// or report loss honestly.
	for round := 0; round < 10; round++ {
		if _, err := a.InjectRandomBursts(rng, 0.01, dist); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Scrub(); err != nil {
			// Random campaigns can exceed coverage; that is an
			// honest outcome, but the data must then differ.
			t.Skipf("round %d: injected pattern exceeded coverage: %v", round, err)
		}
		got, _ := a.Read(len(data))
		if !bytes.Equal(got, data) {
			t.Fatalf("round %d: silent corruption after scrub", round)
		}
	}
}

func TestSDAdapter(t *testing.T) {
	c, err := sd.New(sd.Config{N: 6, R: 4, M: 1, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray(SDCode{C: c}, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, a.DataCapacity())
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	a.FailDevice(3)
	a.CorruptSector(0, 1)
	a.CorruptSector(1, 6)
	if _, err := a.Scrub(); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	got, _ := a.Read(len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("SD adapter: data corrupted")
	}
}

func TestIDRAdapter(t *testing.T) {
	c, err := idr.New(idr.Config{N: 6, R: 8, M: 1, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray(IDRCode{C: c}, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, a.DataCapacity())
	rand.New(rand.NewSource(8)).Read(data)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	a.FailDevice(2)
	a.CorruptSector(0, 3)
	a.CorruptSector(4, 9)
	if _, err := a.Scrub(); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	got, _ := a.Read(len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("IDR adapter: data corrupted")
	}
}

func TestRSThroughStairAdapter(t *testing.T) {
	// E = nil degenerates STAIR to Reed-Solomon; the adapter must work.
	c, err := core.New(core.Config{N: 6, R: 4, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray(StairCode{C: c}, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, a.DataCapacity())
	rand.New(rand.NewSource(9)).Read(data)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	a.FailDevice(0)
	a.FailDevice(5)
	if _, err := a.Scrub(); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Read(len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("RS adapter: data corrupted")
	}
}

func TestValidation(t *testing.T) {
	_, code := stairArray(t, 1)
	if _, err := NewArray(code, 0, 16); err == nil {
		t.Error("zero stripes accepted")
	}
	if _, err := NewArray(code, 1, 0); err == nil {
		t.Error("zero sector size accepted")
	}
	a, _ := stairArray(t, 1)
	if err := a.FailDevice(99); err == nil {
		t.Error("bad device id accepted")
	}
	if err := a.CorruptSector(0, 9999); err == nil {
		t.Error("bad sector id accepted")
	}
	if err := a.CorruptSector(42, 0); err == nil {
		t.Error("bad device id accepted in CorruptSector")
	}
}

func TestCanRecoverAdapters(t *testing.T) {
	_, code := stairArray(t, 1)
	var lost []Cell
	for row := 0; row < 4; row++ {
		lost = append(lost, Cell{Col: 0, Row: row}, Cell{Col: 1, Row: row}, Cell{Col: 2, Row: row})
	}
	if code.CanRecover(lost) {
		t.Error("3 failed chunks claimed recoverable with m=2")
	}
	if !code.CanRecover([]Cell{{Col: 0, Row: 0}}) {
		t.Error("single sector not recoverable")
	}
}
