package raid

import (
	"fmt"
	"math/rand"

	"stair/internal/failures"
)

// FaultTarget is the fault-injection surface shared by the array
// simulator and higher-level storage systems (internal/store implements
// it too): n devices of stripes×r sectors that can wholly fail or
// suffer latent sector errors. The drivers below replay the paper's
// failure processes (§7.1.2, §7.2.2) against any target, so integration
// tests exercise the same patterns across layers.
type FaultTarget interface {
	// Geometry returns (devices, stripes, sectors per chunk, sector
	// size in bytes).
	Geometry() (n, stripes, r, sectorSize int)
	// FailDevice marks one device wholly failed.
	FailDevice(dev int) error
	// InjectBurst corrupts a run of consecutive sectors on one device,
	// clipped at the device end.
	InjectBurst(dev, start, length int) error
	// FailedDevices lists wholly failed devices.
	FailedDevices() []int
}

// Burst locates one drawn latent-sector-error burst: Len consecutive
// sectors starting Start sectors into device Dev's data region.
type Burst struct {
	Dev   int
	Start int
	Len   int
}

// DrawBursts draws the §7.2.2 burst process against the target's live
// devices — per-sector burst-start probability pStart, lengths from the
// (b1, α) distribution — without injecting anything. Splitting the draw
// from the injection lets a scheduler record, gate (e.g. against the
// code's coverage) or replay the planned bursts; InjectBursts applies
// them. Devices are visited in index order, so the same rng state
// always yields the same plan.
func DrawBursts(t FaultTarget, rng *rand.Rand, pStart float64, dist *failures.BurstDist) []Burst {
	n, stripes, r, _ := t.Geometry()
	down := map[int]bool{}
	for _, dev := range t.FailedDevices() {
		down[dev] = true
	}
	sectors := stripes * r
	var out []Burst
	for dev := 0; dev < n; dev++ {
		if down[dev] {
			continue
		}
		// ChunkFailures already clips bursts at the chunk end.
		for _, b := range failures.ChunkFailures(rng, sectors, pStart, dist) {
			out = append(out, Burst{Dev: dev, Start: b.Start, Len: b.Len})
		}
	}
	return out
}

// InjectBursts applies drawn bursts to the target, returning the
// number of sectors injected (bursts may overlap; the count sums raw
// burst lengths, matching what InjectBurst was asked to do).
func InjectBursts(t FaultTarget, bursts []Burst) (int, error) {
	lost := 0
	for _, b := range bursts {
		if err := t.InjectBurst(b.Dev, b.Start, b.Len); err != nil {
			return lost, err
		}
		lost += b.Len
	}
	return lost, nil
}

// InjectRandomBurstsOn draws latent-sector-error bursts on every live
// device of the target per the (b1, α) distribution, with per-sector
// burst-start probability pStart (§7.2.2). It returns the number of
// sectors lost. Draw-then-inject, so its rng consumption matches
// DrawBursts exactly.
func InjectRandomBurstsOn(t FaultTarget, rng *rand.Rand, pStart float64, dist *failures.BurstDist) (int, error) {
	return InjectBursts(t, DrawBursts(t, rng, pStart, dist))
}

// FailRandomDevicesOn draws whole-device failures on the target's live
// devices as a Bernoulli event with probability p per device (§7.1.2's
// discretised lifetime model), returning the devices it failed.
func FailRandomDevicesOn(t FaultTarget, rng *rand.Rand, p float64) ([]int, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("raid: p=%v must be in [0,1]", p)
	}
	n, _, _, _ := t.Geometry()
	down := map[int]bool{}
	for _, dev := range t.FailedDevices() {
		down[dev] = true
	}
	var out []int
	for _, dev := range (failures.DeviceProcess{P: p}).Failed(rng, n) {
		if down[dev] {
			continue
		}
		if err := t.FailDevice(dev); err != nil {
			return out, err
		}
		out = append(out, dev)
	}
	return out, nil
}
