// Package raid is a small storage-array simulator: n devices split into
// stripes protected by a pluggable erasure code. It provides the
// end-to-end substrate the paper's motivation describes — device loss,
// latent sector errors and scrub/repair — so that integration tests and
// examples exercise the same erasure patterns a deployment would.
//
// The simulator tracks failures as metadata (and zeroes lost payloads so
// that a repair which merely leaves stale bytes in place cannot pass
// verification).
package raid

import (
	"errors"
	"fmt"
	"math/rand"

	"stair/internal/failures"
)

// Cell addresses one sector within a stripe: chunk column and sector row
// (matching internal/core's layout).
type Cell struct {
	Col int
	Row int
}

// Code is the erasure-code contract the array drives. Implementations
// wrap STAIR, SD, IDR or plain Reed-Solomon codes (see adapters.go).
type Code interface {
	// N and R describe the stripe geometry: N chunks of R sectors.
	N() int
	R() int
	// DataCells lists the cells a writer fills, in payload order.
	DataCells() []Cell
	// Encode fills the parity cells of the stripe; cells is indexed
	// col*R+row.
	Encode(cells [][]byte) error
	// Repair reconstructs the lost cells in place.
	Repair(cells [][]byte, lost []Cell) error
	// CanRecover reports whether a pattern is repairable.
	CanRecover(lost []Cell) bool
}

// Device models one disk: a flat array of sectors plus failure state.
type Device struct {
	id      int
	sectors [][]byte
	failed  bool
	bad     map[int]bool // sector index → lost
}

// Failed reports whether the whole device is down.
func (d *Device) Failed() bool { return d.failed }

// BadSectors returns the number of latent sector errors.
func (d *Device) BadSectors() int { return len(d.bad) }

// Array is a simulated storage array.
type Array struct {
	code       Code
	sectorSize int
	stripes    int
	devices    []*Device
}

// ErrDataLoss reports an unrecoverable stripe during scrub or rebuild.
var ErrDataLoss = errors.New("raid: unrecoverable data loss")

// NewArray builds an array of code.N() devices with the given number of
// stripes. Every stripe holds code geometry N×R sectors of sectorSize
// bytes.
func NewArray(code Code, stripes, sectorSize int) (*Array, error) {
	if stripes < 1 {
		return nil, fmt.Errorf("raid: stripes=%d must be ≥ 1", stripes)
	}
	if sectorSize < 1 {
		return nil, fmt.Errorf("raid: sectorSize=%d must be ≥ 1", sectorSize)
	}
	a := &Array{code: code, sectorSize: sectorSize, stripes: stripes}
	for i := 0; i < code.N(); i++ {
		d := &Device{id: i, bad: map[int]bool{}}
		d.sectors = make([][]byte, stripes*code.R())
		for s := range d.sectors {
			d.sectors[s] = make([]byte, sectorSize)
		}
		a.devices = append(a.devices, d)
	}
	return a, nil
}

// Geometry returns (devices, stripes, sectors per chunk, sector size).
func (a *Array) Geometry() (n, stripes, r, sectorSize int) {
	return a.code.N(), a.stripes, a.code.R(), a.sectorSize
}

// DataCapacity returns the number of user-data bytes the array holds.
func (a *Array) DataCapacity() int {
	return a.stripes * len(a.code.DataCells()) * a.sectorSize
}

// sectorOf maps (stripe, cell) to the backing device sector.
func (a *Array) sectorOf(stripe int, c Cell) []byte {
	return a.devices[c.Col].sectors[stripe*a.code.R()+c.Row]
}

// stripeCells materialises the [][]byte view (col*R+row) of one stripe.
func (a *Array) stripeCells(stripe int) [][]byte {
	n, r := a.code.N(), a.code.R()
	cells := make([][]byte, n*r)
	for col := 0; col < n; col++ {
		for row := 0; row < r; row++ {
			cells[col*r+row] = a.sectorOf(stripe, Cell{Col: col, Row: row})
		}
	}
	return cells
}

// Write stores data across the array, stripe by stripe, encoding parity
// as it goes. It returns the number of bytes written; writing more than
// DataCapacity is an error.
func (a *Array) Write(data []byte) (int, error) {
	if len(data) > a.DataCapacity() {
		return 0, fmt.Errorf("raid: %d bytes exceed capacity %d", len(data), a.DataCapacity())
	}
	cellsPerStripe := a.code.DataCells()
	written := 0
	for stripe := 0; stripe < a.stripes && written < len(data); stripe++ {
		for _, cell := range cellsPerStripe {
			dst := a.sectorOf(stripe, Cell{Col: cell.Col, Row: cell.Row})
			n := copy(dst, data[written:])
			for i := n; i < len(dst); i++ {
				dst[i] = 0
			}
			written += n
			if written >= len(data) {
				break
			}
		}
		if err := a.code.Encode(a.stripeCells(stripe)); err != nil {
			return written, fmt.Errorf("raid: encoding stripe %d: %w", stripe, err)
		}
	}
	// Encode any remaining (all-zero) stripes so scrubs pass.
	for stripe := 0; stripe < a.stripes; stripe++ {
		if err := a.code.Encode(a.stripeCells(stripe)); err != nil {
			return written, fmt.Errorf("raid: encoding stripe %d: %w", stripe, err)
		}
	}
	return written, nil
}

// Read returns the first length bytes of user data.
func (a *Array) Read(length int) ([]byte, error) {
	if length > a.DataCapacity() {
		return nil, fmt.Errorf("raid: %d bytes exceed capacity %d", length, a.DataCapacity())
	}
	out := make([]byte, 0, length)
	cellsPerStripe := a.code.DataCells()
	for stripe := 0; stripe < a.stripes && len(out) < length; stripe++ {
		for _, cell := range cellsPerStripe {
			src := a.sectorOf(stripe, Cell{Col: cell.Col, Row: cell.Row})
			remain := length - len(out)
			if remain <= 0 {
				break
			}
			if remain < len(src) {
				out = append(out, src[:remain]...)
			} else {
				out = append(out, src...)
			}
		}
	}
	return out, nil
}

// FailDevice marks a whole device as failed and destroys its contents.
func (a *Array) FailDevice(dev int) error {
	if dev < 0 || dev >= len(a.devices) {
		return fmt.Errorf("raid: device %d out of range", dev)
	}
	d := a.devices[dev]
	d.failed = true
	for _, s := range d.sectors {
		for i := range s {
			s[i] = 0
		}
	}
	return nil
}

// CorruptSector marks one sector as lost (a latent sector error) and
// destroys its payload.
func (a *Array) CorruptSector(dev, sector int) error {
	if dev < 0 || dev >= len(a.devices) {
		return fmt.Errorf("raid: device %d out of range", dev)
	}
	d := a.devices[dev]
	if sector < 0 || sector >= len(d.sectors) {
		return fmt.Errorf("raid: sector %d out of range", sector)
	}
	d.bad[sector] = true
	for i := range d.sectors[sector] {
		d.sectors[sector][i] = 0
	}
	return nil
}

// InjectBurst corrupts a run of consecutive sectors on one device,
// clipped to the device size — the §7.2.2 failure mode.
func (a *Array) InjectBurst(dev, start, length int) error {
	for i := 0; i < length; i++ {
		s := start + i
		if s >= len(a.devices[dev].sectors) {
			break
		}
		if err := a.CorruptSector(dev, s); err != nil {
			return err
		}
	}
	return nil
}

// InjectRandomBursts draws bursts on every live device per the (b1, α)
// distribution with per-sector start probability pStart, returning how
// many sectors were lost. It is InjectRandomBurstsOn applied to the
// array itself.
func (a *Array) InjectRandomBursts(rng *rand.Rand, pStart float64, dist *failures.BurstDist) (int, error) {
	return InjectRandomBurstsOn(a, rng, pStart, dist)
}

// lostCellsOf collects the lost cells of one stripe.
func (a *Array) lostCellsOf(stripe int) []Cell {
	var lost []Cell
	r := a.code.R()
	for col, d := range a.devices {
		for row := 0; row < r; row++ {
			if d.failed || d.bad[stripe*r+row] {
				lost = append(lost, Cell{Col: col, Row: row})
			}
		}
	}
	return lost
}

// ScrubReport summarises a scrub pass.
type ScrubReport struct {
	StripesChecked     int
	StripesRepaired    int
	SectorsRepaired    int
	UnrecoverableLoss  int // stripes that could not be repaired
	DevicesReactivated int
}

// Scrub walks every stripe, repairs what the code can repair, and
// clears failure metadata for repaired sectors. Failed devices are
// rebuilt in place (their content restored stripe by stripe) and
// reactivated. Returns ErrDataLoss (with a best-effort report) if any
// stripe is unrecoverable.
func (a *Array) Scrub() (ScrubReport, error) {
	rep := ScrubReport{}
	anyFailedDevice := false
	for _, d := range a.devices {
		if d.failed {
			anyFailedDevice = true
		}
	}
	for stripe := 0; stripe < a.stripes; stripe++ {
		rep.StripesChecked++
		lost := a.lostCellsOf(stripe)
		if len(lost) == 0 {
			continue
		}
		cells := a.stripeCells(stripe)
		lostCode := make([]Cell, len(lost))
		copy(lostCode, lost)
		if err := a.code.Repair(cells, lostCode); err != nil {
			rep.UnrecoverableLoss++
			continue
		}
		rep.StripesRepaired++
		rep.SectorsRepaired += len(lost)
	}
	if rep.UnrecoverableLoss > 0 {
		return rep, fmt.Errorf("%w: %d stripes", ErrDataLoss, rep.UnrecoverableLoss)
	}
	// All stripes clean: clear metadata and reactivate devices.
	for _, d := range a.devices {
		if d.failed {
			d.failed = false
			rep.DevicesReactivated++
		}
		d.bad = map[int]bool{}
	}
	_ = anyFailedDevice
	return rep, nil
}

// TotalBadSectors counts latent sector errors across live devices.
func (a *Array) TotalBadSectors() int {
	n := 0
	for _, d := range a.devices {
		n += len(d.bad)
	}
	return n
}

// FailedDevices lists the ids of failed devices.
func (a *Array) FailedDevices() []int {
	var out []int
	for _, d := range a.devices {
		if d.failed {
			out = append(out, d.id)
		}
	}
	return out
}
