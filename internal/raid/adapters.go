package raid

import (
	"stair/internal/core"
	"stair/internal/idr"
	"stair/internal/sd"
)

// StairCode adapts *core.Code (including its Reed-Solomon degeneration
// with an empty E) to the array's Code interface. Only Inside placement
// is supported: the simulator has no out-of-band storage for globals.
type StairCode struct{ C *core.Code }

// N returns the chunk count.
func (s StairCode) N() int { return s.C.N() }

// R returns the sectors per chunk.
func (s StairCode) R() int { return s.C.R() }

// DataCells lists the writable cells.
func (s StairCode) DataCells() []Cell {
	cells := s.C.DataCells()
	out := make([]Cell, len(cells))
	for i, c := range cells {
		out[i] = Cell{Col: c.Col, Row: c.Row}
	}
	return out
}

func (s StairCode) stripeOf(cells [][]byte) *core.Stripe {
	return &core.Stripe{N: s.C.N(), R: s.C.R(), SectorSize: len(cells[0]), Cells: cells}
}

// Encode fills parity cells.
func (s StairCode) Encode(cells [][]byte) error { return s.C.Encode(s.stripeOf(cells)) }

// Repair reconstructs lost cells.
func (s StairCode) Repair(cells [][]byte, lost []Cell) error {
	conv := make([]core.Cell, len(lost))
	for i, c := range lost {
		conv[i] = core.Cell{Col: c.Col, Row: c.Row}
	}
	return s.C.Repair(s.stripeOf(cells), conv)
}

// CanRecover reports pattern repairability.
func (s StairCode) CanRecover(lost []Cell) bool {
	conv := make([]core.Cell, len(lost))
	for i, c := range lost {
		conv[i] = core.Cell{Col: c.Col, Row: c.Row}
	}
	ok, err := s.C.CanRecover(conv)
	return err == nil && ok
}

// SDCode adapts *sd.Code to the array's Code interface.
type SDCode struct{ C *sd.Code }

// N returns the chunk count.
func (s SDCode) N() int { return s.C.N() }

// R returns the sectors per chunk.
func (s SDCode) R() int { return s.C.R() }

// DataCells lists the writable cells.
func (s SDCode) DataCells() []Cell {
	cells := s.C.DataCells()
	out := make([]Cell, len(cells))
	for i, c := range cells {
		out[i] = Cell{Col: c.Col, Row: c.Row}
	}
	return out
}

// Encode fills parity cells.
func (s SDCode) Encode(cells [][]byte) error { return s.C.Encode(cells) }

// Repair reconstructs lost cells.
func (s SDCode) Repair(cells [][]byte, lost []Cell) error {
	conv := make([]sd.Cell, len(lost))
	for i, c := range lost {
		conv[i] = sd.Cell{Col: c.Col, Row: c.Row}
	}
	return s.C.Repair(cells, conv)
}

// CanRecover reports pattern repairability.
func (s SDCode) CanRecover(lost []Cell) bool {
	conv := make([]sd.Cell, len(lost))
	for i, c := range lost {
		conv[i] = sd.Cell{Col: c.Col, Row: c.Row}
	}
	return s.C.CanRecover(conv)
}

// IDRCode adapts *idr.Code to the array's Code interface.
type IDRCode struct{ C *idr.Code }

// N returns the chunk count.
func (s IDRCode) N() int { return s.C.N() }

// R returns the sectors per chunk.
func (s IDRCode) R() int { return s.C.R() }

// DataCells lists the writable cells.
func (s IDRCode) DataCells() []Cell {
	cells := s.C.DataCells()
	out := make([]Cell, len(cells))
	for i, c := range cells {
		out[i] = Cell{Col: c.Col, Row: c.Row}
	}
	return out
}

// Encode fills parity cells.
func (s IDRCode) Encode(cells [][]byte) error { return s.C.Encode(cells) }

// Repair reconstructs lost cells.
func (s IDRCode) Repair(cells [][]byte, lost []Cell) error {
	conv := make([]idr.Cell, len(lost))
	for i, c := range lost {
		conv[i] = idr.Cell{Col: c.Col, Row: c.Row}
	}
	return s.C.Repair(cells, conv)
}

// CanRecover reports pattern coverage (IDR has no partial-luck recovery).
func (s IDRCode) CanRecover(lost []Cell) bool {
	conv := make([]idr.Cell, len(lost))
	for i, c := range lost {
		conv[i] = idr.Cell{Col: c.Col, Row: c.Row}
	}
	return s.C.CoverageContains(conv)
}
