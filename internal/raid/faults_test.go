package raid

import (
	"math/rand"
	"reflect"
	"testing"

	"stair/internal/failures"
)

// TestDrawBurstsDeterministic checks the draw is a pure function of
// rng state: same seed, same plan; and it skips failed devices.
func TestDrawBurstsDeterministic(t *testing.T) {
	dist, err := failures.NewBurstDist(0.9, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := stairArray(t, 8)
	p1 := DrawBursts(a, rand.New(rand.NewSource(7)), 0.05, dist)
	p2 := DrawBursts(a, rand.New(rand.NewSource(7)), 0.05, dist)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed drew different plans")
	}
	if len(p1) == 0 {
		t.Fatal("plan is empty; raise pStart")
	}
	if err := a.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	for _, b := range DrawBursts(a, rand.New(rand.NewSource(7)), 0.05, dist) {
		if b.Dev == 2 {
			t.Fatalf("burst drawn on failed device: %+v", b)
		}
	}
}

// TestInjectBurstsMatchesLegacy checks the split draw+inject path is
// byte-for-byte the old InjectRandomBurstsOn: identical rng
// consumption, identical damage.
func TestInjectBurstsMatchesLegacy(t *testing.T) {
	dist, err := failures.NewBurstDist(0.9, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	split, _ := stairArray(t, 8)
	legacy, _ := stairArray(t, 8)

	plan := DrawBursts(split, rand.New(rand.NewSource(11)), 0.05, dist)
	lostSplit, err := InjectBursts(split, plan)
	if err != nil {
		t.Fatal(err)
	}
	lostLegacy, err := InjectRandomBurstsOn(legacy, rand.New(rand.NewSource(11)), 0.05, dist)
	if err != nil {
		t.Fatal(err)
	}
	if lostSplit != lostLegacy {
		t.Fatalf("split path lost %d sectors, legacy %d", lostSplit, lostLegacy)
	}
	total := 0
	for _, b := range plan {
		total += b.Len
	}
	if lostSplit != total {
		t.Fatalf("InjectBursts reported %d sectors, plan sums to %d", lostSplit, total)
	}
}
