package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"stair/internal/store/mem"
)

// FileDevice is a file-per-device backend: one flat file of
// sectors × sectorSize bytes, plus a JSON sidecar (<path>.faults)
// persisting failure metadata so injected faults survive across process
// boundaries (the cmd/stairstore CLI relies on this). Vectored calls
// land as one pread/pwrite per extent, not one per sector — and when
// the caller's buffer vector tiles one contiguous region (a stripe
// slab's per-device extent), the pread/pwrite targets it directly with
// no scratch flat at all.
type FileDevice struct {
	path       string
	f          *os.File
	sectors    int
	sectorSize int
	// zero is a shared, read-only all-zeros sector used to destroy the
	// payload of an injected bad sector — allocated once at open
	// instead of per injection.
	zero []byte
	// scratchFlats counts vectored calls that could not use the
	// zero-copy contiguous path and fell back to a scratch flat; the
	// copy-elision tests assert it stays zero for slab-backed extents.
	scratchFlats atomic.Uint64
	*faultState
}

type faultSidecar struct {
	Failed bool  `json:"failed"`
	Bad    []int `json:"bad,omitempty"`
}

// OpenFileDevice opens (creating and sizing if absent) a file-backed
// device and loads its fault sidecar.
func OpenFileDevice(path string, sectors, sectorSize int) (*FileDevice, error) {
	if sectors < 1 || sectorSize < 1 {
		return nil, fmt.Errorf("store: device geometry %d×%d must be positive", sectors, sectorSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	size := int64(sectors) * int64(sectorSize)
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() != size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	d := &FileDevice{path: path, f: f, sectors: sectors, sectorSize: sectorSize,
		zero: make([]byte, sectorSize), faultState: newFaultState(sectors)}
	if err := d.loadSidecar(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

func (d *FileDevice) sidecarPath() string { return d.path + ".faults" }

// loadSidecar reads the fault sidecar. A leftover <sidecar>.tmp from a
// crash mid-save is removed unread — only the renamed-into-place file
// is ever trusted.
func (d *FileDevice) loadSidecar() error {
	os.Remove(d.sidecarPath() + ".tmp")
	raw, err := os.ReadFile(d.sidecarPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var sc faultSidecar
	if err := json.Unmarshal(raw, &sc); err != nil {
		return fmt.Errorf("store: fault sidecar %s: %w", d.sidecarPath(), err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = sc.Failed
	for _, idx := range sc.Bad {
		if idx >= 0 && idx < d.sectors && !d.bad[idx] {
			d.bad[idx] = true
			d.nbad++
		}
	}
	return nil
}

// saveSidecarLocked persists fault metadata atomically: write to a temp
// file, fsync it, then rename into place. The fsync matters — renaming
// an unsynced file can survive a crash as an empty or truncated
// sidecar, silently dropping fault state. With no faults present the
// sidecar is removed. Callers hold mu.
func (d *FileDevice) saveSidecarLocked() error {
	sc := faultSidecar{Failed: d.failed, Bad: d.badListLocked()}
	sort.Ints(sc.Bad)
	if !sc.Failed && len(sc.Bad) == 0 {
		err := os.Remove(d.sidecarPath())
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	raw, err := json.Marshal(sc)
	if err != nil {
		return err
	}
	tmp := d.sidecarPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, d.sidecarPath())
}

// Sectors returns the device capacity in sectors.
func (d *FileDevice) Sectors() int { return d.sectors }

// SectorSize returns the sector payload size.
func (d *FileDevice) SectorSize() int { return d.sectorSize }

// ReadSectors fills bufs from the backing file with one pread covering
// the whole extent; bad sectors are reported as SectorErrors while the
// readable ones are still returned. When bufs tiles one contiguous
// region and the extent has no bad sectors, the pread lands directly in
// the caller's memory with no intermediate copy.
func (d *FileDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := checkExtent(d.sectors, start, len(bufs)); err != nil {
		return err
	}
	if err := checkBufs(d.sectorSize, bufs); err != nil {
		return err
	}
	if len(bufs) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	lost := d.lostLocked(start, len(bufs))
	if flat, ok := flatSpan(bufs); ok && len(lost) == 0 {
		// Zero-copy path: the contract requires lost buffers to be left
		// untouched, so it applies only when the extent is wholly good.
		_, err := d.f.ReadAt(flat, int64(start)*int64(d.sectorSize))
		return err
	}
	d.scratchFlats.Add(1)
	scratch := mem.Acquire(len(bufs) * d.sectorSize)
	defer mem.Release(scratch)
	if _, err := d.f.ReadAt(scratch, int64(start)*int64(d.sectorSize)); err != nil {
		return err
	}
	for i, buf := range bufs {
		if d.bad[start+i] {
			continue
		}
		copy(buf, scratch[i*d.sectorSize:(i+1)*d.sectorSize])
	}
	if len(lost) > 0 {
		return lost
	}
	return nil
}

// WriteSectors stores data with one pwrite covering the whole extent,
// healing (and persisting the healing of) any bad sectors it covers.
// A contiguous buffer vector is written directly — no gather copy.
func (d *FileDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := checkExtent(d.sectors, start, len(data)); err != nil {
		return err
	}
	if err := checkBufs(d.sectorSize, data); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if flat, ok := flatSpan(data); ok {
		if _, err := d.f.WriteAt(flat, int64(start)*int64(d.sectorSize)); err != nil {
			return err
		}
	} else {
		d.scratchFlats.Add(1)
		scratch := mem.Acquire(len(data) * d.sectorSize)
		for i, buf := range data {
			copy(scratch[i*d.sectorSize:], buf)
		}
		_, err := d.f.WriteAt(scratch, int64(start)*int64(d.sectorSize))
		mem.Release(scratch)
		if err != nil {
			return err
		}
	}
	healed := false
	for i := range data {
		if d.healLocked(start + i) {
			healed = true
		}
	}
	if healed {
		return d.saveSidecarLocked()
	}
	return nil
}

// zeroFileLocked rewrites the backing file as all zeros. Callers hold mu.
func (d *FileDevice) zeroFileLocked() error {
	if err := d.f.Truncate(0); err != nil {
		return err
	}
	return d.f.Truncate(int64(d.sectors) * int64(d.sectorSize))
}

// Fail marks the device wholly failed — durably, before destroying the
// payload, so a crash in between cannot leave a zeroed device that
// looks healthy on the next open.
func (d *FileDevice) Fail() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	wasFailed := d.failed
	d.failed = true
	if err := d.saveSidecarLocked(); err != nil {
		d.failed = wasFailed
		return err
	}
	return d.zeroFileLocked()
}

// Failed reports whole-device failure.
func (d *FileDevice) Failed() bool { return d.isFailed() }

// Replace swaps in a fresh zeroed file; every sector starts bad. The
// all-bad mark is persisted before the old payload is destroyed.
func (d *FileDevice) Replace() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.replaceLocked()
	if err := d.saveSidecarLocked(); err != nil {
		return err
	}
	return d.zeroFileLocked()
}

// InjectSectorError marks one sector lost — durably, before zeroing its
// payload.
func (d *FileDevice) InjectSectorError(idx int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.injectLocked(idx); err != nil {
		return err
	}
	if err := d.saveSidecarLocked(); err != nil {
		return err
	}
	_, err := d.f.WriteAt(d.zero, int64(idx)*int64(d.sectorSize))
	return err
}

// ScratchFlats reports how many vectored calls fell back to an
// intermediate scratch flat instead of the zero-copy contiguous path —
// an observability hook for the copy-elision tests and benchmarks.
func (d *FileDevice) ScratchFlats() uint64 { return d.scratchFlats.Load() }

// CorruptSector flips one payload bit of a sector on disk WITHOUT
// marking it bad or touching the fault sidecar — silent corruption:
// reads keep succeeding and serve the rotten bytes (the Corrupter
// capability).
func (d *FileDevice) CorruptSector(idx int) error {
	if err := checkExtent(d.sectors, idx, 1); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	var b [1]byte
	off := int64(idx) * int64(d.sectorSize)
	if _, err := d.f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0x01
	_, err := d.f.WriteAt(b[:], off)
	return err
}

// BadSectors returns the latent-sector-error count.
func (d *FileDevice) BadSectors() int { return d.badCount() }

// Sync fsyncs the backing file, making every acknowledged write durable
// — the FileDevice half of the store's Sync durability barrier.
func (d *FileDevice) Sync(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

// Close closes the backing file.
func (d *FileDevice) Close() error { return d.f.Close() }
