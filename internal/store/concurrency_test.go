package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stair/internal/core"
)

// TestConcurrentStripeOperations is the sharded-lock stress test (run
// under -race in CI): workers hammer disjoint stripe ranges with writes
// and read-back verification while a background scrubber, explicit
// scrub passes and a pool of repair workers heal injected latent sector
// errors. Stripes are independent units of encoding and recovery, so
// none of this traffic may lose an update or skew the counters.
func TestConcurrentStripeOperations(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	const (
		stripes = 16
		workers = 8
		rounds  = 6
	)
	s, err := Open(Config{
		Code:            code,
		SectorSize:      64,
		Stripes:         stripes,
		RepairWorkers:   4,
		LockShards:      8,
		MaxDirtyStripes: 4, // small bound forces cross-shard evictions
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// One latent sector error per stripe keeps repair traffic flowing
	// underneath the foreground load.
	for stripe := 0; stripe < stripes; stripe++ {
		if err := s.InjectSectorError(stripe%s.n, s.devSector(stripe, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.StartScrubber(ScrubberOptions{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	// payload stamps a block's content with the round that wrote it, so
	// a read-back detects lost updates.
	payload := func(b, round int) []byte {
		return blockData(b*(rounds+1)+round, s.BlockSize())
	}
	stripesPerWorker := stripes / workers
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * stripesPerWorker * s.perStripe
			hi := lo + stripesPerWorker*s.perStripe
			for round := 1; round <= rounds; round++ {
				for b := lo; b < hi; b++ {
					if err := s.WriteBlock(bg, b, payload(b, round)); err != nil {
						errCh <- fmt.Errorf("worker %d round %d: write block %d: %w", w, round, b, err)
						return
					}
				}
				for b := lo; b < hi; b++ {
					got, err := s.ReadBlock(bg, b)
					if err != nil {
						errCh <- fmt.Errorf("worker %d round %d: read block %d: %w", w, round, b, err)
						return
					}
					if !bytes.Equal(got, payload(b, round)) {
						errCh <- fmt.Errorf("worker %d round %d: block %d lost its update", w, round, b)
						return
					}
				}
			}
		}(w)
	}
	// Synchronous scrub passes compete with the background scrubber and
	// the foreground load for the same shard locks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := s.Scrub(bg); err != nil {
				errCh <- fmt.Errorf("concurrent scrub: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s.StopScrubber()

	// Converge the repair wave, then verify content, parity and stats.
	deadline := time.Now().Add(10 * time.Second)
	for s.TotalBadSectors() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repairs did not converge; %d bad sectors left", s.TotalBadSectors())
		}
		if _, err := s.Scrub(bg); err != nil {
			t.Fatal(err)
		}
		s.Quiesce()
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	finalReads := 0
	for b := 0; b < s.Blocks(); b++ {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatalf("final read of block %d: %v", b, err)
		}
		finalReads++
		if !bytes.Equal(got, payload(b, rounds)) {
			t.Fatalf("block %d does not hold its final round", b)
		}
	}
	checkStripesConsistent(t, s)

	st := s.Stats()
	wantWrites := uint64(s.Blocks()) * (rounds + 1) // fill + every round
	if st.Writes != wantWrites {
		t.Errorf("Writes=%d, want exactly %d (no lost or double-counted writes)", st.Writes, wantWrites)
	}
	wantReads := uint64(s.Blocks())*rounds + uint64(finalReads)
	if st.Reads != wantReads {
		t.Errorf("Reads=%d, want exactly %d", st.Reads, wantReads)
	}
	if st.UnrecoverableStripes != 0 {
		t.Errorf("UnrecoverableStripes=%d under coverage-internal damage", st.UnrecoverableStripes)
	}
	if got := len(s.UnrecoverableStripes()); got != 0 {
		t.Errorf("%d stripes marked unrecoverable", got)
	}
}

// cancelOnStripeRead wraps a MemDevice and cancels a context the first
// time an extent of the target stripe is read — aborting a Flush sweep
// deterministically partway through its drain.
type cancelOnStripeRead struct {
	*MemDevice
	r      int
	stripe int
	cancel context.CancelFunc
	once   sync.Once
}

func (d *cancelOnStripeRead) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if start/d.r == d.stripe {
		d.once.Do(d.cancel)
	}
	return d.MemDevice.ReadSectors(ctx, start, bufs)
}

// TestFlushCancelledMidDrain: a Flush whose context dies partway
// through the sweep must leave every undrained stripe still buffered —
// readable with its unflushed content — and a later Flush with a live
// context lands them all.
func TestFlushCancelledMidDrain(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	const stripes = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	devs := make([]Device, code.N())
	for i := range devs {
		devs[i] = NewMemDevice(stripes*code.R(), 128)
	}
	// The sweep runs stripes in ascending order; the wrapped device 0
	// kills the context when the sweep reaches stripe 1's RMW load.
	devs[0] = &cancelOnStripeRead{
		MemDevice: NewMemDevice(stripes*code.R(), 128),
		r:         code.R(), stripe: 1, cancel: cancel,
	}
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: stripes, Devices: devs, MaxDirtyStripes: stripes})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for stripe := 0; stripe < stripes; stripe++ {
		if err := s.WriteBlock(bg, stripe*s.perStripe, blockData(stripe, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Flush returned %v, want context.Canceled", err)
	}
	// Stripe 0 drained before the cancellation; stripes 1–3 must still
	// be dirty, their buffered writes intact and readable.
	if got := int(s.dirtyCount.Load()); got != stripes-1 {
		t.Fatalf("dirtyCount=%d after cancelled Flush, want %d undrained stripes", got, stripes-1)
	}
	for stripe := 0; stripe < stripes; stripe++ {
		got, err := s.ReadBlock(bg, stripe*s.perStripe)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockData(stripe, s.BlockSize())) {
			t.Fatalf("stripe %d's buffered write lost across the cancelled Flush", stripe)
		}
	}
	// A later Flush with a live context lands every undrained stripe.
	if err := s.Flush(bg); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if got := int(s.dirtyCount.Load()); got != 0 {
		t.Fatalf("dirtyCount=%d after retry, want 0", got)
	}
	if st := s.Stats(); st.SubStripeFlushes != stripes {
		t.Errorf("SubStripeFlushes=%d, want %d", st.SubStripeFlushes, stripes)
	}
	checkStripesConsistent(t, s)
}

// TestConcurrentDegradedReadsSameStripe: many readers of one degraded
// stripe share the cached reconstruction — the decode runs a handful of
// times, not once per read.
func TestConcurrentDegradedReadsSameStripe(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2, RepairWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	if err := s.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	var deadBlock int = -1
	for b := 0; b < s.perStripe; b++ {
		if s.dataCells[b].Col == 2 {
			deadBlock = b
			break
		}
	}
	if deadBlock < 0 {
		t.Fatal("no data cell on device 2")
	}
	const readers, reads = 8, 50
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < reads; j++ {
				got, err := s.ReadBlock(bg, deadBlock)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, blockData(deadBlock, s.BlockSize())) {
					errCh <- fmt.Errorf("degraded read returned wrong data")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DegradedReads != readers*reads {
		t.Errorf("DegradedReads=%d, want %d", st.DegradedReads, readers*reads)
	}
	if st.DegradedCacheHits < readers*reads-1 {
		t.Errorf("DegradedCacheHits=%d, want ≥ %d (reads serialise on the shard lock, so only the first decodes)",
			st.DegradedCacheHits, readers*reads-1)
	}
}
