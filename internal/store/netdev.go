package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"stair/internal/store/mem"
)

// The NetDevice wire protocol. One vectored store operation is one HTTP
// round trip, which is the whole point of the vectored Device API: the
// per-sector API would cost R round trips per device per stripe.
//
//	GET  /v1/geometry            → {"sectors":N,"sector_size":S}
//	GET  /v1/read?start=S&count=C → body C×S bytes; lost sectors zeroed
//	                               and listed in Stair-Lost-Sectors
//	POST /v1/write?start=S        → body len multiple of S; sectors that
//	                               failed to land listed in
//	                               Stair-Failed-Sectors
//	POST /v1/sync                 → flushes the remote device to stable
//	                               storage (no-op when the remote backend
//	                               has no Syncer capability)
//	POST /v1/fault/{fail,replace,inject?sector=N}
//	GET  /v1/fault               → {"failed":bool,"bad_sectors":N}
//
// A wholly failed device answers data requests with 503 and
// Stair-Error: device-failed. Context cancellation propagates as the
// HTTP request's context on the client and as request-context
// cancellation on the server.
const (
	lostSectorsHeader   = "Stair-Lost-Sectors"
	failedSectorsHeader = "Stair-Failed-Sectors"
	netErrHeader        = "Stair-Error"
	netErrDeviceFailed  = "device-failed"
)

type netGeometry struct {
	Sectors    int `json:"sectors"`
	SectorSize int `json:"sector_size"`
}

type netFaultStatus struct {
	Failed     bool `json:"failed"`
	BadSectors int  `json:"bad_sectors"`
}

// DeviceServerMetrics is the JSON shape of a device server's
// /v1/metrics endpoint: cumulative request counters since process
// start, plus the device's current fault state.
type DeviceServerMetrics struct {
	Reads          uint64 `json:"reads"`
	Writes         uint64 `json:"writes"`
	Syncs          uint64 `json:"syncs"`
	ReadSectors    uint64 `json:"read_sectors"`
	WrittenSectors uint64 `json:"written_sectors"`
	ReadErrors     uint64 `json:"read_errors"`
	WriteErrors    uint64 `json:"write_errors"`
	LostSectors    uint64 `json:"lost_sectors"`
	Failed         bool   `json:"failed"`
	BadSectors     int    `json:"bad_sectors"`
}

// DeviceServer exports a Device over HTTP for NetDevice clients. Fault
// endpoints work when the wrapped device implements FaultDevice.
type DeviceServer struct {
	dev Device
	mux *http.ServeMux

	reads, writes, syncs        atomic.Uint64
	readSectors, writtenSectors atomic.Uint64
	readErrors, writeErrors     atomic.Uint64
	lostSectors                 atomic.Uint64
}

// NewDeviceServer builds the HTTP handler exporting dev.
func NewDeviceServer(dev Device) *DeviceServer {
	s := &DeviceServer{dev: dev, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/geometry", s.handleGeometry)
	s.mux.HandleFunc("GET /v1/read", s.handleRead)
	s.mux.HandleFunc("POST /v1/write", s.handleWrite)
	s.mux.HandleFunc("POST /v1/sync", s.handleSync)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/fault/fail", s.handleFaultOp)
	s.mux.HandleFunc("POST /v1/fault/replace", s.handleFaultOp)
	s.mux.HandleFunc("POST /v1/fault/inject", s.handleFaultOp)
	s.mux.HandleFunc("GET /v1/fault", s.handleFaultStatus)
	return s
}

// Metrics snapshots the server's request counters and fault state.
func (s *DeviceServer) Metrics() DeviceServerMetrics {
	m := DeviceServerMetrics{
		Reads:          s.reads.Load(),
		Writes:         s.writes.Load(),
		Syncs:          s.syncs.Load(),
		ReadSectors:    s.readSectors.Load(),
		WrittenSectors: s.writtenSectors.Load(),
		ReadErrors:     s.readErrors.Load(),
		WriteErrors:    s.writeErrors.Load(),
		LostSectors:    s.lostSectors.Load(),
	}
	if fd, ok := s.dev.(FaultDevice); ok {
		m.Failed = fd.Failed()
		m.BadSectors = fd.BadSectors()
	}
	return m
}

func (s *DeviceServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Metrics())
}

// ServeHTTP implements http.Handler.
func (s *DeviceServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *DeviceServer) handleGeometry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, netGeometry{Sectors: s.dev.Sectors(), SectorSize: s.dev.SectorSize()})
}

// sectorList renders absolute sector indexes for a response header.
func sectorList(errs SectorErrors) string {
	idx := make([]string, len(errs))
	for i, se := range errs {
		idx[i] = strconv.Itoa(se.Index)
	}
	return strings.Join(idx, ",")
}

// parseSectorList parses a Stair-*-Sectors header back into the
// SectorErrors the remote device reported.
func parseSectorList(header string, cause error) (SectorErrors, error) {
	if header == "" {
		return nil, nil
	}
	var out SectorErrors
	for _, part := range strings.Split(header, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("store: bad sector list %q from device server", header)
		}
		out = append(out, SectorError{Index: idx, Err: cause})
	}
	return out, nil
}

func (s *DeviceServer) handleRead(w http.ResponseWriter, r *http.Request) {
	start, err1 := strconv.Atoi(r.URL.Query().Get("start"))
	count, err2 := strconv.Atoi(r.URL.Query().Get("count"))
	if err1 != nil || err2 != nil {
		http.Error(w, "bad start/count", http.StatusBadRequest)
		return
	}
	// Validate the remote-supplied extent before allocating count
	// sectors of response buffer: a hostile count must not OOM the
	// process exporting the device.
	if err := checkExtent(s.dev.Sectors(), start, count); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	size := s.dev.SectorSize()
	// The response staging flat is pooled; it must be zeroed because
	// the wire format promises lost sectors come back as zeros (the
	// wrapped device leaves their buffers untouched). Dropped to the GC
	// instead of recycled when the request was cancelled mid-device-call
	// — an abandoned inner operation may still reference it.
	flat := mem.Acquire(count * size)
	clear(flat)
	defer func() {
		if r.Context().Err() == nil {
			mem.Release(flat)
		}
	}()
	bufs := make([][]byte, count)
	for i := range bufs {
		bufs[i] = flat[i*size : (i+1)*size]
	}
	s.reads.Add(1)
	s.readSectors.Add(uint64(count))
	err := s.dev.ReadSectors(r.Context(), start, bufs)
	if lost, ok := AsSectorErrors(err); ok {
		s.lostSectors.Add(uint64(len(lost)))
		w.Header().Set(lostSectorsHeader, sectorList(lost))
	} else if err != nil {
		s.readErrors.Add(1)
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(flat)
}

func (s *DeviceServer) handleWrite(w http.ResponseWriter, r *http.Request) {
	start, err := strconv.Atoi(r.URL.Query().Get("start"))
	if err != nil {
		http.Error(w, "bad start", http.StatusBadRequest)
		return
	}
	size := s.dev.SectorSize()
	// The device's whole capacity bounds any valid write body; reading
	// more than that (+1 to detect overshoot) is refused, not buffered.
	maxBody := int64(s.dev.Sectors()) * int64(size)
	// With a declared Content-Length the body stages into a pooled flat
	// sized exactly for it; chunked bodies (length -1) fall back to
	// ReadAll. The flat is recycled unless the request was cancelled
	// mid-device-call (see handleRead).
	var flat []byte
	var pooled bool
	if cl := r.ContentLength; cl >= 0 && cl <= maxBody {
		flat = mem.Acquire(int(cl))
		pooled = true
		if _, err := io.ReadFull(r.Body, flat); err != nil {
			mem.Release(flat)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		var err error
		flat, err = io.ReadAll(io.LimitReader(r.Body, maxBody+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if pooled {
		defer func() {
			if r.Context().Err() == nil {
				mem.Release(flat)
			}
		}()
	}
	if int64(len(flat)) > maxBody {
		http.Error(w, "body exceeds device capacity", http.StatusBadRequest)
		return
	}
	if len(flat)%size != 0 {
		http.Error(w, fmt.Sprintf("body %d bytes is not a sector multiple", len(flat)), http.StatusBadRequest)
		return
	}
	if err := checkExtent(s.dev.Sectors(), start, len(flat)/size); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data := make([][]byte, len(flat)/size)
	for i := range data {
		data[i] = flat[i*size : (i+1)*size]
	}
	s.writes.Add(1)
	s.writtenSectors.Add(uint64(len(data)))
	err = s.dev.WriteSectors(r.Context(), start, data)
	if failed, ok := AsSectorErrors(err); ok {
		s.lostSectors.Add(uint64(len(failed)))
		w.Header().Set(failedSectorsHeader, sectorList(failed))
	} else if err != nil {
		s.writeErrors.Add(1)
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// handleSync flushes the wrapped device to stable storage. A wrapped
// device without the Syncer capability syncs trivially — the endpoint
// still answers 200 so remote callers need not probe capabilities.
func (s *DeviceServer) handleSync(w http.ResponseWriter, r *http.Request) {
	s.syncs.Add(1)
	if err := SyncDevice(r.Context(), s.dev); err != nil {
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *DeviceServer) handleFaultOp(w http.ResponseWriter, r *http.Request) {
	fd, ok := s.dev.(FaultDevice)
	if !ok {
		http.Error(w, "device does not support fault injection", http.StatusNotImplemented)
		return
	}
	var err error
	switch {
	case strings.HasSuffix(r.URL.Path, "/fail"):
		err = fd.Fail()
	case strings.HasSuffix(r.URL.Path, "/replace"):
		err = fd.Replace()
	default:
		var sector int
		if sector, err = strconv.Atoi(r.URL.Query().Get("sector")); err != nil {
			http.Error(w, "bad sector", http.StatusBadRequest)
			return
		}
		err = fd.InjectSectorError(sector)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *DeviceServer) handleFaultStatus(w http.ResponseWriter, r *http.Request) {
	fd, ok := s.dev.(FaultDevice)
	if !ok {
		http.Error(w, "device does not support fault injection", http.StatusNotImplemented)
		return
	}
	writeJSON(w, netFaultStatus{Failed: fd.Failed(), BadSectors: fd.BadSectors()})
}

// writeError maps device errors onto the wire: a wholly failed device
// is 503 + Stair-Error so the client can reconstruct ErrDeviceFailed;
// anything else is a plain 500.
func (s *DeviceServer) writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrDeviceFailed) {
		w.Header().Set(netErrHeader, netErrDeviceFailed)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// RetryPolicy bounds the NetDevice client's retries of transient
// failures: transport errors (connection reset, refused, EOF) and 5xx
// responses other than the device-failed signal. 4xx responses (the
// request itself is wrong), ErrDeviceFailed (a state, not a blip) and
// context cancellation are never retried. Sector reads and writes are
// idempotent, so re-issuing a request whose response was lost is safe.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included);
	// values < 1 mean one attempt, i.e. no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay, with ±50% jitter so a fleet
	// of clients recovering together does not stampede the server.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. 0 means uncapped.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is what DialNetDevice installs: three attempts,
// 5 ms base backoff, capped at 100 ms.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}

// delay computes the backoff before retry attempt (1-based), with
// jitter.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	// ±50% jitter.
	return d/2 + time.Duration(rand.Int63n(int64(d)+1))
}

// NetDevice is an HTTP client for a DeviceServer: a Device (and
// FaultDevice) whose every vectored call is one round trip. It is the
// remote-backend existence proof for the vectored API — with the old
// one-sector-at-a-time interface, a full-stripe flush against it would
// cost R round trips per device instead of one.
//
// Transient transport errors and 5xx responses are retried with
// exponential backoff per the device's RetryPolicy (SetRetryPolicy to
// tune; Retries() counts what happened).
type NetDevice struct {
	base       string
	hc         *http.Client
	sectors    int
	sectorSize int
	retry      RetryPolicy
	retries    atomic.Uint64
	// scratchFlats counts vectored calls that fell back to a gather or
	// scatter copy because the caller's buffers were not one contiguous
	// region — the copy-elision tests assert it stays zero for
	// slab-backed extents.
	scratchFlats atomic.Uint64
}

// ScratchFlats reports how many vectored calls fell back to an
// intermediate flat copy instead of using the caller's contiguous
// memory directly.
func (d *NetDevice) ScratchFlats() uint64 { return d.scratchFlats.Load() }

// DialNetDevice connects to a DeviceServer at baseURL (no trailing
// slash needed) and fetches its geometry. A nil client selects
// http.DefaultClient.
func DialNetDevice(ctx context.Context, baseURL string, client *http.Client) (*NetDevice, error) {
	if client == nil {
		client = http.DefaultClient
	}
	d := &NetDevice{base: strings.TrimSuffix(baseURL, "/"), hc: client, retry: DefaultRetryPolicy}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.base+"/v1/geometry", nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.do(req)
	if err != nil {
		return nil, fmt.Errorf("store: dialing device server %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	var geo netGeometry
	if err := json.NewDecoder(resp.Body).Decode(&geo); err != nil {
		return nil, fmt.Errorf("store: device server %s: bad geometry: %w", baseURL, err)
	}
	if geo.Sectors < 1 || geo.SectorSize < 1 {
		return nil, fmt.Errorf("store: device server %s: bad geometry %d×%d", baseURL, geo.Sectors, geo.SectorSize)
	}
	d.sectors, d.sectorSize = geo.Sectors, geo.SectorSize
	return d, nil
}

// Sectors returns the remote device's capacity.
func (d *NetDevice) Sectors() int { return d.sectors }

// SectorSize returns the remote device's sector size.
func (d *NetDevice) SectorSize() int { return d.sectorSize }

// SetRetryPolicy replaces the device's retry policy (DefaultRetryPolicy
// after dial). It must not race in-flight calls; configure the device
// before handing it to a store.
func (d *NetDevice) SetRetryPolicy(p RetryPolicy) { d.retry = p }

// Retries counts retry attempts the client has issued (not the first
// tries) since dial.
func (d *NetDevice) Retries() uint64 { return d.retries.Load() }

// do runs one request and maps transport- and device-level failures,
// retrying transient ones per the device's RetryPolicy.
func (d *NetDevice) do(req *http.Request) (*http.Response, error) {
	attempts := d.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err, transient := d.doOnce(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !transient || attempt >= attempts {
			return nil, lastErr
		}
		d.retries.Add(1)
		// Context-aware backoff: a caller cancelling mid-wait aborts the
		// retry loop immediately instead of sleeping it out.
		if wait := d.retry.delay(attempt); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-req.Context().Done():
				t.Stop()
				return nil, req.Context().Err()
			case <-t.C:
			}
		} else if cerr := req.Context().Err(); cerr != nil {
			return nil, cerr
		}
	}
}

// doOnce issues one attempt; transient reports whether a retry could
// help (transport errors and 5xx short of the device-failed signal).
func (d *NetDevice) doOnce(req *http.Request) (resp *http.Response, err error, transient bool) {
	attempt := req
	if req.GetBody != nil {
		// Rewind the body for this attempt (http.NewRequest with a
		// *bytes.Reader installs GetBody; the first attempt may have
		// consumed it).
		body, berr := req.GetBody()
		if berr != nil {
			return nil, berr, false
		}
		attempt = req.Clone(req.Context())
		attempt.Body = body
	}
	resp, err = d.hc.Do(attempt)
	if err != nil {
		// Transport failure. Context cancellation is the caller's
		// decision, not a blip.
		if cerr := req.Context().Err(); cerr != nil {
			return nil, cerr, false
		}
		return nil, err, true
	}
	if resp.StatusCode == http.StatusOK {
		return resp, nil, false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if resp.Header.Get(netErrHeader) == netErrDeviceFailed {
		// A wholly failed device is a state the control plane must
		// change; retrying cannot help and only delays the degraded path.
		return nil, ErrDeviceFailed, false
	}
	err = fmt.Errorf("store: device server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	return nil, err, resp.StatusCode >= 500
}

// ReadSectors fetches the extent in one round trip. Remotely lost
// sectors come back as SectorErrors wrapping ErrBadSector, with every
// readable buffer filled.
func (d *NetDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if err := checkExtent(d.sectors, start, len(bufs)); err != nil {
		return err
	}
	if err := checkBufs(d.sectorSize, bufs); err != nil {
		return err
	}
	if len(bufs) == 0 {
		return ctx.Err()
	}
	url := fmt.Sprintf("%s/v1/read?start=%d&count=%d", d.base, start, len(bufs))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := d.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// A contiguous buffer vector receives the body directly; the wire
	// format fills every sector (lost ones come back zeroed and listed
	// in the header), so writing straight into the caller's memory is
	// byte-identical to the scatter path. Body reads are synchronous —
	// the transport never retains the destination after Read returns —
	// so a pooled fallback flat can always be recycled.
	flat, contiguous := flatSpan(bufs)
	var pooled []byte
	if !contiguous {
		d.scratchFlats.Add(1)
		pooled = mem.Acquire(len(bufs) * d.sectorSize)
		flat = pooled
	}
	if _, err := io.ReadFull(resp.Body, flat); err != nil {
		if pooled != nil {
			mem.Release(pooled)
		}
		return fmt.Errorf("store: short read from device server: %w", err)
	}
	if pooled != nil {
		for i, buf := range bufs {
			copy(buf, pooled[i*d.sectorSize:(i+1)*d.sectorSize])
		}
		mem.Release(pooled)
	}
	lost, err := parseSectorList(resp.Header.Get(lostSectorsHeader), ErrBadSector)
	if err != nil {
		return err
	}
	if len(lost) > 0 {
		return lost
	}
	return nil
}

// WriteSectors stores the extent in one round trip. Sectors the remote
// device could not land come back as SectorErrors.
func (d *NetDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if err := checkExtent(d.sectors, start, len(data)); err != nil {
		return err
	}
	if err := checkBufs(d.sectorSize, data); err != nil {
		return err
	}
	if len(data) == 0 {
		return ctx.Err()
	}
	// A contiguous buffer vector becomes the request body directly —
	// the transport reads it in place, no gather copy. Scattered
	// vectors gather into a pooled flat, recycled only when the call
	// succeeded without retries: a failed or retried attempt can leave
	// a transport write loop still reading the flat, so those are
	// dropped to the GC instead.
	flat, contiguous := flatSpan(data)
	var pooled []byte
	if !contiguous {
		d.scratchFlats.Add(1)
		pooled = mem.Acquire(len(data) * d.sectorSize)
		off := 0
		for _, buf := range data {
			off += copy(pooled[off:], buf)
		}
		flat = pooled
	}
	url := fmt.Sprintf("%s/v1/write?start=%d", d.base, start)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(flat))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	retriesBefore := d.retries.Load()
	resp, err := d.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if pooled != nil && d.retries.Load() == retriesBefore {
		mem.Release(pooled)
	}
	failed, err := parseSectorList(resp.Header.Get(failedSectorsHeader), fmt.Errorf("store: remote write failed"))
	if err != nil {
		return err
	}
	if len(failed) > 0 {
		return failed
	}
	return nil
}

// Sync asks the server to flush the remote device to stable storage —
// one round trip, implementing the optional Syncer capability for the
// remote backend.
func (d *NetDevice) Sync(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.base+"/v1/sync", nil)
	if err != nil {
		return err
	}
	resp, err := d.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Ping probes the server's liveness with one unretried round trip (a
// health check that silently retried would hide exactly the flakiness a
// failure detector exists to count). Any response at all — even an
// error status — proves the process is alive; only transport failure
// (or cancellation) reports it down.
func (d *NetDevice) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.base+"/v1/geometry", nil)
	if err != nil {
		return err
	}
	resp, err := d.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	return nil
}

// faultPost issues one control-plane request (no caller context: the
// FaultDevice interface is context-free).
func (d *NetDevice) faultPost(path string) error {
	req, err := http.NewRequest(http.MethodPost, d.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := d.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Fail marks the remote device wholly failed.
func (d *NetDevice) Fail() error { return d.faultPost("/v1/fault/fail") }

// Replace swaps in a fresh remote device whose sectors are all bad.
func (d *NetDevice) Replace() error { return d.faultPost("/v1/fault/replace") }

// InjectSectorError marks one remote sector as a latent error.
func (d *NetDevice) InjectSectorError(idx int) error {
	return d.faultPost(fmt.Sprintf("/v1/fault/inject?sector=%d", idx))
}

// faultStatus fetches the remote fault state; transport errors read as
// a healthy device (the FaultDevice interface has no error channel for
// status queries).
func (d *NetDevice) faultStatus() netFaultStatus {
	req, err := http.NewRequest(http.MethodGet, d.base+"/v1/fault", nil)
	if err != nil {
		return netFaultStatus{}
	}
	resp, err := d.do(req)
	if err != nil {
		return netFaultStatus{}
	}
	defer resp.Body.Close()
	var st netFaultStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return netFaultStatus{}
	}
	return st
}

// Failed reports whether the remote device is wholly failed.
func (d *NetDevice) Failed() bool { return d.faultStatus().Failed }

// BadSectors returns the remote latent-sector-error count.
func (d *NetDevice) BadSectors() int { return d.faultStatus().BadSectors }

// Close drops idle connections to the server.
func (d *NetDevice) Close() error {
	d.hc.CloseIdleConnections()
	return nil
}
