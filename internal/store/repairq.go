package store

import (
	"container/heap"
	"sync"
)

// repairQueue is the bounded, risk-ordered background repair queue.
// Stripes are repaired most-at-risk first: a stripe's risk is its lost
// sector count at enqueue time, so a stripe close to the code's
// coverage edge (one more failure from unrecoverable) jumps ahead of a
// stripe with a single latent error, however long the latter has been
// waiting. Ties break FIFO so equal-risk stripes cannot starve each
// other.
//
// The bound plays the same role the old channel capacity did: a full
// queue drops the request and a later scrub pass re-finds the stripe.
type repairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	items  repairHeap
	closed bool
	seq    uint64
}

// repairItem orders one request in the heap; seq is the FIFO tiebreak.
type repairItem struct {
	req repairReq
	seq uint64
}

type repairHeap []repairItem

func (h repairHeap) Len() int { return len(h) }
func (h repairHeap) Less(i, j int) bool {
	if h[i].req.risk != h[j].req.risk {
		return h[i].req.risk > h[j].req.risk // most lost sectors first
	}
	return h[i].seq < h[j].seq
}
func (h repairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *repairHeap) Push(x any)   { *h = append(*h, x.(repairItem)) }
func (h *repairHeap) Pop() (item any) { // standard container/heap tail pop
	old := *h
	n := len(old)
	item = old[n-1]
	*h = old[:n-1]
	return item
}

func newRepairQueue(capacity int) *repairQueue {
	q := &repairQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a request; false when the queue is full or closed (the
// caller drops the request, as with the old channel's default arm).
func (q *repairQueue) push(req repairReq) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.cap {
		return false
	}
	q.seq++
	heap.Push(&q.items, repairItem{req: req, seq: q.seq})
	q.cond.Signal()
	return true
}

// pop blocks until the highest-risk request is available, draining
// whatever remains after close before reporting ok=false.
func (q *repairQueue) pop() (repairReq, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return repairReq{}, false
	}
	return heap.Pop(&q.items).(repairItem).req, true
}

// close wakes every blocked pop; subsequent pushes are refused.
func (q *repairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
