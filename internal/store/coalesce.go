package store

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stair/internal/store/mem"
)

// CoalesceOptions tunes a CoalescingDevice.
type CoalesceOptions struct {
	// Window is how long the first request of a batch waits for
	// neighbours before dispatching. 0 selects 200µs. Longer windows
	// merge more aggressively at the cost of added first-byte latency on
	// idle devices.
	Window time.Duration
	// MaxSectors caps one merged inner call; a run growing past it is
	// dispatched as multiple calls. 0 selects 4096.
	MaxSectors int
}

const (
	defaultCoalesceWindow     = 200 * time.Microsecond
	defaultCoalesceMaxSectors = 4096
)

// CoalesceStats counts what the coalescer saved.
type CoalesceStats struct {
	// Reads/Writes count caller-issued vectored operations.
	Reads, Writes uint64
	// InnerReads/InnerWrites count calls actually issued to the wrapped
	// device; the spread against Reads/Writes is the round trips merged
	// away.
	InnerReads, InnerWrites uint64
	// MergedReads/MergedWrites count caller operations that shared an
	// inner call with at least one other operation.
	MergedReads, MergedWrites uint64
	// ScratchFlats counts merged reads that needed an intermediate
	// staging flat because member extents overlapped; non-overlapping
	// batches stitch the members' own buffers into the inner call.
	ScratchFlats uint64
}

// CoalescingDevice wraps a Device and merges concurrent adjacent (or
// overlapping) extents into single vectored calls — the per-backend
// request coalescer of the cluster write path. The store already issues
// one call per device per stripe; with a concurrent flush pipeline,
// neighbouring stripes' chunks on the same backend are adjacent extents,
// and a backend that charges per call (a disk seek, an HTTP round trip)
// serves one merged call in a fraction of the time. Stripe write-back
// ordering is unaffected: the journal's per-stripe intents are appended
// (and fsynced) before the write-back call enters the coalescer, and a
// flush does not commit until its call — merged or not — returns, so
// crash consistency is exactly as strong as the uncoalesced path.
//
// Correctness with the store's locking: a caller blocks until the merged
// call covering its extent completes, so the store's shard locks keep
// same-stripe read-after-write ordering; cross-stripe merges carry no
// ordering obligation. A caller whose context dies while batched returns
// promptly with ctx.Err(); the merged call continues for the other
// members and is cancelled only when every member has abandoned it.
//
// Fault-injection hooks and Sync pass through to the wrapped device.
type CoalescingDevice struct {
	innerFaults
	window     time.Duration
	maxSectors int

	reads, writes coalesceQueue

	stats struct {
		reads, writes             atomic.Uint64
		innerReads, innerWrites   atomic.Uint64
		mergedReads, mergedWrites atomic.Uint64
		scratchFlats              atomic.Uint64
	}
}

// NewCoalescingDevice wraps inner with a request coalescer.
func NewCoalescingDevice(inner Device, opts CoalesceOptions) *CoalescingDevice {
	if opts.Window <= 0 {
		opts.Window = defaultCoalesceWindow
	}
	if opts.MaxSectors <= 0 {
		opts.MaxSectors = defaultCoalesceMaxSectors
	}
	d := &CoalescingDevice{
		innerFaults: innerFaults{inner: inner},
		window:      opts.Window,
		maxSectors:  opts.MaxSectors,
	}
	d.reads.dev, d.writes.dev = d, d
	d.writes.write = true
	return d
}

// Stats snapshots the merge counters.
func (d *CoalescingDevice) Stats() CoalesceStats {
	return CoalesceStats{
		Reads:        d.stats.reads.Load(),
		Writes:       d.stats.writes.Load(),
		InnerReads:   d.stats.innerReads.Load(),
		InnerWrites:  d.stats.innerWrites.Load(),
		MergedReads:  d.stats.mergedReads.Load(),
		MergedWrites: d.stats.mergedWrites.Load(),
		ScratchFlats: d.stats.scratchFlats.Load(),
	}
}

// Sectors returns the wrapped device's capacity.
func (d *CoalescingDevice) Sectors() int { return d.inner.Sectors() }

// SectorSize returns the wrapped device's sector size.
func (d *CoalescingDevice) SectorSize() int { return d.inner.SectorSize() }

// ReadSectors joins the read batch window; adjacent concurrent reads
// share one inner call.
func (d *CoalescingDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	d.stats.reads.Add(1)
	return d.reads.submit(ctx, start, bufs)
}

// WriteSectors joins the write batch window; adjacent concurrent writes
// share one inner call.
func (d *CoalescingDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	d.stats.writes.Add(1)
	return d.writes.submit(ctx, start, data)
}

// Sync forwards the durability barrier to the wrapped device.
func (d *CoalescingDevice) Sync(ctx context.Context) error { return SyncDevice(ctx, d.inner) }

// Close closes the wrapped device. In-flight batches hold their own
// references; callers must not Close with operations outstanding (the
// store's shutdown drains before closing devices).
func (d *CoalescingDevice) Close() error { return d.inner.Close() }

// coalReq is one caller operation waiting in a batch window.
type coalReq struct {
	ctx   context.Context
	start int
	bufs  [][]byte
	done  chan error // buffered; the dispatcher never blocks on it
}

// coalesceQueue is one direction's (read or write) batching state.
type coalesceQueue struct {
	dev   *CoalescingDevice
	write bool

	mu      sync.Mutex
	pending []*coalReq
	open    bool // a dispatcher is sleeping out the window
}

// submit validates and enqueues one operation, opening a batch window if
// none is pending, and waits for its result. An already-cancelled (or
// cancelled-while-waiting) context returns promptly; the batch keeps the
// request's buffers until its inner call completes, which is safe — for
// reads the abandoned scratch is dropped, for writes the data slices are
// immutable for the duration by the Device contract.
func (q *coalesceQueue) submit(ctx context.Context, start int, bufs [][]byte) error {
	d := q.dev
	if err := checkExtent(d.Sectors(), start, len(bufs)); err != nil {
		return err
	}
	if err := checkBufs(d.SectorSize(), bufs); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(bufs) == 0 {
		return nil
	}
	req := &coalReq{ctx: ctx, start: start, bufs: bufs, done: make(chan error, 1)}
	q.mu.Lock()
	q.pending = append(q.pending, req)
	lead := !q.open
	if lead {
		q.open = true
	}
	q.mu.Unlock()
	if lead {
		go q.dispatch()
	}
	select {
	case err := <-req.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// dispatch sleeps out the batch window, takes every pending request, and
// issues the merged inner calls. It closes the window before issuing, so
// requests arriving during a slow inner call start a fresh batch instead
// of queueing behind it.
func (q *coalesceQueue) dispatch() {
	timer := time.NewTimer(q.dev.window)
	<-timer.C
	q.mu.Lock()
	batch := q.pending
	q.pending = nil
	q.open = false
	q.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	// Drop members whose context already died; they have already
	// returned ctx.Err() to their callers.
	live := batch[:0]
	for _, req := range batch {
		if req.ctx.Err() != nil {
			req.done <- req.ctx.Err()
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	sort.SliceStable(live, func(i, j int) bool { return live[i].start < live[j].start })
	// Split into maximal runs of overlapping-or-adjacent extents, capped
	// at MaxSectors, and serve each run with one inner call.
	for i := 0; i < len(live); {
		end := live[i].start + len(live[i].bufs)
		j := i + 1
		for j < len(live) && live[j].start <= end {
			e := live[j].start + len(live[j].bufs)
			if e > end {
				if e-live[i].start > q.dev.maxSectors {
					break
				}
				end = e
			}
			j++
		}
		q.issue(live[i:j], live[i].start, end)
		i = j
	}
}

// issue serves one merged run [start, end) for its member requests.
//
// A single-member run passes the caller's buffer vector straight
// through. A multi-member run stitches the members' own buffers into
// the merged vector by slicing — runs are built from
// overlapping-or-adjacent extents, so when no two members collide on a
// sector the members exactly tile the run and the inner call reads or
// writes the callers' memory directly. Only overlapping *reads* still
// need an intermediate flat (two callers want the same sector in
// different buffers); that flat is pooled and, per the drop-on-cancel
// rule, recycled only when the inner call was not abandoned mid-flight.
func (q *coalesceQueue) issue(members []*coalReq, start, end int) {
	d := q.dev
	if q.write {
		d.stats.innerWrites.Add(1)
		if len(members) > 1 {
			d.stats.mergedWrites.Add(uint64(len(members)))
		}
	} else {
		d.stats.innerReads.Add(1)
		if len(members) > 1 {
			d.stats.mergedReads.Add(uint64(len(members)))
		}
	}
	count := end - start
	var merged [][]byte
	var flat []byte // non-nil: overlapping read staged through a pooled flat
	if len(members) == 1 {
		merged = members[0].bufs
	} else {
		merged = make([][]byte, count)
		overlap := false
	place:
		// On overlap the later-sorted member wins the slot — for writes
		// that is the same nondeterminism two racing uncoalesced writes
		// have; for reads the loser is what forces the staging flat.
		for _, req := range members {
			for i, buf := range req.bufs {
				slot := req.start - start + i
				if merged[slot] != nil && !q.write {
					overlap = true
					break place
				}
				merged[slot] = buf
			}
		}
		if overlap {
			d.stats.scratchFlats.Add(1)
			flat = mem.Acquire(count * d.SectorSize())
			// Zeroed so lost sectors copy out as zeros, not pool garbage.
			clear(flat)
			for i := range merged {
				merged[i] = flat[i*d.SectorSize() : (i+1)*d.SectorSize()]
			}
		}
	}
	ctx, cancel := mergedContext(members)
	var err error
	if q.write {
		err = d.inner.WriteSectors(ctx, start, merged)
	} else {
		err = d.inner.ReadSectors(ctx, start, merged)
	}
	abandoned := ctx.Err() != nil
	cancel()
	se, partial := AsSectorErrors(err)
	for _, req := range members {
		var memberErr error
		switch {
		case err == nil, partial:
			if flat != nil {
				for i, buf := range req.bufs {
					copy(buf, merged[req.start-start+i])
				}
			}
			if partial {
				if sub := se.slice(req.start, req.start+len(req.bufs)); len(sub) > 0 {
					memberErr = sub
				}
			}
		default:
			memberErr = err
		}
		req.done <- memberErr
	}
	if flat != nil && !abandoned {
		mem.Release(flat)
	}
}

// slice returns the sector errors falling inside [start, end).
func (e SectorErrors) slice(start, end int) SectorErrors {
	var out SectorErrors
	for _, se := range e {
		if se.Index >= start && se.Index < end {
			out = append(out, se)
		}
	}
	return out
}

// mergedContext derives the context a merged inner call runs under: it
// is cancelled only when every member's context is done, so one caller
// giving up cannot kill a call its batch-mates still want. A member with
// an uncancellable context pins the call for its full duration.
func mergedContext(members []*coalReq) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	remaining := int64(len(members))
	var once sync.Once
	stop := make(chan struct{})
	release := func() { once.Do(func() { close(stop) }) }
	for _, req := range members {
		ch := req.ctx.Done()
		if ch == nil {
			// Never cancelled: the merged call runs to completion.
			return ctx, func() { release(); cancel() }
		}
		go func(ch <-chan struct{}) {
			select {
			case <-ch:
				if atomic.AddInt64(&remaining, -1) == 0 {
					cancel()
				}
			case <-stop:
			}
		}(ch)
	}
	return ctx, func() { release(); cancel() }
}
