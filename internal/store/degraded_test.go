package store

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"stair/internal/core"
)

// TestDegradedReadDeviceFailure: after m whole-device failures every
// block still reads back correctly through on-the-fly reconstruction.
func TestDegradedReadDeviceFailure(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	for _, dev := range []int{1, 4} {
		if err := s.FailDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	checkAllBlocks(t, s)
	st := s.Stats()
	if st.DegradedReads == 0 {
		t.Fatal("no degraded reads recorded with two failed devices")
	}
	if st.UnrecoverableStripes != 0 {
		t.Fatalf("UnrecoverableStripes=%d within coverage", st.UnrecoverableStripes)
	}
}

// TestDegradedReadSectorErrors: latent sector errors within the coverage
// vector are reconstructed on read.
func TestDegradedReadSectorErrors(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// Stripe 1: a 2-sector burst in chunk 0 and a single in chunk 3 —
	// exactly the e=[1,2] coverage.
	if err := s.InjectBurst(0, s.devSector(1, 1), 2); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectSectorError(3, s.devSector(1, 2)); err != nil {
		t.Fatal(err)
	}
	checkAllBlocks(t, s)
	if st := s.Stats(); st.DegradedReads == 0 {
		t.Fatal("no degraded reads recorded")
	}
}

// TestScrubRepairConverges: the scrubber finds injected latent errors and
// the repair queue heals every one of them.
func TestScrubRepairConverges(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// Damage every stripe within coverage: one burst of 2 plus a single.
	for stripe := 0; stripe < s.stripes; stripe++ {
		chunk := stripe % s.n
		other := (stripe + 3) % s.n
		if err := s.InjectBurst(chunk, s.devSector(stripe, 0), 2); err != nil {
			t.Fatal(err)
		}
		if err := s.InjectSectorError(other, s.devSector(stripe, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.TotalBadSectors(); got != 3*s.stripes {
		t.Fatalf("TotalBadSectors=%d, want %d", got, 3*s.stripes)
	}
	rep, err := s.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StripesChecked != s.stripes || rep.StripesDamaged != s.stripes {
		t.Fatalf("scrub report %+v, want all %d stripes damaged", rep, s.stripes)
	}
	s.Quiesce()
	if got := s.TotalBadSectors(); got != 0 {
		t.Fatalf("TotalBadSectors=%d after scrub+repair, want 0", got)
	}
	st := s.Stats()
	if st.ScrubHits != uint64(s.stripes) {
		t.Errorf("ScrubHits=%d, want %d", st.ScrubHits, s.stripes)
	}
	if st.RepairedSectors != uint64(3*s.stripes) {
		t.Errorf("RepairedSectors=%d, want %d", st.RepairedSectors, 3*s.stripes)
	}
	checkAllBlocks(t, s)
	checkStripesConsistent(t, s)
	if st := s.Stats(); st.DegradedReads != 0 {
		t.Errorf("DegradedReads=%d after full repair, want 0", st.DegradedReads)
	}
}

// TestBackgroundScrubber: a running scrubber heals injected damage
// without any explicit Scrub call.
func TestBackgroundScrubber(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	if err := s.StartScrubber(ScrubberOptions{Interval: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := s.StartScrubber(ScrubberOptions{Interval: time.Millisecond}); err == nil {
		t.Fatal("second scrubber accepted")
	}
	if err := s.InjectBurst(2, s.devSector(1, 1), 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.TotalBadSectors() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber did not heal the burst in time")
		}
		time.Sleep(time.Millisecond)
	}
	s.StopScrubber()
	s.Quiesce()
	checkAllBlocks(t, s)
}

// TestReplaceRebuild: a failed device replaced with a fresh one is
// rebuilt sector by sector, after which reads are no longer degraded.
func TestReplaceRebuild(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	if err := s.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	checkAllBlocks(t, s) // degraded but correct
	if err := s.ReplaceDevice(2); err != nil {
		t.Fatal(err)
	}
	if err := s.RebuildDevice(bg, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalBadSectors(); got != 0 {
		t.Fatalf("TotalBadSectors=%d after rebuild, want 0", got)
	}
	base := s.Stats().DegradedReads
	checkAllBlocks(t, s)
	if got := s.Stats().DegradedReads; got != base {
		t.Fatalf("reads still degraded after rebuild (%d → %d)", base, got)
	}
	checkStripesConsistent(t, s)
}

// TestUnrecoverablePattern: a failure pattern outside coverage surfaces
// ErrUnrecoverable and the counter — never corrupt data — while blocks
// on surviving devices stay readable.
func TestUnrecoverablePattern(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// m+1 = 3 failed devices exceed the coverage.
	for _, dev := range []int{0, 1, 2} {
		if err := s.FailDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	sawUnrecoverable := false
	for b := 0; b < s.Blocks(); b++ {
		_, _, cell, _ := s.blockOf(b)
		got, err := s.ReadBlock(bg, b)
		if cell.Col <= 2 {
			if !errors.Is(err, ErrUnrecoverable) {
				t.Fatalf("block %d on failed device: err=%v, want ErrUnrecoverable", b, err)
			}
			sawUnrecoverable = true
			continue
		}
		if err != nil {
			t.Fatalf("block %d on live device: %v", b, err)
		}
		if !bytes.Equal(got, blockData(b, s.BlockSize())) {
			t.Fatalf("block %d corrupt", b)
		}
	}
	if !sawUnrecoverable {
		t.Fatal("no unrecoverable blocks seen")
	}
	st := s.Stats()
	if st.UnrecoverableStripes != uint64(s.stripes) {
		t.Errorf("UnrecoverableStripes=%d, want %d", st.UnrecoverableStripes, s.stripes)
	}
	if got := s.UnrecoverableStripes(); len(got) != s.stripes {
		t.Errorf("UnrecoverableStripes()=%v, want all %d stripes", got, s.stripes)
	}
	// Scrub must not queue unrecoverable stripes forever, and a full
	// rewrite resurrects one.
	if _, err := s.Scrub(bg); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	for b := 0; b < s.perStripe; b++ {
		if err := s.WriteBlock(bg, b, blockData(b, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.UnrecoverableStripes(); len(got) != s.stripes-1 {
		t.Errorf("after full-stripe rewrite: unrecoverable=%v, want %d stripes", got, s.stripes-1)
	}
}

// TestRepairQueueBound: more damaged stripes than queue slots drops the
// overflow (counted), and a later scrub pass converges anyway.
func TestRepairQueueBound(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 8, RepairQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	for stripe := 0; stripe < s.stripes; stripe++ {
		if err := s.InjectSectorError(1, s.devSector(stripe, 0)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.TotalBadSectors() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repairs did not converge; %d bad sectors left", s.TotalBadSectors())
		}
		if _, err := s.Scrub(bg); err != nil {
			t.Fatal(err)
		}
		s.Quiesce()
	}
	checkAllBlocks(t, s)
}
