// Package store is a sector-addressed block store that maps a logical
// volume onto STAIR stripes over a pluggable device backend — the
// storage-system layer the paper's motivation describes (§1–2), built on
// the internal/core codec.
//
// The store owns the stripe lifecycle around the codec:
//
//   - the write path batches block writes in per-stripe buffers; a fully
//     dirty stripe is flushed through a parallel full-stripe encode
//     (internal/core's multi-core path, §6.2.1), while a partially dirty
//     stripe takes a read–modify–write using the §5.2 uneven parity
//     relations, rewriting only the parity sectors that actually depend
//     on the changed cells;
//   - the read path transparently serves degraded reads: when a device
//     is failed or a sector read errors, the lost cells are rebuilt on
//     the fly via the upstairs decoding fast path (§4.2–4.3), cached
//     while the stripe stays degraded, and the stripe is queued for
//     background repair;
//   - a background scrubber sweeps stripes — optionally paced to a
//     stripes/sec budget — detects latent sector errors and feeds a
//     bounded repair queue drained by a pool of repair workers, which
//     write reconstructed sectors back to writable devices.
//
// Device I/O is vectored and context-aware: every stripe-granular path
// (flush, load, scrub, repair) issues one ReadSectors/WriteSectors call
// per device per stripe, so a remote backend pays one round trip where
// the per-sector API would pay R, and a caller's context deadline or
// cancellation aborts in-flight device waits instead of wedging the
// store. Public Store methods take a context for the same reason.
//
// Stripes are independent units of encoding and recovery, and the store
// exploits that: per-stripe state lives in a striped lock table
// (lockShard), so reads, writes, scrub steps and repairs on different
// stripes proceed concurrently rather than serialising on one mutex.
//
// Failure patterns outside the code's coverage surface as
// ErrUnrecoverable (and an UnrecoverableStripes counter) rather than
// corrupt data. Devices follow the fail-stop sector model the paper
// assumes: latent sector errors are detected (by drive-internal ECC) at
// access time, so scrubbing is a read sweep, not a checksum audit.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"stair/internal/core"
	"stair/internal/store/integrity"
	"stair/internal/store/journal"
	"stair/internal/store/mem"
)

// ErrUnrecoverable aliases the codec's error for failure patterns outside
// the configured coverage; store errors wrap it.
var ErrUnrecoverable = core.ErrUnrecoverable

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("store: closed")

// Config describes a Store.
type Config struct {
	// Code is the compiled STAIR code protecting every stripe. Only
	// Inside placement is supported: the store has no out-of-band
	// location for global parity sectors.
	Code *core.Code
	// SectorSize is the device sector (= logical block) size in bytes;
	// it must be a positive multiple of the code's symbol width.
	SectorSize int
	// Stripes is the number of stripes in the volume.
	Stripes int
	// Devices supplies the Code.N() backing devices, each with
	// Stripes×Code.R() sectors. Nil consults DeviceFactory, then falls
	// back to in-memory devices.
	Devices []Device
	// DeviceFactory, when non-nil and Devices is nil, builds the backing
	// device for each stripe column — the pluggable seam the cluster
	// layer (and any custom backend wiring: wrappers, remote dials)
	// hooks into without materialising a slice up front. A factory error
	// aborts Open; devices built so far are closed.
	DeviceFactory func(col int) (Device, error)
	// Workers bounds the per-stripe encode/repair parallelism
	// (internal/core's region splitting); 0 selects GOMAXPROCS.
	Workers int
	// MaxDirtyStripes bounds the write buffer: exceeding it flushes the
	// fullest buffered stripe. 0 selects 8.
	MaxDirtyStripes int
	// RepairQueue bounds the background repair queue; requests beyond
	// it are dropped (and re-found by a later scrub pass). 0 selects 64.
	RepairQueue int
	// RepairWorkers sizes the pool draining the repair queue; workers
	// repair distinct stripes concurrently (each under its stripe's
	// shard lock). 0 selects 1.
	RepairWorkers int
	// LockShards sizes the striped lock table: stripes hash to shards,
	// and operations on stripes in different shards run in parallel.
	// 0 selects 32; the value is rounded up to a power of two.
	LockShards int
	// DegradedCache bounds the LRU cache of reconstructed degraded
	// stripes, in stripes: repeated reads of a still-degraded stripe
	// are served from the cached reconstruction instead of re-running
	// the upstairs decode per block. 0 selects 8; negative disables
	// the cache.
	DegradedCache int
	// FlushWorkers sizes the asynchronous flush pipeline: with workers,
	// a filled or evicted stripe buffer is handed to a background pool
	// that encodes and writes it back while the writer keeps going, and
	// Flush becomes "drain the pipeline". 0 keeps the write path
	// synchronous (a filled buffer flushes inline, as before).
	FlushWorkers int
	// MaxInflightEncodes bounds concurrent stripe encodes across the
	// flush pipeline and explicit Flush callers, so a wide pipeline on
	// slow devices cannot stack up unbounded CPU-heavy encodes. 0
	// selects FlushWorkers (unbounded when the pipeline is off).
	MaxInflightEncodes int
	// Integrity, when non-nil, enables the end-to-end per-sector
	// checksum layer (internal/store/integrity): every data and parity
	// sector gets a CRC32C record — salted with its device address and
	// the volume epoch, so misdirected and stale writes are caught too —
	// persisted in a per-device sidecar region appended after the data
	// sectors. Devices must then have Stripes×Code.R() +
	// IntegrityMetaSectors(...) sectors. Reads, scrubs and recovery
	// verify payloads against the records; a mismatch becomes a located
	// erasure the decoder repairs.
	Integrity *IntegrityOptions
	// Journal, when non-nil, makes stripe write-back crash-consistent:
	// every flush durably records an intent (stripe, dirty block
	// ordinals, data checksums) before any device write, writes data
	// then parity, and commits after — and Open replays pending
	// intents, re-verifying parity and rolling interrupted
	// read–modify–writes forward (see Recovery). The store uses the
	// journal but does not close it; the caller owns its lifecycle and
	// must close it only after Close returns.
	Journal *journal.Journal
}

// IntegrityOptions configures the end-to-end checksum layer.
type IntegrityOptions struct {
	// Epoch is salted into every digest (and recorded alongside it), so
	// records written under an older volume identity fail verification
	// instead of vouching for stale data. Pick any stable value per
	// volume generation; 0 is valid.
	Epoch uint32
	// DisableVerify keeps maintaining checksum records on writes but
	// skips verification on reads and scrubs — the A/B escape hatch.
	// The STAIR_INTEGRITY=off (or 0/false) environment variable forces
	// it at Open.
	DisableVerify bool
}

// IntegrityMetaSectors returns the per-device sidecar size, in sectors,
// the integrity layer needs for a volume of the given geometry — the
// amount to add to each device's Stripes×R data sectors.
func IntegrityMetaSectors(stripes, r, sectorSize int) int {
	return integrity.MetaSectors(stripes*r, sectorSize)
}

// integrityEnvOff reports whether the STAIR_INTEGRITY environment
// variable disables verification.
func integrityEnvOff() bool {
	switch os.Getenv("STAIR_INTEGRITY") {
	case "off", "0", "false":
		return true
	}
	return false
}

// stripeBuf accumulates dirty data blocks of one stripe, indexed by data
// cell ordinal (the code's DataCells order). stuck marks a buffer whose
// flush failed (e.g. its stripe is unrecoverably degraded, or the
// flush's context was cancelled mid-write-back): eviction skips it so
// the same error is not re-reported on every unrelated write, but
// explicit Flush (and the filling-to-full fast path) still retry it.
type stripeBuf struct {
	// data[ord] is nil until block ord is written, then a sector-sized
	// sub-slice of slab at the block's chunk-major stripe offset — so a
	// full buffer's rows tile the slab exactly like a loaded stripe, and
	// the full-stripe flush encodes and writes back in place, zero-copy.
	data  [][]byte
	slab  []byte
	count int
	stuck bool
	// queued marks a buffer handed to the asynchronous flush pipeline
	// and not yet picked up by a worker; it dedupes pipeline entries.
	queued bool
}

// Store is a STAIR-protected block store. Public methods are safe for
// concurrent use.
type Store struct {
	code       *core.Code
	devs       []Device
	n, r       int
	stripes    int
	sectorSize int
	workers    int
	maxDirty   int

	dataCells []core.Cell
	perStripe int

	// Zero-copy stripe memory (see arena.go): slabLen is the pooled
	// slab size backing one stripe, ordOff maps a data-cell ordinal to
	// its chunk-major byte offset within a slab, and bufPool recycles
	// stripeBuf shells between flushes.
	slabLen int
	ordOff  []int
	bufPool sync.Pool

	// integ, when non-nil, is the end-to-end checksum layer; integVerify
	// gates verification (false = maintain records, never check them).
	// dataSectors is the per-device data region size (stripes×r) — the
	// sidecar region starts there.
	integ       *integrity.Manager
	integVerify bool
	dataSectors int

	// sortedDataCells/parityCells/isDataCell pre-split the stripe's
	// cells for the journaled two-phase (data, then parity) write-back.
	sortedDataCells []core.Cell
	parityCells     []core.Cell
	isDataCell      map[core.Cell]bool

	// shards stripe ownership: every per-stripe mutation happens under
	// the owning shard's mutex. shardMask is len(shards)-1.
	shards    []lockShard
	shardMask int

	// dirtyCount and pendingCount are cross-shard aggregates (buffered
	// stripes, queued-or-running repairs) kept atomically so the hot
	// paths never need a global lock.
	dirtyCount   atomic.Int64
	pendingCount atomic.Int64
	closed       atomic.Bool

	// stateMu guards the scrubber lifecycle and Close/Quiesce
	// coordination only; it is never held together with a shard mutex.
	stateMu   sync.Mutex
	idle      *sync.Cond    // signaled when a repair request completes
	scrubStop chan struct{} // closes to stop the background scrubber
	scrubDone chan struct{} // closed by the scrubber goroutine on exit

	cache *stripeCache // nil when disabled

	repairQ *repairQueue
	quit    chan struct{} // closes to stop the background workers
	wg      sync.WaitGroup

	// journal, when non-nil, write-ahead-protects every stripe flush;
	// recovery holds the report of Open's journal replay.
	journal  *journal.Journal
	recovery RecoveryReport

	// The asynchronous flush pipeline (see flush.go). flushCh is nil
	// when the pipeline is off; encodeSem (nil = unbounded) rations
	// in-flight encodes; flushMu/flushIdle guard the in-flight count
	// and the sticky background-flush error.
	flushCh       chan int
	encodeSem     chan struct{}
	flushMu       sync.Mutex
	flushIdle     *sync.Cond
	flushInflight int
	asyncFlushErr error

	// testScrubErr, when set (by in-package tests, before any scrubber
	// starts), can fail a Scrub pass on demand — the only way to
	// exercise the scrubber's error exit, which has no organic trigger
	// on the built-in backends.
	testScrubErr func() error
	// testKill, when set, aborts a journaled flush at the given kill
	// point — the crash-injection hook the recovery tests drive.
	testKill func(killPoint) error
	// testRepairObserve, when set (before any repair traffic), is
	// called with each stripe a repair worker finishes — the ordering
	// probe for the risk-prioritised queue tests.
	testRepairObserve func(stripe int)

	c counters
}

// Open builds a store over cfg. When cfg.Devices is nil it allocates
// in-memory devices; Close closes whatever devices the store uses.
func Open(cfg Config) (*Store, error) {
	if cfg.Code == nil {
		return nil, fmt.Errorf("store: nil code")
	}
	if cfg.Code.Config().Placement != core.Inside {
		return nil, fmt.Errorf("store: only Inside global-parity placement is supported")
	}
	if cfg.Stripes < 1 {
		return nil, fmt.Errorf("store: Stripes=%d must be ≥ 1", cfg.Stripes)
	}
	if cfg.SectorSize <= 0 || cfg.SectorSize%cfg.Code.Field().SymbolBytes() != 0 {
		return nil, fmt.Errorf("store: SectorSize=%d must be a positive multiple of %d",
			cfg.SectorSize, cfg.Code.Field().SymbolBytes())
	}
	n, r := cfg.Code.N(), cfg.Code.R()
	// With integrity on, every device carries a sidecar region of
	// checksum records after its data sectors.
	wantSectors := cfg.Stripes * r
	if cfg.Integrity != nil {
		if cfg.SectorSize < integrity.RecordSize || cfg.SectorSize%integrity.RecordSize != 0 {
			return nil, fmt.Errorf("store: SectorSize=%d must be a positive multiple of %d for integrity",
				cfg.SectorSize, integrity.RecordSize)
		}
		wantSectors += IntegrityMetaSectors(cfg.Stripes, r, cfg.SectorSize)
	}
	devs := cfg.Devices
	if devs == nil && cfg.DeviceFactory != nil {
		devs = make([]Device, n)
		for i := range devs {
			d, err := cfg.DeviceFactory(i)
			if err != nil {
				for _, prev := range devs[:i] {
					prev.Close()
				}
				return nil, fmt.Errorf("store: device factory (column %d): %w", i, err)
			}
			devs[i] = d
		}
	}
	if devs == nil {
		devs = make([]Device, n)
		for i := range devs {
			devs[i] = NewMemDevice(wantSectors, cfg.SectorSize)
		}
	}
	if len(devs) != n {
		return nil, fmt.Errorf("store: %d devices, want n=%d", len(devs), n)
	}
	for i, d := range devs {
		if d.Sectors() != wantSectors || d.SectorSize() != cfg.SectorSize {
			return nil, fmt.Errorf("store: device %d geometry %d×%d, want %d×%d",
				i, d.Sectors(), d.SectorSize(), wantSectors, cfg.SectorSize)
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return nil, fmt.Errorf("store: Workers=%d must be ≥ 0", cfg.Workers)
	}
	maxDirty := cfg.MaxDirtyStripes
	if maxDirty == 0 {
		maxDirty = 8
	}
	queue := cfg.RepairQueue
	if queue == 0 {
		queue = 64
	}
	repairWorkers := cfg.RepairWorkers
	if repairWorkers == 0 {
		repairWorkers = 1
	}
	if repairWorkers < 1 {
		return nil, fmt.Errorf("store: RepairWorkers=%d must be ≥ 0", cfg.RepairWorkers)
	}
	if cfg.LockShards < 0 {
		return nil, fmt.Errorf("store: LockShards=%d must be ≥ 0", cfg.LockShards)
	}
	if cfg.FlushWorkers < 0 {
		return nil, fmt.Errorf("store: FlushWorkers=%d must be ≥ 0", cfg.FlushWorkers)
	}
	if cfg.MaxInflightEncodes < 0 {
		return nil, fmt.Errorf("store: MaxInflightEncodes=%d must be ≥ 0", cfg.MaxInflightEncodes)
	}
	cacheStripes := cfg.DegradedCache
	if cacheStripes == 0 {
		cacheStripes = defaultDegradedCache
	}
	nshards := shardCount(cfg.LockShards)
	s := &Store{
		code:       cfg.Code,
		devs:       devs,
		n:          n,
		r:          r,
		stripes:    cfg.Stripes,
		sectorSize: cfg.SectorSize,
		workers:    workers,
		maxDirty:   maxDirty,
		dataCells:  cfg.Code.DataCells(),
		shards:     newShards(nshards),
		shardMask:  nshards - 1,
		repairQ:    newRepairQueue(queue),
		quit:       make(chan struct{}),
		journal:    cfg.Journal,
	}
	// The cache owns the slab-backed stripes handed to it; evicted and
	// invalidated entries go back to the buffer pool.
	s.cache = newStripeCache(cacheStripes, s.releaseStripe)
	s.dataSectors = cfg.Stripes * r
	s.perStripe = len(s.dataCells)
	s.slabLen = cfg.Code.SlabSize(cfg.SectorSize)
	s.ordOff = make([]int, s.perStripe)
	for ord, cell := range s.dataCells {
		s.ordOff[ord] = (cell.Col*r + cell.Row) * cfg.SectorSize
	}
	s.idle = sync.NewCond(&s.stateMu)
	s.flushIdle = sync.NewCond(&s.flushMu)
	s.sortedDataCells = append([]core.Cell(nil), s.dataCells...)
	sortCells(s.sortedDataCells)
	s.parityCells = cfg.Code.ParityCells()
	sortCells(s.parityCells)
	s.isDataCell = make(map[core.Cell]bool, len(s.dataCells))
	for _, cell := range s.dataCells {
		s.isDataCell[cell] = true
	}
	maxEncodes := cfg.MaxInflightEncodes
	if maxEncodes == 0 {
		maxEncodes = cfg.FlushWorkers
	}
	if maxEncodes > 0 {
		s.encodeSem = make(chan struct{}, maxEncodes)
	}
	// The sidecar regions load before journal replay: recovery re-stages
	// fresh records for every stripe it touches, and verification after
	// reopen must see the surviving records, not blanks.
	if cfg.Integrity != nil {
		integ, err := integrity.NewManager(n, s.dataSectors, cfg.SectorSize, cfg.Integrity.Epoch)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.integ = integ
		s.integVerify = !cfg.Integrity.DisableVerify && !integrityEnvOff()
		s.loadIntegrityRegions(context.Background())
	}
	// Recovery runs before any traffic — and before the flush pipeline
	// exists — so the replay never races a concurrent flush.
	if s.journal != nil {
		if err := s.recoverJournal(); err != nil {
			return nil, fmt.Errorf("store: journal replay: %w", err)
		}
	}
	if cfg.FlushWorkers > 0 {
		// One channel slot per stripe: the queued flag dedupes entries,
		// so sendFlush can never block (see flush.go).
		s.flushCh = make(chan int, cfg.Stripes)
		s.wg.Add(cfg.FlushWorkers)
		for i := 0; i < cfg.FlushWorkers; i++ {
			go s.flushLoop()
		}
	}
	s.wg.Add(repairWorkers)
	for i := 0; i < repairWorkers; i++ {
		go s.repairLoop()
	}
	return s, nil
}

// BlockSize returns the logical block size (one sector).
func (s *Store) BlockSize() int { return s.sectorSize }

// Blocks returns the volume capacity in logical blocks.
func (s *Store) Blocks() int { return s.stripes * s.perStripe }

// Geometry returns (devices, stripes, sectors per chunk, sector size) —
// the same shape as raid.Array.Geometry, so the raid fault drivers can
// target a store.
func (s *Store) Geometry() (n, stripes, r, sectorSize int) {
	return s.n, s.stripes, s.r, s.sectorSize
}

// Code returns the protecting code.
func (s *Store) Code() *core.Code { return s.code }

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	st := s.c.snapshot()
	if s.cache != nil {
		s.cache.mu.Lock()
		st.DegradedCacheHits = s.cache.hits
		s.cache.mu.Unlock()
	}
	return st
}

// blockOf maps a logical block to its stripe and data cell.
func (s *Store) blockOf(b int) (stripe, ord int, cell core.Cell, err error) {
	if b < 0 || b >= s.Blocks() {
		return 0, 0, core.Cell{}, fmt.Errorf("store: block %d out of range [0,%d)", b, s.Blocks())
	}
	stripe, ord = b/s.perStripe, b%s.perStripe
	return stripe, ord, s.dataCells[ord], nil
}

// devSector maps (stripe, row) to the device sector index.
func (s *Store) devSector(stripe, row int) int { return stripe*s.r + row }

// WriteBlock buffers one block write. The write lands on devices when
// its stripe buffer fills (full-stripe encode), when the buffer bound
// evicts it, or at Flush/Close (incremental parity read–modify–write).
// ctx bounds any device I/O a triggered flush performs.
func (s *Store) WriteBlock(ctx context.Context, b int, data []byte) error {
	if len(data) != s.sectorSize {
		return fmt.Errorf("store: write of %d bytes, want block size %d", len(data), s.sectorSize)
	}
	if s.closed.Load() {
		return ErrClosed
	}
	stripe, ord, _, err := s.blockOf(b)
	if err != nil {
		return err
	}
	sh := s.shard(stripe)
	sh.mu.Lock()
	// Re-check under the shard lock: Close sets closed before its final
	// flush locks each shard, so a writer that got past the unlocked
	// check cannot buffer data the flush has already passed over (it
	// would be acknowledged and then silently lost).
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	buf := sh.dirty[stripe]
	if buf == nil {
		buf = s.acquireStripeBuf()
		sh.dirty[stripe] = buf
		s.dirtyCount.Add(1)
	}
	if buf.data[ord] == nil {
		buf.count++
		off := s.ordOff[ord]
		buf.data[ord] = buf.slab[off : off+s.sectorSize]
	}
	copy(buf.data[ord], data)
	s.c.writes.Add(1)
	if buf.count == s.perStripe {
		// A filled buffer flushes: inline in synchronous mode, handed
		// to the background pipeline otherwise (the writer keeps going;
		// errors surface at the next Flush/Sync/Close).
		if s.asyncFlush() {
			queued := s.queueFlushLocked(buf)
			sh.mu.Unlock()
			if queued {
				s.sendFlush(stripe)
			}
			return nil
		}
		err := s.flushStripeLocked(ctx, sh, stripe)
		sh.mu.Unlock()
		return err
	}
	sh.mu.Unlock()
	if s.dirtyCount.Load() > int64(s.maxDirty) {
		victim := s.fullestDirty(stripe)
		if s.asyncFlush() {
			// Hand the victim (if any) to the pipeline, then hold the
			// writer until the buffer count is back under the bound —
			// MaxDirtyStripes stays a real memory bound even when the
			// flush workers lag the writer.
			if victim >= 0 {
				vsh := s.shard(victim)
				vsh.mu.Lock()
				var queued bool
				if vbuf := vsh.dirty[victim]; vbuf != nil {
					queued = s.queueFlushLocked(vbuf)
				}
				vsh.mu.Unlock()
				if queued {
					s.sendFlush(victim)
				}
			}
			if err := s.flushBackpressure(ctx); err != nil {
				// The requested write IS buffered; only the wait died.
				return fmt.Errorf("store: block %d buffered, but awaiting the flush pipeline: %w", b, err)
			}
			return nil
		}
		if victim < 0 {
			return nil // every other buffer is stuck; nothing to evict
		}
		vsh := s.shard(victim)
		vsh.mu.Lock()
		err := s.flushStripeLocked(ctx, vsh, victim)
		vsh.mu.Unlock()
		if err != nil {
			// The requested write IS buffered; only the eviction failed.
			return fmt.Errorf("store: block %d buffered, but evicting stripe %d failed: %w", b, victim, err)
		}
	}
	return nil
}

// fullestDirty picks the buffered stripe with the most dirty blocks,
// excluding the one just written to (it is the hottest), any stuck
// buffers, and buffers already handed to the flush pipeline. It scans
// shard by shard, never holding more than one shard mutex; the result
// is advisory — a concurrent flush of the victim is harmless,
// flushStripeLocked no-ops on a missing buffer. Returns -1 when nothing
// is evictable.
func (s *Store) fullestDirty(except int) int {
	best, bestCount := -1, -1
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for stripe, buf := range sh.dirty {
			if stripe == except || buf.stuck || buf.queued {
				continue
			}
			if buf.count > bestCount || (buf.count == bestCount && stripe < best) {
				best, bestCount = stripe, buf.count
			}
		}
		sh.mu.Unlock()
	}
	return best
}

// Flush drains the write path: with the pipeline on it first waits out
// every queued or in-flight background flush, reports any background
// failure recorded since the last drain, then lands every remaining
// buffered stripe synchronously. A cancelled ctx aborts promptly —
// including any in-flight device wait — leaving the unflushed buffers
// intact for a retry.
func (s *Store) Flush(ctx context.Context) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.drainFlushPipeline(ctx); err != nil {
		return err
	}
	if err := s.takeAsyncFlushErr(); err != nil {
		return err
	}
	return s.flushAll(ctx)
}

// flushAll lands every buffered stripe, shard by shard (Close uses it
// after marking the store closed, so it does not re-check closed).
// Context cancellation stops the sweep at the first unflushed stripe.
// Buffers queued to the pipeline are swept too (the worker that later
// dequeues a flushed stripe finds no buffer and no-ops).
func (s *Store) flushAll(ctx context.Context) error {
	var stripes []int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for stripe := range sh.dirty {
			stripes = append(stripes, stripe)
		}
		sh.mu.Unlock()
	}
	sort.Ints(stripes)
	var first error
	for _, stripe := range stripes {
		if err := ctx.Err(); err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		sh := s.shard(stripe)
		sh.mu.Lock()
		err := s.flushStripeLocked(ctx, sh, stripe)
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// loadStripe reads one stripe off the devices — one vectored call per
// device; unreadable cells are listed in lost, and their contents are
// unspecified (the stripe is pooled, not zeroed) until the caller's
// decode reconstructs them. With
// verify set (and the integrity layer on), sectors that read fine but
// fail their checksum are *also* listed in lost — and, separately, in
// mismatched — turning silent corruption into located erasures the
// caller's decode repairs. Recovery passes verify=false: right after a
// crash, a sidecar record can legitimately lag the data it covers
// (the crash hit between the data write and the sidecar write), and
// replay must resolve that from the journal, not report corruption.
// The returned error is non-nil only for context cancellation. The
// caller holds the stripe's shard mutex, so the snapshot cannot
// interleave with a same-stripe writer.
func (s *Store) loadStripe(ctx context.Context, stripe int, verify bool) (st *core.Stripe, lost, mismatched []core.Cell, err error) {
	// The stripe is slab-backed and pooled: on success the caller owns
	// it and must release it (releaseStripeUnlessCancelled) once no
	// device operation can still reference its cells. On cancellation
	// the partially-filled stripe is dropped to the GC — an abandoned
	// device-side operation may still be writing into it.
	st = s.acquireStripe()
	sh := s.shard(stripe)
	bufs := sh.rowvec(s.r)
	verify = verify && s.integ != nil && s.integVerify
	var lostRow []bool
	if verify {
		if cap(sh.lostRow) < s.r {
			sh.lostRow = make([]bool, s.r)
		}
		lostRow = sh.lostRow[:s.r]
	}
	for col := 0; col < s.n; col++ {
		for row := range bufs {
			bufs[row] = st.Sector(col, row)
		}
		if verify {
			for row := range lostRow {
				lostRow[row] = false
			}
		}
		rerr := s.devs[col].ReadSectors(ctx, s.devSector(stripe, 0), bufs)
		if rerr != nil {
			if se, ok := AsSectorErrors(rerr); ok {
				// The vectored read names exactly the lost sectors; the
				// rest of the chunk is good and stays.
				for _, e := range se {
					row := e.Index - stripe*s.r
					lost = append(lost, core.Cell{Col: col, Row: row})
					if verify {
						lostRow[row] = true
					}
				}
			} else if cerr := ctx.Err(); cerr != nil {
				sh.dropScratchOnCancel()
				return nil, nil, nil, cerr
			} else {
				// Whole-call failure (failed device, transport down):
				// every cell of this chunk is lost.
				for row := 0; row < s.r; row++ {
					lost = append(lost, core.Cell{Col: col, Row: row})
				}
				continue
			}
		}
		if !verify {
			continue
		}
		for row := 0; row < s.r; row++ {
			if lostRow[row] {
				continue
			}
			switch s.integ.Verify(col, s.devSector(stripe, row), st.Sector(col, row)) {
			case integrity.OK:
				s.c.verifiedSectors.Add(1)
			case integrity.Mismatch:
				cell := core.Cell{Col: col, Row: row}
				lost = append(lost, cell)
				mismatched = append(mismatched, cell)
				s.c.checksumMismatches.Add(1)
			}
		}
	}
	return st, lost, mismatched, nil
}

// ReadBlock returns one logical block. Buffered (not yet flushed) writes
// are served from the stripe buffer; an unreadable sector is rebuilt on
// the fly through the degraded-read path — consulting the cache of
// still-degraded reconstructions first — and its stripe queued for
// background repair. ctx bounds the device reads, including the
// full-stripe load a degraded read performs.
//
// The returned buffer comes from the store's buffer pool; the caller
// owns it, and may hand it back with ReleaseBlock once done (optional —
// an unreleased buffer is simply reclaimed by the GC).
func (s *Store) ReadBlock(ctx context.Context, b int) ([]byte, error) {
	out := mem.Acquire(s.sectorSize)
	if err := s.ReadBlockInto(ctx, b, out); err != nil {
		if ctx.Err() == nil {
			mem.Release(out)
		}
		return nil, err
	}
	return out, nil
}

// ReleaseBlock returns a buffer obtained from ReadBlock to the store's
// buffer pool. The caller must not touch the buffer afterwards. Calling
// it is optional but keeps a read-heavy steady state allocation-free.
func (s *Store) ReleaseBlock(buf []byte) { mem.Release(buf) }

// ReadBlockInto is ReadBlock without the allocation: it reads block b
// into dst, which must be exactly BlockSize bytes. The caller owns dst
// throughout — with one caveat: if the call returns a context
// cancellation error, dst may still be referenced by an abandoned
// device-side operation and must be dropped, not recycled.
func (s *Store) ReadBlockInto(ctx context.Context, b int, dst []byte) error {
	if len(dst) != s.sectorSize {
		return fmt.Errorf("store: read into %d bytes, want block size %d", len(dst), s.sectorSize)
	}
	if s.closed.Load() {
		return ErrClosed
	}
	stripe, ord, cell, err := s.blockOf(b)
	if err != nil {
		return err
	}
	sh := s.shard(stripe)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Re-check under the shard lock (see WriteBlock): past this point
	// the devices may already be closed.
	if s.closed.Load() {
		return ErrClosed
	}
	if buf := sh.dirty[stripe]; buf != nil && buf.data[ord] != nil {
		s.c.reads.Add(1)
		copy(dst, buf.data[ord])
		return nil
	}
	vec := sh.rowvec(1)
	vec[0] = dst
	rerr := s.devs[cell.Col].ReadSectors(ctx, s.devSector(stripe, cell.Row), vec)
	vec[0] = nil
	if rerr == nil {
		mismatch := false
		if s.integ != nil && s.integVerify {
			switch s.integ.Verify(cell.Col, s.devSector(stripe, cell.Row), dst) {
			case integrity.OK:
				s.c.verifiedSectors.Add(1)
			case integrity.Mismatch:
				// The sector read fine but its checksum disagrees:
				// silent corruption (or a misdirected/stale write). Fall
				// into the degraded path below, which re-detects it as a
				// located erasure, repairs the stripe, and queues a
				// write-back with a fresh record.
				mismatch = true
			}
		}
		if !mismatch {
			s.c.reads.Add(1)
			return nil
		}
	} else if cerr := ctx.Err(); cerr != nil {
		sh.dropScratchOnCancel()
		return cerr
	}
	// Degraded read. A stripe already marked unrecoverable is refused
	// outright: re-running the decode could fabricate content (journal
	// replay marks stripes whose post-crash parity relations cannot be
	// trusted — reconstruction there solves contradictory equations
	// into garbage). The mark is cleared by the events that actually
	// change the stripe's standing: a full rewrite, a device
	// replacement, or a successful roll-forward.
	if sh.unrecoverable[stripe] {
		return fmt.Errorf("store: degraded read of block %d (stripe %d): %w", b, stripe, ErrUnrecoverable)
	}
	// A still-degraded stripe read before keeps its reconstruction
	// cached, so neighbours on the same stripe skip the per-block
	// decode. No repair is re-queued on a hit: the insert below already
	// queued one if it could make progress, and a request dropped by
	// the bounded queue is re-found by the next scrub pass — re-queuing
	// per read would only churn full-stripe loads that end at
	// repairStripeLocked's nothing-writable check.
	if s.cache.blockInto(stripe, cell, dst) {
		s.c.reads.Add(1)
		s.c.degradedReads.Add(1)
		return nil
	}
	// Rebuild the lost cells of the whole stripe via the upstairs fast
	// path and serve the request from the reconstruction.
	epoch := s.cache.snapshotEpoch()
	st, lost, _, err := s.loadStripe(ctx, stripe, true)
	if err != nil {
		return err
	}
	if err := s.code.RepairParallel(st, lost, s.workers); err != nil {
		if errors.Is(err, ErrUnrecoverable) {
			s.markUnrecoverableLocked(sh, stripe)
		}
		s.releaseStripe(st)
		return fmt.Errorf("store: degraded read of block %d (stripe %d, %d lost cells): %w",
			b, stripe, len(lost), err)
	}
	s.c.reads.Add(1)
	s.c.degradedReads.Add(1)
	// Copy the requested sector out BEFORE handing the reconstruction to
	// the cache: putAt takes ownership of st and may release its slab
	// immediately (epoch mismatch, refresh of an existing entry).
	copy(dst, st.Sector(cell.Col, cell.Row))
	// Queue a repair only when it can land somewhere: lost cells
	// confined to wholly failed devices wait for a replacement instead
	// of spinning the workers. The stripe's full lost count is its
	// queue priority — the closer to the coverage edge, the sooner a
	// worker takes it.
	if len(s.writableLost(lost)) > 0 {
		s.enqueueRepairLocked(sh, stripe, len(lost))
	}
	if s.cache == nil {
		s.releaseStripe(st)
	} else {
		s.cache.putAt(stripe, st, epoch)
	}
	return nil
}

// writableLost filters lost cells down to those on devices that will
// take a reconstruction write-back (i.e. not wholly failed).
func (s *Store) writableLost(lost []core.Cell) []core.Cell {
	writable := make([]core.Cell, 0, len(lost))
	for _, cell := range lost {
		if fd, ok := s.devs[cell.Col].(FaultDevice); ok && fd.Failed() {
			continue
		}
		writable = append(writable, cell)
	}
	return writable
}

// markUnrecoverableLocked records a stripe whose failure pattern fell
// outside coverage; the caller holds the stripe's shard mutex. The
// counter tracks map cardinality exactly, so Stats always reports the
// number of stripes currently marked.
func (s *Store) markUnrecoverableLocked(sh *lockShard, stripe int) {
	if !sh.unrecoverable[stripe] {
		sh.unrecoverable[stripe] = true
		s.c.unrecoverableStripes.Add(1)
	}
}

// clearUnrecoverableLocked drops a stripe's unrecoverable mark and
// decrements the counter in lockstep (PR 1 cleared the map but left the
// counter cumulative, double-counting stripes re-marked after a device
// replacement).
func (s *Store) clearUnrecoverableLocked(sh *lockShard, stripe int) {
	if sh.unrecoverable[stripe] {
		delete(sh.unrecoverable, stripe)
		s.c.unrecoverableStripes.Add(^uint64(0))
	}
}

// UnrecoverableStripes lists stripes observed (by reads, flushes, or the
// repair workers) to hold failure patterns outside the code's coverage.
func (s *Store) UnrecoverableStripes() []int {
	var out []int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for stripe := range sh.unrecoverable {
			out = append(out, stripe)
		}
		sh.mu.Unlock()
	}
	sort.Ints(out)
	return out
}

// repairReq is one queued repair request: risk is the stripe's lost
// sector count when it was queued (the repair queue serves
// highest-risk first); attempt counts retries after partial write-back
// failures.
type repairReq struct {
	stripe  int
	risk    int
	attempt int
}

// maxRepairAttempts bounds immediate retries of a stripe whose repair
// write-backs keep failing: a persistently unwritable (but not
// fail-stop) device must not spin the worker pool — past the cap the
// request is dropped like a queue overflow and a later scrub pass
// re-finds the stripe.
const maxRepairAttempts = 3

// enqueueRepairLocked queues a stripe for background repair with the
// given risk (its lost sector count — the repair queue serves
// highest-risk first); the caller holds the stripe's shard mutex. A
// full queue drops the request (a later scrub pass re-finds the
// stripe).
func (s *Store) enqueueRepairLocked(sh *lockShard, stripe, risk int) {
	s.enqueueAttemptLocked(sh, repairReq{stripe: stripe, risk: risk})
}

func (s *Store) enqueueAttemptLocked(sh *lockShard, req repairReq) {
	if s.closed.Load() || sh.pending[req.stripe] || sh.unrecoverable[req.stripe] {
		return
	}
	if req.attempt >= maxRepairAttempts {
		s.c.repairDrops.Add(1)
		return
	}
	if s.repairQ.push(req) {
		sh.pending[req.stripe] = true
		s.pendingCount.Add(1)
	} else {
		s.c.repairDrops.Add(1)
	}
}

// repairLoop is one repair worker: it drains the repair queue —
// highest-risk stripe first — until Close. Workers proceed in parallel
// on stripes in different shards. Repairs run under the store's own
// (background) context: they are not tied to any caller's deadline.
func (s *Store) repairLoop() {
	defer s.wg.Done()
	for {
		req, ok := s.repairQ.pop()
		if !ok {
			return
		}
		sh := s.shard(req.stripe)
		sh.mu.Lock()
		requeue := s.repairStripeLocked(context.Background(), sh, req.stripe)
		delete(sh.pending, req.stripe)
		if requeue {
			// Re-enqueue before dropping this request's pending count so
			// Quiesce never observes a spurious idle window.
			s.c.repairRequeues.Add(1)
			s.enqueueAttemptLocked(sh, repairReq{stripe: req.stripe, risk: req.risk, attempt: req.attempt + 1})
		}
		sh.mu.Unlock()
		if fn := s.testRepairObserve; fn != nil {
			fn(req.stripe)
		}
		s.pendingCount.Add(-1)
		s.stateMu.Lock()
		s.idle.Broadcast()
		s.stateMu.Unlock()
	}
}

// repairStripeLocked reconstructs a stripe's lost cells and writes them
// back to every device that will take the write; the caller holds the
// stripe's shard mutex. Lost cells on a wholly failed device are skipped
// — reconstruction would have nowhere to land — so the stripe stays
// (recoverably) degraded until the device is replaced. A stripe counts
// as repaired only when every lost cell landed; a partial write-back
// (some writes failed transiently, or the context was cancelled
// mid-sweep) reports requeue so the worker retries instead of silently
// leaving the stripe degraded.
func (s *Store) repairStripeLocked(ctx context.Context, sh *lockShard, stripe int) (requeue bool) {
	if sh.unrecoverable[stripe] {
		return false
	}
	st, lost, _, err := s.loadStripe(ctx, stripe, true)
	if err != nil {
		return false
	}
	// Whatever path exits below, the loaded stripe goes back to the
	// pool — unless the write-back was cancelled mid-flight, where an
	// abandoned device operation may still reference the slab.
	defer func() { s.releaseStripeUnlessCancelled(ctx, st) }()
	if len(lost) == 0 {
		return false
	}
	writable := s.writableLost(lost)
	if len(writable) == 0 {
		return false
	}
	if err := s.code.RepairParallel(st, lost, s.workers); err != nil {
		if errors.Is(err, ErrUnrecoverable) {
			s.markUnrecoverableLocked(sh, stripe)
		}
		return false
	}
	sortCells(writable)
	wrote, failed, err := s.writeStripeCells(ctx, stripe, st, writable)
	if wrote > 0 {
		s.c.repairedSectors.Add(uint64(wrote))
		// The repaired sectors' fresh records (staged by the write) go
		// durable now, so a scrub right after the repair sees a clean
		// stripe instead of re-flagging it.
		_ = s.flushStripeMeta(ctx, stripe, colsOf(writable))
	}
	if err != nil {
		// Cancelled mid-write-back: whatever landed is already counted;
		// retry the rest later.
		return true
	}
	if failed == 0 && len(writable) == len(lost) {
		// Fully healed: every lost cell is back on a device. Direct
		// reads work again, so the cached reconstruction is dead weight.
		s.c.repairedStripes.Add(1)
		s.cache.invalidate(stripe)
		return false
	}
	// Still degraded. Cells skipped on failed devices have nothing to
	// retry until a replacement arrives, but failed write-backs are
	// worth another attempt.
	return failed > 0
}

// Quiesce blocks until the repair queue is empty and every repair
// worker idle — the point where a scrub-triggered repair wave has
// converged.
func (s *Store) Quiesce() {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	for s.pendingCount.Load() > 0 && !s.closed.Load() {
		s.idle.Wait()
	}
}

// FailDevice marks a device wholly failed (fault injection). Reads of
// its sectors are served degraded from then on. Cached reconstructions
// are dropped: the failure pattern of every stripe just changed, and a
// read must re-evaluate coverage rather than serve pre-failure state.
func (s *Store) FailDevice(dev int) error {
	fd, err := s.faultDevice(dev)
	if err != nil {
		return err
	}
	if err := fd.Fail(); err != nil {
		return err
	}
	s.cache.purge()
	return nil
}

// ReplaceDevice swaps a failed device for a fresh one whose sectors are
// all unwritten. Rebuild (or scrub passes feeding the repair queue)
// restores its content. Replacement changes every stripe's failure
// pattern, so cached unrecoverable marks (and the counter mirroring
// them) are dropped and re-evaluated on the next access, and cached
// reconstructions are purged.
func (s *Store) ReplaceDevice(dev int) error {
	fd, err := s.faultDevice(dev)
	if err != nil {
		return err
	}
	if err := fd.Replace(); err != nil {
		return err
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for stripe := range sh.unrecoverable {
			s.clearUnrecoverableLocked(sh, stripe)
		}
		sh.mu.Unlock()
	}
	s.cache.purge()
	return nil
}

// RebuildDevice synchronously reconstructs every stripe touching the
// given (replaced) device, bypassing the bounded queue. Stripes whose
// write-backs fail transiently are left to the scrubber. A cancelled
// ctx stops the sweep between stripes and aborts in-flight device
// waits.
func (s *Store) RebuildDevice(ctx context.Context, dev int) error {
	if _, err := s.faultDevice(dev); err != nil {
		return err
	}
	for stripe := 0; stripe < s.stripes; stripe++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sh := s.shard(stripe)
		sh.mu.Lock()
		// Checked under the shard lock (as in ReadBlock): past Close's
		// per-shard flush sweep the devices may already be closed.
		if s.closed.Load() {
			sh.mu.Unlock()
			return ErrClosed
		}
		s.repairStripeLocked(ctx, sh, stripe)
		sh.mu.Unlock()
	}
	return ctx.Err()
}

// InjectSectorError injects a latent sector error at one device sector
// (index stripe×R + row, matching raid.Array's layout). The stripe's
// cached reconstruction is dropped: the injection changes its failure
// pattern, and a read must re-evaluate coverage rather than serve
// pre-injection state.
func (s *Store) InjectSectorError(dev, sector int) error {
	fd, err := s.faultDevice(dev)
	if err != nil {
		return err
	}
	if err := fd.InjectSectorError(sector); err != nil {
		return err
	}
	s.cache.invalidateRacing(sector / s.r)
	return nil
}

// InjectBurst injects a run of consecutive latent sector errors on one
// device, clipped at the device end — the §7.2.2 failure mode. It has
// raid.Array.InjectBurst's signature so raid's fault drivers apply.
func (s *Store) InjectBurst(dev, start, length int) error {
	fd, err := s.faultDevice(dev)
	if err != nil {
		return err
	}
	for i := 0; i < length; i++ {
		idx := start + i
		if idx >= fd.Sectors() {
			break
		}
		if err := fd.InjectSectorError(idx); err != nil {
			return err
		}
		// As in InjectSectorError: the touched stripe's failure pattern
		// changed, so its cached reconstruction must not be served.
		s.cache.invalidateRacing(idx / s.r)
	}
	return nil
}

// FailedDevices lists wholly failed devices.
func (s *Store) FailedDevices() []int {
	var out []int
	for i, d := range s.devs {
		if fd, ok := d.(FaultDevice); ok && fd.Failed() {
			out = append(out, i)
		}
	}
	return out
}

// TotalBadSectors counts latent sector errors across live devices.
func (s *Store) TotalBadSectors() int {
	total := 0
	for _, d := range s.devs {
		if fd, ok := d.(FaultDevice); ok && !fd.Failed() {
			total += fd.BadSectors()
		}
	}
	return total
}

func (s *Store) faultDevice(dev int) (FaultDevice, error) {
	if dev < 0 || dev >= len(s.devs) {
		return nil, fmt.Errorf("store: device %d out of range [0,%d)", dev, len(s.devs))
	}
	fd, ok := s.devs[dev].(FaultDevice)
	if !ok {
		return nil, fmt.Errorf("store: device %d (%T) does not support fault injection", dev, s.devs[dev])
	}
	return fd, nil
}

// Close drains the flush pipeline, flushes buffered writes, drains the
// outstanding background repairs, stops the scrubber, flush and repair
// workers, and closes the devices. New reads and writes are refused
// before the final flush, so nothing can slip into the buffer and be
// lost; repairs already queued (e.g. by a final scrub pass) complete
// before the workers shut down, so a close does not strand a volume
// degraded that a queued repair would have healed. Close is not bounded
// by a caller context — it finishes the shutdown it started. The
// journal, if any, is left to its owner to close afterwards.
func (s *Store) Close() error {
	s.StopScrubber()
	s.stateMu.Lock()
	if s.closed.Load() {
		s.stateMu.Unlock()
		return ErrClosed
	}
	s.closed.Store(true)
	s.stateMu.Unlock()
	// Let in-flight background flushes finish, then sweep what remains;
	// a background failure recorded since the last Flush surfaces here.
	_ = s.drainFlushPipeline(context.Background())
	flushErr := s.takeAsyncFlushErr()
	if err := s.flushAll(context.Background()); err != nil && flushErr == nil {
		flushErr = err
	}
	// Nothing can enqueue past closed, so the pending count only drains
	// from here; wait for the workers to finish what was queued.
	s.stateMu.Lock()
	for s.pendingCount.Load() > 0 {
		s.idle.Wait()
	}
	s.stateMu.Unlock()
	close(s.quit)
	s.repairQ.close()
	s.wg.Wait()
	// The drain left no pending repairs; one last broadcast wakes any
	// Quiesce waiter so its loop re-checks closed — and likewise any
	// backpressure waiter parked on the (now fully drained) pipeline.
	s.stateMu.Lock()
	s.idle.Broadcast()
	s.stateMu.Unlock()
	s.flushMu.Lock()
	s.flushIdle.Broadcast()
	s.flushMu.Unlock()
	firstErr := flushErr
	// Durability barrier before the journal lets go of its intents: the
	// checkpoint must not durably forget a write-back whose sectors are
	// still in the page cache. No flush can race this Mark — the store
	// is closed and the workers have exited.
	var mark journal.Mark
	if s.journal != nil {
		mark = s.journal.Mark()
	}
	if err := s.syncDevices(context.Background()); err != nil && firstErr == nil {
		firstErr = err
	}
	if s.journal != nil {
		if err := s.journal.Checkpoint(mark); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, d := range s.devs {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
