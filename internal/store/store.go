// Package store is a sector-addressed block store that maps a logical
// volume onto STAIR stripes over a pluggable device backend — the
// storage-system layer the paper's motivation describes (§1–2), built on
// the internal/core codec.
//
// The store owns the stripe lifecycle around the codec:
//
//   - the write path batches block writes in per-stripe buffers; a fully
//     dirty stripe is flushed through a parallel full-stripe encode
//     (internal/core's multi-core path, §6.2.1), while a partially dirty
//     stripe takes a read–modify–write using the §5.2 uneven parity
//     relations, rewriting only the parity sectors that actually depend
//     on the changed cells;
//   - the read path transparently serves degraded reads: when a device
//     is failed or a sector read errors, the lost cells are rebuilt on
//     the fly via the upstairs decoding fast path (§4.2–4.3) and the
//     stripe is queued for background repair;
//   - a background scrubber sweeps stripes, detects latent sector errors
//     and feeds a bounded repair queue drained by a repair worker, which
//     writes reconstructed sectors back to writable devices.
//
// Failure patterns outside the code's coverage surface as
// ErrUnrecoverable (and an UnrecoverableStripes counter) rather than
// corrupt data. Devices follow the fail-stop sector model the paper
// assumes: latent sector errors are detected (by drive-internal ECC) at
// access time, so scrubbing is a read sweep, not a checksum audit.
package store

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"stair/internal/core"
)

// ErrUnrecoverable aliases the codec's error for failure patterns outside
// the configured coverage; store errors wrap it.
var ErrUnrecoverable = core.ErrUnrecoverable

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("store: closed")

// Config describes a Store.
type Config struct {
	// Code is the compiled STAIR code protecting every stripe. Only
	// Inside placement is supported: the store has no out-of-band
	// location for global parity sectors.
	Code *core.Code
	// SectorSize is the device sector (= logical block) size in bytes;
	// it must be a positive multiple of the code's symbol width.
	SectorSize int
	// Stripes is the number of stripes in the volume.
	Stripes int
	// Devices supplies the Code.N() backing devices, each with
	// Stripes×Code.R() sectors. Nil allocates in-memory devices.
	Devices []Device
	// Workers bounds the per-stripe encode/repair parallelism
	// (internal/core's region splitting); 0 selects GOMAXPROCS.
	Workers int
	// MaxDirtyStripes bounds the write buffer: exceeding it flushes the
	// fullest buffered stripe. 0 selects 8.
	MaxDirtyStripes int
	// RepairQueue bounds the background repair queue; requests beyond
	// it are dropped (and re-found by a later scrub pass). 0 selects 64.
	RepairQueue int
}

// stripeBuf accumulates dirty data blocks of one stripe, indexed by data
// cell ordinal (the code's DataCells order). stuck marks a buffer whose
// flush failed (e.g. its stripe is unrecoverably degraded): eviction
// skips it so the same error is not re-reported on every unrelated
// write, but explicit Flush (and the filling-to-full fast path) still
// retry it.
type stripeBuf struct {
	data  [][]byte
	count int
	stuck bool
}

// Store is a STAIR-protected block store. Public methods are safe for
// concurrent use.
type Store struct {
	code       *core.Code
	devs       []Device
	n, r       int
	stripes    int
	sectorSize int
	workers    int
	maxDirty   int

	dataCells []core.Cell
	perStripe int

	mu            sync.Mutex
	idle          *sync.Cond // signaled when a repair request completes
	dirty         map[int]*stripeBuf
	pending       map[int]bool // stripes queued or being repaired
	unrecoverable map[int]bool
	closed        bool

	repairCh  chan int
	scrubStop chan struct{} // closes to stop the background scrubber
	scrubDone chan struct{} // closed by the scrubber goroutine on exit
	wg        sync.WaitGroup

	c counters
}

// Open builds a store over cfg. When cfg.Devices is nil it allocates
// in-memory devices; Close closes whatever devices the store uses.
func Open(cfg Config) (*Store, error) {
	if cfg.Code == nil {
		return nil, fmt.Errorf("store: nil code")
	}
	if cfg.Code.Config().Placement != core.Inside {
		return nil, fmt.Errorf("store: only Inside global-parity placement is supported")
	}
	if cfg.Stripes < 1 {
		return nil, fmt.Errorf("store: Stripes=%d must be ≥ 1", cfg.Stripes)
	}
	if cfg.SectorSize <= 0 || cfg.SectorSize%cfg.Code.Field().SymbolBytes() != 0 {
		return nil, fmt.Errorf("store: SectorSize=%d must be a positive multiple of %d",
			cfg.SectorSize, cfg.Code.Field().SymbolBytes())
	}
	n, r := cfg.Code.N(), cfg.Code.R()
	devs := cfg.Devices
	if devs == nil {
		devs = make([]Device, n)
		for i := range devs {
			devs[i] = NewMemDevice(cfg.Stripes*r, cfg.SectorSize)
		}
	}
	if len(devs) != n {
		return nil, fmt.Errorf("store: %d devices, want n=%d", len(devs), n)
	}
	for i, d := range devs {
		if d.Sectors() != cfg.Stripes*r || d.SectorSize() != cfg.SectorSize {
			return nil, fmt.Errorf("store: device %d geometry %d×%d, want %d×%d",
				i, d.Sectors(), d.SectorSize(), cfg.Stripes*r, cfg.SectorSize)
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return nil, fmt.Errorf("store: Workers=%d must be ≥ 0", cfg.Workers)
	}
	maxDirty := cfg.MaxDirtyStripes
	if maxDirty == 0 {
		maxDirty = 8
	}
	queue := cfg.RepairQueue
	if queue == 0 {
		queue = 64
	}
	s := &Store{
		code:       cfg.Code,
		devs:       devs,
		n:          n,
		r:          r,
		stripes:    cfg.Stripes,
		sectorSize: cfg.SectorSize,
		workers:    workers,
		maxDirty:   maxDirty,
		dataCells:  cfg.Code.DataCells(),
		dirty:      map[int]*stripeBuf{},
		pending:    map[int]bool{},

		unrecoverable: map[int]bool{},
		repairCh:      make(chan int, queue),
	}
	s.perStripe = len(s.dataCells)
	s.idle = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.repairLoop()
	return s, nil
}

// BlockSize returns the logical block size (one sector).
func (s *Store) BlockSize() int { return s.sectorSize }

// Blocks returns the volume capacity in logical blocks.
func (s *Store) Blocks() int { return s.stripes * s.perStripe }

// Geometry returns (devices, stripes, sectors per chunk, sector size) —
// the same shape as raid.Array.Geometry, so the raid fault drivers can
// target a store.
func (s *Store) Geometry() (n, stripes, r, sectorSize int) {
	return s.n, s.stripes, s.r, s.sectorSize
}

// Code returns the protecting code.
func (s *Store) Code() *core.Code { return s.code }

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats { return s.c.snapshot() }

// blockOf maps a logical block to its stripe and data cell.
func (s *Store) blockOf(b int) (stripe, ord int, cell core.Cell, err error) {
	if b < 0 || b >= s.Blocks() {
		return 0, 0, core.Cell{}, fmt.Errorf("store: block %d out of range [0,%d)", b, s.Blocks())
	}
	stripe, ord = b/s.perStripe, b%s.perStripe
	return stripe, ord, s.dataCells[ord], nil
}

// devSector maps (stripe, row) to the device sector index.
func (s *Store) devSector(stripe, row int) int { return stripe*s.r + row }

// WriteBlock buffers one block write. The write lands on devices when
// its stripe buffer fills (full-stripe encode), when the buffer bound
// evicts it, or at Flush/Close (incremental parity read–modify–write).
func (s *Store) WriteBlock(b int, data []byte) error {
	if len(data) != s.sectorSize {
		return fmt.Errorf("store: write of %d bytes, want block size %d", len(data), s.sectorSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	stripe, ord, _, err := s.blockOf(b)
	if err != nil {
		return err
	}
	buf := s.dirty[stripe]
	if buf == nil {
		buf = &stripeBuf{data: make([][]byte, s.perStripe)}
		s.dirty[stripe] = buf
	}
	if buf.data[ord] == nil {
		buf.count++
		buf.data[ord] = make([]byte, s.sectorSize)
	}
	copy(buf.data[ord], data)
	s.c.writes.Add(1)
	if buf.count == s.perStripe {
		return s.flushStripeLocked(stripe)
	}
	if len(s.dirty) > s.maxDirty {
		victim := s.fullestDirtyLocked(stripe)
		if victim < 0 {
			return nil // every other buffer is stuck; nothing to evict
		}
		if err := s.flushStripeLocked(victim); err != nil {
			// The requested write IS buffered; only the eviction failed.
			return fmt.Errorf("store: block %d buffered, but evicting stripe %d failed: %w", b, victim, err)
		}
	}
	return nil
}

// fullestDirtyLocked picks the buffered stripe with the most dirty
// blocks, excluding the one just written to (it is the hottest) and any
// stuck buffers. Returns -1 when nothing is evictable.
func (s *Store) fullestDirtyLocked(except int) int {
	best, bestCount := -1, -1
	for stripe, buf := range s.dirty {
		if stripe == except || buf.stuck {
			continue
		}
		if buf.count > bestCount || (buf.count == bestCount && stripe < best) {
			best, bestCount = stripe, buf.count
		}
	}
	return best
}

// Flush writes every buffered stripe to the devices.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	stripes := make([]int, 0, len(s.dirty))
	for stripe := range s.dirty {
		stripes = append(stripes, stripe)
	}
	sort.Ints(stripes)
	var first error
	for _, stripe := range stripes {
		if err := s.flushStripeLocked(stripe); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushStripeLocked lands one buffered stripe on the devices. A fully
// dirty stripe is encoded from scratch in parallel; a partial one goes
// through read–modify–write with §5.2 incremental parity updates. On
// error the buffer is retained so the flush can be retried (e.g. after
// a device replacement and rebuild).
func (s *Store) flushStripeLocked(stripe int) (err error) {
	buf := s.dirty[stripe]
	if buf == nil {
		return nil
	}
	defer func() {
		if err != nil {
			buf.stuck = true
		}
	}()
	if buf.count == s.perStripe {
		st, err := s.code.NewStripe(s.sectorSize)
		if err != nil {
			return err
		}
		for ord, cell := range s.dataCells {
			copy(st.Sector(cell.Col, cell.Row), buf.data[ord])
		}
		if err := s.code.EncodeParallel(st, core.MethodAuto, s.workers); err != nil {
			return err
		}
		delete(s.dirty, stripe)
		// A full rewrite resurrects a previously unrecoverable stripe.
		delete(s.unrecoverable, stripe)
		s.c.fullFlushes.Add(1)
		for col := 0; col < s.n; col++ {
			for row := 0; row < s.r; row++ {
				s.writeCellLocked(stripe, col, row, st.Sector(col, row))
			}
		}
		return nil
	}

	st, lost := s.loadStripeLocked(stripe)
	if len(lost) > 0 {
		if err := s.code.RepairParallel(st, lost, s.workers); err != nil {
			if errors.Is(err, ErrUnrecoverable) {
				s.markUnrecoverableLocked(stripe)
			}
			return fmt.Errorf("store: flushing stripe %d: %w", stripe, err)
		}
	}
	touched := map[core.Cell]bool{}
	for ord, data := range buf.data {
		if data == nil {
			continue
		}
		cell := s.dataCells[ord]
		deps, err := s.code.ParityDependencies(cell)
		if err != nil {
			return err
		}
		if err := s.code.Update(st, cell, data); err != nil {
			return err
		}
		touched[cell] = true
		for _, p := range deps {
			touched[p] = true
		}
	}
	delete(s.dirty, stripe)
	s.c.subFlushes.Add(1)
	// Write back the dirty data cells and affected parity, plus any
	// cells just repaired (healing their bad sectors in passing).
	for _, cell := range lost {
		touched[cell] = true
	}
	cells := make([]core.Cell, 0, len(touched))
	for cell := range touched {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Col != cells[j].Col {
			return cells[i].Col < cells[j].Col
		}
		return cells[i].Row < cells[j].Row
	})
	for _, cell := range cells {
		s.writeCellLocked(stripe, cell.Col, cell.Row, st.Sector(cell.Col, cell.Row))
	}
	return nil
}

// writeCellLocked writes one stripe cell to its device. Writes to failed
// devices are dropped — the stripe stays degraded there until the device
// is replaced and rebuilt, which is exactly what the code tolerates.
func (s *Store) writeCellLocked(stripe, col, row int, data []byte) {
	_ = s.devs[col].WriteSector(s.devSector(stripe, row), data)
}

// loadStripeLocked reads one stripe off the devices; unreadable cells
// come back zeroed and listed in lost.
func (s *Store) loadStripeLocked(stripe int) (*core.Stripe, []core.Cell) {
	st, _ := s.code.NewStripe(s.sectorSize)
	var lost []core.Cell
	for col := 0; col < s.n; col++ {
		for row := 0; row < s.r; row++ {
			if err := s.devs[col].ReadSector(s.devSector(stripe, row), st.Sector(col, row)); err != nil {
				lost = append(lost, core.Cell{Col: col, Row: row})
			}
		}
	}
	return st, lost
}

// ReadBlock returns one logical block. Buffered (not yet flushed) writes
// are served from the stripe buffer; an unreadable sector is rebuilt on
// the fly through the degraded-read path and its stripe queued for
// background repair.
func (s *Store) ReadBlock(b int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	stripe, ord, cell, err := s.blockOf(b)
	if err != nil {
		return nil, err
	}
	if buf := s.dirty[stripe]; buf != nil && buf.data[ord] != nil {
		s.c.reads.Add(1)
		return append([]byte(nil), buf.data[ord]...), nil
	}
	out := make([]byte, s.sectorSize)
	if err := s.devs[cell.Col].ReadSector(s.devSector(stripe, cell.Row), out); err == nil {
		s.c.reads.Add(1)
		return out, nil
	}
	// Degraded read: rebuild the lost cells of the whole stripe via the
	// upstairs fast path and serve the request from the reconstruction.
	st, lost := s.loadStripeLocked(stripe)
	if err := s.code.RepairParallel(st, lost, s.workers); err != nil {
		if errors.Is(err, ErrUnrecoverable) {
			s.markUnrecoverableLocked(stripe)
		}
		return nil, fmt.Errorf("store: degraded read of block %d (stripe %d, %d lost cells): %w",
			b, stripe, len(lost), err)
	}
	s.c.reads.Add(1)
	s.c.degradedReads.Add(1)
	s.enqueueRepairLocked(stripe)
	return append([]byte(nil), st.Sector(cell.Col, cell.Row)...), nil
}

func (s *Store) markUnrecoverableLocked(stripe int) {
	if !s.unrecoverable[stripe] {
		s.unrecoverable[stripe] = true
		s.c.unrecoverableStripes.Add(1)
	}
}

// UnrecoverableStripes lists stripes observed (by reads, flushes, or the
// repair worker) to hold failure patterns outside the code's coverage.
func (s *Store) UnrecoverableStripes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.unrecoverable))
	for stripe := range s.unrecoverable {
		out = append(out, stripe)
	}
	sort.Ints(out)
	return out
}

// enqueueRepairLocked queues a stripe for background repair; a full
// queue drops the request (a later scrub pass re-finds the stripe).
func (s *Store) enqueueRepairLocked(stripe int) {
	if s.closed || s.pending[stripe] || s.unrecoverable[stripe] {
		return
	}
	select {
	case s.repairCh <- stripe:
		s.pending[stripe] = true
	default:
		s.c.repairDrops.Add(1)
	}
}

// repairLoop drains the repair queue.
func (s *Store) repairLoop() {
	defer s.wg.Done()
	for stripe := range s.repairCh {
		s.mu.Lock()
		s.repairStripeLocked(stripe)
		delete(s.pending, stripe)
		s.idle.Broadcast()
		s.mu.Unlock()
	}
}

// repairStripeLocked reconstructs a stripe's lost cells and writes them
// back to every device that will take the write. Lost cells on a wholly
// failed device are skipped — reconstruction would have nowhere to land —
// so the stripe stays (recoverably) degraded until the device is
// replaced.
func (s *Store) repairStripeLocked(stripe int) {
	if s.unrecoverable[stripe] {
		return
	}
	st, lost := s.loadStripeLocked(stripe)
	if len(lost) == 0 {
		return
	}
	writable := make([]core.Cell, 0, len(lost))
	for _, cell := range lost {
		if fd, ok := s.devs[cell.Col].(FaultDevice); ok && fd.Failed() {
			continue
		}
		writable = append(writable, cell)
	}
	if len(writable) == 0 {
		return
	}
	if err := s.code.RepairParallel(st, lost, s.workers); err != nil {
		if errors.Is(err, ErrUnrecoverable) {
			s.markUnrecoverableLocked(stripe)
		}
		return
	}
	repaired := 0
	for _, cell := range writable {
		if s.devs[cell.Col].WriteSector(s.devSector(stripe, cell.Row), st.Sector(cell.Col, cell.Row)) == nil {
			repaired++
		}
	}
	if repaired > 0 {
		s.c.repairedStripes.Add(1)
		s.c.repairedSectors.Add(uint64(repaired))
	}
}

// Quiesce blocks until the repair queue is empty and the repair worker
// idle — the point where a scrub-triggered repair wave has converged.
func (s *Store) Quiesce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) > 0 && !s.closed {
		s.idle.Wait()
	}
}

// FailDevice marks a device wholly failed (fault injection). Reads of
// its sectors are served degraded from then on.
func (s *Store) FailDevice(dev int) error {
	fd, err := s.faultDevice(dev)
	if err != nil {
		return err
	}
	return fd.Fail()
}

// ReplaceDevice swaps a failed device for a fresh one whose sectors are
// all unwritten. Rebuild (or scrub passes feeding the repair queue)
// restores its content. Replacement changes every stripe's failure
// pattern, so cached unrecoverable marks are dropped and re-evaluated on
// the next access.
func (s *Store) ReplaceDevice(dev int) error {
	fd, err := s.faultDevice(dev)
	if err != nil {
		return err
	}
	if err := fd.Replace(); err != nil {
		return err
	}
	s.mu.Lock()
	s.unrecoverable = map[int]bool{}
	s.mu.Unlock()
	return nil
}

// RebuildDevice synchronously reconstructs every stripe touching the
// given (replaced) device, bypassing the bounded queue.
func (s *Store) RebuildDevice(dev int) error {
	if _, err := s.faultDevice(dev); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for stripe := 0; stripe < s.stripes; stripe++ {
		s.repairStripeLocked(stripe)
	}
	return nil
}

// InjectSectorError injects a latent sector error at one device sector
// (index stripe×R + row, matching raid.Array's layout).
func (s *Store) InjectSectorError(dev, sector int) error {
	fd, err := s.faultDevice(dev)
	if err != nil {
		return err
	}
	return fd.InjectSectorError(sector)
}

// InjectBurst injects a run of consecutive latent sector errors on one
// device, clipped at the device end — the §7.2.2 failure mode. It has
// raid.Array.InjectBurst's signature so raid's fault drivers apply.
func (s *Store) InjectBurst(dev, start, length int) error {
	fd, err := s.faultDevice(dev)
	if err != nil {
		return err
	}
	for i := 0; i < length; i++ {
		idx := start + i
		if idx >= fd.Sectors() {
			break
		}
		if err := fd.InjectSectorError(idx); err != nil {
			return err
		}
	}
	return nil
}

// FailedDevices lists wholly failed devices.
func (s *Store) FailedDevices() []int {
	var out []int
	for i, d := range s.devs {
		if fd, ok := d.(FaultDevice); ok && fd.Failed() {
			out = append(out, i)
		}
	}
	return out
}

// TotalBadSectors counts latent sector errors across live devices.
func (s *Store) TotalBadSectors() int {
	total := 0
	for _, d := range s.devs {
		if fd, ok := d.(FaultDevice); ok && !fd.Failed() {
			total += fd.BadSectors()
		}
	}
	return total
}

func (s *Store) faultDevice(dev int) (FaultDevice, error) {
	if dev < 0 || dev >= len(s.devs) {
		return nil, fmt.Errorf("store: device %d out of range [0,%d)", dev, len(s.devs))
	}
	fd, ok := s.devs[dev].(FaultDevice)
	if !ok {
		return nil, fmt.Errorf("store: device %d (%T) does not support fault injection", dev, s.devs[dev])
	}
	return fd, nil
}

// Close flushes buffered writes, stops the scrubber and repair worker,
// and closes the devices.
func (s *Store) Close() error {
	s.StopScrubber()
	flushErr := s.Flush()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.repairCh)
	s.idle.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	// The repair loop exits after draining; clear stale bookkeeping.
	s.mu.Lock()
	s.pending = map[int]bool{}
	s.mu.Unlock()
	var firstErr error
	if flushErr != nil && !errors.Is(flushErr, ErrClosed) {
		firstErr = flushErr
	}
	for _, d := range s.devs {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
