package store_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stair/internal/store"
)

// flakyHandler fails the first failN data-path requests with status,
// then forwards to the real device server. Geometry and control-plane
// requests always pass, so dialing is unaffected.
type flakyHandler struct {
	inner  http.Handler
	status int
	failN  int64
	seen   atomic.Int64
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/read") || strings.HasPrefix(r.URL.Path, "/v1/write") {
		if h.seen.Add(1) <= h.failN {
			http.Error(w, "injected flake", h.status)
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

func dialFlaky(t *testing.T, status int, failN int64) (*store.NetDevice, *flakyHandler) {
	t.Helper()
	h := &flakyHandler{
		inner:  store.NewDeviceServer(store.NewMemDevice(8, 64)),
		status: status,
		failN:  failN,
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	d, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	d.SetRetryPolicy(store.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	return d, h
}

// A server that 500s twice then recovers must be survived by the
// default three-attempt policy, transparently to the caller.
func TestNetDeviceRetriesTransient5xx(t *testing.T) {
	d, _ := dialFlaky(t, http.StatusInternalServerError, 2)
	buf := make([]byte, 64)
	if err := d.ReadSectors(context.Background(), 0, [][]byte{buf}); err != nil {
		t.Fatalf("read through recovering server: %v", err)
	}
	if got := d.Retries(); got != 2 {
		t.Fatalf("client issued %d retries, want 2", got)
	}
}

// Writes are idempotent sector stores, so they retry too.
func TestNetDeviceRetriesWrite(t *testing.T) {
	d, _ := dialFlaky(t, http.StatusBadGateway, 1)
	if err := d.WriteSectors(context.Background(), 0, [][]byte{make([]byte, 64)}); err != nil {
		t.Fatalf("write through recovering server: %v", err)
	}
	if got := d.Retries(); got != 1 {
		t.Fatalf("client issued %d retries, want 1", got)
	}
}

// A 4xx means the request itself is wrong; retrying it would just
// repeat the mistake.
func TestNetDeviceNeverRetries4xx(t *testing.T) {
	d, h := dialFlaky(t, http.StatusBadRequest, 1<<30)
	err := d.ReadSectors(context.Background(), 0, [][]byte{make([]byte, 64)})
	if err == nil {
		t.Fatal("read against 4xx server succeeded")
	}
	if got := d.Retries(); got != 0 {
		t.Fatalf("client retried a 4xx %d times", got)
	}
	if got := h.seen.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// ErrDeviceFailed is a state, not a blip: the 503 + Stair-Error answer
// must surface immediately so the store can switch to degraded reads
// instead of burning the backoff budget.
func TestNetDeviceNeverRetriesDeviceFailed(t *testing.T) {
	srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(8, 64)))
	t.Cleanup(srv.Close)
	d, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.Fail(); err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	err = d.ReadSectors(context.Background(), 0, [][]byte{make([]byte, 64)})
	if !errors.Is(err, store.ErrDeviceFailed) {
		t.Fatalf("read of failed device: %v, want ErrDeviceFailed", err)
	}
	if d.Retries() != 0 {
		t.Fatalf("client retried a failed device %d times", d.Retries())
	}
	if took := time.Since(begin); took > time.Second {
		t.Fatalf("failed-device answer took %v — did it back off?", took)
	}
}

// Cancelling the caller's context mid-backoff aborts the retry loop
// immediately instead of sleeping out the schedule.
func TestNetDeviceCancelDuringBackoff(t *testing.T) {
	d, _ := dialFlaky(t, http.StatusInternalServerError, 1<<30)
	d.SetRetryPolicy(store.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- d.ReadSectors(ctx, 0, [][]byte{make([]byte, 64)})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled read: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read slept out its 10s backoff despite cancellation")
	}
}

// Ping reports liveness, not health: any HTTP answer (even an error
// status) proves the process is up; only transport failure is down.
func TestNetDevicePing(t *testing.T) {
	d, _ := dialFlaky(t, http.StatusInternalServerError, 0)
	if err := d.Ping(context.Background()); err != nil {
		t.Fatalf("ping of live server: %v", err)
	}

	srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(8, 64)))
	dead, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := dead.Ping(context.Background()); err == nil {
		t.Fatal("ping of closed server succeeded")
	}
}

// /v1/metrics must reflect the traffic the server actually served.
func TestDeviceServerMetrics(t *testing.T) {
	mem := store.NewMemDevice(8, 64)
	ds := store.NewDeviceServer(mem)
	srv := httptest.NewServer(ds)
	t.Cleanup(srv.Close)
	d, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })

	ctx := context.Background()
	if err := d.WriteSectors(ctx, 0, [][]byte{make([]byte, 64), make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadSectors(ctx, 0, [][]byte{make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
	if err := d.InjectSectorError(5); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadSectors(ctx, 5, [][]byte{make([]byte, 64)}); err == nil {
		t.Fatal("read of bad sector succeeded")
	}
	if err := store.SyncDevice(ctx, d); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m store.DeviceServerMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Reads != 2 || m.Writes != 1 || m.Syncs != 1 {
		t.Fatalf("metrics %+v, want 2 reads / 1 write / 1 sync", m)
	}
	if m.ReadSectors != 2 || m.WrittenSectors != 2 {
		t.Fatalf("metrics %+v, want 2 sectors each way", m)
	}
	if m.LostSectors != 1 || m.BadSectors != 1 {
		t.Fatalf("metrics %+v, want 1 lost + 1 bad sector", m)
	}
	if m.Failed {
		t.Fatalf("metrics report failure on a healthy device: %+v", m)
	}
	if snap := ds.Metrics(); snap != m {
		t.Fatalf("in-process snapshot %+v differs from endpoint %+v", snap, m)
	}
}
