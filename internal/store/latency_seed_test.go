package store

import (
	"testing"
	"time"
)

// TestLatencyProfileSeedDeterministic checks two devices built from the
// same seeded profile draw the identical jitter/spike sequence, and a
// different seed diverges — the reproducibility the scenario harness
// leans on under -race.
func TestLatencyProfileSeedDeterministic(t *testing.T) {
	profile := LatencyProfile{
		Latency:   100 * time.Microsecond,
		Jitter:    80 * time.Microsecond,
		Spike:     3 * time.Millisecond,
		SpikeProb: 0.1,
		Seed:      12345,
	}
	draws := func(p LatencyProfile) []time.Duration {
		d := NewLatencyDeviceProfile(NewMemDevice(8, 512), p)
		out := make([]time.Duration, 256)
		d.mu.Lock()
		for i := range out {
			out[i] = d.drawLocked()
		}
		d.mu.Unlock()
		return out
	}
	a, b := draws(profile), draws(profile)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across same-seed devices: %v vs %v", i, a[i], b[i])
		}
	}
	other := profile
	other.Seed = 54321
	c := draws(other)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds drew the identical sequence")
	}
}

// TestLatencyProfileSeedZeroStillRandom checks the zero-seed default
// still time-seeds: a fleet of devices must not be in lockstep.
func TestLatencyProfileSeedZeroStillRandom(t *testing.T) {
	profile := LatencyProfile{Latency: time.Microsecond, Jitter: time.Hour}
	seen := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		d := NewLatencyDeviceProfile(NewMemDevice(8, 512), profile)
		d.mu.Lock()
		seen[d.drawLocked()] = true
		d.mu.Unlock()
		time.Sleep(time.Microsecond)
	}
	// With an hour of jitter range, identical draws across the fleet
	// would mean the time seeds were identical constants.
	if len(seen) < 2 {
		t.Fatalf("8 zero-seed devices drew only %d distinct first jitters", len(seen))
	}
}
