package store_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"stair/internal/core"
	"stair/internal/failures"
	"stair/internal/raid"
	"stair/internal/store"
)

var bg = context.Background()

// The store satisfies raid's fault-injection contract, so the simulator's
// failure processes drive it directly.
var _ raid.FaultTarget = (*store.Store)(nil)

func writeVolume(t *testing.T, s *store.Store, rng *rand.Rand) [][]byte {
	t.Helper()
	blocks := make([][]byte, s.Blocks())
	for b := range blocks {
		blocks[b] = make([]byte, s.BlockSize())
		rng.Read(blocks[b])
		if err := s.WriteBlock(bg, b, blocks[b]); err != nil {
			t.Fatalf("write block %d: %v", b, err)
		}
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	return blocks
}

func checkVolume(t *testing.T, s *store.Store, blocks [][]byte) {
	t.Helper()
	for b, want := range blocks {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatalf("read block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d corrupt", b)
		}
	}
}

// TestStoreUnderRaidFailurePatterns is the end-to-end acceptance test:
// a volume survives m whole-device failures plus sector errors within
// coverage e, serving every logical block correctly through the
// degraded-read path while the background scrubber converges the repair
// queue; a pattern outside coverage then surfaces ErrUnrecoverable in
// the stats rather than corrupt data.
func TestStoreUnderRaidFailurePatterns(t *testing.T) {
	code, err := core.New(core.Config{N: 8, R: 4, M: 2, E: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(store.Config{Code: code, SectorSize: 256, Stripes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(42))
	blocks := writeVolume(t, s, rng)

	if err := s.StartScrubber(store.ScrubberOptions{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: a latent-sector-error campaign from the paper's §7.2.2
	// burst model (b1=0.98, α=1.79, bursts ≤ 2 sectors), driven through
	// the raid fault adapter, healed by the background scrubber.
	dist, err := failures.NewBurstDist(0.98, 1.79, 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		if _, err := raid.InjectRandomBurstsOn(s, rng, 0.004, dist); err != nil {
			t.Fatal(err)
		}
		checkVolume(t, s, blocks) // reads stay correct while degraded
		deadline := time.Now().Add(10 * time.Second)
		for s.TotalBadSectors() > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: scrubber left %d bad sectors", round, s.TotalBadSectors())
			}
			time.Sleep(time.Millisecond)
		}
	}
	s.Quiesce()
	if st := s.Stats(); st.UnrecoverableStripes != 0 {
		t.Fatalf("stats %+v: unrecoverable stripes within coverage", st)
	}

	// Phase 2: m=2 whole-device failures plus fresh sector errors within
	// coverage on the survivors — the paper's headline mixed-failure
	// scenario. Every block must still read back correctly.
	for _, dev := range []int{1, 6} {
		if err := s.FailDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InjectBurst(3, 5, 2); err != nil { // 2-sector burst, one chunk
		t.Fatal(err)
	}
	if err := s.InjectBurst(4, 6, 1); err != nil { // single, another chunk
		t.Fatal(err)
	}
	checkVolume(t, s, blocks)
	st := s.Stats()
	if st.DegradedReads == 0 {
		t.Fatal("mixed-failure reads were not served degraded")
	}
	if st.UnrecoverableStripes != 0 {
		t.Fatalf("stats %+v: coverage-internal pattern reported unrecoverable", st)
	}

	// The scrubber converges the survivors' sector errors even with two
	// devices down (their stripes stay recoverably degraded).
	deadline := time.Now().Add(10 * time.Second)
	for s.TotalBadSectors() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d bad sectors left on survivors", s.TotalBadSectors())
		}
		time.Sleep(time.Millisecond)
	}
	s.StopScrubber()
	s.Quiesce()

	// Phase 3: a third device failure exceeds m — outside coverage.
	// Blocks on dead devices surface ErrUnrecoverable; surviving blocks
	// must remain intact, and stats must record the damage.
	if err := s.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	dead := map[int]bool{1: true, 2: true, 6: true}
	perStripe := len(code.DataCells())
	sawUnrecoverable := false
	for b, want := range blocks {
		cell := code.DataCells()[b%perStripe]
		got, err := s.ReadBlock(bg, b)
		if dead[cell.Col] {
			if !errors.Is(err, store.ErrUnrecoverable) {
				t.Fatalf("block %d: err=%v, want ErrUnrecoverable", b, err)
			}
			sawUnrecoverable = true
			continue
		}
		if err != nil {
			t.Fatalf("surviving block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("surviving block %d corrupt", b)
		}
	}
	if !sawUnrecoverable {
		t.Fatal("no block exercised the unrecoverable path")
	}
	if st := s.Stats(); st.UnrecoverableStripes == 0 {
		t.Fatal("UnrecoverableStripes counter did not record the damage")
	}

	// Phase 4: three dead chunks per stripe are genuinely beyond the
	// code — that data is gone. Recovery means replacing the dead
	// devices and rewriting the volume: full-stripe flushes repopulate
	// every sector (healing the replacements) and resurrect the
	// stripes previously marked unrecoverable.
	for dev := range dead {
		if err := s.ReplaceDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	blocks = writeVolume(t, s, rng)
	if got := s.UnrecoverableStripes(); len(got) != 0 {
		t.Fatalf("unrecoverable stripes %v survived a full rewrite", got)
	}
	if got := s.TotalBadSectors(); got != 0 {
		t.Fatalf("TotalBadSectors=%d after replace+rewrite", got)
	}
	base := s.Stats().DegradedReads
	checkVolume(t, s, blocks)
	if got := s.Stats().DegradedReads; got != base {
		t.Fatalf("reads still degraded after recovery (%d → %d)", base, got)
	}
}

// TestRandomDeviceFailureDriver: the Bernoulli device-failure process
// drives the store within coverage (seeded so exactly ≤ m devices fail).
func TestRandomDeviceFailureDriver(t *testing.T) {
	code, err := core.New(core.Config{N: 8, R: 4, M: 2, E: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(store.Config{Code: code, SectorSize: 128, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := writeVolume(t, s, rand.New(rand.NewSource(11)))
	// Seed 13 deterministically draws devices {2, 6} at p=0.15 — within
	// the code's m=2 tolerance.
	failed, err := raid.FailRandomDevicesOn(s, rand.New(rand.NewSource(13)), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) == 0 || len(failed) > code.M() {
		t.Fatalf("driver failed %v, want 1..%d devices", failed, code.M())
	}
	if got := s.FailedDevices(); len(got) != len(failed) {
		t.Fatalf("FailedDevices=%v, driver failed %v", got, failed)
	}
	checkVolume(t, s, blocks)
	if st := s.Stats(); st.DegradedReads == 0 {
		t.Fatal("no degraded reads after device failures")
	}
}
