package store

import (
	"bytes"
	"errors"
	"testing"

	"stair/internal/core"
)

// openIntegrityStore opens a MemDevice-backed store with the end-to-end
// checksum layer on (devices auto-sized to include the sidecar region).
func openIntegrityStore(t *testing.T, code *core.Code, stripes, sectorSize int, opts IntegrityOptions) *Store {
	t.Helper()
	s, err := Open(Config{
		Code: code, SectorSize: sectorSize, Stripes: stripes,
		Integrity: &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// corruptBlockSilently flips one payload bit of block b's on-device
// sector without registering any fault — silent corruption.
func corruptBlockSilently(t *testing.T, s *Store, b int) {
	t.Helper()
	stripe, ord := b/s.perStripe, b%s.perStripe
	cell := s.dataCells[ord]
	if err := s.CorruptSectorSilently(cell.Col, s.devSector(stripe, cell.Row)); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrityDetectsSilentCorruptionOnRead is the tentpole's e2e
// property: a silently flipped bit is caught by the checksum on the next
// read, converted into a located erasure, repaired on the fly (the read
// returns the ORIGINAL bytes), written back, and a subsequent scrub
// finds nothing wrong.
func TestIntegrityDetectsSilentCorruptionOnRead(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s := openIntegrityStore(t, code, 3, 128, IntegrityOptions{Epoch: 7})
	defer s.Close()
	fillStore(t, s)

	const victim = 5
	corruptBlockSilently(t, s, victim)

	got, err := s.ReadBlock(bg, victim)
	if err != nil {
		t.Fatalf("read of a silently corrupted block: %v", err)
	}
	if !bytes.Equal(got, blockData(victim, s.BlockSize())) {
		t.Fatal("read returned the rotten bytes — the checksum layer is not load-bearing")
	}
	st := s.Stats()
	if st.ChecksumMismatches == 0 {
		t.Error("ChecksumMismatches=0 after detecting silent corruption")
	}
	if st.DegradedReads == 0 {
		t.Error("DegradedReads=0 — the mismatch did not route through reconstruction")
	}
	if st.VerifiedSectors == 0 {
		t.Error("VerifiedSectors=0 — nothing was verified")
	}

	// The degraded read queued a repair; once it lands, the sector holds
	// fresh content under a fresh record and the volume scrubs clean.
	s.Quiesce()
	rep, err := s.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StripesDamaged != 0 || rep.ChecksumMismatches != 0 || rep.StripesInconsistent != 0 {
		t.Fatalf("scrub after repair %+v, want clean", rep)
	}
	if s.Stats().RepairedStripes == 0 {
		t.Error("RepairedStripes=0 — the located erasure was never written back")
	}
	checkAllBlocks(t, s)
}

// TestIntegrityDetectsSilentCorruptionOnScrub: a scrub pass must
// identify the lying sector — here a PARITY sector, which no foreground
// read would ever touch — count it as a checksum mismatch (not a
// fail-stop loss), queue the repair, and come back clean on the next
// pass.
func TestIntegrityDetectsSilentCorruptionOnScrub(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s := openIntegrityStore(t, code, 3, 128, IntegrityOptions{Epoch: 7})
	defer s.Close()
	fillStore(t, s)

	parity := code.ParityCells()[0]
	if err := s.CorruptSectorSilently(parity.Col, s.devSector(1, parity.Row)); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumMismatches != 1 || rep.StripesDamaged != 1 || rep.StripesQueued != 1 {
		t.Fatalf("scrub %+v, want exactly one checksum-located mismatch queued", rep)
	}
	if rep.SectorsLost != 0 {
		t.Errorf("SectorsLost=%d — a checksum-located liar was miscounted as a fail-stop loss", rep.SectorsLost)
	}
	if rep.StripesInconsistent != 0 || rep.StripesUnrecoverable != 0 {
		t.Errorf("scrub %+v marked a repairable stripe beyond coverage", rep)
	}

	s.Quiesce()
	rep2, err := s.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.StripesDamaged != 0 || rep2.ChecksumMismatches != 0 || rep2.StripesInconsistent != 0 {
		t.Fatalf("second scrub %+v, want clean after the repair landed", rep2)
	}
	checkStripesConsistent(t, s)
}

// TestIntegrityOffServesRottenBytes is the negative control proving the
// layer is load-bearing: with verification off — via config or the
// STAIR_INTEGRITY environment escape hatch — the same silent flip sails
// through reads undetected.
func TestIntegrityOffServesRottenBytes(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	run := func(t *testing.T, opts IntegrityOptions) {
		s := openIntegrityStore(t, code, 3, 128, opts)
		defer s.Close()
		fillStore(t, s)
		const victim = 5
		corruptBlockSilently(t, s, victim)
		got, err := s.ReadBlock(bg, victim)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, blockData(victim, s.BlockSize())) {
			t.Fatal("read returned correct data with verification off — the corruption did not land")
		}
		if st := s.Stats(); st.ChecksumMismatches != 0 || st.DegradedReads != 0 {
			t.Fatalf("stats %+v: verification ran although it was disabled", st)
		}
	}
	t.Run("DisableVerify", func(t *testing.T) {
		run(t, IntegrityOptions{Epoch: 7, DisableVerify: true})
	})
	t.Run("EnvOff", func(t *testing.T) {
		t.Setenv("STAIR_INTEGRITY", "off")
		run(t, IntegrityOptions{Epoch: 7})
	})
}

// TestIntegrityLocatedVsUnlocatable is the coverage regression the
// scrubber's accounting must keep straight. Under an M=0, E=[1] code
// (coverage: one sector erasure), ONE silent flip is checksum-located
// and repaired; TWO flips in the same stripe are located but beyond
// coverage, so the stripe is marked unrecoverable — never decoded into
// fabricated content — and reads of it refuse.
func TestIntegrityLocatedVsUnlocatable(t *testing.T) {
	code := testCode(t, core.Config{N: 4, R: 2, M: 0, E: []int{1}})

	t.Run("OneFlipRepairs", func(t *testing.T) {
		s := openIntegrityStore(t, code, 2, 128, IntegrityOptions{Epoch: 1})
		defer s.Close()
		fillStore(t, s)
		corruptBlockSilently(t, s, 0)
		rep, err := s.Scrub(bg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ChecksumMismatches != 1 || rep.StripesQueued != 1 || rep.StripesUnrecoverable != 0 {
			t.Fatalf("scrub %+v, want one located mismatch queued for repair", rep)
		}
		s.Quiesce()
		rep2, err := s.Scrub(bg)
		if err != nil {
			t.Fatal(err)
		}
		if rep2.StripesDamaged != 0 || rep2.ChecksumMismatches != 0 {
			t.Fatalf("second scrub %+v, want clean", rep2)
		}
		if got := s.Stats().UnrecoverableStripes; got != 0 {
			t.Fatalf("UnrecoverableStripes=%d after a repairable flip", got)
		}
		checkAllBlocks(t, s)
	})

	t.Run("TwoFlipsSameStripeRefuse", func(t *testing.T) {
		s := openIntegrityStore(t, code, 2, 128, IntegrityOptions{Epoch: 1})
		defer s.Close()
		fillStore(t, s)
		// Two liars in stripe 0, different columns: both located, jointly
		// beyond E=[1] coverage.
		corruptBlockSilently(t, s, 0)
		corruptBlockSilently(t, s, 1)
		rep, err := s.Scrub(bg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ChecksumMismatches != 2 {
			t.Fatalf("scrub located %d mismatches, want 2", rep.ChecksumMismatches)
		}
		if rep.StripesUnrecoverable != 1 || rep.StripesQueued != 0 {
			t.Fatalf("scrub %+v, want the stripe marked unrecoverable, not queued", rep)
		}
		if got := s.Stats().UnrecoverableStripes; got != 1 {
			t.Fatalf("UnrecoverableStripes=%d, want 1", got)
		}
		// A read of a lying block must refuse rather than fabricate.
		if _, err := s.ReadBlock(bg, 0); !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("read of an unrecoverable stripe returned %v, want ErrUnrecoverable", err)
		}
		// The untouched stripe still reads fine.
		for b := s.perStripe; b < 2*s.perStripe; b++ {
			got, err := s.ReadBlock(bg, b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, blockData(b, s.BlockSize())) {
				t.Fatalf("block %d in the healthy stripe corrupt", b)
			}
		}
	})
}

// TestIntegrityFailStopAndChecksumMix: a fail-stop sector loss and a
// checksum-located liar in the same stripe are both located erasures —
// the decoder repairs the pair in one pass and the accounting keeps the
// two kinds separate.
func TestIntegrityFailStopAndChecksumMix(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s := openIntegrityStore(t, code, 3, 128, IntegrityOptions{Epoch: 7})
	defer s.Close()
	fillStore(t, s)

	corruptBlockSilently(t, s, 0)
	lost := s.dataCells[1]
	if err := s.InjectSectorError(lost.Col, s.devSector(0, lost.Row)); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumMismatches != 1 || rep.SectorsLost != 1 || rep.StripesDamaged != 1 {
		t.Fatalf("scrub %+v, want one mismatch plus one fail-stop loss in one stripe", rep)
	}
	s.Quiesce()
	rep2, err := s.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.StripesDamaged != 0 || rep2.ChecksumMismatches != 0 {
		t.Fatalf("second scrub %+v, want clean", rep2)
	}
	checkAllBlocks(t, s)
}

// TestIntegrityRecordsRefreshOnScrub: records absent from the sidecar
// (here: a volume written with the layer maintaining records, then the
// sidecar region zeroed out-of-band, as for a volume predating the
// layer) heal over a scrub pass — the stripe's content is proven good by
// parity first.
func TestIntegrityRecordsRefreshOnScrub(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	stripes, sector := 3, 128
	devs := make([]Device, code.N())
	want := stripes*code.R() + IntegrityMetaSectors(stripes, code.R(), sector)
	for i := range devs {
		devs[i] = NewMemDevice(want, sector)
	}
	s, err := Open(Config{Code: code, SectorSize: sector, Stripes: stripes, Devices: devs,
		Integrity: &IntegrityOptions{Epoch: 7}})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Zero every sidecar region out-of-band: all records become Absent.
	zero := make([]byte, sector)
	for _, d := range devs {
		md := d.(*MemDevice)
		for sec := stripes * code.R(); sec < want; sec++ {
			copy(md.data[sec*sector:(sec+1)*sector], zero)
		}
	}

	s2, err := Open(Config{Code: code, SectorSize: sector, Stripes: stripes, Devices: devs,
		Integrity: &IntegrityOptions{Epoch: 7}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Absent records are no claim: reads still serve (and cannot verify).
	checkAllBlocks(t, s2)
	if got := s2.Stats().VerifiedSectors; got != 0 {
		t.Fatalf("VerifiedSectors=%d with every record absent", got)
	}
	rep, err := s2.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if want := stripes * code.N() * code.R(); rep.RecordsRefreshed != want {
		t.Fatalf("RecordsRefreshed=%d, want %d (every sector)", rep.RecordsRefreshed, want)
	}
	// With the sidecars healed, reads verify again.
	checkAllBlocks(t, s2)
	if got := s2.Stats().VerifiedSectors; got == 0 {
		t.Fatal("VerifiedSectors=0 after the scrub refreshed every record")
	}
	rep2, err := s2.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RecordsRefreshed != 0 {
		t.Fatalf("second scrub refreshed %d records, want 0", rep2.RecordsRefreshed)
	}
}

// TestIntegrityEpochCatchesStaleSidecar: records written under an older
// volume epoch fail verification — the stale-write half of the threat
// model. With EVERY record stale the located damage exceeds any
// coverage, so reads refuse rather than vouch for content the new
// volume identity disowns.
func TestIntegrityEpochCatchesStaleSidecar(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	stripes, sector := 2, 128
	devs := make([]Device, code.N())
	want := stripes*code.R() + IntegrityMetaSectors(stripes, code.R(), sector)
	for i := range devs {
		devs[i] = NewMemDevice(want, sector)
	}
	open := func(epoch uint32) *Store {
		s, err := Open(Config{Code: code, SectorSize: sector, Stripes: stripes, Devices: devs,
			Integrity: &IntegrityOptions{Epoch: epoch}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open(1)
	fillStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen under a new epoch: every old record is now a mismatch, the
	// exact semantics wanted when a volume identity changes.
	s2 := open(2)
	defer s2.Close()
	if _, err := s2.ReadBlock(bg, 0); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("read under a new epoch returned %v, want ErrUnrecoverable (old records must not vouch)", err)
	}
	if s2.Stats().ChecksumMismatches == 0 {
		t.Fatal("ChecksumMismatches=0 — old-epoch records verified under the new epoch")
	}
}
