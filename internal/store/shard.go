package store

import "sync"

// defaultLockShards is the lock-table width when Config.LockShards is 0.
// Wide enough that a GOMAXPROCS-sized worker set rarely collides, small
// enough that the per-shard maps stay negligible.
const defaultLockShards = 32

// lockShard owns the store-side state of every stripe that hashes to
// it: the stripe write buffers, the repair-pending flags and the
// unrecoverable marks. Holding a shard's mutex also serialises device
// I/O for its stripes, so a stripe-level read–modify–write can never
// interleave with another writer, repairer or scrubber of the same
// stripe — while operations on stripes in different shards proceed
// concurrently. This is the paper's stripe-independence property
// (stripes are self-contained units of encoding and recovery) turned
// into a locking discipline.
//
// Lock ordering: at most one shard mutex is held at a time. Cross-shard
// work (Flush, eviction, the fullest-dirty scan) locks shards strictly
// one after another, and the store's stateMu (scrubber lifecycle,
// Quiesce) is never taken while a shard mutex is held.
type lockShard struct {
	mu            sync.Mutex
	dirty         map[int]*stripeBuf
	pending       map[int]bool // stripes queued or being repaired
	unrecoverable map[int]bool

	// rows is the shard's reusable buffer-vector scratch for vectored
	// device calls (stripe loads, write-back runs, single-sector reads).
	// Only touched under mu, and abandoned — not reused — after a
	// cancelled device call (see dropScratchOnCancel). lostRow is the
	// per-column verification scratch of loadStripe.
	rows    [][]byte
	lostRow []bool
}

// rowvec returns the shard's buffer-vector scratch sized to n entries.
// The caller holds mu and must not keep the slice across a release of
// the mutex.
func (sh *lockShard) rowvec(n int) [][]byte {
	if cap(sh.rows) < n {
		sh.rows = make([][]byte, n)
	}
	return sh.rows[:n]
}

// dropScratchOnCancel abandons the shard's I/O scratch after a device
// call that ended by context cancellation: an abandoned inner operation
// (e.g. a coalesced batch member) may still hold the vector and iterate
// it later, so the next operation must get a fresh one.
func (sh *lockShard) dropScratchOnCancel() {
	sh.rows = nil
}

// shardCount rounds the configured shard count up to a power of two so
// the stripe→shard map is a single mask; with a power-of-two table,
// adjacent stripes land in different shards, which is exactly what
// sequential and range-partitioned workloads want.
func shardCount(cfg int) int {
	if cfg == 0 {
		cfg = defaultLockShards
	}
	n := 1
	for n < cfg {
		n <<= 1
	}
	return n
}

// newShards allocates an initialised shard table.
func newShards(n int) []lockShard {
	shards := make([]lockShard, n)
	for i := range shards {
		shards[i].dirty = map[int]*stripeBuf{}
		shards[i].pending = map[int]bool{}
		shards[i].unrecoverable = map[int]bool{}
	}
	return shards
}

// shard returns the lock shard owning a stripe.
func (s *Store) shard(stripe int) *lockShard {
	return &s.shards[stripe&s.shardMask]
}
