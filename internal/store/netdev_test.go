package store_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stair/internal/core"
	"stair/internal/store"
)

// newNetStore builds a store whose every device is a NetDevice talking
// to an in-process DeviceServer over real HTTP.
func newNetStore(t *testing.T, code *core.Code, stripes, sector int) *store.Store {
	t.Helper()
	devs := make([]store.Device, code.N())
	for i := range devs {
		srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(stripes*code.R(), sector)))
		t.Cleanup(srv.Close)
		d, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	s, err := store.Open(store.Config{Code: code, SectorSize: sector, Stripes: stripes, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestNetDeviceStoreEndToEnd: the full store lifecycle — fill, degraded
// reads under sector and device faults, scrub-driven repair, replace and
// rebuild — over HTTP backends. Each stripe-granular operation is one
// round trip per device, which is what makes this viable at all.
func TestNetDeviceStoreEndToEnd(t *testing.T) {
	code, err := core.New(core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	const (
		stripes = 4
		sector  = 128
	)
	s := newNetStore(t, code, stripes, sector)
	blocks := make([][]byte, s.Blocks())
	for b := range blocks {
		blocks[b] = make([]byte, sector)
		for i := range blocks[b] {
			blocks[b][i] = byte((b*17 + i*7 + 5) % 251)
		}
		if err := s.WriteBlock(bg, b, blocks[b]); err != nil {
			t.Fatalf("write block %d: %v", b, err)
		}
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}

	// Latent sector errors travel the fault control plane; the vectored
	// read reports them per sector and the degraded path reconstructs.
	if err := s.InjectBurst(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalBadSectors(); got != 2 {
		t.Fatalf("TotalBadSectors=%d over the wire, want 2", got)
	}
	for b, want := range blocks {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatalf("degraded read of block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d corrupt through remote degraded read", b)
		}
	}
	if st := s.Stats(); st.DegradedReads == 0 {
		t.Fatal("no degraded reads recorded against remote bad sectors")
	}

	// Scrub + repair converge over the wire.
	if _, err := s.Scrub(bg); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	if got := s.TotalBadSectors(); got != 0 {
		t.Fatalf("TotalBadSectors=%d after remote scrub+repair, want 0", got)
	}

	// Whole-device failure surfaces as a whole-call error; replace and
	// rebuild restore health remotely.
	if err := s.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	for b, want := range blocks {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatalf("read with failed remote device: block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d corrupt with failed remote device", b)
		}
	}
	if err := s.ReplaceDevice(2); err != nil {
		t.Fatal(err)
	}
	if err := s.RebuildDevice(bg, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalBadSectors(); got != 0 {
		t.Fatalf("TotalBadSectors=%d after remote rebuild, want 0", got)
	}
}

// hangingDeviceServer wraps a DeviceServer, parking data-plane requests
// until the client gives up — the pathological remote backend.
func hangingDeviceServer(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/read" || r.URL.Path == "/v1/write" {
			<-r.Context().Done()
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// TestNetDeviceCancellation: a hung server cannot wedge a caller — the
// request context aborts the round trip promptly.
func TestNetDeviceCancellation(t *testing.T) {
	srv := httptest.NewServer(hangingDeviceServer(store.NewDeviceServer(store.NewMemDevice(8, 64))))
	t.Cleanup(srv.Close)
	d, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = d.ReadSectors(ctx, 0, [][]byte{make([]byte, 64)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("read against hung server: %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled remote read took %v", elapsed)
	}
	if err := d.WriteSectors(ctx, 0, [][]byte{make([]byte, 64)}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("write against hung server: %v, want context.DeadlineExceeded", err)
	}
}

// TestNetDeviceTransportDown: a dead server reads as a whole-device
// loss, and the store serves the data degraded from the survivors.
func TestNetDeviceTransportDown(t *testing.T) {
	code, err := core.New(core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	const (
		stripes = 2
		sector  = 128
	)
	devs := make([]store.Device, code.N())
	var dead *httptest.Server
	for i := range devs {
		srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(stripes*code.R(), sector)))
		t.Cleanup(srv.Close)
		d, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
		if i == 3 {
			dead = srv
		}
	}
	s, err := store.Open(store.Config{Code: code, SectorSize: sector, Stripes: stripes, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := make([][]byte, s.Blocks())
	for b := range blocks {
		blocks[b] = bytes.Repeat([]byte{byte(b + 1)}, sector)
		if err := s.WriteBlock(bg, b, blocks[b]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	dead.Close() // device 3's transport goes away entirely
	for b, want := range blocks {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatalf("read with dead transport: block %d: %v", b, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d corrupt with dead transport", b)
		}
	}
	if st := s.Stats(); st.DegradedReads == 0 {
		t.Fatal("dead transport did not surface as degraded reads")
	}
}

// TestDeviceServerHostileExtents: remote-supplied extents are validated
// before any allocation — a hostile count (or an overflowing start)
// must come back 400, not OOM or panic the exporting process.
func TestDeviceServerHostileExtents(t *testing.T) {
	srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(8, 64)))
	t.Cleanup(srv.Close)
	for _, url := range []string{
		srv.URL + "/v1/read?start=0&count=1073741824",
		srv.URL + "/v1/read?start=9223372036854775807&count=1",
		srv.URL + "/v1/read?start=-1&count=2",
		srv.URL + "/v1/read?start=0&count=-3",
	} {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	// An oversized write body is refused without being buffered whole.
	big := bytes.NewReader(make([]byte, 9*64))
	resp, err := srv.Client().Post(srv.URL+"/v1/write?start=0", "application/octet-stream", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized write: status %d, want 400", resp.StatusCode)
	}
}
