package store

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Sector-level device errors. The store treats any lost sector as
// degraded state and serves the request through the degraded-read path;
// these two are what the built-in backends report.
var (
	// ErrDeviceFailed reports I/O against a device marked wholly failed.
	ErrDeviceFailed = errors.New("store: device failed")
	// ErrBadSector reports a latent sector error: the device's internal
	// ECC rejected the sector (the paper's fail-stop sector model, §2).
	ErrBadSector = errors.New("store: bad sector")
)

// SectorError identifies one lost sector within a vectored operation:
// Index is the absolute sector index on the device, Err the per-sector
// cause (typically wrapping ErrBadSector).
type SectorError struct {
	Index int
	Err   error
}

func (e SectorError) Error() string { return fmt.Sprintf("sector %d: %v", e.Index, e.Err) }

// Unwrap exposes the per-sector cause to errors.Is/As.
func (e SectorError) Unwrap() error { return e.Err }

// SectorErrors is the partial-failure result of a vectored call: the
// operation completed for every sector not listed, and each listed
// sector failed individually. A vectored read that returns SectorErrors
// has filled every readable buffer — the caller learns exactly which
// sectors were lost without losing the rest of the extent, which is
// what the store's degraded-read path consumes directly.
//
// Whole-call failures (cancelled context, wholly failed device,
// transport errors) are returned as ordinary errors instead, and say
// nothing about individual sectors.
type SectorErrors []SectorError

func (e SectorErrors) Error() string {
	if len(e) == 1 {
		return e[0].Error()
	}
	idx := make([]string, len(e))
	for i, se := range e {
		idx[i] = strconv.Itoa(se.Index)
	}
	return fmt.Sprintf("%d lost sectors (%s)", len(e), strings.Join(idx, ","))
}

// Unwrap exposes the per-sector errors to errors.Is/As (Go 1.20
// multi-error matching: errors.Is(errs, ErrBadSector) holds when any
// listed sector wraps it).
func (e SectorErrors) Unwrap() []error {
	out := make([]error, len(e))
	for i, se := range e {
		out[i] = se
	}
	return out
}

// AsSectorErrors unpacks an error returned by a vectored device call:
// ok reports whether it is a per-sector partial failure (as opposed to
// a whole-call failure or nil).
func AsSectorErrors(err error) (SectorErrors, bool) {
	var se SectorErrors
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// Device is a sector-addressed storage backend: Sectors() fixed-size
// sectors of SectorSize() bytes each, accessed through vectored,
// context-aware calls over contiguous extents — one call per device per
// stripe on the store's hot paths, which is what makes remote backends
// (one round trip per extent, not per sector) viable.
//
// Contract, shared by every implementation and enforced by the devtest
// conformance suite:
//
//   - ReadSectors fills bufs[i] (each SectorSize bytes) with sector
//     start+i. Individually lost sectors are reported as SectorErrors
//     while every readable buffer is still filled; whole-call failures
//     (ctx cancelled, device wholly failed, transport down) return any
//     other error and leave the buffers unspecified.
//   - WriteSectors stores data[i] at sector start+i. A successful write
//     heals a previously bad sector. Sectors that individually fail to
//     land are reported as SectorErrors; the rest are durably written.
//   - Both honor ctx cancellation and deadlines: a cancelled context
//     aborts the call promptly with ctx.Err() (possibly wrapped).
//   - Implementations must be safe for concurrent use: the store's
//     scrubber and repair workers run in background goroutines, and
//     fault injection can race with reads.
type Device interface {
	// Sectors returns the device capacity in sectors.
	Sectors() int
	// SectorSize returns the sector payload size in bytes.
	SectorSize() int
	// ReadSectors fills bufs with the extent [start, start+len(bufs)).
	ReadSectors(ctx context.Context, start int, bufs [][]byte) error
	// WriteSectors stores data at the extent [start, start+len(data)).
	WriteSectors(ctx context.Context, start int, data [][]byte) error
	// Close releases backing resources.
	Close() error
}

// Syncer is an optional Device capability: Sync makes every previously
// acknowledged write durable — fsync for file-backed devices, a sync
// round trip for remote ones. The store's Sync durability barrier calls
// it on every device that implements it; devices that do not (e.g. the
// in-memory backend, which has no durability to offer) are skipped.
// Wrapper backends forward Sync to the wrapped device.
type Syncer interface {
	Sync(ctx context.Context) error
}

// SyncDevice syncs d when it implements Syncer, and is a no-op
// otherwise (bar the context check, so wrappers forwarding Sync keep
// uniform cancellation semantics over non-Syncer inners).
func SyncDevice(ctx context.Context, d Device) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if sy, ok := d.(Syncer); ok {
		return sy.Sync(ctx)
	}
	return nil
}

// ReadSector reads one sector through a device's vectored interface. A
// lost sector surfaces as SectorErrors of length one.
func ReadSector(ctx context.Context, d Device, idx int, buf []byte) error {
	return d.ReadSectors(ctx, idx, [][]byte{buf})
}

// WriteSector writes one sector through a device's vectored interface.
func WriteSector(ctx context.Context, d Device, idx int, data []byte) error {
	return d.WriteSectors(ctx, idx, [][]byte{data})
}

// FaultDevice extends Device with the fault-injection hooks the store's
// failure handling and the tests drive.
type FaultDevice interface {
	Device
	// Fail marks the whole device failed: every read and write errors
	// with ErrDeviceFailed until Replace. The failure mark is durable
	// (for persistent backends) before the payload is destroyed.
	Fail() error
	// Failed reports whether the device is wholly failed.
	Failed() bool
	// Replace swaps in a fresh, zeroed device in place of a failed one.
	// Every sector comes back *bad* (unwritten), so reads keep erroring
	// until the rebuild path writes reconstructed content back — a
	// replacement disk holds no data yet.
	Replace() error
	// InjectSectorError marks one sector as a latent sector error and
	// destroys its payload.
	InjectSectorError(idx int) error
	// BadSectors returns the number of latent sector errors present.
	BadSectors() int
}

// checkExtent validates a vectored call's extent against the device
// capacity.
func checkExtent(sectors, start, count int) error {
	if count == 0 {
		return nil
	}
	// Phrased to avoid start+count overflowing int on hostile inputs
	// (a NetDevice server validates remote-supplied extents with this).
	if start < 0 || count < 0 || start >= sectors || count > sectors-start {
		return fmt.Errorf("store: extent of %d sectors at %d out of range [0,%d)", count, start, sectors)
	}
	return nil
}

// checkBufs validates that every buffer of a vectored call holds
// exactly one sector.
func checkBufs(sectorSize int, bufs [][]byte) error {
	for i, b := range bufs {
		if len(b) != sectorSize {
			return fmt.Errorf("store: buffer %d is %d bytes, want sector size %d", i, len(b), sectorSize)
		}
	}
	return nil
}

// faultState is the failure metadata shared by the built-in backends.
// Its mutex also guards the embedding device's payload, so fault
// injection can never race a payload copy into torn data.
type faultState struct {
	mu     sync.Mutex
	failed bool
	bad    []bool
	nbad   int
}

func newFaultState(sectors int) *faultState {
	return &faultState{bad: make([]bool, sectors)}
}

// lostLocked collects the bad sectors of extent [start, start+count) as
// the SectorErrors a vectored read reports. Callers hold mu.
func (f *faultState) lostLocked(start, count int) SectorErrors {
	var lost SectorErrors
	for i := start; i < start+count; i++ {
		if f.bad[i] {
			lost = append(lost, SectorError{Index: i, Err: ErrBadSector})
		}
	}
	return lost
}

// healLocked clears a bad mark before a write, reporting whether it did.
// Callers hold mu.
func (f *faultState) healLocked(idx int) bool {
	if f.bad[idx] {
		f.bad[idx] = false
		f.nbad--
		return true
	}
	return false
}

// replaceLocked resets to a fresh device where every sector is unwritten
// (bad). Callers hold mu.
func (f *faultState) replaceLocked() {
	f.failed = false
	for i := range f.bad {
		f.bad[i] = true
	}
	f.nbad = len(f.bad)
}

// injectLocked marks one sector bad. Callers hold mu.
func (f *faultState) injectLocked(idx int) error {
	if idx < 0 || idx >= len(f.bad) {
		return fmt.Errorf("store: sector %d out of range [0,%d)", idx, len(f.bad))
	}
	if !f.bad[idx] {
		f.bad[idx] = true
		f.nbad++
	}
	return nil
}

func (f *faultState) isFailed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

func (f *faultState) badCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nbad
}

// badListLocked lists bad sectors ascending. Callers hold mu.
func (f *faultState) badListLocked() []int {
	var out []int
	for i, b := range f.bad {
		if b {
			out = append(out, i)
		}
	}
	return out
}
