package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Sector-level device errors. The store treats any read error as a lost
// sector and serves the request through the degraded-read path; these two
// are what the built-in backends return.
var (
	// ErrDeviceFailed reports I/O against a device marked wholly failed.
	ErrDeviceFailed = errors.New("store: device failed")
	// ErrBadSector reports a latent sector error: the device's internal
	// ECC rejected the sector (the paper's fail-stop sector model, §2).
	ErrBadSector = errors.New("store: bad sector")
)

// Device is a sector-addressed storage backend: Sectors() fixed-size
// sectors of SectorSize() bytes each. Implementations must be safe for
// concurrent use (the store's scrubber and repair worker run in
// background goroutines, and fault injection can race with reads).
type Device interface {
	// Sectors returns the device capacity in sectors.
	Sectors() int
	// SectorSize returns the sector payload size in bytes.
	SectorSize() int
	// ReadSector fills buf (SectorSize bytes) with sector idx, or
	// returns an error identifying the sector as lost.
	ReadSector(idx int, buf []byte) error
	// WriteSector stores data (SectorSize bytes) at sector idx. A
	// successful write heals a previously bad sector.
	WriteSector(idx int, data []byte) error
	// Close releases backing resources.
	Close() error
}

// FaultDevice extends Device with the fault-injection hooks the store's
// failure handling and the tests drive.
type FaultDevice interface {
	Device
	// Fail marks the whole device failed: every read and write errors
	// with ErrDeviceFailed until Replace. The failure mark is durable
	// (for persistent backends) before the payload is destroyed.
	Fail() error
	// Failed reports whether the device is wholly failed.
	Failed() bool
	// Replace swaps in a fresh, zeroed device in place of a failed one.
	// Every sector comes back *bad* (unwritten), so reads keep erroring
	// until the rebuild path writes reconstructed content back — a
	// replacement disk holds no data yet.
	Replace() error
	// InjectSectorError marks one sector as a latent sector error and
	// destroys its payload.
	InjectSectorError(idx int) error
	// BadSectors returns the number of latent sector errors present.
	BadSectors() int
}

// faultState is the failure metadata shared by the built-in backends.
// Its mutex also guards the embedding device's payload, so fault
// injection can never race a payload copy into torn data.
type faultState struct {
	mu     sync.Mutex
	failed bool
	bad    []bool
	nbad   int
}

func newFaultState(sectors int) *faultState {
	return &faultState{bad: make([]bool, sectors)}
}

// checkReadLocked reports whether sector idx is readable. Callers hold mu.
func (f *faultState) checkReadLocked(idx int) error {
	if f.failed {
		return ErrDeviceFailed
	}
	if f.bad[idx] {
		return fmt.Errorf("%w: sector %d", ErrBadSector, idx)
	}
	return nil
}

// healLocked clears a bad mark before a write, reporting whether it did.
// Callers hold mu.
func (f *faultState) healLocked(idx int) bool {
	if f.bad[idx] {
		f.bad[idx] = false
		f.nbad--
		return true
	}
	return false
}

// replaceLocked resets to a fresh device where every sector is unwritten
// (bad). Callers hold mu.
func (f *faultState) replaceLocked() {
	f.failed = false
	for i := range f.bad {
		f.bad[i] = true
	}
	f.nbad = len(f.bad)
}

// injectLocked marks one sector bad. Callers hold mu.
func (f *faultState) injectLocked(idx int) error {
	if idx < 0 || idx >= len(f.bad) {
		return fmt.Errorf("store: sector %d out of range [0,%d)", idx, len(f.bad))
	}
	if !f.bad[idx] {
		f.bad[idx] = true
		f.nbad++
	}
	return nil
}

func (f *faultState) isFailed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

func (f *faultState) badCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nbad
}

// badListLocked lists bad sectors ascending. Callers hold mu.
func (f *faultState) badListLocked() []int {
	var out []int
	for i, b := range f.bad {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// MemDevice is an in-memory Device with fault injection, the default
// backend for tests, benchmarks and the simulator adapters.
type MemDevice struct {
	sectors    int
	sectorSize int
	data       []byte
	*faultState
}

// NewMemDevice allocates a zeroed in-memory device.
func NewMemDevice(sectors, sectorSize int) *MemDevice {
	return &MemDevice{
		sectors:    sectors,
		sectorSize: sectorSize,
		data:       make([]byte, sectors*sectorSize),
		faultState: newFaultState(sectors),
	}
}

// Sectors returns the device capacity in sectors.
func (d *MemDevice) Sectors() int { return d.sectors }

// SectorSize returns the sector payload size.
func (d *MemDevice) SectorSize() int { return d.sectorSize }

func (d *MemDevice) checkIdx(idx int) error {
	if idx < 0 || idx >= d.sectors {
		return fmt.Errorf("store: sector %d out of range [0,%d)", idx, d.sectors)
	}
	return nil
}

// ReadSector fills buf with sector idx.
func (d *MemDevice) ReadSector(idx int, buf []byte) error {
	if err := d.checkIdx(idx); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkReadLocked(idx); err != nil {
		return err
	}
	copy(buf, d.data[idx*d.sectorSize:(idx+1)*d.sectorSize])
	return nil
}

// WriteSector stores data at sector idx, healing a bad sector.
func (d *MemDevice) WriteSector(idx int, data []byte) error {
	if err := d.checkIdx(idx); err != nil {
		return err
	}
	if len(data) != d.sectorSize {
		return fmt.Errorf("store: write of %d bytes, want %d", len(data), d.sectorSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	d.healLocked(idx)
	copy(d.data[idx*d.sectorSize:], data)
	return nil
}

// Fail marks the device wholly failed and destroys its contents.
func (d *MemDevice) Fail() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
	for i := range d.data {
		d.data[i] = 0
	}
	return nil
}

// Failed reports whole-device failure.
func (d *MemDevice) Failed() bool { return d.isFailed() }

// Replace swaps in a fresh zeroed device; every sector starts bad.
func (d *MemDevice) Replace() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.replaceLocked()
	for i := range d.data {
		d.data[i] = 0
	}
	return nil
}

// InjectSectorError marks one sector lost and zeroes its payload.
func (d *MemDevice) InjectSectorError(idx int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.injectLocked(idx); err != nil {
		return err
	}
	for i := idx * d.sectorSize; i < (idx+1)*d.sectorSize; i++ {
		d.data[i] = 0
	}
	return nil
}

// BadSectors returns the latent-sector-error count.
func (d *MemDevice) BadSectors() int { return d.badCount() }

// Close is a no-op for the in-memory backend.
func (d *MemDevice) Close() error { return nil }

// FileDevice is a file-per-device backend: one flat file of
// sectors × sectorSize bytes, plus a JSON sidecar (<path>.faults)
// persisting failure metadata so injected faults survive across process
// boundaries (the cmd/stairstore CLI relies on this).
type FileDevice struct {
	path       string
	f          *os.File
	sectors    int
	sectorSize int
	*faultState
}

type faultSidecar struct {
	Failed bool  `json:"failed"`
	Bad    []int `json:"bad,omitempty"`
}

// OpenFileDevice opens (creating and sizing if absent) a file-backed
// device and loads its fault sidecar.
func OpenFileDevice(path string, sectors, sectorSize int) (*FileDevice, error) {
	if sectors < 1 || sectorSize < 1 {
		return nil, fmt.Errorf("store: device geometry %d×%d must be positive", sectors, sectorSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	size := int64(sectors) * int64(sectorSize)
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() != size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	d := &FileDevice{path: path, f: f, sectors: sectors, sectorSize: sectorSize, faultState: newFaultState(sectors)}
	if err := d.loadSidecar(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

func (d *FileDevice) sidecarPath() string { return d.path + ".faults" }

func (d *FileDevice) loadSidecar() error {
	raw, err := os.ReadFile(d.sidecarPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var sc faultSidecar
	if err := json.Unmarshal(raw, &sc); err != nil {
		return fmt.Errorf("store: fault sidecar %s: %w", d.sidecarPath(), err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = sc.Failed
	for _, idx := range sc.Bad {
		if idx >= 0 && idx < d.sectors && !d.bad[idx] {
			d.bad[idx] = true
			d.nbad++
		}
	}
	return nil
}

// saveSidecarLocked persists fault metadata atomically (write + rename).
// With no faults present the sidecar is removed. Callers hold mu.
func (d *FileDevice) saveSidecarLocked() error {
	sc := faultSidecar{Failed: d.failed, Bad: d.badListLocked()}
	sort.Ints(sc.Bad)
	if !sc.Failed && len(sc.Bad) == 0 {
		err := os.Remove(d.sidecarPath())
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	raw, err := json.Marshal(sc)
	if err != nil {
		return err
	}
	tmp := d.sidecarPath() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, d.sidecarPath())
}

// Sectors returns the device capacity in sectors.
func (d *FileDevice) Sectors() int { return d.sectors }

// SectorSize returns the sector payload size.
func (d *FileDevice) SectorSize() int { return d.sectorSize }

func (d *FileDevice) checkIdx(idx int) error {
	if idx < 0 || idx >= d.sectors {
		return fmt.Errorf("store: sector %d out of range [0,%d)", idx, d.sectors)
	}
	return nil
}

// ReadSector fills buf with sector idx from the backing file.
func (d *FileDevice) ReadSector(idx int, buf []byte) error {
	if err := d.checkIdx(idx); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkReadLocked(idx); err != nil {
		return err
	}
	_, err := d.f.ReadAt(buf[:d.sectorSize], int64(idx)*int64(d.sectorSize))
	return err
}

// WriteSector stores data at sector idx, healing (and persisting the
// healing of) a bad sector.
func (d *FileDevice) WriteSector(idx int, data []byte) error {
	if err := d.checkIdx(idx); err != nil {
		return err
	}
	if len(data) != d.sectorSize {
		return fmt.Errorf("store: write of %d bytes, want %d", len(data), d.sectorSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if _, err := d.f.WriteAt(data, int64(idx)*int64(d.sectorSize)); err != nil {
		return err
	}
	if d.healLocked(idx) {
		return d.saveSidecarLocked()
	}
	return nil
}

// zeroFileLocked rewrites the backing file as all zeros. Callers hold mu.
func (d *FileDevice) zeroFileLocked() error {
	if err := d.f.Truncate(0); err != nil {
		return err
	}
	return d.f.Truncate(int64(d.sectors) * int64(d.sectorSize))
}

// Fail marks the device wholly failed — durably, before destroying the
// payload, so a crash in between cannot leave a zeroed device that
// looks healthy on the next open.
func (d *FileDevice) Fail() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	wasFailed := d.failed
	d.failed = true
	if err := d.saveSidecarLocked(); err != nil {
		d.failed = wasFailed
		return err
	}
	return d.zeroFileLocked()
}

// Failed reports whole-device failure.
func (d *FileDevice) Failed() bool { return d.isFailed() }

// Replace swaps in a fresh zeroed file; every sector starts bad. The
// all-bad mark is persisted before the old payload is destroyed.
func (d *FileDevice) Replace() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.replaceLocked()
	if err := d.saveSidecarLocked(); err != nil {
		return err
	}
	return d.zeroFileLocked()
}

// InjectSectorError marks one sector lost — durably, before zeroing its
// payload.
func (d *FileDevice) InjectSectorError(idx int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.injectLocked(idx); err != nil {
		return err
	}
	if err := d.saveSidecarLocked(); err != nil {
		return err
	}
	zero := make([]byte, d.sectorSize)
	_, err := d.f.WriteAt(zero, int64(idx)*int64(d.sectorSize))
	return err
}

// BadSectors returns the latent-sector-error count.
func (d *FileDevice) BadSectors() int { return d.badCount() }

// Close closes the backing file.
func (d *FileDevice) Close() error { return d.f.Close() }
