package journal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, path
}

func TestAppendCommitRoundTrip(t *testing.T) {
	j, path := openTemp(t)
	seq1, err := j.Append(3, []int{0, 2}, []uint64{11, 22}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := j.Append(7, []int{5}, []uint64{33}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq2 <= seq1 {
		t.Fatalf("sequence numbers not increasing: %d then %d", seq1, seq2)
	}
	if got := j.PendingCount(); got != 2 {
		t.Fatalf("PendingCount=%d, want 2", got)
	}
	if err := j.Commit(seq1); err != nil {
		t.Fatal(err)
	}
	if got := j.PendingCount(); got != 1 {
		t.Fatalf("PendingCount=%d after one commit, want 1", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without a checkpoint: BOTH intents replay — the commit was
	// in-memory only, because the device writes it covered were never
	// proven durable. The committed one re-verifies harmlessly.
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending := j2.Pending()
	if len(pending) != 2 {
		t.Fatalf("%d pending after reopen without checkpoint, want both intents", len(pending))
	}
	rec := pending[1]
	if rec.Seq != seq2 || rec.Stripe != 7 || len(rec.Ords) != 1 || rec.Ords[0] != 5 || rec.Sums[0] != 33 {
		t.Fatalf("pending record corrupted across reopen: %+v", rec)
	}
	// New appends must not collide with replayed sequence numbers.
	seq3, err := j2.Append(9, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq3 <= seq2 {
		t.Fatalf("seq %d after reopen not past replayed %d", seq3, seq2)
	}
}

// TestCheckpointReclaimsLog: the log is reclaimed only at a checkpoint
// (the store's post-device-sync barrier) and only once every intent has
// committed — never by the commits themselves, whose covered device
// writes may still be volatile.
func TestCheckpointReclaimsLog(t *testing.T) {
	j, path := openTemp(t)
	defer j.Close()
	seq1, _ := j.Append(1, []int{0}, []uint64{1}, nil)
	seq2, _ := j.Append(2, []int{1}, []uint64{2}, nil)
	if err := j.Commit(seq1); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(seq2); err != nil {
		t.Fatal(err)
	}
	info, _ := os.Stat(path)
	if info.Size() == 0 {
		t.Fatal("commits alone truncated the journal (before any durability barrier)")
	}
	// A checkpoint with an intent outstanding must leave the log alone.
	seq3, _ := j.Append(3, []int{2}, []uint64{3}, nil)
	mark := j.Mark()
	if err := j.Checkpoint(mark); err != nil {
		t.Fatal(err)
	}
	if got := j.PendingCount(); got != 1 {
		t.Fatalf("checkpoint with an outstanding intent dropped it (pending=%d)", got)
	}
	if err := j.Commit(seq3); err != nil {
		t.Fatal(err)
	}
	// The commit happened AFTER the mark's barrier: a checkpoint against
	// the stale mark must refuse — that write-back's sectors were not
	// covered by the device sync the mark represents.
	if err := j.Checkpoint(mark); err != nil {
		t.Fatal(err)
	}
	info, _ = os.Stat(path)
	if info.Size() == 0 {
		t.Fatal("stale-mark checkpoint reclaimed an intent the barrier did not cover")
	}
	if err := j.Checkpoint(j.Mark()); err != nil {
		t.Fatal(err)
	}
	info, _ = os.Stat(path)
	if info.Size() != 0 {
		t.Fatalf("journal holds %d bytes after a quiet checkpoint, want 0", info.Size())
	}
	// Post-checkpoint appends start a fresh log that must fsync again
	// (generation guard) and replay on reopen.
	if _, err := j.Append(4, []int{3}, []uint64{4}, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.PendingCount(); got != 1 {
		t.Fatalf("%d pending after reopen, want the post-checkpoint intent", got)
	}
}

// TestTornTailDiscarded: a crash mid-append leaves a partial record;
// open must keep the valid prefix and drop only the tail.
func TestTornTailDiscarded(t *testing.T) {
	j, path := openTemp(t)
	seqGood, err := j.Append(4, []int{1}, []uint64{44}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(5, []int{2}, []uint64{55}, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the last record: chop bytes off the file's tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending := j2.Pending()
	if len(pending) != 1 || pending[0].Seq != seqGood || pending[0].Stripe != 4 {
		t.Fatalf("pending after torn tail: %+v, want only the intact intent for stripe 4", pending)
	}
	// The torn bytes are gone from disk, so appends extend a clean log.
	if _, err := j2.Append(6, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.PendingCount(); got != 2 {
		t.Fatalf("PendingCount=%d after append past a torn tail, want 2", got)
	}
}

// TestCorruptRecordStopsScan: a bit flip inside a record's payload fails
// its CRC; the scan keeps everything before it and discards the rest.
func TestCorruptRecordStopsScan(t *testing.T) {
	j, path := openTemp(t)
	if _, err := j.Append(1, []int{0}, []uint64{1}, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := len(raw)
	if _, err = j.Append(2, []int{1}, []uint64{2}, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	raw, _ = os.ReadFile(path)
	raw[firstLen+10] ^= 0xff // flip a payload bit of the second record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending := j2.Pending()
	if len(pending) != 1 || pending[0].Stripe != 1 {
		t.Fatalf("pending after corrupt record: %+v, want only stripe 1", pending)
	}
}

// TestCommitSupersedesAbortedIntent: an intent whose write-back was
// aborted (never committed) is discharged when a later write-back of
// the same stripe commits — the newer full rewrite makes the stripe
// consistent, so the stale intent must not wedge checkpointing.
func TestCommitSupersedesAbortedIntent(t *testing.T) {
	j, _ := openTemp(t)
	defer j.Close()
	if _, err := j.Append(5, []int{0}, []uint64{1}, nil); err != nil { // aborted: never committed
		t.Fatal(err)
	}
	if _, err := j.Append(6, []int{0}, []uint64{2}, nil); err != nil { // unrelated stripe, aborted too
		t.Fatal(err)
	}
	seq3, err := j.Append(5, []int{0, 1}, []uint64{3, 4}, nil) // the retry
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(seq3); err != nil {
		t.Fatal(err)
	}
	// Stripe 5's aborted intent is superseded; stripe 6's is not.
	pending := j.Pending()
	if len(pending) != 1 || pending[0].Stripe != 6 {
		t.Fatalf("pending after superseding commit: %+v, want only stripe 6", pending)
	}
}

func TestCommitUnknownIntent(t *testing.T) {
	j, _ := openTemp(t)
	defer j.Close()
	if err := j.Commit(42); err == nil {
		t.Fatal("commit of an unknown sequence accepted")
	}
}

// TestConcurrentAppendCommit drives the group-commit path: many
// goroutines appending and committing concurrently must produce unique
// sequence numbers, a clean log afterwards, and (run under -race) no
// sync/state races between the cohort fsync and in-memory commits.
func TestConcurrentAppendCommit(t *testing.T) {
	j, path := openTemp(t)
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	seqs := make(chan uint64, workers*rounds)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				seq, err := j.Append(w*rounds+i, []int{i}, []uint64{uint64(i)}, nil)
				if err != nil {
					errs <- err
					return
				}
				seqs <- seq
				if err := j.Commit(seq); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(seqs)
	seen := map[uint64]bool{}
	for seq := range seqs {
		if seen[seq] {
			t.Fatalf("sequence %d issued twice", seq)
		}
		seen[seq] = true
	}
	if len(seen) != workers*rounds {
		t.Fatalf("%d sequences issued, want %d", len(seen), workers*rounds)
	}
	if got := j.PendingCount(); got != 0 {
		t.Fatalf("%d intents pending after every commit", got)
	}
	if err := j.Checkpoint(j.Mark()); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.PendingCount(); got != 0 {
		t.Fatalf("%d intents pending after reopen of a checkpointed log", got)
	}
}

func TestChecksumDistinguishesContent(t *testing.T) {
	a := Checksum([]byte("old content"))
	b := Checksum([]byte("new content"))
	if a == b {
		t.Fatal("checksums collide on different content")
	}
	if a != Checksum([]byte("old content")) {
		t.Fatal("checksum not deterministic")
	}
}
