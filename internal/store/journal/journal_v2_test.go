package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// tear truncates the last n bytes off the log file — a crash mid-append.
func tear(t *testing.T, path string, n int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestAppendV2CarriesISums: intents appended with integrity digests
// survive a reopen with the digests intact and aligned, while plain V1
// intents keep parsing with ISums nil — the two kinds coexist in one
// log.
func TestAppendV2CarriesISums(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ords := []int{2, 5, 11}
	sums := []uint64{0xdead, 0xbeef, 0xcafe}
	isums := []uint32{0x11, 0x22, 0x33}
	seqV2, err := j.Append(7, ords, sums, isums)
	if err != nil {
		t.Fatal(err)
	}
	seqV1, err := j.Append(8, ords[:1], sums[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	// In-memory pending set, before any reopen.
	for _, rec := range j.Pending() {
		switch rec.Seq {
		case seqV2:
			if !reflect.DeepEqual(rec.ISums, isums) {
				t.Fatalf("pending V2 ISums=%v, want %v", rec.ISums, isums)
			}
		case seqV1:
			if rec.ISums != nil {
				t.Fatalf("pending V1 ISums=%v, want nil", rec.ISums)
			}
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the scan must reproduce both kinds exactly.
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending := j2.Pending()
	if len(pending) != 2 {
		t.Fatalf("%d pending after reopen, want 2", len(pending))
	}
	v2 := pending[0]
	if v2.Stripe != 7 || !reflect.DeepEqual(v2.Ords, ords) ||
		!reflect.DeepEqual(v2.Sums, sums) || !reflect.DeepEqual(v2.ISums, isums) {
		t.Fatalf("replayed V2 record %+v, want stripe 7 with ords/sums/isums intact", v2)
	}
	v1 := pending[1]
	if v1.Stripe != 8 || v1.ISums != nil {
		t.Fatalf("replayed V1 record %+v, want stripe 8 with nil ISums", v1)
	}
}

// TestAppendV2RejectsMisalignedISums: a digest slice that does not align
// with the ordinals is a caller bug the journal must refuse rather than
// persist.
func TestAppendV2RejectsMisalignedISums(t *testing.T) {
	j, err := Open(filepath.Join(t.TempDir(), "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Append(0, []int{1, 2}, []uint64{3, 4}, []uint32{5}); err == nil {
		t.Fatal("Append accepted 2 ords with 1 isum")
	}
}

// TestV2TornTailDiscarded: a V2 record with a torn tail is discarded on
// open exactly like a V1 one — the entry-size change must not confuse
// the framing.
func TestV2TornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(1, []int{0}, []uint64{9}, []uint32{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(2, []int{1, 2}, []uint64{10, 11}, []uint32{8, 9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-payload.
	tear(t, path, 10)

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending := j2.Pending()
	if len(pending) != 1 || pending[0].Stripe != 1 {
		t.Fatalf("pending after torn tail: %+v, want only the first intent", pending)
	}
	if !reflect.DeepEqual(pending[0].ISums, []uint32{7}) {
		t.Fatalf("surviving record ISums=%v, want [7]", pending[0].ISums)
	}
}
