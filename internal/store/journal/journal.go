// Package journal is a write-ahead intent log for the store's stripe
// write-back: the crash-consistency half of the paper's practical
// storage story. The §5.2 incremental sub-stripe update is a
// multi-sector read–modify–write — old data and parity are read, deltas
// XORed in, and several sectors written back — so a crash mid-write-back
// leaves a stripe whose parity silently disagrees with its data, the
// exact failure mode sector-failure-tolerant codes exist to catch.
//
// The protocol is the classic WAL discipline with checkpointing:
//
//  1. before any device write-back of a stripe, append an intent record
//     (stripe id, dirty block ordinals, checksums of the new data) and
//     fsync it;
//  2. write the stripe's data sectors, then its parity sectors;
//  3. Commit the intent — in memory only. Nothing about the commit
//     touches the disk, because the device writes it covers may still
//     sit in the page cache: durably forgetting the intent before the
//     data is durable would re-open the exact power-loss window the
//     journal exists to close.
//  4. Checkpoint — called by the store only *after* a device
//     durability barrier (Store.Sync, Close, post-recovery) —
//     truncates the log to zero once no intent is outstanding.
//
// On open, every intent since the last checkpoint is returned as
// Pending: committed-but-not-checkpointed intents replay harmlessly
// (their stripes re-verify consistent), while genuinely interrupted
// ones drive a roll-forward.
//
// Records are length-prefixed and CRC-framed; a torn append (crash
// mid-write) invalidates only the tail, which is discarded on open.
// All methods are safe for concurrent use.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"sort"
	"sync"
)

const (
	// kindIntent is the original intent record: per dirty block, an
	// ordinal and a 64-bit content checksum (12 bytes per entry).
	kindIntent = 1
	// kindIntentV2 additionally carries each dirty block's end-to-end
	// integrity digest (16 bytes per entry) — appended when the store's
	// checksum layer is on, so replay can re-stage sidecar records a
	// crash interrupted. Both kinds parse; a V1 log keeps working.
	kindIntentV2 = 2

	// maxRecordBytes bounds a record's declared payload size on scan, so
	// a corrupt length prefix cannot make Open allocate gigabytes.
	maxRecordBytes = 1 << 20
)

// Record is one stripe-flush intent: the stripe about to be written
// back, which data block ordinals the flush dirties, and a checksum of
// each dirty block's new content. Recovery uses the checksums to tell a
// completed data write-back (roll the parity forward) from one that
// never started (the on-device stripe is still the old, consistent
// one).
type Record struct {
	// Seq is the journal-assigned sequence number; Commit takes it.
	Seq uint64
	// Stripe is the stripe being written back.
	Stripe int
	// Ords lists the dirty data-cell ordinals of the flush.
	Ords []int
	// Sums holds Checksum() of each dirty block's new content, aligned
	// with Ords.
	Sums []uint64
	// ISums, when non-nil (V2 records), holds each dirty block's salted
	// end-to-end integrity digest (integrity.Sum), aligned with Ords —
	// the checksum-update half of the intent, letting recovery re-stage
	// sidecar records without recomputing trust from scratch.
	ISums []uint32
}

// Checksum is the block-content checksum recorded in intents (FNV-1a,
// 64-bit — collision-resistant enough to distinguish "old content" from
// "intended content", which is all recovery asks of it).
func Checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Journal is an append-only intent log backed by one file.
//
// Appends group-commit: each Append writes its record under mu, then
// joins a sync cohort — the first writer in fsyncs the file for
// everyone whose record is already on it, and the rest observe
// syncedTo covering their offset and return without their own fsync.
// Concurrent flush-pipeline workers therefore share fsyncs instead of
// serialising one per stripe.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	pending map[uint64]Record
	nextSeq uint64
	off     int64

	// gen counts truncations (guarded by mu): a cohort member whose
	// record predates the current generation was discarded with the old
	// log and has nothing left to sync.
	gen uint64
	// commits counts Commit calls (guarded by mu); together with
	// nextSeq it forms the quiescence token Checkpoint validates.
	commits uint64

	// syncMu serialises fsyncs; syncedGen/syncedTo name the generation
	// and file offset the last completed fsync covered. Lock order:
	// syncMu may take mu inside it; mu never takes syncMu.
	syncMu    sync.Mutex
	syncedGen uint64
	syncedTo  int64
}

// Open opens (creating if absent) the journal at path and scans it. A
// torn or corrupt tail — the signature of a crash mid-append — is
// discarded; everything before it is replayed into the pending set.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f, pending: make(map[uint64]Record), nextSeq: 1}
	if err := j.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// scan replays the log, building the pending set and truncating any
// invalid tail.
func (j *Journal) scan() error {
	raw, err := os.ReadFile(j.path)
	if err != nil {
		return err
	}
	off := 0
	for {
		rec, _, n, ok := parseRecord(raw[off:])
		if !ok {
			break
		}
		off += n
		if rec.Seq >= j.nextSeq {
			j.nextSeq = rec.Seq + 1
		}
		j.pending[rec.Seq] = rec
	}
	if int64(off) != int64(len(raw)) {
		// Torn tail: keep the valid prefix only.
		if err := j.f.Truncate(int64(off)); err != nil {
			return fmt.Errorf("journal: truncating torn tail of %s: %w", j.path, err)
		}
	}
	j.off = int64(off)
	return nil
}

// parseRecord decodes one framed record from b; ok is false when b
// holds no complete valid record (empty, torn, or corrupt).
func parseRecord(b []byte) (rec Record, kind byte, n int, ok bool) {
	if len(b) < 4 {
		return rec, 0, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen < 21 || plen > maxRecordBytes || len(b) < 4+plen+4 {
		return rec, 0, 0, false
	}
	payload := b[4 : 4+plen]
	sum := binary.LittleEndian.Uint32(b[4+plen:])
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, 0, 0, false
	}
	kind = payload[0]
	if kind != kindIntent && kind != kindIntentV2 {
		return rec, 0, 0, false
	}
	entry := 12
	if kind == kindIntentV2 {
		entry = 16
	}
	rec.Seq = binary.LittleEndian.Uint64(payload[1:])
	rec.Stripe = int(binary.LittleEndian.Uint64(payload[9:]))
	nords := int(binary.LittleEndian.Uint32(payload[17:]))
	if plen != 21+nords*entry {
		return rec, 0, 0, false
	}
	for i := 0; i < nords; i++ {
		rec.Ords = append(rec.Ords, int(binary.LittleEndian.Uint32(payload[21+i*entry:])))
		rec.Sums = append(rec.Sums, binary.LittleEndian.Uint64(payload[25+i*entry:]))
		if kind == kindIntentV2 {
			rec.ISums = append(rec.ISums, binary.LittleEndian.Uint32(payload[33+i*entry:]))
		}
	}
	return rec, kind, 4 + plen + 4, true
}

// encodeRecord frames one record for appending. isums non-nil selects
// the V2 layout (16-byte entries carrying the integrity digest).
func encodeRecord(kind byte, seq uint64, stripe int, ords []int, sums []uint64, isums []uint32) []byte {
	entry := 12
	if kind == kindIntentV2 {
		entry = 16
	}
	plen := 21 + len(ords)*entry
	out := make([]byte, 4+plen+4)
	binary.LittleEndian.PutUint32(out, uint32(plen))
	payload := out[4 : 4+plen]
	payload[0] = kind
	binary.LittleEndian.PutUint64(payload[1:], seq)
	binary.LittleEndian.PutUint64(payload[9:], uint64(stripe))
	binary.LittleEndian.PutUint32(payload[17:], uint32(len(ords)))
	for i, ord := range ords {
		binary.LittleEndian.PutUint32(payload[21+i*entry:], uint32(ord))
		binary.LittleEndian.PutUint64(payload[25+i*entry:], sums[i])
		if kind == kindIntentV2 {
			binary.LittleEndian.PutUint32(payload[33+i*entry:], isums[i])
		}
	}
	binary.LittleEndian.PutUint32(out[4+plen:], crc32.ChecksumIEEE(payload))
	return out
}

// Append records one flush intent durably (the record is on stable
// storage before Append returns — the WAL invariant: the intent
// outlives a crash that interrupts any device write-back it covers).
// isums, when non-nil, must align with ords and selects the V2 record
// carrying each block's end-to-end integrity digest; nil appends the
// original V1 record. It returns the sequence number Commit takes.
func (j *Journal) Append(stripe int, ords []int, sums []uint64, isums []uint32) (uint64, error) {
	if len(ords) != len(sums) {
		return 0, fmt.Errorf("journal: %d ords but %d sums", len(ords), len(sums))
	}
	kind := byte(kindIntent)
	if isums != nil {
		if len(isums) != len(ords) {
			return 0, fmt.Errorf("journal: %d ords but %d isums", len(ords), len(isums))
		}
		kind = kindIntentV2
	}
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return 0, fmt.Errorf("journal: closed")
	}
	seq := j.nextSeq
	rec := encodeRecord(kind, seq, stripe, ords, sums, isums)
	if _, err := j.f.WriteAt(rec, j.off); err != nil {
		j.mu.Unlock()
		return 0, err
	}
	j.off += int64(len(rec))
	target, tgen := j.off, j.gen
	j.nextSeq = seq + 1
	j.pending[seq] = Record{Seq: seq, Stripe: stripe,
		Ords: append([]int(nil), ords...), Sums: append([]uint64(nil), sums...),
		ISums: append([]uint32(nil), isums...)}
	j.mu.Unlock()
	if err := j.groupSync(tgen, target); err != nil {
		return 0, err
	}
	return seq, nil
}

// groupSync makes the file durable up to target within generation
// tgen: whoever takes syncMu first fsyncs for the whole cohort; later
// entrants find syncedTo already past their record and skip the fsync.
func (j *Journal) groupSync(tgen uint64, target int64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if j.syncedGen == tgen && j.syncedTo >= target {
		return nil
	}
	j.mu.Lock()
	f, end, gen := j.f, j.off, j.gen
	j.mu.Unlock()
	if f == nil {
		return fmt.Errorf("journal: closed")
	}
	if gen != tgen {
		// The log was truncated since this record was written, so the
		// record is gone — only possible once it stopped being pending,
		// i.e. nothing is left to make durable.
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	// The fsync covered everything written when it ran — at least end.
	if gen != j.syncedGen {
		j.syncedGen, j.syncedTo = gen, end
	} else if end > j.syncedTo {
		j.syncedTo = end
	}
	return nil
}

// Commit marks one intent's write-back complete — in memory only. The
// on-disk record stays until a Checkpoint, because the device writes
// the intent covers are not yet known durable: if power fails first,
// the next open must still re-verify this stripe. A committed intent
// that replays merely re-verifies a consistent stripe.
//
// A commit supersedes older pending intents for the same stripe: an
// aborted write-back (its intent never committed) that is later
// retried as a full-stripe rewrite is discharged by the retry's
// commit, so a transient flush failure cannot wedge checkpointing for
// the life of the process.
func (j *Journal) Commit(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	rec, ok := j.pending[seq]
	if !ok {
		return fmt.Errorf("journal: commit of unknown intent %d", seq)
	}
	delete(j.pending, seq)
	for s, r := range j.pending {
		if r.Stripe == rec.Stripe && s < seq {
			delete(j.pending, s)
		}
	}
	j.commits++
	return nil
}

// Mark snapshots the journal's append/commit state. Take one BEFORE a
// device durability barrier and hand it to Checkpoint afterwards: the
// pair proves which intents the barrier actually covered.
type Mark struct {
	seq     uint64
	commits uint64
}

// Mark returns the current quiescence token (see Checkpoint).
func (j *Journal) Mark() Mark {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Mark{seq: j.nextSeq, commits: j.commits}
}

// Checkpoint reclaims the log when it is safe to: no intent is
// outstanding AND nothing was appended or committed since m was taken
// — i.e. every committed intent's device write-back finished before
// the caller's device sync barrier began, so the barrier covered it.
// An intent appended or committed *during* the barrier might have
// device writes still in the page cache; reclaiming it would make
// "forget the write-back" durable before the write-back itself, so the
// log is left for the next barrier instead.
func (j *Journal) Checkpoint(m Mark) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if len(j.pending) > 0 || j.off == 0 || j.nextSeq != m.seq || j.commits != m.commits {
		return nil
	}
	return j.resetLocked()
}

// resetLocked empties the log file and advances the generation, so a
// stale sync high-water mark from the previous log cannot exempt
// post-truncate appends from their fsync. Callers hold mu.
func (j *Journal) resetLocked() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	j.off = 0
	j.gen++
	return j.f.Sync()
}

// Truncate discards every record — pending included. Recovery calls it
// after re-verifying (and rolling forward) the pending stripes.
func (j *Journal) Truncate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	clear(j.pending)
	return j.resetLocked()
}

// Pending returns the intents with no matching commit, ordered by
// sequence number — the stripes recovery must re-verify.
func (j *Journal) Pending() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, 0, len(j.pending))
	for _, rec := range j.pending {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// PendingCount returns the number of uncommitted intents.
func (j *Journal) PendingCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Path returns the backing file's path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the log file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
