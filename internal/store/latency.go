package store

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// innerFaults forwards the FaultDevice hooks to a wrapped device, so
// wrapper backends (LatencyDevice, PerSectorDevice) stay transparent to
// fault injection when the wrapped device supports it.
type innerFaults struct {
	inner Device
}

func (w innerFaults) faultInner() (FaultDevice, error) {
	if fd, ok := w.inner.(FaultDevice); ok {
		return fd, nil
	}
	return nil, fmt.Errorf("store: wrapped device %T does not support fault injection", w.inner)
}

// Fail forwards to the wrapped device's Fail.
func (w innerFaults) Fail() error {
	fd, err := w.faultInner()
	if err != nil {
		return err
	}
	return fd.Fail()
}

// Failed reports the wrapped device's failure state (false when the
// wrapped device has no fault support).
func (w innerFaults) Failed() bool {
	fd, err := w.faultInner()
	if err != nil {
		return false
	}
	return fd.Failed()
}

// Replace forwards to the wrapped device's Replace.
func (w innerFaults) Replace() error {
	fd, err := w.faultInner()
	if err != nil {
		return err
	}
	return fd.Replace()
}

// InjectSectorError forwards to the wrapped device's InjectSectorError.
func (w innerFaults) InjectSectorError(idx int) error {
	fd, err := w.faultInner()
	if err != nil {
		return err
	}
	return fd.InjectSectorError(idx)
}

// BadSectors reports the wrapped device's latent-sector-error count
// (zero when the wrapped device has no fault support).
func (w innerFaults) BadSectors() int {
	fd, err := w.faultInner()
	if err != nil {
		return 0
	}
	return fd.BadSectors()
}

// LatencyProfile describes the timing behaviour of a simulated remote
// or spinning backend, charged per vectored call (not per sector).
type LatencyProfile struct {
	// Latency is the fixed cost of every call.
	Latency time.Duration
	// Jitter adds a uniform random extra in [0, Jitter] per call.
	Jitter time.Duration
	// Spike adds a large extra delay to a SpikeProb fraction of calls —
	// the heavy-tailed "hiccup" regime (GC pause, network stall,
	// background compaction) that tail-tolerant reads hedge against.
	// Uniform jitter alone cannot model it: with a uniform tail the p99
	// is barely above the median and hedging has nothing to win.
	Spike     time.Duration
	SpikeProb float64
	// Serial queues calls behind each other, like a single-spindle disk
	// or a one-connection transport: two concurrent calls cost two
	// latencies of wall clock, not one. This is the regime where
	// coalescing adjacent extents into one call is a real win — with
	// concurrent service, overlapped calls already hide each other.
	Serial bool
	// Seed, when non-zero, seeds the device's private jitter/spike RNG,
	// making the simulated timing sequence reproducible run to run —
	// what a deterministic scenario harness needs. Zero keeps the old
	// behaviour (a per-device time-derived seed). Every device draws
	// from its own rand.Rand under its own lock either way; nothing
	// touches the shared process RNG.
	Seed int64
}

// LatencyDevice wraps a Device and charges a per-call latency profile,
// simulating remote media where every operation is a round trip. Because
// the cost is per call, not per sector, it makes the value of vectored
// I/O (and of merging adjacent extents) measurable: a full-stripe flush
// pays one latency hit per device instead of R.
//
// The sleep honors context cancellation, so a slow simulated backend
// cannot wedge a store operation past its deadline. Fault-injection
// hooks pass through to the wrapped device.
type LatencyDevice struct {
	innerFaults
	profile LatencyProfile

	mu  sync.Mutex // guards rng, and spans the sleep when profile.Serial
	rng *rand.Rand
}

// NewLatencyDevice wraps inner, delaying every data operation by
// latency plus a uniform random addition in [0, jitter].
func NewLatencyDevice(inner Device, latency, jitter time.Duration) *LatencyDevice {
	return NewLatencyDeviceProfile(inner, LatencyProfile{Latency: latency, Jitter: jitter})
}

// NewLatencyDeviceProfile wraps inner with the full timing profile.
func NewLatencyDeviceProfile(inner Device, profile LatencyProfile) *LatencyDevice {
	seed := profile.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &LatencyDevice{
		innerFaults: innerFaults{inner: inner},
		profile:     profile,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// drawLocked draws one operation's wait from the device's private RNG;
// the caller holds d.mu.
func (d *LatencyDevice) drawLocked() time.Duration {
	p := d.profile
	wait := p.Latency
	if p.Jitter > 0 {
		wait += time.Duration(d.rng.Int63n(int64(p.Jitter) + 1))
	}
	if p.Spike > 0 && p.SpikeProb > 0 && d.rng.Float64() < p.SpikeProb {
		wait += p.Spike
	}
	return wait
}

// delay sleeps one operation's latency, aborting early when ctx is
// cancelled. A Serial profile holds the device mutex across the sleep,
// so concurrent calls queue behind each other instead of overlapping.
func (d *LatencyDevice) delay(ctx context.Context) error {
	p := d.profile
	d.mu.Lock()
	wait := d.drawLocked()
	if !p.Serial {
		d.mu.Unlock()
	} else {
		defer d.mu.Unlock()
	}
	if wait <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Sectors returns the wrapped device's capacity.
func (d *LatencyDevice) Sectors() int { return d.inner.Sectors() }

// SectorSize returns the wrapped device's sector size.
func (d *LatencyDevice) SectorSize() int { return d.inner.SectorSize() }

// ReadSectors charges one latency hit, then forwards the vectored read.
func (d *LatencyDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if err := d.delay(ctx); err != nil {
		return err
	}
	return d.inner.ReadSectors(ctx, start, bufs)
}

// WriteSectors charges one latency hit, then forwards the vectored
// write.
func (d *LatencyDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if err := d.delay(ctx); err != nil {
		return err
	}
	return d.inner.WriteSectors(ctx, start, data)
}

// Sync charges one latency hit, then forwards the durability barrier to
// the wrapped device (a no-op when it has no Syncer capability).
func (d *LatencyDevice) Sync(ctx context.Context) error {
	if err := d.delay(ctx); err != nil {
		return err
	}
	return SyncDevice(ctx, d.inner)
}

// Close closes the wrapped device.
func (d *LatencyDevice) Close() error { return d.inner.Close() }

// PerSectorDevice adapts a Device by splitting every vectored call into
// single-sector calls against the wrapped device. It serves two roles:
// an adapter for backends that are inherently one-sector-at-a-time, and
// the benchmark baseline quantifying what vectored I/O saves — wrap a
// LatencyDevice in it and every sector pays the full round trip the old
// per-sector API paid. Fault-injection hooks pass through.
type PerSectorDevice struct {
	innerFaults
}

// NewPerSectorDevice wraps inner with the per-sector splitter.
func NewPerSectorDevice(inner Device) *PerSectorDevice {
	return &PerSectorDevice{innerFaults: innerFaults{inner: inner}}
}

// Sectors returns the wrapped device's capacity.
func (d *PerSectorDevice) Sectors() int { return d.inner.Sectors() }

// SectorSize returns the wrapped device's sector size.
func (d *PerSectorDevice) SectorSize() int { return d.inner.SectorSize() }

// ReadSectors issues one single-sector read per buffer, merging the
// per-sector losses into one SectorErrors result.
func (d *PerSectorDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	var lost SectorErrors
	for i, buf := range bufs {
		err := d.inner.ReadSectors(ctx, start+i, [][]byte{buf})
		if err == nil {
			continue
		}
		if se, ok := AsSectorErrors(err); ok {
			lost = append(lost, se...)
			continue
		}
		return err
	}
	if len(lost) > 0 {
		return lost
	}
	return nil
}

// WriteSectors issues one single-sector write per buffer, merging the
// per-sector failures into one SectorErrors result.
func (d *PerSectorDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	var failed SectorErrors
	for i, buf := range data {
		err := d.inner.WriteSectors(ctx, start+i, [][]byte{buf})
		if err == nil {
			continue
		}
		if se, ok := AsSectorErrors(err); ok {
			failed = append(failed, se...)
			continue
		}
		return err
	}
	if len(failed) > 0 {
		return failed
	}
	return nil
}

// Sync forwards the durability barrier to the wrapped device.
func (d *PerSectorDevice) Sync(ctx context.Context) error { return SyncDevice(ctx, d.inner) }

// Close closes the wrapped device.
func (d *PerSectorDevice) Close() error { return d.inner.Close() }
