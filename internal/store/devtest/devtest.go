// Package devtest is the shared conformance suite for store.Device
// backends. Every backend — local, wrapped, or remote — must present
// identical vectored I/O, fault-injection and context semantics to the
// store, and this suite is the contract's executable form: point Run at
// a factory and it exercises geometry, vectored round trips,
// partial-failure reporting, fail-stop behaviour, replace-comes-back-bad
// semantics, healing writes and context cancellation.
//
// New backends should add a one-line test:
//
//	func TestDeviceConformanceFoo(t *testing.T) {
//		devtest.Run(t, func(t *testing.T, sectors, sectorSize int) store.FaultDevice {
//			return newFooDevice(t, sectors, sectorSize)
//		})
//	}
package devtest

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"stair/internal/store"
)

// Factory builds a fresh, empty fault-injectable device of the given
// geometry. Cleanup should be registered on t (the suite does not call
// Close for factories that need teardown ordering, but it does close
// devices it is done with).
type Factory func(t *testing.T, sectors, sectorSize int) store.FaultDevice

// Suite geometry: small enough that remote backends stay fast, large
// enough that extents, offsets and partial failures are non-trivial.
const (
	sectors    = 12
	sectorSize = 64
)

// payload is a deterministic, sector-specific pattern.
func payload(idx int) []byte {
	out := make([]byte, sectorSize)
	for i := range out {
		out[i] = byte((idx*37 + i*11 + 3) % 256)
	}
	return out
}

// fillAll writes every sector in one vectored call.
func fillAll(t *testing.T, d store.FaultDevice) {
	t.Helper()
	data := make([][]byte, sectors)
	for i := range data {
		data[i] = payload(i)
	}
	if err := d.WriteSectors(context.Background(), 0, data); err != nil {
		t.Fatalf("vectored fill: %v", err)
	}
}

// Run drives the conformance suite against devices built by factory.
func Run(t *testing.T, factory Factory) {
	ctx := context.Background()

	t.Run("Geometry", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		if d.Sectors() != sectors || d.SectorSize() != sectorSize {
			t.Fatalf("geometry %d×%d, want %d×%d", d.Sectors(), d.SectorSize(), sectors, sectorSize)
		}
		if d.Failed() {
			t.Fatal("fresh device reports Failed")
		}
		if got := d.BadSectors(); got != 0 {
			t.Fatalf("fresh device reports %d bad sectors", got)
		}
	})

	t.Run("VectoredRoundTrip", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		fillAll(t, d)
		// Full extent, then an interior extent, through one call each.
		for _, ext := range []struct{ start, count int }{{0, sectors}, {3, 5}, {sectors - 1, 1}} {
			bufs := make([][]byte, ext.count)
			for i := range bufs {
				bufs[i] = make([]byte, sectorSize)
			}
			if err := d.ReadSectors(ctx, ext.start, bufs); err != nil {
				t.Fatalf("read [%d,%d): %v", ext.start, ext.start+ext.count, err)
			}
			for i, buf := range bufs {
				if !bytes.Equal(buf, payload(ext.start+i)) {
					t.Fatalf("sector %d corrupt after vectored round trip", ext.start+i)
				}
			}
		}
		// Empty extents are no-ops.
		if err := d.ReadSectors(ctx, 0, nil); err != nil {
			t.Fatalf("empty read: %v", err)
		}
		if err := d.WriteSectors(ctx, 0, nil); err != nil {
			t.Fatalf("empty write: %v", err)
		}
	})

	t.Run("SingleSectorHelpers", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		if err := store.WriteSector(ctx, d, 7, payload(70)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, sectorSize)
		if err := store.ReadSector(ctx, d, 7, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload(70)) {
			t.Fatal("single-sector round trip corrupt")
		}
	})

	t.Run("OutOfRange", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		bufs := [][]byte{make([]byte, sectorSize), make([]byte, sectorSize)}
		if err := d.ReadSectors(ctx, sectors-1, bufs); err == nil {
			t.Error("read past the end accepted")
		}
		if err := d.WriteSectors(ctx, -1, bufs); err == nil {
			t.Error("negative start accepted")
		}
	})

	t.Run("PartialFailure", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		fillAll(t, d)
		// Two latent errors inside the extent: the vectored read must
		// name exactly those sectors and still fill every readable one.
		for _, idx := range []int{4, 6} {
			if err := d.InjectSectorError(idx); err != nil {
				t.Fatal(err)
			}
		}
		if got := d.BadSectors(); got != 2 {
			t.Fatalf("BadSectors=%d after 2 injections, want 2", got)
		}
		bufs := make([][]byte, 6) // extent [2,8)
		for i := range bufs {
			bufs[i] = make([]byte, sectorSize)
		}
		err := d.ReadSectors(ctx, 2, bufs)
		se, ok := store.AsSectorErrors(err)
		if !ok {
			t.Fatalf("read through bad sectors: %v, want SectorErrors", err)
		}
		if !errors.Is(err, store.ErrBadSector) {
			t.Fatalf("SectorErrors %v does not wrap ErrBadSector", err)
		}
		lost := map[int]bool{}
		for _, e := range se {
			lost[e.Index] = true
		}
		if len(lost) != 2 || !lost[4] || !lost[6] {
			t.Fatalf("lost sectors %v, want exactly {4, 6}", lost)
		}
		for i, buf := range bufs {
			idx := 2 + i
			if lost[idx] {
				continue
			}
			if !bytes.Equal(buf, payload(idx)) {
				t.Fatalf("readable sector %d not filled on partial failure", idx)
			}
		}
	})

	t.Run("HealOnWrite", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		fillAll(t, d)
		if err := d.InjectSectorError(5); err != nil {
			t.Fatal(err)
		}
		// A vectored write covering the bad sector heals it.
		if err := d.WriteSectors(ctx, 4, [][]byte{payload(40), payload(50), payload(60)}); err != nil {
			t.Fatalf("healing write: %v", err)
		}
		if got := d.BadSectors(); got != 0 {
			t.Fatalf("BadSectors=%d after healing write, want 0", got)
		}
		buf := make([]byte, sectorSize)
		if err := store.ReadSector(ctx, d, 5, buf); err != nil {
			t.Fatalf("read after heal: %v", err)
		}
		if !bytes.Equal(buf, payload(50)) {
			t.Fatal("healed sector holds stale data")
		}
	})

	t.Run("FailStop", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		fillAll(t, d)
		if err := d.Fail(); err != nil {
			t.Fatal(err)
		}
		if !d.Failed() {
			t.Fatal("Failed() false after Fail")
		}
		bufs := [][]byte{make([]byte, sectorSize)}
		err := d.ReadSectors(ctx, 0, bufs)
		if !errors.Is(err, store.ErrDeviceFailed) {
			t.Fatalf("read on failed device: %v, want ErrDeviceFailed", err)
		}
		if _, ok := store.AsSectorErrors(err); ok {
			t.Fatal("whole-device failure reported as per-sector SectorErrors")
		}
		if err := d.WriteSectors(ctx, 0, [][]byte{payload(0)}); !errors.Is(err, store.ErrDeviceFailed) {
			t.Fatalf("write on failed device: %v, want ErrDeviceFailed", err)
		}
	})

	t.Run("ReplaceComesBackBad", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		fillAll(t, d)
		if err := d.Fail(); err != nil {
			t.Fatal(err)
		}
		if err := d.Replace(); err != nil {
			t.Fatal(err)
		}
		if d.Failed() {
			t.Fatal("Failed() true after Replace")
		}
		// The replacement holds no data: every sector must read bad
		// until something is written back.
		if got := d.BadSectors(); got != sectors {
			t.Fatalf("BadSectors=%d after Replace, want all %d", got, sectors)
		}
		bufs := make([][]byte, sectors)
		for i := range bufs {
			bufs[i] = make([]byte, sectorSize)
		}
		err := d.ReadSectors(ctx, 0, bufs)
		se, ok := store.AsSectorErrors(err)
		if !ok {
			t.Fatalf("read of unwritten replacement: %v, want SectorErrors", err)
		}
		if len(se) != sectors {
			t.Fatalf("%d sectors lost on fresh replacement, want all %d", len(se), sectors)
		}
		// A rebuild write restores exactly what it covers.
		if err := store.WriteSector(ctx, d, 3, payload(30)); err != nil {
			t.Fatal(err)
		}
		if got := d.BadSectors(); got != sectors-1 {
			t.Fatalf("BadSectors=%d after one rebuild write, want %d", got, sectors-1)
		}
		buf := make([]byte, sectorSize)
		if err := store.ReadSector(ctx, d, 3, buf); err != nil {
			t.Fatalf("read of rebuilt sector: %v", err)
		}
		if !bytes.Equal(buf, payload(30)) {
			t.Fatal("rebuilt sector corrupt")
		}
	})

	t.Run("Sync", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		sy, ok := d.(store.Syncer)
		if !ok {
			t.Skip("backend has no Syncer capability")
		}
		fillAll(t, d)
		// A healthy device syncs cleanly, and the barrier must not
		// disturb the payload.
		if err := sy.Sync(ctx); err != nil {
			t.Fatalf("sync on healthy device: %v", err)
		}
		buf := make([]byte, sectorSize)
		if err := store.ReadSector(ctx, d, 2, buf); err != nil {
			t.Fatalf("read after sync: %v", err)
		}
		if !bytes.Equal(buf, payload(2)) {
			t.Fatal("sector corrupt after sync")
		}
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if err := sy.Sync(cancelled); !errors.Is(err, context.Canceled) {
			t.Fatalf("sync with cancelled ctx: %v, want context.Canceled", err)
		}
	})

	// contiguousBufs carves count sector buffers out of one flat backing
	// without capacity caps — the shape a stripe slab extent has, which
	// is what triggers the zero-copy fast paths in backends that have
	// them. The ownership subtests run both shapes so a backend cannot
	// pass with a retention bug hiding in either path.
	contiguousBufs := func(count int) ([][]byte, []byte) {
		flat := make([]byte, count*sectorSize)
		bufs := make([][]byte, count)
		for i := range bufs {
			bufs[i] = flat[i*sectorSize : (i+1)*sectorSize]
		}
		return bufs, flat
	}

	t.Run("WriteBufferOwnership", func(t *testing.T) {
		// Once WriteSectors returns (without a cancellation error), the
		// caller owns its buffers again: the device must have taken a
		// copy (or completed the I/O), so mutating them afterwards must
		// not change what the device stores.
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		fillAll(t, d)
		check := func(start int, data [][]byte, label string) {
			t.Helper()
			if err := d.WriteSectors(ctx, start, data); err != nil {
				t.Fatalf("%s write: %v", label, err)
			}
			for _, buf := range data {
				for i := range buf {
					buf[i] = 0xFF
				}
			}
			got := make([][]byte, len(data))
			for i := range got {
				got[i] = make([]byte, sectorSize)
			}
			if err := d.ReadSectors(ctx, start, got); err != nil {
				t.Fatalf("%s read-back: %v", label, err)
			}
			for i, buf := range got {
				if !bytes.Equal(buf, payload(100+start+i)) {
					t.Fatalf("%s: sector %d changed after the caller mutated its write buffer", label, start+i)
				}
			}
		}
		scattered := make([][]byte, 4)
		for i := range scattered {
			scattered[i] = payload(100 + 2 + i)
		}
		check(2, scattered, "scattered")
		cbufs, _ := contiguousBufs(4)
		for i := range cbufs {
			copy(cbufs[i], payload(100+6+i))
		}
		check(6, cbufs, "contiguous")
	})

	t.Run("ReadBufferOwnership", func(t *testing.T) {
		// Symmetrically for reads: after ReadSectors returns, the
		// buffers are the caller's to scribble on — the device must not
		// have aliased them into its own state, so mutating them must
		// not corrupt later reads.
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		fillAll(t, d)
		for _, shape := range []string{"contiguous", "scattered"} {
			var bufs [][]byte
			if shape == "contiguous" {
				bufs, _ = contiguousBufs(sectors)
			} else {
				bufs = make([][]byte, sectors)
				for i := range bufs {
					bufs[i] = make([]byte, sectorSize)
				}
			}
			if err := d.ReadSectors(ctx, 0, bufs); err != nil {
				t.Fatalf("%s read: %v", shape, err)
			}
			for _, buf := range bufs {
				for i := range buf {
					buf[i] = 0xAA
				}
			}
			got := make([][]byte, sectors)
			for i := range got {
				got[i] = make([]byte, sectorSize)
			}
			if err := d.ReadSectors(ctx, 0, got); err != nil {
				t.Fatalf("%s re-read: %v", shape, err)
			}
			for i, buf := range got {
				if !bytes.Equal(buf, payload(i)) {
					t.Fatalf("%s: sector %d corrupt after the caller mutated its read buffers", shape, i)
				}
			}
		}
	})

	t.Run("ContextCancelled", func(t *testing.T) {
		d := factory(t, sectors, sectorSize)
		defer d.Close()
		fillAll(t, d)
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		bufs := [][]byte{make([]byte, sectorSize)}
		err := d.ReadSectors(cancelled, 0, bufs)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("read with cancelled ctx: %v, want context.Canceled", err)
		}
		if _, ok := store.AsSectorErrors(err); ok {
			t.Fatal("cancellation reported as per-sector SectorErrors")
		}
		if err := d.WriteSectors(cancelled, 0, [][]byte{payload(0)}); !errors.Is(err, context.Canceled) {
			t.Fatalf("write with cancelled ctx: %v, want context.Canceled", err)
		}
		// The device must remain usable with a live context.
		if err := d.ReadSectors(ctx, 0, bufs); err != nil {
			t.Fatalf("read after cancelled call: %v", err)
		}
	})
}
