package store

import (
	"context"
	"fmt"
	"sort"

	"stair/internal/core"
)

// This file is the store side of the end-to-end checksum layer: sidecar
// region load at Open, record staging on every sector write (see
// writeStripeCells / writeFullStripe in flush.go), and the covering
// write-back that persists staged records through the same vectored
// WriteSectors path as data.

// loadIntegrityRegions reads every device's sidecar region into the
// integrity manager at Open. Unreadable sidecar sectors (or a wholly
// unreadable device) install as zeroes: their records decode as
// Absent, so a lost sidecar can never fail good data — the scrubber
// re-writes fresh records as it verifies stripes.
func (s *Store) loadIntegrityRegions(ctx context.Context) {
	ms := s.integ.MetaSectors()
	for col := 0; col < s.n; col++ {
		raw := make([]byte, ms*s.sectorSize)
		bufs := make([][]byte, ms)
		for i := range bufs {
			bufs[i] = raw[i*s.sectorSize : (i+1)*s.sectorSize]
		}
		if err := s.devs[col].ReadSectors(ctx, s.dataSectors, bufs); err != nil {
			if se, ok := AsSectorErrors(err); ok {
				for _, e := range se {
					if idx := e.Index - s.dataSectors; idx >= 0 && idx < ms {
						clear(bufs[idx])
					}
				}
			} else {
				clear(raw)
			}
		}
		s.integ.InstallRegion(col, raw)
	}
}

// stageRecord stages a fresh checksum record for one just-written
// sector. No-op when the integrity layer is off.
func (s *Store) stageRecord(col, sector int, data []byte) {
	if s.integ != nil {
		s.integ.Update(col, sector, data)
	}
}

// flushStripeMeta persists the staged records covering one stripe's
// rows on the given columns — one vectored sidecar write per column.
// Wholly failed devices are skipped (their records refresh on rebuild,
// like their data). Device write errors other than context
// cancellation are swallowed: a record that failed to land simply
// stays stale on disk and resolves as a located mismatch → repair on a
// later verified read, which is strictly safer than failing the
// caller's flush over sidecar bytes.
func (s *Store) flushStripeMeta(ctx context.Context, stripe int, cols []int) error {
	if s.integ == nil {
		return nil
	}
	start := s.devSector(stripe, 0)
	for _, col := range cols {
		if fd, ok := s.devs[col].(FaultDevice); ok && fd.Failed() {
			continue
		}
		dev := s.devs[col]
		err := s.integ.FlushRange(ctx, col, start, s.r, func(ctx context.Context, metaStart int, bufs [][]byte) error {
			return dev.WriteSectors(ctx, s.dataSectors+metaStart, bufs)
		})
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
	}
	return nil
}

// allCols lists every column index, for whole-stripe meta flushes.
func (s *Store) allCols() []int {
	cols := make([]int, s.n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// colsOf collects the distinct columns a cell set touches, ascending.
func colsOf(cells []core.Cell) []int {
	seen := make(map[int]bool, 4)
	var cols []int
	for _, c := range cells {
		if !seen[c.Col] {
			seen[c.Col] = true
			cols = append(cols, c.Col)
		}
	}
	sort.Ints(cols)
	return cols
}

// IntegrityEnabled reports whether the checksum layer is on, and
// whether it is actively verifying (as opposed to only maintaining
// records, the STAIR_INTEGRITY=off mode).
func (s *Store) IntegrityEnabled() (on, verifying bool) {
	return s.integ != nil, s.integ != nil && s.integVerify
}

// Corrupter is the optional device capability behind silent-corruption
// injection: flip payload bits *without* registering a fault, so the
// device keeps serving the rotten bytes as if they were fine — the
// failure mode drive ECC misses and only an end-to-end checksum
// catches.
type Corrupter interface {
	CorruptSector(idx int) error
}

// CorruptSectorSilently flips one bit of a device sector's payload
// without marking the sector bad (fault injection for the silent-
// corruption threat model). The degraded cache is deliberately NOT
// invalidated: silence is the point — no layer is told.
func (s *Store) CorruptSectorSilently(dev, sector int) error {
	if dev < 0 || dev >= len(s.devs) {
		return fmt.Errorf("store: device %d out of range [0,%d)", dev, len(s.devs))
	}
	c, ok := s.devs[dev].(Corrupter)
	if !ok {
		return fmt.Errorf("store: device %d (%T) does not support silent corruption", dev, s.devs[dev])
	}
	return c.CorruptSector(sector)
}
