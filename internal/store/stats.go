package store

import "sync/atomic"

// Stats is a snapshot of the store's operation counters.
type Stats struct {
	// Reads counts successful block reads, including degraded ones.
	Reads uint64
	// DegradedReads counts reads served by on-the-fly reconstruction
	// (the §4.2–4.3 upstairs decoding path) rather than a direct
	// device read.
	DegradedReads uint64
	// Writes counts block writes accepted into the stripe buffer.
	Writes uint64
	// FullStripeFlushes counts stripes flushed through the parallel
	// full-stripe encode path.
	FullStripeFlushes uint64
	// SubStripeFlushes counts stripes flushed through the §5.2
	// incremental-parity-update path (read–modify–write).
	SubStripeFlushes uint64
	// ScrubbedStripes counts stripes swept by the scrubber.
	ScrubbedStripes uint64
	// ScrubHits counts scrubbed stripes found holding lost sectors.
	ScrubHits uint64
	// RepairedStripes and RepairedSectors count background repairs
	// that wrote reconstructed content back to devices.
	RepairedStripes uint64
	RepairedSectors uint64
	// RepairDrops counts repair requests dropped because the bounded
	// repair queue was full (a later scrub pass re-queues them).
	RepairDrops uint64
	// RepairRequeues counts repair attempts that ended with the stripe
	// still partially lost (transient write failure or cancellation
	// mid-sweep) and went back on the queue for another attempt.
	RepairRequeues uint64
	// UnrecoverableStripes counts stripes currently marked as holding
	// failure patterns outside the code's coverage. It mirrors the
	// unrecoverable bookkeeping exactly: a device replacement or a
	// full-stripe rewrite that clears a mark decrements it, so a stripe
	// re-marked later is never double-counted.
	UnrecoverableStripes uint64
	// DegradedCacheHits counts degraded reads served from the cache of
	// reconstructed still-degraded stripes instead of re-running the
	// upstairs decode.
	DegradedCacheHits uint64
	// JournaledFlushes counts stripe flushes that ran under write-ahead
	// intent protection (zero on stores opened without a journal).
	JournaledFlushes uint64
	// RecoveredStripes counts stripes rolled forward by journal replay
	// at Open: their parity disagreed with their data after a crash
	// mid-write-back and was re-encoded from the on-device content.
	RecoveredStripes uint64
	// VerifiedSectors counts sectors whose payload was checked against
	// a valid end-to-end integrity record and matched (zero when the
	// integrity layer is off or not verifying).
	VerifiedSectors uint64
	// ChecksumMismatches counts sectors that read fine but failed their
	// integrity record — silent corruption (or a misdirected/stale
	// write) caught by the checksum layer and converted into a located
	// erasure.
	ChecksumMismatches uint64
}

// counters is the live atomic form of Stats.
type counters struct {
	reads, degradedReads, writes        atomic.Uint64
	fullFlushes, subFlushes             atomic.Uint64
	scrubbedStripes, scrubHits          atomic.Uint64
	repairedStripes, repairedSectors    atomic.Uint64
	repairDrops, repairRequeues         atomic.Uint64
	unrecoverableStripes                atomic.Uint64
	journaledFlushes, recoveredStripes  atomic.Uint64
	verifiedSectors, checksumMismatches atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Reads:                c.reads.Load(),
		DegradedReads:        c.degradedReads.Load(),
		Writes:               c.writes.Load(),
		FullStripeFlushes:    c.fullFlushes.Load(),
		SubStripeFlushes:     c.subFlushes.Load(),
		ScrubbedStripes:      c.scrubbedStripes.Load(),
		ScrubHits:            c.scrubHits.Load(),
		RepairedStripes:      c.repairedStripes.Load(),
		RepairedSectors:      c.repairedSectors.Load(),
		RepairDrops:          c.repairDrops.Load(),
		RepairRequeues:       c.repairRequeues.Load(),
		UnrecoverableStripes: c.unrecoverableStripes.Load(),
		JournaledFlushes:     c.journaledFlushes.Load(),
		RecoveredStripes:     c.recoveredStripes.Load(),
		VerifiedSectors:      c.verifiedSectors.Load(),
		ChecksumMismatches:   c.checksumMismatches.Load(),
		// DegradedCacheHits lives in the cache itself; Store.Stats
		// fills it in.
	}
}

// Add combines two snapshots (used by callers that accumulate stats
// across store lifetimes, e.g. cmd/stairstore). Monotone counters sum;
// UnrecoverableStripes is a gauge of currently-marked stripes, so the
// aggregate takes the high-water mark — summing it would re-count the
// same still-unrecoverable stripe once per lifetime.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:                s.Reads + o.Reads,
		DegradedReads:        s.DegradedReads + o.DegradedReads,
		Writes:               s.Writes + o.Writes,
		FullStripeFlushes:    s.FullStripeFlushes + o.FullStripeFlushes,
		SubStripeFlushes:     s.SubStripeFlushes + o.SubStripeFlushes,
		ScrubbedStripes:      s.ScrubbedStripes + o.ScrubbedStripes,
		ScrubHits:            s.ScrubHits + o.ScrubHits,
		RepairedStripes:      s.RepairedStripes + o.RepairedStripes,
		RepairedSectors:      s.RepairedSectors + o.RepairedSectors,
		RepairDrops:          s.RepairDrops + o.RepairDrops,
		RepairRequeues:       s.RepairRequeues + o.RepairRequeues,
		UnrecoverableStripes: max(s.UnrecoverableStripes, o.UnrecoverableStripes),
		DegradedCacheHits:    s.DegradedCacheHits + o.DegradedCacheHits,
		JournaledFlushes:     s.JournaledFlushes + o.JournaledFlushes,
		RecoveredStripes:     s.RecoveredStripes + o.RecoveredStripes,
		VerifiedSectors:      s.VerifiedSectors + o.VerifiedSectors,
		ChecksumMismatches:   s.ChecksumMismatches + o.ChecksumMismatches,
	}
}
