package store_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stair/internal/store"
	"stair/internal/store/devtest"
)

// countingDevice counts inner vectored calls, to measure what the
// coalescer merged away.
type countingDevice struct {
	store.FaultDevice
	reads, writes atomic.Int64
}

func (d *countingDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	d.reads.Add(1)
	return d.FaultDevice.ReadSectors(ctx, start, bufs)
}

func (d *countingDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	d.writes.Add(1)
	return d.FaultDevice.WriteSectors(ctx, start, data)
}

// The coalescer must present the exact same device contract as the
// backend it wraps.
func TestDeviceConformanceCoalescing(t *testing.T) {
	devtest.Run(t, func(t *testing.T, sectors, sectorSize int) store.FaultDevice {
		return store.NewCoalescingDevice(store.NewMemDevice(sectors, sectorSize),
			store.CoalesceOptions{Window: 100 * time.Microsecond})
	})
}

// Concurrent adjacent writes arriving within one batch window must
// merge into a single inner call, and every sector must still land.
func TestCoalesceMergesAdjacentWrites(t *testing.T) {
	inner := &countingDevice{FaultDevice: store.NewMemDevice(16, 64)}
	d := store.NewCoalescingDevice(inner, store.CoalesceOptions{Window: 100 * time.Millisecond})
	defer d.Close()

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := make([][]byte, 2)
			for i := range data {
				idx := w*2 + i
				data[i] = make([]byte, 64)
				for j := range data[i] {
					data[i][j] = byte(idx*31 + j)
				}
			}
			if err := d.WriteSectors(context.Background(), w*2, data); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	if got := inner.writes.Load(); got != 1 {
		t.Fatalf("adjacent concurrent writes issued %d inner calls, want 1", got)
	}
	st := d.Stats()
	if st.Writes != writers || st.InnerWrites != 1 || st.MergedWrites != writers {
		t.Fatalf("stats = %+v, want Writes=%d InnerWrites=1 MergedWrites=%d", st, writers, writers)
	}

	// Every sector must read back with the pattern its writer wrote.
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	if err := d.ReadSectors(context.Background(), 0, bufs); err != nil {
		t.Fatalf("read back: %v", err)
	}
	for idx, buf := range bufs {
		for j, b := range buf {
			if b != byte(idx*31+j) {
				t.Fatalf("sector %d byte %d = %d, want %d", idx, j, b, byte(idx*31+j))
			}
		}
	}
}

// Concurrent adjacent reads merge into one inner call and each caller
// sees exactly its own extent's data.
func TestCoalesceMergesAdjacentReads(t *testing.T) {
	mem := store.NewMemDevice(16, 64)
	fill := make([][]byte, 16)
	for i := range fill {
		fill[i] = make([]byte, 64)
		for j := range fill[i] {
			fill[i][j] = byte(i*7 + j*3)
		}
	}
	if err := mem.WriteSectors(context.Background(), 0, fill); err != nil {
		t.Fatal(err)
	}
	inner := &countingDevice{FaultDevice: mem}
	d := store.NewCoalescingDevice(inner, store.CoalesceOptions{Window: 100 * time.Millisecond})
	defer d.Close()

	const readers = 4
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			bufs := make([][]byte, 2)
			for i := range bufs {
				bufs[i] = make([]byte, 64)
			}
			if err := d.ReadSectors(context.Background(), r*2, bufs); err != nil {
				t.Errorf("reader %d: %v", r, err)
				return
			}
			for i, buf := range bufs {
				idx := r*2 + i
				for j, b := range buf {
					if b != byte(idx*7+j*3) {
						t.Errorf("reader %d sector %d byte %d = %d, want %d", r, idx, j, b, byte(idx*7+j*3))
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if got := inner.reads.Load(); got != 1 {
		t.Fatalf("adjacent concurrent reads issued %d inner calls, want 1", got)
	}
}

// Extents separated by a gap must not merge: the coalescer merges round
// trips, it does not read sectors nobody asked for.
func TestCoalesceKeepsDisjointExtentsApart(t *testing.T) {
	inner := &countingDevice{FaultDevice: store.NewMemDevice(16, 64)}
	d := store.NewCoalescingDevice(inner, store.CoalesceOptions{Window: 100 * time.Millisecond})
	defer d.Close()

	var wg sync.WaitGroup
	for _, start := range []int{0, 8} {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			data := [][]byte{make([]byte, 64), make([]byte, 64)}
			if err := d.WriteSectors(context.Background(), start, data); err != nil {
				t.Errorf("write at %d: %v", start, err)
			}
		}(start)
	}
	wg.Wait()

	if got := inner.writes.Load(); got != 2 {
		t.Fatalf("disjoint writes issued %d inner calls, want 2", got)
	}
	if st := d.Stats(); st.MergedWrites != 0 {
		t.Fatalf("disjoint writes counted as merged: %+v", st)
	}
}

// A merged read spanning a latent sector error must report the loss
// only to the member whose extent contains it.
func TestCoalescePartialErrorRouting(t *testing.T) {
	mem := store.NewMemDevice(16, 64)
	if err := mem.InjectSectorError(3); err != nil {
		t.Fatal(err)
	}
	inner := &countingDevice{FaultDevice: mem}
	d := store.NewCoalescingDevice(inner, store.CoalesceOptions{Window: 100 * time.Millisecond})
	defer d.Close()

	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			bufs := [][]byte{make([]byte, 64), make([]byte, 64)}
			errs[r] = d.ReadSectors(context.Background(), r*2, bufs)
		}(r)
	}
	wg.Wait()

	if got := inner.reads.Load(); got != 1 {
		t.Fatalf("reads issued %d inner calls, want 1", got)
	}
	if errs[0] != nil {
		t.Fatalf("clean member got error %v", errs[0])
	}
	se, ok := store.AsSectorErrors(errs[1])
	if !ok || len(se) != 1 || se[0].Index != 3 {
		t.Fatalf("lossy member got %v, want SectorErrors{3}", errs[1])
	}
}

// An already-cancelled context is rejected before joining a batch.
func TestCoalesceRejectsDeadContext(t *testing.T) {
	inner := &countingDevice{FaultDevice: store.NewMemDevice(8, 64)}
	d := store.NewCoalescingDevice(inner, store.CoalesceOptions{Window: time.Millisecond})
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := d.ReadSectors(ctx, 0, [][]byte{make([]byte, 64)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("read with dead context: %v, want context.Canceled", err)
	}
	if got := inner.reads.Load(); got != 0 {
		t.Fatalf("dead-context read still issued %d inner calls", got)
	}
}

// A caller abandoning a batched operation returns promptly; the merged
// call continues for the surviving member and its data lands.
func TestCoalesceCancelWhileBatched(t *testing.T) {
	inner := &countingDevice{FaultDevice: store.NewMemDevice(8, 64)}
	d := store.NewCoalescingDevice(inner, store.CoalesceOptions{Window: 300 * time.Millisecond})
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		abandoned <- d.WriteSectors(ctx, 0, [][]byte{make([]byte, 64)})
	}()
	survivorErr := make(chan error, 1)
	go func() {
		data := []byte{1, 2, 3}
		buf := make([]byte, 64)
		copy(buf, data)
		survivorErr <- d.WriteSectors(context.Background(), 1, [][]byte{buf})
	}()

	time.Sleep(20 * time.Millisecond) // let both join the window
	cancel()
	select {
	case err := <-abandoned:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned caller got %v, want context.Canceled", err)
		}
	case <-time.After(100 * time.Millisecond):
		t.Fatal("abandoned caller did not return promptly on cancel")
	}
	if err := <-survivorErr; err != nil {
		t.Fatalf("surviving member: %v", err)
	}
	buf := make([]byte, 64)
	if err := d.ReadSectors(context.Background(), 1, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatalf("survivor's write lost: got % x", buf[:3])
	}
}

// Spike and Serial latency profiles must actually shape timing: a
// certain spike delays a single call, and a serial device queues
// concurrent calls instead of overlapping them.
func TestLatencyProfileSpikeAndSerial(t *testing.T) {
	spiky := store.NewLatencyDeviceProfile(store.NewMemDevice(4, 64), store.LatencyProfile{
		Spike: 30 * time.Millisecond, SpikeProb: 1,
	})
	defer spiky.Close()
	begin := time.Now()
	if err := spiky.ReadSectors(context.Background(), 0, [][]byte{make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(begin); took < 30*time.Millisecond {
		t.Fatalf("certain spike: read took %v, want ≥ 30ms", took)
	}

	serial := store.NewLatencyDeviceProfile(store.NewMemDevice(4, 64), store.LatencyProfile{
		Latency: 20 * time.Millisecond, Serial: true,
	})
	defer serial.Close()
	begin = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := serial.ReadSectors(context.Background(), i, [][]byte{make([]byte, 64)}); err != nil {
				t.Errorf("serial read %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if took := time.Since(begin); took < 40*time.Millisecond {
		t.Fatalf("serial device overlapped concurrent calls: %v, want ≥ 40ms", took)
	}
}
