package store

import "context"

// MemDevice is an in-memory Device with fault injection, the default
// backend for tests, benchmarks and the simulator adapters.
type MemDevice struct {
	sectors    int
	sectorSize int
	data       []byte
	*faultState
}

// NewMemDevice allocates a zeroed in-memory device.
func NewMemDevice(sectors, sectorSize int) *MemDevice {
	return &MemDevice{
		sectors:    sectors,
		sectorSize: sectorSize,
		data:       make([]byte, sectors*sectorSize),
		faultState: newFaultState(sectors),
	}
}

// Sectors returns the device capacity in sectors.
func (d *MemDevice) Sectors() int { return d.sectors }

// SectorSize returns the sector payload size.
func (d *MemDevice) SectorSize() int { return d.sectorSize }

// ReadSectors fills bufs with the extent starting at start. Bad sectors
// are reported as SectorErrors while the readable ones are still
// copied out.
func (d *MemDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := checkExtent(d.sectors, start, len(bufs)); err != nil {
		return err
	}
	if err := checkBufs(d.sectorSize, bufs); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	lost := d.lostLocked(start, len(bufs))
	if flat, ok := flatSpan(bufs); ok && len(lost) == 0 {
		// Single memmove for a contiguous destination over a wholly
		// good extent (lost buffers must stay untouched).
		copy(flat, d.data[start*d.sectorSize:])
		return nil
	}
	for i, buf := range bufs {
		idx := start + i
		if d.bad[idx] {
			continue
		}
		copy(buf, d.data[idx*d.sectorSize:(idx+1)*d.sectorSize])
	}
	if len(lost) > 0 {
		return lost
	}
	return nil
}

// WriteSectors stores data at the extent starting at start, healing any
// bad sectors it covers.
func (d *MemDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := checkExtent(d.sectors, start, len(data)); err != nil {
		return err
	}
	if err := checkBufs(d.sectorSize, data); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if flat, ok := flatSpan(data); ok {
		copy(d.data[start*d.sectorSize:], flat)
		for i := range data {
			d.healLocked(start + i)
		}
		return nil
	}
	for i, buf := range data {
		idx := start + i
		d.healLocked(idx)
		copy(d.data[idx*d.sectorSize:], buf)
	}
	return nil
}

// Fail marks the device wholly failed and destroys its contents.
func (d *MemDevice) Fail() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
	for i := range d.data {
		d.data[i] = 0
	}
	return nil
}

// Failed reports whole-device failure.
func (d *MemDevice) Failed() bool { return d.isFailed() }

// Replace swaps in a fresh zeroed device; every sector starts bad.
func (d *MemDevice) Replace() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.replaceLocked()
	for i := range d.data {
		d.data[i] = 0
	}
	return nil
}

// InjectSectorError marks one sector lost and zeroes its payload.
func (d *MemDevice) InjectSectorError(idx int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.injectLocked(idx); err != nil {
		return err
	}
	for i := idx * d.sectorSize; i < (idx+1)*d.sectorSize; i++ {
		d.data[i] = 0
	}
	return nil
}

// CorruptSector flips one payload bit of a sector WITHOUT marking it
// bad — silent corruption: reads keep succeeding and serve the rotten
// bytes (the Corrupter capability).
func (d *MemDevice) CorruptSector(idx int) error {
	if err := checkExtent(d.sectors, idx, 1); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	d.data[idx*d.sectorSize] ^= 0x01
	return nil
}

// BadSectors returns the latent-sector-error count.
func (d *MemDevice) BadSectors() int { return d.badCount() }

// Close is a no-op for the in-memory backend.
func (d *MemDevice) Close() error { return nil }
