package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"stair/internal/core"
	"stair/internal/store/journal"
)

// integrityKillPoints extends the journaled write-back matrix with the
// sidecar phase: the window between the data/parity writes and the
// sidecar write is exactly where a checksum layer without journal
// integration would cry wolf on reopen.
var integrityKillPoints = []killPoint{
	killAfterJournalAppend,
	killAfterDataWrite,
	killAfterParityWrite,
	killAfterMetaWrite,
	killAfterCommit,
}

// newIntegrityCrashVolume is newCrashVolume with each device carrying
// the sidecar region the integrity layer needs.
func newIntegrityCrashVolume(t *testing.T, code *core.Code, stripes, sector int) *crashVolume {
	t.Helper()
	v := &crashVolume{
		code:        code,
		journalPath: filepath.Join(t.TempDir(), "journal.wal"),
		stripes:     stripes,
		sector:      sector,
	}
	want := stripes*code.R() + IntegrityMetaSectors(stripes, code.R(), sector)
	v.devs = make([]Device, code.N())
	for i := range v.devs {
		v.devs[i] = NewMemDevice(want, sector)
	}
	return v
}

// openIntegrity mounts the crash volume with the checksum layer on.
func (v *crashVolume) openIntegrity(t *testing.T) (*Store, *journal.Journal) {
	t.Helper()
	j, err := journal.Open(v.journalPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{
		Code: v.code, SectorSize: v.sector, Stripes: v.stripes,
		Devices: v.devs, Journal: j,
		Integrity: &IntegrityOptions{Epoch: 3},
	})
	if err != nil {
		j.Close()
		t.Fatal(err)
	}
	return s, j
}

// assertNoFalseAlarms reads every block with verification on and runs a
// full scrub, requiring zero checksum mismatches and zero inconsistent
// stripes — the property that journal replay, not repair, resolves any
// data/sidecar skew a crash left behind.
func assertNoFalseAlarms(t *testing.T, s *Store) {
	t.Helper()
	rep, err := s.Scrub(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumMismatches != 0 || rep.StripesInconsistent != 0 ||
		rep.StripesDamaged != 0 || rep.SectorsLost != 0 {
		t.Fatalf("scrub after recovery %+v — a crash produced a false corruption alarm", rep)
	}
	if got := s.Stats().ChecksumMismatches; got != 0 {
		t.Fatalf("ChecksumMismatches=%d after recovery, want 0 (stale sidecars must resolve via replay)", got)
	}
	if got := s.Stats().VerifiedSectors; got == 0 {
		t.Fatal("VerifiedSectors=0 — the reopened store is not actually verifying")
	}
}

// TestIntegrityCrashSubStripeMatrix kills a journaled read–modify–write
// at every protocol point — including the new sidecar phase — and
// asserts the reopened, VERIFYING store sees no false corruption: each
// block holds wholly-old or wholly-new content, every read verifies,
// and a full scrub is silent.
func TestIntegrityCrashSubStripeMatrix(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	for _, kp := range integrityKillPoints {
		t.Run(string(kp), func(t *testing.T) {
			v := newIntegrityCrashVolume(t, code, 3, 128)
			s, j := v.openIntegrity(t)
			fillStore(t, s)
			if err := s.Sync(bg); err != nil {
				t.Fatal(err)
			}
			dirty := []int{s.perStripe, s.perStripe + 3}
			for _, b := range dirty {
				if err := s.WriteBlock(bg, b, blockData(b+1000, s.BlockSize())); err != nil {
					t.Fatal(err)
				}
			}
			s.testKill = func(p killPoint) error {
				if p == kp {
					return errKilled
				}
				return nil
			}
			if err := s.Flush(bg); !errors.Is(err, errKilled) {
				t.Fatalf("killed flush returned %v, want errKilled", err)
			}
			abandonStore(s, j)

			s2, j2 := v.openIntegrity(t)
			defer func() { s2.Close(); j2.Close() }()
			if rep := s2.Recovery(); rep.Unrecoverable != 0 {
				t.Fatalf("recovery %+v, want no unrecoverable stripes", rep)
			}
			checkStripesConsistent(t, s2)
			// Old or rolled-forward content per kill point; every read runs
			// under verification.
			newContent := kp != killAfterJournalAppend
			for b := 0; b < s2.Blocks(); b++ {
				want := blockData(b, s2.BlockSize())
				if newContent && (b == dirty[0] || b == dirty[1]) {
					want = blockData(b+1000, s2.BlockSize())
				}
				got, err := s2.ReadBlock(bg, b)
				if err != nil {
					t.Fatalf("read block %d: %v", b, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("block %d holds neither old nor rolled-forward content", b)
				}
			}
			assertNoFalseAlarms(t, s2)
			if got := j2.PendingCount(); got != 0 {
				t.Fatalf("%d intents still pending after recovery", got)
			}
		})
	}
}

// TestIntegrityCrashFullStripeMatrix is the full-stripe-flush variant:
// every stripe's write-back dies at the target point, and the reopened
// store must still verify clean.
func TestIntegrityCrashFullStripeMatrix(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	for _, kp := range integrityKillPoints {
		t.Run(string(kp), func(t *testing.T) {
			v := newIntegrityCrashVolume(t, code, 3, 128)
			s, j := v.openIntegrity(t)
			fillStore(t, s)
			if err := s.Sync(bg); err != nil {
				t.Fatal(err)
			}
			s.testKill = func(p killPoint) error {
				if p == kp {
					return errKilled
				}
				return nil
			}
			kills := 0
			for b := 0; b < s.Blocks(); b++ {
				if err := s.WriteBlock(bg, b, blockData(b+1000, s.BlockSize())); err != nil {
					if !errors.Is(err, errKilled) {
						t.Fatalf("write block %d: %v", b, err)
					}
					kills++
				}
			}
			if kills != v.stripes {
				t.Fatalf("%d flushes killed, want one per stripe (%d)", kills, v.stripes)
			}
			abandonStore(s, j)

			s2, j2 := v.openIntegrity(t)
			defer func() { s2.Close(); j2.Close() }()
			if rep := s2.Recovery(); rep.Unrecoverable != 0 {
				t.Fatalf("recovery %+v, want no unrecoverable stripes", rep)
			}
			checkStripesConsistent(t, s2)
			// Whole-old (kill before any device write) or whole-new per
			// stripe; either way every read must verify.
			round := 1000
			if kp == killAfterJournalAppend {
				round = 0
			}
			for b := 0; b < s2.Blocks(); b++ {
				got, err := s2.ReadBlock(bg, b)
				if err != nil {
					t.Fatalf("read block %d: %v", b, err)
				}
				if !bytes.Equal(got, blockData(b+round, s2.BlockSize())) {
					t.Fatalf("block %d does not hold the expected round-%d content", b, round)
				}
			}
			assertNoFalseAlarms(t, s2)
		})
	}
}

// TestIntegrityCrashSurvivesWithLatentLoss composes the two failure
// models: a crash between the data and parity phases PLUS a fail-stop
// sector loss on an untouched cell of the same stripe. Recovery repairs
// through the journal-verified path and the reopened store must verify
// clean — in particular the repaired sector's record must be fresh, not
// a stale pre-crash one.
func TestIntegrityCrashSurvivesWithLatentLoss(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	v := newIntegrityCrashVolume(t, code, 3, 128)
	s, j := v.openIntegrity(t)
	fillStore(t, s)
	if err := s.Sync(bg); err != nil {
		t.Fatal(err)
	}
	dirty := []int{s.perStripe, s.perStripe + 3}
	for _, b := range dirty {
		if err := s.WriteBlock(bg, b, blockData(b+1000, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	s.testKill = func(p killPoint) error {
		if p == killAfterParityWrite {
			return errKilled
		}
		return nil
	}
	if err := s.Flush(bg); !errors.Is(err, errKilled) {
		t.Fatalf("killed flush returned %v, want errKilled", err)
	}
	abandonStore(s, j)

	// The disk develops a latent error on an untouched data cell of the
	// crashed stripe before the reboot.
	lostOrd := 10
	lostCell := code.DataCells()[lostOrd]
	md := v.devs[lostCell.Col].(*MemDevice)
	if err := md.InjectSectorError(1*code.R() + lostCell.Row); err != nil {
		t.Fatal(err)
	}

	s2, j2 := v.openIntegrity(t)
	defer func() { s2.Close(); j2.Close() }()
	rep := s2.Recovery()
	if rep.RolledForward != 1 || rep.Unrecoverable != 0 {
		t.Fatalf("recovery %+v, want the verified repair accepted", rep)
	}
	got, err := s2.ReadBlock(bg, s2.perStripe+lostOrd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockData(s2.perStripe+lostOrd, s2.BlockSize())) {
		t.Fatal("repaired block does not hold its original content")
	}
	checkStripesConsistent(t, s2)
	assertNoFalseAlarms(t, s2)
}
