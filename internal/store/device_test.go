package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"stair/internal/core"
)

// countingDevice tallies vectored calls, to pin the one-call-per-device
// contract of the store's stripe-granular paths.
type countingDevice struct {
	*MemDevice
	reads, writes atomic.Int64
}

func (d *countingDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	d.reads.Add(1)
	return d.MemDevice.ReadSectors(ctx, start, bufs)
}

func (d *countingDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	d.writes.Add(1)
	return d.MemDevice.WriteSectors(ctx, start, data)
}

// TestVectoredCallsPerDevice: a full-stripe flush issues exactly one
// vectored write per device, and a stripe load exactly one vectored
// read per device — the redesign's core promise (one round trip per
// device per stripe on remote backends).
func TestVectoredCallsPerDevice(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	const stripes = 2
	devs := make([]Device, code.N())
	counters := make([]*countingDevice, code.N())
	for i := range devs {
		counters[i] = &countingDevice{MemDevice: NewMemDevice(stripes*code.R(), 128)}
		devs[i] = counters[i]
	}
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: stripes, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Filling stripe 0 triggers the full-stripe flush on the last write.
	for b := 0; b < s.perStripe; b++ {
		if err := s.WriteBlock(bg, b, blockData(b, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().FullStripeFlushes; got != 1 {
		t.Fatalf("FullStripeFlushes=%d, want 1", got)
	}
	for i, c := range counters {
		if got := c.writes.Load(); got != 1 {
			t.Errorf("device %d: %d vectored writes for one full-stripe flush, want exactly 1", i, got)
		}
		if got := c.reads.Load(); got != 0 {
			t.Errorf("device %d: %d reads during a full-stripe flush, want 0", i, got)
		}
	}

	// A stripe load is one vectored read per device.
	for _, c := range counters {
		c.reads.Store(0)
	}
	sh := s.shard(0)
	sh.mu.Lock()
	_, lost, _, err := s.loadStripe(bg, 0, false)
	sh.mu.Unlock()
	if err != nil || len(lost) != 0 {
		t.Fatalf("loadStripe: lost=%d err=%v", len(lost), err)
	}
	for i, c := range counters {
		if got := c.reads.Load(); got != 1 {
			t.Errorf("device %d: %d vectored reads for one stripe load, want exactly 1", i, got)
		}
	}
}

// blockingDevice parks selected operations until their context is
// cancelled — the degenerate remote backend a context-aware store must
// not wedge on.
type blockingDevice struct {
	*MemDevice
	blockReads  atomic.Bool
	blockWrites atomic.Bool
	blocked     chan struct{} // receives one signal per parked call
}

func newBlockingDevice(sectors, sectorSize int) *blockingDevice {
	return &blockingDevice{
		MemDevice: NewMemDevice(sectors, sectorSize),
		blocked:   make(chan struct{}, 16),
	}
}

func (d *blockingDevice) park(ctx context.Context) error {
	select {
	case d.blocked <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return ctx.Err()
}

func (d *blockingDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if d.blockReads.Load() {
		return d.park(ctx)
	}
	return d.MemDevice.ReadSectors(ctx, start, bufs)
}

func (d *blockingDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if d.blockWrites.Load() {
		return d.park(ctx)
	}
	return d.MemDevice.WriteSectors(ctx, start, data)
}

func openBlockingStore(t *testing.T, code *core.Code, stripes int) (*Store, *blockingDevice) {
	t.Helper()
	devs := make([]Device, code.N())
	blk := newBlockingDevice(stripes*code.R(), 128)
	for i := range devs {
		devs[i] = NewMemDevice(stripes*code.R(), 128)
	}
	devs[0] = blk
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: stripes, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		blk.blockReads.Store(false)
		blk.blockWrites.Store(false)
		s.Close()
	})
	return s, blk
}

// cancelWhenBlocked cancels ctx once the device parks a call, and fails
// the test if nothing ever blocks.
func cancelWhenBlocked(t *testing.T, blk *blockingDevice, cancel context.CancelFunc) {
	t.Helper()
	go func() {
		select {
		case <-blk.blocked:
			cancel()
		case <-time.After(10 * time.Second):
			t.Error("no device call ever blocked")
			cancel()
		}
	}()
}

// TestCancelledFlushAborts: a Flush wedged on a blocking device returns
// promptly when its context is cancelled, and the unflushed buffer
// survives for a later retry.
func TestCancelledFlushAborts(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, blk := openBlockingStore(t, code, 2)
	// A partial stripe: the flush takes the read–modify–write path,
	// whose stripe load hits the blocking device.
	want := blockData(1, s.BlockSize())
	if err := s.WriteBlock(bg, 1, want); err != nil {
		t.Fatal(err)
	}
	blk.blockReads.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelWhenBlocked(t, blk, cancel)
	start := time.Now()
	err := s.Flush(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Flush: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Flush took %v — the in-flight device wait did not abort", elapsed)
	}
	// The write is still buffered; a retry with a live context lands it.
	blk.blockReads.Store(false)
	if err := s.Flush(bg); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	got, err := s.ReadBlock(bg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("block lost across a cancelled flush")
	}
}

// TestCancelledSubStripeWriteBackStaysConsistent: cancelling a
// read–modify–write mid-write-back may leave a half-landed stripe on
// the devices; the retry must restore full parity consistency (the
// buffer is promoted to a full-stripe rewrite, because the incremental
// delta no longer matches what is on disk).
func TestCancelledSubStripeWriteBackStaysConsistent(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, blk := openBlockingStore(t, code, 2)
	fillStore(t, s)
	// Overwrite a block that lives on the blocking device, so its
	// write-back (device 0 comes first in the col-ordered sweep) is the
	// call that parks. Reads stay live, so the RMW load succeeds.
	victim := -1
	for ord, cell := range s.dataCells {
		if cell.Col == 0 {
			victim = ord
			break
		}
	}
	if victim < 0 {
		t.Fatal("no data cell on device 0")
	}
	want := blockData(1234, s.BlockSize())
	if err := s.WriteBlock(bg, victim, want); err != nil {
		t.Fatal(err)
	}
	blk.blockWrites.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelWhenBlocked(t, blk, cancel)
	if err := s.Flush(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled flush: %v, want context.Canceled", err)
	}
	blk.blockWrites.Store(false)
	if err := s.Flush(bg); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	got, err := s.ReadBlock(bg, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("overwrite lost across a cancelled write-back")
	}
	checkStripesConsistent(t, s)
}

// TestCancelledScrubAborts: a scrub pass wedged on a blocking device
// aborts mid-pass on cancellation — not merely between stripes.
func TestCancelledScrubAborts(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, blk := openBlockingStore(t, code, 4)
	fillStore(t, s)
	blk.blockReads.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelWhenBlocked(t, blk, cancel)
	start := time.Now()
	_, err := s.Scrub(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Scrub: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Scrub took %v — the in-flight device wait did not abort", elapsed)
	}
}

// TestScrubPacing: a rate-limited pass spreads its sweep over the
// stripes/sec budget, and an unpaced pass does not slow down.
func TestScrubPacing(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// 200 stripes/sec over 6 stripes: 5 inter-stripe waits ≥ 25ms.
	start := time.Now()
	rep, err := s.scrub(bg, newPacer(200))
	if err != nil {
		t.Fatal(err)
	}
	if rep.StripesChecked != 6 {
		t.Fatalf("paced pass checked %d stripes, want 6", rep.StripesChecked)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("paced pass finished in %v, want ≥ ~25ms at 200 stripes/sec", elapsed)
	}
}

// TestScrubberStopInterruptsPacedPass: StopScrubber cancels a slow
// paced pass mid-sweep instead of waiting out the pacing budget.
func TestScrubberStopInterruptsPacedPass(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// 1 stripe/sec over 8 stripes would take ~7s per pass; stopping must
	// not wait for that.
	if err := s.StartScrubber(ScrubberOptions{Interval: time.Millisecond, StripesPerSec: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let a pass begin pacing
	start := time.Now()
	s.StopScrubber()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("StopScrubber took %v against a paced pass", elapsed)
	}
}

// TestScrubberOptionValidation: bad scrubber options are refused.
func TestScrubberOptionValidation(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartScrubber(ScrubberOptions{Interval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
	if err := s.StartScrubber(ScrubberOptions{Interval: time.Millisecond, StripesPerSec: -1}); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestSidecarAtomicity: fault-sidecar saves go through write-temp +
// fsync + rename, and a stale temp file left by a crash mid-save is
// discarded unread instead of corrupting fault state.
func TestSidecarAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev.img")
	d, err := OpenFileDevice(path, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InjectSectorError(3); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-save leaves a partial temp file; it must never shadow
	// or corrupt the real sidecar.
	tmp := path + ".faults.tmp"
	if err := os.WriteFile(tmp, []byte(`{"failed":true,"bad":[0,1,2`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err = OpenFileDevice(path, 8, 64)
	if err != nil {
		t.Fatalf("open with stale sidecar temp: %v", err)
	}
	defer d.Close()
	if d.Failed() {
		t.Fatal("stale temp file was trusted as fault state")
	}
	if got := d.BadSectors(); got != 1 {
		t.Fatalf("BadSectors=%d after reopen, want 1 (from the real sidecar)", got)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale sidecar temp not cleaned up on open")
	}
	// The next save must overwrite cleanly and leave a valid sidecar.
	if err := d.InjectSectorError(5); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path + ".faults")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"bad":[3,5]`)) {
		t.Fatalf("sidecar %s does not record both faults", raw)
	}
}
