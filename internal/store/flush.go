package store

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"stair/internal/core"
	"stair/internal/store/integrity"
	"stair/internal/store/journal"
)

// This file is the store's write-back engine: the per-stripe flush
// (full-stripe encode or §5.2 incremental read–modify–write), the
// optional write-ahead journaling that makes a flush crash-consistent,
// and the asynchronous flush pipeline that overlaps stripe encodes with
// device write-back.
//
// The journaled write-back protocol per stripe is
//
//	1. append an intent (stripe, dirty ords, checksums) — fsynced;
//	2. write the stripe's data sectors;
//	3. write its parity sectors;
//	4. commit the intent.
//
// A crash between 1 and 4 leaves the intent pending; Open replays it,
// re-verifying the stripe's parity and rolling forward if the
// write-back was interrupted (see recovery.go). Data sectors go first
// so that recovery's roll-forward — re-encoding parity from on-device
// data — converges on the *new* content whenever the data phase
// completed, and on a consistent mix otherwise.

// killPoint names a crash-injection site inside the journaled
// write-back. The crash tests arm testKill to abort a flush at each
// point in turn — simulating a crash with the journal, devices and
// buffers frozen mid-protocol — then reopen the volume and assert
// recovery restores parity consistency.
type killPoint string

const (
	killAfterJournalAppend killPoint = "after-journal-append"
	killAfterDataWrite     killPoint = "after-data-write"
	killAfterParityWrite   killPoint = "after-parity-write"
	killAfterMetaWrite     killPoint = "after-meta-write"
	killAfterCommit        killPoint = "after-commit"
)

// kill fires the crash-injection hook, if armed.
func (s *Store) kill(p killPoint) error {
	if s.testKill != nil {
		return s.testKill(p)
	}
	return nil
}

// acquireEncode takes one slot of the bounded in-flight encode budget;
// a nil semaphore is unbounded. It keeps the CPU-heavy encode stages of
// a wide flush pipeline from stacking up while device write-back is the
// actual bottleneck.
func (s *Store) acquireEncode(ctx context.Context) error {
	if s.encodeSem == nil {
		return ctx.Err()
	}
	select {
	case s.encodeSem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Store) releaseEncode() {
	if s.encodeSem != nil {
		<-s.encodeSem
	}
}

// flushStripeLocked lands one buffered stripe on the devices; the caller
// holds the stripe's shard mutex. A fully dirty stripe is encoded from
// scratch in parallel; a partial one goes through read–modify–write with
// §5.2 incremental parity updates. On error the buffer is retained so
// the flush can be retried (e.g. after a device replacement and
// rebuild, or with a live context after a cancellation).
func (s *Store) flushStripeLocked(ctx context.Context, sh *lockShard, stripe int) (err error) {
	buf := sh.dirty[stripe]
	if buf == nil {
		return nil
	}
	defer func() {
		if err != nil {
			buf.stuck = true
		}
	}()
	if buf.count == s.perStripe {
		return s.flushFullLocked(ctx, sh, stripe, buf)
	}
	return s.flushPartialLocked(ctx, sh, stripe, buf)
}

// flushFullLocked is the full-stripe path: encode every parity cell
// from the buffered data and write the whole stripe back. The buffer's
// rows already sit at their stripe offsets in its slab, so the encode
// computes parity in place and the write-back sends slab sub-slices —
// no copy between the write path's buffer and the devices.
func (s *Store) flushFullLocked(ctx context.Context, sh *lockShard, stripe int, buf *stripeBuf) error {
	st, err := s.code.StripeOver(buf.slab, s.sectorSize)
	if err != nil {
		return err
	}
	if err := s.acquireEncode(ctx); err != nil {
		return err
	}
	err = s.code.EncodeParallel(st, core.MethodAuto, s.workers)
	s.releaseEncode()
	if err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journaledWriteback(ctx, stripe, st, buf, nil); err != nil {
			return err
		}
	} else {
		// One vectored write per device covers the whole chunk. A
		// cancelled context keeps the buffer (the retry re-encodes and
		// rewrites every cell, so a half-landed stripe is made whole);
		// per-device write failures are dropped — the stripe stays
		// degraded there until repair or replacement, which is exactly
		// what the code tolerates.
		if err := s.writeFullStripe(ctx, stripe, st); err != nil {
			return err
		}
		if err := s.flushStripeMeta(ctx, stripe, s.allCols()); err != nil {
			return err
		}
	}
	delete(sh.dirty, stripe)
	s.dirtyCount.Add(-1)
	// A full rewrite resurrects a previously unrecoverable stripe.
	s.clearUnrecoverableLocked(sh, stripe)
	s.c.fullFlushes.Add(1)
	s.cache.invalidate(stripe)
	// The write-back completed without cancellation, so no device can
	// still reference the slab: recycle the buffer.
	s.releaseStripeBuf(buf)
	return nil
}

// flushPartialLocked is the read–modify–write path: load the stripe,
// repair any latent losses in passing, apply the §5.2 incremental
// parity updates for the dirty blocks, and write back only the touched
// cells.
func (s *Store) flushPartialLocked(ctx context.Context, sh *lockShard, stripe int, buf *stripeBuf) error {
	st, lost, _, err := s.loadStripe(ctx, stripe, true)
	if err != nil {
		return err
	}
	if err := s.acquireEncode(ctx); err != nil {
		s.releaseStripeUnlessCancelled(ctx, st)
		return err
	}
	touched, err := s.applyUpdatesLocked(sh, stripe, st, lost, buf)
	s.releaseEncode()
	if err != nil {
		s.releaseStripeUnlessCancelled(ctx, st)
		return err
	}
	// Write back the dirty data cells and affected parity, plus any
	// cells just repaired (healing their bad sectors in passing).
	for _, cell := range lost {
		touched[cell] = true
	}
	cells := make([]core.Cell, 0, len(touched))
	for cell := range touched {
		cells = append(cells, cell)
	}
	sortCells(cells)
	if s.journal != nil {
		err = s.journaledWriteback(ctx, stripe, st, buf, cells)
	} else {
		_, _, err = s.writeStripeCells(ctx, stripe, st, cells)
		if err == nil {
			err = s.flushStripeMeta(ctx, stripe, colsOf(cells))
		}
	}
	if err != nil {
		// Interrupted mid-write-back: an unknown subset of the touched
		// cells landed, so the incremental delta against current device
		// state is no longer applicable on retry. Promote the buffer to
		// a full stripe (st holds every cell's updated content) — the
		// retry rewrites the whole stripe and restores consistency.
		s.promoteToFullLocked(buf, st)
		s.releaseStripeUnlessCancelled(ctx, st)
		return err
	}
	delete(sh.dirty, stripe)
	s.dirtyCount.Add(-1)
	s.c.subFlushes.Add(1)
	s.cache.invalidate(stripe)
	s.releaseStripeUnlessCancelled(ctx, st)
	// The buffer's own slab was never handed to a device (the write-back
	// went through st), so it can always be recycled on success.
	s.releaseStripeBuf(buf)
	return nil
}

// applyUpdatesLocked repairs a loaded stripe's lost cells and applies
// the buffered dirty blocks through the §5.2 incremental parity
// relations, returning the set of cells whose content changed. The
// caller holds the shard mutex and an encode-budget slot.
func (s *Store) applyUpdatesLocked(sh *lockShard, stripe int, st *core.Stripe, lost []core.Cell, buf *stripeBuf) (map[core.Cell]bool, error) {
	if len(lost) > 0 {
		if err := s.code.RepairParallel(st, lost, s.workers); err != nil {
			if errors.Is(err, ErrUnrecoverable) {
				s.markUnrecoverableLocked(sh, stripe)
			}
			return nil, fmt.Errorf("store: flushing stripe %d: %w", stripe, err)
		}
	}
	touched := map[core.Cell]bool{}
	for ord, data := range buf.data {
		if data == nil {
			continue
		}
		cell := s.dataCells[ord]
		deps, err := s.code.ParityDependencies(cell)
		if err != nil {
			return nil, err
		}
		if err := s.code.Update(st, cell, data); err != nil {
			return nil, err
		}
		touched[cell] = true
		for _, p := range deps {
			touched[p] = true
		}
	}
	return touched, nil
}

// journaledWriteback lands a flush under write-ahead protection: intent
// append (fsynced), data sectors, parity sectors, sidecar checksum
// records (when the integrity layer is on), in-memory commit — with
// the crash-injection hooks between the phases. cells nil means the
// whole stripe (the full-stripe path). The intent's on-disk record
// outlives the commit until the next Checkpoint barrier (see the
// journal package): the device writes made here are not yet durable.
// With integrity on, the intent also carries each dirty block's salted
// payload digest, so replay can re-stage the records the crash
// interrupted instead of mistaking a lagging sidecar for corruption.
func (s *Store) journaledWriteback(ctx context.Context, stripe int, st *core.Stripe, buf *stripeBuf, cells []core.Cell) error {
	var ords []int
	var sums []uint64
	var isums []uint32
	for ord, data := range buf.data {
		if data == nil {
			continue
		}
		ords = append(ords, ord)
		sums = append(sums, journal.Checksum(data))
		if s.integ != nil {
			cell := s.dataCells[ord]
			isums = append(isums, integrity.Sum(s.integ.Epoch(), cell.Col, s.devSector(stripe, cell.Row), data))
		}
	}
	seq, err := s.journal.Append(stripe, ords, sums, isums)
	if err != nil {
		return fmt.Errorf("store: journaling intent for stripe %d: %w", stripe, err)
	}
	s.c.journaledFlushes.Add(1)
	if err := s.kill(killAfterJournalAppend); err != nil {
		return err
	}
	data, parity := s.partitionCells(cells)
	if _, _, err := s.writeStripeCells(ctx, stripe, st, data); err != nil {
		return err
	}
	if err := s.kill(killAfterDataWrite); err != nil {
		return err
	}
	if _, _, err := s.writeStripeCells(ctx, stripe, st, parity); err != nil {
		return err
	}
	if err := s.kill(killAfterParityWrite); err != nil {
		return err
	}
	if s.integ != nil {
		cols := s.allCols()
		if cells != nil {
			cols = colsOf(cells)
		}
		if err := s.flushStripeMeta(ctx, stripe, cols); err != nil {
			return err
		}
		if err := s.kill(killAfterMetaWrite); err != nil {
			return err
		}
	}
	if err := s.journal.Commit(seq); err != nil {
		return fmt.Errorf("store: committing intent for stripe %d: %w", stripe, err)
	}
	return s.kill(killAfterCommit)
}

// partitionCells splits a write-back set into its data and parity
// phases, each sorted for contiguous vectored runs. nil means every
// cell of the stripe.
func (s *Store) partitionCells(cells []core.Cell) (data, parity []core.Cell) {
	if cells == nil {
		return s.sortedDataCells, s.parityCells
	}
	for _, cell := range cells {
		if s.isDataCell[cell] {
			data = append(data, cell)
		} else {
			parity = append(parity, cell)
		}
	}
	sortCells(data)
	sortCells(parity)
	return data, parity
}

// promoteToFullLocked fills a partial stripe buffer with every data
// cell of st, so its next flush takes the full-stripe path. Callers
// hold the stripe's shard mutex.
func (s *Store) promoteToFullLocked(buf *stripeBuf, st *core.Stripe) {
	for ord, cell := range s.dataCells {
		if buf.data[ord] == nil {
			off := s.ordOff[ord]
			buf.data[ord] = buf.slab[off : off+s.sectorSize]
			copy(buf.data[ord], st.Sector(cell.Col, cell.Row))
			buf.count++
		}
	}
}

// sortCells orders cells by (Col, Row) so per-device contiguous runs
// are adjacent.
func sortCells(cells []core.Cell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Col != cells[j].Col {
			return cells[i].Col < cells[j].Col
		}
		return cells[i].Row < cells[j].Row
	})
}

// writeFullStripe writes every cell of a stripe, one vectored call per
// device. Only context cancellation is reported; per-device write
// errors leave the stripe degraded there (repair heals it later).
func (s *Store) writeFullStripe(ctx context.Context, stripe int, st *core.Stripe) error {
	sh := s.shard(stripe)
	rows := sh.rowvec(s.r)
	for col := 0; col < s.n; col++ {
		for row := 0; row < s.r; row++ {
			rows[row] = st.Sector(col, row)
		}
		werr := s.devs[col].WriteSectors(ctx, s.devSector(stripe, 0), rows)
		if err := ctx.Err(); err != nil {
			sh.dropScratchOnCancel()
			return err
		}
		if s.integ != nil {
			// Stage fresh records for the sectors that landed (all of
			// them on success, the non-failed ones on a partial error).
			failedAt := map[int]bool{}
			if se, ok := AsSectorErrors(werr); ok {
				for _, e := range se {
					failedAt[e.Index] = true
				}
			} else if werr != nil {
				continue
			}
			for row := 0; row < s.r; row++ {
				if sec := s.devSector(stripe, row); !failedAt[sec] {
					s.stageRecord(col, sec, st.Sector(col, row))
				}
			}
		}
	}
	return nil
}

// writeStripeCells writes the given cells (sorted by Col, Row) of one
// stripe back to their devices, grouped into one vectored call per
// contiguous per-device run. It reports how many sectors landed and how
// many failed; only context cancellation aborts the sweep with an
// error.
func (s *Store) writeStripeCells(ctx context.Context, stripe int, st *core.Stripe, cells []core.Cell) (wrote, failed int, err error) {
	sh := s.shard(stripe)
	for i := 0; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j].Col == cells[i].Col && cells[j].Row == cells[j-1].Row+1 {
			j++
		}
		run := cells[i:j]
		bufs := sh.rowvec(len(run))
		for k, cell := range run {
			bufs[k] = st.Sector(cell.Col, cell.Row)
		}
		werr := s.devs[run[0].Col].WriteSectors(ctx, s.devSector(stripe, run[0].Row), bufs)
		if cerr := ctx.Err(); cerr != nil {
			sh.dropScratchOnCancel()
			return wrote, failed, cerr
		}
		switch se, ok := AsSectorErrors(werr); {
		case werr == nil:
			wrote += len(run)
			if s.integ != nil {
				for k, cell := range run {
					s.stageRecord(cell.Col, s.devSector(stripe, cell.Row), bufs[k])
				}
			}
		case ok:
			failed += len(se)
			wrote += len(run) - len(se)
			if s.integ != nil {
				failedAt := map[int]bool{}
				for _, e := range se {
					failedAt[e.Index] = true
				}
				for k, cell := range run {
					if sec := s.devSector(stripe, cell.Row); !failedAt[sec] {
						s.stageRecord(cell.Col, sec, bufs[k])
					}
				}
			}
		default:
			failed += len(run)
		}
		i = j
	}
	return wrote, failed, nil
}

// --- The asynchronous flush pipeline -------------------------------
//
// With Config.FlushWorkers > 0, a filled or evicted stripe buffer is
// handed to a pool of background workers instead of being flushed
// inline: the writer keeps going while workers encode (bounded by
// MaxInflightEncodes) and write back concurrently. On high-latency
// media this pipelines one stripe's device round trips under another's
// encode — the write-path analogue of what vectored I/O did for the
// per-call count. Flush drains the pipeline; Sync adds the durability
// barrier on top.

// asyncFlush reports whether the background pipeline is on.
func (s *Store) asyncFlush() bool { return s.flushCh != nil }

// queueFlushLocked marks a buffer as handed to the pipeline and
// accounts it in flight; the caller holds the shard mutex and must call
// sendFlush (after unlocking) iff this returns true. Stuck buffers stay
// out of the pipeline — like eviction, the background engine does not
// re-report a known-failing stripe on every write; explicit Flush still
// retries them.
func (s *Store) queueFlushLocked(buf *stripeBuf) bool {
	if buf.queued || buf.stuck {
		return false
	}
	buf.queued = true
	s.flushMu.Lock()
	s.flushInflight++
	s.flushMu.Unlock()
	return true
}

// sendFlush hands a queued stripe to the workers. It must be called
// without the shard mutex: a blocked send while holding it could
// deadlock against workers waiting for that same shard. The channel
// has one slot per stripe and the queued flag dedupes, so the send
// cannot actually block; the default arm is a safety net that undoes
// the queueing rather than wedging a writer. A send racing Close is
// reverted the same way — the workers may already be gone, and Close's
// own sweep handles the buffer.
func (s *Store) sendFlush(stripe int) {
	if s.closed.Load() {
		s.unqueueFlush(stripe)
		return
	}
	select {
	case s.flushCh <- stripe:
	default:
		s.unqueueFlush(stripe)
	}
}

// unqueueFlush reverts a queueFlushLocked whose channel hand-off did
// not happen.
func (s *Store) unqueueFlush(stripe int) {
	sh := s.shard(stripe)
	sh.mu.Lock()
	if buf := sh.dirty[stripe]; buf != nil {
		buf.queued = false
	}
	sh.mu.Unlock()
	s.finishFlush(stripe, nil)
}

// flushLoop is one pipeline worker: it drains queued stripes until
// Close. Workers on stripes in different shards proceed in parallel;
// background flushes run under the store's own context, not any
// caller's deadline.
func (s *Store) flushLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			// Retire entries that raced Close into the channel — their
			// buffers are swept by Close's flushAll; only the in-flight
			// accounting must not leak (a backpressure waiter keys off
			// it).
			for {
				select {
				case stripe := <-s.flushCh:
					s.finishFlush(stripe, nil)
				default:
					return
				}
			}
		case stripe := <-s.flushCh:
			sh := s.shard(stripe)
			sh.mu.Lock()
			var err error
			if buf := sh.dirty[stripe]; buf != nil && buf.queued {
				buf.queued = false
				err = s.flushStripeLocked(context.Background(), sh, stripe)
			}
			sh.mu.Unlock()
			s.finishFlush(stripe, err)
		}
	}
}

// finishFlush retires one in-flight pipeline entry, recording the first
// unreported failure for the next Flush/Sync/Close caller (a background
// flush has nobody to return an error to; the buffer itself stays
// dirty-and-stuck, so no acknowledged write is lost).
func (s *Store) finishFlush(stripe int, err error) {
	s.flushMu.Lock()
	s.flushInflight--
	if err != nil && s.asyncFlushErr == nil {
		s.asyncFlushErr = fmt.Errorf("store: background flush of stripe %d: %w", stripe, err)
	}
	s.flushIdle.Broadcast()
	s.flushMu.Unlock()
}

// flushBackpressure blocks a writer while the buffered-stripe count
// exceeds the MaxDirtyStripes bound and the pipeline still has flushes
// in flight that can bring it back down — without it, a writer
// outpacing the flush workers would buffer the whole volume in memory.
// Stuck buffers are exempt: nothing in the pipeline can drain them, so
// once only they remain over the bound the wait ends (as the
// synchronous path's "nothing to evict" case does).
func (s *Store) flushBackpressure(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.flushMu.Lock()
		s.flushIdle.Broadcast()
		s.flushMu.Unlock()
	})
	defer stop()
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	for s.dirtyCount.Load() > int64(s.maxDirty) && s.flushInflight > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.flushIdle.Wait()
	}
	return nil
}

// drainFlushPipeline blocks until no flush is queued or running. A
// cancelled ctx abandons the wait (the pipeline keeps draining in the
// background).
func (s *Store) drainFlushPipeline(ctx context.Context) error {
	if !s.asyncFlush() {
		return nil
	}
	stop := context.AfterFunc(ctx, func() {
		s.flushMu.Lock()
		s.flushIdle.Broadcast()
		s.flushMu.Unlock()
	})
	defer stop()
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	for s.flushInflight > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.flushIdle.Wait()
	}
	return nil
}

// takeAsyncFlushErr returns and clears the sticky background-flush
// error.
func (s *Store) takeAsyncFlushErr() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	err := s.asyncFlushErr
	s.asyncFlushErr = nil
	return err
}

// Sync is the store's durability barrier: it drains the flush pipeline,
// lands every buffered stripe, syncs every device offering the Syncer
// capability, and then — only then — checkpoints the journal,
// reclaiming the intents whose device writes the barrier provably
// covered (the pre-barrier Mark keeps a flush racing the barrier from
// having its intent reclaimed while its sectors are still volatile).
// When Sync returns nil, every write acknowledged before the call is
// on stable storage — for backends that have any (MemDevice, having
// none, syncs trivially).
func (s *Store) Sync(ctx context.Context) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.Flush(ctx); err != nil {
		return err
	}
	var mark journal.Mark
	if s.journal != nil {
		mark = s.journal.Mark()
	}
	if err := s.syncDevices(ctx); err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journal.Checkpoint(mark); err != nil {
			return err
		}
	}
	return nil
}

// syncDevices fsyncs every Syncer device. A wholly failed device is
// skipped — it holds nothing worth making durable.
func (s *Store) syncDevices(ctx context.Context) error {
	for i, d := range s.devs {
		if fd, ok := d.(FaultDevice); ok && fd.Failed() {
			continue
		}
		if err := SyncDevice(ctx, d); err != nil {
			return fmt.Errorf("store: syncing device %d: %w", i, err)
		}
	}
	return nil
}
