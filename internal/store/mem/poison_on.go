//go:build stairpoison

package mem

// Poisoning reports whether released buffers are overwritten with
// PoisonByte. Enabled by the stairpoison build tag; CI runs the store
// suite with -tags stairpoison -race so a use-after-release surfaces
// as deterministic data corruption instead of a heisenbug.
const Poisoning = true
