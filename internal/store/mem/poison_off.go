//go:build !stairpoison

package mem

// Poisoning reports whether released buffers are overwritten with
// PoisonByte. Off in normal builds; build with -tags stairpoison to
// turn it on.
const Poisoning = false
