package mem

import "testing"

func TestTierSizing(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 512},
		{512, 512},
		{513, 1024},
		{4096, 4096},
		{4097, 8192},
		{1 << 20, 1 << 20},
		{1<<20 + 1, 1 << 21},
		{1 << 26, 1 << 26},
	}
	p := NewPool(false)
	for _, c := range cases {
		b := p.Acquire(c.n)
		if len(b) != c.n {
			t.Fatalf("Acquire(%d): len=%d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Fatalf("Acquire(%d): cap=%d, want %d", c.n, cap(b), c.wantCap)
		}
		p.Release(b)
	}
}

func TestOversizeFallsBackToMake(t *testing.T) {
	p := NewPool(false)
	n := 1<<maxBits + 1
	b := p.Acquire(n)
	if len(b) != n {
		t.Fatalf("oversize Acquire: len=%d, want %d", len(b), n)
	}
	p.Release(b) // must not panic; dropped to GC
}

func TestReuseSameTier(t *testing.T) {
	p := NewPool(false)
	b1 := p.Acquire(1000)
	b1[0] = 0x5A
	addr := &b1[:cap(b1)][0]
	p.Release(b1)
	// Same goroutine, no GC in between: sync.Pool's per-P slot hands the
	// buffer straight back.
	b2 := p.Acquire(700)
	if &b2[:cap(b2)][0] != addr {
		t.Skip("pool did not reuse the buffer (GC or scheduling interference)")
	}
	if Poisoning && b2[0] != PoisonByte {
		t.Fatalf("reused buffer not poisoned: got %#x", b2[0])
	}
	p.Release(b2)
}

func TestForeignReleaseDropped(t *testing.T) {
	p := NewPool(false)
	// Not a tier capacity: must be silently dropped, not pooled.
	p.Release(make([]byte, 700))
	p.Release(nil)
	// Re-sliced so capacity is no longer the tier size.
	b := p.Acquire(1024)
	p.Release(b[10:20])
}

func TestOffPassThrough(t *testing.T) {
	p := NewPool(true)
	b := p.Acquire(1024)
	if len(b) != 1024 || cap(b) != 1024 {
		t.Fatalf("off-mode Acquire: len=%d cap=%d", len(b), cap(b))
	}
	b[0] = 0x77
	p.Release(b)
	if b[0] != 0x77 {
		t.Fatal("off-mode Release touched the buffer")
	}
	b2 := p.Acquire(1024)
	if &b2[0] == &b[0] {
		t.Fatal("off-mode pool reused a buffer")
	}
}

func TestZeroLength(t *testing.T) {
	p := NewPool(false)
	b := p.Acquire(0)
	if len(b) != 0 {
		t.Fatalf("Acquire(0): len=%d", len(b))
	}
	p.Release(b)
}
