// Package mem is the store's tiered, sync.Pool-backed buffer pool. It
// backs the zero-copy stripe memory design: stripe slabs, device
// scratch, network bodies and hedge buffers are acquired here, used,
// and released back, so the steady-state hot paths recycle a small
// working set instead of allocating per operation.
//
// Ownership contract:
//
//   - Acquire(n) transfers ownership of an n-byte buffer to the caller.
//     Contents are unspecified — callers must not assume zeroing.
//   - Release(buf) transfers ownership back. The caller must not touch
//     buf afterwards; under the stairpoison build tag the pool fills
//     released buffers with a poison byte so a use-after-release shows
//     up as checksum/parity garbage instead of silent corruption.
//   - Release matches buffers to tiers by capacity. Buffers that did
//     not come from the pool (or were re-sliced so their capacity no
//     longer is a tier size) are silently dropped to the GC — releasing
//     a foreign buffer is always safe, never wrong.
//   - A buffer handed to an operation that returned a context
//     cancellation error may still be referenced by an abandoned inner
//     operation (a coalesced batch, an in-flight HTTP body). Such
//     buffers must be dropped, not Released: the GC keeps them alive
//     for the straggler, whereas recycling would let it scribble over
//     an unrelated operation's data.
//
// Setting STAIR_POOL=off (or 0/false) disables pooling process-wide:
// Acquire falls back to plain make and Release becomes a no-op. This is
// the escape hatch for bisecting suspected buffer-lifetime bugs —
// every buffer becomes single-use, so use-after-release can no longer
// alias fresh data.
package mem

import (
	"math/bits"
	"os"
	"sync"
)

const (
	// Tier capacities are powers of two from 512 B to 64 MiB. Below the
	// floor the bookkeeping outweighs the allocation saved; above the
	// ceiling buffers are rare enough that the GC should own them.
	minBits  = 9
	maxBits  = 26
	numTiers = maxBits - minBits + 1
)

// PoisonByte is the fill pattern written over released buffers when the
// stairpoison build tag is active.
const PoisonByte = 0xDB

// Pool is a tiered buffer pool. The zero value is ready to use; the
// package-level Acquire/Release operate on a process-wide instance.
type Pool struct {
	off   bool
	tiers [numTiers]sync.Pool
	// hdrs recycles the *[]byte header objects between Get and Put.
	// Without it every Release heap-allocates a fresh 24-byte slice
	// header for sync.Pool's interface box — exactly the kind of
	// per-op allocation this package exists to remove.
	hdrs sync.Pool
}

// NewPool returns a pool; off selects the pass-through mode where
// Acquire always allocates and Release always drops.
func NewPool(off bool) *Pool { return &Pool{off: off} }

// tierFor returns the smallest tier holding n bytes, or -1 when n is
// out of the pooled range.
func tierFor(n int) int {
	if n <= 1<<minBits {
		return 0
	}
	t := bits.Len(uint(n-1)) - minBits // ceil(log2 n) - minBits
	if t >= numTiers {
		return -1
	}
	return t
}

// tierOf returns the tier whose capacity is exactly c, or -1.
func tierOf(c int) int {
	if c < 1<<minBits || c > 1<<maxBits || c&(c-1) != 0 {
		return -1
	}
	return bits.Len(uint(c)) - 1 - minBits
}

// Acquire returns a buffer of length n with unspecified contents. The
// caller owns it until Release.
func (p *Pool) Acquire(n int) []byte {
	if n < 0 {
		panic("mem: Acquire with negative length")
	}
	t := tierFor(n)
	if p.off || t < 0 {
		return make([]byte, n)
	}
	if v := p.tiers[t].Get(); v != nil {
		h := v.(*[]byte)
		b := *h
		*h = nil
		p.hdrs.Put(h)
		return b[:n]
	}
	return make([]byte, n, 1<<(minBits+t))
}

// Release returns a buffer obtained from Acquire. Buffers whose
// capacity is not a tier size (foreign or re-sliced) are dropped.
func (p *Pool) Release(buf []byte) {
	if p.off || buf == nil {
		return
	}
	t := tierOf(cap(buf))
	if t < 0 {
		return
	}
	b := buf[:cap(buf)]
	if Poisoning {
		for i := range b {
			b[i] = PoisonByte
		}
	}
	h, _ := p.hdrs.Get().(*[]byte)
	if h == nil {
		h = new([]byte)
	}
	*h = b
	p.tiers[t].Put(h)
}

// Off reports whether this pool is in pass-through mode.
func (p *Pool) Off() bool { return p.off }

// std is the process-wide pool, configured once from STAIR_POOL.
var std = NewPool(envOff())

func envOff() bool {
	switch os.Getenv("STAIR_POOL") {
	case "off", "0", "false", "no":
		return true
	}
	return false
}

// Acquire returns a buffer of length n from the process-wide pool.
func Acquire(n int) []byte { return std.Acquire(n) }

// Release returns a buffer to the process-wide pool.
func Release(buf []byte) { std.Release(buf) }

// Enabled reports whether the process-wide pool is active (STAIR_POOL
// not set to off).
func Enabled() bool { return !std.off }
