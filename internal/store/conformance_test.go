package store_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"stair/internal/store"
	"stair/internal/store/devtest"
)

// Every built-in backend presents the same vectored, context-aware
// contract; the devtest suite is that contract's executable form.

func TestDeviceConformanceMem(t *testing.T) {
	devtest.Run(t, func(t *testing.T, sectors, sectorSize int) store.FaultDevice {
		return store.NewMemDevice(sectors, sectorSize)
	})
}

func TestDeviceConformanceFile(t *testing.T) {
	devtest.Run(t, func(t *testing.T, sectors, sectorSize int) store.FaultDevice {
		d, err := store.OpenFileDevice(filepath.Join(t.TempDir(), "dev.img"), sectors, sectorSize)
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
}

func TestDeviceConformanceLatency(t *testing.T) {
	devtest.Run(t, func(t *testing.T, sectors, sectorSize int) store.FaultDevice {
		return store.NewLatencyDevice(store.NewMemDevice(sectors, sectorSize),
			200*time.Microsecond, 100*time.Microsecond)
	})
}

func TestDeviceConformancePerSector(t *testing.T) {
	devtest.Run(t, func(t *testing.T, sectors, sectorSize int) store.FaultDevice {
		return store.NewPerSectorDevice(store.NewMemDevice(sectors, sectorSize))
	})
}

func TestDeviceConformanceNet(t *testing.T) {
	devtest.Run(t, func(t *testing.T, sectors, sectorSize int) store.FaultDevice {
		srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(sectors, sectorSize)))
		t.Cleanup(srv.Close)
		d, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
}
