package store

import (
	"container/list"
	"sync"

	"stair/internal/core"
)

// defaultDegradedCache is the cache capacity (in stripes) when
// Config.DegradedCache is 0.
const defaultDegradedCache = 8

// stripeCache is a small LRU of reconstructed degraded stripes. Without
// it, every read of a lost block re-runs the upstairs decode for the
// whole stripe (§4.2–4.3) — r·n sector reads plus a matrix solve per
// block — even though the stripe stays degraded until a repair or a
// device replacement lands. With it, the first degraded read pays for
// the reconstruction and its neighbours on the same stripe are served
// from memory.
//
// Entries are immutable once inserted: readers copy sectors out under
// the cache mutex, and any event that changes a stripe's logical
// content or failure pattern (flush, completed repair, sector-error
// injection, device fail/replace) invalidates or purges instead of
// patching. All methods
// are safe on a nil receiver, which is how a disabled cache is
// represented.
type stripeCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used
	entries map[int]*list.Element
	hits    uint64
	// epoch counts invalidations; putAt rejects a reconstruction begun
	// before the latest one, so a decode in flight across a concurrent
	// purge (device fail/replace, which runs without shard locks)
	// cannot re-insert pre-fault state the purge meant to drop.
	epoch uint64
	// release returns a stripe's pooled slab once the cache drops it
	// (eviction, invalidation, a rejected or superseded putAt). putAt
	// takes ownership of every stripe handed to it, accepted or not.
	// Readers copy sectors out under mu, and release only runs under
	// mu, so a released slab can never be read through the cache.
	release func(*core.Stripe)
}

type cacheEntry struct {
	stripe int
	st     *core.Stripe
}

func newStripeCache(capacity int, release func(*core.Stripe)) *stripeCache {
	if capacity <= 0 {
		return nil
	}
	return &stripeCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[int]*list.Element, capacity),
		release: release,
	}
}

// blockInto copies the cached reconstruction's sector for cell into
// dst, reporting false on a miss (or a disabled cache).
func (c *stripeCache) blockInto(stripe int, cell core.Cell, dst []byte) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[stripe]
	if el == nil {
		return false
	}
	c.lru.MoveToFront(el)
	c.hits++
	copy(dst, el.Value.(*cacheEntry).st.Sector(cell.Col, cell.Row))
	return true
}

// snapshotEpoch returns the current invalidation epoch; capture it
// before starting a reconstruction and hand it to putAt.
func (c *stripeCache) snapshotEpoch() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// putAt inserts (or refreshes) a stripe's reconstruction, evicting the
// least recently used entry past capacity. putAt takes ownership of st:
// the caller must not touch it afterwards, whether the insert is
// accepted, superseding, or dropped. The insert is dropped when any
// invalidation happened since epoch was snapshotted — the
// reconstruction may predate a failure-pattern change.
func (c *stripeCache) putAt(stripe int, st *core.Stripe, epoch uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		c.releaseLocked(st)
		return
	}
	if el := c.entries[stripe]; el != nil {
		ent := el.Value.(*cacheEntry)
		c.releaseLocked(ent.st)
		ent.st = st
		c.lru.MoveToFront(el)
		return
	}
	c.entries[stripe] = c.lru.PushFront(&cacheEntry{stripe: stripe, st: st})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		ent := oldest.Value.(*cacheEntry)
		delete(c.entries, ent.stripe)
		c.releaseLocked(ent.st)
	}
}

// releaseLocked hands a dropped stripe's slab back to the pool.
func (c *stripeCache) releaseLocked(st *core.Stripe) {
	if c.release != nil {
		c.release(st)
	}
}

// invalidate drops one stripe's entry (its content or failure pattern
// changed). The caller holds the stripe's shard lock, which already
// serializes it against that stripe's decode-and-putAt, so the epoch is
// left alone and unrelated in-flight inserts survive.
func (c *stripeCache) invalidate(stripe int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(stripe)
}

// invalidateRacing drops one stripe's entry AND bumps the epoch — for
// callers that do not hold the stripe's shard lock (fault injection),
// where a concurrent decode could otherwise re-insert a reconstruction
// predating the change.
func (c *stripeCache) invalidateRacing(stripe int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.removeLocked(stripe)
}

func (c *stripeCache) removeLocked(stripe int) {
	if el := c.entries[stripe]; el != nil {
		c.lru.Remove(el)
		delete(c.entries, stripe)
		c.releaseLocked(el.Value.(*cacheEntry).st)
	}
}

// purge drops every entry — used when a device-level transition
// (fail, replace) changes the failure pattern of all stripes at once.
func (c *stripeCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	for el := c.lru.Front(); el != nil; el = el.Next() {
		c.releaseLocked(el.Value.(*cacheEntry).st)
	}
	c.lru.Init()
	clear(c.entries)
}

// size reports the current number of cached stripes.
func (c *stripeCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
