package store

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"stair/internal/core"
)

// bg is the context test helpers thread through the store API when the
// test is not exercising cancellation.
var bg = context.Background()

func testCode(t testing.TB, cfg core.Config) *core.Code {
	t.Helper()
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// blockData returns a deterministic, block-specific payload.
func blockData(b, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte((b*131 + i*31 + 7) % 251)
	}
	return out
}

func fillStore(t testing.TB, s *Store) {
	t.Helper()
	for b := 0; b < s.Blocks(); b++ {
		if err := s.WriteBlock(bg, b, blockData(b, s.BlockSize())); err != nil {
			t.Fatalf("write block %d: %v", b, err)
		}
	}
	if err := s.Flush(bg); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func checkAllBlocks(t testing.TB, s *Store) {
	t.Helper()
	for b := 0; b < s.Blocks(); b++ {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatalf("read block %d: %v", b, err)
		}
		if !bytes.Equal(got, blockData(b, s.BlockSize())) {
			t.Fatalf("block %d corrupt", b)
		}
	}
}

// checkStripesConsistent verifies every stripe's parity matches its data
// as stored on the devices.
func checkStripesConsistent(t testing.TB, s *Store) {
	t.Helper()
	for stripe := 0; stripe < s.stripes; stripe++ {
		sh := s.shard(stripe)
		sh.mu.Lock()
		st, lost, _, err := s.loadStripe(bg, stripe, false)
		sh.mu.Unlock()
		if err != nil {
			t.Fatalf("stripe %d: %v", stripe, err)
		}
		if len(lost) > 0 {
			t.Fatalf("stripe %d has %d lost cells", stripe, len(lost))
		}
		ok, err := s.code.Verify(st)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stripe %d parity inconsistent", stripe)
		}
	}
}

func TestRoundTripMem(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	checkAllBlocks(t, s)
	checkStripesConsistent(t, s)
	st := s.Stats()
	if st.Writes != uint64(s.Blocks()) {
		t.Errorf("Writes=%d, want %d", st.Writes, s.Blocks())
	}
	if st.DegradedReads != 0 {
		t.Errorf("DegradedReads=%d on a healthy store", st.DegradedReads)
	}
	// Sequential fill writes whole stripes: every flush is a full encode.
	if st.FullStripeFlushes != uint64(s.stripes) || st.SubStripeFlushes != 0 {
		t.Errorf("flushes full=%d sub=%d, want %d/0", st.FullStripeFlushes, st.SubStripeFlushes, s.stripes)
	}
}

func TestRoundTripFileDevices(t *testing.T) {
	code := testCode(t, core.Config{N: 5, R: 3, M: 1, E: []int{2}})
	dir := t.TempDir()
	open := func() *Store {
		devs := make([]Device, code.N())
		for i := range devs {
			d, err := OpenFileDevice(filepath.Join(dir, "dev"+string(rune('a'+i))+".img"), 4*code.R(), 64)
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = d
		}
		s, err := Open(Config{Code: code, SectorSize: 64, Stripes: 4, Devices: devs})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	fillStore(t, s)
	if err := s.InjectSectorError(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Faults and content persist across reopen.
	s = open()
	defer s.Close()
	if got := s.TotalBadSectors(); got != 1 {
		t.Fatalf("TotalBadSectors=%d after reopen, want 1", got)
	}
	checkAllBlocks(t, s)
	if st := s.Stats(); st.DegradedReads == 0 {
		t.Error("expected a degraded read through the persisted bad sector")
	}
}

// TestSubStripeFlush checks the §5.2 incremental-parity path: partial
// writes into an already-encoded stripe must leave parity consistent and
// must not go through the full-stripe encoder.
func TestSubStripeFlush(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	base := s.Stats()

	// Overwrite two blocks of stripe 1 with new content.
	for _, b := range []int{s.perStripe, s.perStripe + 5} {
		if err := s.WriteBlock(bg, b, blockData(b+1000, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SubStripeFlushes != base.SubStripeFlushes+1 {
		t.Errorf("SubStripeFlushes=%d, want %d", st.SubStripeFlushes, base.SubStripeFlushes+1)
	}
	if st.FullStripeFlushes != base.FullStripeFlushes {
		t.Errorf("FullStripeFlushes moved: %d → %d", base.FullStripeFlushes, st.FullStripeFlushes)
	}
	checkStripesConsistent(t, s)
	for b := 0; b < s.Blocks(); b++ {
		want := blockData(b, s.BlockSize())
		if b == s.perStripe || b == s.perStripe+5 {
			want = blockData(b+1000, s.BlockSize())
		}
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d wrong after sub-stripe update", b)
		}
	}
}

// TestReadYourWrites: buffered blocks are served from the stripe buffer
// before any flush.
func TestReadYourWrites(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := blockData(3, s.BlockSize())
	if err := s.WriteBlock(bg, 3, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBlock(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("buffered read returned stale data")
	}
	if st := s.Stats(); st.FullStripeFlushes+st.SubStripeFlushes != 0 {
		t.Fatal("read triggered a flush")
	}
}

// TestDirtyBound: exceeding MaxDirtyStripes evicts a buffered stripe.
func TestDirtyBound(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 6, MaxDirtyStripes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// One block in each of four stripes: the bound (2) forces evictions.
	for stripe := 0; stripe < 4; stripe++ {
		if err := s.WriteBlock(bg, stripe*s.perStripe, blockData(stripe, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	buffered := int(s.dirtyCount.Load())
	if buffered > 3 {
		t.Fatalf("%d stripes buffered, bound is 2 (+1 hot)", buffered)
	}
	if st := s.Stats(); st.SubStripeFlushes == 0 {
		t.Error("no eviction flush happened")
	}
}

func TestOpenValidation(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	for _, cfg := range []Config{
		{Code: nil, SectorSize: 128, Stripes: 1},
		{Code: code, SectorSize: 0, Stripes: 1},
		{Code: code, SectorSize: 128, Stripes: 0},
		{Code: code, SectorSize: 128, Stripes: 1, Devices: []Device{NewMemDevice(4, 128)}},
		{Code: code, SectorSize: 128, Stripes: 1, Workers: -1},
		{Code: code, SectorSize: 128, Stripes: 1, RepairWorkers: -1},
		{Code: code, SectorSize: 128, Stripes: 1, LockShards: -1},
	} {
		if _, err := Open(cfg); err == nil {
			t.Errorf("Open(%+v) accepted an invalid config", cfg)
		}
	}
	outside := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1}, Placement: core.Outside})
	if _, err := Open(Config{Code: outside, SectorSize: 128, Stripes: 1}); err == nil {
		t.Error("Open accepted Outside placement")
	}
}

func TestBlockRange(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ReadBlock(bg, s.Blocks()); err == nil {
		t.Error("read past the end accepted")
	}
	if err := s.WriteBlock(bg, -1, make([]byte, s.BlockSize())); err == nil {
		t.Error("negative block write accepted")
	}
	if err := s.WriteBlock(bg, 0, make([]byte, 7)); err == nil {
		t.Error("short write accepted")
	}
}

func TestClosedStore(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close: %v, want ErrClosed", err)
	}
	if _, err := s.ReadBlock(bg, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: %v, want ErrClosed", err)
	}
	if err := s.WriteBlock(bg, 0, make([]byte, s.BlockSize())); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v, want ErrClosed", err)
	}
	if _, err := s.Scrub(bg); !errors.Is(err, ErrClosed) {
		t.Errorf("scrub after close: %v, want ErrClosed", err)
	}
}
