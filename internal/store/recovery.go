package store

import (
	"context"
	"errors"
	"sort"

	"stair/internal/core"
	"stair/internal/store/journal"
)

// RecoveryReport summarises the journal replay Open performs when a
// journal with pending intents is mounted — the crash-recovery half of
// the write-ahead protocol in flush.go.
type RecoveryReport struct {
	// Intents counts the pending (uncommitted) intent records found.
	Intents int
	// Stripes counts the distinct stripes those intents cover — the
	// stripes that were mid-write-back when the previous process died.
	Stripes int
	// Consistent counts replayed stripes whose parity already matched
	// their data: the write-back either completed (just missing its
	// commit record) or never touched the devices.
	Consistent int
	// DataComplete counts replayed stripes where every intended block's
	// checksum matched the on-device content — the data phase of the
	// interrupted write-back had fully landed.
	DataComplete int
	// RolledForward counts stripes whose parity was re-encoded from the
	// on-device data and rewritten (including healing any latent sector
	// losses found in passing). On-device data is authoritative: a
	// write-back that died between its data and parity phases converges
	// on the new content, one that died mid-data on a block-level mix —
	// either way the stripe ends parity-consistent.
	RolledForward int
	// Unrecoverable counts intent-marked stripes whose damage fell
	// outside the code's coverage; they are left marked, and the
	// journal is retained so a later mount (after device replacement)
	// retries the replay.
	Unrecoverable int
}

// Replayed reports whether the replay had anything to do.
func (r RecoveryReport) Replayed() bool { return r.Intents > 0 }

// Recovery returns the report of the journal replay this store's Open
// performed (the zero report when the journal was empty or absent).
func (s *Store) Recovery() RecoveryReport { return s.recovery }

// recoverJournal replays pending intents: for every intent-marked
// stripe, re-verify parity against data and roll forward if they
// disagree. Runs once, from Open, before the store accepts traffic.
// Replay is idempotent — a crash during recovery leaves the intents
// pending and the next open simply re-runs it — so the journal is
// truncated only after the roll-forwards are durably on the devices.
func (s *Store) recoverJournal() error {
	pending := s.journal.Pending()
	if len(pending) == 0 {
		return nil
	}
	rep := RecoveryReport{Intents: len(pending)}
	// The newest intent per stripe wins: its ords/checksums describe
	// the last write-back attempt. An intent naming a stripe this
	// volume does not have (a stale or foreign journal mounted by
	// mistake, or a volume re-created smaller) cannot be re-verified;
	// it counts as unrecoverable so the journal is retained rather
	// than silently erased.
	latest := map[int]journal.Record{}
	outOfRange := map[int]bool{}
	for _, rec := range pending {
		if rec.Stripe >= 0 && rec.Stripe < s.stripes {
			latest[rec.Stripe] = rec
		} else {
			outOfRange[rec.Stripe] = true
		}
	}
	stripes := make([]int, 0, len(latest))
	for stripe := range latest {
		stripes = append(stripes, stripe)
	}
	sort.Ints(stripes)
	rep.Stripes = len(stripes) + len(outOfRange)
	rep.Unrecoverable += len(outOfRange)
	ctx := context.Background()
	for _, stripe := range stripes {
		sh := s.shard(stripe)
		sh.mu.Lock()
		s.recoverStripeLocked(ctx, sh, stripe, latest[stripe], &rep)
		sh.mu.Unlock()
	}
	s.recovery = rep
	if rep.Unrecoverable > 0 {
		// Keep the intents: these stripes could not be re-verified, and
		// a mount after the missing devices are replaced should retry.
		return nil
	}
	if err := s.syncDevices(ctx); err != nil {
		return err
	}
	return s.journal.Truncate()
}

// recoverStripeLocked replays one intent; the caller holds the stripe's
// shard mutex.
//
// The soundness rules differ by what was lost. Data cells on disk are
// individually intact (each sector holds its old or new content whole),
// so re-encoding parity *from data* is always sound. Reconstructing a
// lost cell *through the parity relations* is not: the crash may have
// broken exactly those relations, and a decode over a new-data/old-
// parity mix solves contradictory equations into fabricated content.
// A repair is therefore accepted only when the repaired stripe verifies
// in full — Verify passing means the stored stripe was consistent, which
// is the precondition that makes reconstruction sound. Anything else is
// reported unrecoverable (and the journal retained) rather than
// persisted as data.
func (s *Store) recoverStripeLocked(ctx context.Context, sh *lockShard, stripe int, rec journal.Record, rep *RecoveryReport) {
	// The load is deliberately raw (verify=false): right after a crash a
	// sidecar checksum can legitimately lag the data it covers — the
	// kill window between the data/parity writes and the sidecar write.
	// Verifying here would misread that stale record as silent
	// corruption and "repair" good data; instead, every successful
	// replay outcome below re-stages fresh records for the whole stripe,
	// resolving the lag from the journal.
	st, lost, _, err := s.loadStripe(ctx, stripe, false)
	if err != nil {
		rep.Unrecoverable++
		return
	}
	// Replay runs before the store accepts traffic, under a background
	// context, but the guard costs nothing and keeps the rule uniform.
	defer func() { s.releaseStripeUnlessCancelled(ctx, st) }()
	var lostData []core.Cell
	for _, cell := range lost {
		if s.isDataCell[cell] {
			lostData = append(lostData, cell)
		}
	}
	rollForward := func() {
		// Unlike a foreground flush — where a dropped device write just
		// leaves the stripe degraded for repair to heal — a roll-forward
		// that does not fully land must NOT count as recovered: the
		// journal would be truncated over a stripe still inconsistent on
		// disk. Cells on wholly failed devices are exempt (nothing can
		// land there and the device's state is loudly visible); any
		// other write failure keeps the intent pending for the next
		// mount and marks the stripe so degraded reads refuse it.
		all := make([]core.Cell, 0, len(s.sortedDataCells)+len(s.parityCells))
		all = append(append(all, s.sortedDataCells...), s.parityCells...)
		sortCells(all)
		_, failed, err := s.writeStripeCells(ctx, stripe, st, s.writableLost(all))
		if err != nil || failed > 0 {
			s.markUnrecoverableLocked(sh, stripe)
			rep.Unrecoverable++
			return
		}
		rep.RolledForward++
		s.c.recoveredStripes.Add(1)
		s.clearUnrecoverableLocked(sh, stripe)
		s.cache.invalidate(stripe)
		s.restageStripeMeta(ctx, stripe, st, rec)
	}
	if len(lostData) > 0 {
		// Lost data can only come back through the (possibly broken)
		// parity relations: repair, then accept only a fully verified
		// result.
		if err := s.code.RepairParallel(st, lost, s.workers); err != nil {
			if errors.Is(err, ErrUnrecoverable) {
				s.markUnrecoverableLocked(sh, stripe)
			}
			rep.Unrecoverable++
			return
		}
		if ok, err := s.code.Verify(st); err != nil || !ok {
			s.markUnrecoverableLocked(sh, stripe)
			rep.Unrecoverable++
			return
		}
		if s.intentDataLanded(st, rec) {
			rep.DataComplete++
		}
		rollForward() // heals the lost sectors in passing
		return
	}
	if s.intentDataLanded(st, rec) {
		rep.DataComplete++
	}
	if len(lost) == 0 {
		ok, err := s.code.Verify(st)
		if err != nil {
			rep.Unrecoverable++
			return
		}
		if ok {
			rep.Consistent++
			// The stripe's content is proven good; its sidecar records
			// may still predate the final (landed) writes — e.g. a crash
			// right after the parity phase. Refresh them so the first
			// verified read after reopen sees no false mismatch.
			s.restageStripeMeta(ctx, stripe, st, rec)
			return
		}
	}
	// Parity sectors lost, or parity disagreeing with data: on-device
	// data is authoritative, so re-encode every parity cell from it and
	// rewrite the stripe.
	if err := s.code.EncodeParallel(st, core.MethodAuto, s.workers); err != nil {
		rep.Unrecoverable++
		return
	}
	rollForward()
}

// restageStripeMeta re-stages fresh sidecar records for every cell of
// a stripe that replay just proved (or made) consistent, and persists
// them. Blocks the intent covered whose content provably landed reuse
// the digest the V2 intent carried; everything else is recomputed from
// the stripe's (now authoritative) content. Cells on wholly failed
// devices are skipped — their records refresh on rebuild, like their
// data.
func (s *Store) restageStripeMeta(ctx context.Context, stripe int, st *core.Stripe, rec journal.Record) {
	if s.integ == nil {
		return
	}
	fromIntent := map[core.Cell]uint32{}
	if rec.ISums != nil {
		for i, ord := range rec.Ords {
			if ord < 0 || ord >= s.perStripe {
				continue
			}
			cell := s.dataCells[ord]
			if journal.Checksum(st.Sector(cell.Col, cell.Row)) == rec.Sums[i] {
				fromIntent[cell] = rec.ISums[i]
			}
		}
	}
	for col := 0; col < s.n; col++ {
		if fd, ok := s.devs[col].(FaultDevice); ok && fd.Failed() {
			continue
		}
		for row := 0; row < s.r; row++ {
			sec := s.devSector(stripe, row)
			if isum, ok := fromIntent[core.Cell{Col: col, Row: row}]; ok {
				s.integ.UpdateSum(col, sec, isum)
			} else {
				s.integ.Update(col, sec, st.Sector(col, row))
			}
		}
	}
	_ = s.flushStripeMeta(ctx, stripe, s.allCols())
}

// intentDataLanded reports whether every block the intent meant to
// write matches the stripe's current content — i.e. the interrupted
// write-back's data phase had fully completed.
func (s *Store) intentDataLanded(st *core.Stripe, rec journal.Record) bool {
	if len(rec.Ords) == 0 {
		return false
	}
	for i, ord := range rec.Ords {
		if ord < 0 || ord >= s.perStripe {
			return false
		}
		cell := s.dataCells[ord]
		if journal.Checksum(st.Sector(cell.Col, cell.Row)) != rec.Sums[i] {
			return false
		}
	}
	return true
}
