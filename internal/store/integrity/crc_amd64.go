//go:build amd64 && !purego

package integrity

import (
	"hash/crc32"
	"os"
)

// Wide CRC32C via VPCLMULQDQ folding. The stdlib's castagnoli path
// (3-way interleaved CRC32 instructions) tops out around one 8-byte
// CRC32Q per cycle; on AVX-512 parts a single ZMM carry-less multiply
// folds 64 message bytes per two instructions, roughly tripling
// digest throughput. That matters here because the integrity layer
// CRCs every sector on the read path — against an in-memory device
// the digest is a third of the whole read cost.
//
// Scheme (the standard reflected-domain folding): 256 message bytes
// live in four ZMM accumulators; each loop iteration multiplies every
// 128-bit lane by x^(2048+64)/x^2048 mod P (low/high qword) and XORs
// in the next 256 bytes — shifting each lane's polynomial
// contribution forward over the data consumed. Four independent
// accumulators keep the loop bound by the carry-less multiplier's
// throughput, not one fold chain's latency. After the loop the
// accumulators merge into one ZMM (per-ZMM distance constants), a
// mop-up loop folds any remaining 64-byte blocks, the four lanes fold
// into one 128-bit residual (48/32/16-byte distances), and the
// residual block — whose raw CRC from zero equals the raw CRC of
// everything folded — is finished on the stdlib's CRC32Q path, which
// also absorbs the unaligned tail. No Barrett reduction in assembly,
// and both paths agree bit-for-bit by construction
// (TestCRCFoldConstants re-derives every constant; FuzzCRCUpdate
// differentially guards the whole function).
//
// The fold constant for a qword sitting n bits before its target is
// bitrev32(x^(n-32) mod P) << 1: the reflected-domain form of
// multiplying by x^n, with the CRC's x^32 pre-multiplication folded
// in and the shift compensating CLMUL's 127-bit product.

// crcFoldVPCLMUL folds p[0:n] (n a multiple of 64, n >= 256) with
// initial raw CRC state init into a 16-byte residual block written to
// out. Defined in crc_amd64.s.
//
//go:noescape
func crcFoldVPCLMUL(p *byte, n int, init uint32, out *[16]byte)

// crcCpuid and crcXgetbv are defined in crc_amd64.s; the stdlib's
// feature flags live in internal packages this module cannot import.
func crcCpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func crcXgetbv() (eax, edx uint32)

var haveVPCLMUL = func() bool {
	// Escape hatch mirroring STAIR_GF_KERNEL: force the stdlib path so
	// the two implementations can be A/B'd on real hardware.
	if os.Getenv("STAIR_CRC_KERNEL") == "portable" {
		return false
	}
	const (
		cpuidPCLMUL     = 1 << 1
		cpuidOSXSAVE    = 1 << 27
		cpuidAVX        = 1 << 28
		cpuidAVX512F    = 1 << 16 // leaf 7 EBX
		cpuidVPCLMULQDQ = 1 << 10 // leaf 7 ECX
	)
	_, _, ecx1, _ := crcCpuid(1, 0)
	if ecx1&(cpuidPCLMUL|cpuidOSXSAVE|cpuidAVX) != cpuidPCLMUL|cpuidOSXSAVE|cpuidAVX {
		return false
	}
	// The OS must have enabled XMM+YMM and opmask+ZMM state in XCR0.
	if xcr0, _ := crcXgetbv(); xcr0&0xe6 != 0xe6 {
		return false
	}
	_, ebx7, ecx7, _ := crcCpuid(7, 0)
	return ebx7&cpuidAVX512F != 0 && ecx7&cpuidVPCLMULQDQ != 0
}()

// crcFoldThreshold is the payload size below which the stdlib path
// wins: the kernel's fixed costs (ZMM warm-up, two merge stages,
// residual handoff) only amortise on larger buffers. It also keeps
// n&^63 >= 256, the assembly's minimum (the four accumulators load
// 256 bytes up front).
const crcFoldThreshold = 1024

func crcUpdate(crc uint32, p []byte) uint32 {
	if !haveVPCLMUL || len(p) < crcFoldThreshold {
		return crc32.Update(crc, castagnoli, p)
	}
	n := len(p) &^ 63
	var res [16]byte
	crcFoldVPCLMUL(&p[0], n, ^crc, &res)
	// The residual block carries the entire folded prefix: continuing
	// the CRC over it (from a fresh state) and then the ragged tail
	// yields the CRC of all of p.
	mid := crc32.Update(^uint32(0), castagnoli, res[:])
	return crc32.Update(mid, castagnoli, p[n:])
}

func crcKernelName() string {
	if haveVPCLMUL {
		return "vpclmulqdq"
	}
	return "stdlib"
}
