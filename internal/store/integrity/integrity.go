// Package integrity implements the per-sector end-to-end checksum
// layer: a self-describing 16-byte record per data sector, persisted
// in a per-device sidecar region, that turns silent corruption into a
// *located* erasure the STAIR decoder can repair.
//
// Each record stores a CRC32C over the sector's payload salted with
// the sector's device address (column, sector index) and the volume
// epoch. The salt is what widens coverage beyond bit rot: a
// misdirected write lands whole-sector-valid data at the wrong
// address, so an address-salted digest fails; a stale write (old data
// resurfacing after a lost write) carries an old epoch's digest, so
// an epoch-salted digest fails. The record itself carries a second
// CRC over its own header so a torn or rotted sidecar sector can
// never produce a false verdict — an unparseable record is "absent"
// (no claim), not a mismatch.
package integrity

import (
	"encoding/binary"
	"hash/crc32"
)

// RecordSize is the on-disk size of one checksum record. A sector
// holds SectorSize/RecordSize records, so sector sizes must be
// multiples of 16 (every real sector size is).
const RecordSize = 16

// recordVersion is the current record format version.
const recordVersion = 1

// flagWritten marks a record as covering real payload. A record with
// the flag clear (or an invalid record) makes no claim about the
// sector's content.
const flagWritten = 1

// castagnoli is the CRC32C table (hardware-accelerated on amd64 and
// arm64 via the stdlib's SSE4.2 / ARMv8 CRC paths).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded checksum record.
//
// On-disk layout (little-endian):
//
//	[0]     version
//	[1]     flags (bit0 = written)
//	[2:4]   reserved, zero
//	[4:8]   epoch
//	[8:12]  salted CRC32C of the sector payload
//	[12:16] CRC32C of bytes [0:12] (the record's self-check)
type Record struct {
	Epoch uint32
	Sum   uint32
}

// Sum computes the salted payload digest for a sector: CRC32C over a
// 16-byte salt (epoch, column, device sector index) followed by the
// payload. Identical payloads at different addresses — or written
// under different epochs — produce different digests.
func Sum(epoch uint32, col, sector int, data []byte) uint32 {
	var salt [16]byte
	binary.LittleEndian.PutUint32(salt[0:4], epoch)
	binary.LittleEndian.PutUint32(salt[4:8], uint32(col))
	binary.LittleEndian.PutUint64(salt[8:16], uint64(sector))
	crc := crc32.Update(0, castagnoli, salt[:])
	return crcUpdate(crc, data)
}

// KernelName reports which payload-digest implementation Sum runs
// ("vpclmulqdq" for the AVX-512 folding kernel, "stdlib" otherwise).
func KernelName() string { return crcKernelName() }

// Encode serialises rec into dst (which must be at least RecordSize
// bytes) with the written flag set and a valid self-check.
func Encode(dst []byte, rec Record) {
	_ = dst[RecordSize-1]
	dst[0] = recordVersion
	dst[1] = flagWritten
	dst[2], dst[3] = 0, 0
	binary.LittleEndian.PutUint32(dst[4:8], rec.Epoch)
	binary.LittleEndian.PutUint32(dst[8:12], rec.Sum)
	binary.LittleEndian.PutUint32(dst[12:16], crc32.Checksum(dst[0:12], castagnoli))
}

// Decode parses one record from raw. ok is false when the record
// makes no claim: wrong length, unknown version, written flag clear,
// or a failed self-check (torn/rotted sidecar bytes). A never-written
// (all-zero) region decodes as not-ok everywhere, so fresh devices
// verify nothing rather than everything.
func Decode(raw []byte) (rec Record, ok bool) {
	if len(raw) < RecordSize {
		return Record{}, false
	}
	if crc32.Checksum(raw[0:12], castagnoli) != binary.LittleEndian.Uint32(raw[12:16]) {
		return Record{}, false
	}
	if raw[0] != recordVersion || raw[1]&flagWritten == 0 || raw[2] != 0 || raw[3] != 0 {
		return Record{}, false
	}
	return Record{
		Epoch: binary.LittleEndian.Uint32(raw[4:8]),
		Sum:   binary.LittleEndian.Uint32(raw[8:12]),
	}, true
}

// MetaSectors returns how many sidecar sectors a device needs to hold
// one record per data sector: ceil(dataSectors / recordsPerSector).
func MetaSectors(dataSectors, sectorSize int) int {
	per := sectorSize / RecordSize
	if per <= 0 {
		return 0
	}
	return (dataSectors + per - 1) / per
}
