package integrity

import (
	"context"
	"fmt"
	"sync"
)

// Verdict is the outcome of verifying one sector against its record.
type Verdict int

const (
	// OK: a valid record exists and the payload matches it.
	OK Verdict = iota
	// Mismatch: a valid record exists and the payload does NOT match —
	// the sector is silently corrupt (or misdirected, or stale) and
	// should be treated as a located erasure.
	Mismatch
	// Absent: no valid record covers the sector (never written, or the
	// sidecar itself is torn/rotted). The sector is unverifiable; read
	// paths treat it as OK and the scrubber refreshes the record.
	Absent
)

// Manager holds the in-memory image of every device's sidecar region
// and mediates verify/update/flush. The whole region is small — 16
// bytes per data sector, 1/256th of the data at 4 KiB sectors — so it
// is cached in full and written back in covering sector ranges
// through the same vectored WriteSectors path as data.
type Manager struct {
	cols        int
	dataSectors int
	sectorSize  int
	perSector   int
	metaSectors int
	epoch       uint32

	// regions[col] is the col's full sidecar image, metaSectors*
	// sectorSize bytes. mu[col] guards it for concurrent record
	// read/write; flushMu[col] serialises snapshot+device-write so two
	// stripe flushes sharing a meta sector converge (the later write's
	// snapshot, taken under the flush lock, includes the earlier
	// flush's staged records).
	regions [][]byte
	mu      []sync.RWMutex
	flushMu []sync.Mutex

	// states/sums[col] cache each sector's record pre-decoded, so the
	// read path's Verify is a flag check plus a digest compare instead
	// of re-parsing (and re-self-checksumming) the 16-byte record on
	// every sector read. The byte image in regions stays the flush
	// source of truth; the cache is rebuilt on InstallRegion and kept
	// in step by UpdateSum, both under mu[col].
	states [][]byte // one of stateAbsent/stateStale/stateValid
	sums   [][]uint32
}

// Pre-decoded record states. A structurally valid record carrying a
// different epoch is a claim about some other volume incarnation: it
// must read as Mismatch (the sector cannot be vouched for), never as
// Absent, so it gets its own state.
const (
	stateAbsent = iota // no valid record (never written, or sidecar rot)
	stateStale         // valid record, wrong epoch
	stateValid         // valid record for this epoch; sums holds the digest
)

// NewManager builds a manager for cols devices of dataSectors data
// sectors each. epoch is salted into every digest; bump it when the
// volume's logical identity changes.
func NewManager(cols, dataSectors, sectorSize int, epoch uint32) (*Manager, error) {
	if sectorSize < RecordSize || sectorSize%RecordSize != 0 {
		return nil, fmt.Errorf("integrity: sector size %d is not a multiple of the %d-byte record", sectorSize, RecordSize)
	}
	m := &Manager{
		cols:        cols,
		dataSectors: dataSectors,
		sectorSize:  sectorSize,
		perSector:   sectorSize / RecordSize,
		metaSectors: MetaSectors(dataSectors, sectorSize),
		epoch:       epoch,
		regions:     make([][]byte, cols),
		mu:          make([]sync.RWMutex, cols),
		flushMu:     make([]sync.Mutex, cols),
	}
	m.states = make([][]byte, cols)
	m.sums = make([][]uint32, cols)
	for col := range m.regions {
		m.regions[col] = make([]byte, m.metaSectors*sectorSize)
		m.states[col] = make([]byte, dataSectors)
		m.sums[col] = make([]uint32, dataSectors)
	}
	return m, nil
}

// MetaSectors is the sidecar region's size in sectors (per device).
func (m *Manager) MetaSectors() int { return m.metaSectors }

// Epoch is the volume epoch salted into every digest.
func (m *Manager) Epoch() uint32 { return m.epoch }

// InstallRegion replaces col's cached sidecar image with raw, as read
// from the device at open. nil (or short) raw zero-fills the
// remainder: unreadable sidecar sectors decode as Absent, never as a
// false claim.
func (m *Manager) InstallRegion(col int, raw []byte) {
	m.mu[col].Lock()
	defer m.mu[col].Unlock()
	region := m.regions[col]
	n := copy(region, raw)
	for i := n; i < len(region); i++ {
		region[i] = 0
	}
	// Decode every record once, up front: per-sector reads then verify
	// against the cache without re-parsing. One pass of 12-byte CRCs
	// per mount is noise next to reading the region off the device.
	for sector := 0; sector < m.dataSectors; sector++ {
		m.recacheLocked(col, sector)
	}
}

// recacheLocked re-decodes col/sector's record from the region image
// into the pre-decoded cache. Caller holds mu[col].
func (m *Manager) recacheLocked(col, sector int) {
	off := m.offset(sector)
	rec, ok := Decode(m.regions[col][off : off+RecordSize])
	switch {
	case !ok:
		m.states[col][sector] = stateAbsent
	case rec.Epoch != m.epoch:
		m.states[col][sector] = stateStale
	default:
		m.states[col][sector] = stateValid
		m.sums[col][sector] = rec.Sum
	}
}

// offset returns the byte offset of sector's record within col's
// region.
func (m *Manager) offset(sector int) int {
	return (sector/m.perSector)*m.sectorSize + (sector%m.perSector)*RecordSize
}

// Verify checks data against col/sector's cached record.
func (m *Manager) Verify(col, sector int, data []byte) Verdict {
	m.mu[col].RLock()
	state := m.states[col][sector]
	sum := m.sums[col][sector]
	m.mu[col].RUnlock()
	switch state {
	case stateAbsent:
		return Absent
	case stateStale:
		return Mismatch
	}
	if sum != Sum(m.epoch, col, sector, data) {
		return Mismatch
	}
	return OK
}

// Has reports whether a valid record covers col/sector.
func (m *Manager) Has(col, sector int) bool {
	m.mu[col].RLock()
	state := m.states[col][sector]
	m.mu[col].RUnlock()
	return state != stateAbsent
}

// Update stages a fresh record for col/sector covering data. The
// record lives in the cached region until a FlushRange writes the
// covering sidecar sectors back to the device.
func (m *Manager) Update(col, sector int, data []byte) {
	m.UpdateSum(col, sector, Sum(m.epoch, col, sector, data))
}

// UpdateSum stages a record from an already-computed digest (e.g. one
// carried in a journal intent).
func (m *Manager) UpdateSum(col, sector int, sum uint32) {
	off := m.offset(sector)
	m.mu[col].Lock()
	Encode(m.regions[col][off:off+RecordSize], Record{Epoch: m.epoch, Sum: sum})
	m.states[col][sector] = stateValid
	m.sums[col][sector] = sum
	m.mu[col].Unlock()
}

// FlushRange writes back the sidecar sectors covering data sectors
// [start, start+count) of col. write receives the device-relative
// meta sector index range start (the caller adds the data-region
// size) and a snapshot of the covering region bytes; it performs the
// actual vectored device write. The per-col flush lock guarantees
// that when two flushes race on a shared meta sector, each write's
// snapshot includes everything staged before it — the last writer
// persists a superset.
func (m *Manager) FlushRange(ctx context.Context, col, start, count int, write func(ctx context.Context, metaStart int, bufs [][]byte) error) error {
	if count <= 0 {
		return nil
	}
	first := start / m.perSector
	last := (start + count - 1) / m.perSector
	n := last - first + 1

	m.flushMu[col].Lock()
	defer m.flushMu[col].Unlock()

	snap := make([]byte, n*m.sectorSize)
	m.mu[col].RLock()
	copy(snap, m.regions[col][first*m.sectorSize:(last+1)*m.sectorSize])
	m.mu[col].RUnlock()

	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = snap[i*m.sectorSize : (i+1)*m.sectorSize]
	}
	return write(ctx, first, bufs)
}

// Region returns a copy of col's full cached sidecar image (for a
// whole-region writeback, e.g. after rebuilding a replaced device).
func (m *Manager) Region(col int) []byte {
	m.mu[col].Lock()
	defer m.mu[col].Unlock()
	out := make([]byte, len(m.regions[col]))
	copy(out, m.regions[col])
	return out
}
