//go:build amd64 && !purego

#include "textflag.h"

// CRC32C (Castagnoli) fold constants, K(n) = bitrev32(x^(n-32) mod P)
// << 1 for P = 0x11EDC6F41 — see crc_amd64.go for the derivation and
// TestCRCFoldConstants for the re-derivation that pins these values.
//
//	+0x00: K(576),  K(512)   fold one ZMM by 64 bytes (mop-up loop, Z-merge)
//	+0x10: K(448),  K(384)   merge lane 0 (48 bytes before the residual)
//	+0x20: K(320),  K(256)   merge lane 1 (32 bytes)
//	+0x30: K(192),  K(128)   merge lane 2 (16 bytes)
//	+0x40: K(2112), K(2048)  fold one ZMM by 256 bytes (main loop)
//	+0x50: K(1600), K(1536)  merge accumulator 0 (192 bytes)
//	+0x60: K(1088), K(1024)  merge accumulator 1 (128 bytes)
DATA crcfoldk<>+0x00(SB)/8, $0x00000000740eef02
DATA crcfoldk<>+0x08(SB)/8, $0x000000009e4addf8
DATA crcfoldk<>+0x10(SB)/8, $0x000000001c291d04
DATA crcfoldk<>+0x18(SB)/8, $0x00000001d82c63da
DATA crcfoldk<>+0x20(SB)/8, $0x00000001384aa63a
DATA crcfoldk<>+0x28(SB)/8, $0x00000000ba4fc28e
DATA crcfoldk<>+0x30(SB)/8, $0x00000000f20c0dfe
DATA crcfoldk<>+0x38(SB)/8, $0x000000014cd00bd6
DATA crcfoldk<>+0x40(SB)/8, $0x00000000dcb17aa4
DATA crcfoldk<>+0x48(SB)/8, $0x00000000b9e02b86
DATA crcfoldk<>+0x50(SB)/8, $0x00000000a87ab8a8
DATA crcfoldk<>+0x58(SB)/8, $0x00000000ab7aff2a
DATA crcfoldk<>+0x60(SB)/8, $0x000000006992cea2
DATA crcfoldk<>+0x68(SB)/8, $0x000000000d3b6092
GLOBL crcfoldk<>(SB), RODATA|NOPTR, $112

// func crcFoldVPCLMUL(p *byte, n int, init uint32, out *[16]byte)
//
// Folds p[0:n] (n a multiple of 64, n >= 256) into the 16-byte
// residual at out. init is the raw (already inverted) CRC state,
// XORed into the first 4 message bytes. Four independent ZMM
// accumulators keep the main loop throughput-bound on the carry-less
// multiplier instead of latency-bound on one fold chain.
TEXT ·crcFoldVPCLMUL(SB), NOSPLIT, $0-32
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	MOVL init+16(FP), AX
	MOVQ out+24(FP), DI

	// Accumulators Z10..Z13 = first 256 bytes, with the incoming CRC
	// state XORed into the low dword of the very first lane.
	VMOVDQU64 (SI), Z10
	VMOVDQU64 64(SI), Z11
	VMOVDQU64 128(SI), Z12
	VMOVDQU64 192(SI), Z13
	VMOVD     AX, X1
	VPXORQ    Z1, Z10, Z10

	VBROADCASTI32X4 crcfoldk<>+0x40(SB), Z8 // [K(2112), K(2048)] per lane
	VBROADCASTI32X4 crcfoldk<>+0x00(SB), Z9 // [K(576),  K(512)]  per lane

	LEAQ (SI)(CX*1), DX // end of input
	ADDQ $256, SI
	LEAQ -256(DX), BX
	CMPQ SI, BX
	JA   merge4

loop256:
	// Each accumulator independently: Zk = Zk.lo×K(2112) ^
	// Zk.hi×K(2048) ^ next block — four chains the out-of-order core
	// overlaps.
	VPCLMULQDQ $0x00, Z8, Z10, Z0
	VPCLMULQDQ $0x11, Z8, Z10, Z10
	VPXORQ     Z0, Z10, Z10
	VPXORQ     (SI), Z10, Z10

	VPCLMULQDQ $0x00, Z8, Z11, Z1
	VPCLMULQDQ $0x11, Z8, Z11, Z11
	VPXORQ     Z1, Z11, Z11
	VPXORQ     64(SI), Z11, Z11

	VPCLMULQDQ $0x00, Z8, Z12, Z2
	VPCLMULQDQ $0x11, Z8, Z12, Z12
	VPXORQ     Z2, Z12, Z12
	VPXORQ     128(SI), Z12, Z12

	VPCLMULQDQ $0x00, Z8, Z13, Z3
	VPCLMULQDQ $0x11, Z8, Z13, Z13
	VPXORQ     Z3, Z13, Z13
	VPXORQ     192(SI), Z13, Z13

	ADDQ $256, SI
	CMPQ SI, BX
	JBE  loop256

merge4:
	// Fold the four accumulators into Z13, each by its distance to the
	// last-consumed 64-byte block.
	VBROADCASTI32X4 crcfoldk<>+0x50(SB), Z0
	VPCLMULQDQ      $0x00, Z0, Z10, Z1
	VPCLMULQDQ      $0x11, Z0, Z10, Z2
	VPXORQ          Z1, Z13, Z13
	VPXORQ          Z2, Z13, Z13

	VBROADCASTI32X4 crcfoldk<>+0x60(SB), Z0
	VPCLMULQDQ      $0x00, Z0, Z11, Z1
	VPCLMULQDQ      $0x11, Z0, Z11, Z2
	VPXORQ          Z1, Z13, Z13
	VPXORQ          Z2, Z13, Z13

	VPCLMULQDQ $0x00, Z9, Z12, Z1
	VPCLMULQDQ $0x11, Z9, Z12, Z2
	VPXORQ     Z1, Z13, Z13
	VPXORQ     Z2, Z13, Z13

	// Mop up remaining whole 64-byte blocks (n % 256) one ZMM at a
	// time.
	LEAQ -64(DX), BX
	CMPQ SI, BX
	JA   lanes

loop64:
	VPCLMULQDQ $0x00, Z9, Z13, Z0
	VPCLMULQDQ $0x11, Z9, Z13, Z13
	VPXORQ     Z0, Z13, Z13
	VPXORQ     (SI), Z13, Z13
	ADDQ       $64, SI
	CMPQ       SI, BX
	JBE        loop64

lanes:
	// Fold Z13's four lanes into lane 3 (the last 16 bytes), each by
	// its distance to the residual block.
	VEXTRACTI32X4 $1, Z13, X5
	VEXTRACTI32X4 $2, Z13, X6
	VEXTRACTI32X4 $3, Z13, X7

	VMOVDQU    crcfoldk<>+0x10(SB), X2
	VPCLMULQDQ $0x00, X2, X13, X3
	VPCLMULQDQ $0x11, X2, X13, X4
	VPXOR      X3, X7, X7
	VPXOR      X4, X7, X7

	VMOVDQU    crcfoldk<>+0x20(SB), X2
	VPCLMULQDQ $0x00, X2, X5, X3
	VPCLMULQDQ $0x11, X2, X5, X4
	VPXOR      X3, X7, X7
	VPXOR      X4, X7, X7

	VMOVDQU    crcfoldk<>+0x30(SB), X2
	VPCLMULQDQ $0x00, X2, X6, X3
	VPCLMULQDQ $0x11, X2, X6, X4
	VPXOR      X3, X7, X7
	VPXOR      X4, X7, X7

	VMOVDQU X7, (DI)
	VZEROUPPER
	RET

// func crcCpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·crcCpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func crcXgetbv() (eax, edx uint32)
TEXT ·crcXgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
