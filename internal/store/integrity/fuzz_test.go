package integrity

import (
	"bytes"
	"testing"
)

// FuzzRecordDecode hammers the record codec with arbitrary bytes —
// torn, truncated, bit-flipped sidecar content must never panic, and
// must never verify unless it is byte-for-byte a validly encoded
// record (the self-CRC plus version/flags/reserved checks are the
// whole defence against a rotted sidecar lying about the data).
func FuzzRecordDecode(f *testing.F) {
	var seed [RecordSize]byte
	Encode(seed[:], Record{Epoch: 3, Sum: 0x1234abcd})
	f.Add(seed[:])
	f.Add([]byte{})
	f.Add(make([]byte, RecordSize))
	f.Add(make([]byte, RecordSize-1))
	f.Add(bytes.Repeat([]byte{0xff}, RecordSize))

	f.Fuzz(func(t *testing.T, raw []byte) {
		rec, ok := Decode(raw)
		if !ok {
			return
		}
		// Anything that decodes must re-encode to exactly the bytes that
		// produced it: a valid record has exactly one serialisation, so
		// no corrupted variant of a record can alias another valid one.
		var re [RecordSize]byte
		Encode(re[:], rec)
		if !bytes.Equal(re[:], raw[:RecordSize]) {
			t.Fatalf("decoded record %+v does not re-encode to its input: got %x want %x", rec, re, raw[:RecordSize])
		}
	})
}

// FuzzSum checks the digest never panics and stays deterministic for
// any payload/address combination.
func FuzzSum(f *testing.F) {
	f.Add(uint32(1), 0, 0, []byte("payload"))
	f.Add(uint32(0), 5, 1<<20, []byte{})
	f.Fuzz(func(t *testing.T, epoch uint32, col, sector int, data []byte) {
		a := Sum(epoch, col, sector, data)
		b := Sum(epoch, col, sector, data)
		if a != b {
			t.Fatalf("digest not deterministic: %#x vs %#x", a, b)
		}
	})
}
