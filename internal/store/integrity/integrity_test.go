package integrity

import (
	"bytes"
	"context"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf [RecordSize]byte
	want := Record{Epoch: 7, Sum: 0xdeadbeef}
	Encode(buf[:], want)
	got, ok := Decode(buf[:])
	if !ok {
		t.Fatal("freshly encoded record failed to decode")
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	var buf [RecordSize]byte
	Encode(buf[:], Record{Epoch: 1, Sum: 42})

	// Any single bit flip anywhere in the record must invalidate it.
	for byteIdx := 0; byteIdx < RecordSize; byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			flipped := buf
			flipped[byteIdx] ^= 1 << bit
			if _, ok := Decode(flipped[:]); ok {
				t.Fatalf("record still decodes with bit %d of byte %d flipped", bit, byteIdx)
			}
		}
	}

	// All zeros (never-written sidecar) makes no claim.
	if _, ok := Decode(make([]byte, RecordSize)); ok {
		t.Fatal("all-zero record decoded as valid")
	}
	// Truncated input.
	if _, ok := Decode(buf[:RecordSize-1]); ok {
		t.Fatal("truncated record decoded as valid")
	}
	if _, ok := Decode(nil); ok {
		t.Fatal("nil record decoded as valid")
	}
}

func TestSumSaltsAddressAndEpoch(t *testing.T) {
	data := []byte("the same payload everywhere")
	base := Sum(1, 0, 0, data)
	if Sum(1, 1, 0, data) == base {
		t.Fatal("digest does not depend on column (misdirected writes undetectable)")
	}
	if Sum(1, 0, 1, data) == base {
		t.Fatal("digest does not depend on sector address (misdirected writes undetectable)")
	}
	if Sum(2, 0, 0, data) == base {
		t.Fatal("digest does not depend on epoch (stale writes undetectable)")
	}
	if Sum(1, 0, 0, []byte("other payload entirely...xyz")) == base {
		t.Fatal("digest does not depend on payload")
	}
}

func TestMetaSectors(t *testing.T) {
	cases := []struct {
		dataSectors, sectorSize, want int
	}{
		{0, 4096, 0},
		{1, 4096, 1},
		{256, 4096, 1}, // 4096/16 = 256 records fit one sector
		{257, 4096, 2},
		{512, 4096, 2},
		{1024, 512, 32}, // 512/16 = 32 per sector
		{1, 16, 1},
		{3, 16, 3},
	}
	for _, c := range cases {
		if got := MetaSectors(c.dataSectors, c.sectorSize); got != c.want {
			t.Errorf("MetaSectors(%d, %d) = %d, want %d", c.dataSectors, c.sectorSize, got, c.want)
		}
	}
}

func TestManagerVerifyUpdate(t *testing.T) {
	m, err := NewManager(3, 64, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xab}, 512)

	// Fresh manager: nothing is covered.
	if v := m.Verify(1, 5, data); v != Absent {
		t.Fatalf("fresh verify = %v, want Absent", v)
	}
	m.Update(1, 5, data)
	if v := m.Verify(1, 5, data); v != OK {
		t.Fatalf("after update verify = %v, want OK", v)
	}
	// Different payload at the recorded address: mismatch.
	other := bytes.Repeat([]byte{0xcd}, 512)
	if v := m.Verify(1, 5, other); v != Mismatch {
		t.Fatalf("wrong payload verify = %v, want Mismatch", v)
	}
	// Same payload, neighbouring sector: still absent there.
	if v := m.Verify(1, 6, data); v != Absent {
		t.Fatalf("neighbour verify = %v, want Absent", v)
	}
	// Same payload, different column: absent there too.
	if v := m.Verify(2, 5, data); v != Absent {
		t.Fatalf("other column verify = %v, want Absent", v)
	}
}

func TestManagerInstallRegion(t *testing.T) {
	m, err := NewManager(1, 64, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x11}, 512)
	m.Update(0, 3, data)
	region := m.Region(0)

	// A second manager adopting the persisted region verifies the same
	// sector.
	m2, err := NewManager(1, 64, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	m2.InstallRegion(0, region)
	if v := m2.Verify(0, 3, data); v != OK {
		t.Fatalf("verify after region install = %v, want OK", v)
	}

	// A manager opened under a different epoch rejects the old records.
	m3, err := NewManager(1, 64, 512, 10)
	if err != nil {
		t.Fatal(err)
	}
	m3.InstallRegion(0, region)
	if v := m3.Verify(0, 3, data); v != Mismatch {
		t.Fatalf("verify under new epoch = %v, want Mismatch", v)
	}

	// Installing a short region zero-fills the tail back to Absent.
	m2.InstallRegion(0, nil)
	if v := m2.Verify(0, 3, data); v != Absent {
		t.Fatalf("verify after nil install = %v, want Absent", v)
	}
}

func TestManagerFlushRange(t *testing.T) {
	// 16-byte sectors: exactly one record per sector, so data sector i
	// maps to meta sector i.
	m, err := NewManager(1, 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.MetaSectors() != 8 {
		t.Fatalf("MetaSectors = %d, want 8", m.MetaSectors())
	}
	for i := 0; i < 8; i++ {
		m.Update(0, i, []byte{byte(i)})
	}
	var gotStart, gotBufs int
	err = m.FlushRange(context.Background(), 0, 2, 3, func(_ context.Context, metaStart int, bufs [][]byte) error {
		gotStart, gotBufs = metaStart, len(bufs)
		for i, b := range bufs {
			rec, ok := Decode(b)
			if !ok {
				t.Fatalf("flushed meta sector %d holds no valid record", metaStart+i)
			}
			if want := Sum(1, 0, 2+i, []byte{byte(2 + i)}); rec.Sum != want {
				t.Fatalf("meta sector %d: sum %#x, want %#x", metaStart+i, rec.Sum, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotStart != 2 || gotBufs != 3 {
		t.Fatalf("flush covered meta [%d,+%d), want [2,+3)", gotStart, gotBufs)
	}

	// Zero count is a no-op.
	err = m.FlushRange(context.Background(), 0, 0, 0, func(_ context.Context, metaStart int, bufs [][]byte) error {
		t.Fatal("write callback invoked for empty range")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewManagerRejectsBadSectorSize(t *testing.T) {
	if _, err := NewManager(1, 8, 8, 1); err == nil {
		t.Fatal("sector smaller than a record accepted")
	}
	if _, err := NewManager(1, 8, 24, 1); err == nil {
		t.Fatal("sector size not a record multiple accepted")
	}
}
