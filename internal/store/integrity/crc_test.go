package integrity

import (
	"hash/crc32"
	"math/bits"
	"math/rand"
	"testing"
)

// TestCRCUpdateMatchesStdlib holds the dispatched crcUpdate to the
// stdlib across lengths (either side of the fold threshold and the
// 64-byte block size), alignments and initial states. On amd64 this
// differentially proves the VPCLMULQDQ kernel; elsewhere it is a
// trivial identity.
func TestCRCUpdateMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	backing := make([]byte, 1<<16+64)
	rng.Read(backing)

	lengths := []int{0, 1, 15, 16, 63, 64, 127, 128, 255, 256, 257, 320, 511, 512, 1023, 4096, 8192, 65536}
	for _, n := range lengths {
		for _, off := range []int{0, 1, 7, 32, 63} {
			p := backing[off : off+n]
			for _, crc := range []uint32{0, 1, 0xdeadbeef, ^uint32(0)} {
				if got, want := crcUpdate(crc, p), crc32.Update(crc, castagnoli, p); got != want {
					t.Fatalf("crcUpdate(%#x, len=%d off=%d) = %#x, stdlib %#x", crc, n, off, got, want)
				}
			}
		}
	}
	// Random shapes on top of the grid.
	for i := 0; i < 500; i++ {
		off := rng.Intn(64)
		n := rng.Intn(1 << 14)
		crc := rng.Uint32()
		p := backing[off : off+n]
		if got, want := crcUpdate(crc, p), crc32.Update(crc, castagnoli, p); got != want {
			t.Fatalf("crcUpdate(%#x, len=%d off=%d) = %#x, stdlib %#x", crc, n, off, got, want)
		}
	}
}

// xnmod computes x^n mod P for the Castagnoli polynomial — the
// re-derivation half of TestCRCFoldConstants.
func xnmod(n int) uint32 {
	const poly = 0x1EDC6F41
	r := uint32(1)
	for i := 0; i < n; i++ {
		hi := r & 0x80000000
		r <<= 1
		if hi != 0 {
			r ^= poly
		}
	}
	return r
}

// TestCRCFoldConstants re-derives every fold constant baked into
// crc_amd64.s from the polynomial: K(n) = bitrev32(x^(n-32) mod P)
// << 1, the reflected-domain multiply-by-x^n with the CRC's x^32
// pre-multiplication folded in. A mismatch here means the assembly's
// DATA block and this derivation disagree — one of them was edited
// without the other.
func TestCRCFoldConstants(t *testing.T) {
	want := map[int]uint64{
		576: 0x00000000740eef02, // loop: lane low qword, 64-byte distance
		512: 0x000000009e4addf8, // loop: lane high qword
		448: 0x000000001c291d04, // merge lane 0 (48 bytes)
		384: 0x00000001d82c63da,
		320: 0x00000001384aa63a, // merge lane 1 (32 bytes)
		256: 0x00000000ba4fc28e,
		192: 0x00000000f20c0dfe, // merge lane 2 (16 bytes)
		128: 0x000000014cd00bd6,

		2112: 0x00000000dcb17aa4, // main loop: fold one ZMM by 256 bytes
		2048: 0x00000000b9e02b86,
		1600: 0x00000000a87ab8a8, // merge accumulator 0 (192 bytes)
		1536: 0x00000000ab7aff2a,
		1088: 0x000000006992cea2, // merge accumulator 1 (128 bytes)
		1024: 0x000000000d3b6092,
	}
	for n, k := range want {
		if got := uint64(bits.Reverse32(xnmod(n-32))) << 1; got != k {
			t.Errorf("K(%d): derived %#016x, assembly table holds %#016x", n, got, k)
		}
	}
}

// FuzzCRCUpdate differentially fuzzes the dispatched CRC against the
// stdlib — any divergence in the folding kernel, however obscure the
// length/state combination, is a checksum layer that silently lies.
func FuzzCRCUpdate(f *testing.F) {
	big := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(big)
	f.Add(uint32(0), []byte("hello"))
	f.Add(^uint32(0), big)
	f.Add(uint32(0xdeadbeef), big[:257])
	f.Fuzz(func(t *testing.T, crc uint32, p []byte) {
		if got, want := crcUpdate(crc, p), crc32.Update(crc, castagnoli, p); got != want {
			t.Fatalf("crcUpdate(%#x, len=%d) = %#x, stdlib %#x", crc, len(p), got, want)
		}
	})
}

func BenchmarkCRCUpdate(b *testing.B) {
	for _, n := range []int{512, 4096, 8192, 65536} {
		p := make([]byte, n)
		rand.New(rand.NewSource(2)).Read(p)
		b.Run(benchName("dispatched", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				crcSink = crcUpdate(crcSink, p)
			}
		})
		b.Run(benchName("stdlib", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				crcSink = crc32.Update(crcSink, castagnoli, p)
			}
		})
	}
}

var crcSink uint32

func benchName(kind string, n int) string {
	if n >= 1024 {
		return kind + "-" + itoa(n/1024) + "KiB"
	}
	return kind + "-" + itoa(n) + "B"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
