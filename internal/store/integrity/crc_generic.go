//go:build !amd64 || purego

package integrity

import "hash/crc32"

// crcUpdate advances a CRC32C over p. Portable form: the standard
// library's implementation, which already uses the hardware CRC
// instructions (SSE4.2 / ARMv8 CRC) where the platform has them.
func crcUpdate(crc uint32, p []byte) uint32 { return crc32.Update(crc, castagnoli, p) }

// crcKernelName reports which payload-digest path Sum runs.
func crcKernelName() string { return "stdlib" }
