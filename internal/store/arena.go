package store

import (
	"context"

	"stair/internal/core"
	"stair/internal/store/mem"
)

// This file is the store's zero-copy stripe memory: slab-backed stripes
// and stripe buffers drawn from the tiered buffer pool
// (internal/store/mem), plus the flat-span detection that lets devices
// serve a vectored call over one contiguous region without a scratch
// flat.
//
// Layout: a stripe slab is core.SlabSize bytes, chunk-major — cell
// (col, row) lives at offset (col·r+row)·sectorSize — so the r sectors
// a device sees of one stripe are a single contiguous run. Cells are
// sliced from the slab without capacity caps (core.StripeOver), which
// is what makes the contiguity *detectable*: flatSpan can verify, with
// pure slice arithmetic, that a buffer vector tiles one backing region.
//
// Ownership: acquireStripe/acquireStripeBuf transfer a pooled slab to
// the store; the matching release returns it once no device operation
// can still reference it. An operation that ended with a context
// cancellation may leave an abandoned inner operation (a coalesced
// batch member, an in-flight HTTP body) holding the slab — such slabs
// are dropped to the GC instead of recycled (releaseStripeUnlessCancelled),
// because the GC keeps them alive for the straggler while a pool reuse
// would let it scribble over unrelated data.

// flatSpan reports whether bufs tiles one contiguous memory region and
// returns that region. It relies on the convention that slab-backed
// buffers are sliced without capacity caps, so the first buffer's
// capacity reaches to the end of its slab; per-buffer base pointers are
// then verified exactly, so a false positive is impossible.
func flatSpan(bufs [][]byte) ([]byte, bool) {
	if len(bufs) == 0 {
		return nil, false
	}
	if len(bufs) == 1 {
		return bufs[0], true
	}
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if cap(bufs[0]) < total {
		return nil, false
	}
	flat := bufs[0][:total]
	off := len(bufs[0])
	for _, b := range bufs[1:] {
		if len(b) == 0 {
			continue
		}
		if &flat[off] != &b[0] {
			return nil, false
		}
		off += len(b)
	}
	return flat, true
}

// acquireStripe returns a stripe whose cells tile one pooled slab.
// Contents are unspecified.
func (s *Store) acquireStripe() *core.Stripe {
	st, err := s.code.StripeOver(mem.Acquire(s.slabLen), s.sectorSize)
	if err != nil {
		// Geometry and sector size were validated at Open.
		panic("store: acquireStripe: " + err.Error())
	}
	return st
}

// releaseStripe returns a slab-backed stripe's memory to the pool. The
// stripe — and anything still referencing its cells, including cache
// entries — must not be used afterwards. Safe on nil.
func (s *Store) releaseStripe(st *core.Stripe) {
	if st == nil || len(st.Cells) == 0 {
		return
	}
	mem.Release(st.Cells[0][:s.slabLen])
}

// releaseStripeUnlessCancelled releases st's slab unless the operation
// that used it ended by context cancellation — then the slab is dropped
// to the GC, since an abandoned device-side operation may still
// reference it (see the file comment).
func (s *Store) releaseStripeUnlessCancelled(ctx context.Context, st *core.Stripe) {
	if ctx.Err() == nil {
		s.releaseStripe(st)
	}
}

// acquireStripeBuf returns a write buffer whose rows are carved from
// one pooled slab as blocks arrive (see WriteBlock).
func (s *Store) acquireStripeBuf() *stripeBuf {
	if v := s.bufPool.Get(); v != nil {
		buf := v.(*stripeBuf)
		buf.slab = mem.Acquire(s.slabLen)
		return buf
	}
	return &stripeBuf{data: make([][]byte, s.perStripe), slab: mem.Acquire(s.slabLen)}
}

// releaseStripeBuf recycles a flushed buffer. The caller must already
// have removed it from the shard's dirty map, and must not call this
// when the flush ended by cancellation (the buffer stays dirty for
// retry in that case anyway).
func (s *Store) releaseStripeBuf(buf *stripeBuf) {
	mem.Release(buf.slab)
	buf.slab = nil
	clear(buf.data)
	buf.count = 0
	buf.stuck, buf.queued = false, false
	s.bufPool.Put(buf)
}
