package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"stair/internal/core"
	"stair/internal/store/journal"
)

// errKilled is the sentinel a kill-point hook aborts a flush with — the
// in-process stand-in for the process dying at that instant: the
// journal, devices and buffers are left exactly as the protocol had
// them.
var errKilled = errors.New("killed at injection point")

// crashVolume is a volume whose devices survive a simulated crash: the
// MemDevices play the role of persistent media (their content outlives
// the Store object, as disks outlive a process), and the journal file
// lives in a temp dir.
type crashVolume struct {
	code        *core.Code
	devs        []Device
	journalPath string
	stripes     int
	sector      int
}

func newCrashVolume(t *testing.T, code *core.Code, stripes, sector int) *crashVolume {
	t.Helper()
	v := &crashVolume{
		code:        code,
		journalPath: filepath.Join(t.TempDir(), "journal.wal"),
		stripes:     stripes,
		sector:      sector,
	}
	v.devs = make([]Device, code.N())
	for i := range v.devs {
		v.devs[i] = NewMemDevice(stripes*code.R(), sector)
	}
	return v
}

// open mounts the volume; recovery runs automatically when the journal
// holds pending intents.
func (v *crashVolume) open(t *testing.T, flushWorkers int) (*Store, *journal.Journal) {
	t.Helper()
	j, err := journal.Open(v.journalPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{
		Code: v.code, SectorSize: v.sector, Stripes: v.stripes,
		Devices: v.devs, Journal: j, FlushWorkers: flushWorkers,
	})
	if err != nil {
		j.Close()
		t.Fatal(err)
	}
	return s, j
}

// abandon simulates the crash: stop the store's goroutines without
// flushing anything — buffered writes die with the process, devices and
// journal keep whatever the kill point left behind.
func abandonStore(s *Store, j *journal.Journal) {
	s.closed.Store(true)
	close(s.quit)
	s.repairQ.close()
	s.wg.Wait()
	j.Close()
}

// killPoints is the injection matrix of the journaled write-back
// protocol (flush.go).
var killPoints = []killPoint{
	killAfterJournalAppend,
	killAfterDataWrite,
	killAfterParityWrite,
	killAfterCommit,
}

// TestCrashRecoveryFullStripeMatrix kills a full-stripe flush at every
// protocol point, reopens the volume, and asserts the crash-consistency
// property: recovery leaves zero parity-inconsistent stripes, and the
// surviving content is either wholly old or wholly new per the kill
// point.
func TestCrashRecoveryFullStripeMatrix(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	for _, kp := range killPoints {
		t.Run(string(kp), func(t *testing.T) {
			v := newCrashVolume(t, code, 3, 128)
			s, j := v.open(t, 0)
			fillStore(t, s) // round 0, cleanly committed
			if got := j.PendingCount(); got != 0 {
				t.Fatalf("%d pending intents after a clean flush, want 0", got)
			}
			// Checkpoint round 0 so the crash's replay set is exactly
			// round 1's intents.
			if err := s.Sync(bg); err != nil {
				t.Fatal(err)
			}

			// Round 1 overwrites every block; with the kill armed, each
			// stripe's flush dies at the target point.
			s.testKill = func(p killPoint) error {
				if p == kp {
					return errKilled
				}
				return nil
			}
			kills := 0
			for b := 0; b < s.Blocks(); b++ {
				err := s.WriteBlock(bg, b, blockData(b+1000, s.BlockSize()))
				if err != nil {
					if !errors.Is(err, errKilled) {
						t.Fatalf("write block %d: %v", b, err)
					}
					kills++
				}
			}
			if kills != v.stripes {
				t.Fatalf("%d flushes killed, want one per stripe (%d)", kills, v.stripes)
			}
			abandonStore(s, j)

			// Reboot. Open replays the journal; the store must come back
			// with every stripe parity-consistent.
			s2, j2 := v.open(t, 0)
			defer func() { s2.Close(); j2.Close() }()
			checkStripesConsistent(t, s2)
			rep := s2.Recovery()
			switch kp {
			case killAfterJournalAppend:
				// No device write happened: the old stripes are intact and
				// consistent; nothing to roll forward.
				if rep.Stripes != v.stripes || rep.Consistent != v.stripes || rep.RolledForward != 0 {
					t.Fatalf("recovery %+v, want %d consistent stripes", rep, v.stripes)
				}
				checkAllBlocks(t, s2) // round-0 content
			case killAfterDataWrite:
				// New data, stale parity: every stripe must be rolled
				// forward onto the new content.
				if rep.RolledForward != v.stripes || rep.DataComplete != v.stripes {
					t.Fatalf("recovery %+v, want %d rolled forward with complete data", rep, v.stripes)
				}
				checkRound1(t, s2)
			case killAfterParityWrite:
				// The write-back completed; only the commit is missing.
				if rep.Consistent != v.stripes || rep.DataComplete != v.stripes || rep.RolledForward != 0 {
					t.Fatalf("recovery %+v, want %d consistent stripes with complete data", rep, v.stripes)
				}
				checkRound1(t, s2)
			case killAfterCommit:
				// The commit is in-memory only; the intents stay on disk
				// until a Sync/Close checkpoint (which the crash
				// precluded), so the reopen re-verifies them — all
				// consistent, with the intended data fully landed.
				if rep.Consistent != v.stripes || rep.DataComplete != v.stripes || rep.RolledForward != 0 {
					t.Fatalf("recovery %+v, want %d consistent stripes replayed", rep, v.stripes)
				}
				checkRound1(t, s2)
			}
			if got := j2.PendingCount(); got != 0 {
				t.Fatalf("%d intents still pending after recovery, want 0", got)
			}
			if kp == killAfterDataWrite && s2.Stats().RecoveredStripes != uint64(v.stripes) {
				t.Fatalf("RecoveredStripes=%d, want %d", s2.Stats().RecoveredStripes, v.stripes)
			}
		})
	}
}

// checkRound1 asserts every block holds its round-1 overwrite.
func checkRound1(t *testing.T, s *Store) {
	t.Helper()
	for b := 0; b < s.Blocks(); b++ {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatalf("read block %d: %v", b, err)
		}
		if !bytes.Equal(got, blockData(b+1000, s.BlockSize())) {
			t.Fatalf("block %d does not hold the rolled-forward content", b)
		}
	}
}

// TestCrashRecoverySubStripeMatrix kills a §5.2 read–modify–write at
// every protocol point. This is the scenario the journal exists for:
// the RMW touches a handful of data sectors plus their uneven parity
// dependencies, and a crash between those writes leaves parity silently
// disagreeing with data.
func TestCrashRecoverySubStripeMatrix(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	for _, kp := range killPoints {
		t.Run(string(kp), func(t *testing.T) {
			v := newCrashVolume(t, code, 3, 128)
			s, j := v.open(t, 0)
			fillStore(t, s)
			// Checkpoint the fill so the crash's replay set is exactly
			// the interrupted RMW.
			if err := s.Sync(bg); err != nil {
				t.Fatal(err)
			}

			// Dirty two blocks of stripe 1 and flush: a sub-stripe RMW.
			dirty := []int{s.perStripe, s.perStripe + 3}
			for _, b := range dirty {
				if err := s.WriteBlock(bg, b, blockData(b+1000, s.BlockSize())); err != nil {
					t.Fatal(err)
				}
			}
			s.testKill = func(p killPoint) error {
				if p == kp {
					return errKilled
				}
				return nil
			}
			if err := s.Flush(bg); !errors.Is(err, errKilled) {
				t.Fatalf("killed flush returned %v, want errKilled", err)
			}
			abandonStore(s, j)

			s2, j2 := v.open(t, 0)
			defer func() { s2.Close(); j2.Close() }()
			// The property under test: no kill point leaves any stripe
			// parity-inconsistent after recovery.
			checkStripesConsistent(t, s2)
			rep := s2.Recovery()
			newContent := kp == killAfterDataWrite || kp == killAfterParityWrite || kp == killAfterCommit
			for b := 0; b < s2.Blocks(); b++ {
				want := blockData(b, s2.BlockSize())
				if newContent && (b == dirty[0] || b == dirty[1]) {
					want = blockData(b+1000, s2.BlockSize())
				}
				got, err := s2.ReadBlock(bg, b)
				if err != nil {
					t.Fatalf("read block %d: %v", b, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("block %d holds neither old nor rolled-forward content", b)
				}
			}
			switch kp {
			case killAfterDataWrite:
				if rep.RolledForward != 1 || rep.DataComplete != 1 {
					t.Fatalf("recovery %+v, want 1 stripe rolled forward with complete data", rep)
				}
			case killAfterJournalAppend:
				if rep.Consistent != 1 || rep.DataComplete != 0 {
					t.Fatalf("recovery %+v, want 1 consistent stripe with no data landed", rep)
				}
			case killAfterParityWrite, killAfterCommit:
				// Identical on disk: the write-back completed; only the
				// (in-memory) commit and/or the checkpoint are missing, so
				// the replay re-verifies a consistent stripe.
				if rep.Consistent != 1 || rep.DataComplete != 1 {
					t.Fatalf("recovery %+v, want 1 consistent stripe with complete data", rep)
				}
			}
			if got := j2.PendingCount(); got != 0 {
				t.Fatalf("%d intents still pending after recovery, want 0", got)
			}
		})
	}
}

// TestCrashRecoveryAsyncPipeline crashes a volume whose flushes run
// through the background pipeline: several stripes die mid-write-back
// concurrently, and recovery must still converge every one of them.
func TestCrashRecoveryAsyncPipeline(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	v := newCrashVolume(t, code, 4, 128)
	s, j := v.open(t, 2)
	fillStore(t, s)
	if err := s.Sync(bg); err != nil {
		t.Fatal(err)
	}

	s.testKill = func(p killPoint) error {
		if p == killAfterDataWrite {
			return errKilled
		}
		return nil
	}
	for b := 0; b < s.Blocks(); b++ {
		// Background flushes swallow the kill into the sticky error;
		// writes themselves keep succeeding.
		if err := s.WriteBlock(bg, b, blockData(b+1000, s.BlockSize())); err != nil {
			t.Fatalf("write block %d: %v", b, err)
		}
	}
	if err := s.drainFlushPipeline(bg); err != nil {
		t.Fatal(err)
	}
	if err := s.takeAsyncFlushErr(); !errors.Is(err, errKilled) {
		t.Fatalf("pipeline error %v, want errKilled", err)
	}
	abandonStore(s, j)

	s2, j2 := v.open(t, 2)
	defer func() { s2.Close(); j2.Close() }()
	checkStripesConsistent(t, s2)
	rep := s2.Recovery()
	if rep.RolledForward != v.stripes {
		t.Fatalf("recovery %+v, want all %d stripes rolled forward", rep, v.stripes)
	}
	checkRound1(t, s2)
}

// crashSubStripe fills a journaled volume, dirties two blocks of
// stripe 1 and kills the RMW flush at kp, returning the dirty block
// ids. The caller owns the reopen.
func crashSubStripe(t *testing.T, v *crashVolume, kp killPoint) []int {
	t.Helper()
	s, j := v.open(t, 0)
	fillStore(t, s)
	// The barrier checkpoints the fill's intents, so the crash leaves
	// exactly the interrupted RMW pending.
	if err := s.Sync(bg); err != nil {
		t.Fatal(err)
	}
	dirty := []int{s.perStripe, s.perStripe + 3}
	for _, b := range dirty {
		if err := s.WriteBlock(bg, b, blockData(b+1000, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	s.testKill = func(p killPoint) error {
		if p == kp {
			return errKilled
		}
		return nil
	}
	if err := s.Flush(bg); !errors.Is(err, errKilled) {
		t.Fatalf("killed flush returned %v, want errKilled", err)
	}
	abandonStore(s, j)
	return dirty
}

// TestRecoveryRefusesUntrustedRepair: a latent data-sector loss on a
// stripe whose crash broke the parity relations must NOT be
// "repaired" — the reconstruction would solve contradictory equations
// into fabricated content. Recovery must report the stripe
// unrecoverable, keep the journal, and reads of the lost block must
// error rather than return invented bytes.
func TestRecoveryRefusesUntrustedRepair(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	v := newCrashVolume(t, code, 3, 128)
	// Crash between the data and parity phases: stripe 1 now holds new
	// data under old parity.
	crashSubStripe(t, v, killAfterDataWrite)

	// The disk then develops a latent error on an *untouched* data cell
	// of the same stripe before the reboot.
	lostOrd := 10
	lostCell := code.DataCells()[lostOrd]
	fd := v.devs[lostCell.Col].(*MemDevice)
	if err := fd.InjectSectorError(1*code.R() + lostCell.Row); err != nil {
		t.Fatal(err)
	}

	s2, j2 := v.open(t, 0)
	defer func() { s2.Close(); j2.Close() }()
	rep := s2.Recovery()
	if rep.Unrecoverable != 1 || rep.RolledForward != 0 {
		t.Fatalf("recovery %+v, want exactly the damaged stripe reported unrecoverable", rep)
	}
	if got := j2.PendingCount(); got == 0 {
		t.Fatal("journal truncated although a stripe could not be re-verified")
	}
	if got := s2.UnrecoverableStripes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("unrecoverable stripes %v, want [1]", got)
	}
	// The lost block must error — fabricated content would be silent
	// corruption, the exact failure mode the journal exists to prevent.
	if _, err := s2.ReadBlock(bg, s2.perStripe+lostOrd); err == nil {
		t.Fatal("read of an unverifiable lost block returned data")
	}
}

// TestRecoveryLostParityRollsForward: losing only parity sectors never
// blocks recovery — parity is re-encoded from the (authoritative) data
// cells regardless of what the crash tore.
func TestRecoveryLostParityRollsForward(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	v := newCrashVolume(t, code, 3, 128)
	dirty := crashSubStripe(t, v, killAfterDataWrite)

	parity := code.ParityCells()[0]
	fd := v.devs[parity.Col].(*MemDevice)
	if err := fd.InjectSectorError(1*code.R() + parity.Row); err != nil {
		t.Fatal(err)
	}

	s2, j2 := v.open(t, 0)
	defer func() { s2.Close(); j2.Close() }()
	rep := s2.Recovery()
	if rep.RolledForward != 1 || rep.Unrecoverable != 0 {
		t.Fatalf("recovery %+v, want the stripe rolled forward", rep)
	}
	if got := j2.PendingCount(); got != 0 {
		t.Fatalf("%d intents pending after a clean roll-forward", got)
	}
	checkStripesConsistent(t, s2)
	for _, b := range dirty {
		got, err := s2.ReadBlock(bg, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockData(b+1000, s2.BlockSize())) {
			t.Fatalf("block %d lost its rolled-forward content", b)
		}
	}
}

// TestRecoveryAcceptsVerifiedRepair: a data-sector loss on a stripe
// whose write-back actually completed (crash after the parity phase)
// repairs soundly — the repaired stripe verifies, so recovery heals it
// and moves on.
func TestRecoveryAcceptsVerifiedRepair(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	v := newCrashVolume(t, code, 3, 128)
	crashSubStripe(t, v, killAfterParityWrite)

	lostOrd := 10
	lostCell := code.DataCells()[lostOrd]
	fd := v.devs[lostCell.Col].(*MemDevice)
	if err := fd.InjectSectorError(1*code.R() + lostCell.Row); err != nil {
		t.Fatal(err)
	}

	s2, j2 := v.open(t, 0)
	defer func() { s2.Close(); j2.Close() }()
	rep := s2.Recovery()
	if rep.RolledForward != 1 || rep.Unrecoverable != 0 {
		t.Fatalf("recovery %+v, want the verified repair accepted and healed", rep)
	}
	checkStripesConsistent(t, s2)
	got, err := s2.ReadBlock(bg, s2.perStripe+lostOrd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockData(s2.perStripe+lostOrd, s2.BlockSize())) {
		t.Fatal("repaired block does not hold its original content")
	}
	if bad := s2.TotalBadSectors(); bad != 0 {
		t.Fatalf("%d bad sectors left after recovery healed the stripe", bad)
	}
}

// TestRecoveryRetainsJournalOnWriteFailure: a roll-forward whose
// write-back fails transiently must not count as recovered — the
// journal keeps the intent for the next mount, and the stripe is
// marked so degraded reads refuse it instead of decoding over the
// still-inconsistent parity.
func TestRecoveryRetainsJournalOnWriteFailure(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	v := newCrashVolume(t, code, 3, 128)
	dirty := crashSubStripe(t, v, killAfterDataWrite)

	// First reboot lands on a device whose writes fail transiently.
	flaky := &flakyDevice{MemDevice: v.devs[2].(*MemDevice)}
	v.devs[2] = flaky
	flaky.failWrites.Store(1)
	s2, j2 := v.open(t, 0)
	rep := s2.Recovery()
	if rep.Unrecoverable != 1 || rep.RolledForward != 0 {
		t.Fatalf("recovery %+v, want the failed roll-forward reported unrecoverable", rep)
	}
	if got := j2.PendingCount(); got == 0 {
		t.Fatal("journal truncated although the roll-forward did not land")
	}
	if got := s2.UnrecoverableStripes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("unrecoverable stripes %v, want [1]", got)
	}
	abandonStore(s2, j2)

	// Second reboot: the device behaves, the retained intent replays,
	// and the stripe converges on the rolled-forward content.
	s3, j3 := v.open(t, 0)
	defer func() { s3.Close(); j3.Close() }()
	rep = s3.Recovery()
	if rep.RolledForward != 1 || rep.Unrecoverable != 0 {
		t.Fatalf("second recovery %+v, want the retried roll-forward to land", rep)
	}
	checkStripesConsistent(t, s3)
	for _, b := range dirty {
		got, err := s3.ReadBlock(bg, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockData(b+1000, s3.BlockSize())) {
			t.Fatalf("block %d lost its rolled-forward content after the retry", b)
		}
	}
}

// gatedWriteDevice blocks every WriteSectors call until release closes
// — it wedges the flush pipeline so the backpressure path is
// observable.
type gatedWriteDevice struct {
	*MemDevice
	release chan struct{}
}

func (d *gatedWriteDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	<-d.release
	return d.MemDevice.WriteSectors(ctx, start, data)
}

// TestAsyncEvictionBackpressure: with the pipeline wedged, a writer
// spraying partial stripes must block once MaxDirtyStripes is
// exceeded instead of buffering the whole volume.
func TestAsyncEvictionBackpressure(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	const (
		stripes  = 8
		maxDirty = 2
	)
	release := make(chan struct{})
	devs := make([]Device, code.N())
	for i := range devs {
		devs[i] = &gatedWriteDevice{MemDevice: NewMemDevice(stripes*code.R(), 128), release: release}
	}
	s, err := Open(Config{
		Code: code, SectorSize: 128, Stripes: stripes, Devices: devs,
		MaxDirtyStripes: maxDirty, FlushWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done := make(chan error, 1)
	var progress atomic.Int32
	go func() {
		for stripe := 0; stripe < stripes; stripe++ {
			if err := s.WriteBlock(bg, stripe*s.perStripe, blockData(stripe, s.BlockSize())); err != nil {
				done <- err
				return
			}
			progress.Add(1)
		}
		done <- nil
	}()
	// The writer must stall against the wedged pipeline with the buffer
	// bound held — not race ahead buffering all 8 stripes.
	deadline := time.Now().Add(2 * time.Second)
	for progress.Load() < maxDirty+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // give an unbounded writer time to misbehave
	if got := progress.Load(); got > maxDirty+1 {
		t.Fatalf("writer completed %d writes against a wedged pipeline, want ≤ %d (backpressure)", got, maxDirty+1)
	}
	if got := int(s.dirtyCount.Load()); got > maxDirty+1 {
		t.Fatalf("dirtyCount=%d with the pipeline wedged, bound is %d(+1 hot)", got, maxDirty)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	for stripe := 0; stripe < stripes; stripe++ {
		got, err := s.ReadBlock(bg, stripe*s.perStripe)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockData(stripe, s.BlockSize())) {
			t.Fatalf("stripe %d's write lost under backpressure", stripe)
		}
	}
	checkStripesConsistent(t, s)
}

// TestJournaledFlushBookkeeping: a cleanly flushed journaled store
// commits every intent (empty journal, no recovery on reopen) and
// counts its journaled flushes.
func TestJournaledFlushBookkeeping(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	v := newCrashVolume(t, code, 3, 128)
	s, j := v.open(t, 0)
	fillStore(t, s)
	if err := s.WriteBlock(bg, 1, blockData(2001, s.BlockSize())); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if want := uint64(v.stripes + 1); st.JournaledFlushes != want {
		t.Errorf("JournaledFlushes=%d, want %d", st.JournaledFlushes, want)
	}
	if got := j.PendingCount(); got != 0 {
		t.Errorf("%d pending intents after clean flushes", got)
	}
	// Committed intents stay ON DISK until a durability barrier — the
	// covered device writes could still be volatile — and the barrier
	// reclaims the log.
	if info, err := os.Stat(v.journalPath); err != nil || info.Size() == 0 {
		t.Errorf("journal file empty before any durability barrier (err=%v)", err)
	}
	if err := s.Sync(bg); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(v.journalPath); err != nil || info.Size() != 0 {
		t.Errorf("journal holds data after the Sync barrier (err=%v)", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	s2, j2 := v.open(t, 0)
	defer func() { s2.Close(); j2.Close() }()
	if s2.Recovery().Replayed() {
		t.Errorf("recovery %+v ran on a cleanly closed volume", s2.Recovery())
	}
	checkStripesConsistent(t, s2)
}

// TestSyncDurabilityBarrier: Sync drains buffers and leaves the journal
// empty; on file devices the content survives a reopen.
func TestSyncDurabilityBarrier(t *testing.T) {
	code := testCode(t, core.Config{N: 5, R: 3, M: 1, E: []int{2}})
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.wal")
	open := func() (*Store, *journal.Journal) {
		devs := make([]Device, code.N())
		for i := range devs {
			d, err := OpenFileDevice(filepath.Join(dir, fmt.Sprintf("dev%d.img", i)), 4*code.R(), 64)
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = d
		}
		j, err := journal.Open(jpath)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Code: code, SectorSize: 64, Stripes: 4, Devices: devs, Journal: j, FlushWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return s, j
	}
	s, j := open()
	for b := 0; b < s.Blocks(); b++ {
		if err := s.WriteBlock(bg, b, blockData(b, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(bg); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := int(s.dirtyCount.Load()); got != 0 {
		t.Fatalf("%d dirty stripes after Sync, want 0", got)
	}
	if got := j.PendingCount(); got != 0 {
		t.Fatalf("%d pending intents after Sync, want 0", got)
	}
	// Simulate the process dying right after the barrier: no Close.
	abandonStore(s, j)
	s2, j2 := open()
	defer func() { s2.Close(); j2.Close() }()
	checkAllBlocks(t, s2)
	checkStripesConsistent(t, s2)
}

// TestAsyncPipelineRoundTrip: with the pipeline on, a sequential fill
// still lands every stripe through full-stripe encodes, reads see
// buffered writes throughout, and Flush drains to a consistent volume.
func TestAsyncPipelineRoundTrip(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 5, FlushWorkers: 3, MaxInflightEncodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for b := 0; b < s.Blocks(); b++ {
		if err := s.WriteBlock(bg, b, blockData(b, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
		// Read-your-writes must hold while flushes are in flight.
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockData(b, s.BlockSize())) {
			t.Fatalf("block %d stale during pipelined fill", b)
		}
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	checkAllBlocks(t, s)
	checkStripesConsistent(t, s)
	st := s.Stats()
	if st.FullStripeFlushes != uint64(s.stripes) {
		t.Errorf("FullStripeFlushes=%d, want %d", st.FullStripeFlushes, s.stripes)
	}
}

// TestAsyncFlushErrorSurfaces: a background flush that fails (here: the
// stripe is unrecoverably degraded) must not vanish — the next Flush
// reports it and the buffer stays for a retry.
func TestAsyncFlushErrorSurfaces(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2, FlushWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// m+1 failures: every stripe is outside coverage, so an RMW flush
	// cannot load-and-repair.
	for _, dev := range []int{0, 1, 2} {
		if err := s.FailDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteBlock(bg, 0, blockData(9000, s.BlockSize())); err != nil {
		t.Fatal(err)
	}
	// Force the partial buffer through the pipeline via Flush's sweep…
	err = s.Flush(bg)
	if err == nil {
		t.Fatal("Flush succeeded on an unrecoverable stripe")
	}
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Flush error %v, want ErrUnrecoverable", err)
	}
	// …and the buffer must still be there, retryable.
	if got := int(s.dirtyCount.Load()); got != 1 {
		t.Fatalf("dirtyCount=%d after failed flush, want 1 (buffer retained)", got)
	}
	// Filling the stripe promotes the retry to a full-stripe rewrite,
	// which reads nothing — it lands even though the stripe's old
	// content is beyond coverage.
	for ord := 0; ord < s.perStripe; ord++ {
		if err := s.WriteBlock(bg, ord, blockData(9000+ord, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(bg); err != nil {
		t.Fatalf("retry flush as a full stripe: %v", err)
	}
	if got := int(s.dirtyCount.Load()); got != 0 {
		t.Fatalf("dirtyCount=%d after successful retry, want 0", got)
	}
}
