package store

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"stair/internal/core"
	"stair/internal/store/mem"
)

// TestZeroCopyFileDevices proves the copy-elision claim for the
// file backend: every vectored call the store issues in healthy
// steady state — full-stripe flushes, single-block reads, whole-stripe
// scrub loads — presents a slab-contiguous extent, so FileDevice's
// pread/pwrite fast path runs and its scratch-flat counter stays zero.
func TestZeroCopyFileDevices(t *testing.T) {
	code := testCode(t, core.Config{N: 5, R: 3, M: 1, E: []int{2}})
	dir := t.TempDir()
	devs := make([]Device, code.N())
	files := make([]*FileDevice, code.N())
	for i := range devs {
		d, err := OpenFileDevice(filepath.Join(dir, "dev"+string(rune('a'+i))+".img"), 4*code.R(), 64)
		if err != nil {
			t.Fatal(err)
		}
		devs[i], files[i] = d, d
	}
	s, err := Open(Config{Code: code, SectorSize: 64, Stripes: 4, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s)
	checkAllBlocks(t, s)
	if _, err := s.Scrub(bg); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, fd := range files {
		if got := fd.ScratchFlats(); got != 0 {
			t.Errorf("device %d: %d scratch flats on healthy slab-contiguous traffic, want 0", i, got)
		}
	}
	// The counter is live: a genuinely scattered vector must fall back.
	fd, err := OpenFileDevice(filepath.Join(dir, "scattered.img"), 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	scattered := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := fd.WriteSectors(bg, 0, scattered); err != nil {
		t.Fatal(err)
	}
	if err := fd.ReadSectors(bg, 0, scattered); err != nil {
		t.Fatal(err)
	}
	if got := fd.ScratchFlats(); got != 2 {
		t.Errorf("ScratchFlats=%d after two scattered calls, want 2", got)
	}
}

// TestZeroCopyNetDevices proves the same for the network backend: a
// slab-contiguous extent becomes the HTTP request body (writes) or the
// response-body destination (reads) directly, with no gather/scatter
// copy on the client.
func TestZeroCopyNetDevices(t *testing.T) {
	code := testCode(t, core.Config{N: 4, R: 3, M: 1, E: []int{1}})
	const stripes, sector = 3, 64
	devs := make([]Device, code.N())
	nets := make([]*NetDevice, code.N())
	for i := range devs {
		srv := httptest.NewServer(NewDeviceServer(NewMemDevice(stripes*code.R(), sector)))
		t.Cleanup(srv.Close)
		d, err := DialNetDevice(bg, srv.URL, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		devs[i], nets[i] = d, d
	}
	s, err := Open(Config{Code: code, SectorSize: sector, Stripes: stripes, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s)
	checkAllBlocks(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, nd := range nets {
		if got := nd.ScratchFlats(); got != 0 {
			t.Errorf("net device %d: %d scratch flats on healthy slab-contiguous traffic, want 0", i, got)
		}
	}
}

// TestAllocRegressionGuard is the allocation analogue of the GF kernel
// speed guard: env-gated so routine runs stay unaffected by measurement
// noise, it pins the steady-state block paths to (amortised) zero heap
// allocations. CI runs it with STAIR_ALLOC_GUARD=1 on both the default
// and purego legs.
func TestAllocRegressionGuard(t *testing.T) {
	if os.Getenv("STAIR_ALLOC_GUARD") == "" {
		t.Skip("set STAIR_ALLOC_GUARD=1 to run the alloc regression guard")
	}
	if !mem.Enabled() {
		t.Skip("buffer pool disabled (STAIR_POOL=off); nothing to guard")
	}
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)

	buf := blockData(1, s.BlockSize())
	i := 0
	writes := testing.AllocsPerRun(2000, func() {
		if err := s.WriteBlock(bg, i%s.Blocks(), buf); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Sequential writes fill whole stripes; the per-flush bookkeeping
	// (journal-less here, but cell partitions and map churn) must stay
	// well under one allocation per block.
	if writes >= 1.0 {
		t.Errorf("WriteBlock steady state: %.2f allocs/op, want < 1", writes)
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, s.BlockSize())
	reads := testing.AllocsPerRun(2000, func() {
		if err := s.ReadBlockInto(bg, i%s.Blocks(), dst); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if reads >= 0.5 {
		t.Errorf("ReadBlockInto steady state: %.2f allocs/op, want < 0.5", reads)
	}
}
