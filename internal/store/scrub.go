package store

import (
	"context"
	"fmt"
	"time"

	"stair/internal/core"
)

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	// StripesChecked counts stripes swept.
	StripesChecked int
	// StripesDamaged counts stripes found holding lost sectors —
	// fail-stop read errors and checksum-located silent corruption
	// alike.
	StripesDamaged int
	// StripesQueued counts stripes newly handed to the repair queue
	// (damaged stripes already queued, unrecoverable, or dropped by the
	// bounded queue are not re-counted here).
	StripesQueued int
	// SectorsLost counts fail-stop lost sectors (read errors) seen
	// across damaged stripes; checksum-located liars are counted in
	// ChecksumMismatches instead.
	SectorsLost int
	// ChecksumMismatches counts sectors that read fine but failed their
	// integrity record — silent corruption *located* by the checksum
	// layer, repairable as ordinary erasures.
	ChecksumMismatches int
	// StripesInconsistent counts stripes whose parity disagrees with
	// their data while nothing is located — an unlocatable lie (silent
	// corruption with integrity off, or damage beyond what the records
	// cover). These are marked unrecoverable rather than guessed at:
	// repairing without a location would fabricate content.
	StripesInconsistent int
	// StripesUnrecoverable counts stripes this pass found beyond the
	// code's coverage (located damage exceeding it, or inconsistent
	// with nothing located).
	StripesUnrecoverable int
	// RecordsRefreshed counts absent integrity records re-written for
	// sectors a clean stripe proved good — how a replaced device's
	// sidecar (or a pre-integrity volume's) heals over scrub passes.
	RecordsRefreshed int
}

// pacer rations a scrub pass to a stripes/sec budget. A nil pacer is
// unpaced. The wait happens between stripes, outside any shard lock, so
// pacing never blocks foreground reads and writes — only the sweep.
type pacer struct {
	interval time.Duration
	next     time.Time
}

// newPacer builds a pacer for the given rate; rate <= 0 means unpaced.
func newPacer(stripesPerSec float64) *pacer {
	if stripesPerSec <= 0 {
		return nil
	}
	return &pacer{interval: time.Duration(float64(time.Second) / stripesPerSec)}
}

// wait blocks until the next stripe is due, or ctx is cancelled.
func (p *pacer) wait(ctx context.Context) error {
	if p == nil {
		return ctx.Err()
	}
	now := time.Now()
	if p.next.IsZero() {
		// The first stripe is free; the budget applies between stripes.
		p.next = now.Add(p.interval)
		return ctx.Err()
	}
	d := p.next.Sub(now)
	if d <= 0 {
		// Behind schedule (e.g. a stripe stalled on a slow device):
		// resume pacing from now instead of banking catch-up credit —
		// a burst of unpaced sweeping is exactly what the rate limit
		// exists to prevent.
		p.next = now.Add(p.interval)
		return ctx.Err()
	}
	p.next = p.next.Add(p.interval)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Scrub sweeps every stripe once, synchronously: it loads each stripe
// in one vectored call per device (latent sector errors announce
// themselves at access time under the fail-stop sector model), verifies
// every readable sector against its integrity record (when the layer is
// on — a mismatch is a *located* silent corruption, repairable like any
// erasure), cross-checks parity against data, counts damage, and feeds
// repairable damaged stripes to the bounded repair queue. A stripe
// whose located damage exceeds coverage — or whose parity disagrees
// while nothing is located, the unlocatable-lie case — is marked
// unrecoverable instead of guessed at. Use Quiesce to wait for the
// resulting repairs to converge. Each stripe is swept under its own
// shard lock, so reads, writes and repairs on other stripes interleave
// with a sweep over a large volume. A cancelled ctx aborts the pass
// mid-sweep — including an in-flight device wait — not just between
// stripes.
func (s *Store) Scrub(ctx context.Context) (ScrubReport, error) {
	return s.scrub(ctx, nil)
}

func (s *Store) scrub(ctx context.Context, pace *pacer) (ScrubReport, error) {
	var rep ScrubReport
	if fn := s.testScrubErr; fn != nil {
		if err := fn(); err != nil {
			return rep, err
		}
	}
	for stripe := 0; stripe < s.stripes; stripe++ {
		if err := pace.wait(ctx); err != nil {
			return rep, err
		}
		sh := s.shard(stripe)
		sh.mu.Lock()
		// Checked under the shard lock (as in ReadBlock): past Close's
		// per-shard flush sweep the devices may already be closed.
		if s.closed.Load() {
			sh.mu.Unlock()
			return rep, ErrClosed
		}
		st, lost, mismatched, err := s.loadStripe(ctx, stripe, true)
		if err != nil {
			sh.mu.Unlock()
			return rep, err
		}
		rep.StripesChecked++
		s.c.scrubbedStripes.Add(1)
		switch {
		case len(lost) > 0:
			rep.StripesDamaged++
			rep.SectorsLost += len(lost) - len(mismatched)
			rep.ChecksumMismatches += len(mismatched)
			s.c.scrubHits.Add(1)
			// Located damage: coverage decides. One checksum-located liar
			// repairs like any erasure; damage beyond coverage (e.g. two
			// liars in a stripe protected for one) is refused rather than
			// decoded into fabricated content.
			if ok, cerr := s.code.CanRecover(lost); cerr == nil && !ok {
				if !sh.unrecoverable[stripe] {
					rep.StripesUnrecoverable++
				}
				s.markUnrecoverableLocked(sh, stripe)
			} else {
				wasPending := sh.pending[stripe] || sh.unrecoverable[stripe]
				s.enqueueRepairLocked(sh, stripe, len(lost))
				if !wasPending && sh.pending[stripe] {
					rep.StripesQueued++
				}
			}
		default:
			// Nothing located: cross-check parity against data. A
			// disagreement here is an unlocatable lie — some sector is
			// wrong but no read error or checksum names it (integrity
			// off, or damage in a sector whose record is absent) — so the
			// stripe is marked, not "repaired": every choice of victim
			// solves different equations into different garbage.
			ok, verr := s.code.Verify(st)
			switch {
			case verr != nil:
			case !ok:
				rep.StripesInconsistent++
				if !sh.unrecoverable[stripe] {
					rep.StripesUnrecoverable++
				}
				s.markUnrecoverableLocked(sh, stripe)
				s.c.scrubHits.Add(1)
			case s.integ != nil:
				// Clean stripe: re-write any absent integrity records —
				// the stripe's content is proven good by parity, so this
				// is how a replaced device's sidecar (or a volume
				// predating the integrity layer) heals over passes.
				rep.RecordsRefreshed += s.refreshStripeRecordsLocked(ctx, stripe, st)
			}
		}
		// The sweep is done with this stripe's reconstruction; hand the
		// slab back unless a cancellation mid-record-refresh left a
		// device operation that may still reference it.
		s.releaseStripeUnlessCancelled(ctx, st)
		sh.mu.Unlock()
	}
	return rep, nil
}

// refreshStripeRecordsLocked stages integrity records for any sector of
// a proven-clean stripe that lacks one, persists the touched columns'
// sidecars, and returns how many records it wrote. The caller holds the
// stripe's shard mutex.
func (s *Store) refreshStripeRecordsLocked(ctx context.Context, stripe int, st *core.Stripe) int {
	refreshed := 0
	var cols []int
	for col := 0; col < s.n; col++ {
		if fd, ok := s.devs[col].(FaultDevice); ok && fd.Failed() {
			continue
		}
		touched := false
		for row := 0; row < s.r; row++ {
			sec := s.devSector(stripe, row)
			if !s.integ.Has(col, sec) {
				s.integ.Update(col, sec, st.Sector(col, row))
				refreshed++
				touched = true
			}
		}
		if touched {
			cols = append(cols, col)
		}
	}
	if len(cols) > 0 {
		_ = s.flushStripeMeta(ctx, stripe, cols)
	}
	return refreshed
}

// ScrubberOptions configures the background scrubber.
type ScrubberOptions struct {
	// Interval is the time between the starts of consecutive passes
	// (required, positive).
	Interval time.Duration
	// StripesPerSec rate-limits each pass so a scrub sweep does not
	// monopolise device bandwidth against foreground traffic; 0 means
	// unpaced. The pacing sleep happens outside the shard locks and
	// honors cancellation, so stopping the scrubber (or closing the
	// store) interrupts a paced pass immediately.
	StripesPerSec float64
}

// StartScrubber starts a background goroutine running a full Scrub pass
// every interval until StopScrubber or Close. Only one scrubber can run
// at a time. Stopping cancels an in-flight pass mid-sweep via its
// context rather than waiting for the pass to finish.
func (s *Store) StartScrubber(opts ScrubberOptions) error {
	if opts.Interval <= 0 {
		return fmt.Errorf("store: scrub interval %v must be positive", opts.Interval)
	}
	if opts.StripesPerSec < 0 {
		return fmt.Errorf("store: scrub rate %v must be ≥ 0 stripes/sec", opts.StripesPerSec)
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.scrubStop != nil {
		return fmt.Errorf("store: scrubber already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.scrubStop, s.scrubDone = stop, done
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(done)
		// Every exit path — including a pass failing, e.g. the store
		// closing mid-sweep — must release the scrubber slot, or
		// StartScrubber reports "already running" forever. StopScrubber
		// may have taken the slot already (it nils the fields before
		// closing stop), so only clear when it is still ours.
		defer func() {
			s.stateMu.Lock()
			if s.scrubDone == done {
				s.scrubStop, s.scrubDone = nil, nil
			}
			s.stateMu.Unlock()
		}()
		// Passes run under a context cancelled by StopScrubber and
		// Close, so a paced or device-blocked pass aborts mid-sweep
		// instead of holding the shutdown hostage.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			select {
			case <-stop:
			case <-s.quit:
			case <-ctx.Done():
			}
			cancel()
		}()
		ticker := time.NewTicker(opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-s.quit:
				// Close shuts the store down without knowing about a
				// scrubber started concurrently with it; exit promptly
				// rather than making wg.Wait sit out a full interval.
				return
			case <-ticker.C:
				if _, err := s.scrub(ctx, newPacer(opts.StripesPerSec)); err != nil {
					return
				}
			}
		}
	}()
	return nil
}

// StopScrubber stops the background scrubber, if running, and waits for
// it to exit; an in-flight pass is cancelled mid-sweep (repairs it
// already queued keep draining; use Quiesce to wait for those).
func (s *Store) StopScrubber() {
	s.stateMu.Lock()
	stop, done := s.scrubStop, s.scrubDone
	s.scrubStop, s.scrubDone = nil, nil
	s.stateMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
