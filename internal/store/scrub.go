package store

import (
	"fmt"
	"time"
)

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	// StripesChecked counts stripes swept.
	StripesChecked int
	// StripesDamaged counts stripes found holding lost sectors.
	StripesDamaged int
	// StripesQueued counts stripes newly handed to the repair queue
	// (damaged stripes already queued, unrecoverable, or dropped by the
	// bounded queue are not re-counted here).
	StripesQueued int
	// SectorsLost counts lost sectors seen across damaged stripes.
	SectorsLost int
}

// Scrub sweeps every stripe once, synchronously: it reads each sector
// (latent sector errors announce themselves at access time under the
// fail-stop sector model), counts damage, and feeds damaged stripes to
// the bounded repair queue. Use Quiesce to wait for the resulting
// repairs to converge.
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	buf := make([]byte, s.sectorSize)
	for stripe := 0; stripe < s.stripes; stripe++ {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return rep, ErrClosed
		}
		lost := 0
		for col := 0; col < s.n; col++ {
			for row := 0; row < s.r; row++ {
				if err := s.devs[col].ReadSector(s.devSector(stripe, row), buf); err != nil {
					lost++
				}
			}
		}
		rep.StripesChecked++
		s.c.scrubbedStripes.Add(1)
		if lost > 0 {
			rep.StripesDamaged++
			rep.SectorsLost += lost
			s.c.scrubHits.Add(1)
			wasPending := s.pending[stripe] || s.unrecoverable[stripe]
			s.enqueueRepairLocked(stripe)
			if !wasPending && s.pending[stripe] {
				rep.StripesQueued++
			}
		}
		// Release the lock between stripes so reads, writes and repairs
		// interleave with a sweep over a large volume.
		s.mu.Unlock()
	}
	return rep, nil
}

// StartScrubber starts a background goroutine running a full Scrub pass
// every interval until StopScrubber or Close. Only one scrubber can run
// at a time.
func (s *Store) StartScrubber(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("store: scrub interval %v must be positive", interval)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.scrubStop != nil {
		return fmt.Errorf("store: scrubber already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.scrubStop, s.scrubDone = stop, done
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if _, err := s.Scrub(); err != nil {
					return
				}
			}
		}
	}()
	return nil
}

// StopScrubber stops the background scrubber, if running, and waits for
// an in-flight pass to finish (repairs it queued keep draining; use
// Quiesce to wait for those).
func (s *Store) StopScrubber() {
	s.mu.Lock()
	stop, done := s.scrubStop, s.scrubDone
	s.scrubStop, s.scrubDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
