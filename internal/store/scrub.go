package store

import (
	"fmt"
	"time"
)

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	// StripesChecked counts stripes swept.
	StripesChecked int
	// StripesDamaged counts stripes found holding lost sectors.
	StripesDamaged int
	// StripesQueued counts stripes newly handed to the repair queue
	// (damaged stripes already queued, unrecoverable, or dropped by the
	// bounded queue are not re-counted here).
	StripesQueued int
	// SectorsLost counts lost sectors seen across damaged stripes.
	SectorsLost int
}

// Scrub sweeps every stripe once, synchronously: it reads each sector
// (latent sector errors announce themselves at access time under the
// fail-stop sector model), counts damage, and feeds damaged stripes to
// the bounded repair queue. Use Quiesce to wait for the resulting
// repairs to converge. Each stripe is swept under its own shard lock,
// so reads, writes and repairs on other stripes interleave with a
// sweep over a large volume.
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	if fn := s.testScrubErr; fn != nil {
		if err := fn(); err != nil {
			return rep, err
		}
	}
	buf := make([]byte, s.sectorSize)
	for stripe := 0; stripe < s.stripes; stripe++ {
		sh := s.shard(stripe)
		sh.mu.Lock()
		// Checked under the shard lock (as in ReadBlock): past Close's
		// per-shard flush sweep the devices may already be closed.
		if s.closed.Load() {
			sh.mu.Unlock()
			return rep, ErrClosed
		}
		lost := 0
		for col := 0; col < s.n; col++ {
			for row := 0; row < s.r; row++ {
				if err := s.devs[col].ReadSector(s.devSector(stripe, row), buf); err != nil {
					lost++
				}
			}
		}
		rep.StripesChecked++
		s.c.scrubbedStripes.Add(1)
		if lost > 0 {
			rep.StripesDamaged++
			rep.SectorsLost += lost
			s.c.scrubHits.Add(1)
			wasPending := sh.pending[stripe] || sh.unrecoverable[stripe]
			s.enqueueRepairLocked(sh, stripe)
			if !wasPending && sh.pending[stripe] {
				rep.StripesQueued++
			}
		}
		sh.mu.Unlock()
	}
	return rep, nil
}

// StartScrubber starts a background goroutine running a full Scrub pass
// every interval until StopScrubber or Close. Only one scrubber can run
// at a time.
func (s *Store) StartScrubber(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("store: scrub interval %v must be positive", interval)
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.scrubStop != nil {
		return fmt.Errorf("store: scrubber already running")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.scrubStop, s.scrubDone = stop, done
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(done)
		// Every exit path — including a pass failing, e.g. the store
		// closing mid-sweep — must release the scrubber slot, or
		// StartScrubber reports "already running" forever. StopScrubber
		// may have taken the slot already (it nils the fields before
		// closing stop), so only clear when it is still ours.
		defer func() {
			s.stateMu.Lock()
			if s.scrubDone == done {
				s.scrubStop, s.scrubDone = nil, nil
			}
			s.stateMu.Unlock()
		}()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-s.quit:
				// Close shuts the store down without knowing about a
				// scrubber started concurrently with it; exit promptly
				// rather than making wg.Wait sit out a full interval.
				return
			case <-ticker.C:
				if _, err := s.Scrub(); err != nil {
					return
				}
			}
		}
	}()
	return nil
}

// StopScrubber stops the background scrubber, if running, and waits for
// an in-flight pass to finish (repairs it queued keep draining; use
// Quiesce to wait for those).
func (s *Store) StopScrubber() {
	s.stateMu.Lock()
	stop, done := s.scrubStop, s.scrubDone
	s.scrubStop, s.scrubDone = nil, nil
	s.stateMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
