package store

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stair/internal/core"
)

// TestScrubberRestartAfterFailedPass: a background scrubber whose pass
// fails must release the scrubber slot on exit. PR 1 left
// s.scrubStop/s.scrubDone set, so StartScrubber reported "scrubber
// already running" forever after any failed pass.
func TestScrubberRestartAfterFailedPass(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var failOnce atomic.Bool
	failOnce.Store(true)
	s.testScrubErr = func() error {
		if failOnce.CompareAndSwap(true, false) {
			return errors.New("injected scrub failure")
		}
		return nil
	}
	if err := s.StartScrubber(ScrubberOptions{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// The first pass errors and kills the scrubber goroutine; the slot
	// must come free so a fresh scrubber can start.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.StartScrubber(ScrubberOptions{Interval: time.Millisecond})
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "already running") {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("scrubber slot never released after a failed pass")
		}
		time.Sleep(time.Millisecond)
	}
	s.StopScrubber()
}

// TestReplaceDeviceReconcilesUnrecoverableCounter: ReplaceDevice clears
// the unrecoverable marks, and the Stats counter must follow — PR 1
// reset only the map, so stripes re-marked after the replacement were
// double-counted.
func TestReplaceDeviceReconcilesUnrecoverableCounter(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// m+1 failed devices put every stripe outside coverage.
	for _, dev := range []int{0, 1, 2} {
		if err := s.FailDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	markAll := func() {
		for b := 0; b < s.Blocks(); b++ {
			s.ReadBlock(bg, b) // reads on dead devices mark their stripes
		}
	}
	markAll()
	if got := s.Stats().UnrecoverableStripes; got != uint64(s.stripes) {
		t.Fatalf("UnrecoverableStripes=%d after 3 device failures, want %d", got, s.stripes)
	}
	for _, dev := range []int{0, 1, 2} {
		if err := s.ReplaceDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().UnrecoverableStripes; got != 0 {
		t.Fatalf("UnrecoverableStripes=%d after ReplaceDevice cleared the marks, want 0", got)
	}
	// Without a rebuild the replacements hold only unwritten sectors:
	// three whole chunks per stripe are still lost, so reads re-mark
	// every stripe. The counter must match the marks, not accumulate.
	markAll()
	st := s.Stats()
	if got := len(s.UnrecoverableStripes()); got != s.stripes {
		t.Fatalf("%d stripes marked after re-read, want %d", got, s.stripes)
	}
	if st.UnrecoverableStripes != uint64(s.stripes) {
		t.Fatalf("UnrecoverableStripes=%d double-counts re-marked stripes, want %d",
			st.UnrecoverableStripes, s.stripes)
	}
}

// flakyDevice wraps MemDevice with transiently failing writes, to drive
// the partial-repair path: reconstruction succeeds but a write-back
// does not.
type flakyDevice struct {
	*MemDevice
	failWrites atomic.Int32 // fail this many upcoming WriteSectors calls
}

func (d *flakyDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if d.failWrites.Load() > 0 {
		d.failWrites.Add(-1)
		return errors.New("store: transient write failure")
	}
	return d.MemDevice.WriteSectors(ctx, start, data)
}

// TestPartialRepairRequeuedAndCountedOnce: a repair whose write-backs
// partially fail must not count the stripe as repaired (PR 1 counted it
// when *any* sector landed) and must re-enqueue it so the retry heals
// the rest.
func TestPartialRepairRequeuedAndCountedOnce(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	const (
		stripes = 2
		sector  = 128
	)
	flaky := &flakyDevice{MemDevice: NewMemDevice(stripes*code.R(), sector)}
	devs := make([]Device, code.N())
	for i := range devs {
		devs[i] = NewMemDevice(stripes*code.R(), sector)
	}
	devs[2] = flaky
	s, err := Open(Config{Code: code, SectorSize: sector, Stripes: stripes, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// Two lost sectors on stripe 0, one of them on the flaky device;
	// its first write-back attempt will fail.
	if err := s.InjectSectorError(1, s.devSector(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectSectorError(2, s.devSector(0, 1)); err != nil {
		t.Fatal(err)
	}
	flaky.failWrites.Store(1)
	if _, err := s.Scrub(bg); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	// Without the re-enqueue the flaky sector stays bad forever (until
	// an unrelated scrub) while RepairedStripes already claimed success.
	if got := s.TotalBadSectors(); got != 0 {
		t.Fatalf("TotalBadSectors=%d after Quiesce, want 0 (partial repair not retried)", got)
	}
	st := s.Stats()
	if st.RepairedStripes != 1 {
		t.Errorf("RepairedStripes=%d, want 1 (only the fully-healed stripe counts)", st.RepairedStripes)
	}
	if st.RepairedSectors != 2 {
		t.Errorf("RepairedSectors=%d, want 2", st.RepairedSectors)
	}
	checkAllBlocks(t, s)
	checkStripesConsistent(t, s)
}

// writeCanceller, shared by a set of cancelOnWriteDevice wrappers,
// cancels an armed context on the next device write anywhere in the
// store — simulating a caller whose deadline expires exactly as an
// eviction's write-back begins.
type writeCanceller struct {
	armed atomic.Pointer[context.CancelFunc]
}

type cancelOnWriteDevice struct {
	*MemDevice
	c *writeCanceller
}

func (d *cancelOnWriteDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if fn := d.c.armed.Swap(nil); fn != nil {
		(*fn)()
	}
	return d.MemDevice.WriteSectors(ctx, start, data)
}

// TestEvictionFlushErrorKeepsAccounting: a flushStripeLocked failure on
// the maxDirty eviction path must leave dirtyCount consistent with the
// per-shard dirty maps and keep the victim's buffer retryable — a later
// Flush with a live context lands everything.
func TestEvictionFlushErrorKeepsAccounting(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	canceller := &writeCanceller{}
	devs := make([]Device, code.N())
	for i := range devs {
		devs[i] = &cancelOnWriteDevice{MemDevice: NewMemDevice(4*code.R(), 128), c: canceller}
	}
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 4, Devices: devs, MaxDirtyStripes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	checkAccounting := func(when string) int {
		t.Helper()
		buffered := 0
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			buffered += len(sh.dirty)
			sh.mu.Unlock()
		}
		if got := int(s.dirtyCount.Load()); got != buffered {
			t.Fatalf("%s: dirtyCount=%d but per-shard maps hold %d buffers", when, got, buffered)
		}
		return buffered
	}

	// Two partial buffers under the bound, then a third write that
	// overflows it — with the canceller armed, the eviction's
	// write-back dies on a cancelled context.
	for stripe := 0; stripe < 2; stripe++ {
		if err := s.WriteBlock(bg, stripe*s.perStripe, blockData(stripe, s.BlockSize())); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	canceller.armed.Store(&cancel)
	err = s.WriteBlock(ctx, 2*s.perStripe, blockData(2, s.BlockSize()))
	if err == nil {
		t.Fatal("eviction under a dying context reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("eviction error %v, want context.Canceled", err)
	}
	// The requested write is buffered, the victim's buffer survives,
	// and the aggregate matches the maps exactly.
	if got := checkAccounting("after failed eviction"); got != 3 {
		t.Fatalf("%d stripes buffered after failed eviction, want 3 (nothing lost)", got)
	}

	// Retry with a live context: every buffer — including the stuck
	// victim — lands.
	if err := s.Flush(bg); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if got := checkAccounting("after retry"); got != 0 {
		t.Fatalf("%d stripes still buffered after retry", got)
	}
	for stripe := 0; stripe < 3; stripe++ {
		got, err := s.ReadBlock(bg, stripe*s.perStripe)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockData(stripe, s.BlockSize())) {
			t.Fatalf("stripe %d's write lost across the failed eviction", stripe)
		}
	}
	checkStripesConsistent(t, s)
}

// TestRepairQueueOrdersByRisk: the queue serves the highest-risk
// request first and breaks ties FIFO.
func TestRepairQueueOrdersByRisk(t *testing.T) {
	q := newRepairQueue(8)
	for i, risk := range []int{1, 5, 3, 5} {
		if !q.push(repairReq{stripe: i, risk: risk}) {
			t.Fatalf("push %d refused", i)
		}
	}
	var got []int
	for i := 0; i < 4; i++ {
		req, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, req.stripe)
	}
	want := []int{1, 3, 2, 0} // risk 5 (FIFO: stripes 1 then 3), then 3, then 1
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if !q.push(repairReq{stripe: 9}) {
		t.Fatal("push refused on drained queue")
	}
	q.close()
	if req, ok := q.pop(); !ok || req.stripe != 9 {
		t.Fatalf("pop after close = (%+v, %v), want the remaining request", req, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop reported a request on a closed empty queue")
	}
	if q.push(repairReq{stripe: 10}) {
		t.Fatal("push accepted on a closed queue")
	}
}

// gateDevice wraps a MemDevice and blocks reads of its first gateRows
// sectors until released — it parks a repair worker mid-loadStripe so a
// test can stage the repair queue behind it.
type gateDevice struct {
	*MemDevice
	gateRows int
	entered  chan struct{} // closed when the first gated read arrives
	release  chan struct{}
	once     sync.Once
}

func (d *gateDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if start < d.gateRows {
		d.once.Do(func() { close(d.entered) })
		<-d.release
	}
	return d.MemDevice.ReadSectors(ctx, start, bufs)
}

// TestRepairPrioritisesAtEdgeStripe: with a single repair worker parked
// on a gated stripe, a stripe at the code's coverage edge (3 lost
// sectors under e=(1,2)) queued *after* a one-sector stripe must still
// be repaired first — the regression half of the scrub-pacing roadmap
// item.
func TestRepairPrioritisesAtEdgeStripe(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	const stripes = 4
	gate := &gateDevice{
		MemDevice: NewMemDevice(stripes*code.R(), 128),
		gateRows:  code.R(), // stripe 0's extent
		entered:   make(chan struct{}),
		release:   make(chan struct{}),
	}
	devs := make([]Device, code.N())
	for i := range devs {
		devs[i] = NewMemDevice(stripes*code.R(), 128)
	}
	devs[5] = gate
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: stripes, Devices: devs, RepairWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var mu sync.Mutex
	var order []int
	s.testRepairObserve = func(stripe int) {
		mu.Lock()
		order = append(order, stripe)
		mu.Unlock()
	}
	fillStore(t, s)

	// Park the only repair worker on stripe 0: its loadStripe blocks on
	// the gated device.
	if err := s.InjectSectorError(1, s.devSector(0, 0)); err != nil {
		t.Fatal(err)
	}
	sh := s.shard(0)
	sh.mu.Lock()
	s.enqueueRepairLocked(sh, 0, 1)
	sh.mu.Unlock()
	<-gate.entered

	// Now stage the queue: first a one-sector stripe, then an at-edge
	// stripe with three lost sectors (1+2 across two devices — the
	// boundary of e=(1,2) coverage).
	if err := s.InjectSectorError(1, s.devSector(1, 0)); err != nil {
		t.Fatal(err)
	}
	sh1 := s.shard(1)
	sh1.mu.Lock()
	s.enqueueRepairLocked(sh1, 1, 1)
	sh1.mu.Unlock()
	for _, inj := range []struct{ dev, row int }{{1, 0}, {2, 0}, {2, 1}} {
		if err := s.InjectSectorError(inj.dev, s.devSector(2, inj.row)); err != nil {
			t.Fatal(err)
		}
	}
	sh2 := s.shard(2)
	sh2.mu.Lock()
	s.enqueueRepairLocked(sh2, 2, 3)
	sh2.mu.Unlock()

	close(gate.release)
	s.Quiesce()
	mu.Lock()
	got := append([]int(nil), order...)
	mu.Unlock()
	want := []int{0, 2, 1} // the parked stripe, then at-edge before the earlier-queued single
	if len(got) != len(want) {
		t.Fatalf("repair order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("repair order %v: at-edge stripe 2 must be repaired before stripe 1 (want %v)", got, want)
		}
	}
	if bad := s.TotalBadSectors(); bad != 0 {
		t.Fatalf("%d bad sectors after repairs converged", bad)
	}
	checkAllBlocks(t, s)
	checkStripesConsistent(t, s)
}

// TestDegradedReadCache: repeated reads of a still-degraded stripe are
// served from the cached reconstruction instead of re-running the
// upstairs decode per block, and writes invalidate the entry.
func TestDegradedReadCache(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// A wholly failed device keeps its stripes degraded: repair has
	// nowhere to write the lost cells back until a replacement.
	if err := s.FailDevice(1); err != nil {
		t.Fatal(err)
	}
	var deadBlocks []int
	for b := 0; b < s.perStripe; b++ {
		if s.dataCells[b].Col == 1 {
			deadBlocks = append(deadBlocks, b)
		}
	}
	if len(deadBlocks) < 2 {
		t.Fatalf("test needs ≥ 2 data cells on device 1, have %d", len(deadBlocks))
	}
	for _, b := range deadBlocks {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockData(b, s.BlockSize())) {
			t.Fatalf("block %d corrupt through the cache path", b)
		}
	}
	st := s.Stats()
	if st.DegradedReads != uint64(len(deadBlocks)) {
		t.Errorf("DegradedReads=%d, want %d", st.DegradedReads, len(deadBlocks))
	}
	// Only the first read pays the decode; the rest hit the cache.
	if want := uint64(len(deadBlocks) - 1); st.DegradedCacheHits != want {
		t.Errorf("DegradedCacheHits=%d, want %d", st.DegradedCacheHits, want)
	}
	if got := s.cache.size(); got != 1 {
		t.Errorf("cache holds %d stripes, want 1", got)
	}
	// A write to the stripe invalidates the cached reconstruction; the
	// next degraded read must reflect the new content.
	victim := deadBlocks[0]
	if err := s.WriteBlock(bg, victim, blockData(victim+999, s.BlockSize())); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	if got := s.cache.size(); got != 0 {
		t.Errorf("cache holds %d stripes after a flush of the cached stripe, want 0", got)
	}
	got, err := s.ReadBlock(bg, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockData(victim+999, s.BlockSize())) {
		t.Fatal("cached stale reconstruction served after an overwrite")
	}
}

// TestDegradedCacheDisabled: DegradedCache < 0 turns the cache off.
func TestDegradedCacheDisabled(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2, DegradedCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	if err := s.FailDevice(1); err != nil {
		t.Fatal(err)
	}
	checkAllBlocks(t, s)
	st := s.Stats()
	if st.DegradedReads == 0 {
		t.Fatal("no degraded reads with a failed device")
	}
	if st.DegradedCacheHits != 0 {
		t.Errorf("DegradedCacheHits=%d with the cache disabled", st.DegradedCacheHits)
	}
}
