package store

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stair/internal/core"
)

// TestScrubberRestartAfterFailedPass: a background scrubber whose pass
// fails must release the scrubber slot on exit. PR 1 left
// s.scrubStop/s.scrubDone set, so StartScrubber reported "scrubber
// already running" forever after any failed pass.
func TestScrubberRestartAfterFailedPass(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var failOnce atomic.Bool
	failOnce.Store(true)
	s.testScrubErr = func() error {
		if failOnce.CompareAndSwap(true, false) {
			return errors.New("injected scrub failure")
		}
		return nil
	}
	if err := s.StartScrubber(ScrubberOptions{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// The first pass errors and kills the scrubber goroutine; the slot
	// must come free so a fresh scrubber can start.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.StartScrubber(ScrubberOptions{Interval: time.Millisecond})
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "already running") {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("scrubber slot never released after a failed pass")
		}
		time.Sleep(time.Millisecond)
	}
	s.StopScrubber()
}

// TestReplaceDeviceReconcilesUnrecoverableCounter: ReplaceDevice clears
// the unrecoverable marks, and the Stats counter must follow — PR 1
// reset only the map, so stripes re-marked after the replacement were
// double-counted.
func TestReplaceDeviceReconcilesUnrecoverableCounter(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// m+1 failed devices put every stripe outside coverage.
	for _, dev := range []int{0, 1, 2} {
		if err := s.FailDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	markAll := func() {
		for b := 0; b < s.Blocks(); b++ {
			s.ReadBlock(bg, b) // reads on dead devices mark their stripes
		}
	}
	markAll()
	if got := s.Stats().UnrecoverableStripes; got != uint64(s.stripes) {
		t.Fatalf("UnrecoverableStripes=%d after 3 device failures, want %d", got, s.stripes)
	}
	for _, dev := range []int{0, 1, 2} {
		if err := s.ReplaceDevice(dev); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().UnrecoverableStripes; got != 0 {
		t.Fatalf("UnrecoverableStripes=%d after ReplaceDevice cleared the marks, want 0", got)
	}
	// Without a rebuild the replacements hold only unwritten sectors:
	// three whole chunks per stripe are still lost, so reads re-mark
	// every stripe. The counter must match the marks, not accumulate.
	markAll()
	st := s.Stats()
	if got := len(s.UnrecoverableStripes()); got != s.stripes {
		t.Fatalf("%d stripes marked after re-read, want %d", got, s.stripes)
	}
	if st.UnrecoverableStripes != uint64(s.stripes) {
		t.Fatalf("UnrecoverableStripes=%d double-counts re-marked stripes, want %d",
			st.UnrecoverableStripes, s.stripes)
	}
}

// flakyDevice wraps MemDevice with transiently failing writes, to drive
// the partial-repair path: reconstruction succeeds but a write-back
// does not.
type flakyDevice struct {
	*MemDevice
	failWrites atomic.Int32 // fail this many upcoming WriteSectors calls
}

func (d *flakyDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if d.failWrites.Load() > 0 {
		d.failWrites.Add(-1)
		return errors.New("store: transient write failure")
	}
	return d.MemDevice.WriteSectors(ctx, start, data)
}

// TestPartialRepairRequeuedAndCountedOnce: a repair whose write-backs
// partially fail must not count the stripe as repaired (PR 1 counted it
// when *any* sector landed) and must re-enqueue it so the retry heals
// the rest.
func TestPartialRepairRequeuedAndCountedOnce(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	const (
		stripes = 2
		sector  = 128
	)
	flaky := &flakyDevice{MemDevice: NewMemDevice(stripes*code.R(), sector)}
	devs := make([]Device, code.N())
	for i := range devs {
		devs[i] = NewMemDevice(stripes*code.R(), sector)
	}
	devs[2] = flaky
	s, err := Open(Config{Code: code, SectorSize: sector, Stripes: stripes, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// Two lost sectors on stripe 0, one of them on the flaky device;
	// its first write-back attempt will fail.
	if err := s.InjectSectorError(1, s.devSector(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectSectorError(2, s.devSector(0, 1)); err != nil {
		t.Fatal(err)
	}
	flaky.failWrites.Store(1)
	if _, err := s.Scrub(bg); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	// Without the re-enqueue the flaky sector stays bad forever (until
	// an unrelated scrub) while RepairedStripes already claimed success.
	if got := s.TotalBadSectors(); got != 0 {
		t.Fatalf("TotalBadSectors=%d after Quiesce, want 0 (partial repair not retried)", got)
	}
	st := s.Stats()
	if st.RepairedStripes != 1 {
		t.Errorf("RepairedStripes=%d, want 1 (only the fully-healed stripe counts)", st.RepairedStripes)
	}
	if st.RepairedSectors != 2 {
		t.Errorf("RepairedSectors=%d, want 2", st.RepairedSectors)
	}
	checkAllBlocks(t, s)
	checkStripesConsistent(t, s)
}

// TestDegradedReadCache: repeated reads of a still-degraded stripe are
// served from the cached reconstruction instead of re-running the
// upstairs decode per block, and writes invalidate the entry.
func TestDegradedReadCache(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	// A wholly failed device keeps its stripes degraded: repair has
	// nowhere to write the lost cells back until a replacement.
	if err := s.FailDevice(1); err != nil {
		t.Fatal(err)
	}
	var deadBlocks []int
	for b := 0; b < s.perStripe; b++ {
		if s.dataCells[b].Col == 1 {
			deadBlocks = append(deadBlocks, b)
		}
	}
	if len(deadBlocks) < 2 {
		t.Fatalf("test needs ≥ 2 data cells on device 1, have %d", len(deadBlocks))
	}
	for _, b := range deadBlocks {
		got, err := s.ReadBlock(bg, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockData(b, s.BlockSize())) {
			t.Fatalf("block %d corrupt through the cache path", b)
		}
	}
	st := s.Stats()
	if st.DegradedReads != uint64(len(deadBlocks)) {
		t.Errorf("DegradedReads=%d, want %d", st.DegradedReads, len(deadBlocks))
	}
	// Only the first read pays the decode; the rest hit the cache.
	if want := uint64(len(deadBlocks) - 1); st.DegradedCacheHits != want {
		t.Errorf("DegradedCacheHits=%d, want %d", st.DegradedCacheHits, want)
	}
	if got := s.cache.size(); got != 1 {
		t.Errorf("cache holds %d stripes, want 1", got)
	}
	// A write to the stripe invalidates the cached reconstruction; the
	// next degraded read must reflect the new content.
	victim := deadBlocks[0]
	if err := s.WriteBlock(bg, victim, blockData(victim+999, s.BlockSize())); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	if got := s.cache.size(); got != 0 {
		t.Errorf("cache holds %d stripes after a flush of the cached stripe, want 0", got)
	}
	got, err := s.ReadBlock(bg, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockData(victim+999, s.BlockSize())) {
		t.Fatal("cached stale reconstruction served after an overwrite")
	}
}

// TestDegradedCacheDisabled: DegradedCache < 0 turns the cache off.
func TestDegradedCacheDisabled(t *testing.T) {
	code := testCode(t, core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	s, err := Open(Config{Code: code, SectorSize: 128, Stripes: 2, DegradedCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	if err := s.FailDevice(1); err != nil {
		t.Fatal(err)
	}
	checkAllBlocks(t, s)
	st := s.Stats()
	if st.DegradedReads == 0 {
		t.Fatal("no degraded reads with a failed device")
	}
	if st.DegradedCacheHits != 0 {
		t.Errorf("DegradedCacheHits=%d with the cache disabled", st.DegradedCacheHits)
	}
}
