package gf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var testWidths = []int{4, 8, 16}

func TestNewFieldSupportedWidths(t *testing.T) {
	for _, w := range testWidths {
		f, err := NewField(w)
		if err != nil {
			t.Fatalf("NewField(%d): %v", w, err)
		}
		if f.W() != w {
			t.Errorf("W() = %d, want %d", f.W(), w)
		}
		if f.Size() != 1<<w {
			t.Errorf("Size() = %d, want %d", f.Size(), 1<<w)
		}
	}
}

func TestNewFieldUnsupportedWidths(t *testing.T) {
	for _, w := range []int{0, 1, 2, 3, 5, 7, 9, 12, 17, 32, -1} {
		if _, err := NewField(w); err == nil {
			t.Errorf("NewField(%d): want error, got nil", w)
		}
	}
}

func TestGetCachesInstances(t *testing.T) {
	a := Get(8)
	b := Get(8)
	if a != b {
		t.Error("Get(8) returned distinct instances")
	}
}

func TestGetPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get(3) did not panic")
		}
	}()
	Get(3)
}

// TestFieldAxioms exhaustively checks the field axioms for w=4 and spot
// checks them for w=8 and w=16 with testing/quick.
func TestFieldAxiomsExhaustiveW4(t *testing.T) {
	f := Get(4)
	n := uint32(16)
	for a := uint32(0); a < n; a++ {
		for b := uint32(0); b < n; b++ {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("commutativity fails at %d,%d", a, b)
			}
			for c := uint32(0); c < n; c++ {
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("associativity fails at %d,%d,%d", a, b, c)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
	for a := uint32(1); a < n; a++ {
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("inverse fails at %d", a)
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, w := range []int{8, 16} {
		f := Get(w)
		mask := uint32(1<<w) - 1
		commut := func(a, b uint32) bool {
			a, b = a&mask, b&mask
			return f.Mul(a, b) == f.Mul(b, a)
		}
		assoc := func(a, b, c uint32) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
		}
		distrib := func(a, b, c uint32) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		identity := func(a uint32) bool {
			a &= mask
			return f.Mul(a, 1) == a && f.Add(a, 0) == a
		}
		inverse := func(a uint32) bool {
			a &= mask
			if a == 0 {
				return true
			}
			return f.Mul(a, f.Inv(a)) == 1
		}
		for name, fn := range map[string]any{
			"commutativity":  commut,
			"associativity":  assoc,
			"distributivity": distrib,
			"identity":       identity,
			"inverse":        inverse,
		} {
			if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
				t.Errorf("w=%d %s: %v", w, name, err)
			}
		}
	}
}

func TestMulByZero(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		for a := uint32(0); a < 64; a++ {
			if f.Mul(a, 0) != 0 || f.Mul(0, a) != 0 {
				t.Errorf("w=%d: a·0 != 0 for a=%d", w, a)
			}
		}
	}
}

func TestDiv(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 500; i++ {
			a := uint32(rng.Intn(f.Size()))
			b := uint32(1 + rng.Intn(f.Size()-1))
			q := f.Div(a, b)
			if f.Mul(q, b) != a {
				t.Fatalf("w=%d: (%d/%d)·%d = %d, want %d", w, a, b, b, f.Mul(q, b), a)
			}
		}
		if f.Div(0, 5) != 0 {
			t.Errorf("w=%d: 0/5 != 0", w)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	f := Get(8)
	defer func() {
		if recover() == nil {
			t.Error("Div by zero did not panic")
		}
	}()
	f.Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	f := Get(8)
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}

func TestExp(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		for _, a := range []uint32{0, 1, 2, 3, 7, uint32(f.Size() - 1)} {
			got := uint32(1)
			for n := 0; n < 20; n++ {
				if e := f.Exp(a, n); e != got {
					if !(a == 0 && n == 0) { // 0^0 defined as 1
						t.Fatalf("w=%d: Exp(%d,%d) = %d, want %d", w, a, n, e, got)
					}
				}
				got = f.Mul(got, a)
			}
		}
		if f.Exp(0, 0) != 1 {
			t.Errorf("w=%d: Exp(0,0) != 1", w)
		}
		if f.Exp(0, 5) != 0 {
			t.Errorf("w=%d: Exp(0,5) != 0", w)
		}
	}
}

// TestExpOrder verifies that the generator has full multiplicative order,
// i.e. the chosen polynomial is primitive.
func TestExpOrder(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		seen := make(map[uint32]bool)
		x := uint32(1)
		for i := 0; i < f.Size()-1; i++ {
			if seen[x] {
				t.Fatalf("w=%d: generator order < 2^w-1 (repeat at step %d)", w, i)
			}
			seen[x] = true
			x = f.Mul(x, 2)
		}
		if x != 1 {
			t.Fatalf("w=%d: g^(2^w-1) = %d, want 1", w, x)
		}
	}
}

func randRegion(rng *rand.Rand, n int, f *Field) []byte {
	b := make([]byte, n)
	rng.Read(b)
	if f.W() == 4 {
		for i := range b {
			b[i] &= 0x0f
		}
	}
	return b
}

func TestMultXORMatchesScalar(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		rng := rand.New(rand.NewSource(int64(w)))
		n := 64 * f.SymbolBytes()
		for trial := 0; trial < 50; trial++ {
			src := randRegion(rng, n, f)
			dst := randRegion(rng, n, f)
			c := uint32(rng.Intn(f.Size()))
			want := make([]byte, n)
			copy(want, dst)
			for i := 0; i < f.SymbolsPerRegion(n); i++ {
				v := f.Add(f.ReadSymbol(want, i), f.Mul(c, f.ReadSymbol(src, i)))
				f.WriteSymbol(want, i, v)
			}
			f.MultXOR(dst, src, c)
			if !bytes.Equal(dst, want) {
				t.Fatalf("w=%d c=%d: MultXOR disagrees with scalar arithmetic", w, c)
			}
		}
	}
}

func TestMultRegionMatchesScalar(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		rng := rand.New(rand.NewSource(int64(w) * 7))
		n := 48 * f.SymbolBytes()
		for trial := 0; trial < 50; trial++ {
			src := randRegion(rng, n, f)
			dst := make([]byte, n)
			c := uint32(rng.Intn(f.Size()))
			f.MultRegion(dst, src, c)
			for i := 0; i < f.SymbolsPerRegion(n); i++ {
				want := f.Mul(c, f.ReadSymbol(src, i))
				if got := f.ReadSymbol(dst, i); got != want {
					t.Fatalf("w=%d c=%d sym %d: got %d want %d", w, c, i, got, want)
				}
			}
		}
	}
}

func TestMultXORByOneIsXOR(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		n := 32 * f.SymbolBytes()
		rng := rand.New(rand.NewSource(9))
		src := randRegion(rng, n, f)
		dst := randRegion(rng, n, f)
		want := make([]byte, n)
		copy(want, dst)
		XORRegion(want, src)
		f.MultXOR(dst, src, 1)
		if !bytes.Equal(dst, want) {
			t.Errorf("w=%d: MultXOR by 1 != XOR", w)
		}
	}
}

func TestMultXORByZeroIsNoop(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		n := 32 * f.SymbolBytes()
		rng := rand.New(rand.NewSource(11))
		src := randRegion(rng, n, f)
		dst := randRegion(rng, n, f)
		want := make([]byte, n)
		copy(want, dst)
		f.MultXOR(dst, src, 0)
		if !bytes.Equal(dst, want) {
			t.Errorf("w=%d: MultXOR by 0 modified dst", w)
		}
	}
}

func TestMultXORLinearity(t *testing.T) {
	// c1·x ^ c2·x == (c1+c2)·x, applied region-wise.
	for _, w := range testWidths {
		f := Get(w)
		rng := rand.New(rand.NewSource(13))
		n := 40 * f.SymbolBytes()
		src := randRegion(rng, n, f)
		c1 := uint32(rng.Intn(f.Size()))
		c2 := uint32(rng.Intn(f.Size()))
		a := make([]byte, n)
		f.MultXOR(a, src, c1)
		f.MultXOR(a, src, c2)
		b := make([]byte, n)
		f.MultXOR(b, src, f.Add(c1, c2))
		if !bytes.Equal(a, b) {
			t.Errorf("w=%d: region linearity violated", w)
		}
	}
}

func TestRegionLengthMismatchPanics(t *testing.T) {
	f := Get(8)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	f.MultXOR(make([]byte, 4), make([]byte, 8), 3)
}

func TestW16OddRegionPanics(t *testing.T) {
	f := Get(16)
	defer func() {
		if recover() == nil {
			t.Error("odd region for w=16 did not panic")
		}
	}()
	f.MultXOR(make([]byte, 3), make([]byte, 3), 3)
}

func TestReadWriteSymbolRoundtrip(t *testing.T) {
	for _, w := range testWidths {
		f := Get(w)
		region := make([]byte, 16*f.SymbolBytes())
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 16; i++ {
			v := uint32(rng.Intn(f.Size()))
			f.WriteSymbol(region, i, v)
			if got := f.ReadSymbol(region, i); got != v {
				t.Fatalf("w=%d: roundtrip sym %d: got %d want %d", w, i, got, v)
			}
		}
	}
}

func TestXORRegionSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := make([]byte, 100)
	b := make([]byte, 100)
	rng.Read(a)
	rng.Read(b)
	orig := make([]byte, 100)
	copy(orig, a)
	XORRegion(a, b)
	XORRegion(a, b)
	if !bytes.Equal(a, orig) {
		t.Error("double XOR did not restore original")
	}
}

func TestZero(t *testing.T) {
	b := []byte{1, 2, 3, 4, 5}
	Zero(b)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d not zeroed: %d", i, v)
		}
	}
}

func BenchmarkMultXORW8(b *testing.B) {
	f := Get(8)
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MultXOR(dst, src, 0x53)
	}
}

func BenchmarkMultXORW16(b *testing.B) {
	f := Get(16)
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MultXOR(dst, src, 0x1234)
	}
}

func BenchmarkXORRegion(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORRegion(dst, src)
	}
}
