//go:build amd64 && !purego

package gf

// amd64 SIMD kernels: the GF-Complete split-table scheme (Plank et al.),
// 4-bit table lookups done 16 bytes per PSHUFB (SSSE3) or 32 bytes per
// VPSHUFB (AVX2). Each 16-byte lane holds the low- and high-nibble
// product tables of MulTable; a vector of source bytes is split into
// nibbles, both halves are shuffled through the tables and XORed
// together, yielding 16/32 products per iteration of the inner loop.
//
// The assembly handles only whole vectors; every wrapper finishes the
// ragged remainder through the shared scalar tails in kernel.go so all
// kernels agree byte-for-byte on every length.

// Assembly routines (kernel_amd64.s). n must be a positive multiple of
// the vector width: 16 for the SSSE3/SSE2 routines, 32 for AVX2.
//
//go:noescape
func multXORSSSE3(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func mulRegionSSSE3(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func xorRegionSSE2(dst, src *byte, n int)

//go:noescape
func multXORAVX2(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func mulRegionAVX2(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func xorRegionAVX2(dst, src *byte, n int)

// cpuid executes CPUID with the given leaf/subleaf; xgetbv reads
// XCR0. Both are defined in kernel_amd64.s — the standard library's
// feature flags live in internal packages this module cannot import.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

type ssse3Kernel struct{}

func (ssse3Kernel) Name() string { return "ssse3" }

func (ssse3Kernel) MultXOR(dst, src []byte, t *MulTable) {
	n := len(src) &^ 15
	if n > 0 {
		multXORSSSE3(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	multXORTail(dst[n:], src[n:], t)
}

func (ssse3Kernel) MulRegion(dst, src []byte, t *MulTable) {
	n := len(src) &^ 15
	if n > 0 {
		mulRegionSSSE3(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	mulRegionTail(dst[n:], src[n:], t)
}

func (ssse3Kernel) XORRegion(dst, src []byte) {
	n := len(src) &^ 15
	if n > 0 {
		xorRegionSSE2(&dst[0], &src[0], n)
	}
	xorTail(dst[n:], src[n:])
}

type avx2Kernel struct{}

func (avx2Kernel) Name() string { return "avx2" }

func (avx2Kernel) MultXOR(dst, src []byte, t *MulTable) {
	n := len(src) &^ 31
	if n > 0 {
		multXORAVX2(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	multXORTail(dst[n:], src[n:], t)
}

func (avx2Kernel) MulRegion(dst, src []byte, t *MulTable) {
	n := len(src) &^ 31
	if n > 0 {
		mulRegionAVX2(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	mulRegionTail(dst[n:], src[n:], t)
}

func (avx2Kernel) XORRegion(dst, src []byte) {
	n := len(src) &^ 31
	if n > 0 {
		xorRegionAVX2(&dst[0], &src[0], n)
	}
	xorTail(dst[n:], src[n:])
}

func init() {
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidSSSE3   = 1 << 9
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidSSSE3 != 0 {
		registerKernel(ssse3Kernel{}, 2)
	}
	// AVX2 needs the CPU bit, plus OSXSAVE and the OS having enabled
	// XMM+YMM state in XCR0 (bits 1 and 2) — a kernel that context-
	// switches without YMM state would corrupt our registers.
	if ecx1&cpuidOSXSAVE != 0 && ecx1&cpuidAVX != 0 {
		if xcr0, _ := xgetbv(); xcr0&0x6 == 0x6 {
			if _, ebx7, _, _ := cpuid(7, 0); ebx7&(1<<5) != 0 {
				registerKernel(avx2Kernel{}, 3)
			}
		}
	}
}
