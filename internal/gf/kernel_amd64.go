//go:build amd64 && !purego

package gf

// amd64 SIMD kernels: the GF-Complete split-table scheme (Plank et al.),
// 4-bit table lookups done 16 bytes per PSHUFB (SSSE3) or 32 bytes per
// VPSHUFB (AVX2). Each 16-byte lane holds the low- and high-nibble
// product tables of MulTable; a vector of source bytes is split into
// nibbles, both halves are shuffled through the tables and XORed
// together, yielding 16/32 products per iteration of the inner loop.
//
// The assembly handles only whole vectors; every wrapper finishes the
// ragged remainder through the shared scalar tails in kernel.go so all
// kernels agree byte-for-byte on every length.

// Assembly routines (kernel_amd64.s). n must be a positive multiple of
// the vector width: 16 for the SSSE3/SSE2 routines, 32 for AVX2.
//
//go:noescape
func multXORSSSE3(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func mulRegionSSSE3(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func xorRegionSSE2(dst, src *byte, n int)

//go:noescape
func multXORAVX2(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func mulRegionAVX2(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func xorRegionAVX2(dst, src *byte, n int)

// Fused routines: one pass over src updating every destination, the
// source block register-resident across destinations.
//
// The SSSE3 form takes the destination set as slices: the assembly walks
// the dsts slice headers and loads each MulTable's nibble tables at
// their fixed struct offsets — pinned by the constant assertions next to
// MulTable in kernel.go. len(src) must be a positive multiple of 32;
// every dsts[i] must be at least len(src) bytes, len(tabs) == len(dsts).
//
// The AVX2 forms are fixed-arity (4- and 2-destination) so all split
// tables live in YMM registers for the whole region — no per-block table
// broadcasts or pointer chasing; the wrapper chunks arbitrary fan-out
// over them. n must be a positive multiple of 64.
//
//go:noescape
func multXORFusedSSSE3(dsts [][]byte, tabs []*MulTable, src []byte)

//go:noescape
func multXORFused4AVX2(d0, d1, d2, d3, src *byte, n int, t0, t1, t2, t3 *MulTable)

//go:noescape
func multXORFused2AVX2(d0, d1, src *byte, n int, t0, t1 *MulTable)

// GFNI routines: one VGF2P8AFFINEQB per 32 bytes against the
// coefficient's 8×8 bit matrix (MulTable.Gfni) — no nibble split, no
// table shuffles, and the affine unit runs on two ports. n must be a
// positive multiple of 32 (64 for the fused forms).
//
//go:noescape
func multXORGFNI(dst, src *byte, n int, mat uint64)

//go:noescape
func mulRegionGFNI(dst, src *byte, n int, mat uint64)

//go:noescape
func multXORFused4GFNI(d0, d1, d2, d3, src *byte, n int, m0, m1, m2, m3 uint64)

//go:noescape
func multXORFused2GFNI(d0, d1, src *byte, n int, m0, m1 uint64)

//go:noescape
func mulRegionFused4GFNI(d0, d1, d2, d3, src *byte, n int, m0, m1, m2, m3 uint64)

// EVEX/ZMM GFNI forms: 64 products per affine. n must be a positive
// multiple of 64.
//
//go:noescape
func multXORGFNI512(dst, src *byte, n int, mat uint64)

//go:noescape
func mulRegionGFNI512(dst, src *byte, n int, mat uint64)

//go:noescape
func multXORFused4GFNI512(d0, d1, d2, d3, src *byte, n int, m0, m1, m2, m3 uint64)

//go:noescape
func multXORFused2GFNI512(d0, d1, src *byte, n int, m0, m1 uint64)

//go:noescape
func mulRegionFused4GFNI512(d0, d1, d2, d3, src *byte, n int, m0, m1, m2, m3 uint64)

// cpuid executes CPUID with the given leaf/subleaf; xgetbv reads
// XCR0. Both are defined in kernel_amd64.s — the standard library's
// feature flags live in internal packages this module cannot import.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

type ssse3Kernel struct{}

func (ssse3Kernel) Name() string { return "ssse3" }

func (ssse3Kernel) MultXOR(dst, src []byte, t *MulTable) {
	n := len(src) &^ 15
	if n > 0 {
		multXORSSSE3(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	multXORTail(dst[n:], src[n:], t)
}

func (ssse3Kernel) MulRegion(dst, src []byte, t *MulTable) {
	n := len(src) &^ 15
	if n > 0 {
		mulRegionSSSE3(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	mulRegionTail(dst[n:], src[n:], t)
}

func (ssse3Kernel) XORRegion(dst, src []byte) {
	n := len(src) &^ 15
	if n > 0 {
		xorRegionSSE2(&dst[0], &src[0], n)
	}
	xorTail(dst[n:], src[n:])
}

func (k ssse3Kernel) MultXORFused(dsts [][]byte, src []byte, tables []*MulTable) {
	n := len(src) &^ 31
	if n > 0 && len(dsts) > 0 {
		multXORFusedSSSE3(dsts, tables, src[:n])
	}
	for i, d := range dsts {
		k.MultXOR(d[n:len(src)], src[n:], tables[i])
	}
}

func (k ssse3Kernel) MulRegionFused(dsts [][]byte, src []byte, tables []*MulTable) {
	mulRegionFusedByChunks(k, dsts, src, tables)
}

type avx2Kernel struct{}

func (avx2Kernel) Name() string { return "avx2" }

func (avx2Kernel) MultXOR(dst, src []byte, t *MulTable) {
	n := len(src) &^ 31
	if n > 0 {
		multXORAVX2(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	multXORTail(dst[n:], src[n:], t)
}

func (avx2Kernel) MulRegion(dst, src []byte, t *MulTable) {
	n := len(src) &^ 31
	if n > 0 {
		mulRegionAVX2(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	mulRegionTail(dst[n:], src[n:], t)
}

func (avx2Kernel) XORRegion(dst, src []byte) {
	n := len(src) &^ 31
	if n > 0 {
		xorRegionAVX2(&dst[0], &src[0], n)
	}
	xorTail(dst[n:], src[n:])
}

func (k avx2Kernel) MultXORFused(dsts [][]byte, src []byte, tables []*MulTable) {
	n := len(src) &^ 63
	if n > 0 {
		// Chunk the fan-out over the fixed-arity routines: fours, then a
		// pair, then a single via the per-op kernel (tables hoisted in
		// all three shapes).
		i := 0
		for ; i+4 <= len(dsts); i += 4 {
			multXORFused4AVX2(&dsts[i][0], &dsts[i+1][0], &dsts[i+2][0], &dsts[i+3][0],
				&src[0], n, tables[i], tables[i+1], tables[i+2], tables[i+3])
		}
		if i+2 <= len(dsts) {
			multXORFused2AVX2(&dsts[i][0], &dsts[i+1][0], &src[0], n, tables[i], tables[i+1])
			i += 2
		}
		if i < len(dsts) {
			multXORAVX2(&dsts[i][0], &src[0], n, &tables[i].Lo[0], &tables[i].Hi[0])
		}
	}
	for i, d := range dsts {
		k.MultXOR(d[n:len(src)], src[n:], tables[i])
	}
}

func (k avx2Kernel) MulRegionFused(dsts [][]byte, src []byte, tables []*MulTable) {
	mulRegionFusedByChunks(k, dsts, src, tables)
}

// gfniKernel multiplies through VGF2P8AFFINEQB against per-coefficient
// bit matrices instead of split-table shuffles: a third of the vector
// ops per byte, no port-5 shuffle bottleneck, and one register per
// destination in the fused forms. XORRegion (coefficient-free) is
// inherited from the AVX2 kernel.
type gfniKernel struct{ avx2Kernel }

func (gfniKernel) Name() string { return "gfni" }

func (gfniKernel) MultXOR(dst, src []byte, t *MulTable) {
	n := len(src) &^ 31
	if n > 0 {
		multXORGFNI(&dst[0], &src[0], n, t.Gfni)
	}
	multXORTail(dst[n:], src[n:], t)
}

func (gfniKernel) MulRegion(dst, src []byte, t *MulTable) {
	n := len(src) &^ 31
	if n > 0 {
		mulRegionGFNI(&dst[0], &src[0], n, t.Gfni)
	}
	mulRegionTail(dst[n:], src[n:], t)
}

func (k gfniKernel) MulRegionFused(dsts [][]byte, src []byte, tables []*MulTable) {
	n := len(src) &^ 63
	if n > 0 {
		i := 0
		for ; i+4 <= len(dsts); i += 4 {
			mulRegionFused4GFNI(&dsts[i][0], &dsts[i+1][0], &dsts[i+2][0], &dsts[i+3][0],
				&src[0], n, tables[i].Gfni, tables[i+1].Gfni, tables[i+2].Gfni, tables[i+3].Gfni)
		}
		for ; i < len(dsts); i++ {
			mulRegionGFNI(&dsts[i][0], &src[0], n, tables[i].Gfni)
		}
	}
	for i, d := range dsts {
		k.MulRegion(d[n:len(src)], src[n:], tables[i])
	}
}

func (k gfniKernel) MultXORFused(dsts [][]byte, src []byte, tables []*MulTable) {
	n := len(src) &^ 63
	if n > 0 {
		i := 0
		for ; i+4 <= len(dsts); i += 4 {
			multXORFused4GFNI(&dsts[i][0], &dsts[i+1][0], &dsts[i+2][0], &dsts[i+3][0],
				&src[0], n, tables[i].Gfni, tables[i+1].Gfni, tables[i+2].Gfni, tables[i+3].Gfni)
		}
		if i+2 <= len(dsts) {
			multXORFused2GFNI(&dsts[i][0], &dsts[i+1][0], &src[0], n, tables[i].Gfni, tables[i+1].Gfni)
			i += 2
		}
		if i < len(dsts) {
			multXORGFNI(&dsts[i][0], &src[0], n, tables[i].Gfni)
		}
	}
	for i, d := range dsts {
		k.MultXOR(d[n:len(src)], src[n:], tables[i])
	}
}

// gfni512Kernel is the EVEX/ZMM form of the GFNI kernel: the same
// per-coefficient affine matrices applied 64 bytes per instruction —
// half the vector ops of the VEX form. Per-op and single/pair remainders
// under 64 bytes fall through to the embedded YMM kernel's tails.
type gfni512Kernel struct{ gfniKernel }

func (gfni512Kernel) Name() string { return "gfni512" }

func (k gfni512Kernel) MultXOR(dst, src []byte, t *MulTable) {
	n := len(src) &^ 63
	if n > 0 {
		multXORGFNI512(&dst[0], &src[0], n, t.Gfni)
	}
	k.gfniKernel.MultXOR(dst[n:len(src)], src[n:], t)
}

func (k gfni512Kernel) MulRegion(dst, src []byte, t *MulTable) {
	n := len(src) &^ 63
	if n > 0 {
		mulRegionGFNI512(&dst[0], &src[0], n, t.Gfni)
	}
	k.gfniKernel.MulRegion(dst[n:len(src)], src[n:], t)
}

func (k gfni512Kernel) MultXORFused(dsts [][]byte, src []byte, tables []*MulTable) {
	n := len(src) &^ 63
	if n > 0 {
		i := 0
		for ; i+4 <= len(dsts); i += 4 {
			multXORFused4GFNI512(&dsts[i][0], &dsts[i+1][0], &dsts[i+2][0], &dsts[i+3][0],
				&src[0], n, tables[i].Gfni, tables[i+1].Gfni, tables[i+2].Gfni, tables[i+3].Gfni)
		}
		if i+2 <= len(dsts) {
			multXORFused2GFNI512(&dsts[i][0], &dsts[i+1][0], &src[0], n, tables[i].Gfni, tables[i+1].Gfni)
			i += 2
		}
		if i < len(dsts) {
			multXORGFNI512(&dsts[i][0], &src[0], n, tables[i].Gfni)
		}
	}
	for i, d := range dsts {
		k.gfniKernel.MultXOR(d[n:len(src)], src[n:], tables[i])
	}
}

func (k gfni512Kernel) MulRegionFused(dsts [][]byte, src []byte, tables []*MulTable) {
	n := len(src) &^ 63
	if n > 0 {
		i := 0
		for ; i+4 <= len(dsts); i += 4 {
			mulRegionFused4GFNI512(&dsts[i][0], &dsts[i+1][0], &dsts[i+2][0], &dsts[i+3][0],
				&src[0], n, tables[i].Gfni, tables[i+1].Gfni, tables[i+2].Gfni, tables[i+3].Gfni)
		}
		for ; i < len(dsts); i++ {
			mulRegionGFNI512(&dsts[i][0], &src[0], n, tables[i].Gfni)
		}
	}
	for i, d := range dsts {
		k.gfniKernel.MulRegion(d[n:len(src)], src[n:], tables[i])
	}
}

func init() {
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidSSSE3   = 1 << 9
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidSSSE3 != 0 {
		registerKernel(ssse3Kernel{}, 2)
	}
	// AVX2 needs the CPU bit, plus OSXSAVE and the OS having enabled
	// XMM+YMM state in XCR0 (bits 1 and 2) — a kernel that context-
	// switches without YMM state would corrupt our registers.
	if ecx1&cpuidOSXSAVE != 0 && ecx1&cpuidAVX != 0 {
		if xcr0, _ := xgetbv(); xcr0&0x6 == 0x6 {
			if _, ebx7, ecx7, _ := cpuid(7, 0); ebx7&(1<<5) != 0 {
				registerKernel(avx2Kernel{}, 3)
				// The VEX-encoded GFNI forms need only the GFNI bit on
				// top of the AVX state checks above; the EVEX/ZMM forms
				// additionally need AVX512F and the OS having enabled
				// opmask+ZMM state in XCR0 (bits 5-7).
				if ecx7&(1<<8) != 0 {
					registerKernel(gfniKernel{}, 4)
					if xcr0, _ := xgetbv(); ebx7&(1<<16) != 0 && xcr0&0xe0 == 0xe0 {
						registerKernel(gfni512Kernel{}, 5)
					}
				}
			}
		}
	}
}
