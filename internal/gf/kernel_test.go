package gf

import (
	"bytes"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
)

// refMulTable builds a MulTable for coefficient c straight from log/exp
// arithmetic, independently of buildTables, so table construction and
// kernels are both under test.
func refMulTable(f *Field, c uint32) *MulTable {
	t := &MulTable{}
	for a := 0; a < 256; a++ {
		t.Row[a] = byte(f.mulSlow(c, uint32(a)&uint32(f.mask)))
	}
	for x := 0; x < 16; x++ {
		t.Lo[x] = t.Row[x]
		t.Hi[x] = t.Row[(x<<4)&int(f.mask)]
	}
	t.Gfni = gfniMatrix(&t.Row)
	return t
}

// refMultXOR is the plain byte loop every kernel must agree with.
func refMultXOR(dst, src []byte, t *MulTable) {
	for i, v := range src {
		dst[i] ^= t.Row[v]
	}
}

func refMulRegion(dst, src []byte, t *MulTable) {
	for i, v := range src {
		dst[i] = t.Row[v]
	}
}

// allKernels returns every registered kernel (dispatch order).
func allKernels() []Kernel {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	ks := make([]Kernel, len(kernelRegistry))
	for i, r := range kernelRegistry {
		ks[i] = r.k
	}
	return ks
}

// kernelLengths exercises sub-vector regions, exact vector multiples,
// and ragged tails across the SSE (16), AVX (32) and word (8) widths.
var kernelLengths = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 47, 63, 64, 65, 255, 256, 1000, 4096, 4097}

// TestKernelsMatchReference differential-tests every registered kernel
// against the byte-loop reference over random coefficients, all length
// classes, and unaligned offsets (slicing 1..7 bytes into a buffer so
// vector loads start off any natural boundary).
func TestKernelsMatchReference(t *testing.T) {
	f := Get(8)
	rng := rand.New(rand.NewSource(41))
	for _, k := range allKernels() {
		t.Run(k.Name(), func(t *testing.T) {
			for _, n := range kernelLengths {
				for _, off := range []int{0, 1, 5, 7} {
					src := make([]byte, n+off)
					base := make([]byte, n+off)
					rng.Read(src)
					rng.Read(base)
					c := uint32(2 + rng.Intn(254))
					tab := refMulTable(f, c)

					want := append([]byte(nil), base...)
					refMultXOR(want[off:], src[off:], tab)
					got := append([]byte(nil), base...)
					k.MultXOR(got[off:], src[off:], tab)
					if !bytes.Equal(got, want) {
						t.Fatalf("MultXOR n=%d off=%d c=%d: kernel disagrees with reference", n, off, c)
					}

					want = append(want[:0:0], base...)
					refMulRegion(want[off:], src[off:], tab)
					got = append(got[:0:0], base...)
					k.MulRegion(got[off:], src[off:], tab)
					if !bytes.Equal(got, want) {
						t.Fatalf("MulRegion n=%d off=%d c=%d: kernel disagrees with reference", n, off, c)
					}

					want = append(want[:0:0], base...)
					for i := off; i < len(want); i++ {
						want[i] ^= src[i]
					}
					got = append(got[:0:0], base...)
					k.XORRegion(got[off:], src[off:])
					if !bytes.Equal(got, want) {
						t.Fatalf("XORRegion n=%d off=%d: kernel disagrees with reference", n, off)
					}
				}
			}
		})
	}
}

// TestKernelsMatchReferenceW4 repeats the differential test with w=4
// tables: the zero Hi half must make every kernel mask high nibbles
// exactly like the scalar row lookup.
func TestKernelsMatchReferenceW4(t *testing.T) {
	f := Get(4)
	rng := rand.New(rand.NewSource(43))
	for _, k := range allKernels() {
		t.Run(k.Name(), func(t *testing.T) {
			for _, n := range []int{0, 1, 15, 16, 33, 256, 4097} {
				src := make([]byte, n) // deliberately unmasked high nibbles
				base := make([]byte, n)
				rng.Read(src)
				rng.Read(base)
				c := uint32(1 + rng.Intn(15))
				tab := &f.tables[c]
				want := append([]byte(nil), base...)
				refMultXOR(want, src, tab)
				got := append([]byte(nil), base...)
				k.MultXOR(got, src, tab)
				if !bytes.Equal(got, want) {
					t.Fatalf("w=4 MultXOR n=%d c=%d: kernel disagrees with reference", n, c)
				}
			}
		})
	}
}

// TestKernelDispatchOrder: the portable kernel is always registered, and
// on amd64/arm64 default builds an assembly kernel must outrank it.
func TestKernelDispatchOrder(t *testing.T) {
	names := KernelNames()
	found := false
	for _, n := range names {
		if n == "portable" {
			found = true
		}
	}
	if !found {
		t.Fatalf("portable kernel missing from registry: %v", names)
	}
	if len(names) != len(uniqueStrings(names)) {
		t.Fatalf("duplicate kernel names registered: %v", names)
	}
	if (runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64") && !testingPurego() {
		if names[0] == "portable" {
			t.Errorf("GOARCH=%s default build dispatched to portable; registry %v", runtime.GOARCH, names)
		}
	}
}

func uniqueStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// testingPurego reports whether this test binary was built with the
// purego tag (the generic kernel file is the only registration source
// then, so the registry holds exactly the portable kernel).
func testingPurego() bool {
	return len(KernelNames()) == 1
}

// TestKernelEnvOverride: STAIR_GF_KERNEL forces dispatch; an unknown name
// is a startup error from Init/NewField, and still a loud panic if those
// surfaces were bypassed — never a silent run of the wrong kernel.
func TestKernelEnvOverride(t *testing.T) {
	t.Setenv("STAIR_GF_KERNEL", "portable")
	resetKernelForTest()
	defer func() {
		os.Unsetenv("STAIR_GF_KERNEL")
		resetKernelForTest()
	}()
	if err := Init(); err != nil {
		t.Fatalf("Init() with valid override: %v", err)
	}
	if got := ActiveKernelName(); got != "portable" {
		t.Fatalf("override to portable: dispatched %q", got)
	}
	// The Field surface reports the forced kernel too.
	if got := Get(8).KernelName(); got != "portable" {
		t.Fatalf("Field.KernelName() = %q under portable override", got)
	}

	t.Setenv("STAIR_GF_KERNEL", "no-such-kernel")
	resetKernelForTest()
	if err := Init(); err == nil {
		t.Error("Init() with unknown STAIR_GF_KERNEL did not error")
	}
	if _, err := NewField(8); err == nil {
		t.Error("NewField(8) with unknown STAIR_GF_KERNEL did not error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown STAIR_GF_KERNEL did not panic when Init was bypassed")
			}
		}()
		ActiveKernelName()
	}()
}

// TestFieldKernelNameW16: two-byte symbols always take the portable
// widened path.
func TestFieldKernelNameW16(t *testing.T) {
	if got := Get(16).KernelName(); got != "portable" {
		t.Fatalf("w=16 KernelName() = %q, want portable", got)
	}
}

// TestKernelSpeedGuard is the CI bench regression guard: gated behind
// STAIR_GF_BENCHGUARD so routine test runs stay fast, it measures the
// dispatched kernel against the portable baseline on a 4 KiB MultXOR
// region and fails if dispatch made things slower. On default amd64
// builds it also enforces the committed ≥4× SIMD speedup claim.
func TestKernelSpeedGuard(t *testing.T) {
	if os.Getenv("STAIR_GF_BENCHGUARD") == "" {
		t.Skip("set STAIR_GF_BENCHGUARD=1 to run the kernel speed guard")
	}
	f := Get(8)
	tab := &f.tables[0x53]
	measure := func(k Kernel) float64 {
		dst := make([]byte, 4096)
		src := make([]byte, 4096)
		rand.New(rand.NewSource(3)).Read(src)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.MultXOR(dst, src, tab)
			}
		})
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}
	portable, ok := kernelByName("portable")
	if !ok {
		t.Fatal("portable kernel not registered")
	}
	base := measure(portable)
	active := activeKernel()
	got := measure(active)
	speedup := base / got
	t.Logf("kernel %s: %.0f ns/op vs portable %.0f ns/op (%.1fx) on 4 KiB MultXOR", active.Name(), got, base, speedup)
	if active.Name() == portable.Name() {
		return // purego or no-SIMD target: nothing to guard
	}
	if speedup < 1 {
		t.Fatalf("dispatched kernel %s is SLOWER than the portable baseline: %.2fx", active.Name(), speedup)
	}
	if runtime.GOARCH == "amd64" && speedup < 4 {
		t.Errorf("amd64 SIMD kernel %s speedup %.1fx, want >= 4x (the committed claim)", active.Name(), speedup)
	}

	// Fused-path guard: one fused call over 4 destinations must not run
	// slower than composing the per-op kernel — the whole point of the
	// source-major planner. 0.9 leaves noise headroom; a real regression
	// (fused falling back to something dumb) shows up as far worse.
	const fusedDsts = 4
	tabs := make([]*MulTable, fusedDsts)
	for i := range tabs {
		tabs[i] = &f.tables[0x35+i]
	}
	measureFused := func(k Kernel, fused bool) float64 {
		src := make([]byte, 4096)
		rand.New(rand.NewSource(5)).Read(src)
		dsts := make([][]byte, fusedDsts)
		for i := range dsts {
			dsts[i] = make([]byte, 4096)
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if fused {
					k.MultXORFused(dsts, src, tabs)
				} else {
					for j := range dsts {
						k.MultXOR(dsts[j], src, tabs[j])
					}
				}
			}
		})
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}
	perop := measureFused(active, false)
	fused := measureFused(active, true)
	fusedSpeedup := perop / fused
	t.Logf("kernel %s fused: %.0f ns/op vs per-op %.0f ns/op (%.2fx) on %dx4 KiB MultXORFused",
		active.Name(), fused, perop, fusedSpeedup, fusedDsts)
	if fusedSpeedup < 0.9 {
		t.Fatalf("kernel %s MultXORFused is slower than its per-op composition: %.2fx", active.Name(), fusedSpeedup)
	}
}

// BenchmarkMultXORKernels measures the 4 KiB MultXOR region op on every
// registered kernel, so one run shows the whole dispatch ladder
// (CI runs this as its bench smoke; sub-benchmark names carry the
// kernel, e.g. BenchmarkMultXORKernels/avx2/4KiB).
func BenchmarkMultXORKernels(b *testing.B) {
	f := Get(8)
	tab := &f.tables[0x53]
	for _, k := range allKernels() {
		for _, size := range benchSizes {
			b.Run(k.Name()+"/"+byteSizeName(size), func(b *testing.B) {
				benchXOR(b, size, func(dst, src []byte) { k.MultXOR(dst, src, tab) })
			})
		}
	}
}

// BenchmarkXORRegionKernels is the same ladder for the c==1/XOR path.
func BenchmarkXORRegionKernels(b *testing.B) {
	for _, k := range allKernels() {
		for _, size := range benchSizes {
			b.Run(k.Name()+"/"+byteSizeName(size), func(b *testing.B) {
				benchXOR(b, size, k.XORRegion)
			})
		}
	}
}

// TestKernelNamesWellFormed keeps names usable as benchmark labels and
// env override values.
func TestKernelNamesWellFormed(t *testing.T) {
	for _, n := range KernelNames() {
		if n == "" || strings.ContainsAny(n, " /=") {
			t.Errorf("kernel name %q not usable in benchmarks/env", n)
		}
	}
	if ActiveKernelName() != Get(8).KernelName() {
		t.Error("Field.KernelName() disagrees with package dispatch")
	}
}
