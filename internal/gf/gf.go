// Package gf implements arithmetic over the finite fields GF(2^w) for
// w ∈ {4, 8, 16}, together with the region operations that erasure codes
// are built from.
//
// The STAIR paper (§5.3) decomposes all encoding work into Mult_XOR
// operations: multiply a region of bytes by a w-bit constant and XOR the
// product into a target region. This package provides that primitive
// (Field.MultXOR) plus plain region XOR and copy. Like the paper's
// implementation (which leans on GF-Complete), the hot GF(2^8) and
// GF(2^4) region loops run as SIMD 4-bit split-table kernels — PSHUFB on
// amd64, TBL on arm64 — selected at runtime by CPU feature detection and
// overridable with STAIR_GF_KERNEL; see kernel.go. GF(2^16) and the
// `purego` build use a widened-word portable path.
//
// Field values are immutable after construction and safe for concurrent
// use.
package gf

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Primitive polynomials used to construct each field, expressed with the
// leading term included (e.g. 0x11d = x^8+x^4+x^3+x^2+1). These match the
// polynomials used by GF-Complete and Jerasure, the libraries the paper's
// implementation builds on.
const (
	poly4  = 0x13    // x^4 + x + 1
	poly8  = 0x11d   // x^8 + x^4 + x^3 + x^2 + 1
	poly16 = 0x1100b // x^16 + x^12 + x^3 + x + 1
)

// Field represents GF(2^w). The zero value is not usable; construct one
// with NewField or fetch a shared instance with Get.
type Field struct {
	w    int
	size int    // 2^w
	mask uint32 // 2^w - 1

	log []uint16 // log[a] for a in 1..size-1 (log[0] is unused)
	exp []uint16 // exp[i] = g^i, doubled length to avoid modular reduction
	inv []uint32 // multiplicative inverses, inv[0] = 0 (unused)

	// tables holds the per-coefficient region-kernel lookup state, built
	// for w == 8 (256 entries, the full 256×256 product table reshaped)
	// and w == 4 (16 entries whose high-nibble split tables are zero, so
	// the byte-oriented kernels apply unchanged). tables[c].Row is also
	// the scalar Mul fast path for w == 8.
	tables []MulTable
}

var (
	fieldCache   [17]*Field
	fieldCacheMu sync.Mutex
)

// NewField constructs GF(2^w). Supported word sizes are 4, 8 and 16.
func NewField(w int) (*Field, error) {
	var poly uint32
	switch w {
	case 4:
		poly = poly4
	case 8:
		poly = poly8
	case 16:
		poly = poly16
	default:
		return nil, fmt.Errorf("gf: unsupported word size w=%d (want 4, 8 or 16)", w)
	}
	f := &Field{
		w:    w,
		size: 1 << w,
		mask: uint32(1<<w) - 1,
	}
	f.buildTables(poly)
	// Resolve kernel dispatch now so a bad STAIR_GF_KERNEL override is a
	// constructor error, not a panic inside the first region op.
	if err := Init(); err != nil {
		return nil, err
	}
	return f, nil
}

// Get returns a shared, lazily constructed field for the given word size.
// It panics if w is unsupported; use NewField to get an error instead.
func Get(w int) *Field {
	fieldCacheMu.Lock()
	defer fieldCacheMu.Unlock()
	if w < 0 || w >= len(fieldCache) {
		panic(fmt.Sprintf("gf: unsupported word size w=%d", w))
	}
	if f := fieldCache[w]; f != nil {
		return f
	}
	f, err := NewField(w)
	if err != nil {
		panic(err)
	}
	fieldCache[w] = f
	return f
}

func (f *Field) buildTables(poly uint32) {
	n := f.size
	f.log = make([]uint16, n)
	f.exp = make([]uint16, 2*n)

	// Generate the field as powers of the generator x (the polynomial's
	// root), reducing modulo the primitive polynomial.
	x := uint32(1)
	for i := 0; i < n-1; i++ {
		f.exp[i] = uint16(x)
		f.exp[i+n-1] = uint16(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x&uint32(n) != 0 {
			x ^= poly
		}
	}

	f.inv = make([]uint32, n)
	for a := 1; a < n; a++ {
		// a^-1 = g^(size-1-log a)
		f.inv[a] = uint32(f.exp[n-1-int(f.log[a])])
	}

	switch f.w {
	case 8:
		// Full product table, reshaped per coefficient into the row the
		// scalar paths index and the low/high nibble split tables the
		// SIMD kernels shuffle against: Row[v] = Lo[v&0x0f] ^ Hi[v>>4]
		// because v = (v&0x0f) ^ (v&0xf0) and multiplication is linear.
		f.tables = make([]MulTable, 256)
		for c := 0; c < 256; c++ {
			t := &f.tables[c]
			for a := 0; a < 256; a++ {
				t.Row[a] = byte(f.mulSlow(uint32(c), uint32(a)))
			}
			for x := 0; x < 16; x++ {
				t.Lo[x] = t.Row[x]
				t.Hi[x] = t.Row[x<<4]
			}
			t.Gfni = gfniMatrix(&t.Row)
		}
	case 4:
		// GF(2^4) symbols live in the low nibble of each byte and region
		// ops ignore the high nibble, so Row[v] = c·(v&0x0f) and the
		// high-nibble split table is identically zero — which lets the
		// same byte-oriented kernels serve w == 4.
		f.tables = make([]MulTable, 16)
		for c := 0; c < 16; c++ {
			t := &f.tables[c]
			for a := 0; a < 256; a++ {
				t.Row[a] = byte(f.mulSlow(uint32(c), uint32(a&0x0f)))
			}
			for x := 0; x < 16; x++ {
				t.Lo[x] = t.Row[x]
			}
			t.Gfni = gfniMatrix(&t.Row)
		}
	}
}

// W returns the field's word size in bits.
func (f *Field) W() int { return f.w }

// Size returns the number of field elements, 2^w.
func (f *Field) Size() int { return f.size }

// SymbolBytes returns the number of bytes one field symbol occupies in a
// region: 1 for w ≤ 8 and 2 for w == 16. Region lengths passed to the
// region operations must be multiples of this.
func (f *Field) SymbolBytes() int {
	if f.w == 16 {
		return 2
	}
	return 1
}

// Add returns a + b. Addition in GF(2^w) is XOR; subtraction is identical.
func (f *Field) Add(a, b uint32) uint32 { return (a ^ b) & f.mask }

// Mul returns a × b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	if f.w == 8 {
		return uint32(f.tables[a&0xff].Row[b&0xff])
	}
	return uint32(f.exp[int(f.log[a&f.mask])+int(f.log[b&f.mask])])
}

func (f *Field) mulSlow(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return uint32(f.exp[int(f.log[a])+int(f.log[b])])
}

// Div returns a / b. It panics if b is zero: dividing by zero indicates a
// programming error in matrix/code construction, never a data-dependent
// condition.
func (f *Field) Div(a, b uint32) uint32 {
	if b&f.mask == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.Mul(a, f.inv[b&f.mask])
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func (f *Field) Inv(a uint32) uint32 {
	if a&f.mask == 0 {
		panic("gf: zero has no multiplicative inverse")
	}
	return f.inv[a&f.mask]
}

// Exp returns a raised to the power n (n ≥ 0), with a^0 = 1.
func (f *Field) Exp(a uint32, n int) uint32 {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	// a^n = g^(n·log a mod (size-1))
	e := (int(f.log[a&f.mask]) * n) % (f.size - 1)
	return uint32(f.exp[e])
}

// checkRegions validates a dst/src region pair for the region operations.
func (f *Field) checkRegions(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: region length mismatch: dst=%d src=%d", len(dst), len(src)))
	}
	if sb := f.SymbolBytes(); len(src)%sb != 0 {
		panic(fmt.Sprintf("gf: region length %d is not a multiple of the %d-byte symbol size", len(src), sb))
	}
}

// KernelName reports which region kernel this field's MultXOR/MultRegion
// dispatch to: the CPU-selected (or STAIR_GF_KERNEL-forced) kernel for
// the byte-symbol fields w == 4 and w == 8, and "portable" for w == 16,
// whose two-byte symbols take the widened two-table path.
func (f *Field) KernelName() string {
	if f.tables != nil {
		return ActiveKernelName()
	}
	return portableKernel{}.Name()
}

// MultXOR computes dst ^= c·src over the field, symbol by symbol. This is
// the paper's Mult_XOR(src, dst, c) primitive (§5.3). dst and src must
// have equal length, a multiple of SymbolBytes, and must not overlap
// partially (dst == src exactly is allowed when c avoids aliasing issues;
// callers in this module never alias).
func (f *Field) MultXOR(dst, src []byte, c uint32) {
	f.checkRegions(dst, src)
	c &= f.mask
	if c == 0 {
		return
	}
	// c == 1 is plain XOR — except for w == 4, where region bytes may
	// carry arbitrary high nibbles that every product (including 1·v)
	// masks away; its split table (zero Hi half) preserves that.
	if c == 1 && f.w != 4 {
		activeKernel().XORRegion(dst, src)
		return
	}
	if f.tables != nil { // w == 4 or 8: split-table kernel dispatch
		activeKernel().MultXOR(dst, src, &f.tables[c])
		return
	}
	// w == 16: two-byte symbols via per-call low/high byte product
	// tables, four symbols (one uint64) per iteration.
	var lo, hi [256]uint16
	for a := 0; a < 256; a++ {
		lo[a] = uint16(f.Mul(c, uint32(a)))
		hi[a] = uint16(f.Mul(c, uint32(a)<<8))
	}
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		p := uint64(lo[src[i]]^hi[src[i+1]]) |
			uint64(lo[src[i+2]]^hi[src[i+3]])<<16 |
			uint64(lo[src[i+4]]^hi[src[i+5]])<<32 |
			uint64(lo[src[i+6]]^hi[src[i+7]])<<48
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for ; i+1 < n; i += 2 {
		v := lo[src[i]] ^ hi[src[i+1]]
		dst[i] ^= byte(v)
		dst[i+1] ^= byte(v >> 8)
	}
}

// Table returns the region-kernel lookup state for multiplication by c,
// for use with the package-level MultXORFused. It returns nil for
// w == 16, whose two-byte symbols have no byte-oriented split table —
// fused callers fall back to per-destination MultXOR there.
func (f *Field) Table(c uint32) *MulTable {
	if f.tables == nil {
		return nil
	}
	return &f.tables[c&f.mask]
}

// MultXORFused computes dsts[i] ^= coeffs[i]·src for every destination in
// one pass over src — the fused form of MultXOR that a multi-parity
// encode uses so each source region is read once instead of once per
// parity row. Zero coefficients are skipped. Every dsts[i] must have
// len(src) bytes. Callers that precompile coefficient columns should use
// Field.Table plus the package-level MultXORFused instead to avoid the
// per-call table slice.
func (f *Field) MultXORFused(dsts [][]byte, src []byte, coeffs []uint32) {
	if len(dsts) != len(coeffs) {
		panic(fmt.Sprintf("gf: fused arity mismatch: dsts=%d coeffs=%d", len(dsts), len(coeffs)))
	}
	if f.tables == nil {
		// w == 16: no byte-oriented tables; per-destination widened path.
		for i, d := range dsts {
			f.MultXOR(d, src, coeffs[i])
		}
		return
	}
	live := make([][]byte, 0, len(dsts))
	tabs := make([]*MulTable, 0, len(dsts))
	for i, d := range dsts {
		f.checkRegions(d, src)
		if c := coeffs[i] & f.mask; c != 0 {
			live = append(live, d)
			tabs = append(tabs, &f.tables[c])
		}
	}
	if len(live) == 0 || len(src) == 0 {
		return
	}
	activeKernel().MultXORFused(live, src, tabs)
}

// MultXORFused dispatches dsts[i] ^= tables[i]·src to the active region
// kernel in one pass over src. It is the precompiled-plan entry point:
// callers resolve coefficient tables once via Field.Table (dropping zero
// coefficients) and reuse them across calls. Every dsts[i] must have at
// least len(src) bytes and every tables[i] must be non-nil.
func MultXORFused(dsts [][]byte, src []byte, tables []*MulTable) {
	if len(dsts) != len(tables) {
		panic(fmt.Sprintf("gf: fused arity mismatch: dsts=%d tables=%d", len(dsts), len(tables)))
	}
	if len(dsts) == 0 || len(src) == 0 {
		return
	}
	activeKernel().MultXORFused(dsts, src, tables)
}

// MulRegionFused dispatches dsts[i] = tables[i]·src — the overwrite
// form of MultXORFused. Plans route each destination's first term here
// so output regions are never zero-filled or read before their first
// accumulation. Same contract as MultXORFused.
func MulRegionFused(dsts [][]byte, src []byte, tables []*MulTable) {
	if len(dsts) != len(tables) {
		panic(fmt.Sprintf("gf: fused arity mismatch: dsts=%d tables=%d", len(dsts), len(tables)))
	}
	if len(dsts) == 0 || len(src) == 0 {
		return
	}
	activeKernel().MulRegionFused(dsts, src, tables)
}

// MultRegion computes dst = c·src (overwriting dst).
func (f *Field) MultRegion(dst, src []byte, c uint32) {
	f.checkRegions(dst, src)
	c &= f.mask
	if c == 0 {
		Zero(dst)
		return
	}
	if f.tables != nil { // w == 4 or 8: split-table kernel dispatch
		activeKernel().MulRegion(dst, src, &f.tables[c])
		return
	}
	var lo, hi [256]uint16
	for a := 0; a < 256; a++ {
		lo[a] = uint16(f.Mul(c, uint32(a)))
		hi[a] = uint16(f.Mul(c, uint32(a)<<8))
	}
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		p := uint64(lo[src[i]]^hi[src[i+1]]) |
			uint64(lo[src[i+2]]^hi[src[i+3]])<<16 |
			uint64(lo[src[i+4]]^hi[src[i+5]])<<32 |
			uint64(lo[src[i+6]]^hi[src[i+7]])<<48
		binary.LittleEndian.PutUint64(dst[i:], p)
	}
	for ; i+1 < n; i += 2 {
		v := lo[src[i]] ^ hi[src[i+1]]
		dst[i] = byte(v)
		dst[i+1] = byte(v >> 8)
	}
}

// ReadSymbol extracts the symbol at index i from a region, honouring the
// field's symbol width (little-endian for w == 16).
func (f *Field) ReadSymbol(region []byte, i int) uint32 {
	if f.w == 16 {
		return uint32(region[2*i]) | uint32(region[2*i+1])<<8
	}
	return uint32(region[i]) & f.mask
}

// WriteSymbol stores symbol v at index i in a region.
func (f *Field) WriteSymbol(region []byte, i int, v uint32) {
	if f.w == 16 {
		region[2*i] = byte(v)
		region[2*i+1] = byte(v >> 8)
		return
	}
	region[i] = byte(v & f.mask)
}

// SymbolsPerRegion returns how many field symbols fit in a region of the
// given byte length.
func (f *Field) SymbolsPerRegion(n int) int { return n / f.SymbolBytes() }

// XORRegion computes dst ^= src. It is field-independent, and it is
// the hot inner loop of every encode: the schedules decompose all
// parity work into Mult_XORs, and the c==1 fast path (common, since
// many STAIR coefficients are 1) is exactly this function. It dispatches
// to the active kernel — SIMD where available, the widened uint64-word
// loop otherwise; BenchmarkXORRegionWide measures both against the old
// byte-wise baseline.
func XORRegion(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: region length mismatch: dst=%d src=%d", len(dst), len(src)))
	}
	activeKernel().XORRegion(dst, src)
}

// Zero clears a region.
func Zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
