// Package gf implements arithmetic over the finite fields GF(2^w) for
// w ∈ {4, 8, 16}, together with the region operations that erasure codes
// are built from.
//
// The STAIR paper (§5.3) decomposes all encoding work into Mult_XOR
// operations: multiply a region of bytes by a w-bit constant and XOR the
// product into a target region. This package provides that primitive
// (Field.MultXOR) plus plain region XOR and copy. The paper accelerates
// GF(2^8) with SIMD via GF-Complete; this implementation substitutes
// portable table lookups, which preserves the relative cost shape
// (work ∝ number of Mult_XORs × region size) that the paper's evaluation
// figures measure.
//
// Field values are immutable after construction and safe for concurrent
// use.
package gf

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Primitive polynomials used to construct each field, expressed with the
// leading term included (e.g. 0x11d = x^8+x^4+x^3+x^2+1). These match the
// polynomials used by GF-Complete and Jerasure, the libraries the paper's
// implementation builds on.
const (
	poly4  = 0x13    // x^4 + x + 1
	poly8  = 0x11d   // x^8 + x^4 + x^3 + x^2 + 1
	poly16 = 0x1100b // x^16 + x^12 + x^3 + x + 1
)

// Field represents GF(2^w). The zero value is not usable; construct one
// with NewField or fetch a shared instance with Get.
type Field struct {
	w    int
	size int    // 2^w
	mask uint32 // 2^w - 1

	log []uint16 // log[a] for a in 1..size-1 (log[0] is unused)
	exp []uint16 // exp[i] = g^i, doubled length to avoid modular reduction
	inv []uint32 // multiplicative inverses, inv[0] = 0 (unused)

	// mul8 is the full 256×256 product table, built only for w == 8.
	// Row c is the multiply-by-c lookup table used by region operations.
	mul8 [][]byte
}

var (
	fieldCache   [17]*Field
	fieldCacheMu sync.Mutex
)

// NewField constructs GF(2^w). Supported word sizes are 4, 8 and 16.
func NewField(w int) (*Field, error) {
	var poly uint32
	switch w {
	case 4:
		poly = poly4
	case 8:
		poly = poly8
	case 16:
		poly = poly16
	default:
		return nil, fmt.Errorf("gf: unsupported word size w=%d (want 4, 8 or 16)", w)
	}
	f := &Field{
		w:    w,
		size: 1 << w,
		mask: uint32(1<<w) - 1,
	}
	f.buildTables(poly)
	return f, nil
}

// Get returns a shared, lazily constructed field for the given word size.
// It panics if w is unsupported; use NewField to get an error instead.
func Get(w int) *Field {
	fieldCacheMu.Lock()
	defer fieldCacheMu.Unlock()
	if w < 0 || w >= len(fieldCache) {
		panic(fmt.Sprintf("gf: unsupported word size w=%d", w))
	}
	if f := fieldCache[w]; f != nil {
		return f
	}
	f, err := NewField(w)
	if err != nil {
		panic(err)
	}
	fieldCache[w] = f
	return f
}

func (f *Field) buildTables(poly uint32) {
	n := f.size
	f.log = make([]uint16, n)
	f.exp = make([]uint16, 2*n)

	// Generate the field as powers of the generator x (the polynomial's
	// root), reducing modulo the primitive polynomial.
	x := uint32(1)
	for i := 0; i < n-1; i++ {
		f.exp[i] = uint16(x)
		f.exp[i+n-1] = uint16(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x&uint32(n) != 0 {
			x ^= poly
		}
	}

	f.inv = make([]uint32, n)
	for a := 1; a < n; a++ {
		// a^-1 = g^(size-1-log a)
		f.inv[a] = uint32(f.exp[n-1-int(f.log[a])])
	}

	if f.w == 8 {
		f.mul8 = make([][]byte, 256)
		flat := make([]byte, 256*256)
		for c := 0; c < 256; c++ {
			row := flat[c*256 : (c+1)*256 : (c+1)*256]
			for a := 0; a < 256; a++ {
				row[a] = byte(f.mulSlow(uint32(c), uint32(a)))
			}
			f.mul8[c] = row
		}
	}
}

// W returns the field's word size in bits.
func (f *Field) W() int { return f.w }

// Size returns the number of field elements, 2^w.
func (f *Field) Size() int { return f.size }

// SymbolBytes returns the number of bytes one field symbol occupies in a
// region: 1 for w ≤ 8 and 2 for w == 16. Region lengths passed to the
// region operations must be multiples of this.
func (f *Field) SymbolBytes() int {
	if f.w == 16 {
		return 2
	}
	return 1
}

// Add returns a + b. Addition in GF(2^w) is XOR; subtraction is identical.
func (f *Field) Add(a, b uint32) uint32 { return (a ^ b) & f.mask }

// Mul returns a × b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	if f.mul8 != nil {
		return uint32(f.mul8[a&0xff][b&0xff])
	}
	return uint32(f.exp[int(f.log[a&f.mask])+int(f.log[b&f.mask])])
}

func (f *Field) mulSlow(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return uint32(f.exp[int(f.log[a])+int(f.log[b])])
}

// Div returns a / b. It panics if b is zero: dividing by zero indicates a
// programming error in matrix/code construction, never a data-dependent
// condition.
func (f *Field) Div(a, b uint32) uint32 {
	if b&f.mask == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.Mul(a, f.inv[b&f.mask])
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func (f *Field) Inv(a uint32) uint32 {
	if a&f.mask == 0 {
		panic("gf: zero has no multiplicative inverse")
	}
	return f.inv[a&f.mask]
}

// Exp returns a raised to the power n (n ≥ 0), with a^0 = 1.
func (f *Field) Exp(a uint32, n int) uint32 {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	// a^n = g^(n·log a mod (size-1))
	e := (int(f.log[a&f.mask]) * n) % (f.size - 1)
	return uint32(f.exp[e])
}

// checkRegions validates a dst/src region pair for the region operations.
func (f *Field) checkRegions(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: region length mismatch: dst=%d src=%d", len(dst), len(src)))
	}
	if sb := f.SymbolBytes(); len(src)%sb != 0 {
		panic(fmt.Sprintf("gf: region length %d is not a multiple of the %d-byte symbol size", len(src), sb))
	}
}

// MultXOR computes dst ^= c·src over the field, symbol by symbol. This is
// the paper's Mult_XOR(src, dst, c) primitive (§5.3). dst and src must
// have equal length, a multiple of SymbolBytes, and must not overlap
// partially (dst == src exactly is allowed when c avoids aliasing issues;
// callers in this module never alias).
func (f *Field) MultXOR(dst, src []byte, c uint32) {
	f.checkRegions(dst, src)
	c &= f.mask
	if c == 0 {
		return
	}
	switch f.w {
	case 8:
		row := f.mul8[c]
		if c == 1 {
			XORRegion(dst, src)
			return
		}
		for i, v := range src {
			dst[i] ^= row[v]
		}
	case 4:
		var tab [16]byte
		for a := 0; a < 16; a++ {
			tab[a] = byte(f.Mul(c, uint32(a)))
		}
		for i, v := range src {
			dst[i] ^= tab[v&0x0f]
		}
	case 16:
		if c == 1 {
			XORRegion(dst, src)
			return
		}
		var lo, hi [256]uint16
		for a := 0; a < 256; a++ {
			lo[a] = uint16(f.Mul(c, uint32(a)))
			hi[a] = uint16(f.Mul(c, uint32(a)<<8))
		}
		for i := 0; i+1 < len(src); i += 2 {
			v := lo[src[i]] ^ hi[src[i+1]]
			dst[i] ^= byte(v)
			dst[i+1] ^= byte(v >> 8)
		}
	}
}

// MultRegion computes dst = c·src (overwriting dst).
func (f *Field) MultRegion(dst, src []byte, c uint32) {
	f.checkRegions(dst, src)
	c &= f.mask
	if c == 0 {
		Zero(dst)
		return
	}
	switch f.w {
	case 8:
		row := f.mul8[c]
		for i, v := range src {
			dst[i] = row[v]
		}
	case 4:
		var tab [16]byte
		for a := 0; a < 16; a++ {
			tab[a] = byte(f.Mul(c, uint32(a)))
		}
		for i, v := range src {
			dst[i] = tab[v&0x0f]
		}
	case 16:
		var lo, hi [256]uint16
		for a := 0; a < 256; a++ {
			lo[a] = uint16(f.Mul(c, uint32(a)))
			hi[a] = uint16(f.Mul(c, uint32(a)<<8))
		}
		for i := 0; i+1 < len(src); i += 2 {
			v := lo[src[i]] ^ hi[src[i+1]]
			dst[i] = byte(v)
			dst[i+1] = byte(v >> 8)
		}
	}
}

// ReadSymbol extracts the symbol at index i from a region, honouring the
// field's symbol width (little-endian for w == 16).
func (f *Field) ReadSymbol(region []byte, i int) uint32 {
	if f.w == 16 {
		return uint32(region[2*i]) | uint32(region[2*i+1])<<8
	}
	return uint32(region[i]) & f.mask
}

// WriteSymbol stores symbol v at index i in a region.
func (f *Field) WriteSymbol(region []byte, i int, v uint32) {
	if f.w == 16 {
		region[2*i] = byte(v)
		region[2*i+1] = byte(v >> 8)
		return
	}
	region[i] = byte(v & f.mask)
}

// SymbolsPerRegion returns how many field symbols fit in a region of the
// given byte length.
func (f *Field) SymbolsPerRegion(n int) int { return n / f.SymbolBytes() }

// XORRegion computes dst ^= src. It is field-independent, and it is
// the hot inner loop of every encode: the schedules decompose all
// parity work into Mult_XORs, and the c==1 fast path (common, since
// many STAIR coefficients are 1) is exactly this function.
//
// The loop XORs whole uint64 words via encoding/binary — on
// little-endian targets the Uint64/PutUint64 pairs compile to single
// unaligned loads and stores, so each iteration is one 64-bit XOR
// instead of eight byte ops (the previous byte-wise unrolled loop).
// BenchmarkXORRegionWide measures the win over that baseline.
func XORRegion(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: region length mismatch: dst=%d src=%d", len(dst), len(src)))
	}
	n := len(src)
	i := 0
	// Two words per iteration: enough ILP to keep the load/store ports
	// busy without the compiler's bounds checks dominating.
	for ; i+16 <= n; i += 16 {
		a := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		b := binary.LittleEndian.Uint64(dst[i+8:]) ^ binary.LittleEndian.Uint64(src[i+8:])
		binary.LittleEndian.PutUint64(dst[i:], a)
		binary.LittleEndian.PutUint64(dst[i+8:], b)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// Zero clears a region.
func Zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
