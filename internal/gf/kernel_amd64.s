//go:build amd64 && !purego

#include "textflag.h"

// amd64 split-table GF region kernels. See kernel_amd64.go for the
// dispatch wrappers and the scheme; the register conventions here are
// shared by all routines:
//
//	DI  dst cursor        SI  src cursor        CX  bytes remaining
//	X4/Y4  low-nibble product table   X5/Y5  high-nibble product table
//	X6/Y6  0x0f byte mask
//
// Every n is a positive multiple of the vector width (asserted by the
// Go wrappers), so the loops need no scalar epilogue.

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// func multXORSSSE3(dst, src *byte, n int, lo, hi *byte)
// dst[i:i+16] ^= shuffle(lo, src&0x0f) ^ shuffle(hi, src>>4)
TEXT ·multXORSSSE3(SB), NOSPLIT, $0-40
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVQ  lo+24(FP), AX
	MOVQ  hi+32(FP), BX
	MOVOU (AX), X4
	MOVOU (BX), X5
	MOVOU nibbleMask<>(SB), X6

ssse3mxloop:
	MOVOU  (SI), X0
	MOVOA  X0, X1
	PSRLQ  $4, X1
	PAND   X6, X0           // low nibbles
	PAND   X6, X1           // high nibbles
	MOVOA  X4, X2
	MOVOA  X5, X3
	PSHUFB X0, X2           // lo-table products
	PSHUFB X1, X3           // hi-table products
	PXOR   X3, X2
	MOVOU  (DI), X0
	PXOR   X0, X2
	MOVOU  X2, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNE    ssse3mxloop
	RET

// func mulRegionSSSE3(dst, src *byte, n int, lo, hi *byte)
// Same as multXORSSSE3 without the dst read-modify-write.
TEXT ·mulRegionSSSE3(SB), NOSPLIT, $0-40
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVQ  lo+24(FP), AX
	MOVQ  hi+32(FP), BX
	MOVOU (AX), X4
	MOVOU (BX), X5
	MOVOU nibbleMask<>(SB), X6

ssse3mrloop:
	MOVOU  (SI), X0
	MOVOA  X0, X1
	PSRLQ  $4, X1
	PAND   X6, X0
	PAND   X6, X1
	MOVOA  X4, X2
	MOVOA  X5, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR   X3, X2
	MOVOU  X2, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNE    ssse3mrloop
	RET

// func xorRegionSSE2(dst, src *byte, n int)
TEXT ·xorRegionSSE2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

sse2xloop:
	MOVOU (SI), X0
	MOVOU (DI), X1
	PXOR  X1, X0
	MOVOU X0, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNE   sse2xloop
	RET

// func multXORAVX2(dst, src *byte, n int, lo, hi *byte)
// The 16-byte nibble tables are broadcast to both 128-bit lanes, so one
// VPSHUFB translates 32 source bytes.
TEXT ·multXORAVX2(SB), NOSPLIT, $0-40
	MOVQ           dst+0(FP), DI
	MOVQ           src+8(FP), SI
	MOVQ           n+16(FP), CX
	MOVQ           lo+24(FP), AX
	MOVQ           hi+32(FP), BX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	VBROADCASTI128 nibbleMask<>(SB), Y6

avx2mxloop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VPXOR   (DI), Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     avx2mxloop
	VZEROUPPER
	RET

// func mulRegionAVX2(dst, src *byte, n int, lo, hi *byte)
TEXT ·mulRegionAVX2(SB), NOSPLIT, $0-40
	MOVQ           dst+0(FP), DI
	MOVQ           src+8(FP), SI
	MOVQ           n+16(FP), CX
	MOVQ           lo+24(FP), AX
	MOVQ           hi+32(FP), BX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	VBROADCASTI128 nibbleMask<>(SB), Y6

avx2mrloop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     avx2mrloop
	VZEROUPPER
	RET

// func xorRegionAVX2(dst, src *byte, n int)
TEXT ·xorRegionAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

avx2xloop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     avx2xloop
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
