//go:build amd64 && !purego

#include "textflag.h"

// amd64 split-table GF region kernels. See kernel_amd64.go for the
// dispatch wrappers and the scheme; the register conventions here are
// shared by all routines:
//
//	DI  dst cursor        SI  src cursor        CX  bytes remaining
//	X4/Y4  low-nibble product table   X5/Y5  high-nibble product table
//	X6/Y6  0x0f byte mask
//
// Every n is a positive multiple of the vector width (asserted by the
// Go wrappers), so the loops need no scalar epilogue.

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// func multXORSSSE3(dst, src *byte, n int, lo, hi *byte)
// dst[i:i+16] ^= shuffle(lo, src&0x0f) ^ shuffle(hi, src>>4)
TEXT ·multXORSSSE3(SB), NOSPLIT, $0-40
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVQ  lo+24(FP), AX
	MOVQ  hi+32(FP), BX
	MOVOU (AX), X4
	MOVOU (BX), X5
	MOVOU nibbleMask<>(SB), X6

ssse3mxloop:
	MOVOU  (SI), X0
	MOVOA  X0, X1
	PSRLQ  $4, X1
	PAND   X6, X0           // low nibbles
	PAND   X6, X1           // high nibbles
	MOVOA  X4, X2
	MOVOA  X5, X3
	PSHUFB X0, X2           // lo-table products
	PSHUFB X1, X3           // hi-table products
	PXOR   X3, X2
	MOVOU  (DI), X0
	PXOR   X0, X2
	MOVOU  X2, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNE    ssse3mxloop
	RET

// func mulRegionSSSE3(dst, src *byte, n int, lo, hi *byte)
// Same as multXORSSSE3 without the dst read-modify-write.
TEXT ·mulRegionSSSE3(SB), NOSPLIT, $0-40
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVQ  lo+24(FP), AX
	MOVQ  hi+32(FP), BX
	MOVOU (AX), X4
	MOVOU (BX), X5
	MOVOU nibbleMask<>(SB), X6

ssse3mrloop:
	MOVOU  (SI), X0
	MOVOA  X0, X1
	PSRLQ  $4, X1
	PAND   X6, X0
	PAND   X6, X1
	MOVOA  X4, X2
	MOVOA  X5, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR   X3, X2
	MOVOU  X2, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JNE    ssse3mrloop
	RET

// func xorRegionSSE2(dst, src *byte, n int)
TEXT ·xorRegionSSE2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

sse2xloop:
	MOVOU (SI), X0
	MOVOU (DI), X1
	PXOR  X1, X0
	MOVOU X0, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNE   sse2xloop
	RET

// func multXORAVX2(dst, src *byte, n int, lo, hi *byte)
// The 16-byte nibble tables are broadcast to both 128-bit lanes, so one
// VPSHUFB translates 32 source bytes.
TEXT ·multXORAVX2(SB), NOSPLIT, $0-40
	MOVQ           dst+0(FP), DI
	MOVQ           src+8(FP), SI
	MOVQ           n+16(FP), CX
	MOVQ           lo+24(FP), AX
	MOVQ           hi+32(FP), BX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	VBROADCASTI128 nibbleMask<>(SB), Y6

avx2mxloop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VPXOR   (DI), Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     avx2mxloop
	VZEROUPPER
	RET

// func mulRegionAVX2(dst, src *byte, n int, lo, hi *byte)
TEXT ·mulRegionAVX2(SB), NOSPLIT, $0-40
	MOVQ           dst+0(FP), DI
	MOVQ           src+8(FP), SI
	MOVQ           n+16(FP), CX
	MOVQ           lo+24(FP), AX
	MOVQ           hi+32(FP), BX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	VBROADCASTI128 nibbleMask<>(SB), Y6

avx2mrloop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     avx2mrloop
	VZEROUPPER
	RET

// func xorRegionAVX2(dst, src *byte, n int)
TEXT ·xorRegionAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

avx2xloop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     avx2xloop
	VZEROUPPER
	RET

// func multXORFusedSSSE3(dsts [][]byte, tabs []*MulTable, src []byte)
// For each 32-byte source block: split into nibbles once (X0-X3), then
// for every destination j load its split tables from tabs[j] (Lo at
// offset 256, Hi at 272 — layout pinned in kernel_amd64.go), shuffle and
// XOR into dsts[j] at the same offset. The source block never leaves
// registers while the destination loop runs. len(src) is a positive
// multiple of 32; the wrappers handle the ragged tail.
//
// Register conventions (fused routines):
//
//	R8  dsts slice headers    R9  tabs pointer array   R10 ndst
//	SI  src base              CX  n                    R11 block offset
//	R12 destination index     R13 dst cursor           R14 table pointer
TEXT ·multXORFusedSSSE3(SB), NOSPLIT, $0-72
	MOVQ  dsts_base+0(FP), R8
	MOVQ  dsts_len+8(FP), R10
	MOVQ  tabs_base+24(FP), R9
	MOVQ  src_base+48(FP), SI
	MOVQ  src_len+56(FP), CX
	MOVOU nibbleMask<>(SB), X8
	XORQ  R11, R11

ssse3fblock:
	MOVOU (SI)(R11*1), X0
	MOVOU 16(SI)(R11*1), X2
	MOVOA X0, X1
	MOVOA X2, X3
	PSRLQ $4, X1
	PSRLQ $4, X3
	PAND  X8, X0           // low nibbles, bytes 0-15
	PAND  X8, X1           // high nibbles, bytes 0-15
	PAND  X8, X2           // low nibbles, bytes 16-31
	PAND  X8, X3           // high nibbles, bytes 16-31
	XORQ  R12, R12

ssse3fdst:
	MOVQ   (R9)(R12*8), R14
	MOVOU  256(R14), X4    // MulTable.Lo
	MOVOU  272(R14), X5    // MulTable.Hi
	LEAQ   (R12)(R12*2), AX
	SHLQ   $3, AX          // AX = j*24, the slice-header stride
	MOVQ   (R8)(AX*1), R13
	ADDQ   R11, R13
	MOVOA  X4, X6
	MOVOA  X5, X7
	PSHUFB X0, X6
	PSHUFB X1, X7
	PXOR   X7, X6
	MOVOU  (R13), X7
	PXOR   X7, X6
	MOVOU  X6, (R13)
	MOVOA  X4, X6
	MOVOA  X5, X7
	PSHUFB X2, X6
	PSHUFB X3, X7
	PXOR   X7, X6
	MOVOU  16(R13), X7
	PXOR   X7, X6
	MOVOU  X6, 16(R13)
	INCQ   R12
	CMPQ   R12, R10
	JLT    ssse3fdst

	ADDQ $32, R11
	CMPQ R11, CX
	JLT  ssse3fblock
	RET

// func multXORFused4AVX2(d0, d1, d2, d3, src *byte, n int, t0, t1, t2, t3 *MulTable)
// Four destinations per source pass with everything hot in registers:
// the 64-byte source block is loaded and nibble-split once (Y0-Y3), all
// four destinations' split tables are broadcast before the loop (Y4-Y11)
// and never touched again, and Y12/Y13 are the only temporaries. This is
// the shape the planner's fan-out feeds: one read of the source tile
// updates four parity tiles at once, with zero per-block table or
// pointer traffic. n is a positive multiple of 64.
TEXT ·multXORFused4AVX2(SB), NOSPLIT, $0-80
	MOVQ           d0+0(FP), DI
	MOVQ           d1+8(FP), R8
	MOVQ           d2+16(FP), R9
	MOVQ           d3+24(FP), R10
	MOVQ           src+32(FP), SI
	MOVQ           n+40(FP), CX
	MOVQ           t0+48(FP), AX
	VBROADCASTI128 256(AX), Y4    // MulTable.Lo
	VBROADCASTI128 272(AX), Y5    // MulTable.Hi
	MOVQ           t1+56(FP), AX
	VBROADCASTI128 256(AX), Y6
	VBROADCASTI128 272(AX), Y7
	MOVQ           t2+64(FP), AX
	VBROADCASTI128 256(AX), Y8
	VBROADCASTI128 272(AX), Y9
	MOVQ           t3+72(FP), AX
	VBROADCASTI128 256(AX), Y10
	VBROADCASTI128 272(AX), Y11
	VBROADCASTI128 nibbleMask<>(SB), Y15
	XORQ           R11, R11

avx2f4loop:
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y2
	VPSRLW  $4, Y0, Y1
	VPAND   Y15, Y0, Y0
	VPAND   Y15, Y1, Y1
	VPSRLW  $4, Y2, Y3
	VPAND   Y15, Y2, Y2
	VPAND   Y15, Y3, Y3

	VPSHUFB Y0, Y4, Y12
	VPSHUFB Y1, Y5, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   (DI)(R11*1), Y12, Y12
	VMOVDQU Y12, (DI)(R11*1)
	VPSHUFB Y2, Y4, Y12
	VPSHUFB Y3, Y5, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   32(DI)(R11*1), Y12, Y12
	VMOVDQU Y12, 32(DI)(R11*1)

	VPSHUFB Y0, Y6, Y12
	VPSHUFB Y1, Y7, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   (R8)(R11*1), Y12, Y12
	VMOVDQU Y12, (R8)(R11*1)
	VPSHUFB Y2, Y6, Y12
	VPSHUFB Y3, Y7, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   32(R8)(R11*1), Y12, Y12
	VMOVDQU Y12, 32(R8)(R11*1)

	VPSHUFB Y0, Y8, Y12
	VPSHUFB Y1, Y9, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   (R9)(R11*1), Y12, Y12
	VMOVDQU Y12, (R9)(R11*1)
	VPSHUFB Y2, Y8, Y12
	VPSHUFB Y3, Y9, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   32(R9)(R11*1), Y12, Y12
	VMOVDQU Y12, 32(R9)(R11*1)

	VPSHUFB Y0, Y10, Y12
	VPSHUFB Y1, Y11, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   (R10)(R11*1), Y12, Y12
	VMOVDQU Y12, (R10)(R11*1)
	VPSHUFB Y2, Y10, Y12
	VPSHUFB Y3, Y11, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   32(R10)(R11*1), Y12, Y12
	VMOVDQU Y12, 32(R10)(R11*1)

	ADDQ $64, R11
	CMPQ R11, CX
	JLT  avx2f4loop
	VZEROUPPER
	RET

// func multXORFused2AVX2(d0, d1, src *byte, n int, t0, t1 *MulTable)
// Two-destination variant of multXORFused4AVX2 for fan-out remainders.
// n is a positive multiple of 64.
TEXT ·multXORFused2AVX2(SB), NOSPLIT, $0-48
	MOVQ           d0+0(FP), DI
	MOVQ           d1+8(FP), R8
	MOVQ           src+16(FP), SI
	MOVQ           n+24(FP), CX
	MOVQ           t0+32(FP), AX
	VBROADCASTI128 256(AX), Y4    // MulTable.Lo
	VBROADCASTI128 272(AX), Y5    // MulTable.Hi
	MOVQ           t1+40(FP), AX
	VBROADCASTI128 256(AX), Y6
	VBROADCASTI128 272(AX), Y7
	VBROADCASTI128 nibbleMask<>(SB), Y15
	XORQ           R11, R11

avx2f2loop:
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y2
	VPSRLW  $4, Y0, Y1
	VPAND   Y15, Y0, Y0
	VPAND   Y15, Y1, Y1
	VPSRLW  $4, Y2, Y3
	VPAND   Y15, Y2, Y2
	VPAND   Y15, Y3, Y3

	VPSHUFB Y0, Y4, Y12
	VPSHUFB Y1, Y5, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   (DI)(R11*1), Y12, Y12
	VMOVDQU Y12, (DI)(R11*1)
	VPSHUFB Y2, Y4, Y12
	VPSHUFB Y3, Y5, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   32(DI)(R11*1), Y12, Y12
	VMOVDQU Y12, 32(DI)(R11*1)

	VPSHUFB Y0, Y6, Y12
	VPSHUFB Y1, Y7, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   (R8)(R11*1), Y12, Y12
	VMOVDQU Y12, (R8)(R11*1)
	VPSHUFB Y2, Y6, Y12
	VPSHUFB Y3, Y7, Y13
	VPXOR   Y13, Y12, Y12
	VPXOR   32(R8)(R11*1), Y12, Y12
	VMOVDQU Y12, 32(R8)(R11*1)

	ADDQ $64, R11
	CMPQ R11, CX
	JLT  avx2f2loop
	VZEROUPPER
	RET

// func multXORGFNI(dst, src *byte, n int, mat uint64)
// GF(2^8)/GF(2^4) constant multiplication as one VGF2P8AFFINEQB per 32
// bytes: mat is the 8×8 bit matrix of v ↦ c·v (MulTable.Gfni), so the
// whole nibble split + double shuffle of the AVX2 path collapses into a
// single instruction that also runs on two execution ports. n is a
// positive multiple of 32.
TEXT ·multXORGFNI(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VPBROADCASTQ mat+24(FP), Y4

gfnimxloop:
	VMOVDQU        (SI), Y0
	VGF2P8AFFINEQB $0, Y4, Y0, Y1
	VPXOR          (DI), Y1, Y1
	VMOVDQU        Y1, (DI)
	ADDQ           $32, SI
	ADDQ           $32, DI
	SUBQ           $32, CX
	JNE            gfnimxloop
	VZEROUPPER
	RET

// func mulRegionGFNI(dst, src *byte, n int, mat uint64)
TEXT ·mulRegionGFNI(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VPBROADCASTQ mat+24(FP), Y4

gfnimrloop:
	VMOVDQU        (SI), Y0
	VGF2P8AFFINEQB $0, Y4, Y0, Y1
	VMOVDQU        Y1, (DI)
	ADDQ           $32, SI
	ADDQ           $32, DI
	SUBQ           $32, CX
	JNE            gfnimrloop
	VZEROUPPER
	RET

// func multXORFused4GFNI(d0, d1, d2, d3, src *byte, n int, m0, m1, m2, m3 uint64)
// Four destinations per source pass: the 64-byte source block is loaded
// once (Y0/Y1), each destination's multiply is one affine per half
// against its register-resident matrix (Y4-Y7). n is a positive
// multiple of 64.
TEXT ·multXORFused4GFNI(SB), NOSPLIT, $0-80
	MOVQ         d0+0(FP), DI
	MOVQ         d1+8(FP), R8
	MOVQ         d2+16(FP), R9
	MOVQ         d3+24(FP), R10
	MOVQ         src+32(FP), SI
	MOVQ         n+40(FP), CX
	VPBROADCASTQ m0+48(FP), Y4
	VPBROADCASTQ m1+56(FP), Y5
	VPBROADCASTQ m2+64(FP), Y6
	VPBROADCASTQ m3+72(FP), Y7
	XORQ         R11, R11

gfnif4loop:
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1

	VGF2P8AFFINEQB $0, Y4, Y0, Y2
	VGF2P8AFFINEQB $0, Y4, Y1, Y3
	VPXOR          (DI)(R11*1), Y2, Y2
	VPXOR          32(DI)(R11*1), Y3, Y3
	VMOVDQU        Y2, (DI)(R11*1)
	VMOVDQU        Y3, 32(DI)(R11*1)

	VGF2P8AFFINEQB $0, Y5, Y0, Y2
	VGF2P8AFFINEQB $0, Y5, Y1, Y3
	VPXOR          (R8)(R11*1), Y2, Y2
	VPXOR          32(R8)(R11*1), Y3, Y3
	VMOVDQU        Y2, (R8)(R11*1)
	VMOVDQU        Y3, 32(R8)(R11*1)

	VGF2P8AFFINEQB $0, Y6, Y0, Y2
	VGF2P8AFFINEQB $0, Y6, Y1, Y3
	VPXOR          (R9)(R11*1), Y2, Y2
	VPXOR          32(R9)(R11*1), Y3, Y3
	VMOVDQU        Y2, (R9)(R11*1)
	VMOVDQU        Y3, 32(R9)(R11*1)

	VGF2P8AFFINEQB $0, Y7, Y0, Y2
	VGF2P8AFFINEQB $0, Y7, Y1, Y3
	VPXOR          (R10)(R11*1), Y2, Y2
	VPXOR          32(R10)(R11*1), Y3, Y3
	VMOVDQU        Y2, (R10)(R11*1)
	VMOVDQU        Y3, 32(R10)(R11*1)

	ADDQ $64, R11
	CMPQ R11, CX
	JLT  gfnif4loop
	VZEROUPPER
	RET

// func multXORFused2GFNI(d0, d1, src *byte, n int, m0, m1 uint64)
// Two-destination variant for fan-out remainders. n is a positive
// multiple of 64.
TEXT ·multXORFused2GFNI(SB), NOSPLIT, $0-48
	MOVQ         d0+0(FP), DI
	MOVQ         d1+8(FP), R8
	MOVQ         src+16(FP), SI
	MOVQ         n+24(FP), CX
	VPBROADCASTQ m0+32(FP), Y4
	VPBROADCASTQ m1+40(FP), Y5
	XORQ         R11, R11

gfnif2loop:
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1

	VGF2P8AFFINEQB $0, Y4, Y0, Y2
	VGF2P8AFFINEQB $0, Y4, Y1, Y3
	VPXOR          (DI)(R11*1), Y2, Y2
	VPXOR          32(DI)(R11*1), Y3, Y3
	VMOVDQU        Y2, (DI)(R11*1)
	VMOVDQU        Y3, 32(DI)(R11*1)

	VGF2P8AFFINEQB $0, Y5, Y0, Y2
	VGF2P8AFFINEQB $0, Y5, Y1, Y3
	VPXOR          (R8)(R11*1), Y2, Y2
	VPXOR          32(R8)(R11*1), Y3, Y3
	VMOVDQU        Y2, (R8)(R11*1)
	VMOVDQU        Y3, 32(R8)(R11*1)

	ADDQ $64, R11
	CMPQ R11, CX
	JLT  gfnif2loop
	VZEROUPPER
	RET

// func multXORGFNI512(dst, src *byte, n int, mat uint64)
// EVEX/ZMM form: 64 products per affine. n is a positive multiple of 64.
TEXT ·multXORGFNI512(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VPBROADCASTQ mat+24(FP), Z4
	XORQ         R11, R11

gfni512xloop:
	VMOVDQU64      (SI)(R11*1), Z0
	VGF2P8AFFINEQB $0, Z4, Z0, Z2
	VPXORQ         (DI)(R11*1), Z2, Z2
	VMOVDQU64      Z2, (DI)(R11*1)
	ADDQ           $64, R11
	CMPQ           R11, CX
	JLT            gfni512xloop
	VZEROUPPER
	RET

// func mulRegionGFNI512(dst, src *byte, n int, mat uint64)
TEXT ·mulRegionGFNI512(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VPBROADCASTQ mat+24(FP), Z4
	XORQ         R11, R11

gfni512rloop:
	VMOVDQU64      (SI)(R11*1), Z0
	VGF2P8AFFINEQB $0, Z4, Z0, Z2
	VMOVDQU64      Z2, (DI)(R11*1)
	ADDQ           $64, R11
	CMPQ           R11, CX
	JLT            gfni512rloop
	VZEROUPPER
	RET

// func multXORFused4GFNI512(d0, d1, d2, d3, src *byte, n int, m0, m1, m2, m3 uint64)
// Four destinations per source pass, one 64-byte ZMM block per
// iteration: 1 source load + 4×(affine, xor, store). n is a positive
// multiple of 64.
TEXT ·multXORFused4GFNI512(SB), NOSPLIT, $0-80
	MOVQ         d0+0(FP), DI
	MOVQ         d1+8(FP), R8
	MOVQ         d2+16(FP), R9
	MOVQ         d3+24(FP), R10
	MOVQ         src+32(FP), SI
	MOVQ         n+40(FP), CX
	VPBROADCASTQ m0+48(FP), Z4
	VPBROADCASTQ m1+56(FP), Z5
	VPBROADCASTQ m2+64(FP), Z6
	VPBROADCASTQ m3+72(FP), Z7
	XORQ         R11, R11

gfni512f4loop:
	VMOVDQU64 (SI)(R11*1), Z0

	VGF2P8AFFINEQB $0, Z4, Z0, Z2
	VPXORQ         (DI)(R11*1), Z2, Z2
	VMOVDQU64      Z2, (DI)(R11*1)

	VGF2P8AFFINEQB $0, Z5, Z0, Z2
	VPXORQ         (R8)(R11*1), Z2, Z2
	VMOVDQU64      Z2, (R8)(R11*1)

	VGF2P8AFFINEQB $0, Z6, Z0, Z2
	VPXORQ         (R9)(R11*1), Z2, Z2
	VMOVDQU64      Z2, (R9)(R11*1)

	VGF2P8AFFINEQB $0, Z7, Z0, Z2
	VPXORQ         (R10)(R11*1), Z2, Z2
	VMOVDQU64      Z2, (R10)(R11*1)

	ADDQ $64, R11
	CMPQ R11, CX
	JLT  gfni512f4loop
	VZEROUPPER
	RET

// func multXORFused2GFNI512(d0, d1, src *byte, n int, m0, m1 uint64)
TEXT ·multXORFused2GFNI512(SB), NOSPLIT, $0-48
	MOVQ         d0+0(FP), DI
	MOVQ         d1+8(FP), R8
	MOVQ         src+16(FP), SI
	MOVQ         n+24(FP), CX
	VPBROADCASTQ m0+32(FP), Z4
	VPBROADCASTQ m1+40(FP), Z5
	XORQ         R11, R11

gfni512f2loop:
	VMOVDQU64 (SI)(R11*1), Z0

	VGF2P8AFFINEQB $0, Z4, Z0, Z2
	VPXORQ         (DI)(R11*1), Z2, Z2
	VMOVDQU64      Z2, (DI)(R11*1)

	VGF2P8AFFINEQB $0, Z5, Z0, Z2
	VPXORQ         (R8)(R11*1), Z2, Z2
	VMOVDQU64      Z2, (R8)(R11*1)

	ADDQ $64, R11
	CMPQ R11, CX
	JLT  gfni512f2loop
	VZEROUPPER
	RET

// func mulRegionFused4GFNI512(d0, d1, d2, d3, src *byte, n int, m0, m1, m2, m3 uint64)
// Overwrite form: destinations written, never read.
TEXT ·mulRegionFused4GFNI512(SB), NOSPLIT, $0-80
	MOVQ         d0+0(FP), DI
	MOVQ         d1+8(FP), R8
	MOVQ         d2+16(FP), R9
	MOVQ         d3+24(FP), R10
	MOVQ         src+32(FP), SI
	MOVQ         n+40(FP), CX
	VPBROADCASTQ m0+48(FP), Z4
	VPBROADCASTQ m1+56(FP), Z5
	VPBROADCASTQ m2+64(FP), Z6
	VPBROADCASTQ m3+72(FP), Z7
	XORQ         R11, R11

gfni512r4loop:
	VMOVDQU64 (SI)(R11*1), Z0

	VGF2P8AFFINEQB $0, Z4, Z0, Z2
	VMOVDQU64      Z2, (DI)(R11*1)

	VGF2P8AFFINEQB $0, Z5, Z0, Z2
	VMOVDQU64      Z2, (R8)(R11*1)

	VGF2P8AFFINEQB $0, Z6, Z0, Z2
	VMOVDQU64      Z2, (R9)(R11*1)

	VGF2P8AFFINEQB $0, Z7, Z0, Z2
	VMOVDQU64      Z2, (R10)(R11*1)

	ADDQ $64, R11
	CMPQ R11, CX
	JLT  gfni512r4loop
	VZEROUPPER
	RET

// func mulRegionFused4GFNI(d0, d1, d2, d3, src *byte, n int, m0, m1, m2, m3 uint64)
// Overwrite form of multXORFused4GFNI: destinations are written, never
// read — the planner's init groups use it to skip the zero-fill and the
// first accumulation's read of every output region. n is a positive
// multiple of 64.
TEXT ·mulRegionFused4GFNI(SB), NOSPLIT, $0-80
	MOVQ         d0+0(FP), DI
	MOVQ         d1+8(FP), R8
	MOVQ         d2+16(FP), R9
	MOVQ         d3+24(FP), R10
	MOVQ         src+32(FP), SI
	MOVQ         n+40(FP), CX
	VPBROADCASTQ m0+48(FP), Y4
	VPBROADCASTQ m1+56(FP), Y5
	VPBROADCASTQ m2+64(FP), Y6
	VPBROADCASTQ m3+72(FP), Y7
	XORQ         R11, R11

gfnir4loop:
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1

	VGF2P8AFFINEQB $0, Y4, Y0, Y2
	VGF2P8AFFINEQB $0, Y4, Y1, Y3
	VMOVDQU        Y2, (DI)(R11*1)
	VMOVDQU        Y3, 32(DI)(R11*1)

	VGF2P8AFFINEQB $0, Y5, Y0, Y2
	VGF2P8AFFINEQB $0, Y5, Y1, Y3
	VMOVDQU        Y2, (R8)(R11*1)
	VMOVDQU        Y3, 32(R8)(R11*1)

	VGF2P8AFFINEQB $0, Y6, Y0, Y2
	VGF2P8AFFINEQB $0, Y6, Y1, Y3
	VMOVDQU        Y2, (R9)(R11*1)
	VMOVDQU        Y3, 32(R9)(R11*1)

	VGF2P8AFFINEQB $0, Y7, Y0, Y2
	VGF2P8AFFINEQB $0, Y7, Y1, Y3
	VMOVDQU        Y2, (R10)(R11*1)
	VMOVDQU        Y3, 32(R10)(R11*1)

	ADDQ $64, R11
	CMPQ R11, CX
	JLT  gfnir4loop
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
