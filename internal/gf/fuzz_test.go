package gf

import (
	"bytes"
	"testing"
)

// Native fuzz targets differential-testing every registered kernel —
// assembly and portable alike — against the plain byte-loop reference.
// The fuzzer owns the coefficient, the region bytes, and an offset that
// slides the slices off any natural alignment, so vector heads, word
// bodies and ragged tails all get exercised from one corpus. CI runs a
// short -fuzz smoke on both targets; longer local runs just work:
//
//	go test ./internal/gf -fuzz FuzzMultXOR -fuzztime 60s

func fuzzRegions(data []byte, off byte) (dst, src []byte) {
	// Split the corpus bytes into two equal regions sharing one backing
	// array, sliced at off&7 so kernels see unaligned starts.
	o := int(off & 7)
	if len(data) < 2*o+2 {
		return nil, nil
	}
	n := (len(data) - 2*o) / 2
	return data[o : o+n : o+n], data[o+n+o : o+n+o+n]
}

func FuzzMultXOR(f *testing.F) {
	f.Add(byte(0x53), byte(0), make([]byte, 64))
	f.Add(byte(1), byte(1), bytes.Repeat([]byte{0xab}, 100))
	f.Add(byte(0xff), byte(7), make([]byte, 8192))
	f.Add(byte(2), byte(3), []byte{1, 2, 3})
	field := Get(8)
	f.Fuzz(func(t *testing.T, c, off byte, data []byte) {
		dst, src := fuzzRegions(data, off)
		if dst == nil {
			t.Skip()
		}
		tab := refMulTable(field, uint32(c))
		want := append([]byte(nil), dst...)
		refMultXOR(want, src, tab)
		// Through the public dispatched surface first, covering the
		// c==1 XOR fast path and the field's own table construction.
		got := append([]byte(nil), dst...)
		field.MultXOR(got, src, uint32(c))
		if !bytes.Equal(got, want) {
			t.Fatalf("Field.MultXOR(c=%#x, n=%d, off=%d) diverges from reference", c, len(src), off&7)
		}
		for _, k := range allKernels() {
			got = append(got[:0:0], dst...)
			k.MultXOR(got, src, tab)
			if !bytes.Equal(got, want) {
				t.Fatalf("kernel %s MultXOR(c=%#x, n=%d, off=%d) diverges from reference",
					k.Name(), c, len(src), off&7)
			}
			got = append(got[:0:0], dst...)
			k.MulRegion(got, src, tab)
			ref := append([]byte(nil), dst...)
			refMulRegion(ref, src, tab)
			if !bytes.Equal(got, ref) {
				t.Fatalf("kernel %s MulRegion(c=%#x, n=%d, off=%d) diverges from reference",
					k.Name(), c, len(src), off&7)
			}
		}
	})
}

func FuzzXORRegion(f *testing.F) {
	f.Add(byte(0), make([]byte, 32))
	f.Add(byte(5), bytes.Repeat([]byte{0x5a}, 4099))
	f.Add(byte(7), []byte{1})
	f.Fuzz(func(t *testing.T, off byte, data []byte) {
		dst, src := fuzzRegions(data, off)
		if dst == nil {
			t.Skip()
		}
		want := append([]byte(nil), dst...)
		for i := range want {
			want[i] ^= src[i]
		}
		for _, k := range allKernels() {
			got := append([]byte(nil), dst...)
			k.XORRegion(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("kernel %s XORRegion(n=%d, off=%d) diverges from reference", k.Name(), len(src), off&7)
			}
			// Involution through the dispatched surface: XOR twice
			// restores the region regardless of kernel.
			XORRegion(got, src)
			if !bytes.Equal(got, dst) {
				t.Fatalf("kernel %s double XOR did not round-trip (n=%d)", k.Name(), len(src))
			}
		}
	})
}
