//go:build (!amd64 && !arm64) || purego

package gf

// No assembly kernels on this target: either the architecture has none
// (the portable widened-word kernel registered in kernel.go serves every
// GOARCH, including 386) or the build carries the `purego` tag, which
// forces the portable path everywhere for auditability and as the CI
// baseline the SIMD kernels are differential-tested and bench-guarded
// against.
