//go:build arm64 && !purego

#include "textflag.h"

// arm64 NEON split-table GF region kernels. Register conventions:
//
//	R0  dst cursor     R1  src cursor     R2  bytes remaining
//	V4  low-nibble product table          V5  high-nibble product table
//	V6  0x0f byte mask
//
// Every n is a positive multiple of 16 (asserted by the Go wrappers),
// so the loops need no scalar epilogue.

// func multXORNEON(dst, src *byte, n int, lo, hi *byte)
// dst[i:i+16] ^= tbl(lo, src&0x0f) ^ tbl(hi, src>>4)
TEXT ·multXORNEON(SB), NOSPLIT, $0-40
	MOVD  dst+0(FP), R0
	MOVD  src+8(FP), R1
	MOVD  n+16(FP), R2
	MOVD  lo+24(FP), R3
	MOVD  hi+32(FP), R4
	VLD1  (R3), [V4.B16]
	VLD1  (R4), [V5.B16]
	VMOVI $15, V6.B16

neonmxloop:
	VLD1.P 16(R1), [V0.B16]
	VUSHR  $4, V0.B16, V1.B16    // high nibbles
	VAND   V6.B16, V0.B16, V0.B16 // low nibbles
	VTBL   V0.B16, [V4.B16], V2.B16
	VTBL   V1.B16, [V5.B16], V3.B16
	VEOR   V3.B16, V2.B16, V2.B16
	VLD1   (R0), [V0.B16]
	VEOR   V0.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    neonmxloop
	RET

// func mulRegionNEON(dst, src *byte, n int, lo, hi *byte)
// Same as multXORNEON without the dst read-modify-write.
TEXT ·mulRegionNEON(SB), NOSPLIT, $0-40
	MOVD  dst+0(FP), R0
	MOVD  src+8(FP), R1
	MOVD  n+16(FP), R2
	MOVD  lo+24(FP), R3
	MOVD  hi+32(FP), R4
	VLD1  (R3), [V4.B16]
	VLD1  (R4), [V5.B16]
	VMOVI $15, V6.B16

neonmrloop:
	VLD1.P 16(R1), [V0.B16]
	VUSHR  $4, V0.B16, V1.B16
	VAND   V6.B16, V0.B16, V0.B16
	VTBL   V0.B16, [V4.B16], V2.B16
	VTBL   V1.B16, [V5.B16], V3.B16
	VEOR   V3.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    neonmrloop
	RET

// func xorRegionNEON(dst, src *byte, n int)
TEXT ·xorRegionNEON(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2

neonxloop:
	VLD1.P 16(R1), [V0.B16]
	VLD1   (R0), [V1.B16]
	VEOR   V1.B16, V0.B16, V0.B16
	VST1.P [V0.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    neonxloop
	RET
