//go:build arm64 && !purego

#include "textflag.h"

// arm64 NEON split-table GF region kernels. Register conventions:
//
//	R0  dst cursor     R1  src cursor     R2  bytes remaining
//	V4  low-nibble product table          V5  high-nibble product table
//	V6  0x0f byte mask
//
// Every n is a positive multiple of 16 (asserted by the Go wrappers),
// so the loops need no scalar epilogue.

// func multXORNEON(dst, src *byte, n int, lo, hi *byte)
// dst[i:i+16] ^= tbl(lo, src&0x0f) ^ tbl(hi, src>>4)
TEXT ·multXORNEON(SB), NOSPLIT, $0-40
	MOVD  dst+0(FP), R0
	MOVD  src+8(FP), R1
	MOVD  n+16(FP), R2
	MOVD  lo+24(FP), R3
	MOVD  hi+32(FP), R4
	VLD1  (R3), [V4.B16]
	VLD1  (R4), [V5.B16]
	VMOVI $15, V6.B16

neonmxloop:
	VLD1.P 16(R1), [V0.B16]
	VUSHR  $4, V0.B16, V1.B16    // high nibbles
	VAND   V6.B16, V0.B16, V0.B16 // low nibbles
	VTBL   V0.B16, [V4.B16], V2.B16
	VTBL   V1.B16, [V5.B16], V3.B16
	VEOR   V3.B16, V2.B16, V2.B16
	VLD1   (R0), [V0.B16]
	VEOR   V0.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    neonmxloop
	RET

// func mulRegionNEON(dst, src *byte, n int, lo, hi *byte)
// Same as multXORNEON without the dst read-modify-write.
TEXT ·mulRegionNEON(SB), NOSPLIT, $0-40
	MOVD  dst+0(FP), R0
	MOVD  src+8(FP), R1
	MOVD  n+16(FP), R2
	MOVD  lo+24(FP), R3
	MOVD  hi+32(FP), R4
	VLD1  (R3), [V4.B16]
	VLD1  (R4), [V5.B16]
	VMOVI $15, V6.B16

neonmrloop:
	VLD1.P 16(R1), [V0.B16]
	VUSHR  $4, V0.B16, V1.B16
	VAND   V6.B16, V0.B16, V0.B16
	VTBL   V0.B16, [V4.B16], V2.B16
	VTBL   V1.B16, [V5.B16], V3.B16
	VEOR   V3.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    neonmrloop
	RET

// func multXORFusedNEON(dsts [][]byte, tabs []*MulTable, src []byte)
// For each 32-byte source block: split into nibbles once (V0-V3), then
// for every destination j load its split tables from tabs[j] (Lo and Hi
// are contiguous at struct offset 256, one VLD1 pair), table-translate
// and XOR into dsts[j] at the same offset. The source block never leaves
// registers while the destination loop runs. len(src) is a positive
// multiple of 32; the wrapper handles the ragged tail.
//
// Register conventions (fused routine):
//
//	R0  dsts slice headers    R1  tabs pointer array   R5  ndst
//	R2  src base              R3  n                    R6  block offset
//	R8  destination index     R9  table pointer        R11 dst cursor
TEXT ·multXORFusedNEON(SB), NOSPLIT, $0-72
	MOVD  dsts_base+0(FP), R0
	MOVD  dsts_len+8(FP), R5
	MOVD  tabs_base+24(FP), R1
	MOVD  src_base+48(FP), R2
	MOVD  src_len+56(FP), R3
	VMOVI $15, V7.B16
	MOVD  $0, R6

neonfblock:
	ADD  R6, R2, R7
	VLD1 (R7), [V0.B16, V1.B16]
	VUSHR $4, V0.B16, V2.B16      // high nibbles, bytes 0-15
	VUSHR $4, V1.B16, V3.B16      // high nibbles, bytes 16-31
	VAND  V7.B16, V0.B16, V0.B16  // low nibbles, bytes 0-15
	VAND  V7.B16, V1.B16, V1.B16  // low nibbles, bytes 16-31
	MOVD  $0, R8

neonfdst:
	MOVD (R1)(R8<<3), R9
	ADD  $256, R9                 // &MulTable.Lo; Hi follows at +16
	VLD1 (R9), [V4.B16, V5.B16]
	LSL  $1, R8, R10
	ADD  R8, R10, R10
	LSL  $3, R10, R10             // R10 = j*24, the slice-header stride
	MOVD (R0)(R10), R11
	ADD  R6, R11, R11
	VLD1 (R11), [V16.B16, V17.B16]
	VTBL V0.B16, [V4.B16], V20.B16
	VTBL V2.B16, [V5.B16], V21.B16
	VEOR V21.B16, V20.B16, V20.B16
	VEOR V16.B16, V20.B16, V20.B16
	VTBL V1.B16, [V4.B16], V22.B16
	VTBL V3.B16, [V5.B16], V23.B16
	VEOR V23.B16, V22.B16, V22.B16
	VEOR V17.B16, V22.B16, V21.B16
	VST1 [V20.B16, V21.B16], (R11)
	ADD  $1, R8
	CMP  R5, R8
	BLT  neonfdst

	ADD  $32, R6
	CMP  R3, R6
	BLT  neonfblock
	RET

// func xorRegionNEON(dst, src *byte, n int)
TEXT ·xorRegionNEON(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2

neonxloop:
	VLD1.P 16(R1), [V0.B16]
	VLD1   (R0), [V1.B16]
	VEOR   V1.B16, V0.B16, V0.B16
	VST1.P [V0.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    neonxloop
	RET
