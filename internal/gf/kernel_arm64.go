//go:build arm64 && !purego

package gf

// arm64 NEON kernels: the same 4-bit split-table scheme as the amd64
// PSHUFB kernels, using TBL — AdvSIMD's 16-byte table lookup — which is
// baseline on every arm64 core, so registration is unconditional.
// Assembly handles whole 16-byte vectors; the wrappers finish ragged
// tails through the shared scalar helpers in kernel.go.

// Assembly routines (kernel_arm64.s). n must be a positive multiple
// of 16.
//
//go:noescape
func multXORNEON(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func mulRegionNEON(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func xorRegionNEON(dst, src *byte, n int)

type neonKernel struct{}

func (neonKernel) Name() string { return "neon" }

func (neonKernel) MultXOR(dst, src []byte, t *MulTable) {
	n := len(src) &^ 15
	if n > 0 {
		multXORNEON(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	multXORTail(dst[n:], src[n:], t)
}

func (neonKernel) MulRegion(dst, src []byte, t *MulTable) {
	n := len(src) &^ 15
	if n > 0 {
		mulRegionNEON(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	mulRegionTail(dst[n:], src[n:], t)
}

func (neonKernel) XORRegion(dst, src []byte) {
	n := len(src) &^ 15
	if n > 0 {
		xorRegionNEON(&dst[0], &src[0], n)
	}
	xorTail(dst[n:], src[n:])
}

func init() { registerKernel(neonKernel{}, 2) }
