//go:build arm64 && !purego

package gf

// arm64 NEON kernels: the same 4-bit split-table scheme as the amd64
// PSHUFB kernels, using TBL — AdvSIMD's 16-byte table lookup — which is
// baseline on every arm64 core, so registration is unconditional.
// Assembly handles whole 16-byte vectors; the wrappers finish ragged
// tails through the shared scalar helpers in kernel.go.

// Assembly routines (kernel_arm64.s). n must be a positive multiple
// of 16.
//
//go:noescape
func multXORNEON(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func mulRegionNEON(dst, src *byte, n int, lo, hi *byte)

//go:noescape
func xorRegionNEON(dst, src *byte, n int)

// Fused routine: one pass over src updating every destination, the
// source block register-resident across destinations. len(src) must be a
// positive multiple of 32; every dsts[i] must be at least len(src) bytes
// and len(tabs) == len(dsts). The assembly walks the dsts slice headers
// and loads each MulTable's Lo+Hi pair contiguously at struct offset 256
// (layout pinned by the constant assertions next to MulTable in
// kernel.go).
//
//go:noescape
func multXORFusedNEON(dsts [][]byte, tabs []*MulTable, src []byte)

type neonKernel struct{}

func (neonKernel) Name() string { return "neon" }

func (neonKernel) MultXOR(dst, src []byte, t *MulTable) {
	n := len(src) &^ 15
	if n > 0 {
		multXORNEON(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	multXORTail(dst[n:], src[n:], t)
}

func (neonKernel) MulRegion(dst, src []byte, t *MulTable) {
	n := len(src) &^ 15
	if n > 0 {
		mulRegionNEON(&dst[0], &src[0], n, &t.Lo[0], &t.Hi[0])
	}
	mulRegionTail(dst[n:], src[n:], t)
}

func (neonKernel) XORRegion(dst, src []byte) {
	n := len(src) &^ 15
	if n > 0 {
		xorRegionNEON(&dst[0], &src[0], n)
	}
	xorTail(dst[n:], src[n:])
}

func (k neonKernel) MultXORFused(dsts [][]byte, src []byte, tables []*MulTable) {
	n := len(src) &^ 31
	if n > 0 && len(dsts) > 0 {
		multXORFusedNEON(dsts, tables, src[:n])
	}
	for i, d := range dsts {
		k.MultXOR(d[n:len(src)], src[n:], tables[i])
	}
}

func (k neonKernel) MulRegionFused(dsts [][]byte, src []byte, tables []*MulTable) {
	mulRegionFusedByChunks(k, dsts, src, tables)
}

func init() { registerKernel(neonKernel{}, 2) }
