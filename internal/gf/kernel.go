package gf

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the pluggable kernel layer behind the region operations.
//
// The STAIR paper's implementation owes its speed numbers to GF-Complete's
// SIMD split-table multiplication: §5.3 reduces all encoding work to
// Mult_XOR region ops, and GF-Complete computes them 16–32 bytes at a time
// with PSHUFB/TBL nibble lookups. This port reproduces that design as a
// small Kernel interface with runtime CPU dispatch: assembly kernels for
// amd64 (SSSE3 and AVX2) and arm64 (NEON) where the build allows them, and
// a portable widened-word fallback everywhere else (including the `purego`
// build tag and GOARCH targets without an assembly kernel).
//
// A kernel operates on GF(2^8) symbol regions through a MulTable — the
// per-coefficient lookup state derived from the field's full product
// table: the 256-entry row for scalar/tail work plus the 16-entry low-
// and high-nibble split tables the SIMD paths shuffle against. GF(2^4)
// regions reuse the same kernels (its split table has an all-zero high
// half, see buildTables); GF(2^16) always takes the portable widened
// two-table path in gf.go.

// MulTable is the per-coefficient lookup state for GF(2^8)/GF(2^4) region
// kernels: the full multiply-by-c row plus its 4-bit split tables.
//
// For every byte v, Row[v] == Lo[v&0x0f] ^ Hi[v>>4]; the SIMD kernels
// exploit that identity to translate 16 or 32 bytes per shuffle while the
// scalar paths index Row directly.
type MulTable struct {
	Row [256]byte // Row[v] = c·v
	Lo  [16]byte  // Lo[x] = c·x            (low-nibble products)
	Hi  [16]byte  // Hi[x] = c·(x<<4)       (high-nibble products)
}

// Kernel implements the three region primitives every encode and decode
// schedule in this module decomposes into. Implementations may assume
// dst and src have equal length (the Field front ends validate), must
// handle any length including zero and misaligned slices, and must be
// safe for concurrent use (kernels are stateless).
type Kernel interface {
	// Name identifies the kernel in benchmarks, BENCH_*.json entries and
	// the STAIR_GF_KERNEL override ("avx2", "ssse3", "neon", "portable").
	Name() string
	// MultXOR computes dst ^= c·src, c described by t.
	MultXOR(dst, src []byte, t *MulTable)
	// MulRegion computes dst = c·src, c described by t.
	MulRegion(dst, src []byte, t *MulTable)
	// XORRegion computes dst ^= src.
	XORRegion(dst, src []byte)
}

// registeredKernel pairs a kernel with its dispatch priority; higher wins.
// The portable kernel registers at priority 0, architecture init()s add
// their kernels above it when the CPU supports them.
type registeredKernel struct {
	k        Kernel
	priority int
}

var (
	kernelMu       sync.Mutex
	kernelRegistry []registeredKernel
	// kernelActive caches the dispatch choice. It is the only kernel
	// state touched on the hot path: region ops are called per sector in
	// tight encode loops, so selection must cost one atomic load, not a
	// mutex (which would also bounce a contended cacheline across the
	// store's flush/repair worker pools). nil means "not chosen yet".
	kernelActive atomic.Pointer[chosenKernel]
)

// chosenKernel wraps the interface value so the atomic pointer has a
// concrete type to point at.
type chosenKernel struct{ k Kernel }

// registerKernel adds a kernel to the dispatch table. It is called from
// package init() functions only, before any region op can run.
func registerKernel(k Kernel, priority int) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	kernelRegistry = append(kernelRegistry, registeredKernel{k, priority})
	sort.SliceStable(kernelRegistry, func(i, j int) bool {
		return kernelRegistry[i].priority > kernelRegistry[j].priority
	})
	kernelActive.Store(nil) // re-pick if registration races a Get (init order)
}

// activeKernel returns the dispatched kernel, honouring the
// STAIR_GF_KERNEL environment override on first use.
func activeKernel() Kernel {
	if c := kernelActive.Load(); c != nil {
		return c.k
	}
	return chooseKernel()
}

// chooseKernel is the cold path of activeKernel.
func chooseKernel() Kernel {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if c := kernelActive.Load(); c != nil {
		return c.k
	}
	k := pickKernel(os.Getenv("STAIR_GF_KERNEL"))
	kernelActive.Store(&chosenKernel{k})
	return k
}

// pickKernel resolves the dispatch choice: the highest-priority registered
// kernel, unless the override names a specific one. An unknown override
// panics — an A/B run measuring the wrong kernel is worse than no run.
// Called with kernelMu held.
func pickKernel(override string) Kernel {
	if override == "" {
		return kernelRegistry[0].k
	}
	for _, r := range kernelRegistry {
		if r.k.Name() == override {
			return r.k
		}
	}
	panic(fmt.Sprintf("gf: STAIR_GF_KERNEL=%q does not name a usable kernel on this CPU (have %v)",
		override, kernelNamesLocked()))
}

// KernelNames lists the usable kernels in dispatch-priority order (the
// first entry is what runs unless STAIR_GF_KERNEL overrides it).
func KernelNames() []string {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	return kernelNamesLocked()
}

func kernelNamesLocked() []string {
	names := make([]string, len(kernelRegistry))
	for i, r := range kernelRegistry {
		names[i] = r.k.Name()
	}
	return names
}

// ActiveKernelName reports which kernel region operations dispatch to.
func ActiveKernelName() string { return activeKernel().Name() }

// kernelByName fetches a registered kernel for tests and benchmarks that
// exercise every code path regardless of dispatch.
func kernelByName(name string) (Kernel, bool) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	for _, r := range kernelRegistry {
		if r.k.Name() == name {
			return r.k, true
		}
	}
	return nil, false
}

// resetKernelForTest forces re-selection (re-reading STAIR_GF_KERNEL) on
// the next region op. Test-only.
func resetKernelForTest() {
	kernelActive.Store(nil)
}

// ---------------------------------------------------------------------------
// Shared scalar tails.
//
// Every kernel — assembly or portable — finishes through these helpers, so
// ragged tails and sub-vector regions behave identically on every code
// path. (Before the kernel layer, XORRegion's uint64 widening quietly fell
// back to a private byte loop for unaligned/short tails; hoisting the tail
// into one shared, tested helper is what keeps a 4097-byte region on AVX2
// and the same region on purego byte-for-byte identical.)

// xorTail computes dst ^= src for the len(dst) == len(src) remainder of a
// region, uint64 words first, bytes for what's left. On little-endian
// targets the Uint64/PutUint64 pairs compile to single unaligned loads and
// stores, so each iteration is one 64-bit XOR instead of eight byte ops.
func xorTail(dst, src []byte) {
	n := len(src)
	i := 0
	// Two words per iteration: enough ILP to keep the load/store ports
	// busy without the compiler's bounds checks dominating.
	for ; i+16 <= n; i += 16 {
		a := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		b := binary.LittleEndian.Uint64(dst[i+8:]) ^ binary.LittleEndian.Uint64(src[i+8:])
		binary.LittleEndian.PutUint64(dst[i:], a)
		binary.LittleEndian.PutUint64(dst[i+8:], b)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// multXORTail computes dst ^= c·src through the table row, one byte at a
// time. It is the tail helper behind every MultXOR kernel and the
// reference the fuzz targets differential-test against.
func multXORTail(dst, src []byte, t *MulTable) {
	for i, v := range src {
		dst[i] ^= t.Row[v]
	}
}

// mulRegionTail computes dst = c·src through the table row.
func mulRegionTail(dst, src []byte, t *MulTable) {
	for i, v := range src {
		dst[i] = t.Row[v]
	}
}

// ---------------------------------------------------------------------------
// Portable kernel.

// portableKernel is the widened-word fallback: products are assembled
// eight table lookups at a time into a uint64 so the read-modify-write
// against dst happens once per word instead of once per byte. It is the
// only kernel under the `purego` build tag and on architectures without
// an assembly kernel, and the baseline the CI bench guard holds the
// dispatched kernel against.
type portableKernel struct{}

func (portableKernel) Name() string { return "portable" }

func (portableKernel) MultXOR(dst, src []byte, t *MulTable) {
	row := &t.Row
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		p := uint64(row[src[i]]) |
			uint64(row[src[i+1]])<<8 |
			uint64(row[src[i+2]])<<16 |
			uint64(row[src[i+3]])<<24 |
			uint64(row[src[i+4]])<<32 |
			uint64(row[src[i+5]])<<40 |
			uint64(row[src[i+6]])<<48 |
			uint64(row[src[i+7]])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	multXORTail(dst[i:], src[i:], t)
}

func (portableKernel) MulRegion(dst, src []byte, t *MulTable) {
	row := &t.Row
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		p := uint64(row[src[i]]) |
			uint64(row[src[i+1]])<<8 |
			uint64(row[src[i+2]])<<16 |
			uint64(row[src[i+3]])<<24 |
			uint64(row[src[i+4]])<<32 |
			uint64(row[src[i+5]])<<40 |
			uint64(row[src[i+6]])<<48 |
			uint64(row[src[i+7]])<<56
		binary.LittleEndian.PutUint64(dst[i:], p)
	}
	mulRegionTail(dst[i:], src[i:], t)
}

func (portableKernel) XORRegion(dst, src []byte) { xorTail(dst, src) }

func init() { registerKernel(portableKernel{}, 0) }
