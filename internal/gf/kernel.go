package gf

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// This file is the pluggable kernel layer behind the region operations.
//
// The STAIR paper's implementation owes its speed numbers to GF-Complete's
// SIMD split-table multiplication: §5.3 reduces all encoding work to
// Mult_XOR region ops, and GF-Complete computes them 16–32 bytes at a time
// with PSHUFB/TBL nibble lookups. This port reproduces that design as a
// small Kernel interface with runtime CPU dispatch: assembly kernels for
// amd64 (SSSE3 and AVX2) and arm64 (NEON) where the build allows them, and
// a portable widened-word fallback everywhere else (including the `purego`
// build tag and GOARCH targets without an assembly kernel).
//
// A kernel operates on GF(2^8) symbol regions through a MulTable — the
// per-coefficient lookup state derived from the field's full product
// table: the 256-entry row for scalar/tail work plus the 16-entry low-
// and high-nibble split tables the SIMD paths shuffle against. GF(2^4)
// regions reuse the same kernels (its split table has an all-zero high
// half, see buildTables); GF(2^16) always takes the portable widened
// two-table path in gf.go.

// MulTable is the per-coefficient lookup state for GF(2^8)/GF(2^4) region
// kernels: the full multiply-by-c row plus its 4-bit split tables.
//
// For every byte v, Row[v] == Lo[v&0x0f] ^ Hi[v>>4]; the SIMD kernels
// exploit that identity to translate 16 or 32 bytes per shuffle while the
// scalar paths index Row directly.
type MulTable struct {
	Row  [256]byte // Row[v] = c·v
	Lo   [16]byte  // Lo[x] = c·x            (low-nibble products)
	Hi   [16]byte  // Hi[x] = c·(x<<4)       (high-nibble products)
	Gfni uint64    // 8×8 bit matrix of v ↦ c·v for VGF2P8AFFINEQB
}

// The fused assembly routines (amd64, arm64) address Lo at byte offset
// 256 and Hi at 272 from a *MulTable; these constants refuse to compile
// (negative shift into uint) if the struct layout ever drifts.
const (
	_ = uint(unsafe.Offsetof(MulTable{}.Lo) - 256)
	_ = uint(256 - unsafe.Offsetof(MulTable{}.Lo))
	_ = uint(unsafe.Offsetof(MulTable{}.Hi) - 272)
	_ = uint(272 - unsafe.Offsetof(MulTable{}.Hi))
)

// gfniMatrix derives the VGF2P8AFFINEQB bit matrix for a coefficient
// from its product row. Row is GF(2)-linear in the input byte for both
// w=8 (c·v) and w=4 (c·(v&0x0f), high rows zero), so the map is fully
// determined by the images of the eight basis bytes 1<<k. The
// instruction reads output bit i's row from matrix byte 7-i, with row
// bit k selecting input bit k.
func gfniMatrix(row *[256]byte) uint64 {
	var m uint64
	for bit := 0; bit < 8; bit++ {
		var r byte
		for k := 0; k < 8; k++ {
			if row[1<<k]>>bit&1 == 1 {
				r |= 1 << k
			}
		}
		m |= uint64(r) << (8 * (7 - bit))
	}
	return m
}

// Kernel implements the region primitives every encode and decode
// schedule in this module decomposes into. Implementations may assume
// dst and src have equal length (the Field front ends validate), must
// handle any length including zero and misaligned slices, and must be
// safe for concurrent use (kernels are stateless).
type Kernel interface {
	// Name identifies the kernel in benchmarks, BENCH_*.json entries and
	// the STAIR_GF_KERNEL override ("avx2", "ssse3", "neon", "portable").
	Name() string
	// MultXOR computes dst ^= c·src, c described by t.
	MultXOR(dst, src []byte, t *MulTable)
	// MulRegion computes dst = c·src, c described by t.
	MulRegion(dst, src []byte, t *MulTable)
	// XORRegion computes dst ^= src.
	XORRegion(dst, src []byte)
	// MultXORFused computes dsts[i] ^= c_i·src for every destination in
	// one pass over src, c_i described by tables[i]. It is the ISA-L
	// ec_encode_data shape: the SIMD implementations keep each source
	// tile register-resident while updating all destinations, so a
	// multi-parity encode reads its sources once instead of once per
	// parity row. len(tables) must equal len(dsts) and every dst must be
	// at least len(src) bytes; results are byte-identical to calling
	// MultXOR(dsts[i], src, tables[i]) for each i in any order. dsts must
	// not overlap src or each other.
	MultXORFused(dsts [][]byte, src []byte, tables []*MulTable)
	// MulRegionFused is the overwrite form of MultXORFused: dsts[i] =
	// c_i·src, no read of the destinations' prior contents. The planner
	// uses it for each destination's first term, saving the zero-fill
	// write and the first accumulation's read of every output region.
	// Same contract as MultXORFused otherwise.
	MulRegionFused(dsts [][]byte, src []byte, tables []*MulTable)
}

// registeredKernel pairs a kernel with its dispatch priority; higher wins.
// The portable kernel registers at priority 0, architecture init()s add
// their kernels above it when the CPU supports them.
type registeredKernel struct {
	k        Kernel
	priority int
}

var (
	kernelMu       sync.Mutex
	kernelRegistry []registeredKernel
	// kernelActive caches the dispatch choice. It is the only kernel
	// state touched on the hot path: region ops are called per sector in
	// tight encode loops, so selection must cost one atomic load, not a
	// mutex (which would also bounce a contended cacheline across the
	// store's flush/repair worker pools). nil means "not chosen yet".
	kernelActive atomic.Pointer[chosenKernel]
)

// chosenKernel wraps the interface value so the atomic pointer has a
// concrete type to point at.
type chosenKernel struct{ k Kernel }

// registerKernel adds a kernel to the dispatch table. It is called from
// package init() functions only, before any region op can run.
func registerKernel(k Kernel, priority int) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	kernelRegistry = append(kernelRegistry, registeredKernel{k, priority})
	sort.SliceStable(kernelRegistry, func(i, j int) bool {
		return kernelRegistry[i].priority > kernelRegistry[j].priority
	})
	kernelActive.Store(nil) // re-pick if registration races a Get (init order)
}

// Init resolves kernel dispatch eagerly, honouring the STAIR_GF_KERNEL
// environment override, and reports an unusable override as an error. It
// is idempotent and safe for concurrent use. Call it (directly, or via
// NewField/Get — every Field construction routes through it) at startup
// so a typo'd override surfaces as a clean error there rather than a
// panic deep inside the first region op.
func Init() error {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if kernelActive.Load() != nil {
		return nil
	}
	k, err := pickKernel(os.Getenv("STAIR_GF_KERNEL"))
	if err != nil {
		return err
	}
	kernelActive.Store(&chosenKernel{k})
	return nil
}

// activeKernel returns the dispatched kernel, honouring the
// STAIR_GF_KERNEL environment override on first use.
func activeKernel() Kernel {
	if c := kernelActive.Load(); c != nil {
		return c.k
	}
	return chooseKernel()
}

// chooseKernel is the cold path of activeKernel. Region ops cannot
// return errors, so a bad override that survived to this point (the
// caller bypassed Init and every Field constructor) still panics; the
// supported startup surfaces turn it into an error first.
func chooseKernel() Kernel {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if c := kernelActive.Load(); c != nil {
		return c.k
	}
	k, err := pickKernel(os.Getenv("STAIR_GF_KERNEL"))
	if err != nil {
		panic(err)
	}
	kernelActive.Store(&chosenKernel{k})
	return k
}

// pickKernel resolves the dispatch choice: the highest-priority registered
// kernel, unless the override names a specific one. An unknown override is
// an error — an A/B run measuring the wrong kernel is worse than no run —
// surfaced from Init and Field construction. An empty registry can only
// mean internal misregistration (the portable kernel registers
// unconditionally), so that stays a panic. Called with kernelMu held.
func pickKernel(override string) (Kernel, error) {
	if len(kernelRegistry) == 0 {
		panic("gf: no region kernels registered (portable kernel init missing)")
	}
	if override == "" {
		return kernelRegistry[0].k, nil
	}
	for _, r := range kernelRegistry {
		if r.k.Name() == override {
			return r.k, nil
		}
	}
	return nil, fmt.Errorf("gf: STAIR_GF_KERNEL=%q does not name a usable kernel on this CPU (have %v)",
		override, kernelNamesLocked())
}

// KernelNames lists the usable kernels in dispatch-priority order (the
// first entry is what runs unless STAIR_GF_KERNEL overrides it).
func KernelNames() []string {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	return kernelNamesLocked()
}

func kernelNamesLocked() []string {
	names := make([]string, len(kernelRegistry))
	for i, r := range kernelRegistry {
		names[i] = r.k.Name()
	}
	return names
}

// ActiveKernelName reports which kernel region operations dispatch to.
func ActiveKernelName() string { return activeKernel().Name() }

// kernelByName fetches a registered kernel for tests and benchmarks that
// exercise every code path regardless of dispatch.
func kernelByName(name string) (Kernel, bool) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	for _, r := range kernelRegistry {
		if r.k.Name() == name {
			return r.k, true
		}
	}
	return nil, false
}

// resetKernelForTest forces re-selection (re-reading STAIR_GF_KERNEL) on
// the next region op. Test-only.
func resetKernelForTest() {
	kernelActive.Store(nil)
}

// ---------------------------------------------------------------------------
// Shared scalar tails.
//
// Every kernel — assembly or portable — finishes through these helpers, so
// ragged tails and sub-vector regions behave identically on every code
// path. (Before the kernel layer, XORRegion's uint64 widening quietly fell
// back to a private byte loop for unaligned/short tails; hoisting the tail
// into one shared, tested helper is what keeps a 4097-byte region on AVX2
// and the same region on purego byte-for-byte identical.)

// xorTail computes dst ^= src for the len(dst) == len(src) remainder of a
// region, uint64 words first, bytes for what's left. On little-endian
// targets the Uint64/PutUint64 pairs compile to single unaligned loads and
// stores, so each iteration is one 64-bit XOR instead of eight byte ops.
func xorTail(dst, src []byte) {
	n := len(src)
	i := 0
	// Two words per iteration: enough ILP to keep the load/store ports
	// busy without the compiler's bounds checks dominating.
	for ; i+16 <= n; i += 16 {
		a := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		b := binary.LittleEndian.Uint64(dst[i+8:]) ^ binary.LittleEndian.Uint64(src[i+8:])
		binary.LittleEndian.PutUint64(dst[i:], a)
		binary.LittleEndian.PutUint64(dst[i+8:], b)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// multXORTail computes dst ^= c·src through the table row, one byte at a
// time. It is the tail helper behind every MultXOR kernel and the
// reference the fuzz targets differential-test against.
func multXORTail(dst, src []byte, t *MulTable) {
	for i, v := range src {
		dst[i] ^= t.Row[v]
	}
}

// mulRegionTail computes dst = c·src through the table row.
func mulRegionTail(dst, src []byte, t *MulTable) {
	for i, v := range src {
		dst[i] = t.Row[v]
	}
}

// ---------------------------------------------------------------------------
// Portable kernel.

// portableKernel is the widened-word fallback: products are assembled
// eight table lookups at a time into a uint64 so the read-modify-write
// against dst happens once per word instead of once per byte. It is the
// only kernel under the `purego` build tag and on architectures without
// an assembly kernel, and the baseline the CI bench guard holds the
// dispatched kernel against.
type portableKernel struct{}

func (portableKernel) Name() string { return "portable" }

func (portableKernel) MultXOR(dst, src []byte, t *MulTable) {
	row := &t.Row
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		p := uint64(row[src[i]]) |
			uint64(row[src[i+1]])<<8 |
			uint64(row[src[i+2]])<<16 |
			uint64(row[src[i+3]])<<24 |
			uint64(row[src[i+4]])<<32 |
			uint64(row[src[i+5]])<<40 |
			uint64(row[src[i+6]])<<48 |
			uint64(row[src[i+7]])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	multXORTail(dst[i:], src[i:], t)
}

func (portableKernel) MulRegion(dst, src []byte, t *MulTable) {
	row := &t.Row
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		p := uint64(row[src[i]]) |
			uint64(row[src[i+1]])<<8 |
			uint64(row[src[i+2]])<<16 |
			uint64(row[src[i+3]])<<24 |
			uint64(row[src[i+4]])<<32 |
			uint64(row[src[i+5]])<<40 |
			uint64(row[src[i+6]])<<48 |
			uint64(row[src[i+7]])<<56
		binary.LittleEndian.PutUint64(dst[i:], p)
	}
	mulRegionTail(dst[i:], src[i:], t)
}

func (portableKernel) XORRegion(dst, src []byte) { xorTail(dst, src) }

// fusedChunk is the number of source bytes the portable fused op sweeps
// per destination round. Small enough that the chunk stays L1-resident
// while every destination consumes it, large enough to amortise the
// per-destination loop setup.
const fusedChunk = 4096

// MultXORFused on the portable kernel is the reference the SIMD fused
// paths are differential-tested against: the exact composition of the
// per-destination MultXOR, swept in L1-sized source chunks so each chunk
// is read from cache (not memory) for all but the first destination.
func (p portableKernel) MultXORFused(dsts [][]byte, src []byte, tables []*MulTable) {
	for off := 0; off < len(src); off += fusedChunk {
		end := off + fusedChunk
		if end > len(src) {
			end = len(src)
		}
		s := src[off:end]
		for i, d := range dsts {
			p.MultXOR(d[off:end], s, tables[i])
		}
	}
}

// MulRegionFused is the overwrite counterpart, composed from MulRegion
// the same way.
func (p portableKernel) MulRegionFused(dsts [][]byte, src []byte, tables []*MulTable) {
	mulRegionFusedByChunks(p, dsts, src, tables)
}

// mulRegionFusedByChunks composes a kernel's MulRegionFused from its own
// per-destination MulRegion, sweeping L1-sized source chunks so the
// source is read from cache for all but the first destination. The
// overwrite form has no destination reads to fuse away, so this
// composition already captures the op's traffic savings; kernels with a
// register-resident fused form (GFNI) override it anyway.
func mulRegionFusedByChunks(k Kernel, dsts [][]byte, src []byte, tables []*MulTable) {
	for off := 0; off < len(src); off += fusedChunk {
		end := off + fusedChunk
		if end > len(src) {
			end = len(src)
		}
		s := src[off:end]
		for i, d := range dsts {
			k.MulRegion(d[off:end], s, tables[i])
		}
	}
}

func init() { registerKernel(portableKernel{}, 0) }
