package gf

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// Differential coverage for the fused region op: every registered kernel
// must agree byte-for-byte with composing the portable per-op kernel,
// over random destination counts, ragged tails, and unaligned offsets.

// refMultXORFused composes the per-destination byte-loop reference — the
// semantics MultXORFused must reproduce exactly.
func refMultXORFused(dsts [][]byte, src []byte, tabs []*MulTable) {
	for i, d := range dsts {
		refMultXOR(d, src, tabs[i])
	}
}

// fusedCase builds a randomized fused call: ndst destinations of length
// n, each sliced off bytes into its own backing array so vector loads
// start off any natural boundary.
func fusedCase(rng *rand.Rand, f *Field, ndst, n, off int) (dsts [][]byte, base [][]byte, src []byte, tabs []*MulTable) {
	src = make([]byte, n+off)
	rng.Read(src)
	src = src[off:]
	cmax := int64(f.mask)
	for i := 0; i < ndst; i++ {
		b := make([]byte, n+off)
		rng.Read(b)
		base = append(base, append([]byte(nil), b...))
		dsts = append(dsts, b[off:])
		c := uint32(1 + rng.Int63n(cmax)) // nonzero: plans drop zero coefficients
		tabs = append(tabs, refMulTable(f, c))
	}
	return dsts, base, src, tabs
}

// TestKernelsMatchReferenceFused differential-tests MultXORFused on every
// registered kernel against the composed byte-loop reference for w=8,
// across destination counts 1..6, all tail classes, and unaligned
// offsets.
func TestKernelsMatchReferenceFused(t *testing.T) {
	f := Get(8)
	rng := rand.New(rand.NewSource(47))
	for _, k := range allKernels() {
		t.Run(k.Name(), func(t *testing.T) {
			for _, ndst := range []int{1, 2, 3, 4, 6} {
				for _, n := range kernelLengths {
					for _, off := range []int{0, 1, 5, 7} {
						dsts, base, src, tabs := fusedCase(rng, f, ndst, n, off)
						want := make([][]byte, ndst)
						for i := range want {
							want[i] = append([]byte(nil), base[i]...)
						}
						wantSl := make([][]byte, ndst)
						for i := range want {
							wantSl[i] = want[i][off:]
						}
						refMultXORFused(wantSl, src, tabs)
						k.MultXORFused(dsts, src, tabs)
						for i := range dsts {
							if !bytes.Equal(dsts[i], wantSl[i]) {
								t.Fatalf("ndst=%d n=%d off=%d dst[%d]: fused kernel disagrees with composed reference",
									ndst, n, off, i)
							}
						}
					}
				}
			}
		})
	}
}

// TestKernelsMatchReferenceFusedW4 repeats the fused differential test
// with w=4 tables: unmasked high nibbles in both source and destinations
// must come out identical to the scalar row lookups.
func TestKernelsMatchReferenceFusedW4(t *testing.T) {
	f := Get(4)
	rng := rand.New(rand.NewSource(53))
	for _, k := range allKernels() {
		t.Run(k.Name(), func(t *testing.T) {
			for _, ndst := range []int{1, 3, 5} {
				for _, n := range []int{0, 1, 15, 31, 32, 33, 64, 255, 4097} {
					dsts, base, src, tabs := fusedCase(rng, f, ndst, n, 0)
					want := make([][]byte, ndst)
					for i := range want {
						want[i] = append([]byte(nil), base[i]...)
					}
					refMultXORFused(want, src, tabs)
					k.MultXORFused(dsts, src, tabs)
					for i := range dsts {
						if !bytes.Equal(dsts[i], want[i]) {
							t.Fatalf("w=4 ndst=%d n=%d dst[%d]: fused kernel disagrees with composed reference", ndst, n, i)
						}
					}
				}
			}
		})
	}
}

// TestKernelsMatchReferenceMulRegionFused differential-tests the
// overwrite form on every registered kernel against composed byte-loop
// MulRegion, for w=8 and w=4, over destination counts, tail classes and
// unaligned offsets. Destinations start with random garbage: the op must
// fully overwrite, never accumulate.
func TestKernelsMatchReferenceMulRegionFused(t *testing.T) {
	for _, w := range []int{8, 4} {
		f := Get(w)
		rng := rand.New(rand.NewSource(int64(67 + w)))
		for _, k := range allKernels() {
			t.Run(fmt.Sprintf("w%d/%s", w, k.Name()), func(t *testing.T) {
				for _, ndst := range []int{1, 2, 4, 5, 9} {
					for _, n := range kernelLengths {
						for _, off := range []int{0, 3} {
							dsts, base, src, tabs := fusedCase(rng, f, ndst, n, off)
							want := make([][]byte, ndst)
							for i := range want {
								want[i] = append([]byte(nil), base[i]...)
								refMulRegion(want[i][off:], src, tabs[i])
							}
							k.MulRegionFused(dsts, src, tabs)
							for i := range dsts {
								if !bytes.Equal(dsts[i], want[i][off:]) {
									t.Fatalf("w=%d ndst=%d n=%d off=%d dst[%d]: MulRegionFused disagrees with composed reference",
										w, ndst, n, off, i)
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestFieldMultXORFused covers the Field-level surface: zero coefficients
// skipped, arity validation, and the w=16 per-destination fallback.
func TestFieldMultXORFused(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for _, w := range []int{4, 8, 16} {
		t.Run(fmt.Sprintf("w%d", w), func(t *testing.T) {
			f := Get(w)
			n := 130 * f.SymbolBytes()
			src := make([]byte, n)
			rng.Read(src)
			coeffs := []uint32{0, 1, 2, uint32(f.mask), 0}
			dsts := make([][]byte, len(coeffs))
			want := make([][]byte, len(coeffs))
			for i := range dsts {
				b := make([]byte, n)
				rng.Read(b)
				dsts[i] = b
				want[i] = append([]byte(nil), b...)
				f.MultXOR(want[i], src, coeffs[i])
			}
			f.MultXORFused(dsts, src, coeffs)
			for i := range dsts {
				if !bytes.Equal(dsts[i], want[i]) {
					t.Fatalf("w=%d dst[%d] (c=%d): fused disagrees with per-op MultXOR", w, i, coeffs[i])
				}
			}
		})
	}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	Get(8).MultXORFused(make([][]byte, 2), make([]byte, 8), []uint32{1})
}

// FuzzMultXORFused: the fuzzer owns the destination count, coefficients,
// region bytes and alignment offset; every kernel must agree with the
// composed portable per-op reference.
func FuzzMultXORFused(f *testing.F) {
	f.Add(byte(3), byte(0), []byte{0x53, 0x01, 0xff}, make([]byte, 256))
	f.Add(byte(1), byte(7), []byte{0x02}, bytes.Repeat([]byte{0xa5}, 100))
	f.Add(byte(5), byte(3), []byte{1, 2, 3, 4, 5}, make([]byte, 4099))
	field := Get(8)
	portable := portableKernel{}
	f.Fuzz(func(t *testing.T, ndst, off byte, cs, data []byte) {
		k := int(ndst&7) + 1
		o := int(off & 7)
		if len(cs) < k || len(data) < (k+1)*o+k+1 {
			t.Skip()
		}
		n := (len(data) - (k+1)*o) / (k + 1)
		src := data[o : o+n]
		var dsts [][]byte
		var tabs []*MulTable
		for i := 0; i < k; i++ {
			lo := (i+1)*(o+n) + o
			dsts = append(dsts, data[lo:lo+n:lo+n])
			c := uint32(cs[i])
			if c == 0 {
				c = 1
			}
			tabs = append(tabs, refMulTable(field, c))
		}
		want := make([][]byte, k)
		wantOver := make([][]byte, k)
		for i := range want {
			want[i] = append([]byte(nil), dsts[i]...)
			portable.MultXOR(want[i], src, tabs[i])
			wantOver[i] = append([]byte(nil), dsts[i]...)
			portable.MulRegion(wantOver[i], src, tabs[i])
		}
		for _, kern := range allKernels() {
			got := make([][]byte, k)
			for i := range got {
				got[i] = append([]byte(nil), dsts[i]...)
			}
			kern.MultXORFused(got, src, tabs)
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("kernel %s MultXORFused(ndst=%d, n=%d, off=%d) dst[%d] diverges from composed portable",
						kern.Name(), k, n, o, i)
				}
				copy(got[i], dsts[i])
			}
			kern.MulRegionFused(got, src, tabs)
			for i := range got {
				if !bytes.Equal(got[i], wantOver[i]) {
					t.Fatalf("kernel %s MulRegionFused(ndst=%d, n=%d, off=%d) dst[%d] diverges from composed portable",
						kern.Name(), k, n, o, i)
				}
			}
		}
	})
}

// BenchmarkMultXORFusedKernels measures the fused op against its per-op
// composition on every registered kernel: <kernel>/fused/<dsts>x<size> vs
// <kernel>/perop/<dsts>x<size>. The fused/perop ratio is the win the
// source-major planner banks on, and the CI bench smoke picks this up
// through its BenchmarkMultXOR regex.
func BenchmarkMultXORFusedKernels(b *testing.B) {
	f := Get(8)
	rng := rand.New(rand.NewSource(61))
	for _, k := range allKernels() {
		for _, ndst := range []int{4} {
			for _, size := range benchSizes {
				src := make([]byte, size)
				rng.Read(src)
				dsts := make([][]byte, ndst)
				tabs := make([]*MulTable, ndst)
				for i := range dsts {
					dsts[i] = make([]byte, size)
					tabs[i] = &f.tables[0x35+i]
				}
				name := fmt.Sprintf("%dx%s", ndst, byteSizeName(size))
				b.Run(k.Name()+"/fused/"+name, func(b *testing.B) {
					b.SetBytes(int64(size * ndst))
					for i := 0; i < b.N; i++ {
						k.MultXORFused(dsts, src, tabs)
					}
				})
				b.Run(k.Name()+"/perop/"+name, func(b *testing.B) {
					b.SetBytes(int64(size * ndst))
					for i := 0; i < b.N; i++ {
						for j := range dsts {
							k.MultXOR(dsts[j], src, tabs[j])
						}
					}
				})
			}
		}
	}
}
