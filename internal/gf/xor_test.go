package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// xorRegionBytes is the pre-widening byte-wise unrolled loop, kept as
// the correctness oracle and benchmark baseline for the uint64-word
// XORRegion.
func xorRegionBytes(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// TestXORRegionMatchesByteWise: the widened loop must agree with the
// byte-wise oracle on every length class — word-aligned, one spare
// word, and ragged tails that exercise the byte fallback.
func TestXORRegionMatchesByteWise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 24, 31, 63, 64, 100, 1024, 4096, 4099} {
		src := make([]byte, n)
		base := make([]byte, n)
		rng.Read(src)
		rng.Read(base)
		want := append([]byte(nil), base...)
		xorRegionBytes(want, src)
		got := append([]byte(nil), base...)
		XORRegion(got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("length %d: widened XORRegion disagrees with byte-wise oracle", n)
		}
		// XOR is an involution: applying src again restores the base.
		XORRegion(got, src)
		if !bytes.Equal(got, base) {
			t.Fatalf("length %d: double XOR did not round-trip", n)
		}
	}
}

// TestXORTailOddLengthsAndOffsets is the regression test for the tail
// handling shared by every kernel: XORRegion's word widening (and the
// SIMD kernels' vector loops) used to fall back to private byte loops on
// unaligned or short tails; the shared xorTail helper now owns every
// remainder. Odd lengths at odd offsets must agree with the byte-wise
// oracle on each registered kernel and on the dispatched surface.
func TestXORTailOddLengthsAndOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 3, 5, 7, 9, 13, 17, 23, 31, 33, 47, 63, 65, 4097} {
		for _, off := range []int{1, 3, 7} {
			src := make([]byte, n+off)
			base := make([]byte, n+off)
			rng.Read(src)
			rng.Read(base)
			want := append([]byte(nil), base...)
			xorRegionBytes(want[off:], src[off:])

			for _, k := range allKernels() {
				got := append([]byte(nil), base...)
				k.XORRegion(got[off:], src[off:])
				if !bytes.Equal(got, want) {
					t.Fatalf("kernel %s: n=%d off=%d tail disagrees with byte-wise oracle", k.Name(), n, off)
				}
			}
			got := append([]byte(nil), base...)
			XORRegion(got[off:], src[off:])
			if !bytes.Equal(got, want) {
				t.Fatalf("dispatched XORRegion: n=%d off=%d tail disagrees with byte-wise oracle", n, off)
			}
			// xorTail itself — the shared helper — on the raw slices.
			got = append(got[:0:0], base...)
			xorTail(got[off:], src[off:])
			if !bytes.Equal(got, want) {
				t.Fatalf("xorTail: n=%d off=%d disagrees with byte-wise oracle", n, off)
			}
		}
	}
}

func TestXORRegionLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched region lengths")
		}
	}()
	XORRegion(make([]byte, 8), make([]byte, 9))
}

// benchSizes covers a cell-sized region (the store's common sector
// sizes) down to small scratch regions.
var benchSizes = []int{64, 512, 4096, 65536}

func benchXOR(b *testing.B, size int, fn func(dst, src []byte)) {
	dst := make([]byte, size)
	src := make([]byte, size)
	rand.New(rand.NewSource(2)).Read(src)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(dst, src)
	}
}

// BenchmarkXORRegionWide is the widened uint64-word loop; compare
// against BenchmarkXORRegionBytes to see what the widening buys —
// this primitive bounds every encode speed number in the repo.
func BenchmarkXORRegionWide(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(byteSizeName(size), func(b *testing.B) { benchXOR(b, size, XORRegion) })
	}
}

// BenchmarkXORRegionBytes is the pre-widening byte-wise baseline.
func BenchmarkXORRegionBytes(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(byteSizeName(size), func(b *testing.B) { benchXOR(b, size, xorRegionBytes) })
	}
}

// BenchmarkMultXORC1 measures the c==1 MultXOR fast path, which routes
// through XORRegion and dominates encode schedules with unit
// coefficients.
func BenchmarkMultXORC1(b *testing.B) {
	f := Get(8)
	for _, size := range benchSizes {
		b.Run(byteSizeName(size), func(b *testing.B) {
			benchXOR(b, size, func(dst, src []byte) { f.MultXOR(dst, src, 1) })
		})
	}
}

func byteSizeName(n int) string {
	switch {
	case n >= 1<<20:
		return string(rune('0'+n>>20)) + "MiB"
	case n >= 1<<10:
		if n%(1<<10) == 0 {
			return itoa(n>>10) + "KiB"
		}
	}
	return itoa(n) + "B"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
